// Overlay forensics on the CHORD routing workload (ISSUE 8).
//
// A 16-node overlay elects successors on a 2^20 identifier ring and
// forwards a recursive lookup hop by hop to the key's owner. The alive
// tuples feeding successor election are soft state: the owner's liveness
// pair lives on a short TTL and is never refreshed, so its expiry retracts
// a liveness fact mid-run. DRed unwinds the election, the lookup
// re-resolves against the new successor, and provenance answers the
// forensic question "which nodes' state did this resolution depend on?"
// before and after the failure.
//
// Run with: go run ./examples/chord
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/types"
)

// ringDist and between mirror the f_ringdist/f_between builtins; succOf
// and chainTo mirror the program's election and forwarding, so the
// operator can predict where a lookup resolves before issuing it.
func ringDist(a, b int64) int64 {
	d := (b - a) % apps.ChordSpace
	if d < 0 {
		d += apps.ChordSpace
	}
	if d == 0 {
		d = apps.ChordSpace
	}
	return d
}

func between(k, a, b int64) bool {
	switch {
	case a == b:
		return true
	case a < b:
		return a < k && k <= b
	default:
		return k > a || k <= b
	}
}

func succOf(topo *topology.Topology, n types.NodeID) types.NodeID {
	best, bestD := types.NodeID(-1), int64(-1)
	for _, nb := range topo.Adjacency()[n] {
		if d := ringDist(apps.ChordID(n), apps.ChordID(nb.Node)); bestD < 0 || d < bestD {
			best, bestD = nb.Node, d
		}
	}
	return best
}

func chainTo(topo *topology.Topology, origin types.NodeID, key int64) []types.NodeID {
	chain := []types.NodeID{origin}
	n := origin
	for {
		s := succOf(topo, n)
		if between(key, apps.ChordID(n), apps.ChordID(s)) {
			return chain
		}
		n = s
		chain = append(chain, n)
	}
}

func main() {
	rng := rand.New(rand.NewSource(4))
	topo := topology.Ring(16, rng)
	origin := types.NodeID(8)

	// Pick the key whose forwarding chain from the origin is deepest — the
	// lookup worth tracing.
	var key int64
	var chain []types.NodeID
	for v := 0; v < topo.N; v++ {
		k := apps.ChordID(types.NodeID(v))
		if c := chainTo(topo, origin, k); len(c) > len(chain) {
			key, chain = k, c
		}
	}
	owner := chain[len(chain)-1]
	ownerSucc := succOf(topo, owner)

	// The owner's liveness view of its successor is announced through the
	// soft-state layer (25ms TTL, never refreshed); everything else is
	// static EDB.
	vU := apps.AliveTuple(owner, ownerSucc)
	vV := apps.AliveTuple(ownerSucc, owner)
	base := apps.ChordBase(topo)
	for n, tuples := range base {
		kept := tuples[:0]
		for _, tu := range tuples {
			if !tu.Equal(vU) && !tu.Equal(vV) {
				kept = append(kept, tu)
			}
		}
		base[n] = kept
	}

	cluster, err := core.NewCluster(core.Config{
		Topo: topo, Prog: apps.Chord(), Mode: engine.ProvReference,
		NoLinkTuples: true, Base: base,
	})
	if err != nil {
		log.Fatal(err)
	}
	ss := core.NewSoftState(cluster, 25*simnet.Millisecond)
	cluster.Sim.At(0, func() {
		ss.Announce(owner, vU)
		ss.Announce(ownerSucc, vV)
	})
	cluster.Sim.At(simnet.Millisecond, func() {
		cluster.InsertBase(apps.LookupTuple(origin, key, origin))
	})

	if err := cluster.RunUntil(20 * simnet.Millisecond); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay of %d nodes converged; key %d issued from node %s\n", topo.N, key, origin)
	fmt.Printf("predicted forwarding chain: %v (owner %s, successor %s)\n", chain, owner, ownerSucc)
	printResolution(cluster, key)

	// The TTL passes with no refresh: the expiry retracts both alive
	// tuples, the election unwinds, and the lookup re-resolves.
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter soft-state expiry (%d expirations, alive(%s,%s) gone):\n",
		ss.Expirations, owner, ownerSucc)
	printResolution(cluster, key)
}

// printResolution finds the lookupRes for key and traces the nodes its
// derivation passed through.
func printResolution(c *core.Cluster, key int64) {
	var ref core.TupleRef
	found := false
	for _, r := range c.TuplesOf("lookupRes") {
		if r.Tuple.Args[1].AsInt() == key {
			ref, found = r, true
		}
	}
	if !found {
		log.Fatal("lookup did not resolve")
	}
	fmt.Printf("  resolved at node %s: %s\n", ref.Loc, ref.Tuple)
	for _, h := range c.Hosts {
		h.Query.UDF = provquery.NodeSet{}
	}
	var nodes []types.NodeID
	c.Query(ref.Loc, ref.VID, ref.Loc, func(p []byte) { nodes = provquery.DecodeNodeSet(p) })
	if _, err := c.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  provenance spans %d nodes: %v\n", len(nodes), nodes)
}
