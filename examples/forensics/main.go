// Data-plane forensics with network provenance (§1, §3, §6.2).
//
// PACKETFORWARD relays packets across a 100-node transit-stub network.
// After delivery, an operator traces a received packet: tuple-level
// provenance reconstructs the exact forwarding path (the classic "trace
// the path a message traversed" use case), and a random-moonwalk traversal
// samples derivations cheaply — the paper's tool for pinpointing dominant
// traffic sources during epidemic attacks.
//
// Run with: go run ./examples/forensics
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/topology"
	"repro/internal/types"
)

func main() {
	rng := rand.New(rand.NewSource(9))
	topo := topology.TransitStub(topology.DefaultTransitStub(1), rng)
	cluster, err := core.NewCluster(core.Config{
		Topo: topo,
		Prog: apps.PacketForward(),
		Mode: engine.ProvReference,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control plane converged on %d nodes, %d links\n", topo.N, len(topo.Links))

	// A few hosts send packets to one victim node.
	victim := types.NodeID(50)
	sources := []types.NodeID{5, 17, 93}
	for _, src := range sources {
		cluster.InjectEvent(apps.PacketTuple(src, src, victim, 256))
	}
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}

	recv := cluster.TuplesOf("recvPacket")
	fmt.Printf("victim %s received %d packets\n\n", victim, len(recv))

	// Trace each received packet: the NODESET of its provenance is the
	// forwarding path plus the control-plane state used at each hop.
	for _, h := range cluster.Hosts {
		h.Query.UDF = provquery.NodeSet{}
	}
	for _, r := range recv {
		src := r.Tuple.Args[1].AsNode()
		var nodes []types.NodeID
		cluster.Query(victim, r.VID, r.Loc, func(p []byte) { nodes = provquery.DecodeNodeSet(p) })
		if _, err := cluster.RunToFixpoint(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("packet from %s: %d nodes involved in derivation: %v\n", src, len(nodes), nodes)
	}

	// Moonwalk: sample derivations of a bestPathCost tuple instead of a
	// full traversal. Useful when the derivation fan-in is large.
	fmt.Println("\nrandom moonwalk over a heavily-derived tuple:")
	ref, ok := cluster.RandomTupleOf("bestPath", rng)
	if !ok {
		log.Fatal("no bestPath tuples")
	}
	for _, h := range cluster.Hosts {
		h.Query.UDF = provquery.NodeSet{}
		h.Query.Strategy = provquery.Moonwalk
		h.Query.MoonwalkN = 1
	}
	bytesBefore := cluster.Net.TotalBytes
	var sampled []types.NodeID
	cluster.Query(victim, ref.VID, ref.Loc, func(p []byte) { sampled = provquery.DecodeNodeSet(p) })
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	moonwalkBytes := cluster.Net.TotalBytes - bytesBefore

	for _, h := range cluster.Hosts {
		h.Query.Strategy = provquery.BFS
	}
	bytesBefore = cluster.Net.TotalBytes
	var full []types.NodeID
	cluster.Query(victim, ref.VID, ref.Loc, func(p []byte) { full = provquery.DecodeNodeSet(p) })
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	fullBytes := cluster.Net.TotalBytes - bytesBefore

	fmt.Printf("  target tuple: %s\n", ref.Tuple)
	fmt.Printf("  moonwalk sample: %d nodes, %d bytes of query traffic\n", len(sampled), moonwalkBytes)
	fmt.Printf("  full traversal:  %d nodes, %d bytes of query traffic\n", len(full), fullBytes)
}
