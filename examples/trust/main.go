// Distributed trust management with condensed (BDD) provenance (§3, §6.3).
//
// MINCOST runs over the Figure 3 network. A policy node decides whether to
// accept routing state based on *who* it is derived from: a tuple is
// trusted only if it remains derivable using base tuples owned by trusted
// nodes. The example shows
//
//   - the BDD query (absorption provenance): a·(a+b) condenses to a,
//     so bestPathCost(@a,c,5) is accepted as long as node a is trusted,
//     regardless of node b — the paper's §3 example;
//   - the DERIVABILITY query with a trust projection (graph projection,
//     §5.2.2) that excludes an untrusted node during traversal;
//   - the trust-value semiring of §5.2.2 assigning a numeric confidence.
//
// Run with: go run ./examples/trust
package main

import (
	"fmt"
	"log"

	"repro/internal/algebra"
	"repro/internal/apps"
	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/topology"
	"repro/internal/types"
)

func main() {
	cluster, err := core.NewCluster(core.Config{
		Topo: topology.Figure3(),
		Prog: apps.MinCost(),
		Mode: engine.ProvReference,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	a, b, c := types.NodeID(0), types.NodeID(1), types.NodeID(2)
	target, ok := cluster.FindTuple(apps.BestPathCostTuple(a, c, 5))
	if !ok {
		log.Fatal("bestPathCost(@a,c,5) not derived")
	}

	// --- 1. BDD (absorption) provenance --------------------------------
	for _, h := range cluster.Hosts {
		h.Query.UDF = provquery.BDDProv{Alloc: cluster.Alloc}
	}
	var bddPayload []byte
	cluster.Query(c, target.VID, target.Loc, func(p []byte) { bddPayload = p })
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	mgr := bdd.New()
	root, err := provquery.DecodeBDD(mgr, bddPayload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("condensed provenance of %s (BDD, %d nodes):\n", target.Tuple, mgr.Size(root))
	fmt.Println("  boolean form:", mgr.String(root))
	fmt.Println("  variables:")
	varOfNode := map[types.NodeID][]int{}
	for _, v := range mgr.Support(root) {
		base, _ := cluster.Alloc.BaseOf(v)
		varOfNode[base.Node] = append(varOfNode[base.Node], v)
		fmt.Printf("    x%d = %s @ %s\n", v, base.Label, base.Node)
	}

	// Trust policies: a node is trusted iff all its base tuples are.
	restrictNode := func(root bdd.Ref, node types.NodeID, val bool) bdd.Ref {
		out := root
		for _, v := range varOfNode[node] {
			out = mgr.Restrict(out, v, val)
		}
		return out
	}
	// Policy 1: trust a, distrust b. Absorption (link(@a,c,5) alone
	// suffices) keeps the tuple derivable.
	p1 := restrictNode(restrictNode(root, a, true), b, false)
	fmt.Printf("\npolicy: trust {a}, distrust {b} -> accepted: %v\n", p1 == bdd.True)
	// Policy 2: distrust a. Without a's base link and a's presence on the
	// alternative derivation, the tuple loses support.
	p2 := restrictNode(root, a, false)
	fmt.Printf("policy: distrust {a}           -> accepted: %v\n", p2 == bdd.True)

	// --- 2. Graph projection during traversal --------------------------
	for _, h := range cluster.Hosts {
		h.Query.UDF = provquery.Derivability{
			Trusted: func(t types.Tuple, node types.NodeID) bool { return node != b },
		}
	}
	var der []byte
	cluster.Query(c, target.VID, target.Loc, func(p []byte) { der = p })
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDERIVABILITY excluding node b's base tuples: %v\n", provquery.DecodeBool(der))

	// --- 3. Trust values via the semiring (§5.2.2) ----------------------
	for _, h := range cluster.Hosts {
		h.Query.UDF = provquery.Polynomial{}
	}
	var poly []byte
	cluster.Query(c, target.VID, target.Loc, func(p []byte) { poly = p })
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	expr, err := provquery.DecodePolynomial(poly)
	if err != nil {
		log.Fatal(err)
	}
	trustOf := map[types.NodeID]int64{a: 90, b: 40, c: 95, 3: 50}
	val := algebra.Eval(expr, algebra.MinTrust(func(base algebra.Base) int64 {
		return trustOf[base.Node]
	}))
	fmt.Printf("\ntrust value of %s = %d (min over joins, max over alternatives)\n", target.Tuple, val)
}
