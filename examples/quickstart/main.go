// Quickstart: the paper's running example end to end.
//
// Builds the four-node network of Figure 3, runs the MINCOST protocol with
// reference-based distributed provenance, prints the resulting prov and
// ruleExec partitions (Tables 1-2), and issues distributed provenance
// queries for bestPathCost(@a,c,5) in several representations (Figures 4-5,
// §5.2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/topology"
	"repro/internal/types"
)

func main() {
	// 1. Build the Figure 3 network and run MINCOST with reference-based
	// provenance to its distributed fixpoint.
	cluster, err := core.NewCluster(core.Config{
		Topo: topology.Figure3(),
		Prog: apps.MinCost(),
		Mode: engine.ProvReference,
	})
	if err != nil {
		log.Fatal(err)
	}
	fix, err := cluster.RunToFixpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MINCOST reached fixpoint at %.3fs (virtual), %.1f KB total traffic\n\n",
		fix.Seconds(), float64(cluster.Net.TotalBytes)/1e3)

	// 2. Best path costs from node a (cf. Figure 3's topology).
	fmt.Println("Best path costs from node a:")
	for _, ref := range cluster.TuplesOf("bestPathCost") {
		if ref.Loc == 0 && ref.Tuple.Args[1].AsNode() != 0 {
			fmt.Println("  ", ref.Tuple)
		}
	}

	// 3. The distributed provenance tables (Tables 1 and 2), partitions of
	// nodes a and b.
	fmt.Println("\nprov partition rows (Loc | tuple | RID | RLoc):")
	for node := 0; node < 2; node++ {
		for _, row := range cluster.Hosts[node].Engine.Store.ProvRows() {
			fmt.Println("  ", row)
		}
	}
	fmt.Println("\nruleExec partition rows (RLoc | RID | rule | inputs):")
	for node := 0; node < 2; node++ {
		for _, row := range cluster.Hosts[node].Engine.Store.RuleExecRows() {
			fmt.Println("  ", row)
		}
	}

	// 4. Distributed provenance queries for bestPathCost(@a,c,5).
	target, ok := cluster.FindTuple(apps.BestPathCostTuple(0, 2, 5))
	if !ok {
		log.Fatal("bestPathCost(@a,c,5) not derived")
	}

	// 4a. Provenance polynomial (§5.2.1): the paper's α + β·γ.
	var poly []byte
	cluster.Query(3, target.VID, target.Loc, func(p []byte) { poly = p })
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	expr, err := provquery.DecodePolynomial(poly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOLYNOMIAL provenance of %s:\n   %s\n", target.Tuple, expr)

	// 4b. Number of alternative derivations and participating nodes.
	for _, q := range []struct {
		name string
		udf  provquery.UDF
		show func(payload []byte) string
	}{
		{"#DERIVATIONS", provquery.Derivations{}, func(p []byte) string {
			return fmt.Sprint(provquery.DecodeCount(p))
		}},
		{"NODESET", provquery.NodeSet{}, func(p []byte) string {
			return fmt.Sprint(provquery.DecodeNodeSet(p))
		}},
		{"DERIVABILITY", provquery.Derivability{}, func(p []byte) string {
			return fmt.Sprint(provquery.DecodeBool(p))
		}},
	} {
		for _, h := range cluster.Hosts {
			h.Query.UDF = q.udf
		}
		var res []byte
		cluster.Query(3, target.VID, target.Loc, func(p []byte) { res = p })
		if _, err := cluster.RunToFixpoint(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s of %s = %s\n", q.name, target.Tuple, q.show(res))
	}

	// 5. Node-level granularity via the polynomial's base set: the paper's
	// <a, b->a>.
	bases := expr.BaseSet()
	nodes := map[types.NodeID]bool{}
	for _, b := range bases {
		nodes[b.Node] = true
	}
	fmt.Printf("\nBase tuples in the derivation (tuple-level granularity):\n")
	for _, b := range bases {
		fmt.Printf("   %s @ %s\n", b.Label, b.Node)
	}
}
