// Network debugging with provenance (§1, §3 use cases).
//
// A 24-node ring overlay runs PATHVECTOR. A misconfigured node then
// advertises a bogus zero-cost shortcut link, silently attracting traffic
// (a route hijack). The operator notices that a best path changed and uses
// ExSPAN's distributed provenance queries to explain the new route: the
// NODESET query names the nodes involved, and the POLYNOMIAL query exposes
// the bogus base link — without any support from the (possibly lying)
// control plane itself.
//
// Run with: go run ./examples/debugging
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/topology"
	"repro/internal/types"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	topo := topology.Ring(24, rng)
	cluster, err := core.NewCluster(core.Config{
		Topo: topo,
		Prog: apps.PathVector(),
		Mode: engine.ProvReference,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}

	src, dst := types.NodeID(0), types.NodeID(12)
	before, _ := bestPath(cluster, src, dst)
	fmt.Printf("before hijack: best path %s -> %s is %v (cost %d)\n",
		src, dst, before.Args[3], before.Args[2].AsInt())

	// A misbehaving neighbor of the source advertises a too-good-to-be-true
	// direct link to the destination, attracting the route.
	bad := topology.Link{U: 1, V: dst, Class: topology.ClassStub, Cost: 1}
	fmt.Printf("\nnode %s injects bogus link %s-%s with cost %d...\n", bad.U, bad.U, bad.V, bad.Cost)
	cluster.AddLink(bad)
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}

	after, ok := bestPath(cluster, src, dst)
	if !ok {
		log.Fatal("route vanished")
	}
	fmt.Printf("after hijack:  best path %s -> %s is %v (cost %d)\n",
		src, dst, after.Args[3], after.Args[2].AsInt())
	if after.Equal(before) {
		fmt.Println("route unchanged; the shortcut did not attract this path")
	}

	// The operator asks: WHY does this route exist? Which nodes and which
	// base links produced it?
	ref, _ := cluster.FindTuple(after)

	for _, h := range cluster.Hosts {
		h.Query.UDF = provquery.NodeSet{}
	}
	var nodesPayload []byte
	cluster.Query(src, ref.VID, ref.Loc, func(p []byte) { nodesPayload = p })
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNODESET: nodes responsible for the route: %v\n",
		provquery.DecodeNodeSet(nodesPayload))

	for _, h := range cluster.Hosts {
		h.Query.UDF = provquery.Polynomial{}
	}
	var polyPayload []byte
	cluster.Query(src, ref.VID, ref.Loc, func(p []byte) { polyPayload = p })
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	expr, err := provquery.DecodePolynomial(polyPayload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPOLYNOMIAL: base links supporting the route:")
	bogus := map[string]bool{
		types.NewTuple("link", types.Node(bad.U), types.Node(bad.V), types.Int(bad.Cost)).String(): true,
		types.NewTuple("link", types.Node(bad.V), types.Node(bad.U), types.Int(bad.Cost)).String(): true,
	}
	suspicious := 0
	for _, b := range expr.BaseSet() {
		marker := ""
		if bogus[b.Label] {
			marker = "   <-- bogus advertisement"
			suspicious++
		}
		fmt.Printf("   %s%s\n", b.Label, marker)
	}
	if suspicious > 0 {
		fmt.Printf("\nverdict: the route depends on the injected link; node %s is implicated.\n", bad.U)
	} else {
		fmt.Println("\nverdict: route does not traverse the bogus link.")
	}
}

func bestPath(c *core.Cluster, src, dst types.NodeID) (types.Tuple, bool) {
	for _, ref := range c.TuplesOf("bestPath") {
		if ref.Tuple.Args[0].AsNode() == src && ref.Tuple.Args[1].AsNode() == dst {
			return ref.Tuple, true
		}
	}
	return types.Tuple{}, false
}
