// Policy forensics on the path-vector workload (ISSUE 8).
//
// A 12-node network runs POLICY: BGP-style path-vector routing where every
// directed adjacency needs an explicit policy atom to carry routes, so the
// best route is the cheapest *permitted* path, not the cheapest physical
// one. The operator inspects the busiest destination's Adj-RIB (the
// routeSet AGGLIST), asks provenance which nodes the selected route
// depends on, then withdraws the export policy the first hop rides on.
// DRed retracts every route through that adjacency, the MIN election
// re-runs, and the re-query shows the new dependency set — the "why did
// my traffic move?" question answered from provenance alone.
//
// Run with: go run ./examples/policy
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/topology"
	"repro/internal/types"
)

func main() {
	rng := rand.New(rand.NewSource(9))
	topo := topology.Ring(12, rng)
	cluster, err := core.NewCluster(core.Config{
		Topo: topo, Prog: apps.Policy(), Mode: engine.ProvReference,
		Base: apps.PolicyTuples(topo),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POLICY converged on %d nodes, %d links, %d policy atoms\n",
		topo.N, len(topo.Links), countPolicies(topo))

	// The interesting (source, destination) pair: the one with the fattest
	// Adj-RIB, i.e. the most permitted alternative routes to fail over to.
	src, dst := fattestRIB(cluster)
	best, _ := bestRoute(cluster, src, dst)
	fmt.Printf("\nrichest Adj-RIB: %s -> %s with %d candidate routes\n",
		src, dst, countRoutes(cluster, src, dst))
	fmt.Printf("  selected: %s (cost %d, path %v)\n", best, best.Args[2].AsInt(), best.Args[3])
	fmt.Printf("  %s\n", routeSet(cluster, src, dst))
	fmt.Printf("  provenance spans nodes %v\n", nodeSet(cluster, best))

	// Withdraw the export policy the selected route enters src through:
	// hop's policy toward src. Every route crossing that adjacency dies.
	hop := nextHop(cluster, src, dst)
	w, ok := apps.ExportPolicy(hop, src)
	if !ok {
		log.Fatalf("selected route rode a forbidden adjacency %s->%s", hop, src)
	}
	fmt.Printf("\nnode %s withdraws its export policy toward %s...\n", hop, src)
	cluster.DeleteBase(apps.PolicyTuple(hop, src, w))
	if _, err := cluster.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}

	after, ok := bestRoute(cluster, src, dst)
	if !ok {
		log.Fatal("destination became unreachable")
	}
	fmt.Printf("rerouted: %s (cost %d, path %v)\n", after, after.Args[2].AsInt(), after.Args[3])
	fmt.Printf("  %s\n", routeSet(cluster, src, dst))
	fmt.Printf("  provenance spans nodes %v\n", nodeSet(cluster, after))
	if nextHop(cluster, src, dst) == hop {
		log.Fatal("forwarding still uses the withdrawn adjacency")
	}
	fmt.Printf("\nverdict: traffic %s -> %s left node %s when its export policy vanished.\n", src, dst, hop)
}

func countPolicies(t *topology.Topology) int {
	n := 0
	for _, tuples := range apps.PolicyTuples(t) {
		n += len(tuples)
	}
	return n
}

// fattestRIB picks the (src, dst) pair with the most permitted candidate
// routes; ties break toward the lowest (src, dst) so the pick is stable.
func fattestRIB(c *core.Cluster) (types.NodeID, types.NodeID) {
	counts := map[[2]types.NodeID]int{}
	for _, r := range c.TuplesOf("route") {
		counts[[2]types.NodeID{r.Tuple.Args[0].AsNode(), r.Tuple.Args[1].AsNode()}]++
	}
	var best [2]types.NodeID
	bestN := -1
	for pair, n := range counts {
		if n > bestN || (n == bestN && (pair[0] < best[0] || (pair[0] == best[0] && pair[1] < best[1]))) {
			best, bestN = pair, n
		}
	}
	return best[0], best[1]
}

func countRoutes(c *core.Cluster, src, dst types.NodeID) int {
	n := 0
	for _, r := range c.TuplesOf("route") {
		if r.Tuple.Args[0].AsNode() == src && r.Tuple.Args[1].AsNode() == dst {
			n++
		}
	}
	return n
}

func bestRoute(c *core.Cluster, src, dst types.NodeID) (types.Tuple, bool) {
	for _, r := range c.TuplesOf("bestRoute") {
		if r.Tuple.Args[0].AsNode() == src && r.Tuple.Args[1].AsNode() == dst {
			return r.Tuple, true
		}
	}
	return types.Tuple{}, false
}

func routeSet(c *core.Cluster, src, dst types.NodeID) string {
	for _, r := range c.TuplesOf("routeSet") {
		if r.Tuple.Args[0].AsNode() == src && r.Tuple.Args[1].AsNode() == dst {
			return r.Tuple.String()
		}
	}
	return "(no routeSet)"
}

func nextHop(c *core.Cluster, src, dst types.NodeID) types.NodeID {
	for _, r := range c.TuplesOf("nextHop") {
		if r.Tuple.Args[0].AsNode() == src && r.Tuple.Args[1].AsNode() == dst {
			return r.Tuple.Args[2].AsNode()
		}
	}
	return -1
}

// nodeSet runs the distributed NODESET provenance query for t.
func nodeSet(c *core.Cluster, t types.Tuple) []types.NodeID {
	ref, ok := c.FindTuple(t)
	if !ok {
		log.Fatalf("tuple %s not found", t)
	}
	for _, h := range c.Hosts {
		h.Query.UDF = provquery.NodeSet{}
	}
	var nodes []types.NodeID
	c.Query(ref.Loc, ref.VID, ref.Loc, func(p []byte) { nodes = provquery.DecodeNodeSet(p) })
	if _, err := c.RunToFixpoint(); err != nil {
		log.Fatal(err)
	}
	return nodes
}
