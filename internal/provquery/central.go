package provquery

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/types"
)

// CentralGraph is the query-side view of *centralized* provenance (§3
// Distribution): every prov and ruleExec row has been relayed to one
// server, so queries are plain in-memory graph walks with no network
// traversal. It is constructed from the server's materialized prov and
// ruleExec relations.
type CentralGraph struct {
	prov     map[types.ID][]centralDeriv
	locs     map[types.ID]types.NodeID
	ruleExec map[types.ID]centralExec
}

type centralDeriv struct {
	rid  types.ID
	rloc types.NodeID
}

type centralExec struct {
	rule   string
	inputs []types.ID
}

// NewCentralGraph builds the graph from prov(@Loc,VID,RID,RLoc) and
// ruleExec(@RLoc,RID,R,List) rows as stored at the central server.
func NewCentralGraph(provRows, ruleExecRows []types.Tuple) *CentralGraph {
	g := &CentralGraph{
		prov:     map[types.ID][]centralDeriv{},
		locs:     map[types.ID]types.NodeID{},
		ruleExec: map[types.ID]centralExec{},
	}
	for _, r := range provRows {
		if len(r.Args) != 4 {
			continue
		}
		vid := r.Args[1].AsID()
		g.prov[vid] = append(g.prov[vid], centralDeriv{
			rid:  r.Args[2].AsID(),
			rloc: r.Args[3].AsNode(),
		})
		g.locs[vid] = r.Args[0].AsNode()
	}
	for _, r := range ruleExecRows {
		if len(r.Args) != 4 {
			continue
		}
		var inputs []types.ID
		for _, v := range r.Args[3].AsList() {
			inputs = append(inputs, v.AsID())
		}
		g.ruleExec[r.Args[1].AsID()] = centralExec{rule: r.Args[2].AsStr(), inputs: inputs}
	}
	return g
}

// NumVertices reports the number of tuple vertices known to the server.
func (g *CentralGraph) NumVertices() int { return len(g.prov) }

// Polynomial reconstructs the provenance polynomial of a tuple vertex.
// Base labels are the VIDs' short hashes (the server does not hold tuple
// contents, only the graph).
func (g *CentralGraph) Polynomial(vid types.ID) *algebra.Expr {
	derivs := g.prov[vid]
	if len(derivs) == 0 {
		return algebra.Zero()
	}
	var kids []*algebra.Expr
	for _, d := range derivs {
		if d.rid.IsZero() {
			kids = append(kids, algebra.NewBase(algebra.Base{
				VID: vid, Label: vid.Short(), Node: g.locs[vid],
			}))
			continue
		}
		re, ok := g.ruleExec[d.rid]
		if !ok {
			continue
		}
		var inputs []*algebra.Expr
		for _, in := range re.inputs {
			inputs = append(inputs, g.Polynomial(in))
		}
		kids = append(kids, algebra.Prod(re.rule+"@"+d.rloc.String(), inputs...))
	}
	return algebra.Sum("@"+g.locs[vid].String(), kids...)
}

// Count returns the number of distinct derivations (the #DERIVATIONS
// query evaluated centrally).
func (g *CentralGraph) Count(vid types.ID) int64 {
	var total int64
	for _, d := range g.prov[vid] {
		if d.rid.IsZero() {
			total++
			continue
		}
		re, ok := g.ruleExec[d.rid]
		if !ok {
			continue
		}
		prod := int64(1)
		for _, in := range re.inputs {
			prod *= g.Count(in)
		}
		total += prod
	}
	return total
}

// Nodes returns the sorted set of nodes participating in any derivation.
func (g *CentralGraph) Nodes(vid types.ID) []types.NodeID {
	set := map[types.NodeID]bool{}
	var rec func(types.ID)
	rec = func(v types.ID) {
		for _, d := range g.prov[v] {
			if d.rid.IsZero() {
				set[g.locs[v]] = true
				continue
			}
			set[d.rloc] = true
			if re, ok := g.ruleExec[d.rid]; ok {
				for _, in := range re.inputs {
					rec(in)
				}
			}
		}
	}
	rec(vid)
	out := make([]types.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Derivable reports whether vid is derivable using only base tuples at
// nodes the trusted predicate accepts.
func (g *CentralGraph) Derivable(vid types.ID, trusted func(types.NodeID) bool) bool {
	for _, d := range g.prov[vid] {
		if d.rid.IsZero() {
			if trusted == nil || trusted(g.locs[vid]) {
				return true
			}
			continue
		}
		re, ok := g.ruleExec[d.rid]
		if !ok {
			continue
		}
		all := len(re.inputs) > 0
		for _, in := range re.inputs {
			if !g.Derivable(in, trusted) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
