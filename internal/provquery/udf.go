package provquery

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/bdd"
	"repro/internal/types"
)

// Ctx distinguishes the two combination sites of the traversal: IDB
// (alternative derivations of a tuple vertex, the paper's "+") and Rule
// (joined inputs of a rule execution vertex, the paper's "·").
type Ctx uint8

// Combination contexts.
const (
	CtxIDB Ctx = iota
	CtxRule
)

// UDF is the customization triple of §5.2 — f_pEDB, f_pIDB, f_pRULE —
// operating on wire-encoded partial results so intermediate values can
// travel between nodes.
type UDF interface {
	// Name identifies the representation (cache entries are tagged with
	// it so different query types never share results).
	Name() string
	// EDB computes the annotation of a base tuple (f_pEDB).
	EDB(t types.Tuple, vid types.ID, node types.NodeID) []byte
	// IDB combines the annotations of a tuple's alternative derivations
	// (f_pIDB), annotated with the tuple's location.
	IDB(children [][]byte, vid types.ID, node types.NodeID) []byte
	// Rule combines the annotations of a rule execution's inputs
	// (f_pRULE), annotated with the rule label and its location.
	Rule(children [][]byte, rule string, loc types.NodeID) []byte
	// Exceeds reports whether a partial result already crosses the
	// threshold of a threshold-based query, allowing DFS-THRESHOLD to
	// stop early. Representations without a monotone measure return
	// false.
	Exceeds(ctx Ctx, children [][]byte, threshold int64) bool
}

// ---------------------------------------------------------------------------
// POLYNOMIAL: provenance polynomials (§5.2.1).

// Polynomial returns query results as provenance polynomials, e.g.
// <sp1@a>(link(@a,c,5)) + <sp2@b>(...).
type Polynomial struct{}

// Name implements UDF.
func (Polynomial) Name() string { return "polynomial" }

// EDB implements UDF: the base tuple itself is the literal.
func (Polynomial) EDB(t types.Tuple, vid types.ID, node types.NodeID) []byte {
	return algebra.NewBase(algebra.Base{VID: vid, Label: t.String(), Node: node}).EncodePayload()
}

// IDB implements UDF: (D1 + D2 + ... + Dn)@Loc.
func (Polynomial) IDB(children [][]byte, vid types.ID, node types.NodeID) []byte {
	kids, err := decodeExprs(children)
	if err != nil {
		return algebra.Zero().EncodePayload()
	}
	return algebra.Sum("@"+node.String(), kids...).EncodePayload()
}

// Rule implements UDF: <R@RLoc>(P1 · P2 · ... · Pn).
func (Polynomial) Rule(children [][]byte, rule string, loc types.NodeID) []byte {
	kids, err := decodeExprs(children)
	if err != nil {
		return algebra.Zero().EncodePayload()
	}
	return algebra.Prod(rule+"@"+loc.String(), kids...).EncodePayload()
}

// Exceeds implements UDF (not applicable).
func (Polynomial) Exceeds(Ctx, [][]byte, int64) bool { return false }

func decodeExprs(children [][]byte) ([]*algebra.Expr, error) {
	out := make([]*algebra.Expr, 0, len(children))
	for _, c := range children {
		e, _, err := algebra.Decode(c)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// DecodePolynomial parses a POLYNOMIAL query result.
func DecodePolynomial(payload []byte) (*algebra.Expr, error) {
	e, _, err := algebra.Decode(payload)
	return e, err
}

// ---------------------------------------------------------------------------
// BDD: absorption-condensed provenance (§6.3).

// BDDProv returns query results as serialized BDDs over base-tuple
// variables allocated from a cluster-shared VarAlloc, applying boolean
// absorption by construction.
type BDDProv struct {
	Alloc *algebra.VarAlloc
}

// Name implements UDF.
func (BDDProv) Name() string { return "bdd" }

// EDB implements UDF.
func (u BDDProv) EDB(t types.Tuple, vid types.ID, node types.NodeID) []byte {
	m := bdd.New()
	v := m.Var(u.Alloc.VarOf(algebra.Base{VID: vid, Label: t.String(), Node: node}))
	return m.Encode(v, nil)
}

// IDB implements UDF: OR over alternative derivations.
func (u BDDProv) IDB(children [][]byte, vid types.ID, node types.NodeID) []byte {
	return combineBDD(children, false)
}

// Rule implements UDF: AND over rule inputs.
func (u BDDProv) Rule(children [][]byte, rule string, loc types.NodeID) []byte {
	return combineBDD(children, true)
}

// Exceeds implements UDF (not applicable).
func (BDDProv) Exceeds(Ctx, [][]byte, int64) bool { return false }

func combineBDD(children [][]byte, and bool) []byte {
	m := bdd.New()
	acc := bdd.False
	if and {
		acc = bdd.True
	}
	for _, c := range children {
		r, _, err := m.Decode(c)
		if err != nil {
			return m.Encode(bdd.False, nil)
		}
		if and {
			acc = m.And(acc, r)
		} else {
			acc = m.Or(acc, r)
		}
	}
	return m.Encode(acc, nil)
}

// DecodeBDD parses a BDD query result into the given manager.
func DecodeBDD(m *bdd.Manager, payload []byte) (bdd.Ref, error) {
	r, _, err := m.Decode(payload)
	return r, err
}

// ---------------------------------------------------------------------------
// #DERIVATIONS: number of alternative derivations (§5.2.2, Table 3).

// Derivations counts the number of distinct derivations: f_pEDB = 1,
// f_pIDB = sum, f_pRULE = product.
type Derivations struct{}

// Name implements UDF.
func (Derivations) Name() string { return "derivations" }

// EDB implements UDF.
func (Derivations) EDB(types.Tuple, types.ID, types.NodeID) []byte { return encodeCount(1) }

// IDB implements UDF.
func (Derivations) IDB(children [][]byte, _ types.ID, _ types.NodeID) []byte {
	var sum int64
	for _, c := range children {
		sum += decodeCount(c)
	}
	return encodeCount(sum)
}

// Rule implements UDF.
func (Derivations) Rule(children [][]byte, _ string, _ types.NodeID) []byte {
	prod := int64(1)
	for _, c := range children {
		prod *= decodeCount(c)
	}
	return encodeCount(prod)
}

// Exceeds implements UDF: both the running sum (IDB) and the running
// product over inputs that each have >= 1 derivation (Rule) are monotone,
// so a partial value above the threshold is final.
func (Derivations) Exceeds(ctx Ctx, children [][]byte, threshold int64) bool {
	if len(children) == 0 {
		return false
	}
	acc := int64(0)
	if ctx == CtxRule {
		acc = 1
	}
	for _, c := range children {
		v := decodeCount(c)
		if ctx == CtxIDB {
			acc += v
		} else {
			acc *= v
		}
	}
	return acc > threshold
}

func encodeCount(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func decodeCount(b []byte) int64 {
	if len(b) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

// DecodeCount parses a #DERIVATIONS result.
func DecodeCount(payload []byte) int64 { return decodeCount(payload) }

// ---------------------------------------------------------------------------
// NODESET: the nodes participating in any derivation (§5.2.2, Table 3).

// NodeSet computes the set of nodes involved in a tuple's derivations;
// both combination sites are set union.
type NodeSet struct{}

// Name implements UDF.
func (NodeSet) Name() string { return "nodeset" }

// EDB implements UDF.
func (NodeSet) EDB(_ types.Tuple, _ types.ID, node types.NodeID) []byte {
	return encodeNodeSet([]types.NodeID{node})
}

// IDB implements UDF.
func (NodeSet) IDB(children [][]byte, _ types.ID, _ types.NodeID) []byte {
	return unionNodeSets(children)
}

// Rule implements UDF.
func (NodeSet) Rule(children [][]byte, _ string, _ types.NodeID) []byte {
	return unionNodeSets(children)
}

// Exceeds implements UDF: the union's cardinality is monotone in its
// inputs, so threshold queries ("fewer than T' unique nodes?") can stop
// early.
func (NodeSet) Exceeds(_ Ctx, children [][]byte, threshold int64) bool {
	return int64(len(decodeNodeSetUnion(children))) > threshold
}

func unionNodeSets(children [][]byte) []byte {
	return encodeNodeSet(decodeNodeSetUnion(children))
}

func decodeNodeSetUnion(children [][]byte) []types.NodeID {
	set := map[types.NodeID]bool{}
	for _, c := range children {
		for _, n := range DecodeNodeSet(c) {
			set[n] = true
		}
	}
	out := make([]types.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func encodeNodeSet(nodes []types.NodeID) []byte {
	b := make([]byte, 0, 4*len(nodes))
	for _, n := range nodes {
		b = binary.BigEndian.AppendUint32(b, uint32(int32(n)))
	}
	return b
}

// DecodeNodeSet parses a NODESET result into a sorted node list.
func DecodeNodeSet(payload []byte) []types.NodeID {
	out := make([]types.NodeID, 0, len(payload)/4)
	for i := 0; i+4 <= len(payload); i += 4 {
		out = append(out, types.NodeID(int32(binary.BigEndian.Uint32(payload[i:]))))
	}
	return out
}

// ---------------------------------------------------------------------------
// DERIVABILITY: boolean derivability test (§5.2.2, Table 3), optionally
// restricted to trusted base tuples (graph projection).

// Derivability tests whether the tuple is derivable; when Trusted is
// non-nil, only base tuples it accepts count (the paper's trust-domain
// projection).
type Derivability struct {
	Trusted func(t types.Tuple, node types.NodeID) bool
}

// Name implements UDF.
func (Derivability) Name() string { return "derivability" }

// EDB implements UDF.
func (u Derivability) EDB(t types.Tuple, _ types.ID, node types.NodeID) []byte {
	ok := u.Trusted == nil || u.Trusted(t, node)
	return encodeBool(ok)
}

// IDB implements UDF: OR.
func (Derivability) IDB(children [][]byte, _ types.ID, _ types.NodeID) []byte {
	for _, c := range children {
		if decodeBool(c) {
			return encodeBool(true)
		}
	}
	return encodeBool(false)
}

// Rule implements UDF: AND.
func (Derivability) Rule(children [][]byte, _ string, _ types.NodeID) []byte {
	if len(children) == 0 {
		return encodeBool(false)
	}
	for _, c := range children {
		if !decodeBool(c) {
			return encodeBool(false)
		}
	}
	return encodeBool(true)
}

// Exceeds implements UDF: a true IDB partial is final (threshold ignored).
func (Derivability) Exceeds(ctx Ctx, children [][]byte, _ int64) bool {
	if ctx != CtxIDB {
		return false
	}
	for _, c := range children {
		if decodeBool(c) {
			return true
		}
	}
	return false
}

func encodeBool(v bool) []byte {
	if v {
		return []byte{1}
	}
	return []byte{0}
}

func decodeBool(b []byte) bool { return len(b) == 1 && b[0] == 1 }

// DecodeBool parses a DERIVABILITY result.
func DecodeBool(payload []byte) bool { return decodeBool(payload) }

// udfByName sanity-checks known names (used in tests).
func udfByName(name string, alloc *algebra.VarAlloc) (UDF, error) {
	switch name {
	case "polynomial":
		return Polynomial{}, nil
	case "bdd":
		return BDDProv{Alloc: alloc}, nil
	case "derivations":
		return Derivations{}, nil
	case "nodeset":
		return NodeSet{}, nil
	case "derivability":
		return Derivability{}, nil
	}
	return nil, fmt.Errorf("provquery: unknown UDF %q", name)
}
