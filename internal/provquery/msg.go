// Package provquery implements ExSPAN's distributed provenance querying
// (§5): recursive traversal of the prov/ruleExec partitions across nodes,
// customizable through the three user-defined functions f_pEDB, f_pIDB and
// f_pRULE, with the §6 optimizations — per-vertex result caching with
// invalidation propagation, and BFS / DFS / DFS-with-threshold / random
// moonwalk traversal orders.
package provquery

import (
	"encoding/binary"
	"errors"

	"repro/internal/types"
)

// MsgKind enumerates query-protocol messages; they mirror the events of the
// paper's ten-rule NDlog querying program.
type MsgKind uint8

// Protocol messages.
const (
	// KProvQuery is eProvQuery(@X, QID, VID, Ret): retrieve the provenance
	// of tuple vertex VID stored at X.
	KProvQuery MsgKind = iota
	// KProvResult is eProvResults(@Ret, QID, VID, Prov).
	KProvResult
	// KRuleQuery is eRuleQuery(@RLoc, RQID, RID, X): expand the rule
	// execution vertex RID. It additionally carries the VID of the head
	// tuple being expanded (the querying vertex), which the rule node
	// records on its reverse dataflow edges when it caches the result —
	// §6.1 invalidation bookkeeping is paid per cached traversal, not per
	// derivation.
	KRuleQuery
	// KRuleResult is eRuleResults(@X, RQID, RID, Prov).
	KRuleResult
	// KInvalidate is the cache-invalidation flag of §6.1.
	KInvalidate
)

// Msg is one provenance-query protocol message.
type Msg struct {
	Kind    MsgKind
	QID     types.ID // query instance (RQID for rule queries)
	VID     types.ID // tuple vertex (prov queries/results, invalidation, rule queries: the head being expanded)
	RID     types.ID // rule execution vertex (rule queries/results)
	Ret     types.NodeID
	Payload []byte // UDF-encoded provenance (results only)
}

// WireSize reports the serialized size in bytes.
func (m *Msg) WireSize() int {
	switch m.Kind {
	case KProvQuery:
		return 1 + types.IDLen + types.IDLen + 4
	case KRuleQuery:
		return 1 + types.IDLen + types.IDLen + types.IDLen + 4
	case KProvResult, KRuleResult:
		return 1 + types.IDLen + types.IDLen + 4 + uvarintLen(uint64(len(m.Payload))) + len(m.Payload)
	case KInvalidate:
		return 1 + types.IDLen
	}
	return 1
}

// Encode appends the serialized message to dst.
func (m *Msg) Encode(dst []byte) []byte {
	dst = append(dst, byte(m.Kind))
	switch m.Kind {
	case KProvQuery:
		dst = append(dst, m.QID[:]...)
		dst = append(dst, m.VID[:]...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.Ret)))
	case KRuleQuery:
		dst = append(dst, m.QID[:]...)
		dst = append(dst, m.RID[:]...)
		dst = append(dst, m.VID[:]...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.Ret)))
	case KProvResult:
		dst = append(dst, m.QID[:]...)
		dst = append(dst, m.VID[:]...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.Ret)))
		dst = binary.AppendUvarint(dst, uint64(len(m.Payload)))
		dst = append(dst, m.Payload...)
	case KRuleResult:
		dst = append(dst, m.QID[:]...)
		dst = append(dst, m.RID[:]...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.Ret)))
		dst = binary.AppendUvarint(dst, uint64(len(m.Payload)))
		dst = append(dst, m.Payload...)
	case KInvalidate:
		dst = append(dst, m.VID[:]...)
	}
	return dst
}

// MsgPool is an explicit free list of protocol messages (see types.Pool
// for the sharing and zero-on-Put contract): query traversals exchange
// many small Msg structs, and recycling them keeps the steady-state query
// path allocation-free. Releasing a Msg drops (never reuses) its Payload
// slice, so results retained by pending queries and caches are unaffected.
type MsgPool = types.Pool[Msg]

// NewMsgPool creates an empty pool.
func NewMsgPool() *MsgPool { return &MsgPool{} }

var errBadMsg = errors.New("provquery: malformed message")

// DecodeMsg parses a serialized protocol message.
func DecodeMsg(b []byte) (*Msg, error) {
	if len(b) < 1 {
		return nil, errBadMsg
	}
	m := &Msg{Kind: MsgKind(b[0])}
	used := 1
	readID := func(dst *types.ID) bool {
		if len(b) < used+types.IDLen {
			return false
		}
		copy(dst[:], b[used:used+types.IDLen])
		used += types.IDLen
		return true
	}
	readRet := func() bool {
		if len(b) < used+4 {
			return false
		}
		m.Ret = types.NodeID(int32(binary.BigEndian.Uint32(b[used:])))
		used += 4
		return true
	}
	readPayload := func() bool {
		n, sz := binary.Uvarint(b[used:])
		if sz <= 0 || len(b) < used+sz+int(n) {
			return false
		}
		used += sz
		m.Payload = make([]byte, n)
		copy(m.Payload, b[used:used+int(n)])
		used += int(n)
		return true
	}
	switch m.Kind {
	case KProvQuery:
		if !readID(&m.QID) || !readID(&m.VID) || !readRet() {
			return nil, errBadMsg
		}
	case KRuleQuery:
		if !readID(&m.QID) || !readID(&m.RID) || !readID(&m.VID) || !readRet() {
			return nil, errBadMsg
		}
	case KProvResult:
		if !readID(&m.QID) || !readID(&m.VID) || !readRet() || !readPayload() {
			return nil, errBadMsg
		}
	case KRuleResult:
		if !readID(&m.QID) || !readID(&m.RID) || !readRet() || !readPayload() {
			return nil, errBadMsg
		}
	case KInvalidate:
		if !readID(&m.VID) {
			return nil, errBadMsg
		}
	default:
		return nil, errBadMsg
	}
	return m, nil
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// subQueryID derives the identifier of a child query from its parent and
// the child vertex — the paper's RQID = f_sha1(QID + RID).
func subQueryID(parent, child types.ID) types.ID {
	b := make([]byte, 0, 2*types.IDLen)
	b = append(b, parent[:]...)
	b = append(b, child[:]...)
	return types.HashBytes(b)
}
