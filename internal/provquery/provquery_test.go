package provquery

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/bdd"
	"repro/internal/provenance"
	"repro/internal/types"
)

// buildFig5 constructs the paper's Figure 5 provenance graph across four
// stores (nodes a..d; only a and b are populated) and wires processors
// with an in-memory instant network.
//
//	bestPathCost(@a,c,5) <- sp3@a <- pathCost(@a,c,5)
//	pathCost(@a,c,5) <- sp1@a <- link(@a,c,5)
//	pathCost(@a,c,5) <- sp2@b <- link(@b,a,3), bestPathCost(@b,c,2)
//	bestPathCost(@b,c,2) <- sp3@b <- pathCost(@b,c,2) <- sp1@b <- link(@b,c,2)
type fig5 struct {
	procs []*Processor
	byID  map[types.NodeID]*Processor

	bpcA, pcA, linkAC         types.Tuple
	bpcB, pcB, linkBA, linkBC types.Tuple
}

type instantNet struct {
	procs *[]*Processor
	queue []queuedMsg
	busy  bool
	Sent  int
	Bytes int
}

type queuedMsg struct {
	to types.NodeID
	m  *Msg
}

func (n *instantNet) send(to types.NodeID, m *Msg) {
	n.Sent++
	n.Bytes += m.WireSize()
	// Round-trip the codec to exercise serialization.
	dec, err := DecodeMsg(m.Encode(nil))
	if err != nil {
		panic(err)
	}
	n.queue = append(n.queue, queuedMsg{to, dec})
	n.drain()
}

func (n *instantNet) drain() {
	if n.busy {
		return
	}
	n.busy = true
	defer func() { n.busy = false }()
	for len(n.queue) > 0 {
		q := n.queue[0]
		n.queue = n.queue[1:]
		(*n.procs)[q.to].Handle(q.to, q.m)
	}
}

func newFig5(t *testing.T, udf UDF, strategy Strategy, threshold int64, cacheOn bool) (*fig5, *instantNet) {
	t.Helper()
	f := &fig5{byID: map[types.NodeID]*Processor{}}
	net := &instantNet{procs: &f.procs}
	a, b, c := types.NodeID(0), types.NodeID(1), types.NodeID(2)

	stores := make([]*provenance.Store, 4)
	for i := range stores {
		stores[i] = provenance.NewStore(types.NodeID(i))
	}

	f.linkAC = types.NewTuple("link", types.Node(a), types.Node(c), types.Int(5))
	f.linkBA = types.NewTuple("link", types.Node(b), types.Node(a), types.Int(3))
	f.linkBC = types.NewTuple("link", types.Node(b), types.Node(c), types.Int(2))
	f.pcA = types.NewTuple("pathCost", types.Node(a), types.Node(c), types.Int(5))
	f.pcB = types.NewTuple("pathCost", types.Node(b), types.Node(c), types.Int(2))
	f.bpcA = types.NewTuple("bestPathCost", types.Node(a), types.Node(c), types.Int(5))
	f.bpcB = types.NewTuple("bestPathCost", types.Node(b), types.Node(c), types.Int(2))

	// Node a's partition.
	sa := stores[a]
	sa.RegisterTuple(f.linkAC)
	sa.AddProv(f.linkAC.VID(), types.ZeroID, a)
	rid1a := types.RuleExecID("sp1", a, []types.ID{f.linkAC.VID()})
	sa.RegisterTuple(f.pcA)
	sa.AddProv(f.pcA.VID(), rid1a, a)
	sa.AddRuleExec(rid1a, "sp1", []types.ID{f.linkAC.VID()})
	rid2b := types.RuleExecID("sp2", b, []types.ID{f.linkBA.VID(), f.bpcB.VID()})
	sa.AddProv(f.pcA.VID(), rid2b, b)
	rid3a := types.RuleExecID("sp3", a, []types.ID{f.pcA.VID()})
	sa.RegisterTuple(f.bpcA)
	sa.AddProv(f.bpcA.VID(), rid3a, a)
	sa.AddRuleExec(rid3a, "sp3", []types.ID{f.pcA.VID()})
	sa.AddParent(f.linkAC.VID(), rid1a, f.pcA.VID(), a)
	sa.AddParent(f.pcA.VID(), rid3a, f.bpcA.VID(), a)

	// Node b's partition.
	sb := stores[b]
	sb.RegisterTuple(f.linkBA)
	sb.AddProv(f.linkBA.VID(), types.ZeroID, b)
	sb.RegisterTuple(f.linkBC)
	sb.AddProv(f.linkBC.VID(), types.ZeroID, b)
	rid1b := types.RuleExecID("sp1", b, []types.ID{f.linkBC.VID()})
	sb.RegisterTuple(f.pcB)
	sb.AddProv(f.pcB.VID(), rid1b, b)
	sb.AddRuleExec(rid1b, "sp1", []types.ID{f.linkBC.VID()})
	rid3b := types.RuleExecID("sp3", b, []types.ID{f.pcB.VID()})
	sb.RegisterTuple(f.bpcB)
	sb.AddProv(f.bpcB.VID(), rid3b, b)
	sb.AddRuleExec(rid3b, "sp3", []types.ID{f.pcB.VID()})
	sb.AddRuleExec(rid2b, "sp2", []types.ID{f.linkBA.VID(), f.bpcB.VID()})
	sb.AddParent(f.linkBC.VID(), rid1b, f.pcB.VID(), b)
	sb.AddParent(f.pcB.VID(), rid3b, f.bpcB.VID(), b)
	sb.AddParent(f.linkBA.VID(), rid2b, f.pcA.VID(), a)
	sb.AddParent(f.bpcB.VID(), rid2b, f.pcA.VID(), a)

	for i := range stores {
		id := types.NodeID(i)
		p := NewProcessor(id, stores[i], udf, func(to types.NodeID, m *Msg) { net.send(to, m) })
		p.Strategy = strategy
		p.Threshold = threshold
		p.CacheOn = cacheOn
		f.procs = append(f.procs, p)
		f.byID[id] = p
	}
	return f, net
}

func runQuery(t *testing.T, f *fig5, issuer types.NodeID, tu types.Tuple, loc types.NodeID) []byte {
	t.Helper()
	var out []byte
	f.byID[issuer].Query(tu.VID(), loc, func(p []byte) { out = p })
	if out == nil {
		t.Fatalf("query for %s did not complete", tu)
	}
	return out
}

func TestPolynomialFig5(t *testing.T) {
	f, _ := newFig5(t, Polynomial{}, BFS, 0, false)
	payload := runQuery(t, f, 3, f.bpcA, 0)
	expr, err := DecodePolynomial(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got := algebra.Eval(expr, algebra.Counting()); got != 2 {
		t.Fatalf("count = %d, want 2 (α and β·γ)", got)
	}
	bases := expr.BaseSet()
	if len(bases) != 3 {
		t.Fatalf("bases = %d, want 3", len(bases))
	}
}

func TestCountAcrossStrategies(t *testing.T) {
	for _, strat := range []Strategy{BFS, DFS} {
		f, _ := newFig5(t, Derivations{}, strat, 0, false)
		if got := DecodeCount(runQuery(t, f, 3, f.bpcA, 0)); got != 2 {
			t.Fatalf("strategy %s: count = %d, want 2", strat, got)
		}
	}
}

func TestDFSThresholdStopsEarly(t *testing.T) {
	// "Does the tuple have more than 0 derivations?" — the first (local)
	// derivation of pathCost(@a,c,5) already answers it, so the remote
	// sp2@b expansion is pruned entirely.
	f, net := newFig5(t, Derivations{}, DFSThreshold, 0, false)
	got := DecodeCount(runQuery(t, f, 3, f.bpcA, 0))
	if got < 1 {
		t.Fatalf("threshold result = %d, want >= 1", got)
	}
	thresholdMsgs := net.Sent

	f2, net2 := newFig5(t, Derivations{}, BFS, 0, false)
	if DecodeCount(runQuery(t, f2, 3, f2.bpcA, 0)) != 2 {
		t.Fatal("BFS wrong")
	}
	if thresholdMsgs >= net2.Sent {
		t.Errorf("threshold used %d msgs, BFS %d; expected pruning", thresholdMsgs, net2.Sent)
	}
	// An unreachable threshold forces the full traversal: same messages
	// as plain DFS.
	f3, net3 := newFig5(t, Derivations{}, DFSThreshold, 100, false)
	if DecodeCount(runQuery(t, f3, 3, f3.bpcA, 0)) != 2 {
		t.Fatal("high-threshold result wrong")
	}
	if net3.Sent != net2.Sent {
		t.Errorf("unreachable threshold sent %d msgs, full traversal sends %d", net3.Sent, net2.Sent)
	}
}

func TestNodeSetFig5(t *testing.T) {
	f, _ := newFig5(t, NodeSet{}, BFS, 0, false)
	nodes := DecodeNodeSet(runQuery(t, f, 3, f.bpcA, 0))
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Fatalf("nodes = %v, want [a b]", nodes)
	}
}

func TestBDDFig5(t *testing.T) {
	alloc := algebra.NewVarAlloc()
	f, _ := newFig5(t, BDDProv{Alloc: alloc}, BFS, 0, false)
	m := bdd.New()
	root, err := DecodeBDD(m, runQuery(t, f, 3, f.bpcA, 0))
	if err != nil {
		t.Fatal(err)
	}
	if root == bdd.False || root == bdd.True {
		t.Fatal("degenerate BDD")
	}
	// With link(@a,c,5) true alone the tuple is derivable.
	varAC := alloc.VarOf(algebra.Base{VID: f.linkAC.VID()})
	if !m.Eval(root, map[int]bool{varAC: true}) {
		t.Error("derivable via α alone")
	}
	// With only b's links it is also derivable (the β·γ path).
	varBA := alloc.VarOf(algebra.Base{VID: f.linkBA.VID()})
	varBC := alloc.VarOf(algebra.Base{VID: f.linkBC.VID()})
	if !m.Eval(root, map[int]bool{varBA: true, varBC: true}) {
		t.Error("derivable via β·γ")
	}
	if m.Eval(root, map[int]bool{varBA: true}) {
		t.Error("β alone should not derive")
	}
}

func TestDerivabilityWithTrust(t *testing.T) {
	// Excluding node b's base tuples leaves the α derivation.
	f, _ := newFig5(t, Derivability{
		Trusted: func(_ types.Tuple, node types.NodeID) bool { return node != 1 },
	}, BFS, 0, false)
	if !DecodeBool(runQuery(t, f, 3, f.bpcA, 0)) {
		t.Error("should be derivable without b")
	}
	// Excluding node a's base tuple still leaves β·γ.
	f2, _ := newFig5(t, Derivability{
		Trusted: func(tu types.Tuple, _ types.NodeID) bool { return !tu.Equal(f.linkAC) },
	}, BFS, 0, false)
	if !DecodeBool(runQuery(t, f2, 3, f2.bpcA, 0)) {
		t.Error("should be derivable without α")
	}
	// Excluding everything kills it.
	f3, _ := newFig5(t, Derivability{
		Trusted: func(types.Tuple, types.NodeID) bool { return false },
	}, BFS, 0, false)
	if DecodeBool(runQuery(t, f3, 3, f3.bpcA, 0)) {
		t.Error("underivable when nothing is trusted")
	}
}

func TestCacheHitSecondQuery(t *testing.T) {
	f, net := newFig5(t, Polynomial{}, BFS, 0, true)
	r1 := runQuery(t, f, 3, f.bpcA, 0)
	firstMsgs := net.Sent
	r2 := runQuery(t, f, 3, f.bpcA, 0)
	secondMsgs := net.Sent - firstMsgs
	if string(r1) != string(r2) {
		t.Fatal("cached result differs")
	}
	// The second query hits the cache at node a: one query + one result.
	if secondMsgs >= firstMsgs {
		t.Errorf("no cache benefit: first %d msgs, second %d", firstMsgs, secondMsgs)
	}
	if f.byID[0].CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestSubtreeCacheServesDifferentRoot(t *testing.T) {
	// "Subsequent queries need not be for the exact tuple": after querying
	// bestPathCost(@b,c,2), the later bestPathCost(@a,c,5) query reaches
	// node b and reuses the cached subtree rooted at bestPathCost(@b,c,2)
	// instead of re-traversing it.
	f, _ := newFig5(t, Polynomial{}, BFS, 0, true)
	runQuery(t, f, 3, f.bpcB, 1)
	b := f.byID[1]
	hitsBefore, servedBefore := b.CacheHits, b.QueriesServed
	r1 := runQuery(t, f, 3, f.bpcA, 0)
	if b.CacheHits <= hitsBefore {
		t.Errorf("second query did not hit b's subtree cache (hits %d -> %d, served %d -> %d)",
			hitsBefore, b.CacheHits, servedBefore, b.QueriesServed)
	}
	// The warm result matches a cold traversal exactly.
	fCold, _ := newFig5(t, Polynomial{}, BFS, 0, false)
	r2 := runQuery(t, fCold, 3, fCold.bpcA, 0)
	if string(r1) != string(r2) {
		t.Error("cache-served subtree changed the query result")
	}
}

func TestInvalidationClearsCaches(t *testing.T) {
	f, _ := newFig5(t, Polynomial{}, BFS, 0, true)
	runQuery(t, f, 3, f.bpcA, 0)
	a, b := f.byID[0], f.byID[1]
	if a.CacheSize() == 0 || b.CacheSize() == 0 {
		t.Fatal("caches not populated")
	}
	// A change to link(@b,c,2) must invalidate the chain up to
	// bestPathCost(@a,c,5) at node a.
	b.Store.AddProv(f.linkBC.VID(), types.HashString("newrule"), 1)
	if _, ok := a.cache[f.bpcA.VID()]; ok {
		t.Error("stale cache for bestPathCost(@a,c,5) survived invalidation")
	}
	if _, ok := a.cache[f.pcA.VID()]; ok {
		t.Error("stale cache for pathCost(@a,c,5) survived invalidation")
	}
	// Re-query returns fresh (and repopulates).
	runQuery(t, f, 3, f.bpcA, 0)
	if _, ok := a.cache[f.bpcA.VID()]; !ok {
		t.Error("cache not repopulated")
	}
}

func TestCacheCoherenceAfterChange(t *testing.T) {
	// Counting query; after adding a third derivation for pathCost(@a,c,5)
	// the cached count must not be served stale.
	f, _ := newFig5(t, Derivations{}, BFS, 0, true)
	if got := DecodeCount(runQuery(t, f, 3, f.bpcA, 0)); got != 2 {
		t.Fatalf("initial count = %d", got)
	}
	a := f.byID[0]
	// New derivation: pretend sp1 fired again via a new rule at a (a
	// synthetic third derivation with a base child).
	extra := types.NewTuple("link", types.Node(0), types.Node(2), types.Int(7))
	a.Store.RegisterTuple(extra)
	a.Store.AddProv(extra.VID(), types.ZeroID, 0)
	rid := types.RuleExecID("spX", 0, []types.ID{extra.VID()})
	a.Store.AddRuleExec(rid, "spX", []types.ID{extra.VID()})
	a.Store.AddParent(extra.VID(), rid, f.pcA.VID(), 0)
	a.Store.AddProv(f.pcA.VID(), rid, 0)
	if got := DecodeCount(runQuery(t, f, 3, f.bpcA, 0)); got != 3 {
		t.Fatalf("post-change count = %d, want 3", got)
	}
}

func TestMoonwalkSamples(t *testing.T) {
	f, _ := newFig5(t, Derivations{}, Moonwalk, 0, false)
	for _, p := range f.procs {
		p.MoonwalkN = 1
	}
	got := DecodeCount(runQuery(t, f, 3, f.bpcA, 0))
	// One sampled derivation at each fan-out: the result is 1 (either
	// branch), strictly less than the full count of 2.
	if got != 1 {
		t.Fatalf("moonwalk count = %d, want 1", got)
	}
}

func TestUnknownVertexAnswersEmpty(t *testing.T) {
	f, _ := newFig5(t, Derivations{}, BFS, 0, false)
	missing := types.NewTuple("ghost", types.Node(0), types.Int(1))
	if got := DecodeCount(runQuery(t, f, 3, missing, 0)); got != 0 {
		t.Fatalf("missing vertex count = %d, want 0", got)
	}
}

func TestMsgCodecRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{Kind: KProvQuery, QID: types.HashString("q"), VID: types.HashString("v"), Ret: 3},
		{Kind: KRuleQuery, QID: types.HashString("q"), RID: types.HashString("r"), Ret: 1},
		{Kind: KProvResult, QID: types.HashString("q"), VID: types.HashString("v"), Ret: 2, Payload: []byte{9, 8}},
		{Kind: KRuleResult, QID: types.HashString("q"), RID: types.HashString("r"), Ret: 0, Payload: []byte{}},
		{Kind: KInvalidate, VID: types.HashString("v")},
	}
	for _, m := range msgs {
		enc := m.Encode(nil)
		if len(enc) != m.WireSize() {
			t.Errorf("kind %d: wire size %d != %d", m.Kind, m.WireSize(), len(enc))
		}
		dec, err := DecodeMsg(enc)
		if err != nil {
			t.Fatalf("kind %d: %v", m.Kind, err)
		}
		if dec.Kind != m.Kind || dec.QID != m.QID || dec.VID != m.VID ||
			dec.RID != m.RID || dec.Ret != m.Ret || string(dec.Payload) != string(m.Payload) {
			t.Errorf("kind %d: round trip mismatch", m.Kind)
		}
	}
	if _, err := DecodeMsg(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := DecodeMsg([]byte{99}); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestUDFByName(t *testing.T) {
	for _, name := range []string{"polynomial", "bdd", "derivations", "nodeset", "derivability"} {
		u, err := udfByName(name, algebra.NewVarAlloc())
		if err != nil || u.Name() != name {
			t.Errorf("udfByName(%q) = %v, %v", name, u, err)
		}
	}
	if _, err := udfByName("bogus", nil); err == nil {
		t.Error("bogus UDF accepted")
	}
}
