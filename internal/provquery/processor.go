package provquery

import (
	"encoding/binary"
	"math/rand"

	"repro/internal/provenance"
	"repro/internal/types"
)

// Strategy selects the query traversal order (§6.2).
type Strategy uint8

// Traversal strategies.
const (
	// BFS expands every alternative derivation of a vertex at once.
	BFS Strategy = iota
	// DFS expands alternative derivations one at a time, starting the
	// next only when the previous result has returned.
	DFS
	// DFSThreshold is DFS with early termination once the partial result
	// exceeds the query threshold.
	DFSThreshold
	// Moonwalk randomly samples up to MoonwalkN alternative derivations
	// at each vertex (the random moonwalk of §6.2); results are
	// approximate.
	Moonwalk
)

func (s Strategy) String() string {
	switch s {
	case BFS:
		return "bfs"
	case DFS:
		return "dfs"
	case DFSThreshold:
		return "dfs-threshold"
	case Moonwalk:
		return "moonwalk"
	}
	return "?"
}

type cacheEntry struct {
	udf     string
	payload []byte
}

type provChild struct {
	base       bool
	baseResult []byte
	rid        types.ID
	rloc       types.NodeID
}

type pendProv struct {
	qid, vid types.ID
	ret      types.NodeID
	children []provChild
	results  [][]byte
	done     []bool
	next     int // DFS cursor
	finished bool
}

type pendRule struct {
	rqid, rid types.ID
	ret       types.NodeID
	headVID   types.ID // the tuple vertex this rule execution derives
	rule      string
	children  []types.ID
	results   [][]byte
	done      []bool
	next      int
	finished  bool
}

type childRef struct {
	parent types.ID
	idx    int
}

// Processor executes the distributed provenance-query protocol at one node.
type Processor struct {
	Node  types.NodeID
	Store *provenance.Store
	UDF   UDF

	Strategy  Strategy
	Threshold int64
	MoonwalkN int
	CacheOn   bool

	// Send ships a protocol message to another node; the runtime charges
	// its wire size. Self-sends never occur (local work is dispatched
	// directly, like RapidNet local events). A sent Msg belongs to the
	// transport: when Msgs is set, the transport releases it back to the
	// pool once consumed.
	Send func(to types.NodeID, m *Msg)

	// Msgs, when set, is the free list protocol messages are drawn from.
	// Nil keeps plain allocation.
	Msgs *MsgPool

	rng *rand.Rand

	cache      map[types.ID]*cacheEntry
	ruleCache  map[types.ID]*cacheEntry
	pendProv   map[types.ID]*pendProv
	pendRule   map[types.ID]*pendRule
	rqidToProv map[types.ID]childRef
	qidToRule  map[types.ID]childRef
	onComplete map[types.ID]func(payload []byte)
	seq        uint64

	// Stats.
	CacheHits     int64
	CacheMisses   int64
	Invalidations int64
	QueriesServed int64
}

// NewProcessor creates a query processor bound to a node's provenance
// partition. It registers itself for provenance-change notifications to
// drive cache invalidation.
func NewProcessor(node types.NodeID, store *provenance.Store, udf UDF, send func(to types.NodeID, m *Msg)) *Processor {
	p := &Processor{
		Node:       node,
		Store:      store,
		UDF:        udf,
		Send:       send,
		MoonwalkN:  2,
		rng:        rand.New(rand.NewSource(int64(node)*7919 + 17)),
		cache:      map[types.ID]*cacheEntry{},
		ruleCache:  map[types.ID]*cacheEntry{},
		pendProv:   map[types.ID]*pendProv{},
		pendRule:   map[types.ID]*pendRule{},
		rqidToProv: map[types.ID]childRef{},
		qidToRule:  map[types.ID]childRef{},
		onComplete: map[types.ID]func([]byte){},
	}
	prev := store.OnProvChange
	store.OnProvChange = func(vid types.ID) {
		if prev != nil {
			prev(vid)
		}
		p.invalidate(vid)
	}
	return p
}

// Query issues a root provenance query for tuple vertex vid stored at loc;
// cb runs when the result arrives. It returns the query instance ID.
func (p *Processor) Query(vid types.ID, loc types.NodeID, cb func(payload []byte)) types.ID {
	p.seq++
	var b [28]byte
	binary.BigEndian.PutUint32(b[:4], uint32(int32(p.Node)))
	binary.BigEndian.PutUint64(b[4:12], p.seq)
	copy(b[12:], vid[:16])
	qid := types.HashBytes(b[:])
	p.onComplete[qid] = cb
	m := p.newMsg()
	m.Kind, m.QID, m.VID, m.Ret = KProvQuery, qid, vid, p.Node
	if loc == p.Node {
		p.handleProvQuery(m)
		p.Msgs.Put(m)
	} else {
		p.Send(loc, m)
	}
	return qid
}

// newMsg draws an outgoing message from the pool (nil pool: plain
// allocation).
func (p *Processor) newMsg() *Msg { return p.Msgs.Get() }

// Handle dispatches an incoming protocol message.
func (p *Processor) Handle(from types.NodeID, m *Msg) {
	switch m.Kind {
	case KProvQuery:
		p.handleProvQuery(m)
	case KRuleQuery:
		p.handleRuleQuery(m)
	case KProvResult:
		p.handleProvResult(m)
	case KRuleResult:
		p.handleRuleResult(m)
	case KInvalidate:
		p.invalidate(m.VID)
	}
}

// reply routes a response message. Locally-dispatched messages are dead
// once Handle returns (handlers copy the fields they keep and may retain
// the Payload slice, never the struct), so they go straight back to the
// pool.
func (p *Processor) reply(to types.NodeID, m *Msg) {
	if to == p.Node {
		p.Handle(p.Node, m)
		p.Msgs.Put(m)
		return
	}
	p.Send(to, m)
}

// --- tuple vertices (the idb1-idb4 rules) -------------------------------

func (p *Processor) handleProvQuery(m *Msg) {
	p.QueriesServed++
	if p.CacheOn {
		if ce, ok := p.cache[m.VID]; ok && ce.udf == p.UDF.Name() {
			p.CacheHits++
			r := p.newMsg()
			r.Kind, r.QID, r.VID, r.Ret, r.Payload = KProvResult, m.QID, m.VID, m.Ret, ce.payload
			p.reply(m.Ret, r)
			return
		}
		p.CacheMisses++
	}
	derivs := p.Store.Derivations(m.VID)
	pp := &pendProv{qid: m.QID, vid: m.VID, ret: m.Ret}
	for _, d := range derivs {
		if d.RID.IsZero() {
			t, ok := p.Store.TupleOf(m.VID)
			var res []byte
			if ok {
				res = p.UDF.EDB(t, m.VID, p.Node)
			} else {
				res = p.UDF.IDB(nil, m.VID, p.Node)
			}
			pp.children = append(pp.children, provChild{base: true, baseResult: res})
		} else {
			pp.children = append(pp.children, provChild{rid: d.RID, rloc: d.RLoc})
		}
	}
	pp.results = make([][]byte, len(pp.children))
	pp.done = make([]bool, len(pp.children))
	p.pendProv[m.QID] = pp
	p.advanceProv(pp)
}

// advanceProv issues child rule queries per the traversal strategy and
// finishes the query when its result is determined.
func (p *Processor) advanceProv(pp *pendProv) {
	if pp.finished {
		return
	}
	switch p.Strategy {
	case BFS:
		any := false
		for i := range pp.children {
			if pp.done[i] {
				continue
			}
			c := &pp.children[i]
			if c.base {
				pp.results[i] = c.baseResult
				pp.done[i] = true
				continue
			}
			if pp.results[i] == nil && !pp.done[i] {
				any = true
			}
		}
		_ = any
		// Issue all unresolved remote children once.
		for i := range pp.children {
			c := &pp.children[i]
			if pp.done[i] || c.base {
				continue
			}
			p.issueRuleChild(pp, i)
		}
		p.maybeFinishProv(pp)
	case Moonwalk:
		// Sample up to MoonwalkN children; prune the rest.
		order := p.rng.Perm(len(pp.children))
		keep := p.MoonwalkN
		if keep > len(order) {
			keep = len(order)
		}
		chosen := map[int]bool{}
		for _, i := range order[:keep] {
			chosen[i] = true
		}
		for i := range pp.children {
			if !chosen[i] {
				pp.done[i] = true // pruned: contributes nothing
				continue
			}
			c := &pp.children[i]
			if c.base {
				pp.results[i] = c.baseResult
				pp.done[i] = true
				continue
			}
			p.issueRuleChild(pp, i)
		}
		p.maybeFinishProv(pp)
	case DFS, DFSThreshold:
		for pp.next < len(pp.children) {
			if p.Strategy == DFSThreshold && p.UDF.Exceeds(CtxIDB, collect(pp.results, pp.done), p.Threshold) {
				break
			}
			i := pp.next
			c := &pp.children[i]
			if c.base {
				pp.results[i] = c.baseResult
				pp.done[i] = true
				pp.next++
				continue
			}
			p.issueRuleChild(pp, i)
			return // wait for this child before expanding the next
		}
		p.maybeFinishProv(pp)
	}
}

func collect(results [][]byte, done []bool) [][]byte {
	out := make([][]byte, 0, len(results))
	for i, r := range results {
		if done[i] && r != nil {
			out = append(out, r)
		}
	}
	return out
}

func (p *Processor) issueRuleChild(pp *pendProv, idx int) {
	c := &pp.children[idx]
	rqid := subQueryID(pp.qid, c.rid)
	p.rqidToProv[rqid] = childRef{parent: pp.qid, idx: idx}
	m := p.newMsg()
	m.Kind, m.QID, m.RID, m.VID, m.Ret = KRuleQuery, rqid, c.rid, pp.vid, p.Node
	if c.rloc == p.Node {
		p.handleRuleQuery(m)
		p.Msgs.Put(m)
		return
	}
	p.Send(c.rloc, m)
}

func (p *Processor) maybeFinishProv(pp *pendProv) {
	if pp.finished {
		return
	}
	complete := true
	for _, d := range pp.done {
		if !d {
			complete = false
			break
		}
	}
	thresholdHit := p.Strategy == DFSThreshold &&
		p.UDF.Exceeds(CtxIDB, collect(pp.results, pp.done), p.Threshold)
	if !complete && !thresholdHit {
		return
	}
	pp.finished = true
	delete(p.pendProv, pp.qid)
	res := p.UDF.IDB(collect(pp.results, pp.done), pp.vid, p.Node)
	if p.CacheOn && complete {
		// Threshold-truncated and moonwalk-sampled results are partial;
		// only complete traversals are cached.
		if p.Strategy != Moonwalk {
			p.cache[pp.vid] = &cacheEntry{udf: p.UDF.Name(), payload: res}
		}
	}
	r := p.newMsg()
	r.Kind, r.QID, r.VID, r.Ret, r.Payload = KProvResult, pp.qid, pp.vid, pp.ret, res
	p.reply(pp.ret, r)
}

func (p *Processor) handleRuleResult(m *Msg) {
	ref, ok := p.rqidToProv[m.QID]
	if !ok {
		return // late result for a finished (threshold-terminated) query
	}
	delete(p.rqidToProv, m.QID)
	pp := p.pendProv[ref.parent]
	if pp == nil || pp.finished {
		return
	}
	pp.results[ref.idx] = m.Payload
	pp.done[ref.idx] = true
	if p.Strategy == DFS || p.Strategy == DFSThreshold {
		pp.next = ref.idx + 1
		p.advanceProv(pp)
		return
	}
	p.maybeFinishProv(pp)
}

// --- rule execution vertices (the rv1-rv4 rules) -------------------------

func (p *Processor) handleRuleQuery(m *Msg) {
	if p.CacheOn {
		if ce, ok := p.ruleCache[m.RID]; ok && ce.udf == p.UDF.Name() {
			p.CacheHits++
			r := p.newMsg()
			r.Kind, r.QID, r.RID, r.Ret, r.Payload = KRuleResult, m.QID, m.RID, m.Ret, ce.payload
			p.reply(m.Ret, r)
			return
		}
		p.CacheMisses++
	}
	re, ok := p.Store.RuleExecOf(m.RID)
	if !ok {
		// The rule execution was retracted while the query was in flight
		// (churn); answer with the empty product.
		res := p.UDF.Rule(nil, "?", p.Node)
		r := p.newMsg()
		r.Kind, r.QID, r.RID, r.Ret, r.Payload = KRuleResult, m.QID, m.RID, m.Ret, res
		p.reply(m.Ret, r)
		return
	}
	pr := &pendRule{
		rqid:     m.QID,
		rid:      m.RID,
		ret:      m.Ret,
		headVID:  m.VID,
		rule:     re.Rule,
		children: re.VIDList,
		results:  make([][]byte, len(re.VIDList)),
		done:     make([]bool, len(re.VIDList)),
	}
	p.pendRule[m.QID] = pr
	p.advanceRule(pr)
}

// advanceRule expands a rule vertex's input tuples. Rule bodies are
// localized, so every child VID is local; their own derivations may still
// fan out to remote nodes.
func (p *Processor) advanceRule(pr *pendRule) {
	if pr.finished {
		return
	}
	switch p.Strategy {
	case BFS, Moonwalk:
		// Rule inputs are all required (a join needs every input); only
		// alternative derivations are sampled by moonwalk.
		for i, vid := range pr.children {
			if pr.done[i] {
				continue
			}
			p.issueProvChild(pr, i, vid)
		}
		p.maybeFinishRule(pr)
	case DFS, DFSThreshold:
		for pr.next < len(pr.children) {
			if p.Strategy == DFSThreshold && pr.next > 0 &&
				p.UDF.Exceeds(CtxRule, collect(pr.results, pr.done), p.Threshold) {
				break
			}
			i := pr.next
			p.issueProvChild(pr, i, pr.children[i])
			return
		}
		p.maybeFinishRule(pr)
	}
}

func (p *Processor) issueProvChild(pr *pendRule, idx int, vid types.ID) {
	qid := subQueryID(pr.rqid, vid)
	p.qidToRule[qid] = childRef{parent: pr.rqid, idx: idx}
	m := p.newMsg()
	m.Kind, m.QID, m.VID, m.Ret = KProvQuery, qid, vid, p.Node
	p.handleProvQuery(m)
	p.Msgs.Put(m)
}

func (p *Processor) maybeFinishRule(pr *pendRule) {
	if pr.finished {
		return
	}
	complete := true
	for _, d := range pr.done {
		if !d {
			complete = false
			break
		}
	}
	thresholdHit := p.Strategy == DFSThreshold && len(pr.children) > 0 &&
		p.UDF.Exceeds(CtxRule, collect(pr.results, pr.done), p.Threshold)
	if !complete && !thresholdHit {
		return
	}
	pr.finished = true
	delete(p.pendRule, pr.rqid)
	res := p.UDF.Rule(collect(pr.results, pr.done), pr.rule, p.Node)
	if p.CacheOn && complete && p.Strategy != Moonwalk {
		p.ruleCache[pr.rid] = &cacheEntry{udf: p.UDF.Name(), payload: res}
		// Install the §6.1 reverse dataflow edges for this now-cached
		// traversal level: each input tuple (local, bodies are localized)
		// points through this rule execution at the head vertex it
		// derives. Edges are created here — per cached traversal — rather
		// than on every derivation in the engine, and are consumed when an
		// invalidation wave clears this level.
		for _, child := range pr.children {
			p.Store.AddParent(child, pr.rid, pr.headVID, pr.ret)
		}
	}
	r := p.newMsg()
	r.Kind, r.QID, r.RID, r.Ret, r.Payload = KRuleResult, pr.rqid, pr.rid, pr.ret, res
	p.reply(pr.ret, r)
}

func (p *Processor) handleProvResult(m *Msg) {
	if cb, ok := p.onComplete[m.QID]; ok {
		delete(p.onComplete, m.QID)
		cb(m.Payload)
		return
	}
	ref, ok := p.qidToRule[m.QID]
	if !ok {
		return
	}
	delete(p.qidToRule, m.QID)
	pr := p.pendRule[ref.parent]
	if pr == nil || pr.finished {
		return
	}
	pr.results[ref.idx] = m.Payload
	pr.done[ref.idx] = true
	if p.Strategy == DFS || p.Strategy == DFSThreshold {
		pr.next = ref.idx + 1
		p.advanceRule(pr)
		return
	}
	p.maybeFinishRule(pr)
}

// --- cache invalidation (§6.1) -------------------------------------------

// invalidate drops cached results that depend on vid and propagates the
// invalidation flag toward dependent (head) tuples. Propagation stops as
// soon as a node had nothing cached: a cached ancestor implies cached
// results along the whole reverse path (complete traversals cache — and
// install reverse edges — at every level), so an empty cache bounds the
// walk. The walked edges are consumed: every cache at or above this vertex
// is cold afterwards, and the next cached traversal re-installs them.
func (p *Processor) invalidate(vid types.ID) {
	if !p.CacheOn {
		return
	}
	removed := false
	if _, ok := p.cache[vid]; ok {
		delete(p.cache, vid)
		removed = true
	}
	parents := p.Store.Parents(vid)
	for _, par := range parents {
		if _, ok := p.ruleCache[par.RID]; ok {
			delete(p.ruleCache, par.RID)
			removed = true
		}
	}
	if len(parents) > 0 {
		p.Store.DropParents(vid)
	}
	if !removed {
		return
	}
	p.Invalidations++
	for _, par := range parents {
		if par.HeadLoc == p.Node {
			p.invalidate(par.HeadVID)
		} else {
			m := p.newMsg()
			m.Kind, m.VID = KInvalidate, par.HeadVID
			p.Send(par.HeadLoc, m)
		}
	}
}

// CacheSize reports the number of cached vertex results (tuple + rule).
func (p *Processor) CacheSize() int { return len(p.cache) + len(p.ruleCache) }

// Pending reports the number of in-flight query protocol records (pending
// traversals, child references and completion callbacks) — a diagnostic
// for leak detection in long churn runs.
func (p *Processor) Pending() int {
	return len(p.pendProv) + len(p.pendRule) + len(p.rqidToProv) + len(p.qidToRule) + len(p.onComplete)
}
