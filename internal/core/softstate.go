package core

import (
	"repro/internal/simnet"
	"repro/internal/types"
)

// SoftState manages base tuples with soft-state semantics on a simulated
// cluster: a tuple is announced once, stays visible while it keeps being
// refreshed, and is retracted by an expiry timer when refreshes stop —
// the periodic refresh/timeout discipline of declarative networking
// protocols (CHORD's alive tuples, route announcements), built on
// `Sim.After` timers that coexist with the OnIdle-gated DRed release.
//
// The discipline is deliberate about counting provenance:
//
//   - Announce is the ONLY operation that inserts. A refresh extends the
//     entry's deadline — pure bookkeeping, no second InsertBase — because
//     re-inserting would bump the derivation count and a single expiry
//     could then never fully retract the tuple (a leak the no-leak fence
//     would catch).
//   - Expiry is the ONLY timer-driven retraction, and it fires exactly
//     once per announced entry: the expiry timer re-arms while refreshes
//     keep moving the deadline, and issues one DeleteBase when the
//     deadline finally passes. The resulting DRed wave interleaves with
//     any other timers the driver scheduled; the OnIdle release discipline
//     keeps staged suspects hidden until global quiescence regardless
//     (fenced in softstate_test.go).
//
// All methods must run inside virtual time (from Sim.At/After callbacks
// or between Run calls); the simulation is single-threaded, so no locking
// is needed.
type SoftState struct {
	c       *Cluster
	ttl     simnet.Time
	entries map[ssKey]*ssEntry

	// Expirations counts expiry-driven DeleteBase calls (vacuousness
	// guard for tests: a soft-state workload where nothing ever expires
	// proves nothing).
	Expirations int
}

type ssKey struct {
	node types.NodeID
	vid  types.ID
}

type ssEntry struct {
	tup      types.Tuple
	node     types.NodeID
	deadline simnet.Time
	silenced bool // stop auto-refresh; let the deadline pass
	expired  bool
	armed    bool // an expiry timer is scheduled
	chain    int  // remaining auto-refresh firings
}

// NewSoftState creates a soft-state manager with the given time-to-live.
func NewSoftState(c *Cluster, ttl simnet.Time) *SoftState {
	return &SoftState{c: c, ttl: ttl, entries: make(map[ssKey]*ssEntry)}
}

func (s *SoftState) key(node types.NodeID, tup types.Tuple) ssKey {
	return ssKey{node: node, vid: tup.VID()}
}

// Announce inserts tup as a base tuple at node and starts its TTL clock.
// Announcing a live entry is a refresh, not a second insert.
func (s *SoftState) Announce(node types.NodeID, tup types.Tuple) {
	k := s.key(node, tup)
	if e, ok := s.entries[k]; ok && !e.expired {
		s.refresh(e)
		return
	}
	e := &ssEntry{tup: tup, node: node, deadline: s.c.Sim.Now() + s.ttl}
	s.entries[k] = e
	s.c.Hosts[node].Engine.InsertBase(tup)
	s.armExpiry(e)
}

// Refresh extends a live entry's deadline by one TTL from now. Refreshing
// an expired or unknown entry is a no-op (the protocol analogue: a
// refresh datagram that loses the race against the expiry timer does not
// resurrect state — the peer must re-Announce).
func (s *SoftState) Refresh(node types.NodeID, tup types.Tuple) {
	if e, ok := s.entries[s.key(node, tup)]; ok && !e.expired {
		s.refresh(e)
	}
}

func (s *SoftState) refresh(e *ssEntry) {
	e.deadline = s.c.Sim.Now() + s.ttl
	e.silenced = false
	s.armExpiry(e)
}

// AutoRefresh schedules `times` periodic refreshes of a live entry on the
// simulator's timer wheel (Sim.After), the protocol's refresh loop. The
// chain is bounded so a fixpoint run terminates; Silence cuts it short.
func (s *SoftState) AutoRefresh(node types.NodeID, tup types.Tuple, period simnet.Time, times int) {
	e, ok := s.entries[s.key(node, tup)]
	if !ok {
		return
	}
	e.chain = times
	s.armRefresh(e, period)
}

func (s *SoftState) armRefresh(e *ssEntry, period simnet.Time) {
	if e.chain <= 0 || e.expired || e.silenced {
		return
	}
	e.chain--
	s.c.Sim.After(period, func() {
		if e.expired || e.silenced {
			return
		}
		s.refresh(e)
		s.armRefresh(e, period)
	})
}

// Silence stops refreshing an entry: its deadline stops moving and the
// expiry timer retracts the tuple when it passes (a crashed peer, a
// withdrawn announcement that drains by timeout instead of explicit
// retraction).
func (s *SoftState) Silence(node types.NodeID, tup types.Tuple) {
	if e, ok := s.entries[s.key(node, tup)]; ok {
		e.silenced = true
	}
}

// Withdraw retracts a live entry immediately (explicit retraction — the
// fast path protocols use when they know state is gone, vs. waiting out
// the TTL).
func (s *SoftState) Withdraw(node types.NodeID, tup types.Tuple) {
	k := s.key(node, tup)
	e, ok := s.entries[k]
	if !ok || e.expired {
		return
	}
	e.expired = true
	delete(s.entries, k)
	s.c.Hosts[node].Engine.DeleteBase(e.tup)
}

// Live reports whether an entry is currently announced and unexpired.
func (s *SoftState) Live(node types.NodeID, tup types.Tuple) bool {
	e, ok := s.entries[s.key(node, tup)]
	return ok && !e.expired
}

// armExpiry keeps exactly one expiry timer per entry in flight, parked on
// the entry's current deadline. A timer that fires early (the deadline
// moved while it was queued) re-arms instead of retracting.
func (s *SoftState) armExpiry(e *ssEntry) {
	if e.armed || e.expired {
		return
	}
	e.armed = true
	s.c.Sim.At(e.deadline, func() {
		e.armed = false
		if e.expired {
			return
		}
		if s.c.Sim.Now() < e.deadline {
			s.armExpiry(e)
			return
		}
		e.expired = true
		delete(s.entries, s.key(e.node, e.tup))
		s.Expirations++
		s.c.Hosts[e.node].Engine.DeleteBase(e.tup)
	})
}
