package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/types"
)

const ms = simnet.Millisecond

// cycleTopo builds a plain n-node cycle so path assertions are hand
// computable (no random chords).
func cycleTopo(n int) *topology.Topology {
	t := &topology.Topology{N: n}
	for i := 0; i < n; i++ {
		t.Links = append(t.Links, topology.Link{
			U: types.NodeID(i), V: types.NodeID((i + 1) % n),
			Class: topology.ClassStub, Cost: 1,
		})
	}
	return t
}

// softCluster boots a mincost cluster whose links are announced through a
// SoftState manager instead of the config EDB, all at t=0.
func softCluster(t *testing.T, topo *topology.Topology, ttl simnet.Time, plan *simnet.FaultPlan) (*Cluster, *SoftState) {
	t.Helper()
	c, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference, NoLinkTuples: true, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	ss := NewSoftState(c, ttl)
	c.Sim.At(0, func() {
		for _, l := range topo.Links {
			ss.Announce(l.U, apps.LinkTuple(l.U, l.V, l.Cost))
			ss.Announce(l.V, apps.LinkTuple(l.V, l.U, l.Cost))
		}
	})
	return c, ss
}

// TestSoftStateLifecycle covers the timer discipline in isolation:
// announce → visible; refresh moves the deadline; silence lets it pass;
// expiry retracts exactly once; withdraw retracts immediately; refreshing
// an expired entry does not resurrect it.
func TestSoftStateLifecycle(t *testing.T) {
	topo := cycleTopo(4)
	c, ss := softCluster(t, topo, 10*ms, nil)
	l0 := apps.LinkTuple(0, 1, 1)

	if err := c.RunUntil(5 * ms); err != nil {
		t.Fatal(err)
	}
	if !ss.Live(0, l0) {
		t.Fatal("announced entry not live")
	}
	if len(c.Hosts[0].Engine.Tuples("link")) == 0 {
		t.Fatal("announce did not insert")
	}

	// Keep l0 alive past its original deadline with one refresh.
	c.Sim.At(8*ms, func() { ss.Refresh(0, l0) })
	// Re-announcing a live entry must behave as a refresh, not a second
	// insert (a double insert would leak a derivation count).
	c.Sim.At(9*ms, func() { ss.Announce(0, l0) })
	if err := c.RunUntil(12 * ms); err != nil {
		t.Fatal(err)
	}
	if !ss.Live(0, l0) {
		t.Fatal("refreshed entry expired at original deadline")
	}
	// All unrefreshed entries expired at 10ms; l0 is the only survivor.
	if ss.Expirations != 2*len(topo.Links)-1 {
		t.Fatalf("expirations = %d, want %d", ss.Expirations, 2*len(topo.Links)-1)
	}

	// The single expiry retraction must fully retract despite the two
	// extra announce/refresh calls — the no-double-insert discipline.
	if err := c.RunUntil(30 * ms); err != nil {
		t.Fatal(err)
	}
	if ss.Live(0, l0) {
		t.Fatal("entry still live after refreshes stopped")
	}
	if n := len(c.TuplesOf("link")); n != 0 {
		t.Fatalf("%d link tuples survive expiry", n)
	}
	if n := len(c.TuplesOf("bestPathCost")); n != 0 {
		t.Fatalf("%d bestPathCost tuples survive expiry", n)
	}
	if ss.Refresh(0, l0); ss.Live(0, l0) {
		t.Fatal("refresh resurrected an expired entry")
	}
}

func TestSoftStateAutoRefreshAndWithdraw(t *testing.T) {
	topo := cycleTopo(4)
	c, ss := softCluster(t, topo, 10*ms, nil)
	c.Sim.At(0, func() {
		for _, l := range topo.Links {
			// 4ms period < 10ms TTL: entries stay alive while the chain runs.
			ss.AutoRefresh(l.U, apps.LinkTuple(l.U, l.V, l.Cost), 4*ms, 5)
			ss.AutoRefresh(l.V, apps.LinkTuple(l.V, l.U, l.Cost), 4*ms, 5)
		}
	})
	if err := c.RunUntil(18 * ms); err != nil {
		t.Fatal(err)
	}
	if ss.Expirations != 0 {
		t.Fatalf("%d expirations while auto-refresh chains run", ss.Expirations)
	}
	if len(c.TuplesOf("bestPathCost")) == 0 {
		t.Fatal("no routes while refreshed")
	}
	// Withdraw half the entries immediately; silence the rest and let the
	// bounded chains run out.
	c.Sim.At(18*ms, func() {
		for i, l := range topo.Links {
			u, v := apps.LinkTuple(l.U, l.V, l.Cost), apps.LinkTuple(l.V, l.U, l.Cost)
			if i%2 == 0 {
				ss.Withdraw(l.U, u)
				ss.Withdraw(l.V, v)
			} else {
				ss.Silence(l.U, u)
				ss.Silence(l.V, v)
			}
		}
	})
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	if n := len(c.TuplesOf("link")); n != 0 {
		t.Fatalf("%d link tuples survive withdraw+silence", n)
	}
	for i, h := range c.Hosts {
		if g := h.Engine.AggGroupCount(); g != 0 {
			t.Errorf("node %d: %d aggregate groups leak", i, g)
		}
		if n := h.Engine.Store.NumProv(); n != 0 {
			t.Errorf("node %d: %d prov rows leak", i, n)
		}
	}
}

// TestSoftStateExpiryDuringSuspectWave is the soft-state × DRed
// interleaving fence: a TTL expiry starts a staged-suspect deletion wave,
// and a refresh timer firing mid-wave (while deletion deltas are still on
// the 2ms stub links) must not re-show a hidden suspect or perturb the
// final fixpoint. The end state must be bit-identical to a cluster that
// performed a plain DeleteBase of the same link, and a final withdraw of
// everything must drain to zero.
func TestSoftStateExpiryDuringSuspectWave(t *testing.T) {
	topo := cycleTopo(8)
	victimU, victimV := apps.LinkTuple(0, 1, 1), apps.LinkTuple(1, 0, 1)

	// Soft-state cluster: every link on a 100ms TTL, except the victim
	// pair which lives on a 10ms clock and is never refreshed.
	c, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference, NoLinkTuples: true})
	if err != nil {
		t.Fatal(err)
	}
	ss := NewSoftState(c, 100*ms)
	short := NewSoftState(c, 10*ms)
	c.Sim.At(0, func() {
		for _, l := range topo.Links {
			mgr := ss
			if l.U == 0 && l.V == 1 {
				mgr = short
			}
			mgr.Announce(l.U, apps.LinkTuple(l.U, l.V, l.Cost))
			mgr.Announce(l.V, apps.LinkTuple(l.V, l.U, l.Cost))
		}
	})

	probe := func(when simnet.Time, fn func()) { c.Sim.At(when, fn) }
	bpc01 := func() bool {
		for _, tu := range c.Hosts[0].Engine.Tuples("bestPathCost") {
			if tu.Args[1].AsNode() == 1 {
				return true
			}
		}
		return false
	}
	var bootHad, midWaveHidden, refreshFired bool
	probe(5*ms, func() { bootHad = bpc01() })
	// A refresh timer fires while the expiry's deletion wave is mid-flight
	// (expiry at 10ms; neighbor deltas land at 12ms).
	probe(11*ms, func() { ss.Refresh(2, apps.LinkTuple(2, 3, 1)); refreshFired = true })
	probe(11*ms+ms/2, func() { midWaveHidden = !bpc01() })

	if err := c.RunUntil(40 * ms); err != nil {
		t.Fatal(err)
	}
	if !bootHad {
		t.Fatal("vacuous: no bestPathCost(@0,1) at boot")
	}
	if !refreshFired {
		t.Fatal("refresh timer did not fire")
	}
	if !midWaveHidden {
		t.Fatal("suspect bestPathCost(@0,1) visible mid-deletion-wave")
	}
	if short.Expirations != 2 {
		t.Fatalf("victim expirations = %d, want 2", short.Expirations)
	}
	// The long-TTL entries must have survived to 40ms: the 11ms refresh
	// extended one, the rest hold their original 100ms deadline.
	if ss.Expirations != 0 {
		t.Fatalf("%d long-TTL entries expired early", ss.Expirations)
	}

	// Baseline: same topology via config EDB, plain DeleteBase of the
	// victim pair at the same virtual time.
	b, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference})
	if err != nil {
		t.Fatal(err)
	}
	b.Sim.At(10*ms, func() {
		b.Hosts[0].Engine.DeleteBase(victimU)
		b.Hosts[1].Engine.DeleteBase(victimV)
	})
	if err := b.RunUntil(40 * ms); err != nil {
		t.Fatal(err)
	}
	preds := []string{"link", "pathCost", "bestPathCost"}
	want := chaosState(t, b, preds)
	got := chaosState(t, c, preds)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("node %d: soft-state fixpoint differs from plain deletion\nplain:\n%.2000s\nsoft:\n%.2000s", i, want[i], got[i])
		}
	}

	// Withdraw everything still live; the cluster must drain to zero —
	// this is where a refresh that double-inserted would leak a count.
	c.Sim.At(41*ms, func() {
		for _, l := range topo.Links {
			ss.Withdraw(l.U, apps.LinkTuple(l.U, l.V, l.Cost))
			ss.Withdraw(l.V, apps.LinkTuple(l.V, l.U, l.Cost))
		}
	})
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	for _, pred := range preds {
		if n := len(c.TuplesOf(pred)); n != 0 {
			t.Fatalf("%d %s tuples survive full withdraw", n, pred)
		}
	}
	for i, h := range c.Hosts {
		if g := h.Engine.AggGroupCount(); g != 0 {
			t.Errorf("node %d: %d aggregate groups leak", i, g)
		}
		if n := h.Engine.Store.NumProv(); n != 0 {
			t.Errorf("node %d: %d prov rows leak", i, n)
		}
		if n := h.Engine.Store.NumRuleExec(); n != 0 {
			t.Errorf("node %d: %d ruleExec rows leak", i, n)
		}
	}
}

// TestChaosSoftState runs the soft-state lifecycle under a seeded fault
// plan (loss, duplication, jitter, a healing partition): TTL expiries and
// refresh timers interleave with retransmission timers, and the fixpoint
// after every entry expires or is withdrawn must still drain to zero.
func TestChaosSoftState(t *testing.T) {
	topo := cycleTopo(8)
	for _, seed := range []int64{1, 42} {
		plan := chaosPlan(seed)
		c, ss := softCluster(t, topo, 15*ms, plan)
		c.Sim.At(0, func() {
			for i, l := range topo.Links {
				if i%2 == 0 { // half the entries get a refresh chain
					ss.AutoRefresh(l.U, apps.LinkTuple(l.U, l.V, l.Cost), 6*ms, 3)
					ss.AutoRefresh(l.V, apps.LinkTuple(l.V, l.U, l.Cost), 6*ms, 3)
				}
			}
		})
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatal(err)
		}
		if plan.Dropped+plan.Duplicated+plan.Cut == 0 {
			t.Fatalf("seed %d: fault schedule injected nothing", seed)
		}
		if ss.Expirations != 2*len(topo.Links) {
			t.Fatalf("seed %d: expirations = %d, want %d", seed, ss.Expirations, 2*len(topo.Links))
		}
		for _, pred := range []string{"link", "pathCost", "bestPathCost"} {
			if n := len(c.TuplesOf(pred)); n != 0 {
				t.Fatalf("seed %d: %d %s tuples survive expiry under chaos", seed, n, pred)
			}
		}
		for i, h := range c.Hosts {
			if n := h.Engine.Store.NumProv(); n != 0 {
				t.Errorf("seed %d node %d: %d prov rows leak", seed, i, n)
			}
			if h.Ep.InFlight() != 0 {
				t.Errorf("seed %d node %d: %d payloads in flight at fixpoint", seed, i, h.Ep.InFlight())
			}
		}
	}
}
