package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/topology"
)

// TestFullRetractionLeavesNoState: deleting every base link must drain all
// derived tuples, all provenance rows, all reverse edges and all aggregate
// groups — in every provenance mode. This is the strongest no-leak
// invariant of incremental maintenance with provenance (§4.2's cascaded
// deletions).
//
// The workload is PATHVECTOR: its f_member loop check makes derivations
// loop-free, so retraction terminates. MINCOST (pure distance-vector)
// exhibits the classic count-to-infinity divergence when links are
// retracted while the physical network stays connected — deletion waves
// chase unboundedly growing re-derivations — which is faithful to the
// protocol class and exactly why path-vector protocols carry the path.
func TestFullRetractionLeavesNoState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	topo := topology.Ring(10, rng)
	for _, mode := range []engine.ProvMode{engine.ProvNone, engine.ProvReference, engine.ProvValue, engine.ProvCentralized} {
		c, err := NewCluster(Config{Topo: topo, Prog: apps.PathVector(), Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if len(c.TuplesOf("bestPath")) == 0 {
			t.Fatalf("mode %s: nothing derived", mode)
		}
		// Retract every link *tuple*, one at a time, with interleaved
		// fixpoints. The physical links stay installed so every
		// retraction message remains deliverable — we are testing the
		// engine's no-leak invariant, not partition loss.
		for _, l := range topo.Links {
			c.Hosts[l.U].Engine.DeleteBase(apps.LinkTuple(l.U, l.V, l.Cost))
			c.Hosts[l.V].Engine.DeleteBase(apps.LinkTuple(l.V, l.U, l.Cost))
			if _, err := c.RunToFixpoint(); err != nil {
				t.Fatalf("mode %s: %v", mode, err)
			}
		}
		for _, pred := range []string{"link", "path", "bestPath", "bestHop"} {
			if got := len(c.TuplesOf(pred)); got != 0 {
				t.Errorf("mode %s: %d %s tuples survive full retraction", mode, got, pred)
			}
		}
		for i, h := range c.Hosts {
			if mode != engine.ProvReference {
				continue
			}
			if n := h.Engine.Store.NumProv(); n != 0 {
				t.Errorf("mode %s node %d: %d prov rows leak", mode, i, n)
			}
			if n := h.Engine.Store.NumRuleExec(); n != 0 {
				t.Errorf("mode %s node %d: %d ruleExec rows leak", mode, i, n)
			}
		}
		if mode == engine.ProvCentralized {
			graph := CentralGraphOf(c)
			if graph.NumVertices() != 0 {
				t.Errorf("centralized: %d vertices leak at the server", graph.NumVertices())
			}
		}
	}
}
