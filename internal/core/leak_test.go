package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/topology"
)

// TestFullRetractionLeavesNoState: deleting every base link must drain all
// derived tuples, all provenance rows, all reverse edges and all aggregate
// groups — in every provenance mode. This is the strongest no-leak
// invariant of incremental maintenance with provenance (§4.2's cascaded
// deletions).
//
// Both paper workloads run it. PATHVECTOR's f_member loop check makes
// derivations loop-free, so retraction always terminated. MINCOST (pure
// distance-vector) used to exhibit the classic count-to-infinity
// divergence when links were retracted while the network stayed connected;
// the two-phase over-delete/re-derive retraction discipline (ARCHITECTURE
// "Deletion semantics") makes it terminate, so the invariant now covers it
// in all four modes too.
func TestFullRetractionLeavesNoState(t *testing.T) {
	progs := map[string]*ndlog.Program{
		"pathvector": apps.PathVector(),
		"mincost":    apps.MinCost(),
	}
	predsOf := map[string][]string{
		"pathvector": {"link", "path", "bestPath", "bestHop"},
		"mincost":    {"link", "pathCost", "bestPathCost"},
	}
	headOf := map[string]string{"pathvector": "bestPath", "mincost": "bestPathCost"}
	for name, prog := range progs {
		rng := rand.New(rand.NewSource(13))
		topo := topology.Ring(10, rng)
		for _, mode := range []engine.ProvMode{engine.ProvNone, engine.ProvReference, engine.ProvValue, engine.ProvCentralized} {
			c, err := NewCluster(Config{Topo: topo, Prog: prog, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.RunToFixpoint(); err != nil {
				t.Fatalf("%s mode %s: %v", name, mode, err)
			}
			if len(c.TuplesOf(headOf[name])) == 0 {
				t.Fatalf("%s mode %s: nothing derived", name, mode)
			}
			// Retract every link *tuple*, one at a time, with interleaved
			// fixpoints. The physical links stay installed so every
			// retraction message remains deliverable — we are testing the
			// engine's no-leak invariant, not partition loss.
			for _, l := range topo.Links {
				c.Hosts[l.U].Engine.DeleteBase(apps.LinkTuple(l.U, l.V, l.Cost))
				c.Hosts[l.V].Engine.DeleteBase(apps.LinkTuple(l.V, l.U, l.Cost))
				if _, err := c.RunToFixpoint(); err != nil {
					t.Fatalf("%s mode %s: %v", name, mode, err)
				}
			}
			for _, pred := range predsOf[name] {
				if got := len(c.TuplesOf(pred)); got != 0 {
					t.Errorf("%s mode %s: %d %s tuples survive full retraction", name, mode, got, pred)
				}
			}
			for i, h := range c.Hosts {
				if g := h.Engine.AggGroupCount(); g != 0 {
					t.Errorf("%s mode %s node %d: %d aggregate groups leak", name, mode, i, g)
				}
				if mode != engine.ProvReference {
					continue
				}
				if n := h.Engine.Store.NumProv(); n != 0 {
					t.Errorf("%s mode %s node %d: %d prov rows leak", name, mode, i, n)
				}
				if n := h.Engine.Store.NumRuleExec(); n != 0 {
					t.Errorf("%s mode %s node %d: %d ruleExec rows leak", name, mode, i, n)
				}
				if n := h.Engine.Store.NumParents(); n != 0 {
					t.Errorf("%s mode %s node %d: %d reverse edges leak", name, mode, i, n)
				}
			}
			if mode == engine.ProvCentralized {
				graph := CentralGraphOf(c)
				if graph.NumVertices() != 0 {
					t.Errorf("%s centralized: %d vertices leak at the server", name, graph.NumVertices())
				}
			}
		}
	}
}
