package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/provquery"
	"repro/internal/topology"
	"repro/internal/types"
)

// TestNDlogQueryProgramExecution runs the paper's §5.1 distributed query
// program *as NDlog through the engine itself* — protocol, provenance
// maintenance and provenance querying all expressed declaratively — and
// checks the returned derivation counts against the native query
// processor on reference-mode provenance.
//
// The pipeline under test: MINCOST → Algorithm-1 provenance rewrite (with
// relational rule inputs) → + the executable counting query program → one
// engine execution; queries are injected as eProvQuery events.
func TestNDlogQueryProgramExecution(t *testing.T) {
	topo := topology.Figure3()

	// Declarative cluster: rewritten MINCOST + query rules, no native
	// provenance support at all.
	rw, err := ndlog.ProvenanceRewriteOpts(apps.MinCost(), ndlog.RewriteOptions{RelationalInputs: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := ndlog.Parse(apps.CountQueryProgramSrc)
	if err != nil {
		t.Fatal(err)
	}
	combined := &ndlog.Program{
		Rules: append(append([]*ndlog.Rule{}, rw.Rules...), full.Rules...),
		Facts: rw.Facts,
	}
	declarative, err := NewCluster(Config{Topo: topo, Prog: combined, Mode: engine.ProvNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := declarative.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}

	// Native cluster: original MINCOST, engine-level provenance, native
	// #DERIVATIONS query processor.
	native, err := NewCluster(Config{
		Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference,
		UDF: provquery.Derivations{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := native.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}

	issuer := types.NodeID(3) // node d issues every query
	checked := 0
	for _, ref := range native.TuplesOf("bestPathCost") {
		// Native answer.
		var want int64 = -1
		native.Query(issuer, ref.VID, ref.Loc, func(p []byte) { want = provquery.DecodeCount(p) })
		native.Sim.Run()
		if want < 0 {
			t.Fatalf("%s: native query incomplete", ref.Tuple)
		}

		// Declarative answer: inject eProvQuery(@loc, QID, VID, issuer) at
		// the tuple's node and read queryResult at the issuer.
		qid := types.HashString("q:" + ref.Tuple.String())
		ev := types.NewTuple("eProvQuery",
			types.Node(ref.Loc), types.IDVal(qid), types.IDVal(ref.VID), types.Node(issuer))
		declarative.InjectEvent(ev)
		if _, err := declarative.RunToFixpoint(); err != nil {
			t.Fatal(err)
		}
		got := int64(-1)
		rel := declarative.Hosts[issuer].Engine.Table("queryResult")
		if rel == nil {
			t.Fatal("queryResult relation missing")
		}
		for _, tu := range rel.Tuples() {
			if tu.Args[1].AsID() == qid {
				got = tu.Args[3].AsInt()
			}
		}
		if got != want {
			t.Errorf("%s: NDlog query program returned %d, native processor %d", ref.Tuple, got, want)
		}
		checked++
	}
	if checked < 12 {
		t.Fatalf("only %d tuples checked", checked)
	}
	t.Logf("NDlog-executed §5.1 query program agreed with the native processor on %d tuples", checked)
}
