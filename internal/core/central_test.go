package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/types"
)

// CentralGraphOf builds the centralized query view from the server node's
// materialized prov/ruleExec relations (only meaningful under
// ProvCentralized).
func CentralGraphOf(c *Cluster) *provquery.CentralGraph {
	server := c.Hosts[c.Cfg.Central].Engine
	var provRows, execRows []types.Tuple
	if rel := server.Table("prov"); rel != nil {
		provRows = rel.Tuples()
	}
	if rel := server.Table("ruleExec"); rel != nil {
		execRows = rel.Tuples()
	}
	return provquery.NewCentralGraph(provRows, execRows)
}

// TestCentralizedQueriesMatchDistributed: running MINCOST in centralized
// mode relays the full provenance graph to the server; central queries
// must agree with distributed reference-mode queries on every tuple.
func TestCentralizedQueriesMatchDistributed(t *testing.T) {
	central := figure3Cluster(t, engine.ProvCentralized)
	graph := CentralGraphOf(central)
	if graph.NumVertices() == 0 {
		t.Fatal("server received no provenance rows")
	}

	ref, err := NewCluster(Config{
		Topo: central.Topo, Prog: apps.MinCost(), Mode: engine.ProvReference,
		UDF: provquery.Derivations{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}

	for _, target := range ref.TuplesOf("bestPathCost") {
		var want int64 = -1
		ref.Query(target.Loc, target.VID, target.Loc, func(p []byte) { want = provquery.DecodeCount(p) })
		ref.Sim.Run()
		if got := graph.Count(target.VID); got != want {
			t.Errorf("%s: central count %d, distributed %d", target.Tuple, got, want)
		}
	}

	// Node set for the running example: bestPathCost(@a,c,5) involves a
	// and b.
	target, _ := ref.FindTuple(apps.BestPathCostTuple(0, 2, 5))
	nodes := graph.Nodes(target.VID)
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Errorf("central node set = %v, want [a b]", nodes)
	}

	// Derivability under trust policies matches the §3 example.
	if !graph.Derivable(target.VID, func(n types.NodeID) bool { return n == 0 }) {
		t.Error("should be derivable trusting only a")
	}
	if graph.Derivable(target.VID, func(n types.NodeID) bool { return n == 3 }) {
		t.Error("should not be derivable trusting only d")
	}
	if poly := graph.Polynomial(target.VID); poly.NumNodes() < 3 {
		t.Errorf("central polynomial degenerate: %s", poly)
	}
}

// TestCentralizedDeletionPropagates: retracting a base tuple must also
// retract the server's copies of dependent provenance rows.
func TestCentralizedDeletionPropagates(t *testing.T) {
	c := figure3Cluster(t, engine.ProvCentralized)
	before := CentralGraphOf(c).NumVertices()

	// Remove the direct a-c link; pathCost(@a,c,5) keeps its via-b
	// derivation but the sp1 derivation must vanish at the server.
	link := c.Topo.Links[1] // a-c, cost 5
	c.RemoveLink(link)
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	graph := CentralGraphOf(c)
	if graph.NumVertices() >= before {
		t.Errorf("server vertices %d -> %d; expected shrinkage", before, graph.NumVertices())
	}
	pc := types.NewTuple("pathCost", types.Node(0), types.Node(2), types.Int(5))
	if got := graph.Count(pc.VID()); got != 1 {
		t.Errorf("pathCost(@a,c,5) central count after deletion = %d, want 1", got)
	}
}
