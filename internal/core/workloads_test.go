package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/types"
)

// Workload-suite fences for the PR 8 protocols (CHORD routing and the
// policy-constrained path-vector program): serial-vs-sharded bit-identical
// equivalence and full-retraction no-leak, each across all four provenance
// modes. The classic routing programs have these fences in sharded_test.go
// and chaos_test.go; the new protocols exercise multi-rule recursion
// (lookup forwarding), double aggregation (MIN + AGGLIST) and soft-state
// liveness predicates through the same invariants.

var provModes = []engine.ProvMode{
	engine.ProvNone, engine.ProvReference, engine.ProvValue, engine.ProvCentralized,
}

// suiteWorkloads are the chaosWorkloads rows for the new protocols.
func suiteWorkloads(t *testing.T) []chaosWorkload {
	t.Helper()
	var out []chaosWorkload
	for _, w := range chaosWorkloads {
		if w.name == "chord" || w.name == "policy" {
			out = append(out, w)
		}
	}
	if len(out) != 2 {
		t.Fatal("workload table lost the PR 8 protocols")
	}
	return out
}

// bootWorkload builds and boots a cluster for one workload row.
func bootWorkload(t *testing.T, w chaosWorkload, topo *topology.Topology, mode engine.ProvMode, shards int) *Cluster {
	t.Helper()
	cfg := Config{Topo: topo, Prog: w.prog(), Mode: mode, Shards: shards, NoLinkTuples: w.noLinks}
	if w.base != nil {
		cfg.Base = w.base(topo)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatalf("boot fixpoint: %v", err)
	}
	return c
}

// TestWorkloadSerialShardedEquivalence pins serial (Shards=0) against
// sharded (1 and 4) cluster fixpoints for both protocols in every
// provenance mode: the same tuples, provenance rows and ruleExec rows at
// every node. Wire-byte totals are deterministic per shard count (sharded
// merge rounds batch deltas, so totals legitimately shrink with shards —
// reruns must still reproduce them bit-for-bit).
func TestWorkloadSerialShardedEquivalence(t *testing.T) {
	topo := topology.Ring(8, rand.New(rand.NewSource(21)))
	for _, w := range suiteWorkloads(t) {
		for _, mode := range provModes {
			serial := bootWorkload(t, w, topo, mode, 0)
			want := chaosState(t, serial, w.preds)
			for _, shards := range []int{1, 4} {
				c := bootWorkload(t, w, topo, mode, shards)
				got := chaosState(t, c, w.preds)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s %s shards=%d: node %d differs from serial\nserial:\n%.2000s\nsharded:\n%.2000s",
							w.name, mode, shards, i, want[i], got[i])
					}
				}
				rerun := bootWorkload(t, w, topo, mode, shards)
				if rerun.Net.TotalBytes != c.Net.TotalBytes {
					t.Errorf("%s %s shards=%d: reruns diverge on wire bytes %d/%d",
						w.name, mode, shards, c.Net.TotalBytes, rerun.Net.TotalBytes)
				}
			}
			if len(serial.TuplesOf(w.preds[len(w.preds)-1])) == 0 {
				t.Fatalf("%s %s: vacuous — no %s derived", w.name, mode, w.preds[len(w.preds)-1])
			}
		}
	}
}

// TestWorkloadFullRetraction deletes every base tuple of each protocol —
// node by node, with interleaved fixpoints so DRed waves overlap — and
// requires the cluster to drain to nothing: no visible tuples, no
// aggregate groups, no provenance or ruleExec rows anywhere (including
// the central server in ProvCentralized mode).
func TestWorkloadFullRetraction(t *testing.T) {
	topo := topology.Ring(8, rand.New(rand.NewSource(21)))
	for _, w := range suiteWorkloads(t) {
		for _, mode := range provModes {
			c := bootWorkload(t, w, topo, mode, 0)
			// Reconstruct the seeded EDB exactly as bootWorkload fed it.
			base := map[types.NodeID][]types.Tuple{}
			if !w.noLinks {
				for _, l := range topo.Links {
					base[l.U] = append(base[l.U], apps.LinkTuple(l.U, l.V, l.Cost))
					base[l.V] = append(base[l.V], apps.LinkTuple(l.V, l.U, l.Cost))
				}
			}
			if w.base != nil {
				for n, tuples := range w.base(topo) {
					base[n] = append(base[n], tuples...)
				}
			}
			for i := 0; i < topo.N; i++ {
				for _, tup := range base[types.NodeID(i)] {
					c.DeleteBase(tup)
				}
				if _, err := c.RunToFixpoint(); err != nil {
					t.Fatalf("%s %s: retraction fixpoint at node %d: %v", w.name, mode, i, err)
				}
			}
			for _, pred := range w.preds {
				if n := len(c.TuplesOf(pred)); n != 0 {
					t.Errorf("%s %s: %d %s tuples survive full retraction", w.name, mode, n, pred)
				}
			}
			for i, h := range c.Hosts {
				if g := h.Engine.AggGroupCount(); g != 0 {
					t.Errorf("%s %s node %d: %d aggregate groups leak", w.name, mode, i, g)
				}
				if n := h.Engine.Store.NumProv(); n != 0 {
					t.Errorf("%s %s node %d: %d prov rows leak", w.name, mode, i, n)
				}
				if n := h.Engine.Store.NumRuleExec(); n != 0 {
					t.Errorf("%s %s node %d: %d ruleExec rows leak", w.name, mode, i, n)
				}
			}
		}
	}
}
