package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Chaos × planner fence (ISSUE 7): re-planning at the simulator's idle points
// while a seeded fault schedule mangles the wire must still reach the exact
// fixpoint of the fault-free, fixed-plan run. The program is 3-atom recursive
// (planable) and derives everything from the topology's link tuples, so the
// ordinary cluster boot seeds it; on a ring, live stats genuinely flip the
// cost-chosen join order away from syntax order (reach fans out ~N per node,
// link only ~degree), so the replanning runs really do execute different
// plans.
func chaosPlannerProg(t *testing.T) *ndlog.Program {
	t.Helper()
	return ndlog.MustParse(`
c0 nbr(@X,Y) :- link(@X,Y,C).
c1 reach(@Y,X) :- link(@X,Y,C).
c2 reach(@Z,X) :- link(@Y,Z,C), reach(@Y,X), nbr(@Y,W).
`)
}

// runChaosPlanner boots a ring cluster, then runs deletion churn with a
// forced re-plan at every global quiescence point (replanning=true) or with
// plans pinned to the compile-time default (replanning=false).
func runChaosPlanner(t *testing.T, mode engine.ProvMode, shards int, plan *simnet.FaultPlan, replanning bool) ([]string, *Cluster, bool) {
	t.Helper()
	topo := topology.Ring(8, rand.New(rand.NewSource(21)))
	c, err := NewCluster(Config{Topo: topo, Prog: chaosPlannerProg(t), Mode: mode, Shards: shards, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !replanning {
		for _, h := range c.Hosts {
			h.Engine.NoReplan = true
		}
	}
	changed := false
	replanAll := func() {
		if !replanning {
			return
		}
		for _, h := range c.Hosts {
			if h.Engine.ForceReplan() {
				changed = true
			}
		}
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatalf("boot fixpoint: %v", err)
	}
	replanAll()
	for k := 0; k < 3; k++ {
		l := topo.Links[(k*3)%len(topo.Links)]
		if plan != nil && k == 1 {
			now := c.Sim.Now()
			plan.AddPartition(now+simnet.Millisecond, now+15*simnet.Millisecond, l.U)
		}
		c.Hosts[l.U].Engine.DeleteBase(apps.LinkTuple(l.U, l.V, l.Cost))
		c.Hosts[l.V].Engine.DeleteBase(apps.LinkTuple(l.V, l.U, l.Cost))
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatalf("churn fixpoint %d: %v", k, err)
		}
		replanAll()
	}
	return chaosState(t, c, []string{"link", "nbr", "reach"}), c, changed
}

func TestChaosPlannerEquivalence(t *testing.T) {
	for _, tc := range []struct {
		mode   engine.ProvMode
		shards int
	}{
		{engine.ProvReference, 0},
		{engine.ProvReference, 3},
		{engine.ProvNone, 0},
	} {
		want, _, _ := runChaosPlanner(t, tc.mode, tc.shards, nil, false)
		// Fault-free replanning run: pins plan swaps alone as state-neutral
		// and asserts the stats actually flipped a plan.
		got, _, changed := runChaosPlanner(t, tc.mode, tc.shards, nil, true)
		if !changed {
			t.Fatalf("%s shards=%d: no re-plan changed a plan; chaos fence is vacuous", tc.mode, tc.shards)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s shards=%d: node %d fixpoint differs under fault-free replanning\nfixed:\n%.2000s\nreplanned:\n%.2000s",
					tc.mode, tc.shards, i, want[i], got[i])
			}
		}
		for _, seed := range []int64{1, 42} {
			plan := chaosPlan(seed)
			got, c, _ := runChaosPlanner(t, tc.mode, tc.shards, plan, true)
			if plan.Dropped+plan.Duplicated+plan.Cut == 0 {
				t.Fatalf("%s shards=%d seed %d: fault schedule injected nothing", tc.mode, tc.shards, seed)
			}
			if c.Net.DroppedMsgs == 0 {
				t.Errorf("%s shards=%d seed %d: network counted no drops", tc.mode, tc.shards, seed)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s shards=%d seed %d: node %d chaos+replanning fixpoint differs\nfixed fault-free:\n%.2000s\nchaos:\n%.2000s",
						tc.mode, tc.shards, seed, i, want[i], got[i])
				}
			}
		}
	}
}
