package core

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/apps"
	"repro/internal/bdd"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/topology"
	"repro/internal/types"
)

// TestStrategiesAgreeOnRandomNetworks: BFS, DFS and an unreachable-threshold
// DFS must return identical results for any query, on random topologies.
func TestStrategiesAgreeOnRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		topo := topology.Ring(6+rng.Intn(10), rng)
		var results [3]map[string]int64
		for si, strat := range []provquery.Strategy{provquery.BFS, provquery.DFS, provquery.DFSThreshold} {
			c, err := NewCluster(Config{
				Topo:      topo,
				Prog:      apps.MinCost(),
				Mode:      engine.ProvReference,
				UDF:       provquery.Derivations{},
				Strategy:  strat,
				Threshold: 1 << 40, // unreachable: full traversal
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.RunToFixpoint(); err != nil {
				t.Fatal(err)
			}
			res := map[string]int64{}
			qRng := rand.New(rand.NewSource(int64(trial)))
			targets := c.TuplesOf("bestPathCost")
			for q := 0; q < 15 && q < len(targets); q++ {
				ref := targets[qRng.Intn(len(targets))]
				key := ref.Tuple.String()
				c.Query(types.NodeID(qRng.Intn(topo.N)), ref.VID, ref.Loc, func(p []byte) {
					res[key] = provquery.DecodeCount(p)
				})
				c.Sim.Run()
			}
			results[si] = res
		}
		for k, v := range results[0] {
			if results[1][k] != v || results[2][k] != v {
				t.Fatalf("trial %d: %s counts disagree: BFS=%d DFS=%d THR=%d",
					trial, k, v, results[1][k], results[2][k])
			}
		}
	}
}

// TestCachingIsTransparent: with caching on, query results after arbitrary
// churn are identical to a cache-free cluster's results.
func TestCachingIsTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	topo := topology.Ring(10, rng)
	build := func(cache bool) *Cluster {
		c, err := NewCluster(Config{
			Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference,
			UDF: provquery.Derivations{}, CacheOn: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	cached, plain := build(true), build(false)

	churn := func(c *Cluster, seed int64) {
		r := rand.New(rand.NewSource(seed))
		// Interleave queries (to populate caches) with link churn.
		for step := 0; step < 6; step++ {
			targets := c.TuplesOf("bestPathCost")
			for q := 0; q < 10; q++ {
				ref := targets[r.Intn(len(targets))]
				c.Query(types.NodeID(r.Intn(c.Topo.N)), ref.VID, ref.Loc, func([]byte) {})
			}
			c.Sim.Run()
			u := types.NodeID(r.Intn(c.Topo.N))
			v := types.NodeID(r.Intn(c.Topo.N))
			if u != v && !c.Net.HasLink(u, v) {
				l := topology.Link{U: u, V: v, Class: topology.ClassStub, Cost: 1}
				c.AddLink(l)
				c.Sim.Run()
				if step%2 == 0 {
					c.RemoveLink(l)
					c.Sim.Run()
				}
			}
		}
	}
	churn(cached, 7)
	churn(plain, 7)

	// Same final state, same query answers.
	qRng := rand.New(rand.NewSource(99))
	targets := cached.TuplesOf("bestPathCost")
	for q := 0; q < 25; q++ {
		ref := targets[qRng.Intn(len(targets))]
		var a, b int64 = -1, -2
		cached.Query(0, ref.VID, ref.Loc, func(p []byte) { a = provquery.DecodeCount(p) })
		cached.Sim.Run()
		plain.Query(0, ref.VID, ref.Loc, func(p []byte) { b = provquery.DecodeCount(p) })
		plain.Sim.Run()
		if a != b {
			t.Fatalf("%s: cached answer %d != plain answer %d", ref.Tuple, a, b)
		}
	}
	var hits int64
	for _, h := range cached.Hosts {
		hits += h.Query.CacheHits
	}
	if hits == 0 {
		t.Error("cache never hit; test exercised nothing")
	}
}

// TestValueModePayloadMatchesReferenceQuery is the cross-mode semantic
// invariant: the BDD a tuple carries in value-based mode encodes the same
// boolean derivability function that a distributed BDD query over
// reference-based provenance computes for the same tuple.
func TestValueModePayloadMatchesReferenceQuery(t *testing.T) {
	compareValueAndReference(t, nil)
}

// TestValueModePayloadMatchesReferenceQueryAfterChurn repeats the
// cross-mode check after link churn, exercising value mode's payload
// *update* propagation (deletion shrinks payloads; re-addition grows them)
// against reference mode's recomputed traversals.
func TestValueModePayloadMatchesReferenceQueryAfterChurn(t *testing.T) {
	compareValueAndReference(t, func(c *Cluster) {
		// Drop and restore a-b, and drop b-d permanently.
		ab := c.Topo.Links[0]
		bd := c.Topo.Links[3]
		c.RemoveLink(bd)
		c.Sim.Run()
		c.RemoveLink(ab)
		c.Sim.Run()
		c.AddLink(ab)
		c.Sim.Run()
	})
}

func compareValueAndReference(t *testing.T, churn func(*Cluster)) {
	t.Helper()
	topo := topology.Figure3()

	valueC, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvValue})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := valueC.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}

	refC, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference})
	if err != nil {
		t.Fatal(err)
	}
	refC.Cfg.UDF = provquery.BDDProv{Alloc: refC.Alloc}
	for _, h := range refC.Hosts {
		h.Query.UDF = provquery.BDDProv{Alloc: refC.Alloc}
	}
	if _, err := refC.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}

	if churn != nil {
		churn(valueC)
		churn(refC)
		if err := valueC.Err(); err != nil {
			t.Fatal(err)
		}
		if err := refC.Err(); err != nil {
			t.Fatal(err)
		}
	}

	// Compare every bestPathCost tuple's boolean function under random
	// base-link assignments, resolving variables by VID through each
	// cluster's own allocator.
	rng := rand.New(rand.NewSource(55))
	links := refC.TuplesOf("link")
	for _, ref := range refC.TuplesOf("bestPathCost") {
		var queryPayload []byte
		refC.Query(ref.Loc, ref.VID, ref.Loc, func(p []byte) { queryPayload = p })
		refC.Sim.Run()
		qm := bdd.New()
		qRoot, err := provquery.DecodeBDD(qm, queryPayload)
		if err != nil {
			t.Fatal(err)
		}

		host := valueC.Hosts[ref.Loc].Engine
		vRoot, ok := host.PayloadOf(ref.Tuple)
		if !ok {
			t.Fatalf("%s: no value-mode payload", ref.Tuple)
		}

		for trial := 0; trial < 32; trial++ {
			present := map[types.ID]bool{}
			for _, l := range links {
				present[l.VID] = rng.Intn(2) == 0
			}
			qAssign := assignFor(refC.Alloc, present)
			vAssign := assignFor(valueC.Alloc, present)
			if qm.Eval(qRoot, qAssign) != host.Mgr.Eval(vRoot, vAssign) {
				t.Fatalf("%s: value-mode payload and reference-mode query disagree", ref.Tuple)
			}
		}
	}
}

func assignFor(alloc *algebra.VarAlloc, present map[types.ID]bool) map[int]bool {
	out := map[int]bool{}
	for v := 0; ; v++ {
		base, ok := alloc.BaseOf(v)
		if !ok {
			return out
		}
		out[v] = present[base.VID]
	}
}
