// Package core is the ExSPAN facade: it assembles the declarative
// networking engine, the provenance store and the distributed query
// processor into per-node hosts, and wires them to a transport — the
// discrete-event simulator here, or UDP via package deploy. This is the
// public API that examples, tools and the evaluation harness build on.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/provquery"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/types"
)

// Config describes one cluster.
type Config struct {
	// Topo is the physical topology (required).
	Topo *topology.Topology
	// Prog is the NDlog program every node runs (required).
	Prog *ndlog.Program
	// Mode selects provenance maintenance (§3 Distribution).
	Mode engine.ProvMode
	// Central is the server node for ProvCentralized (default 0).
	Central types.NodeID

	// Query-processor configuration.
	UDF       provquery.UDF // default: Polynomial
	Strategy  provquery.Strategy
	Threshold int64
	CacheOn   bool

	// BandwidthBucketNs, when non-zero, attaches a time-bucketed
	// bandwidth recorder to the network.
	BandwidthBucketNs int64

	// Shards is the number of engine worker shards per node (0 or 1 =
	// classic serial evaluation). Sharded nodes evaluate each incoming
	// message batch with the parallel round runtime; results match the
	// serial engine exactly. Value-based and centralized provenance clamp
	// to one shard (see engine.NewNodeSharded).
	Shards int
}

// Host is one node's ExSPAN stack.
type Host struct {
	Engine *engine.Node
	Query  *provquery.Processor

	// The cluster-wide message free lists (the simulation is
	// single-threaded, so senders and receivers share them). A message is
	// released here, after its handler returns — the simnet delivery is
	// the last point the transport owns it.
	msgs *engine.MessagePool
	qry  *provquery.MsgPool
}

// HandleMessage implements simnet.Handler by dispatching on payload type.
func (h *Host) HandleMessage(from types.NodeID, payload any, size int) {
	switch m := payload.(type) {
	case *engine.Message:
		h.Engine.HandleMessage(from, m)
		h.msgs.Put(m)
	case *provquery.Msg:
		h.Query.Handle(from, m)
		h.qry.Put(m)
	default:
		panic(fmt.Sprintf("core: unknown payload %T", payload))
	}
}

// Cluster is a simulated ExSPAN deployment.
type Cluster struct {
	Cfg   Config
	Sim   *simnet.Sim
	Net   *simnet.Network
	Topo  *topology.Topology
	Prog  *engine.Program
	Hosts []*Host
	Alloc *algebra.VarAlloc
}

type simTransport struct {
	nw *simnet.Network
}

func (t simTransport) Send(from, to types.NodeID, m *engine.Message) {
	t.nw.Send(from, to, m, m.WireSize())
}

// NewCluster builds a simulated cluster and schedules the injection of the
// topology's base link tuples at virtual time zero.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Topo == nil || cfg.Prog == nil {
		return nil, fmt.Errorf("core: Topo and Prog are required")
	}
	prog, err := engine.Compile(cfg.Prog)
	if err != nil {
		return nil, err
	}
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, cfg.Topo.N)
	cfg.Topo.Install(nw)
	if cfg.BandwidthBucketNs > 0 {
		nw.Recorder = stats.NewBandwidth(cfg.BandwidthBucketNs)
	}
	alloc := algebra.NewVarAlloc()
	udf := cfg.UDF
	if udf == nil {
		udf = provquery.Polynomial{}
	}

	c := &Cluster{Cfg: cfg, Sim: sim, Net: nw, Topo: cfg.Topo, Prog: prog, Alloc: alloc}
	// The engine message pool is only useful — and its Puts only ever
	// drained — under single-shard evaluation: sharded fire phases bypass
	// Get, so wiring the pool in would retain every delivered message
	// forever. A nil pool degrades Put to a no-op (types.Pool contract).
	var msgPool *engine.MessagePool
	if cfg.Shards <= 1 || cfg.Mode == engine.ProvValue || cfg.Mode == engine.ProvCentralized {
		msgPool = engine.NewMessagePool()
	}
	qryPool := provquery.NewMsgPool()
	for i := 0; i < cfg.Topo.N; i++ {
		id := types.NodeID(i)
		en := engine.NewNodeSharded(id, prog, cfg.Mode, simTransport{nw}, alloc, cfg.Shards)
		en.Central = cfg.Central
		en.Msgs = msgPool // nil for sharded clusters (see above)
		qp := provquery.NewProcessor(id, en.Store, udf, func(to types.NodeID, m *provquery.Msg) {
			nw.Send(id, to, m, m.WireSize())
		})
		qp.Strategy = cfg.Strategy
		qp.Threshold = cfg.Threshold
		qp.CacheOn = cfg.CacheOn
		qp.Msgs = qryPool
		h := &Host{Engine: en, Query: qp, msgs: msgPool, qry: qryPool}
		nw.Register(id, h)
		c.Hosts = append(c.Hosts, h)
	}

	// "Each node is initialized with a link tuple for each of its
	// neighbors."
	sim.At(0, func() {
		for _, l := range cfg.Topo.Links {
			c.insertLinkNow(l.U, l.V, l.Cost)
		}
	})

	// Retraction protocol, phase 2: an empty event queue is the simulated
	// cluster's global quiescence point — no deletion message can still be
	// in flight — so staged re-derivations (suspects with surviving
	// alternate derivations, deferred aggregate winner promotions) are
	// released here, in node order, and the simulation resumes until no
	// host stages further work.
	sim.OnIdle = func() bool {
		any := false
		for _, h := range c.Hosts {
			if h.Engine.ReleaseAndFlush() {
				any = true
			}
		}
		return any
	}
	return c, nil
}

func (c *Cluster) insertLinkNow(u, v types.NodeID, cost int64) {
	c.Hosts[u].Engine.InsertBase(linkTuple(u, v, cost))
	c.Hosts[v].Engine.InsertBase(linkTuple(v, u, cost))
}

func linkTuple(u, v types.NodeID, cost int64) types.Tuple {
	return types.NewTuple("link", types.Node(u), types.Node(v), types.Int(cost))
}

// RunToFixpoint executes the simulation until quiescence and returns the
// virtual fixpoint time.
func (c *Cluster) RunToFixpoint() (simnet.Time, error) {
	t := c.Sim.Run()
	return t, c.Err()
}

// RunUntil executes the simulation until the given virtual time.
func (c *Cluster) RunUntil(t simnet.Time) error {
	c.Sim.RunUntil(t)
	return c.Err()
}

// Err reports the first engine error across hosts.
func (c *Cluster) Err() error {
	for _, h := range c.Hosts {
		if h.Engine.Err != nil {
			return h.Engine.Err
		}
	}
	return nil
}

// AddLink installs a new physical link and its symmetric base tuples at the
// current virtual time (churn).
func (c *Cluster) AddLink(l topology.Link) {
	lat, bps := l.Class.Params()
	c.Net.AddLink(l.U, l.V, simnet.Link{Latency: lat, Bps: bps})
	c.insertLinkNow(l.U, l.V, l.Cost)
}

// RemoveLink removes a physical link and retracts its base tuples.
func (c *Cluster) RemoveLink(l topology.Link) {
	c.Net.RemoveLink(l.U, l.V)
	c.Hosts[l.U].Engine.DeleteBase(linkTuple(l.U, l.V, l.Cost))
	c.Hosts[l.V].Engine.DeleteBase(linkTuple(l.V, l.U, l.Cost))
}

// InjectEvent fires an event tuple at its location specifier's node.
func (c *Cluster) InjectEvent(t types.Tuple) {
	loc := t.Loc()
	if loc < 0 || int(loc) >= len(c.Hosts) {
		panic("core: event tuple has no valid location")
	}
	c.Hosts[loc].Engine.InjectEvent(t)
}

// Query issues a provenance query from issuer for the tuple vertex vid
// stored at loc; cb runs (at the issuer) when the result returns.
func (c *Cluster) Query(issuer types.NodeID, vid types.ID, loc types.NodeID, cb func(payload []byte)) {
	c.Hosts[issuer].Query.Query(vid, loc, cb)
}

// TupleRef locates a tuple vertex for querying.
type TupleRef struct {
	Tuple types.Tuple
	VID   types.ID
	Loc   types.NodeID
}

// TuplesOf returns every visible tuple of a predicate across the cluster.
func (c *Cluster) TuplesOf(pred string) []TupleRef {
	var out []TupleRef
	for i, h := range c.Hosts {
		for _, t := range h.Engine.Tuples(pred) {
			out = append(out, TupleRef{Tuple: t, VID: t.VID(), Loc: types.NodeID(i)})
		}
	}
	return out
}

// FindTuple locates a specific tuple by predicate and arguments.
func (c *Cluster) FindTuple(t types.Tuple) (TupleRef, bool) {
	loc := t.Loc()
	if loc < 0 || int(loc) >= len(c.Hosts) {
		return TupleRef{}, false
	}
	for _, cand := range c.Hosts[loc].Engine.Tuples(t.Pred) {
		if cand.Equal(t) {
			return TupleRef{Tuple: t, VID: t.VID(), Loc: loc}, true
		}
	}
	return TupleRef{}, false
}

// RandomTupleOf picks a uniformly random visible tuple of a predicate.
func (c *Cluster) RandomTupleOf(pred string, rng *rand.Rand) (TupleRef, bool) {
	all := c.TuplesOf(pred)
	if len(all) == 0 {
		return TupleRef{}, false
	}
	return all[rng.Intn(len(all))], true
}

// AvgCommMB reports the per-node average communication cost in MB.
func (c *Cluster) AvgCommMB() float64 { return c.Net.AvgSentMB() }

// ParseProgram is a convenience wrapper re-exported for cmd tools.
func ParseProgram(src string) (*ndlog.Program, error) { return ndlog.Parse(src) }
