// Package core is the ExSPAN facade: it assembles the declarative
// networking engine, the provenance store and the distributed query
// processor into per-node hosts, and wires them to a transport — the
// discrete-event simulator here, or UDP via package deploy. This is the
// public API that examples, tools and the evaluation harness build on.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/provquery"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/types"
)

// Config describes one cluster.
type Config struct {
	// Topo is the physical topology (required).
	Topo *topology.Topology
	// Prog is the NDlog program every node runs (required).
	Prog *ndlog.Program
	// Mode selects provenance maintenance (§3 Distribution).
	Mode engine.ProvMode
	// Central is the server node for ProvCentralized (default 0).
	Central types.NodeID

	// Query-processor configuration.
	UDF       provquery.UDF // default: Polynomial
	Strategy  provquery.Strategy
	Threshold int64
	CacheOn   bool

	// BandwidthBucketNs, when non-zero, attaches a time-bucketed
	// bandwidth recorder to the network.
	BandwidthBucketNs int64

	// Shards is the number of engine worker shards per node (0 or 1 =
	// classic serial evaluation; engine.AutoShards sizes the count for the
	// host via engine.EffectiveShards). Sharded nodes evaluate each
	// incoming message batch with the parallel round runtime; results
	// match the serial engine exactly. Value-based and centralized
	// provenance clamp to one shard (see engine.NewNodeSharded).
	Shards int

	// Base holds additional base tuples injected at their owning nodes at
	// virtual time zero, after the topology's link tuples — the seeding
	// hook for protocol workloads whose EDB is richer than links (CHORD's
	// ident/peer/alive overlay, the policy atoms of the path-vector
	// workload). See apps.ChordBase / apps.PolicyTuples.
	Base map[types.NodeID][]types.Tuple

	// NoLinkTuples suppresses the automatic link-tuple injection for
	// programs that do not speak the `link` predicate (CHORD). The
	// physical links still exist — they carry messages — but no base
	// tuples are derived from them.
	NoLinkTuples bool

	// Faults, when non-nil, installs the seeded fault schedule on the
	// simulated network AND routes all inter-node engine and query traffic
	// through reliable transport endpoints (package transport): lost or
	// duplicated deltas would permanently corrupt the count-based
	// provenance state, so faults and reliability come as a pair. A nil
	// plan (the default) leaves the zero-allocation fault-free send path
	// untouched.
	Faults *simnet.FaultPlan

	// Transport tunes the reliable endpoints when Faults is set (zero
	// value = package transport defaults). MaxRetries 0 retries forever —
	// the right setting when every partition in the plan heals.
	Transport transport.Config
}

// Host is one node's ExSPAN stack.
type Host struct {
	Engine *engine.Node
	Query  *provquery.Processor

	// Ep is the node's reliable-transport endpoint; non-nil only when the
	// cluster runs under a FaultPlan.
	Ep *transport.Endpoint

	// The cluster-wide message free lists (the simulation is
	// single-threaded, so senders and receivers share them). A message is
	// released here, after its handler returns — the simnet delivery is
	// the last point the transport owns it. Under reliable transport the
	// SENDER's endpoint owns a message until it is acked (it may need to
	// retransmit), so frame deliveries must not Put; the Release hook does.
	msgs *engine.MessagePool
	qry  *provquery.MsgPool
}

// HandleMessage implements simnet.Handler by dispatching on payload type.
func (h *Host) HandleMessage(from types.NodeID, payload any, size int) {
	switch m := payload.(type) {
	case *engine.Message:
		h.Engine.HandleMessage(from, m)
		h.msgs.Put(m)
	case *provquery.Msg:
		h.Query.Handle(from, m)
		h.qry.Put(m)
	case *transport.Frame:
		h.Ep.OnFrame(from, m)
	default:
		panic(fmt.Sprintf("core: unknown payload %T", payload))
	}
}

// Cluster is a simulated ExSPAN deployment.
type Cluster struct {
	Cfg   Config
	Sim   *simnet.Sim
	Net   *simnet.Network
	Topo  *topology.Topology
	Prog  *engine.Program
	Hosts []*Host
	Alloc *algebra.VarAlloc
}

type simTransport struct {
	nw *simnet.Network
}

func (t simTransport) Send(from, to types.NodeID, m *engine.Message) {
	t.nw.Send(from, to, m, m.WireSize())
}

// reliableTransport routes inter-node engine traffic through the node's
// reliable endpoint. Self-sends stay local events (they never touch the
// faulty wire) and keep the direct path.
type reliableTransport struct {
	nw *simnet.Network
	ep *transport.Endpoint
}

func (t reliableTransport) Send(from, to types.NodeID, m *engine.Message) {
	if from == to {
		t.nw.Send(from, to, m, m.WireSize())
		return
	}
	t.ep.Send(to, m, m.WireSize())
}

// NewCluster builds a simulated cluster and schedules the injection of the
// topology's base link tuples at virtual time zero.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Topo == nil || cfg.Prog == nil {
		return nil, fmt.Errorf("core: Topo and Prog are required")
	}
	prog, err := engine.Compile(cfg.Prog)
	if err != nil {
		return nil, err
	}
	sim := simnet.NewSim()
	nw := simnet.NewNetwork(sim, cfg.Topo.N)
	cfg.Topo.Install(nw)
	if cfg.BandwidthBucketNs > 0 {
		nw.Recorder = stats.NewBandwidth(cfg.BandwidthBucketNs)
	}
	nw.InstallFaults(cfg.Faults)
	alloc := algebra.NewVarAlloc()
	udf := cfg.UDF
	if udf == nil {
		udf = provquery.Polynomial{}
	}

	c := &Cluster{Cfg: cfg, Sim: sim, Net: nw, Topo: cfg.Topo, Prog: prog, Alloc: alloc}
	// Resolve the adaptive sentinel here rather than leaving it to
	// NewNodeSharded: the pool decision below must see the effective count.
	shards := cfg.Shards
	if shards == engine.AutoShards {
		shards = engine.EffectiveShards(shards)
	}
	// The engine message pool is only useful — and its Puts only ever
	// drained — under single-shard evaluation: sharded fire phases bypass
	// Get, so wiring the pool in would retain every delivered message
	// forever. A nil pool degrades Put to a no-op (types.Pool contract).
	var msgPool *engine.MessagePool
	if shards <= 1 || cfg.Mode == engine.ProvValue || cfg.Mode == engine.ProvCentralized {
		msgPool = engine.NewMessagePool()
	}
	qryPool := provquery.NewMsgPool()
	for i := 0; i < cfg.Topo.N; i++ {
		id := types.NodeID(i)
		// Under a fault plan the endpoint must exist before the engine (the
		// engine's transport routes through it) while its Deliver hook needs
		// the engine — the closures capture `en` by reference to break the
		// cycle; no frame can arrive before NewCluster returns.
		var en *engine.Node
		var qp *provquery.Processor
		var ep *transport.Endpoint
		if cfg.Faults != nil {
			ep = transport.New(id, cfg.Transport, transport.Hooks{
				Send: func(to types.NodeID, f *transport.Frame) {
					nw.Send(id, to, f, f.Size+transport.HeaderBytes)
				},
				Deliver: func(from types.NodeID, payload any, size int) {
					switch m := payload.(type) {
					case *engine.Message:
						en.HandleMessage(from, m) // sender releases it on ack
					case *provquery.Msg:
						qp.Handle(from, m)
					default:
						panic(fmt.Sprintf("core: unknown reliable payload %T", payload))
					}
				},
				Schedule: func(delayNs int64, fn func()) {
					sim.At(sim.Now()+simnet.Time(delayNs), fn)
				},
				Release: func(payload any) {
					switch m := payload.(type) {
					case *engine.Message:
						msgPool.Put(m)
					case *provquery.Msg:
						qryPool.Put(m)
					}
				},
			})
		}
		var tr engine.Transport = simTransport{nw}
		if ep != nil {
			tr = reliableTransport{nw: nw, ep: ep}
		}
		en = engine.NewNodeSharded(id, prog, cfg.Mode, tr, alloc, shards)
		en.Central = cfg.Central
		en.Msgs = msgPool // nil for sharded clusters (see above)
		qp = provquery.NewProcessor(id, en.Store, udf, func(to types.NodeID, m *provquery.Msg) {
			if ep != nil && to != id {
				ep.Send(to, m, m.WireSize())
				return
			}
			nw.Send(id, to, m, m.WireSize())
		})
		qp.Strategy = cfg.Strategy
		qp.Threshold = cfg.Threshold
		qp.CacheOn = cfg.CacheOn
		qp.Msgs = qryPool
		h := &Host{Engine: en, Query: qp, Ep: ep, msgs: msgPool, qry: qryPool}
		nw.Register(id, h)
		c.Hosts = append(c.Hosts, h)
	}

	// "Each node is initialized with a link tuple for each of its
	// neighbors." — plus whatever extra EDB the workload seeds (node
	// order, so injection is deterministic).
	sim.At(0, func() {
		if !cfg.NoLinkTuples {
			for _, l := range cfg.Topo.Links {
				c.insertLinkNow(l.U, l.V, l.Cost)
			}
		}
		for i := 0; i < cfg.Topo.N; i++ {
			for _, tup := range cfg.Base[types.NodeID(i)] {
				c.Hosts[i].Engine.InsertBase(tup)
			}
		}
	})

	// Retraction protocol, phase 2: an empty event queue is the simulated
	// cluster's global quiescence point — no deletion message can still be
	// in flight — so staged re-derivations (suspects with surviving
	// alternate derivations, deferred aggregate winner promotions) are
	// released here, in node order, and the simulation resumes until no
	// host stages further work.
	//
	// Under reliable transport "no message events queued" is NOT global
	// quiescence: a delta the network dropped is still in flight for the
	// retraction protocol while its sender waits to retransmit. Whenever
	// any endpoint has unacked payloads, a live retransmission timer
	// exists (transport invariant), so declining to release here lets Run
	// pop that timer and drive recovery first.
	sim.OnIdle = func() bool {
		if cfg.Faults != nil {
			for _, h := range c.Hosts {
				if h.Ep.InFlight() > 0 {
					return false
				}
			}
		}
		any := false
		for _, h := range c.Hosts {
			if h.Engine.ReleaseAndFlush() {
				any = true
			}
		}
		if !any {
			// True global quiescence with nothing staged: the engines may
			// re-evaluate their plan choices before the simulation parks.
			for _, h := range c.Hosts {
				h.Engine.Replan()
			}
		}
		return any
	}
	return c, nil
}

func (c *Cluster) insertLinkNow(u, v types.NodeID, cost int64) {
	c.Hosts[u].Engine.InsertBase(linkTuple(u, v, cost))
	c.Hosts[v].Engine.InsertBase(linkTuple(v, u, cost))
}

func linkTuple(u, v types.NodeID, cost int64) types.Tuple {
	return types.NewTuple("link", types.Node(u), types.Node(v), types.Int(cost))
}

// RunToFixpoint executes the simulation until quiescence and returns the
// virtual fixpoint time.
func (c *Cluster) RunToFixpoint() (simnet.Time, error) {
	t := c.Sim.Run()
	return t, c.Err()
}

// RunUntil executes the simulation until the given virtual time.
func (c *Cluster) RunUntil(t simnet.Time) error {
	c.Sim.RunUntil(t)
	return c.Err()
}

// Err reports the first engine or transport error across hosts.
func (c *Cluster) Err() error {
	for _, h := range c.Hosts {
		if h.Engine.Err != nil {
			return h.Engine.Err
		}
		if h.Ep != nil {
			if err := h.Ep.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// TransportStats sums the reliable-endpoint counters across hosts. All
// zeros in fault-free runs (no endpoints exist).
func (c *Cluster) TransportStats() transport.Stats {
	var s transport.Stats
	for _, h := range c.Hosts {
		if h.Ep == nil {
			continue
		}
		st := h.Ep.Stats
		s.DataSent += st.DataSent
		s.Retransmits += st.Retransmits
		s.AcksSent += st.AcksSent
		s.Delivered += st.Delivered
		s.DupsDropped += st.DupsDropped
		s.OooBuffered += st.OooBuffered
		s.OooDropped += st.OooDropped
		s.DeadDropped += st.DeadDropped
	}
	return s
}

// AddLink installs a new physical link and its symmetric base tuples at the
// current virtual time (churn).
func (c *Cluster) AddLink(l topology.Link) {
	lat, bps := l.Class.Params()
	c.Net.AddLink(l.U, l.V, simnet.Link{Latency: lat, Bps: bps})
	c.insertLinkNow(l.U, l.V, l.Cost)
}

// RemoveLink removes a physical link and retracts its base tuples.
func (c *Cluster) RemoveLink(l topology.Link) {
	c.Net.RemoveLink(l.U, l.V)
	c.Hosts[l.U].Engine.DeleteBase(linkTuple(l.U, l.V, l.Cost))
	c.Hosts[l.V].Engine.DeleteBase(linkTuple(l.V, l.U, l.Cost))
}

// InsertBase injects a base tuple at its location specifier's node at the
// current virtual time (workload drivers: lookups, policy churn).
func (c *Cluster) InsertBase(t types.Tuple) {
	c.Hosts[t.Loc()].Engine.InsertBase(t)
}

// DeleteBase retracts a base tuple at its location specifier's node.
func (c *Cluster) DeleteBase(t types.Tuple) {
	c.Hosts[t.Loc()].Engine.DeleteBase(t)
}

// InjectEvent fires an event tuple at its location specifier's node.
func (c *Cluster) InjectEvent(t types.Tuple) {
	loc := t.Loc()
	if loc < 0 || int(loc) >= len(c.Hosts) {
		panic("core: event tuple has no valid location")
	}
	c.Hosts[loc].Engine.InjectEvent(t)
}

// Query issues a provenance query from issuer for the tuple vertex vid
// stored at loc; cb runs (at the issuer) when the result returns.
func (c *Cluster) Query(issuer types.NodeID, vid types.ID, loc types.NodeID, cb func(payload []byte)) {
	c.Hosts[issuer].Query.Query(vid, loc, cb)
}

// TupleRef locates a tuple vertex for querying.
type TupleRef struct {
	Tuple types.Tuple
	VID   types.ID
	Loc   types.NodeID
}

// TuplesOf returns every visible tuple of a predicate across the cluster.
func (c *Cluster) TuplesOf(pred string) []TupleRef {
	var out []TupleRef
	for i, h := range c.Hosts {
		for _, t := range h.Engine.Tuples(pred) {
			out = append(out, TupleRef{Tuple: t, VID: t.VID(), Loc: types.NodeID(i)})
		}
	}
	return out
}

// FindTuple locates a specific tuple by predicate and arguments.
func (c *Cluster) FindTuple(t types.Tuple) (TupleRef, bool) {
	loc := t.Loc()
	if loc < 0 || int(loc) >= len(c.Hosts) {
		return TupleRef{}, false
	}
	for _, cand := range c.Hosts[loc].Engine.Tuples(t.Pred) {
		if cand.Equal(t) {
			return TupleRef{Tuple: t, VID: t.VID(), Loc: loc}, true
		}
	}
	return TupleRef{}, false
}

// RandomTupleOf picks a uniformly random visible tuple of a predicate.
func (c *Cluster) RandomTupleOf(pred string, rng *rand.Rand) (TupleRef, bool) {
	all := c.TuplesOf(pred)
	if len(all) == 0 {
		return TupleRef{}, false
	}
	return all[rng.Intn(len(all))], true
}

// AvgCommMB reports the per-node average communication cost in MB.
func (c *Cluster) AvgCommMB() float64 { return c.Net.AvgSentMB() }

// ParseProgram is a convenience wrapper re-exported for cmd tools.
func ParseProgram(src string) (*ndlog.Program, error) { return ndlog.Parse(src) }
