package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/topology"
)

// nonLocalMinCost is MINCOST written the "natural" way, with sp2's body
// spanning two locations (@S holds the link, @Z holds the best cost) — the
// form a protocol author writes before the localization rewrite runs.
const nonLocalMinCost = `
sp1 pathCost(@S,D,C) :- link(@S,D,C).
sp2 pathCost(@S,D,C) :- link(@S,Z,C1), bestPathCost(@Z,D,C2), C = C1 + C2.
sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
`

// TestLocalizationEndToEnd: localizing the non-local MINCOST and running
// it yields the same bestPathCost fixpoint as the hand-localized program
// from the paper — and the localized program composes with the provenance
// rewrite and still reaches the same fixpoint.
func TestLocalizationEndToEnd(t *testing.T) {
	topo := topology.Figure3()

	reference, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reference.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	want := tupleSet(reference, "bestPathCost")

	nonLocal := ndlog.MustParse(nonLocalMinCost)
	if err := ndlog.Validate(nonLocal); err == nil {
		t.Fatal("non-localized program unexpectedly validates")
	}
	localized, err := ndlog.Localize(nonLocal)
	if err != nil {
		t.Fatal(err)
	}
	if err := ndlog.Validate(localized); err != nil {
		t.Fatalf("localized program invalid: %v", err)
	}

	run := func(prog *ndlog.Program, mode engine.ProvMode) map[string]bool {
		c, err := NewCluster(Config{Topo: topo, Prog: prog, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatal(err)
		}
		return tupleSet(c, "bestPathCost")
	}

	diffSets(t, "localized", want, run(localized, engine.ProvNone))
	diffSets(t, "localized+reference-prov", want, run(localized, engine.ProvReference))

	// Localization then Algorithm 1: the full declarative pipeline.
	rw, err := ndlog.ProvenanceRewrite(localized)
	if err != nil {
		t.Fatal(err)
	}
	diffSets(t, "localized+rewrite", want, run(rw, engine.ProvNone))
}
