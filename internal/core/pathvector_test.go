package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/types"
)

func TestPathVectorFigure3(t *testing.T) {
	c, err := NewCluster(Config{Topo: topology.Figure3(), Prog: apps.PathVector(), Mode: engine.ProvReference})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	// Best path a->d: a,b,c? costs: a-b(3),b-c(2),c-d(3) = 8 via [a b c d];
	// alternatives: a-c-d = 5+3 = 8, a-b-d = 3+5 = 8. All cost 8; the
	// arg-min tie-break picks a deterministic one. Check cost and a valid
	// path shape.
	var best types.Tuple
	found := false
	for _, ref := range c.TuplesOf("bestPath") {
		if ref.Tuple.Args[0].AsNode() == a && ref.Tuple.Args[1].AsNode() == d {
			best = ref.Tuple
			found = true
		}
	}
	if !found {
		t.Fatalf("bestPath(@a,d,...) missing")
	}
	if got := best.Args[2].AsInt(); got != 8 {
		t.Fatalf("best cost a->d = %d, want 8", got)
	}
	path := best.Args[3].AsList()
	if path[0].AsNode() != a || path[len(path)-1].AsNode() != d {
		t.Fatalf("path %v does not run a->d", best.Args[3])
	}
	// bestHop must agree with the path's second element.
	hopFound := false
	for _, ref := range c.TuplesOf("bestHop") {
		if ref.Tuple.Args[0].AsNode() == a && ref.Tuple.Args[1].AsNode() == d {
			hopFound = true
			if !ref.Tuple.Args[2].Equal(path[1]) {
				t.Fatalf("bestHop %v != path second element %v", ref.Tuple.Args[2], path[1])
			}
		}
	}
	if !hopFound {
		t.Fatalf("bestHop(@a,d,...) missing")
	}
}

func TestPacketForwardDelivery(t *testing.T) {
	c, err := NewCluster(Config{Topo: topology.Figure3(), Prog: apps.PacketForward(), Mode: engine.ProvReference})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	// Send a packet a -> d and check delivery.
	c.InjectEvent(apps.PacketTuple(a, a, d, 64))
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	recvd := false
	for _, ref := range c.TuplesOf("recvPacket") {
		if ref.Loc == d && ref.Tuple.Args[1].AsNode() == a && ref.Tuple.Args[2].AsNode() == d {
			recvd = true
		}
	}
	if !recvd {
		t.Fatalf("packet a->d not delivered")
	}
}

// bestCostSnapshot extracts all bestPathCost tuples as a comparable map.
func bestCostSnapshot(c *Cluster) map[string]int64 {
	out := map[string]int64{}
	for _, ref := range c.TuplesOf("bestPathCost") {
		key := ref.Tuple.Args[0].String() + "->" + ref.Tuple.Args[1].String()
		out[key] = ref.Tuple.Args[2].AsInt()
	}
	return out
}

// TestChurnIncrementalEqualsScratch applies a random add/delete link
// sequence incrementally and checks the final bestPathCost state equals a
// from-scratch evaluation of the final topology — the correctness invariant
// of PSN incremental maintenance with provenance (§4.2).
func TestChurnIncrementalEqualsScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := topology.TransitStub(topology.TransitStubParams{
		Domains: 1, TransitPerDom: 2, StubsPerTransit: 1, NodesPerStub: 4, ExtraStubEdges: 2,
	}, rng)

	for _, mode := range []engine.ProvMode{engine.ProvNone, engine.ProvReference, engine.ProvValue} {
		inc, err := NewCluster(Config{Topo: base, Prog: apps.MinCost(), Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inc.RunToFixpoint(); err != nil {
			t.Fatalf("mode %s initial: %v", mode, err)
		}

		// Apply churn: delete a few existing stub links, add a few new ones.
		final := &topology.Topology{N: base.N, Links: append([]topology.Link{}, base.Links...)}
		churnRng := rand.New(rand.NewSource(99))
		for step := 0; step < 8; step++ {
			if churnRng.Intn(2) == 0 && len(final.Links) > base.N {
				i := churnRng.Intn(len(final.Links))
				l := final.Links[i]
				final.Links = append(final.Links[:i], final.Links[i+1:]...)
				inc.RemoveLink(l)
			} else {
				u := types.NodeID(churnRng.Intn(base.N))
				v := types.NodeID(churnRng.Intn(base.N))
				if u == v || hasTopoLink(final, u, v) {
					continue
				}
				l := topology.Link{U: u, V: v, Class: topology.ClassStub, Cost: 1}
				final.Links = append(final.Links, l)
				inc.AddLink(l)
			}
			if _, err := inc.RunToFixpoint(); err != nil {
				t.Fatalf("mode %s churn step %d: %v", mode, step, err)
			}
		}

		scratch, err := NewCluster(Config{Topo: final, Prog: apps.MinCost(), Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := scratch.RunToFixpoint(); err != nil {
			t.Fatalf("mode %s scratch: %v", mode, err)
		}

		got, want := bestCostSnapshot(inc), bestCostSnapshot(scratch)
		if len(got) != len(want) {
			t.Fatalf("mode %s: %d bestPathCost tuples incrementally, %d from scratch", mode, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("mode %s: %s = %d incrementally, want %d", mode, k, got[k], v)
			}
		}
	}
}

func hasTopoLink(t *topology.Topology, u, v types.NodeID) bool {
	for _, l := range t.Links {
		if (l.U == u && l.V == v) || (l.U == v && l.V == u) {
			return true
		}
	}
	return false
}
