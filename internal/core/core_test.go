package core

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/topology"
	"repro/internal/types"
)

// figure3Cluster runs MINCOST on the paper's Figure 3 topology.
func figure3Cluster(t *testing.T, mode engine.ProvMode) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Topo: topology.Figure3(),
		Prog: apps.MinCost(),
		Mode: mode,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatalf("fixpoint: %v", err)
	}
	return c
}

var (
	a  = types.NodeID(0)
	b  = types.NodeID(1)
	cc = types.NodeID(2)
	d  = types.NodeID(3)
)

func TestMinCostFigure3BestPaths(t *testing.T) {
	c := figure3Cluster(t, engine.ProvNone)
	want := map[[2]types.NodeID]int64{
		{a, b}: 3, {a, cc}: 5, {a, d}: 8,
		{b, a}: 3, {b, cc}: 2, {b, d}: 5,
		{cc, a}: 5, {cc, b}: 2, {cc, d}: 3,
		{d, a}: 8, {d, b}: 5, {d, cc}: 3,
	}
	for pair, cost := range want {
		ref, ok := c.FindTuple(apps.BestPathCostTuple(pair[0], pair[1], cost))
		if !ok {
			t.Errorf("missing bestPathCost(@%s,%s,%d)", pair[0], pair[1], cost)
			continue
		}
		if ref.Loc != pair[0] {
			t.Errorf("bestPathCost(@%s,%s,%d) stored at %s", pair[0], pair[1], cost, ref.Loc)
		}
	}
}

func TestMinCostFigure3ProvTable(t *testing.T) {
	c := figure3Cluster(t, engine.ProvReference)

	// Table 1: pathCost(@a,c,5) has two derivations, one local (sp1@a),
	// one remote (sp2@b).
	pc := types.NewTuple("pathCost", types.Node(a), types.Node(cc), types.Int(5))
	derivs := c.Hosts[a].Engine.Store.Derivations(pc.VID())
	if len(derivs) != 2 {
		t.Fatalf("pathCost(@a,c,5): got %d derivations, want 2\nprov rows:\n%s",
			len(derivs), strings.Join(c.Hosts[a].Engine.Store.ProvRows(), "\n"))
	}
	locs := map[types.NodeID]bool{}
	for _, e := range derivs {
		locs[e.RLoc] = true
		if e.RID.IsZero() {
			t.Errorf("pathCost derivation has null RID")
		}
	}
	if !locs[a] || !locs[b] {
		t.Errorf("pathCost(@a,c,5) derivation locations = %v, want {a,b}", locs)
	}

	// Base tuple rows carry the null RID.
	link := types.NewTuple("link", types.Node(a), types.Node(cc), types.Int(5))
	ld := c.Hosts[a].Engine.Store.Derivations(link.VID())
	if len(ld) != 1 || !ld[0].RID.IsZero() {
		t.Fatalf("link(@a,c,5): want single null-RID derivation, got %+v", ld)
	}

	// Table 2: the sp2 execution at b lists link(@b,a,3) and
	// bestPathCost(@b,c,2) as inputs.
	var found bool
	for _, e := range derivs {
		if e.RLoc != b {
			continue
		}
		re, ok := c.Hosts[b].Engine.Store.RuleExecOf(e.RID)
		if !ok {
			t.Fatalf("ruleExec %s missing at b", e.RID.Short())
		}
		if re.Rule != "sp2" {
			t.Errorf("rule label = %s, want sp2", re.Rule)
		}
		wantInputs := map[types.ID]bool{
			types.NewTuple("link", types.Node(b), types.Node(a), types.Int(3)).VID():          true,
			types.NewTuple("bestPathCost", types.Node(b), types.Node(cc), types.Int(2)).VID(): true,
		}
		if len(re.VIDList) != 2 {
			t.Fatalf("sp2 inputs = %d, want 2", len(re.VIDList))
		}
		for _, vid := range re.VIDList {
			if !wantInputs[vid] {
				t.Errorf("unexpected sp2 input %s", vid.Short())
			}
		}
		found = true
	}
	if !found {
		t.Fatalf("no sp2@b rule execution found")
	}
}

func TestPolynomialQueryFigure3(t *testing.T) {
	c := figure3Cluster(t, engine.ProvReference)
	ref, ok := c.FindTuple(apps.BestPathCostTuple(a, cc, 5))
	if !ok {
		t.Fatalf("bestPathCost(@a,c,5) missing")
	}
	var result []byte
	c.Query(d, ref.VID, ref.Loc, func(payload []byte) { result = payload })
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatalf("query run: %v", err)
	}
	if result == nil {
		t.Fatalf("query did not complete")
	}
	expr, err := provquery.DecodePolynomial(result)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got := expr.String()
	// The provenance polynomial must mention exactly the three base links
	// of Figure 4: α=link(@a,c,5), β=link(@b,a,3), γ=link(@b,c,2).
	for _, lit := range []string{"link(@a,c,5)", "link(@b,a,3)", "link(@b,c,2)"} {
		if !strings.Contains(got, lit) {
			t.Errorf("polynomial %q missing literal %s", got, lit)
		}
	}
	if strings.Contains(got, "link(@b,d,5)") || strings.Contains(got, "link(@c,d,3)") {
		t.Errorf("polynomial %q mentions unrelated links", got)
	}
	bases := expr.BaseSet()
	if len(bases) != 3 {
		t.Errorf("base set size = %d, want 3 (%q)", len(bases), got)
	}
	t.Logf("polynomial: %s", got)
}

func TestDerivationCountQueryFigure3(t *testing.T) {
	c, err := NewCluster(Config{
		Topo: topology.Figure3(),
		Prog: apps.MinCost(),
		Mode: engine.ProvReference,
		UDF:  provquery.Derivations{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	ref, ok := c.FindTuple(apps.BestPathCostTuple(a, cc, 5))
	if !ok {
		t.Fatalf("bestPathCost(@a,c,5) missing")
	}
	var count int64 = -1
	c.Query(a, ref.VID, ref.Loc, func(payload []byte) { count = provquery.DecodeCount(payload) })
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	// bestPathCost(@a,c,5) <- pathCost(@a,c,5), which has two derivations.
	if count != 2 {
		t.Fatalf("derivation count = %d, want 2", count)
	}
}

func TestNodeSetQueryFigure3(t *testing.T) {
	c, err := NewCluster(Config{
		Topo: topology.Figure3(),
		Prog: apps.MinCost(),
		Mode: engine.ProvReference,
		UDF:  provquery.NodeSet{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	ref, _ := c.FindTuple(apps.BestPathCostTuple(a, cc, 5))
	var nodes []types.NodeID
	c.Query(a, ref.VID, ref.Loc, func(payload []byte) { nodes = provquery.DecodeNodeSet(payload) })
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	// The paper's node-level provenance for bestPathCost(@a,c,5) is
	// <a, b->a>: nodes a and b participate.
	if len(nodes) != 2 || nodes[0] != a || nodes[1] != b {
		t.Fatalf("node set = %v, want [a b]", nodes)
	}
}
