package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/types"
)

// TestQueriesDuringChurn floods the network with provenance queries while
// links churn underneath them. In-flight traversals may race retractions
// (the paper's cache-invalidation setting); the required behaviour is
// liveness and sanity — every query completes with a non-negative count —
// not exact answers, which are undefined mid-churn.
func TestQueriesDuringChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	topo := topology.TransitStub(topology.TransitStubParams{
		Domains: 1, TransitPerDom: 2, StubsPerTransit: 2, NodesPerStub: 6, ExtraStubEdges: 3,
	}, rng)
	for _, cache := range []bool{false, true} {
		c, err := NewCluster(Config{
			Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference,
			UDF: provquery.Derivations{}, CacheOn: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatal(err)
		}

		issued, completed := 0, 0
		wrong := 0
		wRng := rand.New(rand.NewSource(17))
		start := c.Sim.Now()
		// Churn adds fresh links and removes only links it added itself:
		// the original topology stays intact, so the network never
		// partitions and strict query liveness must hold. (Partition-drop
		// behaviour is exercised separately by the churn experiments.)
		var added []topology.Link
		for k := 0; k < 40; k++ {
			at := start + simnet.Time(k)*25*simnet.Millisecond
			k := k
			c.Sim.At(at, func() {
				if k%4 == 3 {
					if len(added) > 0 && wRng.Intn(2) == 0 {
						l := added[len(added)-1]
						added = added[:len(added)-1]
						c.RemoveLink(l)
						return
					}
					u := types.NodeID(wRng.Intn(topo.N))
					v := types.NodeID(wRng.Intn(topo.N))
					if u == v || c.Net.HasLink(u, v) {
						return
					}
					l := topology.Link{U: u, V: v, Class: topology.ClassStub, Cost: 1}
					added = append(added, l)
					c.AddLink(l)
					return
				}
				targets := c.TuplesOf("bestPathCost")
				if len(targets) == 0 {
					return
				}
				ref := targets[wRng.Intn(len(targets))]
				issued++
				c.Query(types.NodeID(wRng.Intn(topo.N)), ref.VID, ref.Loc, func(p []byte) {
					completed++
					if provquery.DecodeCount(p) < 0 {
						wrong++
					}
				})
			})
		}
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatalf("cache=%v: %v", cache, err)
		}
		if completed != issued {
			t.Errorf("cache=%v: %d/%d queries completed", cache, completed, issued)
		}
		if wrong != 0 {
			t.Errorf("cache=%v: %d malformed results", cache, wrong)
		}

		// After churn settles, answers must be exact again: compare a
		// sample against the direct graph-walking oracle.
		targets := c.TuplesOf("bestPathCost")
		for q := 0; q < 20 && q < len(targets); q++ {
			ref := targets[wRng.Intn(len(targets))]
			var got int64 = -1
			c.Query(ref.Loc, ref.VID, ref.Loc, func(p []byte) { got = provquery.DecodeCount(p) })
			c.Sim.Run()
			want := countDerivationsOracle(c, ref.VID, ref.Loc)
			if got != want {
				t.Errorf("cache=%v %s: post-churn count %d, oracle %d", cache, ref.Tuple, got, want)
			}
		}
	}
}

// countDerivationsOracle walks the distributed provenance graph through
// direct store access.
func countDerivationsOracle(c *Cluster, vid types.ID, loc types.NodeID) int64 {
	st := c.Hosts[loc].Engine.Store
	var total int64
	for _, d := range st.Derivations(vid) {
		if d.RID.IsZero() {
			total++
			continue
		}
		re, ok := c.Hosts[d.RLoc].Engine.Store.RuleExecOf(d.RID)
		if !ok {
			continue
		}
		prod := int64(1)
		for _, child := range re.VIDList {
			prod *= countDerivationsOracle(c, child, d.RLoc)
		}
		total += prod
	}
	return total
}
