package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/topology"
)

// These tests pin the cross-driver contract of the sharded runtime on the
// benchmark workload (MINCOST over the §7 transit-stub topology): the
// parallel Scheduler and sharded simnet nodes must reach exactly the
// fixpoint the classic serial simulation reaches — same visible tuples at
// every node, same provenance row sets — and repeated sharded runs must
// reproduce their byte accounting bit-for-bit.

func clusterState(t *testing.T, get func(i int) *engine.Node, n int) []string {
	t.Helper()
	out := make([]string, n)
	for i := 0; i < n; i++ {
		nd := get(i)
		s := ""
		for _, pred := range []string{"link", "pathCost", "bestPathCost"} {
			for _, tu := range nd.Tuples(pred) {
				s += pred + ":" + tu.String() + "\n"
			}
		}
		for _, row := range nd.Store.ProvRows() {
			s += "prov|" + row + "\n"
		}
		for _, row := range nd.Store.RuleExecRows() {
			s += "re|" + row + "\n"
		}
		out[i] = s
	}
	return out
}

func TestSchedulerMatchesSimnet(t *testing.T) {
	if testing.Short() {
		t.Skip("full transit-stub fixpoint")
	}
	topo := topology.TransitStub(topology.DefaultTransitStub(1), rand.New(rand.NewSource(1)))

	// Reference: the classic serial simulation.
	c, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}
	want := clusterState(t, func(i int) *engine.Node { return c.Hosts[i].Engine }, topo.N)

	prog, err := engine.Compile(apps.MinCost())
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards, workers int) *engine.Scheduler {
		s := engine.NewScheduler(prog, engine.ProvReference, topo.N, shards, workers)
		for _, l := range topo.Links {
			s.InsertBase(l.U, apps.LinkTuple(l.U, l.V, l.Cost))
			s.InsertBase(l.V, apps.LinkTuple(l.V, l.U, l.Cost))
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s
	}

	var prev *engine.Scheduler
	for _, cfg := range [][2]int{{1, 1}, {2, 0}, {4, 0}} {
		s := run(cfg[0], cfg[1])
		got := clusterState(t, func(i int) *engine.Node { return s.Node(i) }, topo.N)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("shards=%d: node %d state differs from simnet fixpoint\nsimnet:\n%.2000s\nscheduler:\n%.2000s",
					cfg[0], i, want[i], got[i])
			}
		}
		if prev != nil && s.TotalBytes != prev.TotalBytes {
			t.Errorf("total bytes differ across shard counts: %d vs %d", s.TotalBytes, prev.TotalBytes)
		}
		prev = s
	}

	// Same-config reruns reproduce accounting exactly.
	a, b := run(4, 0), run(4, 0)
	if a.TotalBytes != b.TotalBytes || a.Rounds != b.Rounds {
		t.Errorf("sharded reruns diverge: bytes %d/%d rounds %d/%d", a.TotalBytes, b.TotalBytes, a.Rounds, b.Rounds)
	}
}

// TestShardedSimnetClusterMatchesSerial runs the simulator itself with
// sharded nodes (Config.Shards) and checks the fixpoint matches the serial
// simulation — the "simnet handlers" wiring of the sharded runtime.
func TestShardedSimnetClusterMatchesSerial(t *testing.T) {
	topo := topology.Ring(10, rand.New(rand.NewSource(5)))
	states := make([][]string, 0, 2)
	for _, shards := range []int{1, 3} {
		c, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatal(err)
		}
		states = append(states, clusterState(t, func(i int) *engine.Node { return c.Hosts[i].Engine }, topo.N))
	}
	for i := range states[0] {
		if states[0][i] != states[1][i] {
			t.Fatalf("node %d: sharded simnet cluster differs from serial\nserial:\n%s\nsharded:\n%s",
				i, states[0][i], states[1][i])
		}
	}
}
