package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/topology"
)

// TestMinCostTransitStubScale exercises a full 100-node transit-stub
// fixpoint in all three provenance configurations of Fig 6 and checks the
// headline ordering: value-based >> reference-based > none, with
// reference-based overhead small.
func TestMinCostTransitStubScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	topo := topology.TransitStub(topology.DefaultTransitStub(1), rand.New(rand.NewSource(42)))
	if topo.N != 100 {
		t.Fatalf("topology size = %d, want 100", topo.N)
	}
	cost := map[engine.ProvMode]float64{}
	for _, mode := range []engine.ProvMode{engine.ProvNone, engine.ProvReference, engine.ProvValue} {
		c, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		cost[mode] = c.AvgCommMB()
		t.Logf("mode %-10s avg comm %.3f MB, total msgs %d, fixpoint %.2fs",
			mode, c.AvgCommMB(), totalMsgs(c), c.Sim.Now().Seconds())
	}
	if cost[engine.ProvReference] <= cost[engine.ProvNone] {
		t.Errorf("reference (%.3f) should exceed none (%.3f)", cost[engine.ProvReference], cost[engine.ProvNone])
	}
	if cost[engine.ProvValue] <= cost[engine.ProvReference] {
		t.Errorf("value (%.3f) should exceed reference (%.3f)", cost[engine.ProvValue], cost[engine.ProvReference])
	}
	refOverhead := cost[engine.ProvReference]/cost[engine.ProvNone] - 1
	if refOverhead > 0.5 {
		t.Errorf("reference overhead %.1f%% unexpectedly large", refOverhead*100)
	}
}

func totalMsgs(c *Cluster) int64 {
	var n int64
	for _, m := range c.Net.SentMsgs {
		n += m
	}
	return n
}
