package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/types"
)

// TestMinCostTransitStubScale exercises a full 100-node transit-stub
// fixpoint in all three provenance configurations of Fig 6 and checks the
// headline ordering: value-based >> reference-based > none, with
// reference-based overhead small.
func TestMinCostTransitStubScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	topo := topology.TransitStub(topology.DefaultTransitStub(1), rand.New(rand.NewSource(42)))
	if topo.N != 100 {
		t.Fatalf("topology size = %d, want 100", topo.N)
	}
	cost := map[engine.ProvMode]float64{}
	for _, mode := range []engine.ProvMode{engine.ProvNone, engine.ProvReference, engine.ProvValue} {
		c, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		cost[mode] = c.AvgCommMB()
		t.Logf("mode %-10s avg comm %.3f MB, total msgs %d, fixpoint %.2fs",
			mode, c.AvgCommMB(), totalMsgs(c), c.Sim.Now().Seconds())
	}
	if cost[engine.ProvReference] <= cost[engine.ProvNone] {
		t.Errorf("reference (%.3f) should exceed none (%.3f)", cost[engine.ProvReference], cost[engine.ProvNone])
	}
	if cost[engine.ProvValue] <= cost[engine.ProvReference] {
		t.Errorf("value (%.3f) should exceed reference (%.3f)", cost[engine.ProvValue], cost[engine.ProvReference])
	}
	refOverhead := cost[engine.ProvReference]/cost[engine.ProvNone] - 1
	if refOverhead > 0.5 {
		t.Errorf("reference overhead %.1f%% unexpectedly large", refOverhead*100)
	}
}

func totalMsgs(c *Cluster) int64 {
	var n int64
	for _, m := range c.Net.SentMsgs {
		n += m
	}
	return n
}

// TestScaleChordDeterminism10k is the 10k-node determinism smoke (ISSUE 8,
// S3): generate a seeded 10,000-node overlay, run the CHORD workload to
// fixpoint on a sharded scheduler, and require a rerun to reproduce the
// exact delta count, wire-byte total and a sampled slice of the fixpoint —
// sharded evaluation at four orders of magnitude above the unit topologies
// must stay bit-deterministic. Gated behind -short; `make scale-smoke`
// runs it in CI.
func TestScaleChordDeterminism10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node smoke")
	}
	const n = 10000
	run := func() (int64, int64, string) {
		topo := topology.Ring(n, rand.New(rand.NewSource(77)))
		prog, err := engine.Compile(apps.Chord())
		if err != nil {
			t.Fatal(err)
		}
		s := engine.NewScheduler(prog, engine.ProvNone, topo.N, 4, 0)
		base := apps.ChordBase(topo)
		for i := 0; i < topo.N; i++ {
			for _, tup := range base[types.NodeID(i)] {
				s.InsertBase(types.NodeID(i), tup)
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		for _, lk := range apps.ChordLookups(topo, 128, 9) {
			s.InsertBase(lk.Loc(), lk)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var deltas int64
		for i := 0; i < s.NumNodes(); i++ {
			deltas += s.Node(i).DeltasProcessed()
		}
		// Sample a deterministic slice of the fixpoint: every 997th node's
		// succ and lookupRes tuples.
		sample := ""
		for i := 0; i < n; i += 997 {
			for _, tu := range s.Node(i).Tuples("succ") {
				sample += tu.String() + "\n"
			}
			for _, tu := range s.Node(i).Tuples("lookupRes") {
				sample += tu.String() + "\n"
			}
		}
		if sample == "" {
			t.Fatal("vacuous: sampled nodes derived nothing")
		}
		return deltas, s.TotalBytes, sample
	}
	d1, b1, s1 := run()
	d2, b2, s2 := run()
	if d1 != d2 || b1 != b2 {
		t.Fatalf("10k reruns diverge: deltas %d/%d wire bytes %d/%d", d1, d2, b1, b2)
	}
	if s1 != s2 {
		t.Fatal("10k reruns diverge on sampled fixpoint state")
	}
	if d1 < int64(n) {
		t.Fatalf("only %d deltas at 10k nodes — workload did not run", d1)
	}
	t.Logf("10k chord: %d deltas, %d wire bytes", d1, b1)
}
