package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/provenance"
	"repro/internal/topology"
	"repro/internal/types"
)

// TestRewriteExecutionMatchesNative is the central equivalence check of
// §4.2: executing the Algorithm-1 rewritten program through the plain
// engine (provenance mode off — all bookkeeping done by the generated
// NDlog rules themselves) must materialize exactly the prov and ruleExec
// relations that the engine's native reference-mode hooks maintain.
func TestRewriteExecutionMatchesNative(t *testing.T) {
	cases := []struct {
		name  string
		prog  func() *ndlog.Program
		preds []string
		check string // derived relation compared across executions
	}{
		{"mincost", apps.MinCost, []string{"link", "pathCost", "bestPathCost"}, "bestPathCost"},
		{"pathvector", apps.PathVector, []string{"link", "path", "bestPath", "bestHop"}, "bestPath"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testRewriteEquivalence(t, tc.prog(), tc.preds, tc.check)
		})
	}
}

func testRewriteEquivalence(t *testing.T, prog *ndlog.Program, preds []string, checkPred string) {
	topo := topology.Figure3()

	// Native: original program with engine-level reference provenance.
	native, err := NewCluster(Config{Topo: topo, Prog: prog, Mode: engine.ProvReference})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := native.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}

	// Rewritten: Algorithm 1 output executed with provenance mode off.
	rw, err := ndlog.ProvenanceRewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := NewCluster(Config{Topo: topo, Prog: rw, Mode: engine.ProvNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rewritten.RunToFixpoint(); err != nil {
		t.Fatal(err)
	}

	// Same protocol fixpoint first (the rewrite subsumes the original).
	diffSets(t, checkPred, tupleSet(native, checkPred), tupleSet(rewritten, checkPred))

	// prov: native store rows vs rewritten prov relation rows.
	nativeProv := map[string]bool{}
	for i, h := range native.Hosts {
		node := types.NodeID(i)
		for _, pred := range preds {
			table := h.Engine.Table(pred)
			if table == nil {
				continue
			}
			for _, tu := range table.Tuples() {
				for _, d := range h.Engine.Store.Derivations(tu.VID()) {
					nativeProv[fmt.Sprintf("%s|%s|%s|%s", node, tu.VID(), d.RID, d.RLoc)] = true
				}
			}
		}
	}
	rewrittenProv := map[string]bool{}
	for i, h := range rewritten.Hosts {
		node := types.NodeID(i)
		table := h.Engine.Table("prov")
		if table == nil {
			continue
		}
		for _, tu := range table.Tuples() {
			// prov(@Loc, VID, RID, RLoc)
			rewrittenProv[fmt.Sprintf("%s|%s|%s|%s",
				node, tu.Args[1].AsID(), tu.Args[2].AsID(), tu.Args[3].AsNode())] = true
		}
	}
	diffSets(t, "prov", nativeProv, rewrittenProv)

	// ruleExec: native store vs rewritten relation.
	nativeRE := map[string]bool{}
	for i, h := range native.Hosts {
		node := types.NodeID(i)
		for _, tu := range allRuleExecRows(h, preds) {
			nativeRE[fmt.Sprintf("%s|%s", node, tu)] = true
		}
	}
	rewrittenRE := map[string]bool{}
	for i, h := range rewritten.Hosts {
		node := types.NodeID(i)
		table := h.Engine.Table("ruleExec")
		if table == nil {
			continue
		}
		for _, tu := range table.Tuples() {
			// ruleExec(@RLoc, RID, R, List)
			var vids []string
			for _, v := range tu.Args[3].AsList() {
				vids = append(vids, v.AsID().String())
			}
			rewrittenRE[fmt.Sprintf("%s|%s|%s|%v", node, tu.Args[1].AsID(), tu.Args[2].AsStr(), vids)] = true
		}
	}
	diffSets(t, "ruleExec", nativeRE, rewrittenRE)
}

// allRuleExecRows enumerates the node's native ruleExec rows. (Reverse
// parent edges no longer exist after a plain fixpoint — they are installed
// per cached query traversal — so the rows are read from the store's
// ruleExec partition directly.)
func allRuleExecRows(h *Host, preds []string) []string {
	_ = preds
	var out []string
	h.Engine.Store.ForEachRuleExec(func(re provenance.RuleExecEntry) {
		var vids []string
		for _, v := range re.VIDList {
			vids = append(vids, v.String())
		}
		out = append(out, fmt.Sprintf("%s|%s|%v", re.RID, re.Rule, vids))
	})
	sort.Strings(out)
	return out
}

func tupleSet(c *Cluster, pred string) map[string]bool {
	out := map[string]bool{}
	for _, ref := range c.TuplesOf(pred) {
		out[ref.Tuple.String()] = true
	}
	return out
}

func diffSets(t *testing.T, what string, a, b map[string]bool) {
	t.Helper()
	for k := range a {
		if !b[k] {
			t.Errorf("%s: native row %s missing from rewritten execution", what, k)
		}
	}
	for k := range b {
		if !a[k] {
			t.Errorf("%s: rewritten row %s not present natively", what, k)
		}
	}
	if len(a) != len(b) {
		t.Errorf("%s: native %d rows, rewritten %d rows", what, len(a), len(b))
	}
}
