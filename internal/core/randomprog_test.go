package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/topology"
	"repro/internal/types"
)

// randomProgram generates a small random localized NDlog program: a base
// relation base(@X,V), a chain of derived relations with joins against the
// base, arithmetic assignments, comparisons, and occasionally a MIN
// aggregate or a remote head (shipping the derivation to the neighbor
// named by the base tuple's value).
func randomProgram(rng *rand.Rand, depth int) *ndlog.Program {
	src := "r0 d0(@X,N,V) :- base(@X,N,V).\n"
	for i := 1; i <= depth; i++ {
		prev := fmt.Sprintf("d%d", i-1)
		cur := fmt.Sprintf("d%d", i)
		switch rng.Intn(4) {
		case 0: // projection + arithmetic
			src += fmt.Sprintf("r%d %s(@X,N,W) :- %s(@X,N,V), W = V + %d.\n", i, cur, prev, rng.Intn(3)+1)
		case 1: // join against base with a comparison
			src += fmt.Sprintf("r%d %s(@X,N,W) :- %s(@X,N,V), base(@X,N2,V2), W = V + V2, V2 >= %d.\n",
				i, cur, prev, rng.Intn(2))
		case 2: // remote head: ship to the neighbor in attribute N
			src += fmt.Sprintf("r%d %s(@N,X,V) :- %s(@X,N,V).\n", i, cur, prev)
			// Re-normalize the schema for the next layer.
			i++
			if i > depth {
				break
			}
			src += fmt.Sprintf("r%d d%d(@X,N,V) :- %s(@X,N,V).\n", i, i, cur)
			cur = fmt.Sprintf("d%d", i)
		case 3: // MIN aggregate
			src += fmt.Sprintf("r%d %s(@X,N,min<V>) :- %s(@X,N,V).\n", i, cur, prev)
		}
	}
	return ndlog.MustParse(src)
}

// TestRandomProgramsRewriteEquivalence extends the rewrite-vs-native
// equivalence from the two paper applications to randomly generated
// programs: for each, the Algorithm-1 rewritten program executed plainly
// must materialize the same derived relations and the same prov/ruleExec
// contents as native reference-mode execution of the original.
func TestRandomProgramsRewriteEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	topo := topology.Ring(5, rng)
	for trial := 0; trial < 25; trial++ {
		depth := 1 + rng.Intn(4)
		prog := randomProgram(rng, depth)
		if err := ndlog.Validate(prog); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v\n%s", trial, err, prog)
		}

		native, err := NewCluster(Config{Topo: topo, Prog: prog, Mode: engine.ProvReference})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rw, err := ndlog.ProvenanceRewrite(prog)
		if err != nil {
			t.Fatalf("trial %d: rewrite: %v", trial, err)
		}
		rewritten, err := NewCluster(Config{Topo: topo, Prog: rw, Mode: engine.ProvNone})
		if err != nil {
			t.Fatalf("trial %d: compile rewritten: %v\n%s", trial, err, rw)
		}

		// Shared base facts: per node, a handful of (neighbor, value) rows.
		seed := rand.New(rand.NewSource(int64(trial)))
		var facts []types.Tuple
		for n := 0; n < topo.N; n++ {
			for k := 0; k < 2+seed.Intn(3); k++ {
				facts = append(facts, types.NewTuple("base",
					types.Node(types.NodeID(n)),
					types.Node(types.NodeID(seed.Intn(topo.N))),
					types.Int(int64(seed.Intn(5)))))
			}
		}
		for _, c := range []*Cluster{native, rewritten} {
			c := c
			c.Sim.At(0, func() {
				for _, f := range facts {
					c.Hosts[f.Loc()].Engine.InsertBase(f)
				}
			})
			if _, err := c.RunToFixpoint(); err != nil {
				t.Fatalf("trial %d: %v\nprogram:\n%s", trial, err, prog)
			}
		}

		// Derived relations agree.
		var preds []string
		for i := 0; i <= depth; i++ {
			preds = append(preds, fmt.Sprintf("d%d", i))
		}
		for _, pred := range preds {
			a, b := tupleSet(native, pred), tupleSet(rewritten, pred)
			if len(a) != len(b) {
				t.Fatalf("trial %d: %s differs (%d vs %d)\nprogram:\n%s", trial, pred, len(a), len(b), prog)
			}
			for k := range a {
				if !b[k] {
					t.Fatalf("trial %d: %s missing %s\nprogram:\n%s", trial, pred, k, prog)
				}
			}
		}

		// Provenance rows agree (same comparison as the fixed-app test).
		nativeProv := map[string]bool{}
		for i, h := range native.Hosts {
			for _, pred := range append([]string{"base"}, preds...) {
				table := h.Engine.Table(pred)
				if table == nil {
					continue
				}
				for _, tu := range table.Tuples() {
					for _, d := range h.Engine.Store.Derivations(tu.VID()) {
						nativeProv[fmt.Sprintf("%d|%s|%s|%s", i, tu.VID(), d.RID, d.RLoc)] = true
					}
				}
			}
		}
		rewrittenProv := map[string]bool{}
		for i, h := range rewritten.Hosts {
			table := h.Engine.Table("prov")
			if table == nil {
				continue
			}
			for _, tu := range table.Tuples() {
				rewrittenProv[fmt.Sprintf("%d|%s|%s|%s",
					i, tu.Args[1].AsID(), tu.Args[2].AsID(), tu.Args[3].AsNode())] = true
			}
		}
		if len(nativeProv) != len(rewrittenProv) {
			t.Fatalf("trial %d: prov rows %d native vs %d rewritten\nprogram:\n%s",
				trial, len(nativeProv), len(rewrittenProv), prog)
		}
		for k := range nativeProv {
			if !rewrittenProv[k] {
				t.Fatalf("trial %d: prov row %s missing from rewritten\nprogram:\n%s", trial, k, prog)
			}
		}
	}
}
