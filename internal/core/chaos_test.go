package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/types"
)

// Chaos equivalence fences: a cluster run under a seeded fault schedule
// (probabilistic loss and duplication, latency jitter, healing partitions,
// fail-pause crashes) must reach the exact fixpoint of the fault-free run —
// same visible tuples, same provenance rows, same ruleExec rows at every
// node. The reliable transport (exactly-once, in-order per peer) is what
// makes this hold: a lost -1 or a duplicated +1 would permanently corrupt
// the count-based provenance state.

// chaosPlan builds one seeded schedule: moderate loss, duplication and
// reorder plus a partition across the cluster boot. Every partition heals,
// so the default retry-forever transport setting is the right one.
func chaosPlan(seed int64) *simnet.FaultPlan {
	p := &simnet.FaultPlan{Seed: seed, Drop: 0.15, Dup: 0.1, Jitter: 2 * simnet.Millisecond}
	p.AddPartition(3*simnet.Millisecond, 25*simnet.Millisecond, 0, 1)
	return p
}

// chaosState serializes the full per-node fixpoint state for comparison.
func chaosState(t *testing.T, c *Cluster, preds []string) []string {
	t.Helper()
	out := make([]string, len(c.Hosts))
	for i, h := range c.Hosts {
		s := ""
		for _, pred := range preds {
			for _, tu := range h.Engine.Tuples(pred) {
				s += pred + ":" + tu.String() + "\n"
			}
		}
		for _, row := range h.Engine.Store.ProvRows() {
			s += "prov|" + row + "\n"
		}
		for _, row := range h.Engine.Store.RuleExecRows() {
			s += "re|" + row + "\n"
		}
		out[i] = s
	}
	return out
}

// chaosWorkload is one protocol run through the chaos fences: its program,
// the predicates compared, optional extra base-tuple seeding beyond links
// (nil = links only) and a per-step churn action (nil = the classic
// link-pair retraction).
type chaosWorkload struct {
	name    string
	prog    func() *ndlog.Program
	preds   []string
	noLinks bool
	base    func(*topology.Topology) map[types.NodeID][]types.Tuple
	churn   func(c *Cluster, topo *topology.Topology, k int)
}

func chaosLinkChurn(c *Cluster, topo *topology.Topology, k int) {
	l := topo.Links[(k*3)%len(topo.Links)]
	c.Hosts[l.U].Engine.DeleteBase(apps.LinkTuple(l.U, l.V, l.Cost))
	c.Hosts[l.V].Engine.DeleteBase(apps.LinkTuple(l.V, l.U, l.Cost))
}

// chaosWorkloads is the protocol matrix: the two classic routing programs
// plus the PR 8 workload suite. CHORD churns soft-state liveness tuples
// (its link predicate does not exist); POLICY churns links and the policy
// atoms riding them, so route filtering changes mid-flight.
var chaosWorkloads = []chaosWorkload{
	{name: "mincost", prog: apps.MinCost,
		preds: []string{"link", "pathCost", "bestPathCost"}},
	{name: "pathvector", prog: apps.PathVector,
		preds: []string{"link", "path", "bestPath", "bestHop"}},
	{name: "chord", prog: apps.Chord, noLinks: true,
		preds: []string{"ident", "peer", "alive", "cand", "bestSucc", "succ",
			"notify", "candPred", "pred", "finger", "lookup", "lookupRes"},
		base: func(topo *topology.Topology) map[types.NodeID][]types.Tuple {
			b := apps.ChordBase(topo)
			for _, lk := range apps.ChordLookups(topo, 4, 7) {
				b[lk.Loc()] = append(b[lk.Loc()], lk)
			}
			return b
		},
		churn: func(c *Cluster, topo *topology.Topology, k int) {
			l := topo.Links[(k*3)%len(topo.Links)]
			c.Hosts[l.U].Engine.DeleteBase(apps.AliveTuple(l.U, l.V))
			c.Hosts[l.V].Engine.DeleteBase(apps.AliveTuple(l.V, l.U))
		}},
	{name: "policy", prog: apps.Policy,
		preds: []string{"link", "policy", "route", "bestRoute", "routeSet", "nextHop"},
		base: func(topo *topology.Topology) map[types.NodeID][]types.Tuple {
			return apps.PolicyTuples(topo)
		},
		churn: func(c *Cluster, topo *topology.Topology, k int) {
			l := topo.Links[(k*3)%len(topo.Links)]
			if w, ok := apps.ExportPolicy(l.U, l.V); ok {
				c.Hosts[l.U].Engine.DeleteBase(apps.PolicyTuple(l.U, l.V, w))
			}
			if w, ok := apps.ExportPolicy(l.V, l.U); ok {
				c.Hosts[l.V].Engine.DeleteBase(apps.PolicyTuple(l.V, l.U, w))
			}
			if k == 1 {
				c.Hosts[l.U].Engine.DeleteBase(apps.LinkTuple(l.U, l.V, l.Cost))
				c.Hosts[l.V].Engine.DeleteBase(apps.LinkTuple(l.V, l.U, l.Cost))
			}
		}},
}

// runChaosWorkload runs one cluster to fixpoint, applies deletion churn
// (base-tuple retractions with interleaved fixpoints; the physical links
// stay up so retransmissions remain deliverable), and returns the final
// state. Under a fault plan a second partition is injected mid-churn, so
// deletion deltas cross a lossy, partitioned wire.
func runChaosWorkload(t *testing.T, w chaosWorkload, mode engine.ProvMode, shards int, plan *simnet.FaultPlan) ([]string, *Cluster) {
	t.Helper()
	topo := topology.Ring(8, rand.New(rand.NewSource(21)))
	cfg := Config{Topo: topo, Prog: w.prog(), Mode: mode, Shards: shards, Faults: plan, NoLinkTuples: w.noLinks}
	if w.base != nil {
		cfg.Base = w.base(topo)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatalf("boot fixpoint: %v", err)
	}
	for k := 0; k < 3; k++ {
		if plan != nil && k == 1 {
			now := c.Sim.Now()
			plan.AddPartition(now+simnet.Millisecond, now+15*simnet.Millisecond, topo.Links[3].U)
		}
		if w.churn != nil {
			w.churn(c, topo, k)
		} else {
			chaosLinkChurn(c, topo, k)
		}
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatalf("churn fixpoint %d: %v", k, err)
		}
	}
	return chaosState(t, c, w.preds), c
}

func TestChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix")
	}
	modes := []engine.ProvMode{engine.ProvNone, engine.ProvReference, engine.ProvValue, engine.ProvCentralized}
	for _, w := range chaosWorkloads {
		for _, mode := range modes {
			want, _ := runChaosWorkload(t, w, mode, 0, nil)
			for _, seed := range []int64{1, 42, 1234} {
				plan := chaosPlan(seed)
				got, c := runChaosWorkload(t, w, mode, 0, plan)
				if plan.Dropped+plan.Duplicated+plan.Cut == 0 {
					t.Fatalf("%s %s seed %d: fault schedule injected nothing", w.name, mode, seed)
				}
				if st := c.TransportStats(); st.Retransmits == 0 || st.DupsDropped == 0 {
					t.Errorf("%s %s seed %d: transport recovered nothing (stats %+v)", w.name, mode, seed, st)
				}
				if c.Net.DroppedMsgs == 0 {
					t.Errorf("%s %s seed %d: network counted no drops", w.name, mode, seed)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s %s seed %d: node %d fixpoint differs from fault-free run\nfault-free:\n%.2000s\nchaos:\n%.2000s",
							w.name, mode, seed, i, want[i], got[i])
					}
				}
			}
		}
	}
}

// TestChaosEquivalenceSharded runs the same fence with sharded engine
// nodes: endpoint sends from merge rounds stay on the simulator goroutine,
// so the single-threaded transport contract must hold there too. All four
// workloads run, so the new protocols cross the sharded path under faults.
func TestChaosEquivalenceSharded(t *testing.T) {
	for _, w := range chaosWorkloads {
		want, _ := runChaosWorkload(t, w, engine.ProvReference, 3, nil)
		for _, seed := range []int64{1, 42, 1234} {
			got, _ := runChaosWorkload(t, w, engine.ProvReference, 3, chaosPlan(seed))
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s seed %d: sharded node %d chaos fixpoint differs\nfault-free:\n%.2000s\nchaos:\n%.2000s",
						w.name, seed, i, want[i], got[i])
				}
			}
		}
	}
}

// runReleaseWaveChaos is runChaosWorkload with the fault schedule aimed at
// phase 2 of the retraction protocol: after every churn step it stripes
// short healing partitions across the whole upcoming fixpoint, so windows
// land not just on the deletion wave but on the stratified release waves
// the idle hook fires afterwards — rederive batches are dropped, queued
// behind partitions and retransmitted mid-wave.
func runReleaseWaveChaos(t *testing.T, w chaosWorkload, shards int, plan *simnet.FaultPlan) ([]string, *Cluster) {
	t.Helper()
	topo := topology.Ring(8, rand.New(rand.NewSource(21)))
	cfg := Config{Topo: topo, Prog: w.prog(), Mode: engine.ProvReference, Shards: shards, Faults: plan, NoLinkTuples: w.noLinks}
	if w.base != nil {
		cfg.Base = w.base(topo)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatalf("boot fixpoint: %v", err)
	}
	for k := 0; k < 3; k++ {
		if w.churn != nil {
			w.churn(c, topo, k)
		} else {
			chaosLinkChurn(c, topo, k)
		}
		now := c.Sim.Now()
		for i := 0; i < 24; i++ {
			start := now + simnet.Time(6*i)*simnet.Millisecond
			plan.AddPartition(start, start+4*simnet.Millisecond, topo.Links[(k+i)%len(topo.Links)].U)
		}
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatalf("churn fixpoint %d: %v", k, err)
		}
	}
	return chaosState(t, c, w.preds), c
}

// TestChaosReleaseWavePartition pins the batched-release path under faults:
// deletion churn stages suspects cluster-wide, and the stratified release
// waves that re-derive them must cross a wire that keeps partitioning and
// healing in stripes for the whole churn window. The fixpoint must still
// match the fault-free run — serial and sharded, for both the MINCOST link
// churn and the POLICY link+policy churn (whose filtered-route retractions
// push the longest release waves of the suite; CHORD's alive churn is
// nearly all-local, so it never reliably crosses a partition window).
func TestChaosReleaseWavePartition(t *testing.T) {
	for _, w := range []chaosWorkload{chaosWorkloads[0], chaosWorkloads[3]} {
		for _, shards := range []int{0, 3} {
			want, _ := runChaosWorkload(t, w, engine.ProvReference, shards, nil)
			for _, seed := range []int64{7, 99} {
				plan := &simnet.FaultPlan{Seed: seed, Drop: 0.1, Jitter: simnet.Millisecond}
				got, c := runReleaseWaveChaos(t, w, shards, plan)
				if plan.Cut == 0 {
					t.Fatalf("%s shards=%d seed %d: no message crossed a release-wave partition", w.name, shards, seed)
				}
				if st := c.TransportStats(); st.Retransmits == 0 {
					t.Errorf("%s shards=%d seed %d: transport recovered nothing (stats %+v)", w.name, shards, seed, st)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s shards=%d seed %d: node %d fixpoint differs from fault-free run\nfault-free:\n%.2000s\nchaos:\n%.2000s",
							w.name, shards, seed, i, want[i], got[i])
					}
				}
			}
		}
	}
}

// TestChaosCrashRestart crashes a node mid-churn (fail-pause: its engine
// and transport state survive, all its traffic is lost while down). After
// the window closes, retransmission timers resume the conversation in both
// directions and the cluster must reconverge to the fault-free fixpoint —
// and then drain to nothing under the full-retraction no-leak invariant,
// still with loss applied.
func TestChaosCrashRestart(t *testing.T) {
	w := chaosWorkloads[0] // mincost
	preds := w.preds
	topo := topology.Ring(8, rand.New(rand.NewSource(21)))
	want, _ := runChaosWorkload(t, w, engine.ProvReference, 0, nil)

	plan := &simnet.FaultPlan{Seed: 9, Drop: 0.1, Jitter: simnet.Millisecond}
	plan.AddCrash(3, 2*simnet.Millisecond, 40*simnet.Millisecond)
	got, c := runChaosWorkload(t, w, engine.ProvReference, 0, plan)
	if plan.Cut == 0 {
		t.Fatal("crash window silenced nothing")
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("node %d fixpoint differs after crash/restart\nfault-free:\n%.2000s\ncrash:\n%.2000s", i, want[i], got[i])
		}
	}

	// Full retraction under continuing loss: the no-leak invariant must
	// survive chaos, not just clean runs.
	for _, l := range topo.Links {
		c.Hosts[l.U].Engine.DeleteBase(apps.LinkTuple(l.U, l.V, l.Cost))
		c.Hosts[l.V].Engine.DeleteBase(apps.LinkTuple(l.V, l.U, l.Cost))
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatal(err)
		}
	}
	for _, pred := range preds {
		if got := len(c.TuplesOf(pred)); got != 0 {
			t.Errorf("%d %s tuples survive full retraction under loss", got, pred)
		}
	}
	for i, h := range c.Hosts {
		if g := h.Engine.AggGroupCount(); g != 0 {
			t.Errorf("node %d: %d aggregate groups leak", i, g)
		}
		if n := h.Engine.Store.NumProv(); n != 0 {
			t.Errorf("node %d: %d prov rows leak", i, n)
		}
		if n := h.Engine.Store.NumRuleExec(); n != 0 {
			t.Errorf("node %d: %d ruleExec rows leak", i, n)
		}
		if h.Ep.InFlight() != 0 {
			t.Errorf("node %d: %d payloads still in flight at fixpoint", i, h.Ep.InFlight())
		}
	}
}
