package core

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/simnet"
	"repro/internal/topology"
)

// Chaos equivalence fences: a cluster run under a seeded fault schedule
// (probabilistic loss and duplication, latency jitter, healing partitions,
// fail-pause crashes) must reach the exact fixpoint of the fault-free run —
// same visible tuples, same provenance rows, same ruleExec rows at every
// node. The reliable transport (exactly-once, in-order per peer) is what
// makes this hold: a lost -1 or a duplicated +1 would permanently corrupt
// the count-based provenance state.

// chaosPlan builds one seeded schedule: moderate loss, duplication and
// reorder plus a partition across the cluster boot. Every partition heals,
// so the default retry-forever transport setting is the right one.
func chaosPlan(seed int64) *simnet.FaultPlan {
	p := &simnet.FaultPlan{Seed: seed, Drop: 0.15, Dup: 0.1, Jitter: 2 * simnet.Millisecond}
	p.AddPartition(3*simnet.Millisecond, 25*simnet.Millisecond, 0, 1)
	return p
}

// chaosState serializes the full per-node fixpoint state for comparison.
func chaosState(t *testing.T, c *Cluster, preds []string) []string {
	t.Helper()
	out := make([]string, len(c.Hosts))
	for i, h := range c.Hosts {
		s := ""
		for _, pred := range preds {
			for _, tu := range h.Engine.Tuples(pred) {
				s += pred + ":" + tu.String() + "\n"
			}
		}
		for _, row := range h.Engine.Store.ProvRows() {
			s += "prov|" + row + "\n"
		}
		for _, row := range h.Engine.Store.RuleExecRows() {
			s += "re|" + row + "\n"
		}
		out[i] = s
	}
	return out
}

// runChaosWorkload runs one cluster to fixpoint, applies deletion churn
// (base-tuple retractions with interleaved fixpoints; the physical links
// stay up so retransmissions remain deliverable), and returns the final
// state. Under a fault plan a second partition is injected mid-churn, so
// deletion deltas cross a lossy, partitioned wire.
func runChaosWorkload(t *testing.T, prog *ndlog.Program, preds []string, mode engine.ProvMode, shards int, plan *simnet.FaultPlan) ([]string, *Cluster) {
	t.Helper()
	topo := topology.Ring(8, rand.New(rand.NewSource(21)))
	c, err := NewCluster(Config{Topo: topo, Prog: prog, Mode: mode, Shards: shards, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToFixpoint(); err != nil {
		t.Fatalf("boot fixpoint: %v", err)
	}
	for k := 0; k < 3; k++ {
		l := topo.Links[(k*3)%len(topo.Links)]
		if plan != nil && k == 1 {
			now := c.Sim.Now()
			plan.AddPartition(now+simnet.Millisecond, now+15*simnet.Millisecond, l.U)
		}
		c.Hosts[l.U].Engine.DeleteBase(apps.LinkTuple(l.U, l.V, l.Cost))
		c.Hosts[l.V].Engine.DeleteBase(apps.LinkTuple(l.V, l.U, l.Cost))
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatalf("churn fixpoint %d: %v", k, err)
		}
	}
	return chaosState(t, c, preds), c
}

func TestChaosEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix")
	}
	workloads := []struct {
		name  string
		prog  *ndlog.Program
		preds []string
	}{
		{"mincost", apps.MinCost(), []string{"link", "pathCost", "bestPathCost"}},
		{"pathvector", apps.PathVector(), []string{"link", "path", "bestPath", "bestHop"}},
	}
	modes := []engine.ProvMode{engine.ProvNone, engine.ProvReference, engine.ProvValue, engine.ProvCentralized}
	for _, w := range workloads {
		for _, mode := range modes {
			want, _ := runChaosWorkload(t, w.prog, w.preds, mode, 0, nil)
			for _, seed := range []int64{1, 42, 1234} {
				plan := chaosPlan(seed)
				got, c := runChaosWorkload(t, w.prog, w.preds, mode, 0, plan)
				if plan.Dropped+plan.Duplicated+plan.Cut == 0 {
					t.Fatalf("%s %s seed %d: fault schedule injected nothing", w.name, mode, seed)
				}
				if st := c.TransportStats(); st.Retransmits == 0 || st.DupsDropped == 0 {
					t.Errorf("%s %s seed %d: transport recovered nothing (stats %+v)", w.name, mode, seed, st)
				}
				if c.Net.DroppedMsgs == 0 {
					t.Errorf("%s %s seed %d: network counted no drops", w.name, mode, seed)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s %s seed %d: node %d fixpoint differs from fault-free run\nfault-free:\n%.2000s\nchaos:\n%.2000s",
							w.name, mode, seed, i, want[i], got[i])
					}
				}
			}
		}
	}
}

// TestChaosEquivalenceSharded runs the same fence with sharded engine
// nodes: endpoint sends from merge rounds stay on the simulator goroutine,
// so the single-threaded transport contract must hold there too.
func TestChaosEquivalenceSharded(t *testing.T) {
	preds := []string{"link", "pathCost", "bestPathCost"}
	want, _ := runChaosWorkload(t, apps.MinCost(), preds, engine.ProvReference, 3, nil)
	for _, seed := range []int64{1, 42, 1234} {
		got, _ := runChaosWorkload(t, apps.MinCost(), preds, engine.ProvReference, 3, chaosPlan(seed))
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: sharded node %d chaos fixpoint differs\nfault-free:\n%.2000s\nchaos:\n%.2000s",
					seed, i, want[i], got[i])
			}
		}
	}
}

// TestChaosCrashRestart crashes a node mid-churn (fail-pause: its engine
// and transport state survive, all its traffic is lost while down). After
// the window closes, retransmission timers resume the conversation in both
// directions and the cluster must reconverge to the fault-free fixpoint —
// and then drain to nothing under the full-retraction no-leak invariant,
// still with loss applied.
func TestChaosCrashRestart(t *testing.T) {
	preds := []string{"link", "pathCost", "bestPathCost"}
	topo := topology.Ring(8, rand.New(rand.NewSource(21)))
	want, _ := runChaosWorkload(t, apps.MinCost(), preds, engine.ProvReference, 0, nil)

	plan := &simnet.FaultPlan{Seed: 9, Drop: 0.1, Jitter: simnet.Millisecond}
	plan.AddCrash(3, 2*simnet.Millisecond, 40*simnet.Millisecond)
	got, c := runChaosWorkload(t, apps.MinCost(), preds, engine.ProvReference, 0, plan)
	if plan.Cut == 0 {
		t.Fatal("crash window silenced nothing")
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("node %d fixpoint differs after crash/restart\nfault-free:\n%.2000s\ncrash:\n%.2000s", i, want[i], got[i])
		}
	}

	// Full retraction under continuing loss: the no-leak invariant must
	// survive chaos, not just clean runs.
	for _, l := range topo.Links {
		c.Hosts[l.U].Engine.DeleteBase(apps.LinkTuple(l.U, l.V, l.Cost))
		c.Hosts[l.V].Engine.DeleteBase(apps.LinkTuple(l.V, l.U, l.Cost))
		if _, err := c.RunToFixpoint(); err != nil {
			t.Fatal(err)
		}
	}
	for _, pred := range preds {
		if got := len(c.TuplesOf(pred)); got != 0 {
			t.Errorf("%d %s tuples survive full retraction under loss", got, pred)
		}
	}
	for i, h := range c.Hosts {
		if g := h.Engine.AggGroupCount(); g != 0 {
			t.Errorf("node %d: %d aggregate groups leak", i, g)
		}
		if n := h.Engine.Store.NumProv(); n != 0 {
			t.Errorf("node %d: %d prov rows leak", i, n)
		}
		if n := h.Engine.Store.NumRuleExec(); n != 0 {
			t.Errorf("node %d: %d ruleExec rows leak", i, n)
		}
		if h.Ep.InFlight() != 0 {
			t.Errorf("node %d: %d payloads still in flight at fixpoint", i, h.Ep.InFlight())
		}
	}
}
