// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// in the style of Bryant's symbolic boolean manipulation survey, which the
// paper uses to store condensed ("absorption") provenance.
//
// A BDD over base-tuple variables encodes the boolean derivability
// expression of a tuple: variables are base tuples (or nodes / trust
// domains, depending on granularity), AND corresponds to joins, OR to
// alternative derivations. Because ROBDDs are canonical, boolean absorption
// (a·(a+b) = a) happens by construction, which is exactly the compression
// the paper's §6.3 relies on.
package bdd

import (
	"fmt"
	"sort"
	"strings"
)

// Ref identifies a BDD node inside its Manager. The terminals False and
// True are Refs 0 and 1.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable index; lower levels are closer to the root
	lo, hi Ref
}

type applyKey struct {
	op   uint8
	a, b Ref
}

const (
	opAnd uint8 = iota
	opOr
)

// Manager owns the shared node table for a family of BDDs. Managers are not
// safe for concurrent use; each engine node owns its own manager.
type Manager struct {
	nodes  []node
	unique map[node]Ref
	apply  map[applyKey]Ref
	notMem map[Ref]Ref
}

// New creates an empty manager containing only the terminal nodes.
func New() *Manager {
	m := &Manager{
		unique: make(map[node]Ref),
		apply:  make(map[applyKey]Ref),
		notMem: make(map[Ref]Ref),
	}
	// Reserve indices 0 and 1 for the terminals. Their level is a sentinel
	// greater than any variable level so ordering comparisons stay simple.
	m.nodes = append(m.nodes, node{level: terminalLevel}, node{level: terminalLevel})
	return m
}

const terminalLevel = int32(1 << 30)

// NumNodes reports the total number of nodes allocated in the manager,
// including the two terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	n := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[n]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, n)
	m.unique[n] = r
	return r
}

// Var returns the BDD for the single variable v (v must be >= 0).
func (m *Manager) Var(v int) Ref {
	if v < 0 {
		panic("bdd: negative variable index")
	}
	return m.mk(int32(v), False, True)
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// And returns the conjunction of a and b.
func (m *Manager) And(a, b Ref) Ref {
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	k := applyKey{opAnd, a, b}
	if r, ok := m.apply[k]; ok {
		return r
	}
	r := m.combine(opAnd, a, b)
	m.apply[k] = r
	return r
}

// Or returns the disjunction of a and b.
func (m *Manager) Or(a, b Ref) Ref {
	switch {
	case a == True || b == True:
		return True
	case a == False:
		return b
	case b == False:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	k := applyKey{opOr, a, b}
	if r, ok := m.apply[k]; ok {
		return r
	}
	r := m.combine(opOr, a, b)
	m.apply[k] = r
	return r
}

func (m *Manager) combine(op uint8, a, b Ref) Ref {
	la, lb := m.level(a), m.level(b)
	top := la
	if lb < top {
		top = lb
	}
	alo, ahi := a, a
	if la == top {
		alo, ahi = m.nodes[a].lo, m.nodes[a].hi
	}
	blo, bhi := b, b
	if lb == top {
		blo, bhi = m.nodes[b].lo, m.nodes[b].hi
	}
	var lo, hi Ref
	if op == opAnd {
		lo, hi = m.And(alo, blo), m.And(ahi, bhi)
	} else {
		lo, hi = m.Or(alo, blo), m.Or(ahi, bhi)
	}
	return m.mk(top, lo, hi)
}

// Not returns the negation of a.
func (m *Manager) Not(a Ref) Ref {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	if r, ok := m.notMem[a]; ok {
		return r
	}
	n := m.nodes[a]
	r := m.mk(n.level, m.Not(n.lo), m.Not(n.hi))
	m.notMem[a] = r
	return r
}

// Restrict fixes variable v to the constant val inside a and returns the
// simplified BDD. It implements the paper's trust-policy evaluation: setting
// an untrusted base tuple's variable to false.
func (m *Manager) Restrict(a Ref, v int, val bool) Ref {
	mem := make(map[Ref]Ref)
	var rec func(r Ref) Ref
	rec = func(r Ref) Ref {
		n := m.nodes[r]
		if n.level > int32(v) {
			return r // terminals or variables ordered after v
		}
		if got, ok := mem[r]; ok {
			return got
		}
		var out Ref
		if n.level == int32(v) {
			if val {
				out = n.hi
			} else {
				out = n.lo
			}
		} else {
			out = m.mk(n.level, rec(n.lo), rec(n.hi))
		}
		mem[r] = out
		return out
	}
	return rec(a)
}

// Eval evaluates the BDD under the given assignment (missing variables
// default to false).
func (m *Manager) Eval(a Ref, assign map[int]bool) bool {
	for a != False && a != True {
		n := m.nodes[a]
		if assign[int(n.level)] {
			a = n.hi
		} else {
			a = n.lo
		}
	}
	return a == True
}

// Size reports the number of nodes reachable from r, excluding terminals.
// It is the size metric used when measuring condensed-provenance bandwidth.
func (m *Manager) Size(r Ref) int {
	seen := map[Ref]bool{}
	var rec func(Ref)
	rec = func(x Ref) {
		if x == False || x == True || seen[x] {
			return
		}
		seen[x] = true
		rec(m.nodes[x].lo)
		rec(m.nodes[x].hi)
	}
	rec(r)
	return len(seen)
}

// Support returns the sorted set of variables appearing in r.
func (m *Manager) Support(r Ref) []int {
	seen := map[Ref]bool{}
	vars := map[int]bool{}
	var rec func(Ref)
	rec = func(x Ref) {
		if x == False || x == True || seen[x] {
			return
		}
		seen[x] = true
		vars[int(m.nodes[x].level)] = true
		rec(m.nodes[x].lo)
		rec(m.nodes[x].hi)
	}
	rec(r)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// AnySat returns one satisfying assignment of r as a map from variable to
// value, or ok=false when r is unsatisfiable. Variables absent from the map
// are don't-cares.
func (m *Manager) AnySat(r Ref) (assign map[int]bool, ok bool) {
	if r == False {
		return nil, false
	}
	assign = map[int]bool{}
	for r != True {
		n := m.nodes[r]
		if n.hi != False {
			assign[int(n.level)] = true
			r = n.hi
		} else {
			assign[int(n.level)] = false
			r = n.lo
		}
	}
	return assign, true
}

// String renders r as a sum-of-products boolean expression with variables
// printed as x<i>; it is intended for tests and small examples.
func (m *Manager) String(r Ref) string {
	switch r {
	case False:
		return "0"
	case True:
		return "1"
	}
	var terms []string
	assign := map[int]bool{}
	var rec func(Ref)
	rec = func(x Ref) {
		if x == False {
			return
		}
		if x == True {
			var lits []string
			vars := make([]int, 0, len(assign))
			for v := range assign {
				vars = append(vars, v)
			}
			sort.Ints(vars)
			for _, v := range vars {
				if assign[v] {
					lits = append(lits, fmt.Sprintf("x%d", v))
				} else {
					lits = append(lits, fmt.Sprintf("!x%d", v))
				}
			}
			if len(lits) == 0 {
				terms = append(terms, "1")
			} else {
				terms = append(terms, strings.Join(lits, "*"))
			}
			return
		}
		n := m.nodes[x]
		assign[int(n.level)] = false
		rec(n.lo)
		assign[int(n.level)] = true
		rec(n.hi)
		delete(assign, int(n.level))
	}
	rec(r)
	return strings.Join(terms, " + ")
}
