package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// boolExpr is a random boolean expression evaluated both directly and via
// BDDs.
type boolExpr struct {
	op   int // 0 var, 1 and, 2 or, 3 not
	v    int
	l, r *boolExpr
}

func randExpr(rng *rand.Rand, depth, vars int) *boolExpr {
	if depth == 0 || rng.Intn(4) == 0 {
		return &boolExpr{op: 0, v: rng.Intn(vars)}
	}
	switch rng.Intn(3) {
	case 0:
		return &boolExpr{op: 1, l: randExpr(rng, depth-1, vars), r: randExpr(rng, depth-1, vars)}
	case 1:
		return &boolExpr{op: 2, l: randExpr(rng, depth-1, vars), r: randExpr(rng, depth-1, vars)}
	default:
		return &boolExpr{op: 3, l: randExpr(rng, depth-1, vars)}
	}
}

func (e *boolExpr) eval(assign []bool) bool {
	switch e.op {
	case 0:
		return assign[e.v]
	case 1:
		return e.l.eval(assign) && e.r.eval(assign)
	case 2:
		return e.l.eval(assign) || e.r.eval(assign)
	default:
		return !e.l.eval(assign)
	}
}

func (e *boolExpr) build(m *Manager) Ref {
	switch e.op {
	case 0:
		return m.Var(e.v)
	case 1:
		return m.And(e.l.build(m), e.r.build(m))
	case 2:
		return m.Or(e.l.build(m), e.r.build(m))
	default:
		return m.Not(e.l.build(m))
	}
}

// TestBDDMatchesTruthTable is the core property: for random expressions
// over <= 6 variables, the BDD agrees with direct evaluation on every
// assignment, and equal functions share a node (canonicity).
func TestBDDMatchesTruthTable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const vars = 6
	for trial := 0; trial < 300; trial++ {
		e := randExpr(rng, 5, vars)
		m := New()
		r := e.build(m)
		for mask := 0; mask < 1<<vars; mask++ {
			assign := make([]bool, vars)
			am := map[int]bool{}
			for i := 0; i < vars; i++ {
				assign[i] = mask&(1<<i) != 0
				am[i] = assign[i]
			}
			if m.Eval(r, am) != e.eval(assign) {
				t.Fatalf("trial %d mask %b: BDD disagrees with direct evaluation", trial, mask)
			}
		}
	}
}

func TestBDDCanonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const vars = 5
	for trial := 0; trial < 200; trial++ {
		m := New()
		e1 := randExpr(rng, 4, vars)
		e2 := randExpr(rng, 4, vars)
		r1, r2 := e1.build(m), e2.build(m)
		equal := true
		for mask := 0; mask < 1<<vars; mask++ {
			assign := make([]bool, vars)
			for i := 0; i < vars; i++ {
				assign[i] = mask&(1<<i) != 0
			}
			if e1.eval(assign) != e2.eval(assign) {
				equal = false
				break
			}
		}
		if (r1 == r2) != equal {
			t.Fatalf("trial %d: canonicity violated (refs equal=%v, functions equal=%v)", trial, r1 == r2, equal)
		}
	}
}

// TestAbsorption checks the paper's §6.3 example: a·(a+b) = a.
func TestAbsorption(t *testing.T) {
	m := New()
	a, b := m.Var(0), m.Var(1)
	if got := m.And(a, m.Or(a, b)); got != a {
		t.Errorf("a·(a+b) = %s, want a", m.String(got))
	}
	if got := m.Or(a, m.And(a, b)); got != a {
		t.Errorf("a+(a·b) = %s, want a", m.String(got))
	}
}

func TestBooleanLaws(t *testing.T) {
	f := func(av, bv, cv uint8) bool {
		m := New()
		a, b, c := m.Var(int(av%4)), m.Var(int(bv%4)), m.Var(int(cv%4))
		// Commutativity, associativity, distributivity, De Morgan.
		if m.And(a, b) != m.And(b, a) || m.Or(a, b) != m.Or(b, a) {
			return false
		}
		if m.And(a, m.And(b, c)) != m.And(m.And(a, b), c) {
			return false
		}
		if m.And(a, m.Or(b, c)) != m.Or(m.And(a, b), m.And(a, c)) {
			return false
		}
		if m.Not(m.And(a, b)) != m.Or(m.Not(a), m.Not(b)) {
			return false
		}
		if m.Not(m.Not(a)) != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRestrict(t *testing.T) {
	m := New()
	a, b := m.Var(0), m.Var(1)
	f := m.Or(a, m.And(m.Not(a), b)) // a + !a·b = a + b
	if got := m.Restrict(f, 0, true); got != True {
		t.Errorf("f[a=1] = %s, want 1", m.String(got))
	}
	if got := m.Restrict(f, 0, false); got != b {
		t.Errorf("f[a=0] = %s, want b", m.String(got))
	}
	// Restricting an absent variable is the identity.
	if got := m.Restrict(f, 3, true); got != f {
		t.Errorf("restrict on absent var changed the function")
	}
}

// TestRestrictMatchesTruthTable: for random expressions, Restrict(f, v,
// val) agrees with evaluating f under assignments that fix v, on every
// assignment of the remaining variables.
func TestRestrictMatchesTruthTable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const vars = 5
	for trial := 0; trial < 200; trial++ {
		e := randExpr(rng, 4, vars)
		m := New()
		f := e.build(m)
		v := rng.Intn(vars)
		val := rng.Intn(2) == 1
		g := m.Restrict(f, v, val)
		// The restricted function must not depend on v.
		for _, sv := range m.Support(g) {
			if sv == v {
				t.Fatalf("trial %d: restricted BDD still depends on x%d", trial, v)
			}
		}
		for mask := 0; mask < 1<<vars; mask++ {
			assign := map[int]bool{}
			for i := 0; i < vars; i++ {
				assign[i] = mask&(1<<i) != 0
			}
			fixed := map[int]bool{}
			for k, b := range assign {
				fixed[k] = b
			}
			fixed[v] = val
			if m.Eval(g, assign) != m.Eval(f, fixed) {
				t.Fatalf("trial %d: restrict(x%d=%v) differs at %b", trial, v, val, mask)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const vars = 6
	for trial := 0; trial < 200; trial++ {
		e := randExpr(rng, 5, vars)
		m1 := New()
		r1 := e.build(m1)
		enc := m1.Encode(r1, nil)
		if len(enc) != m1.EncodedSize(r1) {
			t.Fatalf("EncodedSize %d != len %d", m1.EncodedSize(r1), len(enc))
		}
		// Decode into a fresh manager and compare by truth table.
		m2 := New()
		r2, n, err := m2.Decode(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		for mask := 0; mask < 1<<vars; mask++ {
			am := map[int]bool{}
			for i := 0; i < vars; i++ {
				am[i] = mask&(1<<i) != 0
			}
			if m1.Eval(r1, am) != m2.Eval(r2, am) {
				t.Fatalf("trial %d: decoded BDD differs at %b", trial, mask)
			}
		}
		// Re-encoding from the new manager is byte-identical (canonical
		// serialization).
		if got := string(m2.Encode(r2, nil)); got != string(enc) {
			t.Fatalf("trial %d: serialization not canonical across managers", trial)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	m := New()
	if _, _, err := m.Decode([]byte{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := m.Decode([]byte{5, 1}); err == nil {
		t.Error("truncated input accepted")
	}
	// Forward reference: node 0 referencing node index 3.
	if _, _, err := m.Decode([]byte{1, 0, 3, 3, 2}); err == nil {
		t.Error("forward reference accepted")
	}
}

func TestSizeSupportAnySat(t *testing.T) {
	m := New()
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c)
	if s := m.Support(f); len(s) != 3 {
		t.Errorf("support = %v, want 3 vars", s)
	}
	if m.Size(f) == 0 {
		t.Error("size of non-terminal is zero")
	}
	assign, ok := m.AnySat(f)
	if !ok || !m.Eval(f, assign) {
		t.Errorf("AnySat returned non-satisfying %v", assign)
	}
	if _, ok := m.AnySat(False); ok {
		t.Error("AnySat(False) succeeded")
	}
	if m.Size(True) != 0 || len(m.Support(True)) != 0 {
		t.Error("terminal metrics wrong")
	}
}

func TestStringForms(t *testing.T) {
	m := New()
	if m.String(False) != "0" || m.String(True) != "1" {
		t.Error("terminal strings wrong")
	}
	a := m.Var(0)
	if m.String(a) != "x0" {
		t.Errorf("String(x0) = %q", m.String(a))
	}
}
