package bdd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Serialized form: uvarint count of non-terminal nodes reachable from the
// root, then for each node (in a deterministic bottom-up order) its level,
// lo and hi as uvarints, then the root reference. References 0 and 1 are the
// terminals; reference k+2 names the k-th serialized node.
//
// This is the byte representation whose length is charged to the simulated
// and deployed wire when BDD provenance is shipped (§6.3, Fig 15).

var errBadBDD = errors.New("bdd: malformed serialization")

// Encode appends the canonical serialization of r to dst.
func (m *Manager) Encode(r Ref, dst []byte) []byte {
	order := m.topo(r)
	index := map[Ref]uint64{False: 0, True: 1}
	for i, n := range order {
		index[n] = uint64(i) + 2
	}
	dst = binary.AppendUvarint(dst, uint64(len(order)))
	for _, n := range order {
		nd := m.nodes[n]
		dst = binary.AppendUvarint(dst, uint64(nd.level))
		dst = binary.AppendUvarint(dst, index[nd.lo])
		dst = binary.AppendUvarint(dst, index[nd.hi])
	}
	dst = binary.AppendUvarint(dst, index[r])
	return dst
}

// topo returns the non-terminal nodes reachable from r ordered so that
// children precede parents, with ties broken by (level, lo, hi) for
// determinism.
func (m *Manager) topo(r Ref) []Ref {
	seen := map[Ref]bool{}
	var order []Ref
	var rec func(Ref)
	rec = func(x Ref) {
		if x == False || x == True || seen[x] {
			return
		}
		seen[x] = true
		rec(m.nodes[x].lo)
		rec(m.nodes[x].hi)
		order = append(order, x)
	}
	rec(r)
	// The DFS order already places children first; make it fully
	// deterministic across managers by stable-sorting on depth ranks.
	rank := make(map[Ref]int, len(order))
	for i, n := range order {
		rank[n] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return rank[order[i]] < rank[order[j]] })
	return order
}

// EncodedSize reports len(Encode(r, nil)) without allocating the full
// buffer contents beyond one pass.
func (m *Manager) EncodedSize(r Ref) int { return len(m.Encode(r, nil)) }

// Decode reconstructs a serialized BDD inside manager m and returns its
// root. The serialization is manager-independent, so a BDD built at one
// node can be decoded at another.
func (m *Manager) Decode(b []byte) (Ref, int, error) {
	count, sz := binary.Uvarint(b)
	if sz <= 0 {
		return False, 0, errBadBDD
	}
	used := sz
	refs := make([]Ref, count+2)
	refs[0], refs[1] = False, True
	for i := uint64(0); i < count; i++ {
		level, s1 := binary.Uvarint(b[used:])
		if s1 <= 0 {
			return False, 0, errBadBDD
		}
		used += s1
		lo, s2 := binary.Uvarint(b[used:])
		if s2 <= 0 {
			return False, 0, errBadBDD
		}
		used += s2
		hi, s3 := binary.Uvarint(b[used:])
		if s3 <= 0 {
			return False, 0, errBadBDD
		}
		used += s3
		if lo >= i+2 || hi >= i+2 {
			return False, 0, fmt.Errorf("bdd: forward reference in serialization")
		}
		refs[i+2] = m.mk(int32(level), refs[lo], refs[hi])
	}
	root, s4 := binary.Uvarint(b[used:])
	if s4 <= 0 || root >= count+2 {
		return False, 0, errBadBDD
	}
	used += s4
	return refs[root], used, nil
}

// Func pairs a manager with a root reference so a BDD can travel as a
// provenance payload inside a tuple (types.Payload).
type Func struct {
	M *Manager
	R Ref
}

// WireSize implements types.Payload.
func (f Func) WireSize() int { return f.M.EncodedSize(f.R) }

// EncodePayload implements types.Payload.
func (f Func) EncodePayload() []byte { return f.M.Encode(f.R, nil) }

// String implements types.Payload.
func (f Func) String() string { return f.M.String(f.R) }
