package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// queryExperiment runs the §7.3 setup: a 100-node transit-stub network
// running MINCOST with reference-based provenance to fixpoint, then each
// node issues five queries per second against random bestPathCost tuples.
type queryConfig struct {
	udf       func(c *core.Cluster) provquery.UDF
	strategy  provquery.Strategy
	threshold int64
	cacheOn   bool
}

type queryOutcome struct {
	series    []point
	latencies *stats.CDF
	totalKB   float64
	issued    int
	completed int
	hits      int64
	misses    int64
}

func runQueryExperiment(p Params, qc queryConfig) (*queryOutcome, error) {
	n := p.scaleInt(100)
	duration := simnet.Time(float64(6*simnet.Second) * p.Scale)
	if duration < simnet.Second {
		duration = simnet.Second
	}
	topo := transitStub(n, p.Seed)
	cfg := core.Config{
		Topo:              topo,
		Prog:              apps.MinCost(),
		Mode:              engine.ProvReference,
		Strategy:          qc.strategy,
		Threshold:         qc.threshold,
		CacheOn:           qc.cacheOn,
		BandwidthBucketNs: int64(500 * simnet.Millisecond),
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	if qc.udf != nil {
		for _, h := range c.Hosts {
			h.Query.UDF = qc.udf(c)
		}
	}
	if _, err := c.RunToFixpoint(); err != nil {
		return nil, err
	}
	c.Net.ResetAccounting()
	c.Net.Recorder.Reset()
	start := c.Sim.Now()

	w := &queryWorkload{
		Cluster:  c,
		Rate:     5,
		Duration: duration,
		Rng:      rand.New(rand.NewSource(p.Seed + 31)),
	}
	if err := w.run(); err != nil {
		return nil, err
	}
	out := &queryOutcome{
		series:    relSeries(c, start, duration),
		latencies: w.Latencies,
		totalKB:   float64(c.Net.TotalBytes) / float64(topo.N) / 1e3,
		issued:    w.Issued,
		completed: w.Completed,
	}
	for _, h := range c.Hosts {
		out.hits += h.Query.CacheHits
		out.misses += h.Query.CacheMisses
	}
	return out, nil
}

// Fig11 reproduces Figure 11: average per-node query bandwidth (KBps) over
// time for POLYNOMIAL queries, with and without result caching.
func Fig11(p Params) (*Result, error) {
	res := &Result{
		ID:     "fig11",
		Title:  "Average bandwidth (KBps) for POLYNOMIAL queries, with and without caching",
		Header: []string{"Time (s)", "Without caching", "With caching"},
	}
	var cols [][]point
	for _, cache := range []bool{false, true} {
		out, err := runQueryExperiment(p, queryConfig{strategy: provquery.BFS, cacheOn: cache})
		if err != nil {
			return nil, fmt.Errorf("fig11 cache=%v: %w", cache, err)
		}
		cols = append(cols, out.series)
	}
	for i := range cols[0] {
		row := []string{f2(cols[0][i].TimeSec)}
		for _, col := range cols {
			kbps := 0.0
			if i < len(col) {
				kbps = col[i].MBps * 1000
			}
			row = append(row, f2(kbps))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig12 reproduces Figure 12: the CDF of POLYNOMIAL query completion
// latencies with and without caching.
func Fig12(p Params) (*Result, error) {
	res := &Result{
		ID:     "fig12",
		Title:  "CDF of query completion latency (s), with and without caching",
		Header: []string{"Fraction", "Without caching", "With caching"},
	}
	var cdfs []*stats.CDF
	for _, cache := range []bool{false, true} {
		out, err := runQueryExperiment(p, queryConfig{strategy: provquery.BFS, cacheOn: cache})
		if err != nil {
			return nil, fmt.Errorf("fig12 cache=%v: %w", cache, err)
		}
		cdfs = append(cdfs, out.latencies)
	}
	for _, q := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0} {
		row := []string{f2(q)}
		for _, cdf := range cdfs {
			row = append(row, fmt.Sprintf("%.4f", cdf.Quantile(q)))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// traversalConfigs are the three variants of the #DERIVATION threshold
// query of Figures 13-14 (threshold 3, the average derivation count).
func traversalConfigs() []struct {
	name string
	qc   queryConfig
} {
	return []struct {
		name string
		qc   queryConfig
	}{
		{"BFS", queryConfig{udf: countUDF, strategy: provquery.BFS}},
		{"DFS", queryConfig{udf: countUDF, strategy: provquery.DFS}},
		{"DFS-Threshold", queryConfig{udf: countUDF, strategy: provquery.DFSThreshold, threshold: 3}},
	}
}

func countUDF(*core.Cluster) provquery.UDF { return provquery.Derivations{} }

// Fig13 reproduces Figure 13: average query bandwidth (KBps) for the
// #DERIVATION query under BFS, DFS, and DFS with threshold-based pruning.
func Fig13(p Params) (*Result, error) {
	res := &Result{
		ID:     "fig13",
		Title:  "Average bandwidth (KBps) by query traversal order (#DERIVATION, threshold 3)",
		Header: []string{"Traversal", "Avg KBps", "Total KB/node", "Completed"},
	}
	for _, tc := range traversalConfigs() {
		out, err := runQueryExperiment(p, tc.qc)
		if err != nil {
			return nil, fmt.Errorf("fig13 %s: %w", tc.name, err)
		}
		var avg float64
		for _, pt := range out.series {
			avg += pt.MBps * 1000
		}
		if len(out.series) > 0 {
			avg /= float64(len(out.series))
		}
		res.Rows = append(res.Rows, []string{tc.name, f2(avg), f2(out.totalKB), fmt.Sprintf("%d/%d", out.completed, out.issued)})
	}
	return res, nil
}

// Fig14 reproduces Figure 14: the CDF of query completion latency per
// traversal order.
func Fig14(p Params) (*Result, error) {
	res := &Result{
		ID:     "fig14",
		Title:  "CDF of query completion latency (s) by traversal order",
		Header: []string{"Fraction"},
	}
	var cdfs []*stats.CDF
	for _, tc := range traversalConfigs() {
		res.Header = append(res.Header, tc.name)
		out, err := runQueryExperiment(p, tc.qc)
		if err != nil {
			return nil, fmt.Errorf("fig14 %s: %w", tc.name, err)
		}
		cdfs = append(cdfs, out.latencies)
	}
	for _, q := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0} {
		row := []string{f2(q)}
		for _, cdf := range cdfs {
			row = append(row, fmt.Sprintf("%.4f", cdf.Quantile(q)))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig15 reproduces Figure 15: average query bandwidth for POLYNOMIAL vs
// BDD (absorption-condensed) provenance queries.
func Fig15(p Params) (*Result, error) {
	res := &Result{
		ID:     "fig15",
		Title:  "Average bandwidth (KBps): POLYNOMIAL vs BDD representation",
		Header: []string{"Representation", "Avg KBps", "Total KB/node", "Median latency (s)"},
	}
	configs := []struct {
		name string
		qc   queryConfig
	}{
		{"Polynomial", queryConfig{strategy: provquery.BFS}},
		{"BDD", queryConfig{
			udf:      func(c *core.Cluster) provquery.UDF { return provquery.BDDProv{Alloc: c.Alloc} },
			strategy: provquery.BFS,
		}},
	}
	for _, tc := range configs {
		out, err := runQueryExperiment(p, tc.qc)
		if err != nil {
			return nil, fmt.Errorf("fig15 %s: %w", tc.name, err)
		}
		var avg float64
		for _, pt := range out.series {
			avg += pt.MBps * 1000
		}
		if len(out.series) > 0 {
			avg /= float64(len(out.series))
		}
		res.Rows = append(res.Rows, []string{
			tc.name, f2(avg), f2(out.totalKB), fmt.Sprintf("%.4f", out.latencies.Quantile(0.5)),
		})
	}
	return res, nil
}
