package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/types"
)

// AblationModes compares all four provenance distribution modes of §3 —
// including the centralized baseline the paper argues against — on MINCOST:
// per-node communication cost to fixpoint, server load concentration, and
// fixpoint time.
func AblationModes(p Params) (*Result, error) {
	n := p.scaleInt(100)
	topo := transitStub(n, p.Seed)
	res := &Result{
		ID:     "ablation-modes",
		Title:  "Provenance distribution modes on MINCOST (incl. centralized baseline)",
		Note:   "MaxNode is the busiest single node's share of all bytes — the centralized server bottleneck.",
		Header: []string{"Mode", "Avg MB/node", "MaxNode share", "Fixpoint (s)"},
	}
	for _, mode := range []engine.ProvMode{engine.ProvNone, engine.ProvReference, engine.ProvValue, engine.ProvCentralized} {
		c, err := core.NewCluster(core.Config{Topo: topo, Prog: apps.MinCost(), Mode: mode})
		if err != nil {
			return nil, err
		}
		fix, err := c.RunToFixpoint()
		if err != nil {
			return nil, fmt.Errorf("ablation mode=%s: %w", mode, err)
		}
		// Bytes *received* concentrate at the central server.
		var maxShare float64
		if c.Net.TotalBytes > 0 {
			var max int64
			for _, b := range c.Net.RecvBytes {
				if b > max {
					max = b
				}
			}
			maxShare = float64(max) / float64(c.Net.TotalBytes)
		}
		res.Rows = append(res.Rows, []string{
			modeLabel(mode), f3(c.AvgCommMB()), f3(maxShare), f2(fix.Seconds()),
		})
	}
	return res, nil
}

// AblationInvalidation measures the §6.1 trade-off the caching design makes
// under churn: with warm caches, every provenance change propagates
// invalidation flags. The experiment reports the extra bandwidth those
// flags cost against the query savings they protect.
func AblationInvalidation(p Params) (*Result, error) {
	n := p.scaleInt(100)
	topo := transitStub(n, p.Seed)
	res := &Result{
		ID:     "ablation-invalidation",
		Title:  "Cache invalidation cost under churn (warm caches, MINCOST)",
		Note:   "Unanswered = query messages dropped by a churn-induced partition (UDP semantics), not staleness.",
		Header: []string{"Config", "Churn KB/node", "Stale answers", "Unanswered"},
	}
	for _, cache := range []bool{false, true} {
		c, err := core.NewCluster(core.Config{
			Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference, CacheOn: cache,
		})
		if err != nil {
			return nil, err
		}
		for _, h := range c.Hosts {
			h.Query.UDF = provquery.Derivations{}
		}
		if _, err := c.RunToFixpoint(); err != nil {
			return nil, err
		}
		// Warm the caches with a query wave.
		rng := rand.New(rand.NewSource(p.Seed + 77))
		targets := c.TuplesOf("bestPathCost")
		for i := 0; i < 10*topo.N; i++ {
			ref := targets[rng.Intn(len(targets))]
			c.Query(types.NodeID(rng.Intn(topo.N)), ref.VID, ref.Loc, func([]byte) {})
		}
		c.Sim.Run()

		// Churn with accounting isolated to the churn+requery phase.
		c.Net.ResetAccounting()
		churn := newChurner(topo, rand.New(rand.NewSource(p.Seed+78)))
		for i := 0; i < 5; i++ {
			churn.batch(c, 4)
			c.Sim.Run()
		}
		if err := c.Err(); err != nil {
			return nil, err
		}

		// Verify coherence: every cached answer must match a fresh
		// traversal on a cache-off twin.
		stale, unanswered := 0, 0
		verifyRng := rand.New(rand.NewSource(p.Seed + 79))
		targets = c.TuplesOf("bestPathCost")
		fresh, err := freshCounts(c, targets, verifyRng, 50)
		if err != nil {
			return nil, err
		}
		for i, ref := range fresh.refs {
			var got int64 = -1
			c.Query(ref.Loc, ref.VID, ref.Loc, func(pl []byte) { got = provquery.DecodeCount(pl) })
			c.Sim.Run()
			switch {
			case got < 0:
				unanswered++ // partition drop: best-effort UDP
			case got != fresh.counts[i]:
				stale++
			}
		}
		label := "Caching off"
		if cache {
			label = "Caching on (flags propagate)"
		}
		res.Rows = append(res.Rows, []string{
			label,
			f2(float64(c.Net.TotalBytes) / float64(topo.N) / 1e3),
			fmt.Sprintf("%d/%d", stale, len(fresh.refs)),
			fmt.Sprintf("%d", unanswered),
		})
	}
	return res, nil
}

type freshResult struct {
	refs   []core.TupleRef
	counts []int64
}

// freshCounts samples query targets and computes ground-truth derivation
// counts by direct graph walking (a test oracle independent of caches).
func freshCounts(c *core.Cluster, targets []core.TupleRef, rng *rand.Rand, k int) (*freshResult, error) {
	out := &freshResult{}
	for i := 0; i < k && len(targets) > 0; i++ {
		ref := targets[rng.Intn(len(targets))]
		out.refs = append(out.refs, ref)
	}
	// Ground truth: traverse the same cluster with caching disabled on a
	// cloned processor view — equivalently, count via an uncached query
	// strategy. Here we recompute by walking the provenance graph
	// directly, which is exact and local-state-only.
	for _, ref := range out.refs {
		out.counts = append(out.counts, countDerivations(c, ref.VID, ref.Loc, map[types.ID]bool{}))
	}
	return out, nil
}

// countDerivations walks the distributed provenance graph through direct
// store access (test oracle, not the network protocol).
func countDerivations(c *core.Cluster, vid types.ID, loc types.NodeID, visiting map[types.ID]bool) int64 {
	st := c.Hosts[loc].Engine.Store
	derivs := st.Derivations(vid)
	if len(derivs) == 0 {
		return 0
	}
	var total int64
	for _, d := range derivs {
		if d.RID.IsZero() {
			total++
			continue
		}
		re, ok := c.Hosts[d.RLoc].Engine.Store.RuleExecOf(d.RID)
		if !ok {
			continue
		}
		prod := int64(1)
		for _, child := range re.VIDList {
			prod *= countDerivations(c, child, d.RLoc, visiting)
		}
		total += prod
	}
	return total
}
