package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/types"
)

// Fig08 reproduces Figure 8: average per-node bandwidth (MBps) over time
// for PACKETFORWARD on a 200-node network. Each node picks a random peer
// and transmits 1024-byte tuples at 100 tuples per second.
func Fig08(p Params) (*Result, error) {
	n := p.scaleInt(200)
	duration := simnet.Time(float64(4*simnet.Second) * p.Scale)
	if duration < simnet.Second {
		duration = simnet.Second
	}
	rate := 100 // packets per node per second
	bucket := int64(simnet.Second / 2)

	res := &Result{
		ID:     "fig08",
		Title:  "Average bandwidth (MBps) for PACKETFORWARD over time",
		Header: []string{"Time (s)"},
	}
	series := map[engine.ProvMode][]float64{}
	var times []float64
	for _, mode := range modes {
		res.Header = append(res.Header, modeLabel(mode))
		topo := transitStub(n, p.Seed)
		c, err := runToFixpoint(topo, apps.PacketForward(), mode, bucket)
		if err != nil {
			return nil, fmt.Errorf("fig08 mode=%s: %w", mode, err)
		}
		// Measure only the data-plane phase.
		c.Net.ResetAccounting()
		c.Net.Recorder.Reset()
		start := c.Sim.Now()
		rng := rand.New(rand.NewSource(p.Seed + 500)) // identical workload per mode
		interval := simnet.Second / simnet.Time(rate)
		for i := 0; i < topo.N; i++ {
			src := types.NodeID(i)
			dst := types.NodeID(rng.Intn(topo.N))
			if dst == src {
				dst = types.NodeID((i + 1) % topo.N)
			}
			phase := simnet.Time(rng.Int63n(int64(interval)))
			for k := simnet.Time(0); k < duration; k += interval {
				at := start + phase + k
				c.Sim.At(at, func() {
					c.InjectEvent(apps.PacketTuple(src, src, dst, 1024))
				})
			}
		}
		if err := c.RunUntil(start + duration); err != nil {
			return nil, fmt.Errorf("fig08 mode=%s: %w", mode, err)
		}
		pts := relSeries(c, start, duration)
		var col []float64
		times = times[:0]
		for _, pt := range pts {
			times = append(times, pt.TimeSec)
			col = append(col, pt.MBps)
		}
		series[mode] = col
	}
	for i, ts := range times {
		row := []string{f2(ts)}
		for _, mode := range modes {
			row = append(row, f3(series[mode][i]))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// relSeries extracts the recorder series relative to a start time.
func relSeries(c *core.Cluster, start, duration simnet.Time) []point {
	raw := c.Net.Recorder.Series(int64(start+duration), c.Topo.N)
	bucketSec := float64(c.Net.Recorder.BucketNs) / 1e9
	startSec := start.Seconds()
	var out []point
	for _, pt := range raw {
		if pt.TimeSec+bucketSec <= startSec {
			continue
		}
		rel := pt.TimeSec - startSec
		if rel < 0 {
			rel = 0 // the bucket straddling the phase start
		}
		out = append(out, point{TimeSec: rel, MBps: pt.MBps})
	}
	return out
}

type point struct {
	TimeSec float64
	MBps    float64
}
