package experiments

import (
	"strings"
	"testing"
)

func TestAblationModes(t *testing.T) {
	res, err := AblationModes(Params{Scale: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 modes", len(res.Rows))
	}
	none := parseF(t, res.Rows[0][1])
	ref := parseF(t, res.Rows[1][1])
	value := parseF(t, res.Rows[2][1])
	central := parseF(t, res.Rows[3][1])
	if !(none < ref && ref < value) {
		t.Errorf("expected none < ref < value, got %v %v %v", none, ref, value)
	}
	// Centralized relays every prov/ruleExec row: the most expensive in
	// aggregate bandwidth.
	if central <= value {
		t.Errorf("centralized (%v) should exceed value-based (%v)", central, value)
	}
	// And it concentrates load at the server relative to reference mode.
	refShare := parseF(t, res.Rows[1][2])
	centralShare := parseF(t, res.Rows[3][2])
	if centralShare <= refShare {
		t.Errorf("centralized max-node share %v should exceed reference %v", centralShare, refShare)
	}
}

func TestAblationInvalidation(t *testing.T) {
	res, err := AblationInvalidation(Params{Scale: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Coherence: no stale answers in either configuration.
	for _, row := range res.Rows {
		if !strings.HasPrefix(row[2], "0/") {
			t.Errorf("%s: stale answers %s", row[0], row[2])
		}
	}
}
