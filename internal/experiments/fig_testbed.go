package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/internal/deploy"
	"repro/internal/engine"
	"repro/internal/topology"
)

// Fig16 reproduces Figure 16: average per-node bandwidth for PATHVECTOR in
// the testbed deployment — 40 ExSPAN instances over real UDP sockets, ring
// overlay with one random peer each (degree <= 3).
func Fig16(p Params) (*Result, error) {
	n := p.scaleInt(40)
	res := &Result{
		ID:     "fig16",
		Title:  fmt.Sprintf("Testbed (UDP): PATHVECTOR bandwidth, %d nodes", n),
		Header: []string{"Mode", "Total KB/node", "Overhead vs no-prov", "Fixpoint (s)"},
	}
	topo := topology.Ring(n, rand.New(rand.NewSource(p.Seed)))
	var base float64
	for _, mode := range []engine.ProvMode{engine.ProvNone, engine.ProvReference, engine.ProvValue} {
		kb, fix, err := deployRun(topo, mode)
		if err != nil {
			return nil, fmt.Errorf("fig16 mode=%s: %w", mode, err)
		}
		if mode == engine.ProvNone {
			base = kb
		}
		over := "-"
		if mode != engine.ProvNone && base > 0 {
			over = fmt.Sprintf("+%.0f%%", (kb/base-1)*100)
		}
		res.Rows = append(res.Rows, []string{modeLabel(mode), f2(kb), over, f2(fix.Seconds())})
	}
	return res, nil
}

// Fig17 reproduces Figure 17: fixpoint latency of PATHVECTOR in testbed
// deployments of 5-40 nodes (degree fixed at 3) per provenance mode.
func Fig17(p Params) (*Result, error) {
	sizes := []int{5, 10, 20, 30, 40}
	if p.Scale < 1 {
		sizes = sizes[:p.scaleInt(len(sizes))]
	}
	res := &Result{
		ID:     "fig17",
		Title:  "Testbed (UDP): PATHVECTOR fixpoint latency (s) vs network size",
		Header: []string{"Nodes", modeLabel(engine.ProvValue), modeLabel(engine.ProvReference), modeLabel(engine.ProvNone)},
	}
	for _, n := range sizes {
		topo := topology.Ring(n, rand.New(rand.NewSource(p.Seed+int64(n))))
		row := []string{fmt.Sprintf("%d", n)}
		for _, mode := range []engine.ProvMode{engine.ProvValue, engine.ProvReference, engine.ProvNone} {
			_, fix, err := deployRun(topo, mode)
			if err != nil {
				return nil, fmt.Errorf("fig17 n=%d mode=%s: %w", n, mode, err)
			}
			row = append(row, f2(fix.Seconds()))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func deployRun(topo *topology.Topology, mode engine.ProvMode) (avgKB float64, fixpoint time.Duration, err error) {
	cl, err := deploy.NewCluster(deploy.Config{Topo: topo, Prog: apps.PathVector(), Mode: mode})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Stop()
	cl.Start()
	insertStart := time.Now()
	cl.InsertLinks()
	if _, err := cl.WaitFixpoint(60 * time.Second); err != nil {
		return 0, 0, err
	}
	if err := cl.Err(); err != nil {
		return 0, 0, err
	}
	return cl.AvgSentKB(), time.Since(insertStart), nil
}
