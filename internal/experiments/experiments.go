// Package experiments reproduces the paper's evaluation (§7): one
// generator per table and figure, each returning a printable Result whose
// rows mirror the series the paper plots. Absolute numbers depend on the
// substrate (our simulator vs the authors' ns-3 testbed); the shapes —
// who wins, by what factor, where crossovers fall — are the reproduction
// target and are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/types"
)

// Params controls experiment scale.
type Params struct {
	// Scale in (0, 1] shrinks network sizes and workload durations so the
	// full suite can run as Go benchmarks; 1.0 reproduces the paper's
	// parameters.
	Scale float64
	// Seed drives all randomness (topology generation, workloads, churn).
	Seed int64
}

// DefaultParams runs at full paper scale.
func DefaultParams() Params { return Params{Scale: 1.0, Seed: 42} }

func (p Params) scaleInt(v int) int {
	s := int(float64(v) * p.Scale)
	if s < 1 {
		s = 1
	}
	return s
}

// Result is one reproduced table or figure.
type Result struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	s := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	if r.Note != "" {
		s += r.Note + "\n"
	}
	return s + stats.Table(r.Header, r.Rows)
}

// modes is the standard three-way comparison of the evaluation figures.
var modes = []engine.ProvMode{engine.ProvValue, engine.ProvReference, engine.ProvNone}

func modeLabel(m engine.ProvMode) string {
	switch m {
	case engine.ProvValue:
		return "Value-based Prov. (BDD)"
	case engine.ProvReference:
		return "Ref-based Prov."
	case engine.ProvNone:
		return "No Prov."
	case engine.ProvCentralized:
		return "Centralized Prov."
	}
	return m.String()
}

// transitStub builds the §7 transit-stub topology with about n nodes (one
// domain per 100 nodes).
func transitStub(n int, seed int64) *topology.Topology {
	domains := n / 100
	if domains < 1 {
		domains = 1
	}
	return topology.TransitStub(topology.DefaultTransitStub(domains), rand.New(rand.NewSource(seed)))
}

// runToFixpoint builds a cluster and runs the protocol to its distributed
// fixpoint, returning the cluster for measurement.
func runToFixpoint(topo *topology.Topology, prog *ndlog.Program, mode engine.ProvMode, bucketNs int64) (*core.Cluster, error) {
	c, err := core.NewCluster(core.Config{
		Topo:              topo,
		Prog:              prog,
		Mode:              mode,
		BandwidthBucketNs: bucketNs,
	})
	if err != nil {
		return nil, err
	}
	if _, err := c.RunToFixpoint(); err != nil {
		return nil, err
	}
	return c, nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// queryWorkload drives the §7.3 query experiments: after the protocol
// fixpoint, every node issues rate queries per second for uniformly random
// bestPathCost tuples over the given duration.
type queryWorkload struct {
	Cluster  *core.Cluster
	Rate     int // queries per node per second
	Duration simnet.Time
	Rng      *rand.Rand

	Latencies *stats.CDF
	Issued    int
	Completed int
}

// run schedules and executes the workload, measuring per-query completion
// latency and (via the cluster's recorder) bandwidth over time.
func (w *queryWorkload) run() error {
	c := w.Cluster
	targets := c.TuplesOf("bestPathCost")
	if len(targets) == 0 {
		return fmt.Errorf("experiments: no bestPathCost tuples to query")
	}
	w.Latencies = stats.NewCDF()
	start := c.Sim.Now()
	interval := simnet.Second / simnet.Time(w.Rate)
	for node := 0; node < c.Topo.N; node++ {
		node := node
		// Jitter each node's phase so queries do not synchronize.
		phase := simnet.Time(w.Rng.Int63n(int64(interval)))
		for k := simnet.Time(0); k < w.Duration; k += interval {
			at := start + phase + k
			c.Sim.At(at, func() {
				ref := targets[w.Rng.Intn(len(targets))]
				issued := c.Sim.Now()
				w.Issued++
				c.Query(types.NodeID(node), ref.VID, ref.Loc, func([]byte) {
					w.Completed++
					w.Latencies.Add((c.Sim.Now() - issued).Seconds())
				})
			})
		}
	}
	c.Sim.RunUntil(start + w.Duration + 5*simnet.Second)
	// Let stragglers finish.
	c.Sim.Run()
	return c.Err()
}
