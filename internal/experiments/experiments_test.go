package experiments

import (
	"strconv"
	"testing"
)

func small() Params { return Params{Scale: 0.2, Seed: 7} }

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig06Shape(t *testing.T) {
	res, err := Fig06(small())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	for _, row := range res.Rows {
		value, ref, none := parseF(t, row[1]), parseF(t, row[2]), parseF(t, row[3])
		if !(value > ref && ref > none) {
			t.Errorf("n=%s: want value > ref > none, got %v %v %v", row[0], value, ref, none)
		}
		if ref/none > 1.6 {
			t.Errorf("n=%s: reference overhead %0.f%% too large", row[0], (ref/none-1)*100)
		}
	}
}

func TestFig07Shape(t *testing.T) {
	res, err := Fig07(small())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	for _, row := range res.Rows {
		value, ref, none := parseF(t, row[1]), parseF(t, row[2]), parseF(t, row[3])
		if !(value > ref && ref > none) {
			t.Errorf("n=%s: want value > ref > none, got %v %v %v", row[0], value, ref, none)
		}
	}
}

func TestFig08Shape(t *testing.T) {
	res, err := Fig08(Params{Scale: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	// Data-plane overhead of provenance must be small relative to the
	// 1 KB payloads: value and reference within 30% of no-provenance in
	// aggregate.
	var sums [3]float64
	for _, row := range res.Rows {
		for i := 0; i < 3; i++ {
			sums[i] += parseF(t, row[i+1])
		}
	}
	if sums[2] == 0 {
		t.Fatal("no traffic recorded")
	}
	if ratio := sums[0] / sums[2]; ratio > 1.6 {
		t.Errorf("value-based packet forwarding overhead ratio %.2f too large", ratio)
	}
	if ratio := sums[1] / sums[2]; ratio > 1.3 {
		t.Errorf("reference packet forwarding overhead ratio %.2f too large", ratio)
	}
}

func TestFig09ChurnShape(t *testing.T) {
	res, err := Fig09(Params{Scale: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	var sums [3]float64
	for _, row := range res.Rows {
		for i := 0; i < 3; i++ {
			sums[i] += parseF(t, row[i+1])
		}
	}
	// Under churn, reference tracks no-prov closely; value is well above.
	if !(sums[0] > sums[1] && sums[1] >= sums[2]) {
		t.Errorf("want value > ref >= none, got %v", sums)
	}
}

func TestFig11CachingSavesBandwidth(t *testing.T) {
	res, err := Fig11(Params{Scale: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	var without, with float64
	for _, row := range res.Rows {
		without += parseF(t, row[1])
		with += parseF(t, row[2])
	}
	if with >= without {
		t.Errorf("caching should reduce bandwidth: with=%.2f without=%.2f", with, without)
	}
}

func TestFig12CachingCutsLatency(t *testing.T) {
	res, err := Fig12(Params{Scale: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	// Caching must not hurt, and must help at the low quantiles where
	// cache hits dominate.
	betterAt := 0
	for _, row := range res.Rows {
		frac := parseF(t, row[0])
		without, with := parseF(t, row[1]), parseF(t, row[2])
		if with > without*1.1 {
			t.Errorf("q=%.2f: caching worsened latency (%.4f -> %.4f)", frac, without, with)
		}
		if with < without {
			betterAt++
		}
	}
	if betterAt < len(res.Rows)/2 {
		t.Errorf("caching improved only %d/%d quantiles", betterAt, len(res.Rows))
	}
}

func TestFig14DFSLongTail(t *testing.T) {
	res, err := Fig14(Params{Scale: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	last := res.Rows[len(res.Rows)-1] // the max (q=1.0)
	bfsMax, dfsMax, thrMax := parseF(t, last[1]), parseF(t, last[2]), parseF(t, last[3])
	if dfsMax <= bfsMax {
		t.Errorf("DFS max latency %.4f should exceed BFS %.4f (long tail)", dfsMax, bfsMax)
	}
	if thrMax > dfsMax {
		t.Errorf("threshold max %.4f should not exceed plain DFS %.4f", thrMax, dfsMax)
	}
	// Medians are comparable across strategies.
	var median []float64
	for _, row := range res.Rows {
		if row[0] == "0.50" {
			median = []float64{parseF(t, row[1]), parseF(t, row[2]), parseF(t, row[3])}
		}
	}
	if len(median) == 3 && (median[1] > 2*median[0] || median[0] > 2*median[1]) {
		t.Errorf("BFS/DFS medians diverge unexpectedly: %v", median)
	}
}

func TestFig13ThresholdSavesBandwidth(t *testing.T) {
	res, err := Fig13(Params{Scale: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	bfs := parseF(t, res.Rows[0][2])
	dfs := parseF(t, res.Rows[1][2])
	thr := parseF(t, res.Rows[2][2])
	// BFS and DFS traverse the whole graph (similar totals); the
	// threshold variant prunes.
	if thr >= bfs {
		t.Errorf("DFS-Threshold (%.2f) should use less than BFS (%.2f)", thr, bfs)
	}
	if dfs > bfs*1.3 || bfs > dfs*1.3 {
		t.Errorf("BFS (%.2f) and DFS (%.2f) should be comparable", bfs, dfs)
	}
}

func TestFig15BDDCondenses(t *testing.T) {
	res, err := Fig15(Params{Scale: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	poly := parseF(t, res.Rows[0][2])
	bddKB := parseF(t, res.Rows[1][2])
	if bddKB >= poly {
		t.Errorf("BDD (%.2f KB) should be cheaper than polynomial (%.2f KB)", bddKB, poly)
	}
}

func TestTables12(t *testing.T) {
	t1, t2, err := Tables12(small())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + t1.Table())
	t.Log("\n" + t2.Table())
	if len(t1.Rows) < 8 {
		t.Errorf("Table 1: %d rows, want >= 8", len(t1.Rows))
	}
	if len(t2.Rows) < 5 {
		t.Errorf("Table 2: %d rows, want >= 5", len(t2.Rows))
	}
}
