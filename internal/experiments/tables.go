package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/topology"
)

// Tables12 regenerates the paper's Tables 1 and 2 — the prov and ruleExec
// relations for the Figure 3 network running MINCOST — restricted, like the
// paper, to the rows relevant to nodes a and b.
func Tables12(p Params) (*Result, *Result, error) {
	c, err := core.NewCluster(core.Config{
		Topo: topology.Figure3(),
		Prog: apps.MinCost(),
		Mode: engine.ProvReference,
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := c.RunToFixpoint(); err != nil {
		return nil, nil, err
	}

	t1 := &Result{
		ID:     "table1",
		Title:  "prov relation (nodes a and b)",
		Header: []string{"Loc", "Derivation", "RID", "RLoc"},
	}
	t2 := &Result{
		ID:     "table2",
		Title:  "ruleExec relation (nodes a and b)",
		Header: []string{"RLoc", "RID", "R", "VIDList"},
	}
	for node := 0; node < 2; node++ { // a and b
		st := c.Hosts[node].Engine.Store
		for _, row := range st.ProvRows() {
			parts := strings.Split(row, " | ")
			if len(parts) == 4 && wantDerivation(parts[1]) {
				t1.Rows = append(t1.Rows, parts)
			}
		}
		for _, row := range st.RuleExecRows() {
			parts := strings.Split(row, " | ")
			if len(parts) == 4 {
				t2.Rows = append(t2.Rows, parts)
			}
		}
	}
	if len(t1.Rows) == 0 || len(t2.Rows) == 0 {
		return nil, nil, fmt.Errorf("tables12: empty provenance relations")
	}
	return t1, t2, nil
}

// wantDerivation mirrors the paper's Table 1 row set: link, pathCost and
// bestPathCost tuples involving destination c plus the base links used.
func wantDerivation(label string) bool {
	return strings.HasPrefix(label, "link(") ||
		strings.HasPrefix(label, "pathCost(") ||
		strings.HasPrefix(label, "bestPathCost(")
}

// Run executes every experiment at the given scale in paper order,
// streaming each result through emit as soon as it is ready. Deployment
// figures (16, 17) can be excluded for fully deterministic simulated runs.
func Run(p Params, includeTestbed bool, emit func(*Result)) error {
	t1, t2, err := Tables12(p)
	if err != nil {
		return err
	}
	emit(t1)
	emit(t2)
	type gen struct {
		name string
		fn   func(Params) (*Result, error)
	}
	gens := []gen{
		{"fig06", Fig06}, {"fig07", Fig07}, {"fig08", Fig08},
		{"fig09", Fig09}, {"fig10", Fig10}, {"fig11", Fig11},
		{"fig12", Fig12}, {"fig13", Fig13}, {"fig14", Fig14},
		{"fig15", Fig15},
	}
	if includeTestbed {
		gens = append(gens, gen{"fig16", Fig16}, gen{"fig17", Fig17})
	}
	for _, g := range gens {
		r, err := g.fn(p)
		if err != nil {
			return fmt.Errorf("%s: %w", g.name, err)
		}
		emit(r)
	}
	return nil
}

// All runs every experiment and returns the results in paper order.
func All(p Params, includeTestbed bool) ([]*Result, error) {
	var out []*Result
	err := Run(p, includeTestbed, func(r *Result) { out = append(out, r) })
	return out, err
}
