package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/simnet"
)

// churnFingerprint is everything a seeded churn run must reproduce exactly:
// the number of executed events, the final virtual clock, and the complete
// byte/message accounting.
type churnFingerprint struct {
	steps      int64
	end        simnet.Time
	totalBytes int64
	sent       []int64
	recv       []int64
	msgs       []int64
}

func runSeededChurn(t *testing.T, seed int64) churnFingerprint {
	t.Helper()
	topo := transitStub(100, seed)
	c, err := runToFixpoint(topo, apps.MinCost(), engine.ProvReference, 0)
	if err != nil {
		t.Fatalf("fixpoint: %v", err)
	}
	rng := rand.New(rand.NewSource(seed + 1000))
	ch := newChurner(topo, rng)
	start := c.Sim.Now()
	for k := 0; k < 6; k++ {
		at := start + simnet.Time(k)*100*simnet.Millisecond
		c.Sim.At(at, func() { ch.batch(c, 5) })
	}
	if err := c.RunUntil(start + simnet.Second); err != nil {
		t.Fatalf("churn run: %v", err)
	}
	c.Sim.Run() // drain stragglers
	if err := c.Err(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	return churnFingerprint{
		steps:      c.Sim.Steps(),
		end:        c.Sim.Now(),
		totalBytes: c.Net.TotalBytes,
		sent:       append([]int64(nil), c.Net.SentBytes...),
		recv:       append([]int64(nil), c.Net.RecvBytes...),
		msgs:       append([]int64(nil), c.Net.SentMsgs...),
	}
}

// TestSeededChurnDeterministic locks in the simulator's determinism
// contract across the scheduler swap: with a fixed seed, two complete churn
// runs (fixpoint, six churn batches, drain) must agree byte-for-byte on
// event count, final virtual time and every per-node counter. The 4-ary
// event heap preserves FIFO order for equal timestamps via the scheduling
// sequence number, so this holds however ties restructure the heap.
func TestSeededChurnDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run churn experiment")
	}
	a := runSeededChurn(t, 11)
	b := runSeededChurn(t, 11)
	if a.steps != b.steps {
		t.Errorf("steps differ: %d vs %d", a.steps, b.steps)
	}
	if a.end != b.end {
		t.Errorf("final virtual time differs: %d vs %d", a.end, b.end)
	}
	if a.totalBytes != b.totalBytes {
		t.Errorf("total bytes differ: %d vs %d", a.totalBytes, b.totalBytes)
	}
	for i := range a.sent {
		if a.sent[i] != b.sent[i] || a.recv[i] != b.recv[i] || a.msgs[i] != b.msgs[i] {
			t.Fatalf("node %d counters differ: sent %d/%d recv %d/%d msgs %d/%d",
				i, a.sent[i], b.sent[i], a.recv[i], b.recv[i], a.msgs[i], b.msgs[i])
		}
	}
	// A different seed must not degenerate to the same trace (sanity check
	// that the fingerprint actually captures the run).
	c := runSeededChurn(t, 12)
	if c.steps == a.steps && c.totalBytes == a.totalBytes && c.end == a.end {
		t.Error("different seeds produced identical fingerprints; test is vacuous")
	}
}
