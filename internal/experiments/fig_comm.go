package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/ndlog"
)

// Fig06 reproduces Figure 6: average per-node communication cost (MB) to
// fixpoint for MINCOST on transit-stub networks of 100-500 nodes, under
// value-based (BDD), reference-based and no provenance.
func Fig06(p Params) (*Result, error) {
	return commCostSweep(p, "fig06",
		"Average communication cost (MB) for MINCOST", apps.MinCost())
}

// Fig07 reproduces Figure 7: the same sweep for PATHVECTOR.
func Fig07(p Params) (*Result, error) {
	return commCostSweep(p, "fig07",
		"Average communication cost (MB) for PATHVECTOR", apps.PathVector())
}

func commCostSweep(p Params, id, title string, prog *ndlog.Program) (*Result, error) {
	sizes := []int{100, 200, 300, 400, 500}
	if p.Scale < 1 {
		sizes = sizes[:p.scaleInt(len(sizes))]
	}
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"Nodes", modeLabel(modes[0]), modeLabel(modes[1]), modeLabel(modes[2])},
	}
	for _, n := range sizes {
		topo := transitStub(n, p.Seed)
		row := []string{fmt.Sprintf("%d", topo.N)}
		for _, mode := range modes {
			c, err := runToFixpoint(topo, prog, mode, 0)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d mode=%s: %w", id, n, mode, err)
			}
			row = append(row, f3(c.AvgCommMB()))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
