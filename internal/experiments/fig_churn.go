package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/simnet"
	"repro/internal/topology"
	"repro/internal/types"
)

// Fig09 reproduces Figure 9: average per-node bandwidth (MBps) for MINCOST
// under high churn — ten randomly selected stub-to-stub links added or
// deleted (equal probability) every 0.5 seconds in a 200-node network.
func Fig09(p Params) (*Result, error) {
	return churnExperiment(p, "fig09",
		"Average bandwidth (MBps) for MINCOST under churn", apps.MinCost())
}

// Fig10 reproduces Figure 10: the same churn workload for PATHVECTOR.
func Fig10(p Params) (*Result, error) {
	return churnExperiment(p, "fig10",
		"Average bandwidth (MBps) for PATHVECTOR under churn", apps.PathVector())
}

func churnExperiment(p Params, id, title string, prog *ndlog.Program) (*Result, error) {
	n := p.scaleInt(200)
	duration := simnet.Time(float64(2500*simnet.Millisecond) * p.Scale)
	if duration < simnet.Second {
		duration = simnet.Second
	}
	churnPeriod := 500 * simnet.Millisecond
	linksPerBatch := 10
	bucket := int64(250 * simnet.Millisecond)

	res := &Result{
		ID:     id,
		Title:  title,
		Note:   fmt.Sprintf("±%d stub-stub links every %.1fs on a %d-node network", linksPerBatch, churnPeriod.Seconds(), n),
		Header: []string{"Time (s)"},
	}
	series := map[engine.ProvMode][]float64{}
	var times []float64
	for _, mode := range modes {
		res.Header = append(res.Header, modeLabel(mode))
		topo := transitStub(n, p.Seed)
		c, err := runToFixpoint(topo, prog, mode, bucket)
		if err != nil {
			return nil, fmt.Errorf("%s mode=%s: %w", id, mode, err)
		}
		c.Net.ResetAccounting()
		c.Net.Recorder.Reset()
		start := c.Sim.Now()
		// The same seed across modes: every mode must see the identical
		// churn sequence for the comparison to be meaningful.
		rng := rand.New(rand.NewSource(p.Seed + 1000))
		ch := newChurner(topo, rng)
		for at := start; at < start+duration; at += churnPeriod {
			at := at
			c.Sim.At(at, func() { ch.batch(c, linksPerBatch) })
		}
		if err := c.RunUntil(start + duration); err != nil {
			return nil, fmt.Errorf("%s mode=%s: %w", id, mode, err)
		}
		pts := relSeries(c, start, duration)
		var col []float64
		times = times[:0]
		for _, pt := range pts {
			times = append(times, pt.TimeSec)
			col = append(col, pt.MBps)
		}
		series[mode] = col
	}
	for i, ts := range times {
		row := []string{f2(ts)}
		for _, mode := range modes {
			row = append(row, f3(series[mode][i]))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// churner tracks the live set of stub-stub links, plus removed ones
// available for re-addition, mirroring §7.2's add/delete model.
type churner struct {
	rng     *rand.Rand
	present []topology.Link // currently installed stub-stub links
	absent  []topology.Link // candidates for addition
	stubs   []types.NodeID
}

func newChurner(topo *topology.Topology, rng *rand.Rand) *churner {
	ch := &churner{rng: rng}
	stubSet := map[types.NodeID]bool{}
	for _, i := range topo.StubStubLinks {
		l := topo.Links[i]
		ch.present = append(ch.present, l)
		stubSet[l.U] = true
		stubSet[l.V] = true
	}
	for n := range stubSet {
		ch.stubs = append(ch.stubs, n)
	}
	// Map iteration order is random; the stub list feeds seeded link
	// synthesis, so it must be in a canonical order for a fixed seed to
	// yield a fixed churn sequence.
	sort.Slice(ch.stubs, func(i, j int) bool { return ch.stubs[i] < ch.stubs[j] })
	return ch
}

// batch applies k random link operations, each an add or a delete with
// equal probability.
func (ch *churner) batch(c interface {
	AddLink(topology.Link)
	RemoveLink(topology.Link)
}, k int) {
	for i := 0; i < k; i++ {
		if ch.rng.Intn(2) == 0 && len(ch.present) > 1 {
			// Delete a random present stub-stub link.
			j := ch.rng.Intn(len(ch.present))
			l := ch.present[j]
			ch.present = append(ch.present[:j], ch.present[j+1:]...)
			ch.absent = append(ch.absent, l)
			c.RemoveLink(l)
		} else {
			// Add: prefer re-adding a previously removed link; otherwise
			// synthesize a fresh stub-stub link.
			var l topology.Link
			if len(ch.absent) > 0 {
				j := ch.rng.Intn(len(ch.absent))
				l = ch.absent[j]
				ch.absent = append(ch.absent[:j], ch.absent[j+1:]...)
			} else if len(ch.stubs) >= 2 {
				u := ch.stubs[ch.rng.Intn(len(ch.stubs))]
				v := ch.stubs[ch.rng.Intn(len(ch.stubs))]
				if u == v {
					continue
				}
				l = topology.Link{U: u, V: v, Class: topology.ClassStub, Cost: 1}
			} else {
				continue
			}
			ch.present = append(ch.present, l)
			c.AddLink(l)
		}
	}
}
