package deploy

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/types"
)

// fastRetransmit keeps chaos tests quick: loopback RTT is microseconds, so
// waiting the default 50 ms before the first retransmission only slows the
// test down.
var fastRetransmit = transport.Config{InitialRTO: int64(5 * time.Millisecond), MaxRTO: int64(80 * time.Millisecond)}

// TestWaitFixpointTimeoutError pins the typed loss backstop: an unretired
// work item must surface as *FixpointTimeoutError (not a silent give-up),
// both for an explicit budget and for the Config.FixpointTimeout default.
func TestWaitFixpointTimeoutError(t *testing.T) {
	cl, err := NewCluster(Config{
		Topo: topology.Figure3(), Prog: apps.MinCost(), Mode: engine.ProvNone,
		FixpointTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.Start()
	cl.sent.Add(1) // a work item that will never retire: simulated loss
	_, err = cl.WaitFixpoint(50 * time.Millisecond)
	var te *FixpointTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("WaitFixpoint = %v, want *FixpointTimeoutError", err)
	}
	if te.Sent != te.Processed+1 {
		t.Errorf("timeout error counters = %d sent / %d processed, want one outstanding", te.Sent, te.Processed)
	}
	if _, err := cl.WaitFixpoint(0); !errors.As(err, &te) {
		t.Errorf("WaitFixpoint(0) with Config.FixpointTimeout = %v, want *FixpointTimeoutError", err)
	}
}

// TestDeployChaosLossConvergesToSimulation injects seeded datagram loss and
// duplication under the reliable transport and checks the UDP cluster still
// reaches the exact simulated fixpoint — the deployment half of the chaos
// equivalence fence.
func TestDeployChaosLossConvergesToSimulation(t *testing.T) {
	topo := topology.Ring(6, rand.New(rand.NewSource(11)))
	cl, err := NewCluster(Config{
		Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference,
		Reliable: true, Loss: 0.1, Dup: 0.05, FaultSeed: 7,
		Transport: fastRetransmit,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.Start()
	cl.InsertLinks()
	if _, err := cl.WaitFixpoint(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := cl.Err(); err != nil {
		t.Fatal(err)
	}
	deployed := map[string]bool{}
	for _, tu := range cl.Snapshot("bestPathCost") {
		deployed[tu.String()] = true
	}
	simTuples := simulatedBestPaths(t, topo)
	if len(deployed) != len(simTuples) {
		t.Fatalf("chaos deployment has %d bestPathCost tuples, simulation %d", len(deployed), len(simTuples))
	}
	for k := range simTuples {
		if !deployed[k] {
			t.Errorf("simulation tuple %s missing from chaos deployment", k)
		}
	}
	if cl.Dropped.Load() == 0 {
		t.Error("fault injection dropped nothing")
	}
	if st := cl.TransportStats(); st.Retransmits == 0 {
		t.Errorf("transport recovered nothing (stats %+v)", st)
	}
}

// TestDeployChaosKillRestart fail-pauses a node mid-churn: base-tuple
// retractions are injected while the node is down (all its traffic lost in
// both directions), the node restarts, retransmission timers resume every
// silenced conversation, and the cluster must reconverge to the fixpoint a
// fault-free cluster reaches from the same churn.
func TestDeployChaosKillRestart(t *testing.T) {
	topo := topology.Ring(6, rand.New(rand.NewSource(11)))
	// The churned link is incident to the killed node, so retraction deltas
	// must cross the dead window in both directions.
	var churn topology.Link
	found := false
	for _, l := range topo.Links {
		if l.U == 2 || l.V == 2 {
			churn, found = l, true
			break
		}
	}
	if !found {
		t.Fatal("no link incident to node 2")
	}

	run := func(kill bool) map[string]bool {
		cl, err := NewCluster(Config{
			Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference,
			Reliable: true, Transport: fastRetransmit,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Stop()
		cl.Start()
		cl.InsertLinks()
		if _, err := cl.WaitFixpoint(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		if kill {
			cl.Kill(2)
		}
		u, v, cost := churn.U, churn.V, churn.Cost
		cl.Nodes[u].Do(func() {
			cl.Nodes[u].Engine.DeleteBase(types.NewTuple("link", types.Node(u), types.Node(v), types.Int(cost)))
		})
		cl.Nodes[v].Do(func() {
			cl.Nodes[v].Engine.DeleteBase(types.NewTuple("link", types.Node(v), types.Node(u), types.Int(cost)))
		})
		if kill {
			// Wait until the dead window has actually eaten traffic before
			// healing, so the retransmit path is exercised for real.
			deadline := time.Now().Add(10 * time.Second)
			for cl.Dropped.Load() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if cl.Dropped.Load() == 0 {
				t.Fatal("kill window silenced no datagrams")
			}
			cl.Restart(2)
		}
		if _, err := cl.WaitFixpoint(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := cl.Err(); err != nil {
			t.Fatal(err)
		}
		if kill {
			if st := cl.TransportStats(); st.Retransmits == 0 {
				t.Errorf("no retransmissions after restart (stats %+v)", st)
			}
		}
		out := map[string]bool{}
		for _, pred := range []string{"link", "pathCost", "bestPathCost"} {
			for _, tu := range cl.Snapshot(pred) {
				out[pred+":"+tu.String()] = true
			}
		}
		return out
	}

	want := run(false)
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("crash/restart run has %d tuples, fault-free churn %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("tuple %s missing after crash/restart reconvergence", k)
		}
	}
}
