package deploy

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/provquery"
	"repro/internal/topology"
	"repro/internal/types"
)

// TestDeployedProvenanceQuery runs the distributed #DERIVATIONS query over
// real UDP sockets: MINCOST converges on the Fig 3 topology, then node d
// asks for the provenance of bestPathCost(@a,c,5) — expecting the paper's
// two alternative derivations.
func TestDeployedProvenanceQuery(t *testing.T) {
	cl, err := NewCluster(Config{
		Topo: topology.Figure3(),
		Prog: apps.MinCost(),
		Mode: engine.ProvReference,
		UDF:  provquery.Derivations{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.Start()
	cl.InsertLinks()
	if _, err := cl.WaitFixpoint(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := cl.Err(); err != nil {
		t.Fatal(err)
	}

	target := apps.BestPathCostTuple(0, 2, 5) // bestPathCost(@a,c,5)
	done := make(chan int64, 1)
	issuer := cl.Nodes[3]
	issuer.Do(func() {
		issuer.Query.Query(target.VID(), types.NodeID(0), func(payload []byte) {
			done <- provquery.DecodeCount(payload)
		})
	})
	select {
	case got := <-done:
		if got != 2 {
			t.Fatalf("deployed query returned %d derivations, want 2", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deployed query did not complete")
	}

	// A second query from another node for a deeper tuple also completes.
	target2 := apps.BestPathCostTuple(3, 0, 8) // bestPathCost(@d,a,8)
	done2 := make(chan int64, 1)
	issuer2 := cl.Nodes[1]
	issuer2.Do(func() {
		issuer2.Query.Query(target2.VID(), types.NodeID(3), func(payload []byte) {
			done2 <- provquery.DecodeCount(payload)
		})
	})
	select {
	case got := <-done2:
		if got < 1 {
			t.Fatalf("deployed query returned %d derivations, want >= 1", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second deployed query did not complete")
	}
}
