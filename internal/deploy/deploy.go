// Package deploy runs ExSPAN nodes over real UDP sockets on the loopback
// interface — the "deployment mode" of the paper's testbed experiments
// (§7.4, Figs 16-17). The engine and query-processor code is identical to
// the simulation; only the transport differs: messages are serialized into
// UDP datagrams, and time is wall-clock time.
package deploy

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/provquery"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/types"
)

// Datagram type tags.
const (
	tagEngine byte = 0
	tagQuery  byte = 1
)

// ipUDPOverhead is the per-datagram header cost (IPv4 + UDP) added to byte
// accounting so deployed numbers are comparable with simulated ones.
const ipUDPOverhead = 28

// Config describes a deployed cluster.
type Config struct {
	Topo    *topology.Topology
	Prog    *ndlog.Program
	Mode    engine.ProvMode
	Central types.NodeID
	UDF     provquery.UDF
	CacheOn bool
}

// Cluster is a set of ExSPAN node processes communicating over UDP.
type Cluster struct {
	Cfg   Config
	Prog  *engine.Program
	Nodes []*NodeProc
	addrs []*net.UDPAddr
	start time.Time

	sent      atomic.Int64 // work items issued (datagrams + local commands)
	processed atomic.Int64 // work items fully handled
}

// NodeProc is one deployed node: an engine + query processor served by a
// single worker goroutine, with a UDP socket.
type NodeProc struct {
	ID     types.NodeID
	Engine *engine.Node
	Query  *provquery.Processor

	cl     *Cluster
	conn   *net.UDPConn
	inbox  chan work
	done   chan struct{}
	closed sync.Once

	// Message free lists. All engine and query activity of a node runs on
	// its single worker goroutine, so the unsynchronized pools are safe:
	// outgoing messages are released right after serialization, incoming
	// ones after their handler returns.
	engPool *engine.MessagePool
	qryPool *provquery.MsgPool

	SentBytes atomic.Int64
	SentMsgs  atomic.Int64
	Recorder  *stats.Bandwidth // written only by this node's worker
	recMu     sync.Mutex
}

type work struct {
	from    types.NodeID
	engMsg  *engine.Message
	qryMsg  *provquery.Msg
	command func()
}

type udpTransport struct{ np *NodeProc }

func (t udpTransport) Send(from, to types.NodeID, m *engine.Message) {
	t.np.sendDatagram(to, tagEngine, m.Encode(nil))
	t.np.engPool.Put(m)
}

// NewCluster binds sockets and builds node processes; call Start to begin
// serving and InsertLinks to inject the topology's base tuples.
func NewCluster(cfg Config) (*Cluster, error) {
	prog, err := engine.Compile(cfg.Prog)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{Cfg: cfg, Prog: prog, start: time.Now()}
	alloc := algebra.NewVarAlloc()
	udf := cfg.UDF
	if udf == nil {
		udf = provquery.Polynomial{}
	}
	for i := 0; i < cfg.Topo.N; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			cl.Stop()
			return nil, fmt.Errorf("deploy: listen: %w", err)
		}
		_ = conn.SetReadBuffer(4 << 20)
		_ = conn.SetWriteBuffer(4 << 20)
		np := &NodeProc{
			ID:       types.NodeID(i),
			cl:       cl,
			conn:     conn,
			inbox:    make(chan work, 4096),
			done:     make(chan struct{}),
			Recorder: stats.NewBandwidth(int64(100 * time.Millisecond)),
			engPool:  engine.NewMessagePool(),
			qryPool:  provquery.NewMsgPool(),
		}
		en := engine.NewNode(np.ID, prog, cfg.Mode, udpTransport{np}, alloc)
		en.Central = cfg.Central
		en.Msgs = np.engPool
		qp := provquery.NewProcessor(np.ID, en.Store, udf, func(to types.NodeID, m *provquery.Msg) {
			np.sendDatagram(to, tagQuery, m.Encode(nil))
			np.qryPool.Put(m)
		})
		qp.CacheOn = cfg.CacheOn
		qp.Msgs = np.qryPool
		np.Engine = en
		np.Query = qp
		cl.Nodes = append(cl.Nodes, np)
		cl.addrs = append(cl.addrs, conn.LocalAddr().(*net.UDPAddr))
	}
	return cl, nil
}

// Start launches the receive and worker goroutines of every node.
func (c *Cluster) Start() {
	for _, np := range c.Nodes {
		go np.recvLoop()
		go np.workLoop()
	}
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	for _, np := range c.Nodes {
		if np == nil {
			continue
		}
		np.closed.Do(func() {
			close(np.done)
			_ = np.conn.Close()
		})
	}
}

// InsertLinks injects the topology's symmetric link tuples at their owning
// nodes.
func (c *Cluster) InsertLinks() {
	for _, l := range c.Cfg.Topo.Links {
		u, v, cost := l.U, l.V, l.Cost
		c.Nodes[u].Do(func() {
			c.Nodes[u].Engine.InsertBase(types.NewTuple("link", types.Node(u), types.Node(v), types.Int(cost)))
		})
		c.Nodes[v].Do(func() {
			c.Nodes[v].Engine.InsertBase(types.NewTuple("link", types.Node(v), types.Node(u), types.Int(cost)))
		})
	}
}

// Do runs fn on the node's worker goroutine (all engine state is confined
// to it).
func (np *NodeProc) Do(fn func()) {
	np.cl.sent.Add(1)
	np.inbox <- work{command: fn}
}

func (np *NodeProc) sendDatagram(to types.NodeID, tag byte, payload []byte) {
	buf := make([]byte, 0, len(payload)+5)
	buf = append(buf, tag)
	var idb [4]byte
	idb[0] = byte(uint32(np.ID) >> 24)
	idb[1] = byte(uint32(np.ID) >> 16)
	idb[2] = byte(uint32(np.ID) >> 8)
	idb[3] = byte(uint32(np.ID))
	buf = append(buf, idb[:]...)
	buf = append(buf, payload...)

	total := int64(len(buf) + ipUDPOverhead)
	np.SentBytes.Add(total)
	np.SentMsgs.Add(1)
	np.recMu.Lock()
	np.Recorder.Record(int64(time.Since(np.cl.start)), total)
	np.recMu.Unlock()

	np.cl.sent.Add(1)
	if _, err := np.conn.WriteToUDP(buf, np.cl.addrs[to]); err != nil {
		// A send that never reaches the peer would stall quiescence;
		// account it as processed.
		np.cl.processed.Add(1)
	}
}

func (np *NodeProc) recvLoop() {
	buf := make([]byte, 1<<16)
	for {
		n, _, err := np.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < 5 {
			np.cl.processed.Add(1)
			continue
		}
		tag := buf[0]
		from := types.NodeID(int32(uint32(buf[1])<<24 | uint32(buf[2])<<16 | uint32(buf[3])<<8 | uint32(buf[4])))
		payload := make([]byte, n-5)
		copy(payload, buf[5:n])
		var w work
		w.from = from
		switch tag {
		case tagEngine:
			m, err := engine.DecodeMessage(payload)
			if err != nil {
				np.cl.processed.Add(1)
				continue
			}
			w.engMsg = m
		case tagQuery:
			m, err := provquery.DecodeMsg(payload)
			if err != nil {
				np.cl.processed.Add(1)
				continue
			}
			w.qryMsg = m
		default:
			np.cl.processed.Add(1)
			continue
		}
		select {
		case np.inbox <- w:
		case <-np.done:
			return
		}
	}
}

func (np *NodeProc) workLoop() {
	for {
		select {
		case w := <-np.inbox:
			switch {
			case w.command != nil:
				w.command()
			case w.engMsg != nil:
				np.Engine.HandleMessage(w.from, w.engMsg)
				np.engPool.Put(w.engMsg)
			case w.qryMsg != nil:
				np.Query.Handle(w.from, w.qryMsg)
				np.qryPool.Put(w.qryMsg)
			}
			np.cl.processed.Add(1)
		case <-np.done:
			return
		}
	}
}

// WaitFixpoint blocks until the cluster is quiescent (every issued work
// item processed, stable across several polls) or the timeout elapses; it
// returns the elapsed wall-clock time since cluster start and whether a
// fixpoint was reached.
func (c *Cluster) WaitFixpoint(timeout time.Duration) (time.Duration, bool) {
	deadline := time.Now().Add(timeout)
	stable := 0
	var last int64 = -1
	for time.Now().Before(deadline) {
		s, p := c.sent.Load(), c.processed.Load()
		if s == p && s == last {
			stable++
			if stable >= 3 {
				return time.Since(c.start), true
			}
		} else {
			stable = 0
		}
		last = s
		time.Sleep(5 * time.Millisecond)
	}
	return time.Since(c.start), false
}

// Err reports the first engine error across nodes.
func (c *Cluster) Err() error {
	for _, np := range c.Nodes {
		if err := np.Engine.Err; err != nil {
			return err
		}
	}
	return nil
}

// TotalSentBytes sums bytes sent by all nodes.
func (c *Cluster) TotalSentBytes() int64 {
	var t int64
	for _, np := range c.Nodes {
		t += np.SentBytes.Load()
	}
	return t
}

// AvgSentKB reports the per-node average bytes sent, in kilobytes.
func (c *Cluster) AvgSentKB() float64 {
	return float64(c.TotalSentBytes()) / float64(len(c.Nodes)) / 1e3
}

// BandwidthSeries merges the per-node recorders into one average-per-node
// MBps series covering [0, until).
func (c *Cluster) BandwidthSeries(until time.Duration) []stats.Point {
	merged := stats.NewBandwidth(int64(100 * time.Millisecond))
	for _, np := range c.Nodes {
		np.recMu.Lock()
		merged.Merge(np.Recorder)
		np.recMu.Unlock()
	}
	return merged.Series(int64(until), len(c.Nodes))
}

// Snapshot returns every visible tuple of a predicate across nodes (worker
// goroutines are quiesced by running the read on each worker).
func (c *Cluster) Snapshot(pred string) []types.Tuple {
	var mu sync.Mutex
	var out []types.Tuple
	var wg sync.WaitGroup
	for _, np := range c.Nodes {
		np := np
		wg.Add(1)
		np.Do(func() {
			defer wg.Done()
			if rel := np.Engine.Table(pred); rel != nil {
				mu.Lock()
				out = append(out, rel.Tuples()...)
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	return out
}
