// Package deploy runs ExSPAN nodes over real UDP sockets on the loopback
// interface — the "deployment mode" of the paper's testbed experiments
// (§7.4, Figs 16-17). The engine and query-processor code is identical to
// the simulation; only the transport differs: messages are serialized into
// UDP datagrams, and time is wall-clock time.
package deploy

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/provquery"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/types"
)

// Datagram type tags. tagReliable wraps either of the other two in a
// reliable frame: tag(1) + from(4) + frame header (transport.HeaderBytes) +
// [inner tag(1) + payload] — pure acks carry no inner part. The layout is
// normative in docs/wire-format.md "Reliable frame header".
const (
	tagEngine   byte = 0
	tagQuery    byte = 1
	tagReliable byte = 2
)

// ipUDPOverhead is the per-datagram header cost (IPv4 + UDP) added to byte
// accounting so deployed numbers are comparable with simulated ones.
const ipUDPOverhead = 28

// Config describes a deployed cluster.
type Config struct {
	Topo    *topology.Topology
	Prog    *ndlog.Program
	Mode    engine.ProvMode
	Central types.NodeID
	UDF     provquery.UDF
	CacheOn bool

	// Shards is the number of engine worker shards per node process (0 or
	// 1 = classic serial evaluation; engine.AutoShards sizes the count for
	// the host via engine.EffectiveShards). Each UDP datagram batch is
	// then evaluated by the parallel round runtime; fixpoint results match
	// the serial engine exactly.
	Shards int

	// Base is extra per-node EDB seeded by InsertLinks after (or, with
	// NoLinkTuples, instead of) the topology's link tuples — the workload
	// suite's identifier/liveness/policy atoms.
	Base map[types.NodeID][]types.Tuple

	// NoLinkTuples suppresses the automatic link tuples for programs whose
	// EDB does not include a link predicate (CHORD).
	NoLinkTuples bool

	// Reliable routes all inter-node traffic through ack/retransmit
	// endpoints (package transport): exactly-once in-order delivery over
	// the lossy UDP substrate, at the cost of one frame header per
	// datagram plus ack traffic. Required for fault injection and for
	// Kill/Restart — a lost or duplicated delta permanently corrupts the
	// count-based provenance state.
	Reliable bool

	// Loss and Dup inject per-datagram drop/duplication probabilities at
	// the send path (self-traffic is exempt: loopback to the own socket is
	// a local event, as in the simulator). Requires Reliable.
	Loss, Dup float64

	// FaultSeed seeds the injection RNG, making the drop/dup decision
	// sequence reproducible (wall-clock interleaving still varies).
	FaultSeed int64

	// Transport tunes the reliable endpoints (zero value = package
	// transport defaults).
	Transport transport.Config

	// FixpointTimeout is the default loss backstop used by WaitFixpoint
	// when its argument is <= 0 (and itself defaults to
	// DefaultFixpointTimeout when zero).
	FixpointTimeout time.Duration
}

// DefaultFixpointTimeout backstops WaitFixpoint against genuine datagram
// loss when neither the call site nor Config picks a budget.
const DefaultFixpointTimeout = 120 * time.Second

// FixpointTimeoutError reports a WaitFixpoint that gave up: work items were
// still outstanding when the loss backstop elapsed.
type FixpointTimeoutError struct {
	Waited          time.Duration
	Sent, Processed int64
}

func (e *FixpointTimeoutError) Error() string {
	return fmt.Sprintf("deploy: no fixpoint after %v (%d of %d work items retired)",
		e.Waited, e.Processed, e.Sent)
}

// Cluster is a set of ExSPAN node processes communicating over UDP.
type Cluster struct {
	Cfg   Config
	Prog  *engine.Program
	Nodes []*NodeProc
	addrs []*net.UDPAddr
	start time.Time

	sent      atomic.Int64 // work items issued (datagrams + local commands)
	processed atomic.Int64 // work items fully handled

	// quiet receives a (coalesced) signal whenever the processed counter
	// catches up with sent — the deployment's analogue of the simulator's
	// empty event queue. WaitFixpoint blocks on it instead of sleep-polling,
	// so convergence detection is driven by work accounting, not timers.
	quiet chan struct{}

	// Dropped counts every datagram discarded instead of delivered:
	// injected faults, traffic to/from killed nodes, and malformed or
	// truncated receives (the socket-overflow analogue of the simulator's
	// Network.DroppedMsgs).
	Dropped atomic.Int64

	faultMu  sync.Mutex
	faultRng *rand.Rand
}

// NodeProc is one deployed node: an engine + query processor served by a
// single worker goroutine, with a UDP socket.
type NodeProc struct {
	ID     types.NodeID
	Engine *engine.Node
	Query  *provquery.Processor

	cl     *Cluster
	conn   *net.UDPConn
	inbox  chan work
	done   chan struct{}
	closed sync.Once

	// Message free lists. All engine and query activity of a node runs on
	// its single worker goroutine, so the unsynchronized pools are safe:
	// outgoing messages are released right after serialization, incoming
	// ones after their handler returns. (This holds in reliable mode too:
	// the endpoint's send queue stores serialized bytes, never the pooled
	// struct.)
	engPool *engine.MessagePool
	qryPool *provquery.MsgPool

	// ep is the reliable-transport endpoint (Config.Reliable). Like the
	// engine it is confined to the worker goroutine: frames and timer
	// callbacks are dispatched through the inbox.
	ep *transport.Endpoint

	// down marks a fail-paused node (Kill/Restart): all its network
	// traffic is discarded in both directions while engine, endpoint and
	// socket state survive. Self-datagrams are exempt — they are local
	// events, as in the simulator's crash windows.
	down atomic.Bool

	deadMu  sync.Mutex
	deadErr error

	SentBytes atomic.Int64
	SentMsgs  atomic.Int64
	Recorder  *stats.Bandwidth // written only by this node's worker
	recMu     sync.Mutex
}

type work struct {
	from    types.NodeID
	engMsg  *engine.Message
	qryMsg  *provquery.Msg
	frame   *transport.Frame
	command func()
}

// relPayload is what a reliable endpoint's send queue holds: the inner tag
// plus the already-serialized message bytes, ready for retransmission long
// after the originating struct went back to its pool.
type relPayload struct {
	tag  byte
	data []byte
}

type udpTransport struct{ np *NodeProc }

func (t udpTransport) Send(from, to types.NodeID, m *engine.Message) {
	if t.np.ep != nil && to != t.np.ID {
		t.np.sendReliable(to, tagEngine, m.Encode(nil))
	} else {
		t.np.sendDatagram(to, tagEngine, m.Encode(nil))
	}
	t.np.engPool.Put(m)
}

// NewCluster binds sockets and builds node processes; call Start to begin
// serving and InsertLinks to inject the topology's base tuples.
func NewCluster(cfg Config) (*Cluster, error) {
	prog, err := engine.Compile(cfg.Prog)
	if err != nil {
		return nil, err
	}
	if (cfg.Loss > 0 || cfg.Dup > 0) && !cfg.Reliable {
		return nil, fmt.Errorf("deploy: fault injection requires Config.Reliable — a lost or duplicated delta corrupts provenance counts")
	}
	cl := &Cluster{Cfg: cfg, Prog: prog, start: time.Now(), quiet: make(chan struct{}, 1)}
	if cfg.Loss > 0 || cfg.Dup > 0 {
		cl.faultRng = rand.New(rand.NewSource(cfg.FaultSeed))
	}
	alloc := algebra.NewVarAlloc()
	udf := cfg.UDF
	if udf == nil {
		udf = provquery.Polynomial{}
	}
	for i := 0; i < cfg.Topo.N; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			cl.Stop()
			return nil, fmt.Errorf("deploy: listen: %w", err)
		}
		_ = conn.SetReadBuffer(4 << 20)
		_ = conn.SetWriteBuffer(4 << 20)
		np := &NodeProc{
			ID:       types.NodeID(i),
			cl:       cl,
			conn:     conn,
			inbox:    make(chan work, 4096),
			done:     make(chan struct{}),
			Recorder: stats.NewBandwidth(int64(100 * time.Millisecond)),
			engPool:  engine.NewMessagePool(),
			qryPool:  provquery.NewMsgPool(),
		}
		if cfg.Reliable {
			np.ep = transport.New(np.ID, cfg.Transport, transport.Hooks{
				Send: func(to types.NodeID, f *transport.Frame) {
					np.writeDatagram(to, np.frameReliable(f))
				},
				Deliver: func(from types.NodeID, payload any, size int) {
					rp := payload.(relPayload)
					switch rp.tag {
					case tagEngine:
						if m, err := engine.DecodeMessage(rp.data); err == nil {
							np.Engine.HandleMessage(from, m)
							np.engPool.Put(m)
							return
						}
					case tagQuery:
						if m, err := provquery.DecodeMsg(rp.data); err == nil {
							np.Query.Handle(from, m)
							np.qryPool.Put(m)
							return
						}
					}
					cl.Dropped.Add(1)
				},
				Schedule: func(delayNs int64, fn func()) {
					time.AfterFunc(time.Duration(delayNs), func() { np.tryDo(fn) })
				},
				// Payload-level work accounting: the item issued at
				// sendReliable is retired when the peer acks it (or the
				// peer is declared dead) — a dropped datagram awaiting
				// retransmission keeps the cluster non-quiescent.
				Release: func(any) { cl.workDone() },
				PeerDead: func(err error) {
					np.deadMu.Lock()
					if np.deadErr == nil {
						np.deadErr = err
					}
					np.deadMu.Unlock()
				},
			})
		}
		en := engine.NewNodeSharded(np.ID, prog, cfg.Mode, udpTransport{np}, alloc, cfg.Shards)
		en.Central = cfg.Central
		if en.NumShards() > 1 {
			// Sharded fire phases never draw from the unsynchronized pool,
			// so keeping it wired would only accumulate every message ever
			// Put back by the transport. A nil pool degrades Get/Put to
			// plain allocation / no-op (types.Pool contract).
			np.engPool = nil
		}
		en.Msgs = np.engPool
		qp := provquery.NewProcessor(np.ID, en.Store, udf, func(to types.NodeID, m *provquery.Msg) {
			if np.ep != nil && to != np.ID {
				np.sendReliable(to, tagQuery, m.Encode(nil))
			} else {
				np.sendDatagram(to, tagQuery, m.Encode(nil))
			}
			np.qryPool.Put(m)
		})
		qp.CacheOn = cfg.CacheOn
		qp.Msgs = np.qryPool
		np.Engine = en
		np.Query = qp
		cl.Nodes = append(cl.Nodes, np)
		cl.addrs = append(cl.addrs, conn.LocalAddr().(*net.UDPAddr))
	}
	return cl, nil
}

// Start launches the receive and worker goroutines of every node.
func (c *Cluster) Start() {
	for _, np := range c.Nodes {
		go np.recvLoop()
		go np.workLoop()
	}
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	for _, np := range c.Nodes {
		if np == nil {
			continue
		}
		np.closed.Do(func() {
			close(np.done)
			_ = np.conn.Close()
		})
	}
}

// insertLinkBatch is how many links InsertLinks injects between quiescence
// waits. Flooding every link at once used to race the whole boot cascade
// against the kernel's UDP buffers; under -race slowdowns the receive loops
// fell behind, datagrams were silently dropped, and the fixpoint stalled —
// the documented flake of TestDeployRingPathVector. Draining between small
// batches bounds the in-flight datagram population instead of relying on
// wall-clock luck.
const insertLinkBatch = 4

// InsertLinks injects the workload's EDB at its owning nodes: the
// topology's symmetric link tuples (unless Config.NoLinkTuples) followed
// by Config.Base in node order, pacing injection by cluster quiescence
// (never by wall-clock sleeps).
func (c *Cluster) InsertLinks() {
	batch := 0
	pace := func() {
		batch++
		if batch%insertLinkBatch == 0 {
			c.waitQuiet(10 * time.Second)
		}
	}
	if !c.Cfg.NoLinkTuples {
		for _, l := range c.Cfg.Topo.Links {
			u, v, cost := l.U, l.V, l.Cost
			c.Nodes[u].Do(func() {
				c.Nodes[u].Engine.InsertBase(types.NewTuple("link", types.Node(u), types.Node(v), types.Int(cost)))
			})
			c.Nodes[v].Do(func() {
				c.Nodes[v].Engine.InsertBase(types.NewTuple("link", types.Node(v), types.Node(u), types.Int(cost)))
			})
			pace()
		}
	}
	for i := 0; i < c.Cfg.Topo.N; i++ {
		for _, tup := range c.Cfg.Base[types.NodeID(i)] {
			np, t := c.Nodes[i], tup
			np.Do(func() { np.Engine.InsertBase(t) })
			pace()
		}
	}
}

// Do runs fn on the node's worker goroutine (all engine state is confined
// to it).
func (np *NodeProc) Do(fn func()) {
	np.cl.sent.Add(1)
	np.inbox <- work{command: fn}
}

// tryDo is Do for callers that must not block forever on a stopped node
// (retransmission timer callbacks firing after Stop): the issued work item
// is retired immediately if the node is gone.
func (np *NodeProc) tryDo(fn func()) {
	np.cl.sent.Add(1)
	select {
	case np.inbox <- work{command: fn}:
	case <-np.done:
		np.cl.workDone()
	}
}

// header prepends tag + sender id to payload.
func (np *NodeProc) header(buf []byte, tag byte) []byte {
	buf = append(buf, tag)
	id := uint32(np.ID)
	return append(buf, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
}

// frameReliable serializes one reliable frame into a fresh datagram buffer.
func (np *NodeProc) frameReliable(f *transport.Frame) []byte {
	buf := make([]byte, 0, 5+transport.HeaderBytes+1+f.Size)
	buf = np.header(buf, tagReliable)
	buf = transport.EncodeHeader(buf, f.Seq, f.Ack)
	if f.Seq != 0 {
		rp := f.Payload.(relPayload)
		buf = append(buf, rp.tag)
		buf = append(buf, rp.data...)
	}
	return buf
}

// sendReliable queues one payload on the node's endpoint. Work accounting
// is payload-level here: the item issued now is retired by the Release
// hook on ack (or peer death), so retransmits and pure acks stay uncounted
// and quiescence means "everything delivered", not "everything written".
func (np *NodeProc) sendReliable(to types.NodeID, tag byte, payload []byte) {
	np.cl.sent.Add(1)
	np.ep.Send(to, relPayload{tag: tag, data: payload}, len(payload)+1)
}

// sendDatagram writes one unreliable, work-counted datagram (the classic
// path; also self-traffic in reliable mode — loopback to the own socket
// never crosses the faulty wire).
func (np *NodeProc) sendDatagram(to types.NodeID, tag byte, payload []byte) {
	buf := np.header(make([]byte, 0, len(payload)+5), tag)
	buf = append(buf, payload...)
	np.cl.sent.Add(1)
	if !np.writeDatagram(to, buf) {
		// A send that never reaches the peer would stall quiescence;
		// account it as processed.
		np.cl.workDone()
	}
}

// writeDatagram charges and writes one framed datagram, applying the
// fail-pause window and injected faults. Reports whether the datagram made
// it onto the wire.
func (np *NodeProc) writeDatagram(to types.NodeID, buf []byte) bool {
	if to != np.ID && np.down.Load() {
		// A killed node emits nothing; uncharged, as the send never happened.
		np.cl.Dropped.Add(1)
		return false
	}
	total := int64(len(buf) + ipUDPOverhead)
	np.SentBytes.Add(total)
	np.SentMsgs.Add(1)
	np.recMu.Lock()
	np.Recorder.Record(int64(time.Since(np.cl.start)), total)
	np.recMu.Unlock()

	if to != np.ID && np.cl.rollFault(np.cl.Cfg.Loss) {
		// Charged, then lost on the wire — as the simulator does it.
		np.cl.Dropped.Add(1)
		return false
	}
	if _, err := np.conn.WriteToUDP(buf, np.cl.addrs[to]); err != nil {
		return false
	}
	if to != np.ID && np.cl.rollFault(np.cl.Cfg.Dup) {
		_, _ = np.conn.WriteToUDP(buf, np.cl.addrs[to])
	}
	return true
}

// rollFault draws one seeded fault decision (sends run on many worker
// goroutines, hence the lock; the decision sequence is reproducible, the
// goroutine interleaving is not).
func (c *Cluster) rollFault(prob float64) bool {
	if prob <= 0 || c.faultRng == nil {
		return false
	}
	c.faultMu.Lock()
	v := c.faultRng.Float64()
	c.faultMu.Unlock()
	return v < prob
}

func (np *NodeProc) recvLoop() {
	buf := make([]byte, 1<<16)
	for {
		n, _, err := np.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < 5 {
			np.cl.Dropped.Add(1)
			np.cl.workDone()
			continue
		}
		tag := buf[0]
		from := types.NodeID(int32(uint32(buf[1])<<24 | uint32(buf[2])<<16 | uint32(buf[3])<<8 | uint32(buf[4])))
		if from != np.ID && np.down.Load() {
			// Fail-pause: a killed node hears nothing. Reliable senders
			// retransmit after Restart; frames were never work-counted.
			np.cl.Dropped.Add(1)
			if tag != tagReliable {
				np.cl.workDone()
			}
			continue
		}
		var w work
		w.from = from
		switch tag {
		case tagEngine:
			payload := make([]byte, n-5)
			copy(payload, buf[5:n])
			m, err := engine.DecodeMessage(payload)
			if err != nil {
				np.cl.Dropped.Add(1)
				np.cl.workDone()
				continue
			}
			w.engMsg = m
		case tagQuery:
			payload := make([]byte, n-5)
			copy(payload, buf[5:n])
			m, err := provquery.DecodeMsg(payload)
			if err != nil {
				np.cl.Dropped.Add(1)
				np.cl.workDone()
				continue
			}
			w.qryMsg = m
		case tagReliable:
			if np.ep == nil {
				np.cl.Dropped.Add(1)
				continue
			}
			seq, ack, err := transport.DecodeHeader(buf[5:n])
			if err != nil {
				np.cl.Dropped.Add(1)
				continue
			}
			f := &transport.Frame{Seq: seq, Ack: ack}
			if seq != 0 {
				inner := buf[5+transport.HeaderBytes : n]
				if len(inner) < 1 {
					np.cl.Dropped.Add(1)
					continue
				}
				data := make([]byte, len(inner)-1)
				copy(data, inner[1:])
				f.Payload = relPayload{tag: inner[0], data: data}
				f.Size = len(inner)
			}
			w.frame = f
		default:
			np.cl.Dropped.Add(1)
			np.cl.workDone()
			continue
		}
		select {
		case np.inbox <- w:
		case <-np.done:
			return
		}
	}
}

func (np *NodeProc) workLoop() {
	for {
		select {
		case w := <-np.inbox:
			switch {
			case w.command != nil:
				w.command()
			case w.frame != nil:
				// Frames carry their own payload-level accounting (issued
				// at sendReliable, retired by the sender's Release hook on
				// ack), so no workDone here.
				np.ep.OnFrame(w.from, w.frame)
				continue
			case w.engMsg != nil:
				np.Engine.HandleMessage(w.from, w.engMsg)
				np.engPool.Put(w.engMsg)
			case w.qryMsg != nil:
				np.Query.Handle(w.from, w.qryMsg)
				np.qryPool.Put(w.qryMsg)
			}
			np.cl.workDone()
		case <-np.done:
			return
		}
	}
}

// Kill fail-pauses a node: from now on all its network traffic is dropped
// in both directions, while its engine, endpoint, socket and worker state
// survive (the durable-state story is ROADMAP item 4 — a restarted process
// with fresh state could not reconcile derivation counts). Requires
// Config.Reliable: without retransmission the silenced deltas would be
// lost for good.
func (c *Cluster) Kill(id types.NodeID) {
	if !c.Cfg.Reliable {
		panic("deploy: Kill requires Config.Reliable (lost deltas corrupt provenance counts)")
	}
	c.Nodes[id].down.Store(true)
}

// Restart ends a node's fail-pause window. Peers' retransmission timers
// (and the node's own) resume every silenced conversation, which stands in
// for base-tuple re-announcement.
func (c *Cluster) Restart(id types.NodeID) {
	c.Nodes[id].down.Store(false)
}

// workDone retires one work item and pokes WaitFixpoint when the cluster
// may have gone quiescent. Reading sent after bumping processed is safe:
// any still-running handler keeps its own item unretired, so equality is
// only observable once every issued item (and its sends) is accounted.
func (c *Cluster) workDone() {
	if c.processed.Add(1) == c.sent.Load() {
		select {
		case c.quiet <- struct{}{}:
		default:
		}
	}
}

// WaitFixpoint blocks until the cluster is quiescent (every issued work
// item fully handled and no node staging retraction re-derivations) or the
// timeout elapses; it returns the elapsed wall-clock time since cluster
// start, and a *FixpointTimeoutError if the budget ran out. A timeout <= 0
// selects Config.FixpointTimeout (itself defaulting to
// DefaultFixpointTimeout). Quiescence is detected from the work accounting
// itself — workers signal when processed catches up with sent — so a
// loaded or race-instrumented run converges exactly as fast as it actually
// processes work, with no sleep-poll granularity in the way. The timeout
// remains as a backstop for genuine, unrecovered datagram loss.
//
// Work-accounting quiescence is the deployment's global quiescence point —
// no deletion datagram can still be in flight — so the retraction
// protocol's staged phase-2 work is released here (on each node's worker
// goroutine, where all engine state is confined) and the wait repeats until
// a quiescent pass releases nothing. Under reliable transport a payload
// only retires on ack (or peer death), so counters-equal also implies no
// endpoint holds unacked data: a dropped delta awaiting retransmission
// keeps the cluster non-quiescent and the staged work unreleased.
func (c *Cluster) WaitFixpoint(timeout time.Duration) (time.Duration, error) {
	if timeout <= 0 {
		timeout = c.Cfg.FixpointTimeout
	}
	if timeout <= 0 {
		timeout = DefaultFixpointTimeout
	}
	deadline := time.Now().Add(timeout)
	for {
		budget := time.Until(deadline)
		if budget <= 0 || !c.waitQuiet(budget) {
			return time.Since(c.start), &FixpointTimeoutError{
				Waited:    timeout,
				Sent:      c.sent.Load(),
				Processed: c.processed.Load(),
			}
		}
		var released atomic.Bool
		var wg sync.WaitGroup
		for _, np := range c.Nodes {
			np := np
			wg.Add(1)
			np.Do(func() {
				defer wg.Done()
				if np.Engine.ReleaseAndFlush() {
					released.Store(true)
				}
			})
		}
		wg.Wait()
		if !released.Load() {
			// Quiescent with nothing staged: let each engine re-evaluate
			// its plan choices (on its own worker, where engine state is
			// confined) before reporting the fixpoint.
			for _, np := range c.Nodes {
				np := np
				wg.Add(1)
				np.Do(func() {
					defer wg.Done()
					np.Engine.Replan()
				})
			}
			wg.Wait()
			return time.Since(c.start), nil
		}
	}
}

// waitQuiet blocks until processed == sent or the budget elapses. The
// fallback ticker re-checks the counters even without a signal, covering
// the benign race where equality is reached just before a waiter arrives.
func (c *Cluster) waitQuiet(budget time.Duration) bool {
	deadline := time.NewTimer(budget)
	defer deadline.Stop()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if s := c.sent.Load(); s == c.processed.Load() && s == c.sent.Load() {
			return true
		}
		select {
		case <-c.quiet:
		case <-tick.C:
		case <-deadline.C:
			s := c.sent.Load()
			return s == c.processed.Load() && s == c.sent.Load()
		}
	}
}

// Err reports the first engine or transport error across nodes.
func (c *Cluster) Err() error {
	for _, np := range c.Nodes {
		if err := np.Engine.Err; err != nil {
			return err
		}
		np.deadMu.Lock()
		err := np.deadErr
		np.deadMu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// TransportStats sums the reliable-endpoint counters across nodes (all
// zeros in unreliable clusters). Each endpoint is read on its own worker
// goroutine, so this quiesces in-flight handling like Snapshot does.
func (c *Cluster) TransportStats() transport.Stats {
	var mu sync.Mutex
	var s transport.Stats
	var wg sync.WaitGroup
	for _, np := range c.Nodes {
		np := np
		if np.ep == nil {
			continue
		}
		wg.Add(1)
		np.Do(func() {
			defer wg.Done()
			st := np.ep.Stats
			mu.Lock()
			s.DataSent += st.DataSent
			s.Retransmits += st.Retransmits
			s.AcksSent += st.AcksSent
			s.Delivered += st.Delivered
			s.DupsDropped += st.DupsDropped
			s.OooBuffered += st.OooBuffered
			s.OooDropped += st.OooDropped
			s.DeadDropped += st.DeadDropped
			mu.Unlock()
		})
	}
	wg.Wait()
	return s
}

// TotalSentBytes sums bytes sent by all nodes.
func (c *Cluster) TotalSentBytes() int64 {
	var t int64
	for _, np := range c.Nodes {
		t += np.SentBytes.Load()
	}
	return t
}

// AvgSentKB reports the per-node average bytes sent, in kilobytes.
func (c *Cluster) AvgSentKB() float64 {
	return float64(c.TotalSentBytes()) / float64(len(c.Nodes)) / 1e3
}

// BandwidthSeries merges the per-node recorders into one average-per-node
// MBps series covering [0, until).
func (c *Cluster) BandwidthSeries(until time.Duration) []stats.Point {
	merged := stats.NewBandwidth(int64(100 * time.Millisecond))
	for _, np := range c.Nodes {
		np.recMu.Lock()
		merged.Merge(np.Recorder)
		np.recMu.Unlock()
	}
	return merged.Series(int64(until), len(c.Nodes))
}

// Snapshot returns every visible tuple of a predicate across nodes (worker
// goroutines are quiesced by running the read on each worker).
func (c *Cluster) Snapshot(pred string) []types.Tuple {
	var mu sync.Mutex
	var out []types.Tuple
	var wg sync.WaitGroup
	for _, np := range c.Nodes {
		np := np
		wg.Add(1)
		np.Do(func() {
			defer wg.Done()
			if ts := np.Engine.Tuples(pred); len(ts) > 0 {
				mu.Lock()
				out = append(out, ts...)
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	return out
}
