// Package deploy runs ExSPAN nodes over real UDP sockets on the loopback
// interface — the "deployment mode" of the paper's testbed experiments
// (§7.4, Figs 16-17). The engine and query-processor code is identical to
// the simulation; only the transport differs: messages are serialized into
// UDP datagrams, and time is wall-clock time.
package deploy

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/provquery"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/types"
)

// Datagram type tags.
const (
	tagEngine byte = 0
	tagQuery  byte = 1
)

// ipUDPOverhead is the per-datagram header cost (IPv4 + UDP) added to byte
// accounting so deployed numbers are comparable with simulated ones.
const ipUDPOverhead = 28

// Config describes a deployed cluster.
type Config struct {
	Topo    *topology.Topology
	Prog    *ndlog.Program
	Mode    engine.ProvMode
	Central types.NodeID
	UDF     provquery.UDF
	CacheOn bool

	// Shards is the number of engine worker shards per node process (0 or
	// 1 = classic serial evaluation). Each UDP datagram batch is then
	// evaluated by the parallel round runtime; fixpoint results match the
	// serial engine exactly.
	Shards int
}

// Cluster is a set of ExSPAN node processes communicating over UDP.
type Cluster struct {
	Cfg   Config
	Prog  *engine.Program
	Nodes []*NodeProc
	addrs []*net.UDPAddr
	start time.Time

	sent      atomic.Int64 // work items issued (datagrams + local commands)
	processed atomic.Int64 // work items fully handled

	// quiet receives a (coalesced) signal whenever the processed counter
	// catches up with sent — the deployment's analogue of the simulator's
	// empty event queue. WaitFixpoint blocks on it instead of sleep-polling,
	// so convergence detection is driven by work accounting, not timers.
	quiet chan struct{}
}

// NodeProc is one deployed node: an engine + query processor served by a
// single worker goroutine, with a UDP socket.
type NodeProc struct {
	ID     types.NodeID
	Engine *engine.Node
	Query  *provquery.Processor

	cl     *Cluster
	conn   *net.UDPConn
	inbox  chan work
	done   chan struct{}
	closed sync.Once

	// Message free lists. All engine and query activity of a node runs on
	// its single worker goroutine, so the unsynchronized pools are safe:
	// outgoing messages are released right after serialization, incoming
	// ones after their handler returns.
	engPool *engine.MessagePool
	qryPool *provquery.MsgPool

	SentBytes atomic.Int64
	SentMsgs  atomic.Int64
	Recorder  *stats.Bandwidth // written only by this node's worker
	recMu     sync.Mutex
}

type work struct {
	from    types.NodeID
	engMsg  *engine.Message
	qryMsg  *provquery.Msg
	command func()
}

type udpTransport struct{ np *NodeProc }

func (t udpTransport) Send(from, to types.NodeID, m *engine.Message) {
	t.np.sendDatagram(to, tagEngine, m.Encode(nil))
	t.np.engPool.Put(m)
}

// NewCluster binds sockets and builds node processes; call Start to begin
// serving and InsertLinks to inject the topology's base tuples.
func NewCluster(cfg Config) (*Cluster, error) {
	prog, err := engine.Compile(cfg.Prog)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{Cfg: cfg, Prog: prog, start: time.Now(), quiet: make(chan struct{}, 1)}
	alloc := algebra.NewVarAlloc()
	udf := cfg.UDF
	if udf == nil {
		udf = provquery.Polynomial{}
	}
	for i := 0; i < cfg.Topo.N; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			cl.Stop()
			return nil, fmt.Errorf("deploy: listen: %w", err)
		}
		_ = conn.SetReadBuffer(4 << 20)
		_ = conn.SetWriteBuffer(4 << 20)
		np := &NodeProc{
			ID:       types.NodeID(i),
			cl:       cl,
			conn:     conn,
			inbox:    make(chan work, 4096),
			done:     make(chan struct{}),
			Recorder: stats.NewBandwidth(int64(100 * time.Millisecond)),
			engPool:  engine.NewMessagePool(),
			qryPool:  provquery.NewMsgPool(),
		}
		en := engine.NewNodeSharded(np.ID, prog, cfg.Mode, udpTransport{np}, alloc, cfg.Shards)
		en.Central = cfg.Central
		if en.NumShards() > 1 {
			// Sharded fire phases never draw from the unsynchronized pool,
			// so keeping it wired would only accumulate every message ever
			// Put back by the transport. A nil pool degrades Get/Put to
			// plain allocation / no-op (types.Pool contract).
			np.engPool = nil
		}
		en.Msgs = np.engPool
		qp := provquery.NewProcessor(np.ID, en.Store, udf, func(to types.NodeID, m *provquery.Msg) {
			np.sendDatagram(to, tagQuery, m.Encode(nil))
			np.qryPool.Put(m)
		})
		qp.CacheOn = cfg.CacheOn
		qp.Msgs = np.qryPool
		np.Engine = en
		np.Query = qp
		cl.Nodes = append(cl.Nodes, np)
		cl.addrs = append(cl.addrs, conn.LocalAddr().(*net.UDPAddr))
	}
	return cl, nil
}

// Start launches the receive and worker goroutines of every node.
func (c *Cluster) Start() {
	for _, np := range c.Nodes {
		go np.recvLoop()
		go np.workLoop()
	}
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	for _, np := range c.Nodes {
		if np == nil {
			continue
		}
		np.closed.Do(func() {
			close(np.done)
			_ = np.conn.Close()
		})
	}
}

// insertLinkBatch is how many links InsertLinks injects between quiescence
// waits. Flooding every link at once used to race the whole boot cascade
// against the kernel's UDP buffers; under -race slowdowns the receive loops
// fell behind, datagrams were silently dropped, and the fixpoint stalled —
// the documented flake of TestDeployRingPathVector. Draining between small
// batches bounds the in-flight datagram population instead of relying on
// wall-clock luck.
const insertLinkBatch = 4

// InsertLinks injects the topology's symmetric link tuples at their owning
// nodes, pacing injection by cluster quiescence (never by wall-clock
// sleeps).
func (c *Cluster) InsertLinks() {
	for i, l := range c.Cfg.Topo.Links {
		u, v, cost := l.U, l.V, l.Cost
		c.Nodes[u].Do(func() {
			c.Nodes[u].Engine.InsertBase(types.NewTuple("link", types.Node(u), types.Node(v), types.Int(cost)))
		})
		c.Nodes[v].Do(func() {
			c.Nodes[v].Engine.InsertBase(types.NewTuple("link", types.Node(v), types.Node(u), types.Int(cost)))
		})
		if i%insertLinkBatch == insertLinkBatch-1 {
			c.waitQuiet(10 * time.Second)
		}
	}
}

// Do runs fn on the node's worker goroutine (all engine state is confined
// to it).
func (np *NodeProc) Do(fn func()) {
	np.cl.sent.Add(1)
	np.inbox <- work{command: fn}
}

func (np *NodeProc) sendDatagram(to types.NodeID, tag byte, payload []byte) {
	buf := make([]byte, 0, len(payload)+5)
	buf = append(buf, tag)
	var idb [4]byte
	idb[0] = byte(uint32(np.ID) >> 24)
	idb[1] = byte(uint32(np.ID) >> 16)
	idb[2] = byte(uint32(np.ID) >> 8)
	idb[3] = byte(uint32(np.ID))
	buf = append(buf, idb[:]...)
	buf = append(buf, payload...)

	total := int64(len(buf) + ipUDPOverhead)
	np.SentBytes.Add(total)
	np.SentMsgs.Add(1)
	np.recMu.Lock()
	np.Recorder.Record(int64(time.Since(np.cl.start)), total)
	np.recMu.Unlock()

	np.cl.sent.Add(1)
	if _, err := np.conn.WriteToUDP(buf, np.cl.addrs[to]); err != nil {
		// A send that never reaches the peer would stall quiescence;
		// account it as processed.
		np.cl.workDone()
	}
}

func (np *NodeProc) recvLoop() {
	buf := make([]byte, 1<<16)
	for {
		n, _, err := np.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < 5 {
			np.cl.workDone()
			continue
		}
		tag := buf[0]
		from := types.NodeID(int32(uint32(buf[1])<<24 | uint32(buf[2])<<16 | uint32(buf[3])<<8 | uint32(buf[4])))
		payload := make([]byte, n-5)
		copy(payload, buf[5:n])
		var w work
		w.from = from
		switch tag {
		case tagEngine:
			m, err := engine.DecodeMessage(payload)
			if err != nil {
				np.cl.workDone()
				continue
			}
			w.engMsg = m
		case tagQuery:
			m, err := provquery.DecodeMsg(payload)
			if err != nil {
				np.cl.workDone()
				continue
			}
			w.qryMsg = m
		default:
			np.cl.workDone()
			continue
		}
		select {
		case np.inbox <- w:
		case <-np.done:
			return
		}
	}
}

func (np *NodeProc) workLoop() {
	for {
		select {
		case w := <-np.inbox:
			switch {
			case w.command != nil:
				w.command()
			case w.engMsg != nil:
				np.Engine.HandleMessage(w.from, w.engMsg)
				np.engPool.Put(w.engMsg)
			case w.qryMsg != nil:
				np.Query.Handle(w.from, w.qryMsg)
				np.qryPool.Put(w.qryMsg)
			}
			np.cl.workDone()
		case <-np.done:
			return
		}
	}
}

// workDone retires one work item and pokes WaitFixpoint when the cluster
// may have gone quiescent. Reading sent after bumping processed is safe:
// any still-running handler keeps its own item unretired, so equality is
// only observable once every issued item (and its sends) is accounted.
func (c *Cluster) workDone() {
	if c.processed.Add(1) == c.sent.Load() {
		select {
		case c.quiet <- struct{}{}:
		default:
		}
	}
}

// WaitFixpoint blocks until the cluster is quiescent (every issued work
// item fully handled and no node staging retraction re-derivations) or the
// timeout elapses; it returns the elapsed wall-clock time since cluster
// start and whether a fixpoint was reached. Quiescence is detected from the
// work accounting itself — workers signal when processed catches up with
// sent — so a loaded or race-instrumented run converges exactly as fast as
// it actually processes work, with no sleep-poll granularity in the way.
// The timeout remains as a backstop for genuine datagram loss.
//
// Work-accounting quiescence is the deployment's global quiescence point —
// no deletion datagram can still be in flight — so the retraction
// protocol's staged phase-2 work is released here (on each node's worker
// goroutine, where all engine state is confined) and the wait repeats until
// a quiescent pass releases nothing.
func (c *Cluster) WaitFixpoint(timeout time.Duration) (time.Duration, bool) {
	deadline := time.Now().Add(timeout)
	for {
		budget := time.Until(deadline)
		if budget <= 0 || !c.waitQuiet(budget) {
			return time.Since(c.start), false
		}
		var released atomic.Bool
		var wg sync.WaitGroup
		for _, np := range c.Nodes {
			np := np
			wg.Add(1)
			np.Do(func() {
				defer wg.Done()
				if np.Engine.ReleaseAndFlush() {
					released.Store(true)
				}
			})
		}
		wg.Wait()
		if !released.Load() {
			return time.Since(c.start), true
		}
	}
}

// waitQuiet blocks until processed == sent or the budget elapses. The
// fallback ticker re-checks the counters even without a signal, covering
// the benign race where equality is reached just before a waiter arrives.
func (c *Cluster) waitQuiet(budget time.Duration) bool {
	deadline := time.NewTimer(budget)
	defer deadline.Stop()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if s := c.sent.Load(); s == c.processed.Load() && s == c.sent.Load() {
			return true
		}
		select {
		case <-c.quiet:
		case <-tick.C:
		case <-deadline.C:
			s := c.sent.Load()
			return s == c.processed.Load() && s == c.sent.Load()
		}
	}
}

// Err reports the first engine error across nodes.
func (c *Cluster) Err() error {
	for _, np := range c.Nodes {
		if err := np.Engine.Err; err != nil {
			return err
		}
	}
	return nil
}

// TotalSentBytes sums bytes sent by all nodes.
func (c *Cluster) TotalSentBytes() int64 {
	var t int64
	for _, np := range c.Nodes {
		t += np.SentBytes.Load()
	}
	return t
}

// AvgSentKB reports the per-node average bytes sent, in kilobytes.
func (c *Cluster) AvgSentKB() float64 {
	return float64(c.TotalSentBytes()) / float64(len(c.Nodes)) / 1e3
}

// BandwidthSeries merges the per-node recorders into one average-per-node
// MBps series covering [0, until).
func (c *Cluster) BandwidthSeries(until time.Duration) []stats.Point {
	merged := stats.NewBandwidth(int64(100 * time.Millisecond))
	for _, np := range c.Nodes {
		np.recMu.Lock()
		merged.Merge(np.Recorder)
		np.recMu.Unlock()
	}
	return merged.Series(int64(until), len(c.Nodes))
}

// Snapshot returns every visible tuple of a predicate across nodes (worker
// goroutines are quiesced by running the read on each worker).
func (c *Cluster) Snapshot(pred string) []types.Tuple {
	var mu sync.Mutex
	var out []types.Tuple
	var wg sync.WaitGroup
	for _, np := range c.Nodes {
		np := np
		wg.Add(1)
		np.Do(func() {
			defer wg.Done()
			if ts := np.Engine.Tuples(pred); len(ts) > 0 {
				mu.Lock()
				out = append(out, ts...)
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	return out
}
