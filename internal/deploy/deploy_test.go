package deploy

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/types"
)

// TestDeployFigure3 runs MINCOST over real UDP sockets on the Fig 3
// topology and checks the same fixpoint as the simulation.
func TestDeployFigure3(t *testing.T) {
	cl, err := NewCluster(Config{
		Topo: topology.Figure3(),
		Prog: apps.MinCost(),
		Mode: engine.ProvReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.Start()
	cl.InsertLinks()
	if _, err := cl.WaitFixpoint(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := cl.Err(); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"bestPathCost(@a,c,5)": true,
		"bestPathCost(@a,d,8)": true,
		"bestPathCost(@b,c,2)": true,
		"bestPathCost(@d,a,8)": true,
	}
	got := map[string]bool{}
	for _, tu := range cl.Snapshot("bestPathCost") {
		got[tu.String()] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing %s (have %d tuples)", k, len(got))
		}
	}
	if cl.TotalSentBytes() == 0 {
		t.Error("no bytes accounted")
	}
}

// TestDeployRingPathVector runs PATHVECTOR on the §7.4 ring overlay with 8
// UDP nodes, in reference and value modes, and checks the reference mode is
// cheaper — the testbed headline of Fig 16.
func TestDeployRingPathVector(t *testing.T) {
	topo := topology.Ring(8, rand.New(rand.NewSource(3)))
	costs := map[engine.ProvMode]float64{}
	for _, mode := range []engine.ProvMode{engine.ProvNone, engine.ProvReference, engine.ProvValue} {
		cl, err := NewCluster(Config{Topo: topo, Prog: apps.PathVector(), Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		cl.Start()
		cl.InsertLinks()
		if _, err := cl.WaitFixpoint(20 * time.Second); err != nil {
			cl.Stop()
			t.Fatalf("mode %s: %v", mode, err)
		}
		if err := cl.Err(); err != nil {
			cl.Stop()
			t.Fatalf("mode %s: %v", mode, err)
		}
		// All-pairs best paths must exist.
		n := len(cl.Snapshot("bestPath"))
		if n < topo.N*(topo.N-1) {
			t.Errorf("mode %s: %d bestPath tuples, want >= %d", mode, n, topo.N*(topo.N-1))
		}
		costs[mode] = cl.AvgSentKB()
		cl.Stop()
	}
	t.Logf("avg per-node KB: none=%.2f ref=%.2f value=%.2f",
		costs[engine.ProvNone], costs[engine.ProvReference], costs[engine.ProvValue])
	if !(costs[engine.ProvNone] < costs[engine.ProvReference] &&
		costs[engine.ProvReference] < costs[engine.ProvValue]) {
		t.Errorf("expected none < reference < value, got %v", costs)
	}
}

// TestDeployMatchesSimulation checks that deployment and simulation reach
// identical bestPathCost fixpoints from the same topology (the paper's
// "identical codebase" property).
func TestDeployMatchesSimulation(t *testing.T) {
	topo := topology.Ring(6, rand.New(rand.NewSource(11)))
	cl, err := NewCluster(Config{Topo: topo, Prog: apps.MinCost(), Mode: engine.ProvReference})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.Start()
	cl.InsertLinks()
	if _, err := cl.WaitFixpoint(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	deployed := map[string]bool{}
	for _, tu := range cl.Snapshot("bestPathCost") {
		deployed[tu.String()] = true
	}

	simTuples := simulatedBestPaths(t, topo)
	if len(deployed) != len(simTuples) {
		t.Fatalf("deployment has %d bestPathCost tuples, simulation %d", len(deployed), len(simTuples))
	}
	for k := range simTuples {
		if !deployed[k] {
			t.Errorf("simulation tuple %s missing from deployment", k)
		}
	}
}

func simulatedBestPaths(t *testing.T, topo *topology.Topology) map[string]bool {
	t.Helper()
	// Local import cycle avoidance: run a tiny inline simulation using the
	// engine directly with a synchronous transport.
	prog, err := engine.Compile(apps.MinCost())
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*engine.Node, topo.N)
	tr := &syncTransport{nodes: &nodes}
	for i := range nodes {
		nodes[i] = engine.NewNode(types.NodeID(i), prog, engine.ProvReference, tr, nil)
	}
	for _, l := range topo.Links {
		nodes[l.U].InsertBase(types.NewTuple("link", types.Node(l.U), types.Node(l.V), types.Int(l.Cost)))
		nodes[l.V].InsertBase(types.NewTuple("link", types.Node(l.V), types.Node(l.U), types.Int(l.Cost)))
	}
	tr.drain()
	// Release retraction-protocol staging (improvement-driven winner
	// evictions over-delete and stage even on insert-only workloads); the
	// deployed cluster gets the same treatment from WaitFixpoint.
	engine.Settle(nodes...)
	out := map[string]bool{}
	for _, n := range nodes {
		if rel := n.Table("bestPathCost"); rel != nil {
			for _, tu := range rel.Tuples() {
				out[tu.String()] = true
			}
		}
	}
	return out
}

// syncTransport queues cross-node messages and delivers them in FIFO order
// on drain — a minimal single-threaded "network" for engine-only tests.
type syncTransport struct {
	nodes *[]*engine.Node
	queue []queued
	busy  bool
}

type queued struct {
	from, to types.NodeID
	m        *engine.Message
}

func (t *syncTransport) Send(from, to types.NodeID, m *engine.Message) {
	t.queue = append(t.queue, queued{from, to, m})
	t.drain()
}

func (t *syncTransport) drain() {
	if t.busy {
		return
	}
	t.busy = true
	defer func() { t.busy = false }()
	for len(t.queue) > 0 {
		q := t.queue[0]
		t.queue = t.queue[1:]
		(*t.nodes)[q.to].HandleMessage(q.from, q.m)
	}
}
