package types

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

// TestValueSizeFence pins the compact representation: Value must stay a
// fixed tagged word of at most 24 bytes (it is currently 16) and must be
// pointer-free, so slices of values cost the garbage collector nothing to
// scan. If this fails, the representation rework regressed — see the
// package comment and ISSUE 3.
func TestValueSizeFence(t *testing.T) {
	if sz := unsafe.Sizeof(Value{}); sz > 24 {
		t.Fatalf("unsafe.Sizeof(Value{}) = %d, want ≤ 24", sz)
	}
	// Compile-time-ish pointer-freedom check: a map with Value keys is only
	// legal because Value is comparable; verify equality semantics too.
	m := map[Value]int{Str("x"): 1, Int(3): 2}
	if m[Str("x")] != 1 || m[Int(3)] != 2 {
		t.Fatal("Value does not behave as a map key")
	}
}

// TestInternCanonicalHandles verifies the central interning invariant:
// equal payloads yield identical handles, so == on Value coincides with
// deep equality.
func TestInternCanonicalHandles(t *testing.T) {
	if Str("hello") != Str("hello") {
		t.Error("equal strings interned to different handles")
	}
	if Str("hello") == Str("world") {
		t.Error("distinct strings share a handle")
	}
	id := HashString("q")
	if IDVal(id) != IDVal(id) {
		t.Error("equal IDs interned to different handles")
	}
	l1 := List(Int(1), Str("a"), List(Node(2)))
	l2 := List(Int(1), Str("a"), List(Node(2)))
	if l1 != l2 {
		t.Error("equal lists interned to different handles")
	}
	if List(Int(1)) == List(Int(2)) {
		t.Error("distinct lists share a handle")
	}
	p1 := Prov(OpaquePayload([]byte{9, 9}))
	p2 := Prov(OpaquePayload([]byte{9, 9}))
	if p1 != p2 {
		t.Error("equal payloads interned to different handles")
	}
}

// TestInternIDHandleRoundTrip covers the IDHandle API the provenance store
// partitions key on.
func TestInternIDHandleRoundTrip(t *testing.T) {
	id := HashString("vid")
	h := InternID(id)
	if h == 0 {
		t.Fatal("InternID returned the zero handle")
	}
	if h.ID() != id {
		t.Fatal("IDHandle did not resolve back to its digest")
	}
	if h2 := InternID(id); h2 != h {
		t.Fatal("re-interning changed the handle")
	}
	if h2, ok := LookupID(id); !ok || h2 != h {
		t.Fatal("LookupID disagrees with InternID")
	}
	var fresh ID
	copy(fresh[:], "never-interned-digest")
	if _, ok := LookupID(fresh); ok {
		t.Fatal("LookupID fabricated a handle for an unseen ID")
	}
	// LookupID must not have interned it as a side effect.
	if _, ok := LookupID(fresh); ok {
		t.Fatal("LookupID interned on miss")
	}
}

// TestInternConcurrency hammers the intern tables from many goroutines with
// overlapping payloads and checks that every goroutine resolves the same
// payload to the same handle and content. Run with -race to exercise the
// lock-free read path.
func TestInternConcurrency(t *testing.T) {
	const goroutines = 16
	const perG = 400
	results := make([][]Value, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]Value, 0, perG*3)
			for i := 0; i < perG; i++ {
				// Payloads overlap heavily across goroutines (i % 50) so
				// most interns race on the same dedup entries.
				s := fmt.Sprintf("conc-shared-%d", i%50)
				out = append(out, Str(s))
				out = append(out, IDVal(HashString(s)))
				out = append(out, List(Int(int64(i%25)), Str(s)))
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if len(results[g]) != len(results[0]) {
			t.Fatalf("goroutine %d produced %d values, want %d", g, len(results[g]), len(results[0]))
		}
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d value %d diverged: %s vs %s",
					g, i, results[g][i], results[0][i])
			}
		}
	}
	// Cross-goroutine content checks: accessors must see fully-written
	// entries.
	for i := 0; i < 50; i++ {
		s := fmt.Sprintf("conc-shared-%d", i)
		if got := Str(s).AsStr(); got != s {
			t.Fatalf("interned string content corrupted: %q != %q", got, s)
		}
	}
}

// TestInternConstructionAllocFree pins the steady-state cost of value
// construction on the firing path: re-creating an already-interned string,
// ID or list value allocates nothing.
func TestInternConstructionAllocFree(t *testing.T) {
	id := HashString("warm")
	elems := []Value{Int(1), Str("warm")}
	_ = Str("warm")
	_ = IDVal(id)
	_ = List(elems...)
	var sink Value
	allocs := testing.AllocsPerRun(200, func() {
		sink = Str("warm")
		sink = IDVal(id)
	})
	if allocs != 0 {
		t.Errorf("re-interning str/id allocated %.2f objects per run, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		sink = List(elems...)
	})
	if allocs != 0 {
		t.Errorf("re-interning a list allocated %.2f objects per run, want 0", allocs)
	}
	_ = sink
}

// TestEncodePreservedBitForBit spells out the wire-format pin with explicit
// expected bytes (docs/wire-format.md): the interning layer must never leak
// into the encoding.
func TestEncodePreservedBitForBit(t *testing.T) {
	cases := []struct {
		v    Value
		want []byte
	}{
		{Nil(), []byte{0}},
		{Bool(true), []byte{1, 1}},
		{Int(5), []byte{2, 0, 0, 0, 0, 0, 0, 0, 5}},
		{Str("ab"), []byte{3, 2, 'a', 'b'}},
		{Node(3), []byte{4, 0, 0, 0, 3}},
		{List(Int(1), Str("x")), []byte{6, 2, 2, 0, 0, 0, 0, 0, 0, 0, 1, 3, 1, 'x'}},
		{Prov(OpaquePayload([]byte{7, 8})), []byte{7, 2, 7, 8}},
	}
	for _, c := range cases {
		got := c.v.Encode(nil)
		if string(got) != string(c.want) {
			t.Errorf("Encode(%s) = %v, want %v", c.v, got, c.want)
		}
		if c.v.WireSize() != len(c.want) {
			t.Errorf("WireSize(%s) = %d, want %d", c.v, c.v.WireSize(), len(c.want))
		}
	}
	id := HashString("z")
	idEnc := IDVal(id).Encode(nil)
	if len(idEnc) != 21 || idEnc[0] != 5 || string(idEnc[1:]) != string(id[:]) {
		t.Errorf("ID encoding changed: %v", idEnc)
	}
}

// TestAppendKeyIdentity checks that the process-local handle key agrees with
// value equality in both directions.
func TestAppendKeyIdentity(t *testing.T) {
	vals := []Value{
		Nil(), Bool(false), Bool(true), Int(0), Int(-1), Int(1 << 40),
		Node(0), Node(7), Str(""), Str("a"), Str("b"),
		IDVal(HashString("a")), IDVal(HashString("b")),
		List(), List(Int(1)), List(Int(1), Int(2)),
	}
	for i, a := range vals {
		for j, b := range vals {
			ka := string(a.AppendKey(nil))
			kb := string(b.AppendKey(nil))
			if (ka == kb) != (i == j) {
				t.Errorf("AppendKey identity broken for %s vs %s", a, b)
			}
		}
	}
}
