package types

// Pool is an explicit LIFO free list of *T values. Transports use it to
// recycle message structs on the steady-state send→deliver path, where a
// fixpoint run ships millions of messages through a single goroutine.
//
// The contract shared by every instantiation:
//   - Put zeroes the struct before listing it, so a pooled value never
//     pins tuples, payload bytes or other references. Slices a receiver
//     retained out of the struct are unaffected — they are dropped, never
//     reused.
//   - Pools are not safe for concurrent use; callers confine one pool per
//     goroutine (the whole simulated cluster, or one deployed node
//     worker).
//   - Both methods tolerate a nil receiver/argument, so optional pools
//     need no call-site guards.
type Pool[T any] struct{ free []*T }

// Get returns a zeroed value, recycling a released one when available.
func (p *Pool[T]) Get() *T {
	if p != nil {
		if n := len(p.free); n > 0 {
			x := p.free[n-1]
			p.free[n-1] = nil
			p.free = p.free[:n-1]
			return x
		}
	}
	return new(T)
}

// Put releases a value back to the free list.
func (p *Pool[T]) Put(x *T) {
	if p == nil || x == nil {
		return
	}
	var zero T
	*x = zero
	p.free = append(p.free, x)
}
