package types

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Tuple is a fact of a relation: a predicate name plus a list of argument
// values. By declarative-networking convention the first argument is the
// location specifier (the node at which the tuple resides).
type Tuple struct {
	Pred string
	Args []Value
}

// NewTuple builds a tuple.
func NewTuple(pred string, args ...Value) Tuple { return Tuple{Pred: pred, Args: args} }

// Loc returns the tuple's location specifier (its first attribute). It
// returns -1 when the tuple has no node-valued first attribute.
func (t Tuple) Loc() NodeID {
	if len(t.Args) == 0 {
		return -1
	}
	return t.Args[0].AsNode()
}

// Arity returns the number of attributes.
func (t Tuple) Arity() int { return len(t.Args) }

// Equal reports deep equality of predicate and arguments.
func (t Tuple) Equal(o Tuple) bool {
	if t.Pred != o.Pred || len(t.Args) != len(o.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// Encode appends the canonical encoding of the tuple: uvarint name length,
// name bytes, uvarint arity, then each argument's value encoding.
func (t Tuple) Encode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t.Pred)))
	dst = append(dst, t.Pred...)
	dst = binary.AppendUvarint(dst, uint64(len(t.Args)))
	for _, a := range t.Args {
		dst = a.Encode(dst)
	}
	return dst
}

// DecodeTuple decodes one tuple from b, returning the tuple and the number
// of bytes consumed.
func DecodeTuple(b []byte) (Tuple, int, error) {
	n, sz, ok := readUvarint(b)
	if !ok || n > uint64(len(b)-sz) {
		return Tuple{}, 0, errTruncated
	}
	pred := string(b[sz : sz+int(n)])
	used := sz + int(n)
	arity, sz2, ok := readUvarint(b[used:])
	if !ok {
		return Tuple{}, 0, errTruncated
	}
	used += sz2
	// Bounded preallocation; see the matching cap in DecodeValue.
	args := make([]Value, 0, min(arity, 64))
	for i := uint64(0); i < arity; i++ {
		v, k, err := DecodeValue(b[used:])
		if err != nil {
			return Tuple{}, 0, err
		}
		args = append(args, v)
		used += k
	}
	return Tuple{Pred: pred, Args: args}, used, nil
}

// WireSize reports the encoded size of the tuple in bytes.
func (t Tuple) WireSize() int {
	n := uvarintLen(uint64(len(t.Pred))) + len(t.Pred) + uvarintLen(uint64(len(t.Args)))
	for _, a := range t.Args {
		n += a.WireSize()
	}
	return n
}

// Key returns the canonical encoding as a string: a process-independent,
// content-derived identity for the tuple. Hot paths key their maps on the
// cheaper process-local AppendArgsKey form instead.
func (t Tuple) Key() string { return string(t.Encode(nil)) }

// SortTuples orders tuples in place by their canonical encoding — the same
// process-independent order Relation.Tuples uses, so merged cross-shard
// snapshots compare byte-for-byte with single-shard ones.
func SortTuples(ts []Tuple) {
	keys := make([]string, len(ts))
	var buf []byte
	for i := range ts {
		buf = ts[i].Encode(buf[:0])
		keys[i] = string(buf)
	}
	sort.Sort(&tupleSorter{ts: ts, keys: keys})
}

type tupleSorter struct {
	ts   []Tuple
	keys []string
}

func (s *tupleSorter) Len() int           { return len(s.ts) }
func (s *tupleSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *tupleSorter) Swap(i, j int) {
	s.ts[i], s.ts[j] = s.ts[j], s.ts[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// AppendArgsKey appends the fixed-width process-local identity key of the
// tuple's arguments (see Value.AppendKey): nine bytes per argument, no
// string or digest copies. Two tuples of the same predicate have equal args
// keys exactly when they are equal, which is what per-relation entry maps
// and index buckets key on. The predicate is deliberately omitted — the
// containing relation fixes it. Never used on the wire.
//
//exspan:hotpath
func (t Tuple) AppendArgsKey(dst []byte) []byte {
	for _, a := range t.Args {
		dst = a.AppendKey(dst)
	}
	return dst
}

// vidHook, when non-nil, observes every full VID computation. It exists so
// tests can assert how often tuples are re-hashed on the evaluation hot path;
// production code never sets it.
var vidHook func(Tuple)

// SetVIDHook installs (or, with nil, removes) the VID-computation observer.
// Test instrumentation only; not safe for concurrent use with evaluation.
func SetVIDHook(f func(Tuple)) { vidHook = f }

// VID computes the tuple's provenance vertex identifier: the SHA-1 digest of
// its predicate name, location specifier and attribute values — the paper's
// VID = SHA1("pathCost"+X+Y+C).
func (t Tuple) VID() ID {
	id, _ := t.VIDBuf(nil)
	return id
}

// VIDBuf is VID with a caller-supplied scratch buffer for the canonical
// encoding, so hot paths can hash tuples without allocating per call. It
// returns the identifier and the (possibly grown) buffer.
func (t Tuple) VIDBuf(buf []byte) (ID, []byte) {
	if vidHook != nil {
		vidHook(t)
	}
	buf = t.Encode(buf[:0])
	return HashBytes(buf), buf
}

// RuleExecID computes the identifier of a rule-execution vertex for rule
// named rule at location loc over the given input tuple VIDs — the paper's
// RID = SHA1(R + RLoc + List).
func RuleExecID(rule string, loc NodeID, inputs []ID) ID {
	id, _ := RuleExecIDBuf(rule, loc, inputs, nil)
	return id
}

// RuleExecIDBuf is RuleExecID with a caller-supplied scratch buffer. It
// returns the identifier and the (possibly grown) buffer so hot paths can
// compute RIDs without allocating per call.
func RuleExecIDBuf(rule string, loc NodeID, inputs []ID, buf []byte) (ID, []byte) {
	b := buf[:0]
	b = append(b, rule...)
	b = binary.BigEndian.AppendUint32(b, uint32(int32(loc)))
	for _, in := range inputs {
		b = append(b, in[:]...)
	}
	return HashBytes(b), b
}

// String renders the tuple in the paper's notation, e.g.
// bestPathCost(@a,c,5).
func (t Tuple) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
		if i == 0 && a.Kind() == KindNode {
			parts[i] = "@" + parts[i]
		}
	}
	return fmt.Sprintf("%s(%s)", t.Pred, strings.Join(parts, ","))
}
