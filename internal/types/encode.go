package types

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format. Each value encodes as a one-byte kind tag followed by a
// kind-specific payload:
//
//	nil   -> tag
//	bool  -> tag + 1 byte
//	int   -> tag + 8 bytes big-endian
//	str   -> tag + uvarint length + bytes
//	node  -> tag + 4 bytes big-endian (an IPv4-sized address)
//	id    -> tag + 20 bytes
//	list  -> tag + uvarint count + elements
//	prov  -> tag + uvarint length + payload bytes
//
// The same encoding is used (a) on the simulated and real wire, (b) as the
// canonical input to SHA-1 when computing VIDs and RIDs, and (c) as map keys
// inside relations. WireSize always equals len(Encode output).

var errTruncated = errors.New("types: truncated value encoding")

// WireSize reports the encoded size of the value in bytes.
func (v Value) WireSize() int {
	switch v.kind {
	case KindNil:
		return 1
	case KindBool:
		return 2
	case KindInt:
		return 9
	case KindStr:
		return 1 + uvarintLen(uint64(len(v.s))) + len(v.s)
	case KindNode:
		return 5
	case KindID:
		return 1 + IDLen
	case KindList:
		n := 1 + uvarintLen(uint64(len(v.list)))
		for _, e := range v.list {
			n += e.WireSize()
		}
		return n
	case KindProv:
		var n int
		if v.prov != nil {
			n = v.prov.WireSize()
		}
		return 1 + uvarintLen(uint64(n)) + n
	}
	return 1
}

// Encode appends the canonical encoding of v to dst and returns the extended
// slice.
func (v Value) Encode(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNil:
	case KindBool:
		if v.i != 0 {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case KindStr:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindNode:
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(v.i)))
	case KindID:
		dst = append(dst, v.id[:]...)
	case KindList:
		dst = binary.AppendUvarint(dst, uint64(len(v.list)))
		for _, e := range v.list {
			dst = e.Encode(dst)
		}
	case KindProv:
		var pb []byte
		if v.prov != nil {
			pb = v.prov.EncodePayload()
		}
		dst = binary.AppendUvarint(dst, uint64(len(pb)))
		dst = append(dst, pb...)
	}
	return dst
}

// DecodeValue decodes one value from b, returning the value and the number
// of bytes consumed. Provenance payloads decode as opaque byte payloads.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, errTruncated
	}
	kind := Kind(b[0])
	rest := b[1:]
	switch kind {
	case KindNil:
		return Nil(), 1, nil
	case KindBool:
		if len(rest) < 1 {
			return Value{}, 0, errTruncated
		}
		return Bool(rest[0] != 0), 2, nil
	case KindInt:
		if len(rest) < 8 {
			return Value{}, 0, errTruncated
		}
		return Int(int64(binary.BigEndian.Uint64(rest))), 9, nil
	case KindStr:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || len(rest) < sz+int(n) {
			return Value{}, 0, errTruncated
		}
		return Str(string(rest[sz : sz+int(n)])), 1 + sz + int(n), nil
	case KindNode:
		if len(rest) < 4 {
			return Value{}, 0, errTruncated
		}
		return Node(NodeID(int32(binary.BigEndian.Uint32(rest)))), 5, nil
	case KindID:
		if len(rest) < IDLen {
			return Value{}, 0, errTruncated
		}
		var id ID
		copy(id[:], rest[:IDLen])
		return IDVal(id), 1 + IDLen, nil
	case KindList:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return Value{}, 0, errTruncated
		}
		used := 1 + sz
		elems := make([]Value, 0, n)
		cur := b[used:]
		for i := uint64(0); i < n; i++ {
			e, k, err := DecodeValue(cur)
			if err != nil {
				return Value{}, 0, err
			}
			elems = append(elems, e)
			cur = cur[k:]
			used += k
		}
		return List(elems...), used, nil
	case KindProv:
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || len(rest) < sz+int(n) {
			return Value{}, 0, errTruncated
		}
		pb := make([]byte, n)
		copy(pb, rest[sz:sz+int(n)])
		return Prov(OpaquePayload(pb)), 1 + sz + int(n), nil
	}
	return Value{}, 0, fmt.Errorf("types: unknown value kind %d", kind)
}

// OpaquePayload is a provenance payload carried as raw bytes. Decoded
// messages hold payloads in this form; the querying layer re-parses them
// into polynomials or BDDs as needed.
type OpaquePayload []byte

// WireSize implements Payload.
func (o OpaquePayload) WireSize() int { return len(o) }

// EncodePayload implements Payload.
func (o OpaquePayload) EncodePayload() []byte { return o }

// String implements Payload.
func (o OpaquePayload) String() string { return fmt.Sprintf("opaque[%dB]", len(o)) }

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
