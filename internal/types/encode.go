package types

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format (specified normatively in docs/wire-format.md). Each value
// encodes as a one-byte kind tag followed by a kind-specific payload:
//
//	nil   -> tag
//	bool  -> tag + 1 byte
//	int   -> tag + 8 bytes big-endian
//	str   -> tag + uvarint length + bytes
//	node  -> tag + 4 bytes big-endian (an IPv4-sized address)
//	id    -> tag + 20 bytes
//	list  -> tag + uvarint count + elements
//	prov  -> tag + uvarint length + payload bytes
//
// The same encoding is used (a) on the simulated and real wire, (b) as the
// canonical input to SHA-1 when computing VIDs and RIDs. WireSize always
// equals len(Encode output).
//
// The interning layer never leaks into this format: encodings are payload
// content, byte-for-byte identical to the pre-interning representation, and
// interned entries simply memoize their encoding so emitting one is a copy.
// (Process-local handle keys for map lookups come from Value.AppendKey,
// which is deliberately a different, non-wire byte form.)

var (
	errTruncated    = errors.New("types: truncated value encoding")
	errNonCanonical = errors.New("types: non-canonical value encoding")
)

// readUvarint decodes a uvarint and additionally rejects non-minimal
// (over-long) encodings. The format doubles as SHA-1 input, so every byte
// string must have at most one decoding that re-encodes to itself —
// accepting redundant varint forms (or bool payloads other than 0/1) would
// break the decode→re-encode identity the fuzz tests pin.
func readUvarint(b []byte) (uint64, int, bool) {
	v, sz := binary.Uvarint(b)
	if sz <= 0 || sz != uvarintLen(v) {
		return 0, 0, false
	}
	return v, sz, true
}

// encOf returns the cached canonical encoding of an interned value
// (including the kind tag). Only valid for interned kinds.
func (v Value) encOf() []byte {
	switch v.kind {
	case KindStr:
		return strTab.store.get(v.h).enc
	case KindID:
		return idTab.store.get(v.h).enc
	case KindList:
		return listTab.store.get(v.h).enc
	case KindProv:
		return provTab.store.get(v.h).enc
	}
	return nil
}

// WireSize reports the encoded size of the value in bytes.
func (v Value) WireSize() int {
	switch v.kind {
	case KindNil:
		return 1
	case KindBool:
		return 2
	case KindInt:
		return 9
	case KindNode:
		return 5
	default:
		return len(v.encOf())
	}
}

// Encode appends the canonical encoding of v to dst and returns the extended
// slice. Interned kinds append their memoized encoding in one copy.
func (v Value) Encode(dst []byte) []byte {
	switch v.kind {
	case KindNil:
		return append(dst, byte(KindNil))
	case KindBool:
		b := byte(0)
		if v.i != 0 {
			b = 1
		}
		return append(dst, byte(KindBool), b)
	case KindInt:
		dst = append(dst, byte(KindInt))
		return binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case KindNode:
		dst = append(dst, byte(KindNode))
		return binary.BigEndian.AppendUint32(dst, uint32(int32(v.i)))
	default:
		return append(dst, v.encOf()...)
	}
}

// DecodeValue decodes one value from b, returning the value and the number
// of bytes consumed. Provenance payloads decode as opaque byte payloads.
// Decoding interns heavy payloads, so a decoded value is == to the value
// that was encoded.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, errTruncated
	}
	kind := Kind(b[0])
	rest := b[1:]
	switch kind {
	case KindNil:
		return Nil(), 1, nil
	case KindBool:
		if len(rest) < 1 {
			return Value{}, 0, errTruncated
		}
		if rest[0] > 1 {
			return Value{}, 0, errNonCanonical
		}
		return Bool(rest[0] != 0), 2, nil
	case KindInt:
		if len(rest) < 8 {
			return Value{}, 0, errTruncated
		}
		return Int(int64(binary.BigEndian.Uint64(rest))), 9, nil
	case KindStr:
		n, sz, ok := readUvarint(rest)
		if !ok || n > uint64(len(rest)-sz) {
			return Value{}, 0, errTruncated
		}
		return Str(string(rest[sz : sz+int(n)])), 1 + sz + int(n), nil
	case KindNode:
		if len(rest) < 4 {
			return Value{}, 0, errTruncated
		}
		return Node(NodeID(int32(binary.BigEndian.Uint32(rest)))), 5, nil
	case KindID:
		if len(rest) < IDLen {
			return Value{}, 0, errTruncated
		}
		var id ID
		copy(id[:], rest[:IDLen])
		return IDVal(id), 1 + IDLen, nil
	case KindList:
		n, sz, ok := readUvarint(rest)
		if !ok {
			return Value{}, 0, errTruncated
		}
		used := 1 + sz
		// Cap the preallocation: the count is attacker-controlled (six
		// hostile bytes could otherwise reserve gigabytes), and every real
		// element costs at least one byte, so oversized counts fail with
		// errTruncated after a bounded append.
		elems := make([]Value, 0, min(n, 64))
		cur := b[used:]
		for i := uint64(0); i < n; i++ {
			e, k, err := DecodeValue(cur)
			if err != nil {
				return Value{}, 0, err
			}
			elems = append(elems, e)
			cur = cur[k:]
			used += k
		}
		return List(elems...), used, nil
	case KindProv:
		n, sz, ok := readUvarint(rest)
		if !ok || n > uint64(len(rest)-sz) {
			return Value{}, 0, errTruncated
		}
		pb := make([]byte, n)
		copy(pb, rest[sz:sz+int(n)])
		return Prov(OpaquePayload(pb)), 1 + sz + int(n), nil
	}
	return Value{}, 0, fmt.Errorf("types: unknown value kind %d", kind)
}

// OpaquePayload is a provenance payload carried as raw bytes. Decoded
// messages hold payloads in this form; the querying layer re-parses them
// into polynomials or BDDs as needed.
type OpaquePayload []byte

// WireSize implements Payload.
func (o OpaquePayload) WireSize() int { return len(o) }

// EncodePayload implements Payload.
func (o OpaquePayload) EncodePayload() []byte { return o }

// String implements Payload.
func (o OpaquePayload) String() string { return fmt.Sprintf("opaque[%dB]", len(o)) }

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
