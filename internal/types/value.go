// Package types defines the value and tuple model shared by every ExSPAN
// component: the NDlog engine, the provenance store, the network simulator
// and the UDP deployment runtime.
//
// Values form a small tagged union. Every value has a deterministic
// canonical encoding (used both on the wire and as input to SHA-1 when
// computing provenance vertex identifiers) and a deterministic wire size, so
// that simulated byte counts match deployed byte counts exactly.
package types

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the value kinds supported by the engine.
type Kind uint8

// Value kinds. The zero Kind is Nil.
const (
	KindNil Kind = iota
	KindBool
	KindInt
	KindStr
	KindNode
	KindID
	KindList
	KindProv
)

func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindStr:
		return "str"
	case KindNode:
		return "node"
	case KindID:
		return "id"
	case KindList:
		return "list"
	case KindProv:
		return "prov"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NodeID identifies a network node. On the wire it occupies four bytes,
// mirroring an IPv4 address in the paper's deployment.
type NodeID int32

// String renders small node IDs as letters (a, b, c, ...) to match the
// paper's examples, and falls back to n<id> for larger networks.
func (n NodeID) String() string {
	if n >= 0 && n < 26 {
		return string(rune('a' + n))
	}
	return fmt.Sprintf("n%d", int32(n))
}

// Payload is an opaque provenance annotation carried inside a Value of
// KindProv. Value-based distributed provenance attaches payloads (provenance
// polynomials or BDDs) to tuples; query results return them.
type Payload interface {
	// WireSize reports the number of bytes the payload occupies when
	// serialized into a message.
	WireSize() int
	// EncodePayload renders the payload into its canonical byte form.
	EncodePayload() []byte
	// String renders a human-readable form.
	String() string
}

// Value is an immutable tagged union. Construct values with Nil, Bool, Int,
// Str, Node, IDVal, List and Prov; inspect them with the Kind and accessor
// methods. The zero Value is Nil.
type Value struct {
	kind Kind
	i    int64
	s    string
	id   ID
	list []Value
	prov Payload
}

// Constructors.

// Nil returns the nil value.
func Nil() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindStr, s: s} }

// Node returns a node-address value.
func Node(n NodeID) Value { return Value{kind: KindNode, i: int64(n)} }

// IDVal returns a 20-byte digest value.
func IDVal(id ID) Value { return Value{kind: KindID, id: id} }

// List returns a list value holding the given elements. The slice is not
// copied; callers must not mutate it afterwards.
func List(elems ...Value) Value { return Value{kind: KindList, list: elems} }

// Prov wraps a provenance payload in a value.
func Prov(p Payload) Value { return Value{kind: KindProv, prov: p} }

// Accessors.

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is nil.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsBool returns the boolean payload; it is false for non-bool values.
func (v Value) AsBool() bool { return v.kind == KindBool && v.i != 0 }

// AsInt returns the integer payload (0 for non-int values).
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		return 0
	}
	return v.i
}

// AsNode returns the node payload (-1 for non-node values).
func (v Value) AsNode() NodeID {
	if v.kind != KindNode {
		return -1
	}
	return NodeID(v.i)
}

// AsStr returns the string payload ("" for non-string values).
func (v Value) AsStr() string {
	if v.kind != KindStr {
		return ""
	}
	return v.s
}

// AsID returns the digest payload (zero ID for other kinds).
func (v Value) AsID() ID {
	if v.kind != KindID {
		return ID{}
	}
	return v.id
}

// AsList returns the list elements (nil for other kinds). Callers must not
// mutate the returned slice.
func (v Value) AsList() []Value {
	if v.kind != KindList {
		return nil
	}
	return v.list
}

// AsProv returns the provenance payload (nil for other kinds).
func (v Value) AsProv() Payload {
	if v.kind != KindProv {
		return nil
	}
	return v.prov
}

// Truthy reports whether a value counts as true in a rule constraint:
// booleans by their payload, integers by non-zero.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	default:
		return !v.IsNil()
	}
}

// Equal reports deep equality.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindBool, KindInt, KindNode:
		return v.i == o.i
	case KindStr:
		return v.s == o.s
	case KindID:
		return v.id == o.id
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	case KindProv:
		if v.prov == nil || o.prov == nil {
			return v.prov == o.prov
		}
		return string(v.prov.EncodePayload()) == string(o.prov.EncodePayload())
	}
	return false
}

// Compare defines a deterministic total order across values (first by kind,
// then by payload). It is used for stable aggregate tie-breaking and for
// canonical output ordering.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		return int(v.kind) - int(o.kind)
	}
	switch v.kind {
	case KindNil:
		return 0
	case KindBool, KindInt, KindNode:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindStr:
		return strings.Compare(v.s, o.s)
	case KindID:
		return strings.Compare(string(v.id[:]), string(o.id[:]))
	case KindList:
		for i := 0; i < len(v.list) && i < len(o.list); i++ {
			if c := v.list[i].Compare(o.list[i]); c != 0 {
				return c
			}
		}
		return len(v.list) - len(o.list)
	case KindProv:
		var a, b string
		if v.prov != nil {
			a = string(v.prov.EncodePayload())
		}
		if o.prov != nil {
			b = string(o.prov.EncodePayload())
		}
		return strings.Compare(a, b)
	}
	return 0
}

// String renders the value in the paper's notation: nodes as letters,
// digests as an 8-hex-digit prefix, lists in parentheses.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "null"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindStr:
		return v.s
	case KindNode:
		return NodeID(v.i).String()
	case KindID:
		return v.id.Short()
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ",") + ")"
	case KindProv:
		if v.prov == nil {
			return "prov(nil)"
		}
		return v.prov.String()
	}
	return "?"
}

// SortValues orders a slice of values in place by Compare.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}
