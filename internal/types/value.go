// Package types defines the value and tuple model shared by every ExSPAN
// component: the NDlog engine, the provenance store, the network simulator
// and the UDP deployment runtime.
//
// Values form a small tagged union held in a compact, pointer-free struct:
// a kind tag, an inline 64-bit payload (booleans, integers, node addresses,
// and the leading bytes of IDs), and a 32-bit handle into the per-process
// interning layer for heavy payloads (strings, full 20-byte IDs, lists,
// provenance annotations — see intern.go). Because handles are canonical,
// Value supports Go's == operator, and slices of values carry no pointers
// for the garbage collector to trace.
//
// Every value has a deterministic canonical encoding (used both on the wire
// and as input to SHA-1 when computing provenance vertex identifiers) and a
// deterministic wire size, so that simulated byte counts match deployed
// byte counts exactly. The encoding is specified in docs/wire-format.md; it
// is computed from payload content and never exposes interning handles, so
// processes with different interning histories interoperate freely.
package types

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the value kinds supported by the engine.
type Kind uint8

// Value kinds. The zero Kind is Nil.
const (
	KindNil Kind = iota
	KindBool
	KindInt
	KindStr
	KindNode
	KindID
	KindList
	KindProv
)

func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindStr:
		return "str"
	case KindNode:
		return "node"
	case KindID:
		return "id"
	case KindList:
		return "list"
	case KindProv:
		return "prov"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// interned reports whether values of this kind keep their payload in the
// interning layer (reachable through Value.h) rather than inline in Value.i.
func (k Kind) interned() bool {
	return k == KindStr || k == KindID || k == KindList || k == KindProv
}

// NodeID identifies a network node. On the wire it occupies four bytes,
// mirroring an IPv4 address in the paper's deployment.
type NodeID int32

// String renders small node IDs as letters (a, b, c, ...) to match the
// paper's examples, and falls back to n<id> for larger networks.
func (n NodeID) String() string {
	if n >= 0 && n < 26 {
		return string(rune('a' + n))
	}
	return fmt.Sprintf("n%d", int32(n))
}

// Payload is an opaque provenance annotation carried inside a Value of
// KindProv. Value-based distributed provenance attaches payloads (provenance
// polynomials or BDDs) to tuples; query results return them.
type Payload interface {
	// WireSize reports the number of bytes the payload occupies when
	// serialized into a message.
	WireSize() int
	// EncodePayload renders the payload into its canonical byte form.
	EncodePayload() []byte
	// String renders a human-readable form.
	String() string
}

// Value is an immutable tagged union. Construct values with Nil, Bool, Int,
// Str, Node, IDVal, List and Prov; inspect them with the Kind and accessor
// methods. The zero Value is Nil.
//
// The struct is 16 bytes and contains no pointers: kind selects the union
// arm, i holds inline payloads (bool as 0/1, int, node; for IDs the first
// eight digest bytes, big-endian, as a comparison prefix), and h names the
// interned heavy payload for string, ID, list and provenance values. The
// interning layer deduplicates payloads, so two Values are equal exactly
// when their structs are equal, and Value is a valid Go map key. A fence in
// types_test.go pins unsafe.Sizeof(Value{}) ≤ 24.
type Value struct {
	i    int64
	h    uint32
	kind Kind
}

// Constructors.

// Nil returns the nil value.
func Nil() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Str returns a string value. The string is interned: repeated construction
// of the same string is allocation-free and yields identical handles.
func Str(s string) Value { return Value{kind: KindStr, h: internStr(s)} }

// Node returns a node-address value.
func Node(n NodeID) Value { return Value{kind: KindNode, i: int64(n)} }

// IDVal returns a 20-byte digest value. The digest is interned; the first
// eight bytes ride inline as a comparison prefix.
func IDVal(id ID) Value {
	return Value{
		kind: KindID,
		i:    int64(binary.BigEndian.Uint64(id[:8])),
		h:    internID(id),
	}
}

// List returns a list value holding the given elements. The slice is
// interned (by the canonical encoding of its elements) and retained; callers
// must not mutate it afterwards.
func List(elems ...Value) Value { return Value{kind: KindList, h: internList(elems)} }

// Prov wraps a provenance payload in a value. Payloads are interned by their
// canonical bytes; a nil payload interns like an empty one.
func Prov(p Payload) Value { return Value{kind: KindProv, h: internPayload(p)} }

// Accessors.

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is nil.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsBool returns the boolean payload; it is false for non-bool values.
func (v Value) AsBool() bool { return v.kind == KindBool && v.i != 0 }

// AsInt returns the integer payload (0 for non-int values).
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		return 0
	}
	return v.i
}

// AsNode returns the node payload (-1 for non-node values).
func (v Value) AsNode() NodeID {
	if v.kind != KindNode {
		return -1
	}
	return NodeID(v.i)
}

// AsStr returns the string payload ("" for non-string values).
func (v Value) AsStr() string {
	if v.kind != KindStr {
		return ""
	}
	return strTab.store.get(v.h).s
}

// AsID returns the digest payload (zero ID for other kinds).
func (v Value) AsID() ID {
	if v.kind != KindID {
		return ID{}
	}
	return idTab.store.get(v.h).id
}

// AsList returns the list elements (nil for other kinds). The slice is
// shared with every equal list value; callers must not mutate it.
func (v Value) AsList() []Value {
	if v.kind != KindList {
		return nil
	}
	return listTab.store.get(v.h).elems
}

// AsProv returns the provenance payload (nil for other kinds).
func (v Value) AsProv() Payload {
	if v.kind != KindProv {
		return nil
	}
	return provTab.store.get(v.h).p
}

// Truthy reports whether a value counts as true in a rule constraint:
// booleans by their payload, integers by non-zero.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	default:
		return !v.IsNil()
	}
}

// Equal reports deep equality. Because heavy payloads are interned to
// canonical handles, this is a plain struct comparison; v == o is
// equivalent.
func (v Value) Equal(o Value) bool { return v == o }

// Compare defines a deterministic total order across values (first by kind,
// then by payload). It is used for stable aggregate tie-breaking and for
// canonical output ordering. The order depends only on payload content —
// never on interning handles — so it is reproducible across processes.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		return int(v.kind) - int(o.kind)
	}
	switch v.kind {
	case KindNil:
		return 0
	case KindBool, KindInt, KindNode:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindStr:
		if v.h == o.h {
			return 0
		}
		return strings.Compare(strTab.store.get(v.h).s, strTab.store.get(o.h).s)
	case KindID:
		if v.h == o.h {
			return 0
		}
		// The inline prefix is the first eight digest bytes big-endian, so
		// unsigned comparison matches lexicographic byte order.
		switch a, b := uint64(v.i), uint64(o.i); {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		va, vb := idTab.store.get(v.h).id, idTab.store.get(o.h).id
		return strings.Compare(string(va[8:]), string(vb[8:]))
	case KindList:
		if v.h == o.h {
			return 0
		}
		la, lb := listTab.store.get(v.h).elems, listTab.store.get(o.h).elems
		for i := 0; i < len(la) && i < len(lb); i++ {
			if c := la[i].Compare(lb[i]); c != 0 {
				return c
			}
		}
		return len(la) - len(lb)
	case KindProv:
		if v.h == o.h {
			return 0
		}
		return strings.Compare(provTab.store.get(v.h).key, provTab.store.get(o.h).key)
	}
	return 0
}

// AppendKey appends a fixed-width process-local identity key for v: the kind
// byte followed by eight payload bytes (the inline payload, or the interned
// handle zero-extended). Key equality coincides with value equality, and
// building a key copies no string or digest content, which is why relations
// and aggregate groups key their maps on it. Keys are meaningless outside
// this process and never touch the wire — use Encode for canonical bytes.
//
//exspan:hotpath
func (v Value) AppendKey(dst []byte) []byte {
	w := uint64(v.i)
	if v.kind.interned() {
		w = uint64(v.h)
	}
	return append(dst,
		byte(v.kind),
		byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
		byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
}

// String renders the value in the paper's notation: nodes as letters,
// digests as an 8-hex-digit prefix, lists in parentheses.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "null"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindStr:
		return v.AsStr()
	case KindNode:
		return NodeID(v.i).String()
	case KindID:
		return v.AsID().Short()
	case KindList:
		elems := v.AsList()
		parts := make([]string, len(elems))
		for i, e := range elems {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ",") + ")"
	case KindProv:
		if p := v.AsProv(); p != nil {
			return p.String()
		}
		return "prov(nil)"
	}
	return "?"
}

// SortValues orders a slice of values in place by Compare.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}
