package types

// Content hashing for shard routing. The sharded engine runtime partitions
// relation state across worker shards by a 64-bit hash of each tuple's
// canonical CONTENT — never of interning handles — so that shard assignment
// (and with it round composition, merge order and byte accounting) is
// reproducible across processes with different interning histories, the same
// property the wire format already guarantees. Interned kinds memoize their
// hash in the intern tables at first construction, making ContentHash O(1)
// on the delta-routing path.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a hashes b with FNV-1a, continuing from h (seed with fnvOffset64).
func fnv1a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// mix64 finalizes a 64-bit hash (the splitmix64 finalizer), giving inline
// payloads the same avalanche quality as the byte-hashed interned kinds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ContentHash returns a 64-bit hash of the value's canonical content. Equal
// values hash equally; the hash is derived from payload bytes (the canonical
// encoding for interned kinds, the inline payload otherwise) and is therefore
// stable across processes regardless of interning order.
func (v Value) ContentHash() uint64 {
	switch v.kind {
	case KindStr:
		return strTab.store.get(v.h).chash
	case KindID:
		return idTab.store.get(v.h).chash
	case KindList:
		return listTab.store.get(v.h).chash
	case KindProv:
		return provTab.store.get(v.h).chash
	default:
		return mix64(uint64(v.kind)*fnvPrime64 ^ uint64(v.i))
	}
}

// ContentHash returns a 64-bit content-derived hash of the whole tuple
// (predicate name plus arguments). The sharded runtime routes deltas to
// their owner shard with it.
func (t Tuple) ContentHash() uint64 {
	h := fnv1a(fnvOffset64, []byte(t.Pred))
	for _, a := range t.Args {
		h = (h ^ a.ContentHash()) * fnvPrime64
	}
	return h
}

// HashValues folds the content hashes of vals into one 64-bit hash (used for
// aggregate group-key routing).
func HashValues(vals []Value) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		h = (h ^ v.ContentHash()) * fnvPrime64
	}
	return h
}
