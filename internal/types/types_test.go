package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomValue generates an arbitrary value of bounded depth for property
// tests, covering every kind including interned provenance payloads.
func randomValue(rng *rand.Rand, depth int) Value {
	k := rng.Intn(8)
	if depth <= 0 && k >= 7 { // lists recurse; cap them at the depth bound
		k = rng.Intn(7)
	}
	switch k {
	case 0:
		return Nil()
	case 1:
		return Bool(rng.Intn(2) == 0)
	case 2:
		return Int(rng.Int63() - rng.Int63())
	case 3:
		b := make([]byte, rng.Intn(20))
		rng.Read(b)
		return Str(string(b))
	case 4:
		return Node(NodeID(rng.Int31n(1000)))
	case 5:
		var id ID
		rng.Read(id[:])
		return IDVal(id)
	case 6:
		b := make([]byte, rng.Intn(16))
		rng.Read(b)
		return Prov(OpaquePayload(b))
	default:
		n := rng.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(rng, depth-1)
		}
		return List(elems...)
	}
}

// Generate implements quick.Generator.
func (Value) Generate(rng *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(randomValue(rng, 3))
}

func TestValueEncodeRoundTrip(t *testing.T) {
	f := func(v Value) bool {
		enc := v.Encode(nil)
		if len(enc) != v.WireSize() {
			t.Logf("wire size %d != encoded length %d for %s", v.WireSize(), len(enc), v)
			return false
		}
		dec, n, err := DecodeValue(enc)
		if err != nil || n != len(enc) {
			t.Logf("decode %s: n=%d err=%v", v, n, err)
			return false
		}
		return dec.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValueEncodingInjective(t *testing.T) {
	f := func(a, b Value) bool {
		ea, eb := string(a.Encode(nil)), string(b.Encode(nil))
		return (ea == eb) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValueCompareIsTotalOrder(t *testing.T) {
	f := func(a, b, c Value) bool {
		// Antisymmetry.
		if a.Compare(b) < 0 && b.Compare(a) < 0 {
			return false
		}
		// Consistency with Equal.
		if (a.Compare(b) == 0) != a.Equal(b) {
			return false
		}
		// Transitivity (on this triple).
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTupleEncodeRoundTrip(t *testing.T) {
	f := func(a, b, c Value) bool {
		tu := NewTuple("pred", a, b, c)
		enc := tu.Encode(nil)
		if len(enc) != tu.WireSize() {
			return false
		}
		dec, n, err := DecodeTuple(enc)
		return err == nil && n == len(enc) && dec.Equal(tu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestVIDDeterminism(t *testing.T) {
	t1 := NewTuple("pathCost", Node(0), Node(2), Int(5))
	t2 := NewTuple("pathCost", Node(0), Node(2), Int(5))
	if t1.VID() != t2.VID() {
		t.Error("identical tuples have different VIDs")
	}
	t3 := NewTuple("pathCost", Node(0), Node(2), Int(6))
	if t1.VID() == t3.VID() {
		t.Error("different tuples share a VID")
	}
	t4 := NewTuple("bestPathCost", Node(0), Node(2), Int(5))
	if t1.VID() == t4.VID() {
		t.Error("different predicates share a VID")
	}
}

func TestRuleExecIDSensitivity(t *testing.T) {
	in1 := []ID{HashString("a"), HashString("b")}
	in2 := []ID{HashString("b"), HashString("a")}
	if RuleExecID("sp2", 1, in1) == RuleExecID("sp2", 1, in2) {
		t.Error("RID insensitive to input order")
	}
	if RuleExecID("sp2", 1, in1) == RuleExecID("sp2", 2, in1) {
		t.Error("RID insensitive to location")
	}
	if RuleExecID("sp2", 1, in1) == RuleExecID("sp1", 1, in1) {
		t.Error("RID insensitive to rule label")
	}
}

func TestTupleString(t *testing.T) {
	tu := NewTuple("bestPathCost", Node(0), Node(2), Int(5))
	if got := tu.String(); got != "bestPathCost(@a,c,5)" {
		t.Errorf("String = %q, want bestPathCost(@a,c,5)", got)
	}
	ev := NewTuple("ePacket", Node(27), Str("x"))
	if got := ev.String(); got != "ePacket(@n27,x)" {
		t.Errorf("String = %q", got)
	}
}

func TestNodeIDString(t *testing.T) {
	if NodeID(0).String() != "a" || NodeID(25).String() != "z" {
		t.Error("letter rendering broken")
	}
	if NodeID(26).String() != "n26" {
		t.Error("numeric rendering broken")
	}
}

func TestValueAccessorsOnWrongKind(t *testing.T) {
	v := Str("hello")
	if v.AsInt() != 0 || v.AsNode() != -1 || !v.AsID().IsZero() || v.AsList() != nil || v.AsBool() {
		t.Error("wrong-kind accessors should return zero values")
	}
	if Nil().Truthy() {
		t.Error("nil is not truthy")
	}
	if !Int(1).Truthy() || Int(0).Truthy() {
		t.Error("int truthiness broken")
	}
}

func TestDecodeTruncated(t *testing.T) {
	vals := []Value{Int(7), Str("abc"), List(Int(1), Str("x")), IDVal(HashString("q"))}
	for _, v := range vals {
		enc := v.Encode(nil)
		for cut := 0; cut < len(enc); cut++ {
			if dec, n, err := DecodeValue(enc[:cut]); err == nil && n == len(enc) {
				t.Errorf("decode of truncated %s (%d/%d bytes) succeeded as %s", v, cut, len(enc), dec)
			}
		}
	}
}

func TestOpaquePayload(t *testing.T) {
	p := OpaquePayload([]byte{1, 2, 3})
	v := Prov(p)
	enc := v.Encode(nil)
	if len(enc) != v.WireSize() {
		t.Error("prov wire size mismatch")
	}
	dec, _, err := DecodeValue(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(v) {
		t.Error("prov round trip failed")
	}
}
