package types

import (
	"crypto/sha1"
	"encoding/hex"
)

// IDLen is the length in bytes of a provenance vertex identifier. The paper
// uses SHA-1 digests ("the 20-byte RLoc and RID attributes").
const IDLen = sha1.Size

// ID is a 20-byte SHA-1 digest identifying a vertex in the provenance graph:
// a VID for tuple vertices, an RID for rule-execution vertices.
type ID [IDLen]byte

// ZeroID is the all-zero digest; it is used as the null RID that marks base
// tuples in the prov relation.
var ZeroID ID

// IsZero reports whether the ID is the null digest.
func (id ID) IsZero() bool { return id == ZeroID }

// String renders the full digest in hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short renders the first four bytes in hex, enough to disambiguate in
// examples and logs.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) }

// HashBytes computes the SHA-1 digest of b.
func HashBytes(b []byte) ID { return sha1.Sum(b) }

// HashString computes the SHA-1 digest of s.
func HashString(s string) ID { return sha1.Sum([]byte(s)) }
