package types

import (
	"encoding/binary"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the per-process interning layer behind the compact
// Value representation. Heavy payloads — strings, 20-byte IDs, lists and
// provenance annotations — live in append-only tables and are referenced
// from values by stable 32-bit handles. Two invariants govern the design:
//
//  1. Interning is invisible on the wire. The canonical encoding of a value
//     (docs/wire-format.md) is computed from payload CONTENT, never from
//     handle numbers, so two processes that interned the same values in
//     different orders still produce byte-identical messages and identical
//     SHA-1 vertex identifiers.
//
//  2. Handles are canonical within a process. Each table deduplicates on
//     payload content, so two values of the same kind are equal if and only
//     if their handles are equal. This is what lets Value support Go's ==,
//     lets relations key entries on fixed-width handle bytes instead of
//     variable-length canonical encodings, and lets the provenance store
//     partition its tables by a 4-byte IDHandle instead of a 20-byte digest.
//
// Tables grow monotonically for the life of the process (there is no
// reference counting); the population is bounded by the number of DISTINCT
// heavy payloads a workload materializes, which for the evaluation workloads
// is the same order as the live relation state itself. Entries additionally
// cache their canonical encoding, so encoding an interned value is a single
// copy instead of a value walk.
//
// Concurrency: lookups by handle are lock-free (an atomic chunk spine);
// interning takes a read lock on the dedup map first and falls back to the
// write lock only for first-time payloads. A handle is only obtainable from
// a Value, and any cross-goroutine hand-off of a Value synchronizes (channel
// send, mutex, …), which carries the table writes with it under the Go
// memory model.

const (
	internChunkBits = 12
	internChunkSize = 1 << internChunkBits
	internChunkMask = internChunkSize - 1
)

// internChunk is one fixed-size page of an append-only table. Pages never
// move once published, so readers index them without locks.
type internChunk[T any] struct{ items [internChunkSize]T }

// chunkStore is the append-only storage half of an intern table. Handle 0
// is reserved as "no handle"; entry h lives at index h-1.
type chunkStore[T any] struct {
	spine atomic.Pointer[[]*internChunk[T]]
}

// get returns the entry for handle h. h must have been returned by a put.
//
//exspan:hotpath
func (c *chunkStore[T]) get(h uint32) *T {
	i := h - 1
	sp := *c.spine.Load()
	return &sp[i>>internChunkBits].items[i&internChunkMask]
}

// put appends v as entry h (the caller allocates handles densely starting at
// 1 and must hold the table's write lock).
func (c *chunkStore[T]) put(h uint32, v T) {
	i := h - 1
	var sp []*internChunk[T]
	if p := c.spine.Load(); p != nil {
		sp = *p
	}
	if ci := int(i >> internChunkBits); ci == len(sp) {
		grown := make([]*internChunk[T], len(sp)+1)
		copy(grown, sp)
		grown[ci] = new(internChunk[T])
		c.spine.Store(&grown)
		sp = grown
	}
	sp[i>>internChunkBits].items[i&internChunkMask] = v
}

// strEntry, idEntry, listEntry and provEntry are the per-kind table rows.
// Every row caches enc, the payload's full canonical encoding including the
// kind tag, so Encode and WireSize on interned values are O(len) copies, and
// chash, an FNV-1a hash of enc, so content-derived shard routing
// (Value.ContentHash) is O(1) after the first construction.
type strEntry struct {
	s     string
	enc   []byte
	chash uint64
}

type idEntry struct {
	id    ID
	enc   []byte
	chash uint64
}

type listEntry struct {
	elems []Value
	key   string // canonical encoding of the elements; the dedup map key
	enc   []byte
	chash uint64
}

type payloadEntry struct {
	p     Payload
	key   string // EncodePayload bytes; the dedup map key
	enc   []byte
	chash uint64
}

var (
	strTab = struct {
		sync.RWMutex
		lookup map[string]uint32
		store  chunkStore[strEntry]
		next   uint32
	}{lookup: make(map[string]uint32), next: 1}

	idTab = struct {
		sync.RWMutex
		lookup map[ID]uint32
		store  chunkStore[idEntry]
		next   uint32
	}{lookup: make(map[ID]uint32), next: 1}

	listTab = struct {
		sync.RWMutex
		lookup map[string]uint32
		store  chunkStore[listEntry]
		next   uint32
	}{lookup: make(map[string]uint32), next: 1}

	provTab = struct {
		sync.RWMutex
		lookup map[string]uint32
		store  chunkStore[payloadEntry]
		next   uint32
	}{lookup: make(map[string]uint32), next: 1}
)

// internStr returns the canonical handle for s. The warm path (the string
// is already interned) is two map reads under an RLock and allocates
// nothing; the fenced paths only ever take it.
//
//exspan:hotpath
func internStr(s string) uint32 {
	strTab.RLock()
	h, ok := strTab.lookup[s]
	strTab.RUnlock()
	if ok {
		return h
	}
	strTab.Lock()
	defer strTab.Unlock()
	if h, ok := strTab.lookup[s]; ok {
		return h
	}
	// Clone so the table never pins a larger buffer the caller sliced s out
	// of (e.g. a decode scratch buffer).
	s = strings.Clone(s)
	//exspanlint:alloc-ok first sight of this string: the table row is built once
	enc := make([]byte, 0, 1+uvarintLen(uint64(len(s)))+len(s))
	enc = append(enc, byte(KindStr))
	enc = binary.AppendUvarint(enc, uint64(len(s)))
	enc = append(enc, s...)
	h = strTab.next
	strTab.next++
	strTab.store.put(h, strEntry{s: s, enc: enc, chash: fnv1a(fnvOffset64, enc)})
	strTab.lookup[s] = h
	return h
}

// internID returns the canonical handle for id; warm path as internStr.
//
//exspan:hotpath
func internID(id ID) uint32 {
	idTab.RLock()
	h, ok := idTab.lookup[id]
	idTab.RUnlock()
	if ok {
		return h
	}
	idTab.Lock()
	defer idTab.Unlock()
	if h, ok := idTab.lookup[id]; ok {
		return h
	}
	//exspanlint:alloc-ok first sight of this ID: the table row is built once
	enc := make([]byte, 0, 1+IDLen)
	enc = append(enc, byte(KindID))
	enc = append(enc, id[:]...)
	h = idTab.next
	idTab.next++
	idTab.store.put(h, idEntry{id: id, enc: enc, chash: fnv1a(fnvOffset64, enc)})
	idTab.lookup[id] = h
	return h
}

// listKeyScratch recycles the temporary buffers interning a list encodes its
// elements into, keeping repeat List construction allocation-free.
var listKeyScratch = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// internList returns the canonical handle for a list by its elements'
// canonical encoding; the key is built in pooled scratch, so the warm path
// allocates nothing.
//
//exspan:hotpath
func internList(elems []Value) uint32 {
	bp := listKeyScratch.Get().(*[]byte)
	b := (*bp)[:0]
	b = binary.AppendUvarint(b, uint64(len(elems)))
	for _, e := range elems {
		b = e.Encode(b)
	}
	listTab.RLock()
	h, ok := listTab.lookup[string(b)]
	listTab.RUnlock()
	if ok {
		*bp = b
		listKeyScratch.Put(bp)
		return h
	}
	listTab.Lock()
	defer listTab.Unlock()
	if h, ok := listTab.lookup[string(b)]; ok {
		*bp = b
		listKeyScratch.Put(bp)
		return h
	}
	//exspanlint:alloc-ok first sight of this list: the dedup key is copied once
	key := string(b)
	*bp = b
	listKeyScratch.Put(bp)
	//exspanlint:alloc-ok first sight of this list: the table row is built once
	enc := make([]byte, 0, 1+len(key))
	enc = append(enc, byte(KindList))
	enc = append(enc, key...)
	h = listTab.next
	listTab.next++
	// The elems slice is retained, not copied: List documents that callers
	// must not mutate the slice after construction.
	listTab.store.put(h, listEntry{elems: elems, key: key, enc: enc, chash: fnv1a(fnvOffset64, enc)})
	listTab.lookup[key] = h
	return h
}

// internPayload interns a provenance annotation by its canonical bytes. A
// nil payload interns like an empty one (they are already equal under
// Compare); the first payload seen for a given byte string is the one every
// equal value resolves to.
func internPayload(p Payload) uint32 {
	var key string
	if p != nil {
		key = string(p.EncodePayload())
	}
	provTab.RLock()
	h, ok := provTab.lookup[key]
	provTab.RUnlock()
	if ok {
		return h
	}
	provTab.Lock()
	defer provTab.Unlock()
	if h, ok := provTab.lookup[key]; ok {
		return h
	}
	enc := make([]byte, 0, 1+uvarintLen(uint64(len(key)))+len(key))
	enc = append(enc, byte(KindProv))
	enc = binary.AppendUvarint(enc, uint64(len(key)))
	enc = append(enc, key...)
	h = provTab.next
	provTab.next++
	provTab.store.put(h, payloadEntry{p: p, key: key, enc: enc, chash: fnv1a(fnvOffset64, enc)})
	provTab.lookup[key] = h
	return h
}

// IDHandle is the interned form of a 20-byte ID: a process-local, stable
// 32-bit name. Handles are canonical — two IDs are equal iff their handles
// are — which lets ID-keyed tables (the provenance store partitions) hash
// 4 bytes instead of 20. The zero IDHandle means "no handle". Handles never
// appear on the wire.
type IDHandle uint32

// InternID returns the canonical handle for id, interning it on first use.
func InternID(id ID) IDHandle { return IDHandle(internID(id)) }

// LookupID returns the handle for an already-interned id without interning
// it. Read-only query paths use it so probing for an unknown ID does not
// grow the table.
//
//exspan:hotpath
func LookupID(id ID) (IDHandle, bool) {
	idTab.RLock()
	h, ok := idTab.lookup[id]
	idTab.RUnlock()
	return IDHandle(h), ok
}

// ID resolves the handle back to its digest. The handle must have come from
// InternID or LookupID; resolving the zero handle panics.
func (h IDHandle) ID() ID {
	return idTab.store.get(uint32(h)).id
}

// InternStats reports the table populations (strings, ids, lists, payloads).
// It exists for tests and for memory diagnostics; see the interning notes at
// the top of this file for why the tables only grow.
func InternStats() (strs, ids, lists, payloads int) {
	strTab.RLock()
	strs = int(strTab.next - 1)
	strTab.RUnlock()
	idTab.RLock()
	ids = int(idTab.next - 1)
	idTab.RUnlock()
	listTab.RLock()
	lists = int(listTab.next - 1)
	listTab.RUnlock()
	provTab.RLock()
	payloads = int(provTab.next - 1)
	provTab.RUnlock()
	return
}
