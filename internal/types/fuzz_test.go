package types

import (
	"bytes"
	"testing"
)

// FuzzDecodeValue feeds arbitrary bytes through the wire-format decoder and
// pins the two properties the stack depends on (docs/wire-format.md):
//
//  1. No panic on any input (truncated, malformed, hostile).
//  2. Canonical re-encode: any successfully decoded value re-encodes to
//     exactly the bytes that were consumed, and WireSize matches. This is
//     the round-trip half of the "wire encoding unchanged" acceptance
//     criterion — the interning layer must be invisible in the byte stream.
//
// Run with `go test -fuzz FuzzDecodeValue ./internal/types` to explore; the
// seed corpus covers every kind.
func FuzzDecodeValue(f *testing.F) {
	seeds := []Value{
		Nil(), Bool(true), Int(-9), Str("seed"), Node(12),
		IDVal(HashString("seed")),
		List(Int(1), Str("x"), List(Node(2), Nil())),
		Prov(OpaquePayload([]byte{1, 2, 3})),
	}
	for _, v := range seeds {
		f.Add(v.Encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{6, 0xff, 0xff, 0xff, 0xff, 0x0f}) // huge list count
	f.Fuzz(func(t *testing.T, b []byte) {
		v, n, err := DecodeValue(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		re := v.Encode(nil)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode mismatch: decoded %s from %v, re-encoded %v", v, b[:n], re)
		}
		if v.WireSize() != n {
			t.Fatalf("WireSize %d != consumed %d for %s", v.WireSize(), n, v)
		}
	})
}

// FuzzDecodeTuple is the tuple-level analogue of FuzzDecodeValue.
func FuzzDecodeTuple(f *testing.F) {
	t1 := NewTuple("link", Node(0), Node(1), Int(3))
	t2 := NewTuple("ruleExec", Node(2), IDVal(HashString("r")), Str("sp2"),
		List(IDVal(HashString("a")), IDVal(HashString("b"))))
	f.Add(t1.Encode(nil))
	f.Add(t2.Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		tu, n, err := DecodeTuple(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		re := tu.Encode(nil)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("tuple re-encode mismatch for %s", tu)
		}
		if tu.WireSize() != n {
			t.Fatalf("WireSize %d != consumed %d for %s", tu.WireSize(), n, tu)
		}
	})
}
