package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/apps"
	"repro/internal/types"
)

// These tests pin the convergent-deletion contract (ISSUE 5, §4.2 cascaded
// deletions): retracting a link that keeps the network connected but kills
// the cheapest route under the unbounded-cost MINCOST program — the classic
// count-to-infinity trigger — must terminate with the correct post-churn
// costs, identically across the serial engine and sharded schedulers in
// every provenance mode; and retracting every link must leave zero tuples,
// prov rows, ruleExec rows, reverse edges and aggregate groups.

// dredSquare is a 4-node cycle with a chord: 0-1(1), 1-2(1), 2-3(1),
// 3-0(1), 0-2(5). Deleting 0-1 disconnects nothing (0 still reaches 1 via
// 3-2) but kills the cheapest 0↔1 and 0↔2 routes, forcing retraction to
// chase re-derivations around the cycle.
func dredSquare() (edges [][2]int, costs map[[2]int]int64) {
	edges = [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}}
	costs = map[[2]int]int64{
		{0, 1}: 1, {1, 2}: 1, {2, 3}: 1, {0, 3}: 1, {0, 2}: 5,
	}
	return edges, costs
}

// releaseRandom releases a random slice of this node's staged retraction
// work — shuffled staged lists, a randomly chosen occupied stratum, a small
// random item budget, sometimes stopping with work still staged —
// deliberately violating the ascending stratified wave order that
// Node.ReleaseStaged uses. Release-time validation must make the fixpoint
// identical anyway.
func (n *Node) releaseRandom(rng *rand.Rand) bool {
	n.releasing = true
	defer func() { n.releasing = false }()
	any := false
	for _, sh := range n.shards {
		rng.Shuffle(len(sh.stagedEnts), func(i, j int) {
			sh.stagedEnts[i], sh.stagedEnts[j] = sh.stagedEnts[j], sh.stagedEnts[i]
		})
		rng.Shuffle(len(sh.stagedGroups), func(i, j int) {
			sh.stagedGroups[i], sh.stagedGroups[j] = sh.stagedGroups[j], sh.stagedGroups[i]
		})
		for {
			occupied := map[int]bool{}
			for _, e := range sh.stagedEnts {
				occupied[sh.stratumOf(e.tuple.Pred)] = true
			}
			for i := range sh.stagedGroups {
				occupied[sh.stagedGroups[i].rule.headStratum] = true
			}
			if len(occupied) == 0 {
				break
			}
			strata := make([]int, 0, len(occupied))
			for s := range occupied {
				strata = append(strata, s)
			}
			sort.Ints(strata)
			lim := 1 + rng.Intn(3)
			if sh.releaseStratum(strata[rng.Intn(len(strata))], &lim) {
				any = true
			}
			if rng.Intn(2) == 0 {
				break // leave the rest staged for a later pass
			}
		}
	}
	return any
}

// anyStaged reports whether any node still holds staged retraction work.
func anyStaged(nodes []*Node) bool {
	for _, n := range nodes {
		for _, sh := range n.shards {
			if len(sh.stagedEnts) > 0 || len(sh.stagedGroups) > 0 {
				return true
			}
		}
	}
	return false
}

// settleRandomized is Settle with releaseRandom in place of ReleaseStaged:
// nodes release in a random order, each a random subset of its staged work,
// looping until nothing is staged anywhere and no release produced work.
func settleRandomized(rng *rand.Rand, nodes []*Node) {
	for {
		released := false
		for _, i := range rng.Perm(len(nodes)) {
			n := nodes[i]
			if n.Err == nil && n.releaseRandom(rng) {
				n.Flush()
				released = true
			}
		}
		if !released && !anyStaged(nodes) {
			return
		}
	}
}

// TestReleaseOrderIndependence is the confluence property test behind the
// stratified batched release: driving the dredSquare churn script while
// releasing staged suspects and aggregate promotions in random permutations
// (random node order, shuffled lists, random strata, random batch sizes)
// must reach exactly the fixpoint of the batched stratified order, in all
// four provenance modes, on serial and multi-shard nodes. The wave order of
// Node.ReleaseStaged is a round-trip optimization, never a correctness
// requirement.
func TestReleaseOrderIndependence(t *testing.T) {
	prog, err := Compile(apps.MinCost())
	if err != nil {
		t.Fatal(err)
	}
	edges, costs := dredSquare()
	churn := [][2]int{{0, 3}, {0, 1}}
	preds := []string{"link", "pathCost", "bestPathCost"}

	runRandom := func(t *testing.T, mode ProvMode, shards int, seed int64) []*Node {
		t.Helper()
		rng := rand.New(rand.NewSource(seed))
		tr := &refTransport{}
		nodes := make([]*Node, 4)
		for i := range nodes {
			nodes[i] = NewNodeSharded(types.NodeID(i), prog, mode, tr, nil, shards)
		}
		tr.nodes = nodes
		for _, e := range edges {
			cost := edgeCost(e, costs)
			nodes[e[0]].InsertBase(linkTup(e[0], e[1], cost))
			nodes[e[1]].InsertBase(linkTup(e[1], e[0], cost))
		}
		settleRandomized(rng, nodes)
		for i, e := range churn {
			cost := edgeCost(e, costs)
			nodes[e[0]].DeleteBase(linkTup(e[0], e[1], cost))
			nodes[e[1]].DeleteBase(linkTup(e[1], e[0], cost))
			settleRandomized(rng, nodes)
			if i%2 == 0 {
				nodes[e[0]].InsertBase(linkTup(e[0], e[1], cost))
				nodes[e[1]].InsertBase(linkTup(e[1], e[0], cost))
				settleRandomized(rng, nodes)
			}
		}
		for _, n := range nodes {
			if n.Err != nil {
				t.Fatalf("randomized run (seed %d): %v", seed, n.Err)
			}
		}
		return nodes
	}

	for _, mode := range []ProvMode{ProvNone, ProvReference, ProvValue, ProvCentralized} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := runSerialRef(t, prog, mode, 4, edges, churn, costs)
			for _, shards := range []int{1, 3} {
				for seed := int64(1); seed <= 4; seed++ {
					got := runRandom(t, mode, shards, seed)
					diffStates(t, fmt.Sprintf("%s shards=%d seed=%d", mode, shards, seed), 4, preds,
						func(i int) *Node { return ref[i] }, func(i int) *Node { return got[i] })
				}
			}
		})
	}
}

func TestConvergentDeletionCyclicMinCost(t *testing.T) {
	prog, err := Compile(apps.MinCost())
	if err != nil {
		t.Fatal(err)
	}
	edges, costs := dredSquare()
	// Churn script: index 0 ({0,3}) is deleted and re-inserted (equivalence
	// harness re-adds even indexes), index 1 ({0,1}) is retracted for good.
	churn := [][2]int{{0, 3}, {0, 1}}
	preds := []string{"link", "pathCost", "bestPathCost"}
	for _, mode := range []ProvMode{ProvNone, ProvReference, ProvValue, ProvCentralized} {
		t.Run(mode.String(), func(t *testing.T) {
			equivalenceOn(t, prog, mode, preds, 4, edges, churn, costs)
		})
	}

	// Correctness of the surviving costs (not just serial/sharded
	// agreement): all-pairs shortest paths of the square minus 0-1.
	serial := runSerialRef(t, prog, ProvReference, 4, edges, churn, costs)
	want := map[string]int64{
		"0-1": 3, "0-2": 2, "0-3": 1,
		"1-0": 3, "1-2": 1, "1-3": 2,
		"2-0": 2, "2-1": 1, "2-3": 1,
		"3-0": 1, "3-1": 2, "3-2": 1,
		// Self-routes: MINCOST also derives X→X via the symmetric 2-cycle
		// of each surviving link.
		"0-0": 2, "1-1": 2, "2-2": 2, "3-3": 2,
	}
	got := map[string]int64{}
	for i, n := range serial {
		for _, tu := range n.Tuples("bestPathCost") {
			got[fmt.Sprintf("%d-%d", i, tu.Args[1].AsNode())] = tu.Args[2].AsInt()
		}
	}
	if len(got) != len(want) {
		t.Fatalf("bestPathCost count = %d, want %d (got %v)", len(got), len(want), got)
	}
	for k, c := range want {
		if got[k] != c {
			t.Errorf("bestPathCost %s = %d, want %d", k, got[k], c)
		}
	}
}

// TestFullRetractionCyclicMinCostLeavesNoState retracts every link of the
// cyclic square, one at a time with interleaved fixpoints, on serial nodes
// and on sharded schedulers, in every provenance mode — and requires the
// engine to end completely empty: no tuples, no prov or ruleExec rows, no
// reverse edges, no aggregate groups. Before the two-phase retraction
// discipline this diverged (count-to-infinity) for any deletion that kept
// the network connected.
func TestFullRetractionCyclicMinCostLeavesNoState(t *testing.T) {
	prog, err := Compile(apps.MinCost())
	if err != nil {
		t.Fatal(err)
	}
	edges, costs := dredSquare()
	preds := []string{"link", "pathCost", "bestPathCost"}

	checkEmpty := func(t *testing.T, label string, nodes []*Node) {
		t.Helper()
		for i, n := range nodes {
			for _, pred := range preds {
				if c := n.TupleCount(pred); c != 0 {
					t.Errorf("%s: node %d: %d %s tuples survive full retraction", label, i, c, pred)
				}
			}
			if c := n.Store.NumProv(); c != 0 {
				t.Errorf("%s: node %d: %d prov rows leak", label, i, c)
			}
			if c := n.Store.NumRuleExec(); c != 0 {
				t.Errorf("%s: node %d: %d ruleExec rows leak", label, i, c)
			}
			if c := n.Store.NumParents(); c != 0 {
				t.Errorf("%s: node %d: %d reverse edges leak", label, i, c)
			}
			if c := n.AggGroupCount(); c != 0 {
				t.Errorf("%s: node %d: %d aggregate groups leak", label, i, c)
			}
		}
	}

	for _, mode := range []ProvMode{ProvNone, ProvReference, ProvValue, ProvCentralized} {
		// Serial engine under the synchronous transport.
		nodes := runSerialRef(t, prog, mode, 4, edges, nil, costs)
		for _, e := range edges {
			cost := edgeCost(e, costs)
			nodes[e[0]].DeleteBase(linkTup(e[0], e[1], cost))
			nodes[e[1]].DeleteBase(linkTup(e[1], e[0], cost))
			Settle(nodes...)
		}
		checkEmpty(t, "serial "+mode.String(), nodes)

		// Sharded schedulers.
		for _, shards := range []int{1, 4} {
			s := NewScheduler(prog, mode, 4, shards, 0)
			for _, e := range edges {
				cost := edgeCost(e, costs)
				s.InsertBase(types.NodeID(e[0]), linkTup(e[0], e[1], cost))
				s.InsertBase(types.NodeID(e[1]), linkTup(e[1], e[0], cost))
			}
			if err := s.Run(); err != nil {
				t.Fatalf("mode %s shards %d: %v", mode, shards, err)
			}
			if s.Node(0).TupleCount("bestPathCost") == 0 {
				t.Fatalf("mode %s shards %d: nothing derived", mode, shards)
			}
			for _, e := range edges {
				cost := edgeCost(e, costs)
				s.DeleteBase(types.NodeID(e[0]), linkTup(e[0], e[1], cost))
				s.DeleteBase(types.NodeID(e[1]), linkTup(e[1], e[0], cost))
				if err := s.Run(); err != nil {
					t.Fatalf("mode %s shards %d: %v", mode, shards, err)
				}
			}
			sn := make([]*Node, s.NumNodes())
			for i := range sn {
				sn[i] = s.Node(i)
			}
			checkEmpty(t, fmt.Sprintf("sched %s shards=%d", mode, shards), sn)
		}
	}
}
