package engine

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/types"
)

// This file is the EXECUTION half of the worker layer: evaluating a rule's
// delta plan for one triggering tuple and emitting head derivations. All
// intermediate state (environment, matched tuples, payloads, lookup keys)
// lives in per-shard scratch arenas — one rule firing performs no slice
// allocation of its own, which the hotpath_test.go fences pin.
//
// Two probing disciplines share this code:
//
//   - Serial (single shard): indexes contain exactly the visible tuples and
//     a probe admits every candidate — the classic pipelined semi-naïve
//     (PSN) evaluation, bit-identical to the pre-sharding engine.
//   - Rounds (sharded): the fire phase runs against frozen state that
//     includes the whole round's batch. To fire each joint derivation
//     exactly once, a delta at body position p joins atoms q < p against
//     NEW state (end of round) and atoms q > p against OLD state (start of
//     round) — the standard batched semi-naïve decomposition
//     ΔH = Σ_p  A₁ⁿᵉʷ ⋈ … ⋈ A₍p₋₁₎ⁿᵉʷ ⋈ ΔA_p ⋈ A₍p₊₁₎ᵒˡᵈ ⋈ … ⋈ A_kᵒˡᵈ,
//     which telescopes to the exact net change whatever the batch order.
//     Event deltas (never materialized, so never probed) always see NEW
//     state: an event observes the batch it arrived with.

// firePlan evaluates the delta plan of (rule, pos) for tuple t and emits
// head derivations.
//
//exspan:hotpath
func (sh *shard) firePlan(rule *CompiledRule, pos int, t types.Tuple, sign int8,
	deltaEntry *entry, deltaPayload bdd.Ref) {

	pl := sh.n.plans[rule.idx][pos] // the node's ACTIVE plan (planner.go)
	env := sh.envBuf[:rule.numVars]
	if !bindTuple(pl.deltaBinds, t, env) {
		return
	}
	matched := sh.matchedBuf[:len(rule.atoms)]
	ments := sh.entBuf[:len(rule.atoms)]
	payloads := sh.payloadBuf[:len(rule.atoms)]
	for i := range ments {
		ments[i] = nil
	}
	matched[pos] = t
	ments[pos] = deltaEntry
	payloads[pos] = deltaPayload
	sh.fireAtomPos = pos
	sh.fireIsEvent = deltaEntry == nil
	sh.execPlan(rule, pl, 0, sign, env, matched, ments, payloads)
}

// execPlan runs plan steps from step onward. It is a plain recursive method
// rather than a closure so the recursion allocates nothing.
//
//exspan:hotpath
func (sh *shard) execPlan(rule *CompiledRule, pl *plan, step int, sign int8,
	env []types.Value, matched []types.Tuple, ments []*entry, payloads []bdd.Ref) {

	if sh.err != nil {
		return
	}
	if step == len(pl.steps) {
		sh.emitDerivation(rule, env, matched, ments, payloads, sign)
		return
	}
	st := &pl.steps[step]
	switch st.kind {
	case stepAssign:
		v, err := st.expr(env)
		if err != nil {
			//exspanlint:alloc-ok error path: evaluation aborts on the first failure
			sh.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
			return
		}
		env[st.assignSlot] = v
		sh.execPlan(rule, pl, step+1, sign, env, matched, ments, payloads)
	case stepCond:
		v, err := st.expr(env)
		if err != nil {
			//exspanlint:alloc-ok error path: evaluation aborts on the first failure
			sh.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
			return
		}
		// Pass/fail tally for the planner's measured selectivity (an index
		// bump on shard-owned counters; folded at quiescence, stats.go).
		cs := &sh.condStats[rule.condBase+st.condID]
		cs.evals++
		if v.Truthy() {
			cs.passes++
			sh.execPlan(rule, pl, step+1, sign, env, matched, ments, payloads)
		}
	case stepJoin:
		if sh.n.rounds() {
			sh.execJoinRound(rule, pl, st, step, sign, env, matched, ments, payloads)
			return
		}
		// Probe the index handle bound at plan-bind time: no index-ID
		// formatting, and the lookup key is built in a reusable buffer
		// (the map access on []byte bytes is allocation-free). A nil
		// handle means the joined atom is an event, which never
		// materializes.
		idx := sh.joinIdx[st.joinID]
		if idx == nil {
			return
		}
		sh.keyBuf = st.appendLookupKey(sh.keyBuf[:0], env)
		cands := idx.lookup(sh.keyBuf)
		js := &sh.joinStats[st.joinID]
		js.probes++
		js.hits += int64(len(cands))
		for _, cand := range cands {
			if !bindTuple(st.binds, cand.tuple, env) {
				continue
			}
			matched[st.atom] = cand.tuple
			ments[st.atom] = cand
			payloads[st.atom] = cand.payload
			sh.execPlan(rule, pl, step+1, sign, env, matched, ments, payloads)
		}
	}
}

// execJoinRound is the stepJoin case under the sharded round discipline: the
// probed relation is partitioned across every shard of the node, so the key
// is looked up in each shard's index handle (in shard order, keeping
// candidate enumeration deterministic), and candidates are admitted against
// NEW or OLD visibility depending on the probed atom's position relative to
// the firing delta (see the file comment).
//
//exspan:hotpath
func (sh *shard) execJoinRound(rule *CompiledRule, pl *plan, st *planStep, step int, sign int8,
	env []types.Value, matched []types.Tuple, ments []*entry, payloads []bdd.Ref) {

	admitNew := st.atom < sh.fireAtomPos || sh.fireIsEvent
	curRound := sh.n.curRound
	// Unlike the serial path (one lookup per step), the key is consulted
	// once per peer shard, so it lives in a per-step buffer the deeper
	// recursion cannot clobber.
	key := st.appendLookupKey(sh.rs.keyBufs[step][:0], env)
	sh.rs.keyBufs[step] = key
	js := &sh.joinStats[st.joinID]
	js.probes++ // one logical probe per step, not per peer shard
	for _, peer := range sh.n.shards {
		idx := peer.joinIdx[st.joinID]
		if idx == nil {
			return // event atom: no shard materializes it
		}
		// Occupancy filter: a partition holding nothing of this predicate
		// (on these key positions) cannot contribute candidates — skip the
		// key hash and map probe entirely. Entries awaiting the deferred
		// merge-barrier unindex are still bucketed, so an emptiness check
		// can never hide a tuple an OLD-state probe must still admit.
		if len(idx.buckets) == 0 {
			continue
		}
		cands := idx.lookup(key)
		js.hits += int64(len(cands))
		for _, cand := range cands {
			vis := cand.visible
			if !admitNew && cand.touchRound == curRound {
				vis = cand.startVis
			}
			if !vis {
				continue
			}
			if !bindTuple(st.binds, cand.tuple, env) {
				continue
			}
			matched[st.atom] = cand.tuple
			ments[st.atom] = cand
			payloads[st.atom] = cand.payload
			sh.execPlan(rule, pl, step+1, sign, env, matched, ments, payloads)
		}
	}
}

// emitDerivation computes the head tuple for one complete join result and
// routes the delta (locally or over the transport), maintaining provenance
// per the configured mode. Input VIDs come from the matched entries' caches;
// only tuples never stored on this node (event inputs) are hashed here.
//
//exspan:hotpath
func (sh *shard) emitDerivation(rule *CompiledRule, env []types.Value,
	matched []types.Tuple, ments []*entry, payloads []bdd.Ref, sign int8) {

	n := sh.n
	sh.rulesFired++
	args := sh.allocArgs(len(rule.headCode))
	for i, code := range rule.headCode {
		v, err := code(env)
		if err != nil {
			//exspanlint:alloc-ok error path: evaluation aborts on the first failure
			sh.fail(fmt.Errorf("rule %s head: %w", rule.Label, err))
			return
		}
		args[i] = v
	}
	head := types.Tuple{Pred: rule.HeadPred, Args: args}
	dst := args[rule.HeadLocPos].AsNode()
	if dst < 0 {
		//exspanlint:alloc-ok error path: evaluation aborts on the first failure
		sh.fail(fmt.Errorf("rule %s: head location is not a node", rule.Label))
		return
	}

	inputVIDs := sh.vidBuf[:len(matched)]
	cacheable := true
	for i := range matched {
		if ments[i] != nil {
			inputVIDs[i], sh.hashBuf = ments[i].VIDBuf(sh.hashBuf)
		} else {
			// Event input: transient, no entry to cache on, and usually a
			// one-off — keep it out of the RID memo and intern table.
			cacheable = false
			inputVIDs[i], sh.hashBuf = matched[i].VIDBuf(sh.hashBuf)
		}
	}
	var rid types.ID
	var ridh types.IDHandle
	if cacheable {
		rid, ridh = sh.ruleExecID(rule, ments, inputVIDs)
	} else {
		rid, sh.ridBuf = types.RuleExecIDBuf(rule.Label, n.ID, inputVIDs, sh.ridBuf)
	}

	if sign != Update {
		switch n.Mode {
		case ProvReference:
			// Reverse (parent) edges are installed by the query processor
			// when it caches a traversal (§6.1), so a derivation records
			// only its ruleExec row — no head hashing, no per-input edge
			// maintenance on this path.
			sh.ruleExecRow(ridh, rid, rule.Label, inputVIDs, sign)
		case ProvCentralized:
			// The deriving node knows the whole derivation: it relays both
			// the ruleExec row and the head's prov row to the server.
			var headVID types.ID
			headVID, sh.hashBuf = head.VIDBuf(sh.hashBuf)
			n.sendRuleExecRow(rid, rule.Label, inputVIDs, sign)
			n.sendProvRow(dst, headVID, rid, n.ID, sign)
		}
	}

	var payload bdd.Ref
	if n.Mode == ProvValue {
		payload = bdd.True
		for _, p := range payloads {
			payload = n.Mgr.And(payload, p)
		}
	}
	sh.route(head, dst, sign, rid, payload)
}

// ruleExecRow applies (or, under rounds, defers) one ruleExec-partition row
// change. In serial mode the row goes straight to this shard's partition. In
// round mode inserts and deletes of the same RID may fire on different
// shards (whichever shard owned the triggering delta), so the ops are
// buffered and replayed at the merge barrier into the RID's home partition,
// keeping each add/del pair in one map.
//
//exspan:hotpath
func (sh *shard) ruleExecRow(ridh types.IDHandle, rid types.ID, label string, inputVIDs []types.ID, sign int8) {
	if sh.n.rounds() {
		sh.deferRuleExecRow(ridh, rid, label, inputVIDs, sign)
		return
	}
	switch {
	case sign == Insert && ridh != 0:
		sh.store.AddRuleExecH(ridh, rid, label, inputVIDs)
	case sign == Insert:
		sh.store.AddRuleExec(rid, label, inputVIDs)
	case ridh != 0:
		sh.store.DelRuleExecH(ridh)
	default:
		sh.store.DelRuleExec(rid)
	}
}

// ridCacheVal is one memoized rule-execution identifier: the digest plus
// its interned handle (which keys the ruleExec store partition).
type ridCacheVal struct {
	id types.ID
	h  types.IDHandle
}

// ruleExecID returns the RID for a derivation whose inputs are all stored
// entries, computing the SHA-1 once per distinct (rule, inputs) combination
// and replaying it from the memo afterwards. The memo key is the rule index
// followed by the inputs' interned VID handles — equal handles mean equal
// VIDs, and the node's own ID (part of the hash) is constant per node.
//
//exspan:hotpath
func (sh *shard) ruleExecID(rule *CompiledRule, ments []*entry, inputVIDs []types.ID) (types.ID, types.IDHandle) {
	k := sh.ridKey[:0]
	k = append(k, byte(rule.idx), byte(rule.idx>>8), byte(rule.idx>>16), byte(rule.idx>>24))
	for _, e := range ments {
		h := e.vidHandle()
		k = append(k, byte(h), byte(h>>8), byte(h>>16), byte(h>>24))
	}
	sh.ridKey = k
	if c, ok := sh.ridCache[string(k)]; ok {
		return c.id, c.h
	}
	var rid types.ID
	rid, sh.ridBuf = types.RuleExecIDBuf(rule.Label, sh.n.ID, inputVIDs, sh.ridBuf)
	c := ridCacheVal{id: rid, h: types.InternID(rid)}
	//exspanlint:alloc-ok memo miss: the key string is copied once per distinct (rule, inputs)
	sh.ridCache[string(k)] = c
	return c.id, c.h
}

// route delivers a derived delta to its destination node: enqueued locally
// when the head lives here, shipped through the transport otherwise. Under
// rounds both paths are buffered on the firing shard and handed over at the
// merge barrier in shard-index order — except while the node is releasing
// staged re-derivations, which happens between rounds: those deltas go
// straight to their owner shard's ring (and the transport), where the next
// round picks them up.
//
//exspan:hotpath
func (sh *shard) route(head types.Tuple, dst types.NodeID, sign int8, rid types.ID, payload bdd.Ref) {
	n := sh.n
	if dst == n.ID {
		d := localDelta{tuple: head, sign: sign, rid: rid, rloc: n.ID, payload: payload}
		switch {
		case n.rounds() && !n.releasing:
			dst := n.ownerIdx(d.tuple)
			sh.rs.outLocal[dst] = append(sh.rs.outLocal[dst], d)
		case n.rounds():
			n.ownerShard(d.tuple).enqueue(d)
		default:
			sh.enqueue(d)
		}
		return
	}
	m := n.newMessage()
	m.Tuple, m.Delta = head, sign
	switch n.Mode {
	case ProvReference:
		m.HasRef, m.RID, m.RLoc = true, rid, n.ID
	case ProvValue:
		// The derivation key still travels so the receiver can maintain
		// its per-derivation payloads; the dominant cost is the payload.
		m.HasRef, m.RID, m.RLoc = true, rid, n.ID
		m.Payload = n.Mgr.Encode(payload, nil)
	}
	if n.rounds() && !n.releasing {
		sh.rs.outMsgs = append(sh.rs.outMsgs, outMsg{to: dst, m: m})
		return
	}
	n.Transport.Send(n.ID, dst, m)
}
