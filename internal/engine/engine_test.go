package engine

import (
	"math/rand"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/types"
)

// testNet is a synchronous multi-node harness: messages are queued and
// drained FIFO, simulating instantaneous delivery.
type testNet struct {
	nodes []*Node
	queue []testMsg
	busy  bool
}

type testMsg struct {
	from, to types.NodeID
	m        *Message
}

func (tn *testNet) Send(from, to types.NodeID, m *Message) {
	// Serialize through the codec to exercise the wire path.
	enc := m.Encode(nil)
	dec, err := DecodeMessage(enc)
	if err != nil {
		panic(err)
	}
	if len(enc) != m.WireSize() {
		panic("wire size mismatch")
	}
	tn.queue = append(tn.queue, testMsg{from, to, dec})
	tn.drain()
}

func (tn *testNet) drain() {
	if tn.busy {
		return
	}
	tn.busy = true
	defer func() { tn.busy = false }()
	for len(tn.queue) > 0 {
		q := tn.queue[0]
		tn.queue = tn.queue[1:]
		tn.nodes[q.to].HandleMessage(q.from, q.m)
	}
}

func newTestNet(t *testing.T, src string, n int, mode ProvMode) *testNet {
	t.Helper()
	prog, err := Compile(ndlog.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	tn := &testNet{}
	for i := 0; i < n; i++ {
		tn.nodes = append(tn.nodes, NewNode(types.NodeID(i), prog, mode, tn, nil))
	}
	return tn
}

func (tn *testNet) checkErr(t *testing.T) {
	t.Helper()
	for _, n := range tn.nodes {
		if n.Err != nil {
			t.Fatalf("node %s: %v", n.ID, n.Err)
		}
	}
}

func tuples(n *Node, pred string) []string {
	var out []string
	if rel := n.Table(pred); rel != nil {
		for _, tu := range rel.Tuples() {
			out = append(out, tu.String())
		}
	}
	return out
}

func TestLocalJoin(t *testing.T) {
	tn := newTestNet(t, `
r1 reach(@X,Y) :- edge(@X,Y).
r2 reach(@X,Z) :- edge(@X,Y), reach2(@X,Y,Z).
`, 1, ProvNone)
	n := tn.nodes[0]
	n.InsertBase(types.NewTuple("edge", types.Node(0), types.Int(1)))
	n.InsertBase(types.NewTuple("reach2", types.Node(0), types.Int(1), types.Int(9)))
	tn.checkErr(t)
	got := tuples(n, "reach")
	if len(got) != 2 {
		t.Fatalf("reach = %v, want 2 tuples", got)
	}
}

func TestDistributedRuleShipsHead(t *testing.T) {
	tn := newTestNet(t, `r1 at(@Y,X) :- edge(@X,Y).`, 2, ProvReference)
	tn.nodes[0].InsertBase(types.NewTuple("edge", types.Node(0), types.Node(1)))
	tn.checkErr(t)
	if got := tuples(tn.nodes[1], "at"); len(got) != 1 || got[0] != "at(@b,a)" {
		t.Fatalf("at@b = %v", got)
	}
	// The receiving node holds a prov entry pointing back to the sender.
	vid := types.NewTuple("at", types.Node(1), types.Node(0)).VID()
	derivs := tn.nodes[1].Store.Derivations(vid)
	if len(derivs) != 1 || derivs[0].RLoc != 0 {
		t.Fatalf("prov at receiver = %+v", derivs)
	}
	if _, ok := tn.nodes[0].Store.RuleExecOf(derivs[0].RID); !ok {
		t.Fatal("ruleExec missing at deriving node")
	}
}

func TestConditionsAndAssignments(t *testing.T) {
	tn := newTestNet(t, `
r1 out(@X,C) :- in(@X,A,B), C = A + B, C > 5, A != B.
`, 1, ProvNone)
	n := tn.nodes[0]
	n.InsertBase(types.NewTuple("in", types.Node(0), types.Int(2), types.Int(2))) // A == B
	n.InsertBase(types.NewTuple("in", types.Node(0), types.Int(2), types.Int(3))) // C = 5, not > 5
	n.InsertBase(types.NewTuple("in", types.Node(0), types.Int(3), types.Int(4))) // C = 7: passes
	tn.checkErr(t)
	if got := tuples(n, "out"); len(got) != 1 || got[0] != "out(@a,7)" {
		t.Fatalf("out = %v", got)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	tn := newTestNet(t, `r1 loop(@X) :- edge(@X,X).`, 1, ProvNone)
	n := tn.nodes[0]
	n.InsertBase(types.NewTuple("edge", types.Node(0), types.Node(0)))
	n.InsertBase(types.NewTuple("edge", types.Node(0), types.Node(1)))
	tn.checkErr(t)
	if got := tuples(n, "loop"); len(got) != 1 {
		t.Fatalf("loop = %v, want exactly the self-edge", got)
	}
}

func TestDeletionCascade(t *testing.T) {
	tn := newTestNet(t, `
r1 d1(@X,Y) :- base(@X,Y).
r2 d2(@X,Y) :- d1(@X,Y), other(@X).
`, 1, ProvReference)
	n := tn.nodes[0]
	b := types.NewTuple("base", types.Node(0), types.Int(1))
	n.InsertBase(types.NewTuple("other", types.Node(0)))
	n.InsertBase(b)
	tn.checkErr(t)
	if len(tuples(n, "d2")) != 1 {
		t.Fatal("d2 not derived")
	}
	n.DeleteBase(b)
	tn.checkErr(t)
	if got := tuples(n, "d1"); len(got) != 0 {
		t.Fatalf("d1 survived deletion: %v", got)
	}
	if got := tuples(n, "d2"); len(got) != 0 {
		t.Fatalf("d2 survived cascade: %v", got)
	}
	// Provenance fully retracted too.
	if n.Store.NumProv() != 1 || n.Store.NumRuleExec() != 0 {
		t.Fatalf("provenance leak: %d prov (want 1: other), %d ruleExec",
			n.Store.NumProv(), n.Store.NumRuleExec())
	}
}

func TestMultipleDerivationsSurviveSingleDeletion(t *testing.T) {
	tn := newTestNet(t, `
r1 d(@X) :- p(@X,Y).
`, 1, ProvReference)
	n := tn.nodes[0]
	p1 := types.NewTuple("p", types.Node(0), types.Int(1))
	p2 := types.NewTuple("p", types.Node(0), types.Int(2))
	n.InsertBase(p1)
	n.InsertBase(p2)
	tn.checkErr(t)
	vid := types.NewTuple("d", types.Node(0)).VID()
	if len(n.Store.Derivations(vid)) != 2 {
		t.Fatalf("derivations = %d, want 2", len(n.Store.Derivations(vid)))
	}
	n.DeleteBase(p1)
	tn.checkErr(t)
	if got := tuples(n, "d"); len(got) != 1 {
		t.Fatalf("d should survive with one derivation left: %v", got)
	}
	if len(n.Store.Derivations(vid)) != 1 {
		t.Fatalf("derivations after delete = %d, want 1", len(n.Store.Derivations(vid)))
	}
	n.DeleteBase(p2)
	tn.checkErr(t)
	if got := tuples(n, "d"); len(got) != 0 {
		t.Fatalf("d should vanish: %v", got)
	}
}

func TestMinAggregateIncremental(t *testing.T) {
	tn := newTestNet(t, `agg best(@X,min<C>) :- val(@X,C).`, 1, ProvReference)
	n := tn.nodes[0]
	v5 := types.NewTuple("val", types.Node(0), types.Int(5))
	v3 := types.NewTuple("val", types.Node(0), types.Int(3))
	v7 := types.NewTuple("val", types.Node(0), types.Int(7))
	n.InsertBase(v5)
	if got := tuples(n, "best"); len(got) != 1 || got[0] != "best(@a,5)" {
		t.Fatalf("best = %v, want 5", got)
	}
	n.InsertBase(v3)
	if got := tuples(n, "best"); len(got) != 1 || got[0] != "best(@a,3)" {
		t.Fatalf("best = %v, want 3", got)
	}
	n.InsertBase(v7)
	if got := tuples(n, "best"); got[0] != "best(@a,3)" {
		t.Fatalf("best = %v, want 3 still", got)
	}
	n.DeleteBase(v3)
	if got := tuples(n, "best"); got[0] != "best(@a,5)" {
		t.Fatalf("best = %v, want back to 5", got)
	}
	n.DeleteBase(v5)
	n.DeleteBase(v7)
	if got := tuples(n, "best"); len(got) != 0 {
		t.Fatalf("best = %v, want empty group removed", got)
	}
	tn.checkErr(t)
}

func TestMinAggregateCarriedAttrs(t *testing.T) {
	tn := newTestNet(t, `agg best(@X,D,min<C,P>) :- route(@X,D,C,P).`, 1, ProvNone)
	n := tn.nodes[0]
	n.InsertBase(types.NewTuple("route", types.Node(0), types.Node(1), types.Int(4), types.Str("viaQ")))
	n.InsertBase(types.NewTuple("route", types.Node(0), types.Node(1), types.Int(2), types.Str("viaP")))
	tn.checkErr(t)
	got := tuples(n, "best")
	if len(got) != 1 || got[0] != "best(@a,b,2,viaP)" {
		t.Fatalf("best = %v, want the arg-min carrying viaP", got)
	}
}

func TestMaxAggregate(t *testing.T) {
	tn := newTestNet(t, `agg top(@X,max<C>) :- val(@X,C).`, 1, ProvNone)
	n := tn.nodes[0]
	n.InsertBase(types.NewTuple("val", types.Node(0), types.Int(5)))
	n.InsertBase(types.NewTuple("val", types.Node(0), types.Int(9)))
	n.InsertBase(types.NewTuple("val", types.Node(0), types.Int(1)))
	tn.checkErr(t)
	if got := tuples(n, "top"); len(got) != 1 || got[0] != "top(@a,9)" {
		t.Fatalf("top = %v", got)
	}
}

func TestCountAggregate(t *testing.T) {
	tn := newTestNet(t, `agg num(@X,COUNT<*>) :- item(@X,Y).`, 1, ProvNone)
	n := tn.nodes[0]
	i1 := types.NewTuple("item", types.Node(0), types.Int(1))
	i2 := types.NewTuple("item", types.Node(0), types.Int(2))
	n.InsertBase(i1)
	n.InsertBase(i2)
	tn.checkErr(t)
	if got := tuples(n, "num"); len(got) != 1 || got[0] != "num(@a,2)" {
		t.Fatalf("num = %v", got)
	}
	n.DeleteBase(i1)
	if got := tuples(n, "num"); got[0] != "num(@a,1)" {
		t.Fatalf("num after delete = %v", got)
	}
	n.DeleteBase(i2)
	if got := tuples(n, "num"); len(got) != 0 {
		t.Fatalf("num after all deleted = %v", got)
	}
}

func TestAggListAggregate(t *testing.T) {
	tn := newTestNet(t, `agg lst(@X,AGGLIST<Y>) :- item(@X,Y).`, 1, ProvNone)
	n := tn.nodes[0]
	n.InsertBase(types.NewTuple("item", types.Node(0), types.Int(3)))
	n.InsertBase(types.NewTuple("item", types.Node(0), types.Int(1)))
	tn.checkErr(t)
	got := tuples(n, "lst")
	if len(got) != 1 || got[0] != "lst(@a,((1),(3)))" {
		t.Fatalf("lst = %v", got)
	}
}

func TestEventTriggersAndIsTransient(t *testing.T) {
	tn := newTestNet(t, `
r1 seen(@X,Y) :- ePing(@X,Y), filter(@X,Y).
`, 1, ProvNone)
	n := tn.nodes[0]
	n.InsertBase(types.NewTuple("filter", types.Node(0), types.Int(1)))
	n.InjectEvent(types.NewTuple("ePing", types.Node(0), types.Int(1)))
	n.InjectEvent(types.NewTuple("ePing", types.Node(0), types.Int(2))) // filtered out
	tn.checkErr(t)
	if got := tuples(n, "seen"); len(got) != 1 {
		t.Fatalf("seen = %v", got)
	}
	if rel := n.Table("ePing"); rel != nil && rel.Len() > 0 {
		t.Fatal("event was materialized")
	}
}

func TestSelfJoinRejected(t *testing.T) {
	_, err := Compile(ndlog.MustParse(`r1 out(@X,Y,Z) :- edge(@X,Y), edge(@X,Z).`))
	if err == nil {
		t.Fatal("self-join accepted; the engine documents it as unsupported")
	}
}

func TestArityMismatchRejected(t *testing.T) {
	_, err := Compile(ndlog.MustParse(`
r1 p(@X) :- q(@X,Y).
r2 p(@X,Y) :- s(@X,Y).
`))
	if err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestDivisionByZeroSurfaces(t *testing.T) {
	tn := newTestNet(t, `r1 out(@X,C) :- in(@X,A,B), C = A / B.`, 1, ProvNone)
	n := tn.nodes[0]
	n.InsertBase(types.NewTuple("in", types.Node(0), types.Int(4), types.Int(0)))
	if n.Err == nil {
		t.Fatal("division by zero not surfaced")
	}
}

// TestIncrementalMatchesNaive is the core maintenance property: after a
// random insert/delete workload, the engine's state equals evaluating the
// surviving base tuples from scratch.
func TestIncrementalMatchesNaive(t *testing.T) {
	const src = `
r1 hop(@X,Y,C) :- edge(@X,Y,C).
r2 reach(@X,Y) :- edge(@X,Y,C).
agg cheap(@X,Y,min<C>) :- hop(@X,Y,C).
`
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		inc := newTestNet(t, src, 1, ProvReference)
		n := inc.nodes[0]
		live := map[string]types.Tuple{}
		for step := 0; step < 60; step++ {
			e := types.NewTuple("edge", types.Node(0), types.Node(types.NodeID(rng.Intn(4))), types.Int(int64(rng.Intn(5))))
			if _, ok := live[e.Key()]; ok && rng.Intn(2) == 0 {
				delete(live, e.Key())
				n.DeleteBase(e)
			} else if !ok {
				live[e.Key()] = e
				n.InsertBase(e)
			}
		}
		inc.checkErr(t)

		naive := newTestNet(t, src, 1, ProvReference)
		for _, e := range live {
			naive.nodes[0].InsertBase(e)
		}
		naive.checkErr(t)

		for _, pred := range []string{"edge", "hop", "reach", "cheap"} {
			gi := tuples(n, pred)
			gn := tuples(naive.nodes[0], pred)
			if len(gi) != len(gn) {
				t.Fatalf("trial %d: %s has %d tuples incrementally, %d naively\ninc: %v\nnaive: %v",
					trial, pred, len(gi), len(gn), gi, gn)
			}
			for i := range gi {
				if gi[i] != gn[i] {
					t.Fatalf("trial %d: %s mismatch %s vs %s", trial, pred, gi[i], gn[i])
				}
			}
		}
		// Provenance store sizes agree too (no leaks, no gaps).
		if n.Store.NumProv() != naive.nodes[0].Store.NumProv() {
			t.Fatalf("trial %d: prov rows %d vs %d", trial, n.Store.NumProv(), naive.nodes[0].Store.NumProv())
		}
		if n.Store.NumRuleExec() != naive.nodes[0].Store.NumRuleExec() {
			t.Fatalf("trial %d: ruleExec rows %d vs %d", trial, n.Store.NumRuleExec(), naive.nodes[0].Store.NumRuleExec())
		}
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Tuple: types.NewTuple("p", types.Node(1), types.Int(2)), Delta: Insert},
		{Tuple: types.NewTuple("p", types.Node(1)), Delta: Delete,
			HasRef: true, RID: types.HashString("r"), RLoc: 7},
		{Tuple: types.NewTuple("q", types.Node(0), types.Str("x")), Delta: Update,
			Payload: []byte{1, 2, 3, 4}},
	}
	for _, m := range msgs {
		enc := m.Encode(nil)
		if len(enc) != m.WireSize() {
			t.Errorf("%s: wire size %d != %d", m, m.WireSize(), len(enc))
		}
		dec, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !dec.Tuple.Equal(m.Tuple) || dec.Delta != m.Delta || dec.HasRef != m.HasRef ||
			dec.RID != m.RID || dec.RLoc != m.RLoc || string(dec.Payload) != string(m.Payload) {
			t.Errorf("round trip mismatch: %+v vs %+v", dec, m)
		}
	}
	if _, err := DecodeMessage([]byte{1}); err == nil {
		t.Error("truncated message accepted")
	}
	// Only the three wire signs decode; the engine-internal rederive sign
	// (2) must be rejected so a forged datagram cannot re-show a staged
	// suspect mid-deletion-wave.
	bad := (&Message{Tuple: types.NewTuple("p", types.Node(1)), Delta: Insert}).Encode(nil)
	bad[1] = 2
	if _, err := DecodeMessage(bad); err == nil {
		t.Error("out-of-range delta sign accepted")
	}
}

func TestReferenceOverheadIsExactly24Bytes(t *testing.T) {
	tu := types.NewTuple("pathCost", types.Node(1), types.Node(2), types.Int(5))
	plain := &Message{Tuple: tu, Delta: Insert}
	ref := &Message{Tuple: tu, Delta: Insert, HasRef: true, RID: types.HashString("x"), RLoc: 3}
	if d := ref.WireSize() - plain.WireSize(); d != types.IDLen+4 {
		t.Errorf("reference overhead = %d bytes, want %d (20-byte RID + 4-byte RLoc)", d, types.IDLen+4)
	}
}
