package engine

import (
	"sort"

	"repro/internal/types"
)

// aggEntry is one element of an aggregate group's input multiset.
type aggEntry struct {
	input   types.Tuple // the body tuple (provenance child, payload source)
	sortVal types.Value
	carried []types.Value
	count   int
}

// aggGroup maintains one group of an aggregate rule: the multiset of input
// rows and the currently emitted output.
type aggGroup struct {
	entries map[string]*aggEntry
	// curOut is the currently emitted head tuple (nil when none), and
	// curWinner the input tuple it was traced to (MIN/MAX provenance).
	curOut    *types.Tuple
	curWinner *aggEntry
	total     int // COUNT<*>
}

func newAggGroup() *aggGroup { return &aggGroup{entries: map[string]*aggEntry{}} }

func aggEntryKey(sortVal types.Value, carried []types.Value) string {
	b := sortVal.Encode(nil)
	for _, c := range carried {
		b = c.Encode(b)
	}
	return string(b)
}

// aggEmit is one visible change of the aggregate output.
type aggEmit struct {
	tuple  types.Tuple
	sign   int8
	winner types.Tuple // MIN/MAX: the input tuple the output derives from
	hasWin bool
}

// update applies one input delta and returns the emitted output changes.
// groupVals are the evaluated group-by head arguments; spec drives the
// aggregate function.
func (g *aggGroup) update(spec *AggSpec, groupVals []types.Value,
	sortVal types.Value, carried []types.Value, input types.Tuple, sign int8) []aggEmit {

	key := aggEntryKey(sortVal, carried)
	switch sign {
	case Insert:
		e := g.entries[key]
		if e == nil {
			e = &aggEntry{input: input, sortVal: sortVal, carried: carried}
			g.entries[key] = e
		}
		e.count++
		g.total++
	case Delete:
		e := g.entries[key]
		if e == nil {
			return nil // deletion of an unseen row: ignore defensively
		}
		e.count--
		g.total--
		if e.count <= 0 {
			delete(g.entries, key)
		}
	default:
		return nil
	}
	return g.refresh(spec, groupVals)
}

// refresh recomputes the output tuple and diffs it against the currently
// emitted one.
func (g *aggGroup) refresh(spec *AggSpec, groupVals []types.Value) []aggEmit {
	newOut, newWinner := g.compute(spec, groupVals)
	var emits []aggEmit
	if g.curOut != nil && (newOut == nil || !g.curOut.Equal(*newOut)) {
		em := aggEmit{tuple: *g.curOut, sign: Delete}
		if g.curWinner != nil {
			em.winner, em.hasWin = g.curWinner.input, true
		}
		emits = append(emits, em)
		g.curOut, g.curWinner = nil, nil
	}
	if newOut != nil && g.curOut == nil {
		em := aggEmit{tuple: *newOut, sign: Insert}
		if newWinner != nil {
			em.winner, em.hasWin = newWinner.input, true
		}
		emits = append(emits, em)
		g.curOut, g.curWinner = newOut, newWinner
	}
	return emits
}

// compute evaluates the aggregate over the current multiset.
func (g *aggGroup) compute(spec *AggSpec, groupVals []types.Value) (*types.Tuple, *aggEntry) {
	var aggVals []types.Value
	var winner *aggEntry
	switch spec.Fn {
	case "MIN", "MAX":
		for _, e := range g.entries {
			if winner == nil {
				winner = e
				continue
			}
			c := e.sortVal.Compare(winner.sortVal)
			if spec.Fn == "MAX" {
				c = -c
			}
			if c < 0 || (c == 0 && compareCarried(e, winner) < 0) {
				winner = e
			}
		}
		if winner == nil {
			return nil, nil
		}
		aggVals = append([]types.Value{winner.sortVal}, winner.carried...)
	case "COUNT":
		if g.total <= 0 {
			return nil, nil
		}
		aggVals = []types.Value{types.Int(int64(g.total))}
	case "AGGLIST":
		if len(g.entries) == 0 {
			return nil, nil
		}
		rows := make([]types.Value, 0, len(g.entries))
		for _, e := range g.entries {
			row := append([]types.Value{e.sortVal}, e.carried...)
			rows = append(rows, types.List(row...))
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Compare(rows[j]) < 0 })
		aggVals = []types.Value{types.List(rows...)}
	default:
		return nil, nil
	}

	// Assemble the head: group values in order, aggregate values spliced
	// in at the aggregate position.
	args := make([]types.Value, 0, len(groupVals)+len(aggVals))
	gi := 0
	for pos := 0; pos <= len(groupVals); pos++ {
		if pos == spec.AggPos {
			args = append(args, aggVals...)
			continue
		}
		args = append(args, groupVals[gi])
		gi++
	}
	t := types.Tuple{Args: args}
	return &t, winner
}

func compareCarried(a, b *aggEntry) int {
	for i := 0; i < len(a.carried) && i < len(b.carried); i++ {
		if c := a.carried[i].Compare(b.carried[i]); c != 0 {
			return c
		}
	}
	return len(a.carried) - len(b.carried)
}

// winnerOf reports the current winning entry (MIN/MAX).
func (g *aggGroup) winnerOf() *aggEntry { return g.curWinner }
