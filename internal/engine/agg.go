package engine

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/types"
)

// fireAgg routes a delta of an aggregate rule's body predicate through the
// group state — the serial (single-shard) path, where the group lives on
// this shard and updates apply inline. Under rounds the same body evaluation
// happens in fireAggRound, which ships the update to the group's owner shard
// instead (aggregate groups are partitioned by group-key hash, so one shard
// owns each group's whole input multiset).
func (sh *shard) fireAgg(rule *CompiledRule, t types.Tuple, sign int8, payload bdd.Ref) {
	n := sh.n
	env, ok := sh.evalAggBody(rule, t)
	if !ok {
		return
	}
	spec := rule.agg
	groupVals := sh.groupBuf[:len(spec.groupCode)]
	for i, code := range spec.groupCode {
		v, err := code(env)
		if err != nil {
			sh.fail(fmt.Errorf("rule %s group: %w", rule.Label, err))
			return
		}
		groupVals[i] = v
	}
	groups := sh.aggByRule[rule.idx]
	if groups == nil {
		groups = map[string]*aggGroup{}
		sh.aggByRule[rule.idx] = groups
	}
	sh.keyBuf = appendValuesKey(sh.keyBuf[:0], groupVals)
	g := groups[string(sh.keyBuf)]
	if g == nil {
		g = sh.allocAggGroup()
		groups[string(sh.keyBuf)] = g
	}

	if sign == Update {
		// Value-mode payload update: if the updated input is the current
		// winner, the head's payload follows it.
		if n.Mode == ProvValue && g.curWinner != nil && g.curWinner.input.Equal(t) && g.hasOut {
			out := g.curOut
			out.Pred = rule.HeadPred
			sh.vidBuf[0], sh.hashBuf = t.VIDBuf(sh.hashBuf)
			var rid types.ID
			rid, sh.ridBuf = types.RuleExecIDBuf(rule.Label, n.ID, sh.vidBuf[:1], sh.ridBuf)
			sh.route(out, n.ID, Update, rid, payload)
		}
		return
	}

	sortVal, carried := sh.evalAggVals(rule, env)
	for _, em := range g.update(sh, rule, groupVals, sortVal, carried, t, sign) {
		out := em.tuple
		out.Pred = rule.HeadPred
		sh.emitAggChange(rule, out, em, t)
	}
}

// evalAggBody binds the body tuple into the rule environment and runs the
// plan's assignments and conditions; ok is false when binding or a condition
// fails (or an expression errored).
func (sh *shard) evalAggBody(rule *CompiledRule, t types.Tuple) ([]types.Value, bool) {
	pl := rule.plans[0]
	env := sh.envBuf[:rule.numVars]
	if !bindTuple(pl.deltaBinds, t, env) {
		return nil, false
	}
	// Aggregate bodies may carry assignments/conditions.
	for i := range pl.steps {
		st := &pl.steps[i]
		switch st.kind {
		case stepAssign:
			v, err := st.expr(env)
			if err != nil {
				sh.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
				return nil, false
			}
			env[st.assignSlot] = v
		case stepCond:
			v, err := st.expr(env)
			if err != nil {
				sh.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
				return nil, false
			}
			if !v.Truthy() {
				return nil, false
			}
		}
	}
	return env, true
}

// evalAggVals extracts the aggregate's sort value and carried values from
// the bound environment into shard scratch (carryBuf). Callers must copy the
// carried slice if they retain it.
func (sh *shard) evalAggVals(rule *CompiledRule, env []types.Value) (types.Value, []types.Value) {
	spec := rule.agg
	var sortVal types.Value
	vals := sh.carryBuf[:0]
	switch spec.Fn {
	case "MIN", "MAX":
		sortVal = env[spec.sortSlot]
		for _, s := range spec.carried {
			vals = append(vals, env[s])
		}
	case "COUNT":
		sortVal = types.Int(0)
	case "AGGLIST":
		for _, s := range spec.listSlots {
			vals = append(vals, env[s])
		}
	}
	sh.carryBuf = vals[:0]
	carried := vals
	if spec.Fn == "AGGLIST" {
		if len(vals) > 0 {
			sortVal = vals[0]
			carried = vals[1:]
		} else {
			sortVal = types.Int(0)
			carried = nil
		}
	}
	return sortVal, carried
}

// emitAggChange applies provenance bookkeeping for an aggregate output
// change and routes it. Aggregate heads are local by validation.
func (sh *shard) emitAggChange(rule *CompiledRule, out types.Tuple, em aggEmit, cause types.Tuple) {
	n := sh.n
	sh.rulesFired++
	var rid types.ID
	var payload bdd.Ref
	if em.hasWin {
		// The winning input is stored in the body relation; reuse its
		// cached VID instead of re-hashing the tuple. Under rounds the
		// winner may live on a sibling shard that is concurrently applying
		// its own batch, so only a self-owned entry is consulted — the
		// fallback recomputes the same content-derived RID either way.
		var winEnt *entry
		if rel := sh.aggBodyRel[rule.idx]; rel != nil {
			if !n.rounds() || n.ownerShard(em.winner) == sh {
				winEnt = rel.get(em.winner)
			}
		}
		var winVID types.ID
		var ridh types.IDHandle
		if winEnt != nil {
			winVID, sh.hashBuf = winEnt.VIDBuf(sh.hashBuf)
			sh.vidBuf[0] = winVID
			// Aggregate RIDs hash a single stored input; memoize them like
			// join RIDs (entBuf is idle here — fireAgg never runs inside
			// execPlan, so borrowing slot 0 cannot clobber a live plan).
			sh.entBuf[0] = winEnt
			rid, ridh = sh.ruleExecID(rule, sh.entBuf[:1], sh.vidBuf[:1])
		} else {
			winVID, sh.hashBuf = em.winner.VIDBuf(sh.hashBuf)
			sh.vidBuf[0] = winVID
			rid, sh.ridBuf = types.RuleExecIDBuf(rule.Label, n.ID, sh.vidBuf[:1], sh.ridBuf)
		}
		switch n.Mode {
		case ProvReference:
			sh.ruleExecRow(ridh, rid, rule.Label, sh.vidBuf[:1], em.sign)
		case ProvCentralized:
			var headVID types.ID
			headVID, sh.hashBuf = out.VIDBuf(sh.hashBuf)
			n.sendRuleExecRow(rid, rule.Label, sh.vidBuf[:1], em.sign)
			n.sendProvRow(n.ID, headVID, rid, n.ID, em.sign)
		case ProvValue:
			payload = bdd.True
			if winEnt != nil {
				payload = winEnt.payload
			}
		}
	}
	// COUNT/AGGLIST outputs carry no MIN/MAX-style provenance child (the
	// paper restricts aggregate provenance to MIN and MAX); they enter the
	// graph as base-like vertices via the null RID.
	sh.route(out, n.ID, em.sign, rid, payload)
}

// aggEntry is one element of an aggregate group's input multiset.
type aggEntry struct {
	input   types.Tuple // the body tuple (provenance child, payload source)
	sortVal types.Value
	carried []types.Value
	count   int
}

// aggGroup maintains one group of an aggregate rule: the multiset of input
// rows and the currently emitted output.
//
// Group structs, entry structs, carried-value copies and output argument
// slices are all carved from the owning node's chunked arenas (value slices
// are pointer-free under the compact Value representation, so the arenas
// cost the garbage collector nothing to scan); the group itself holds only
// its entry map and reusable scratch.
type aggGroup struct {
	entries map[string]*aggEntry
	free    []*aggEntry   // retired entries recycled by later inserts
	argsBuf []types.Value // reusable candidate-output buffer
	emitBuf []aggEmit     // reusable emit buffer, valid until the next refresh
	// curOut is the currently emitted head tuple (hasOut reports whether
	// one exists), and curWinner the input entry it was traced to (MIN/MAX
	// provenance).
	curOut    types.Tuple
	hasOut    bool
	curWinner *aggEntry
	total     int // COUNT<*>
	// staged defers output re-emission to the retraction protocol's
	// release phase: after a delete evicts a recursive rule's winner, the
	// group emits nothing (hasOut stays false) until releaseStaged
	// re-refreshes it against post-deletion-wave state. Promoting the
	// next-best row eagerly is the count-to-infinity engine — the next-best
	// may be phantom support the deletion wave has not yet consumed.
	staged bool
}

// stagedGroup records one group awaiting its deferred re-refresh, with the
// retained group-by values refresh needs to rebuild the head.
type stagedGroup struct {
	rule      *CompiledRule
	g         *aggGroup
	groupVals []types.Value
}

// stage registers the group with its owner shard's release list.
func (g *aggGroup) stage(sh *shard, rule *CompiledRule, groupVals []types.Value) {
	if g.staged {
		return
	}
	g.staged = true
	gv := sh.allocArgs(len(groupVals))
	copy(gv, groupVals)
	sh.stagedGroups = append(sh.stagedGroups, stagedGroup{rule: rule, g: g, groupVals: gv})
}

// appendValuesKey appends the fixed-width handle keys of vals to b (see
// types.Value.AppendKey). Group and entry keys are built in reusable buffers
// so the aggregate delta path does not allocate per input row, and the
// handle form copies no payload bytes.
func appendValuesKey(b []byte, vals []types.Value) []byte {
	for _, v := range vals {
		b = v.AppendKey(b)
	}
	return b
}

func appendAggEntryKey(b []byte, sortVal types.Value, carried []types.Value) []byte {
	b = sortVal.AppendKey(b)
	return appendValuesKey(b, carried)
}

// aggEmit is one visible change of the aggregate output.
type aggEmit struct {
	tuple  types.Tuple
	sign   int8
	winner types.Tuple // MIN/MAX: the input tuple the output derives from
	hasWin bool
}

// update applies one input delta and returns the emitted output changes.
// groupVals are the evaluated group-by head arguments; rule.agg drives the
// aggregate function; sh supplies the arenas retained data is carved from.
// carried may be caller scratch: it is copied if the entry must retain it.
func (g *aggGroup) update(sh *shard, rule *CompiledRule, groupVals []types.Value,
	sortVal types.Value, carried []types.Value, input types.Tuple, sign int8) []aggEmit {

	spec := rule.agg
	sh.aggKeyBuf = appendAggEntryKey(sh.aggKeyBuf[:0], sortVal, carried)
	key := sh.aggKeyBuf
	ordered := spec.Fn == "MIN" || spec.Fn == "MAX"
	switch sign {
	case Insert:
		e := g.entries[string(key)]
		if e == nil {
			if fn := len(g.free); fn > 0 {
				e = g.free[fn-1]
				g.free[fn-1] = nil
				g.free = g.free[:fn-1]
				e.input, e.sortVal, e.count = input, sortVal, 0
				e.carried = append(e.carried[:0], carried...)
			} else {
				e = sh.allocAggEntry()
				e.input, e.sortVal = input, sortVal
				if len(carried) > 0 {
					e.carried = sh.allocArgs(len(carried))
					copy(e.carried, carried)
				}
			}
			g.entries[string(key)] = e
		}
		e.count++
		g.total++
		// MIN/MAX fast path: the output only moves when the group had no
		// output yet or the inserted row dethrones the current winner.
		// Everything else — copies of the winner, rows worse than the
		// winner — is the common case in route computation and skips the
		// full rescan refresh would do.
		if ordered && g.hasOut && (e == g.curWinner || !beats(spec, e, g.curWinner)) {
			return nil
		}
	case Delete:
		e := g.entries[string(key)]
		if e == nil {
			return nil // deletion of an unseen row: ignore defensively
		}
		e.count--
		g.total--
		if e.count <= 0 {
			delete(g.entries, string(key))
			// Recycle the entry. Safe: refresh re-resolves curWinner before
			// this update returns, so no live reference survives (see the
			// fast path below — a deleted winner always reaches refresh).
			g.free = append(g.free, e)
		}
		// MIN/MAX fast path: removing a non-winning row, or one copy of a
		// winner that remains in the multiset, leaves the output untouched.
		if ordered && g.hasOut && (e != g.curWinner || e.count > 0) {
			return nil
		}
	default:
		return nil
	}
	return g.refresh(sh, rule, groupVals, sign == Delete)
}

// beats reports whether a wins over b under spec's ordering (including the
// deterministic carried-value tie-break, which is strict because entries
// are keyed by their full (sortVal, carried) encoding).
func beats(spec *AggSpec, a, b *aggEntry) bool {
	c := a.sortVal.Compare(b.sortVal)
	if spec.Fn == "MAX" {
		c = -c
	}
	return c < 0 || (c == 0 && compareCarried(a, b) < 0)
}

// refresh recomputes the output tuple and diffs it against the currently
// emitted one. The returned slice aliases the group's emit buffer and is
// valid until the next refresh. The steady-state path — an input delta that
// does not change the output — allocates nothing, and a changed output
// carves its retained argument slice from the node's arena.
//
// deleting reports that the triggering input delta was a Delete. For rules
// whose head predicate is recursive, a delete-driven output re-emission is
// a winner promotion the retraction protocol must defer: the Delete of the
// old output still cascades, but the Insert of the replacement is withheld
// and the group staged until the deletion wave quiesces. Once staged, the
// group stays output-silent through further refreshes (insert-driven ones
// included — an arriving insert would otherwise promote a phantom row)
// until releaseStaged re-refreshes it.
func (g *aggGroup) refresh(sh *shard, rule *CompiledRule, groupVals []types.Value, deleting bool) []aggEmit {
	newArgs, newWinner, ok := g.compute(rule.agg, groupVals)
	emits := g.emitBuf[:0]
	if g.hasOut && !(ok && argsEqual(g.curOut.Args, newArgs)) {
		em := aggEmit{tuple: g.curOut, sign: Delete}
		if g.curWinner != nil {
			em.winner, em.hasWin = g.curWinner.input, true
		}
		emits = append(emits, em)
		g.curOut, g.hasOut, g.curWinner = types.Tuple{}, false, nil
	}
	if !ok && deleting && rule.headRecursive {
		// The delete emptied the group. Stage it anyway: an insert arriving
		// before the deletion wave quiesces (a stale re-advertisement
		// around a cycle) must not refill and promote immediately — that
		// reopens the count-to-infinity lap through an empty group.
		g.stage(sh, rule, groupVals)
	}
	if ok && !g.hasOut {
		if g.staged || (deleting && rule.headRecursive) {
			g.stage(sh, rule, groupVals)
		} else {
			// Materialize the candidate output: it escapes into the group
			// state and the emitted delta, so its args leave the scratch
			// buffer for the arena.
			retained := sh.allocArgs(len(newArgs))
			copy(retained, newArgs)
			out := types.Tuple{Args: retained}
			em := aggEmit{tuple: out, sign: Insert}
			if newWinner != nil {
				em.winner, em.hasWin = newWinner.input, true
			}
			emits = append(emits, em)
			g.curOut, g.hasOut, g.curWinner = out, true, newWinner
		}
	}
	g.emitBuf = emits
	return emits
}

func argsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compute evaluates the aggregate over the current multiset into the
// group's reusable args buffer. It reports ok=false when the group emits
// nothing.
func (g *aggGroup) compute(spec *AggSpec, groupVals []types.Value) ([]types.Value, *aggEntry, bool) {
	args := g.argsBuf[:0]
	var winner *aggEntry
	var aggList types.Value
	switch spec.Fn {
	case "MIN", "MAX":
		for _, e := range g.entries {
			if winner == nil {
				winner = e
				continue
			}
			c := e.sortVal.Compare(winner.sortVal)
			if spec.Fn == "MAX" {
				c = -c
			}
			if c < 0 || (c == 0 && compareCarried(e, winner) < 0) {
				winner = e
			}
		}
		if winner == nil {
			return nil, nil, false
		}
	case "COUNT":
		if g.total <= 0 {
			return nil, nil, false
		}
	case "AGGLIST":
		if len(g.entries) == 0 {
			return nil, nil, false
		}
		rows := make([]types.Value, 0, len(g.entries))
		for _, e := range g.entries {
			row := append([]types.Value{e.sortVal}, e.carried...)
			rows = append(rows, types.List(row...))
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Compare(rows[j]) < 0 })
		aggList = types.List(rows...)
	default:
		return nil, nil, false
	}

	// Assemble the head: group values in order, aggregate values spliced
	// in at the aggregate position.
	gi := 0
	for pos := 0; pos <= len(groupVals); pos++ {
		if pos == spec.AggPos {
			switch spec.Fn {
			case "MIN", "MAX":
				args = append(args, winner.sortVal)
				args = append(args, winner.carried...)
			case "COUNT":
				args = append(args, types.Int(int64(g.total)))
			case "AGGLIST":
				args = append(args, aggList)
			}
			continue
		}
		args = append(args, groupVals[gi])
		gi++
	}
	g.argsBuf = args
	return args, winner, true
}

func compareCarried(a, b *aggEntry) int {
	for i := 0; i < len(a.carried) && i < len(b.carried); i++ {
		if c := a.carried[i].Compare(b.carried[i]); c != 0 {
			return c
		}
	}
	return len(a.carried) - len(b.carried)
}

// winnerOf reports the current winning entry (MIN/MAX).
func (g *aggGroup) winnerOf() *aggEntry { return g.curWinner }
