package engine

import (
	"sort"

	"repro/internal/types"
)

// aggEntry is one element of an aggregate group's input multiset.
type aggEntry struct {
	input   types.Tuple // the body tuple (provenance child, payload source)
	sortVal types.Value
	carried []types.Value
	count   int
}

// aggGroup maintains one group of an aggregate rule: the multiset of input
// rows and the currently emitted output.
//
// Group structs, entry structs, carried-value copies and output argument
// slices are all carved from the owning node's chunked arenas (value slices
// are pointer-free under the compact Value representation, so the arenas
// cost the garbage collector nothing to scan); the group itself holds only
// its entry map and reusable scratch.
type aggGroup struct {
	entries map[string]*aggEntry
	free    []*aggEntry   // retired entries recycled by later inserts
	argsBuf []types.Value // reusable candidate-output buffer
	emitBuf []aggEmit     // reusable emit buffer, valid until the next refresh
	// curOut is the currently emitted head tuple (hasOut reports whether
	// one exists), and curWinner the input entry it was traced to (MIN/MAX
	// provenance).
	curOut    types.Tuple
	hasOut    bool
	curWinner *aggEntry
	total     int // COUNT<*>
}

// appendValuesKey appends the fixed-width handle keys of vals to b (see
// types.Value.AppendKey). Group and entry keys are built in reusable buffers
// so the aggregate delta path does not allocate per input row, and the
// handle form copies no payload bytes.
func appendValuesKey(b []byte, vals []types.Value) []byte {
	for _, v := range vals {
		b = v.AppendKey(b)
	}
	return b
}

func appendAggEntryKey(b []byte, sortVal types.Value, carried []types.Value) []byte {
	b = sortVal.AppendKey(b)
	return appendValuesKey(b, carried)
}

// aggEmit is one visible change of the aggregate output.
type aggEmit struct {
	tuple  types.Tuple
	sign   int8
	winner types.Tuple // MIN/MAX: the input tuple the output derives from
	hasWin bool
}

// update applies one input delta and returns the emitted output changes.
// groupVals are the evaluated group-by head arguments; spec drives the
// aggregate function; n supplies the arenas retained data is carved from.
// carried may be caller scratch: it is copied if the entry must retain it.
func (g *aggGroup) update(n *Node, spec *AggSpec, groupVals []types.Value,
	sortVal types.Value, carried []types.Value, input types.Tuple, sign int8) []aggEmit {

	n.aggKeyBuf = appendAggEntryKey(n.aggKeyBuf[:0], sortVal, carried)
	key := n.aggKeyBuf
	ordered := spec.Fn == "MIN" || spec.Fn == "MAX"
	switch sign {
	case Insert:
		e := g.entries[string(key)]
		if e == nil {
			if fn := len(g.free); fn > 0 {
				e = g.free[fn-1]
				g.free[fn-1] = nil
				g.free = g.free[:fn-1]
				e.input, e.sortVal, e.count = input, sortVal, 0
				e.carried = append(e.carried[:0], carried...)
			} else {
				e = n.allocAggEntry()
				e.input, e.sortVal = input, sortVal
				if len(carried) > 0 {
					e.carried = n.allocArgs(len(carried))
					copy(e.carried, carried)
				}
			}
			g.entries[string(key)] = e
		}
		e.count++
		g.total++
		// MIN/MAX fast path: the output only moves when the group had no
		// output yet or the inserted row dethrones the current winner.
		// Everything else — copies of the winner, rows worse than the
		// winner — is the common case in route computation and skips the
		// full rescan refresh would do.
		if ordered && g.hasOut && (e == g.curWinner || !beats(spec, e, g.curWinner)) {
			return nil
		}
	case Delete:
		e := g.entries[string(key)]
		if e == nil {
			return nil // deletion of an unseen row: ignore defensively
		}
		e.count--
		g.total--
		if e.count <= 0 {
			delete(g.entries, string(key))
			// Recycle the entry. Safe: refresh re-resolves curWinner before
			// this update returns, so no live reference survives (see the
			// fast path below — a deleted winner always reaches refresh).
			g.free = append(g.free, e)
		}
		// MIN/MAX fast path: removing a non-winning row, or one copy of a
		// winner that remains in the multiset, leaves the output untouched.
		if ordered && g.hasOut && (e != g.curWinner || e.count > 0) {
			return nil
		}
	default:
		return nil
	}
	return g.refresh(n, spec, groupVals)
}

// beats reports whether a wins over b under spec's ordering (including the
// deterministic carried-value tie-break, which is strict because entries
// are keyed by their full (sortVal, carried) encoding).
func beats(spec *AggSpec, a, b *aggEntry) bool {
	c := a.sortVal.Compare(b.sortVal)
	if spec.Fn == "MAX" {
		c = -c
	}
	return c < 0 || (c == 0 && compareCarried(a, b) < 0)
}

// refresh recomputes the output tuple and diffs it against the currently
// emitted one. The returned slice aliases the group's emit buffer and is
// valid until the next refresh. The steady-state path — an input delta that
// does not change the output — allocates nothing, and a changed output
// carves its retained argument slice from the node's arena.
func (g *aggGroup) refresh(n *Node, spec *AggSpec, groupVals []types.Value) []aggEmit {
	newArgs, newWinner, ok := g.compute(spec, groupVals)
	emits := g.emitBuf[:0]
	if g.hasOut && !(ok && argsEqual(g.curOut.Args, newArgs)) {
		em := aggEmit{tuple: g.curOut, sign: Delete}
		if g.curWinner != nil {
			em.winner, em.hasWin = g.curWinner.input, true
		}
		emits = append(emits, em)
		g.curOut, g.hasOut, g.curWinner = types.Tuple{}, false, nil
	}
	if ok && !g.hasOut {
		// Materialize the candidate output: it escapes into the group
		// state and the emitted delta, so its args leave the scratch
		// buffer for the arena.
		retained := n.allocArgs(len(newArgs))
		copy(retained, newArgs)
		out := types.Tuple{Args: retained}
		em := aggEmit{tuple: out, sign: Insert}
		if newWinner != nil {
			em.winner, em.hasWin = newWinner.input, true
		}
		emits = append(emits, em)
		g.curOut, g.hasOut, g.curWinner = out, true, newWinner
	}
	g.emitBuf = emits
	return emits
}

func argsEqual(a, b []types.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compute evaluates the aggregate over the current multiset into the
// group's reusable args buffer. It reports ok=false when the group emits
// nothing.
func (g *aggGroup) compute(spec *AggSpec, groupVals []types.Value) ([]types.Value, *aggEntry, bool) {
	args := g.argsBuf[:0]
	var winner *aggEntry
	var aggList types.Value
	switch spec.Fn {
	case "MIN", "MAX":
		for _, e := range g.entries {
			if winner == nil {
				winner = e
				continue
			}
			c := e.sortVal.Compare(winner.sortVal)
			if spec.Fn == "MAX" {
				c = -c
			}
			if c < 0 || (c == 0 && compareCarried(e, winner) < 0) {
				winner = e
			}
		}
		if winner == nil {
			return nil, nil, false
		}
	case "COUNT":
		if g.total <= 0 {
			return nil, nil, false
		}
	case "AGGLIST":
		if len(g.entries) == 0 {
			return nil, nil, false
		}
		rows := make([]types.Value, 0, len(g.entries))
		for _, e := range g.entries {
			row := append([]types.Value{e.sortVal}, e.carried...)
			rows = append(rows, types.List(row...))
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Compare(rows[j]) < 0 })
		aggList = types.List(rows...)
	default:
		return nil, nil, false
	}

	// Assemble the head: group values in order, aggregate values spliced
	// in at the aggregate position.
	gi := 0
	for pos := 0; pos <= len(groupVals); pos++ {
		if pos == spec.AggPos {
			switch spec.Fn {
			case "MIN", "MAX":
				args = append(args, winner.sortVal)
				args = append(args, winner.carried...)
			case "COUNT":
				args = append(args, types.Int(int64(g.total)))
			case "AGGLIST":
				args = append(args, aggList)
			}
			continue
		}
		args = append(args, groupVals[gi])
		gi++
	}
	g.argsBuf = args
	return args, winner, true
}

func compareCarried(a, b *aggEntry) int {
	for i := 0; i < len(a.carried) && i < len(b.carried); i++ {
		if c := a.carried[i].Compare(b.carried[i]); c != 0 {
			return c
		}
	}
	return len(a.carried) - len(b.carried)
}

// winnerOf reports the current winning entry (MIN/MAX).
func (g *aggGroup) winnerOf() *aggEntry { return g.curWinner }
