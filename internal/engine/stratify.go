package engine

import "sort"

// This file computes the program's predicate dependency structure at
// compile time. The retraction discipline (see shard.go and
// ARCHITECTURE.md "Deletion semantics") needs to know which predicates can
// participate in cyclic derivations: for those, exact derivation counting
// is unsound — a tuple can keep a positive support count whose derivations
// bottom out only in each other ("phantom support") — so deletes follow the
// DRed-style over-delete/re-derive protocol instead. Non-recursive
// predicates keep the cheap exact-counting semantics, which is sound for
// them and avoids the transient churn of over-deletion.
//
// A predicate is recursive when it lies on a cycle of the head→body
// dependency graph (a strongly connected component with more than one
// member, or a self-loop). Aggregate rules contribute the same edges as
// plain rules: MINCOST's sp2/sp3 put pathCost and bestPathCost in one SCC,
// which is exactly the count-to-infinity loop the retraction protocol must
// break.
//
// The SCC pass also yields the release stratification: Tarjan identifies
// components in reverse topological order of the condensation, and with
// edges pointing head→body a component is popped only after every
// component it depends on (its bodies) has been popped. The component
// number is therefore a stratum: releasing staged retraction work in
// ascending stratum order re-derives a suspect's supports before any
// suspect that consumes them (Node.ReleaseStaged).

// markRecursive computes the recursive flag and release stratum of every
// predicate (and the headRecursive/headStratum of every rule) via Tarjan's
// SCC algorithm over the head→body predicate graph. Called once at the end
// of Compile.
func (p *Program) markRecursive() {
	// Dense predicate numbering for the walk (events included: a cycle
	// through an event predicate still re-derives stored tuples). The
	// numbering iterates names in sorted order so component numbers — and
	// with them the release strata — are a pure function of the program,
	// not of map iteration order.
	names := make([]string, 0, len(p.preds))
	for name := range p.preds {
		names = append(names, name)
	}
	sort.Strings(names)
	idx := make(map[string]int, len(names))
	for i, name := range names {
		idx[name] = i
	}
	adj := make([][]int, len(names))
	selfLoop := make([]bool, len(names))
	for _, cr := range p.Rules {
		h := idx[cr.HeadPred]
		for _, a := range cr.atoms {
			b := idx[a.pred]
			if b == h {
				selfLoop[h] = true
			}
			adj[h] = append(adj[h], b)
		}
	}

	// Iterative Tarjan (the recursion depth is bounded only by program
	// size, but generated programs can chain hundreds of rules).
	const unvisited = -1
	index := make([]int, len(names))
	low := make([]int, len(names))
	comp := make([]int, len(names))
	onStack := make([]bool, len(names))
	for i := range index {
		index[i], comp[i] = unvisited, unvisited
	}
	var stack, compSize []int
	next := 0
	type frame struct{ v, ei int }
	var frames []frame
	for root := range adj {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei == 0 {
				index[v], low[v] = next, next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				c := len(compSize)
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = c
					size++
					if w == v {
						break
					}
				}
				compSize = append(compSize, size)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				pf := &frames[len(frames)-1]
				if low[v] < low[pf.v] {
					low[pf.v] = low[v]
				}
			}
		}
	}

	for name, info := range p.preds {
		i := idx[name]
		info.Recursive = selfLoop[i] || compSize[comp[i]] > 1
		info.Stratum = comp[i]
	}
	for _, cr := range p.Rules {
		hi := p.preds[cr.HeadPred]
		cr.headRecursive = hi.Recursive
		cr.headStratum = hi.Stratum
	}
}
