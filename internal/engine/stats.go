package engine

// This file is the measurement half of the engine's PLANNER layer (see
// planner.go for the cost model): live cardinality and selectivity counters
// maintained allocation-free inside the existing hot paths, and the
// quiescence-time fold that turns them into the snapshot the cost model
// reads.
//
// Three counter families exist, none adding an allocation or a map access
// to the hot path:
//
//   - Per-relation cardinality and churn: Relation.visible (already the
//     O(1) Len) and Relation.churn, both bumped inside setVisible.
//   - Per-index distinct keys: len(index.buckets), maintained by the
//     ordinary index add/remove that setVisible drives.
//   - Join-probe fan-out tallies: joinStat{probes, hits} per compiled join
//     step, owned by the firing shard (sh.joinStats, indexed by joinID) so
//     parallel fire phases never contend on a counter.
//
// Shard-local probe tallies are folded into the node-level accumulator
// (Node.fanAcc, keyed by the probed predicate and index — a key that stays
// meaningful across plan swaps, unlike the joinID) only at quiescence, when
// the planner runs.

// joinStat tallies one compiled join step's probes and returned candidates.
// probes counts logical probes (one per step execution, not per peer shard),
// so hits/probes is the step's measured global fan-out.
type joinStat struct {
	probes int64
	hits   int64
}

// condStat tallies one body condition's evaluations and passes: passes/evals
// is the condition's measured selectivity, replacing the planner's flat 0.5
// credit once enough evaluations accumulate (condMinEvals). Slot-indexed by
// CompiledRule.condBase + planStep.condID — a keying that survives plan
// swaps, because rebuilt plans re-derive the same term numbering from the
// rule source.
type condStat struct {
	evals  int64
	passes int64
}

// statKey identifies a probe target independently of any particular plan:
// the probed predicate and the indexID of the probed positions. Measured
// fan-out keyed this way survives re-plans — a new plan probing the same
// (predicate, positions) inherits the old plan's measurements.
type statKey struct {
	pred string
	idx  string
}

// statsSnapshot is the planner's read-only view of the node's statistics at
// one quiescence point.
type statsSnapshot struct {
	card   map[string]int64     // predicate -> visible tuples across shards
	churn  map[string]int64     // predicate -> total visibility transitions
	fanout map[statKey]joinStat // accumulated measured probe fan-out
}

// foldJoinStats drains every shard's probe tallies into the node-level
// accumulator under the current joinID -> statKey mapping, zeroing the
// shard counters. Must run before the mapping is rebuilt (a re-plan swap
// renumbers what each joinID probes) and only at quiescence (the counters
// are owned by fire phases).
//
//exspan:merge-phase
func (n *Node) foldJoinStats() {
	// Non-planable programs never fold on the replan path, but ExplainPlans
	// still wants the tallies; build the mapping lazily there.
	if n.joinKeys == nil {
		n.rebuildJoinKeys()
	}
	if n.fanAcc == nil {
		n.fanAcc = make(map[statKey]joinStat)
	}
	for _, sh := range n.shards {
		for id := range sh.joinStats {
			js := &sh.joinStats[id]
			if js.probes == 0 {
				continue
			}
			key := n.joinKeys[id]
			if key.pred != "" {
				acc := n.fanAcc[key]
				acc.probes += js.probes
				acc.hits += js.hits
				n.fanAcc[key] = acc
			}
			*js = joinStat{}
		}
		for id := range sh.condStats {
			cs := &sh.condStats[id]
			if cs.evals == 0 {
				continue
			}
			n.condAcc[id].evals += cs.evals
			n.condAcc[id].passes += cs.passes
			*cs = condStat{}
		}
	}
}

// statsSnapshot folds pending tallies and assembles the planner's view.
func (n *Node) snapshotStats() *statsSnapshot {
	n.foldJoinStats()
	snap := &statsSnapshot{
		card:   make(map[string]int64),
		churn:  make(map[string]int64),
		fanout: n.fanAcc,
	}
	for _, info := range n.Prog.Preds() {
		if info.Event {
			continue
		}
		var card, churn int64
		for _, sh := range n.shards {
			if rel := sh.tables[info.Name]; rel != nil {
				card += int64(rel.Len())
				churn += rel.churn
			}
		}
		snap.card[info.Name] = card
		snap.churn[info.Name] = churn
	}
	return snap
}

// distinctKeys estimates the number of distinct values the predicate holds
// over the given positions across all shards: the live bucket count when an
// index exists, a one-off scan (cold path, quiescence only) otherwise.
func (n *Node) distinctKeys(pred string, positions []int) int64 {
	id := indexID(positions)
	var total int64
	var scan []*Relation
	for _, sh := range n.shards {
		rel := sh.tables[pred]
		if rel == nil {
			continue
		}
		if idx := rel.indexes[id]; idx != nil {
			total += int64(len(idx.buckets))
			continue
		}
		scan = append(scan, rel)
	}
	if len(scan) > 0 {
		seen := make(map[uint64]struct{})
		var buf []byte
		for _, rel := range scan {
			for _, e := range rel.entries {
				if !e.visible {
					continue
				}
				buf = appendIndexKey(buf[:0], e.tuple, positions)
				seen[hashIndexKey(buf)] = struct{}{}
			}
		}
		total += int64(len(seen))
	}
	return total
}
