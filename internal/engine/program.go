package engine

import (
	"fmt"
	"sort"

	"repro/internal/ndlog"
)

// Program is a compiled NDlog program shared (immutably) by every node.
type Program struct {
	Rules      []*CompiledRule
	byBodyPred map[string][]occurrence
	preds      map[string]*PredInfo

	// Hot-path sizing, computed once at compile time so nodes can bind
	// index handles and allocate scratch arenas before evaluation starts.
	numJoins  int // total stepJoin steps across all plans; joinIDs are [0,numJoins)
	numTables int // stored (non-event) predicates; tableIDs are [0,numTables)
	numConds  int // non-atom body terms across all rules; sizes shard.condStats
	maxVars   int // widest rule environment
	maxAtoms  int // widest rule body
	maxGroup  int // widest aggregate group-by list

	// planable is true when at least one rule has enough body atoms for
	// join reordering to matter (≥ 3: with two atoms the delta position
	// fixes the only remaining probe). Nodes skip all planner bookkeeping
	// — stat folding, drift checks, re-plan attempts — when false.
	planable bool
}

type occurrence struct {
	rule *CompiledRule
	pos  int // body atom position triggered by the delta
}

// PredInfo describes one predicate of the program.
type PredInfo struct {
	Name  string
	Arity int
	Event bool
	Base  bool // EDB: never derived by a rule
	// Recursive marks predicates on a cycle of the head→body dependency
	// graph (stratify.go). Their tuples can carry phantom cyclic support,
	// so retraction follows the two-phase over-delete/re-derive protocol
	// instead of exact derivation counting.
	Recursive bool
	// Stratum is the predicate's SCC number in reverse topological order
	// of the head→body condensation: a predicate's bodies never live in a
	// higher stratum. The retraction protocol releases staged suspects in
	// ascending stratum waves (Node.ReleaseStaged), so supports re-derive
	// before their dependents validate.
	Stratum int

	// tableID is a dense index over the program's stored (non-event)
	// predicates, assigned at compile time so nodes can keep relations in
	// a slice instead of resolving a string map per delta. -1 for events.
	tableID int
	// occs caches Occurrences(Name) so one predicate lookup serves the
	// whole delta-processing path.
	occs []occurrence
}

// CompiledRule is the executable form of one NDlog rule.
type CompiledRule struct {
	Label       string
	HeadPred    string
	HeadLocPos  int
	HeadIsEvent bool
	headCode    []exprCode
	numVars     int
	atoms       []*atomSpec
	plans       []*plan  // one per body atom position (compile-time default order)
	agg         *AggSpec // non-nil for aggregate rules
	idx         int      // position in Program.Rules; keys per-rule node state
	source      *ndlog.Rule
	slots       map[string]int // variable -> env slot; planner re-plans reuse it
	// headRecursive mirrors PredInfo.Recursive for the head predicate:
	// aggregate winner promotions triggered by deletes of such rules are
	// staged for the re-derivation phase (agg.go).
	headRecursive bool
	// headStratum mirrors PredInfo.Stratum for the head predicate; staged
	// aggregate groups release in its wave.
	headStratum int
	// condBase offsets this rule's non-atom body terms into the program-
	// wide condition-statistics space [condBase, condBase+numTerms):
	// stepCond steps carry the term's rule-local index (planStep.condID),
	// and the measured pass/fail tallies (shard.condStats) are keyed by
	// condBase+condID — stable across plan swaps, because rebuilt plans
	// re-derive the same term indexing from the rule source.
	condBase int
	numTerms int
}

// AggSpec describes an aggregate rule head.
type AggSpec struct {
	Fn        string // MIN, MAX, COUNT, AGGLIST
	AggPos    int    // head argument position holding the aggregate
	groupCode []exprCode
	sortSlot  int   // MIN/MAX: slot of the aggregated variable
	carried   []int // MIN/MAX: slots of carried variables
	listSlots []int // AGGLIST: slots of the listed variables
}

type atomSpec struct {
	pred  string
	arity int
	event bool
	args  []ndlog.Expr
}

// Compile validates and compiles an NDlog program.
func Compile(p *ndlog.Program) (*Program, error) {
	if err := ndlog.Validate(p); err != nil {
		return nil, err
	}
	prog := &Program{
		byBodyPred: make(map[string][]occurrence),
		preds:      make(map[string]*PredInfo),
	}
	heads := ndlog.HeadPreds(p)
	notePred := func(name string, arity int) error {
		info, ok := prog.preds[name]
		if !ok {
			prog.preds[name] = &PredInfo{
				Name:  name,
				Arity: arity,
				Event: ndlog.IsEventPred(name),
				Base:  !heads[name],
			}
			return nil
		}
		if info.Arity != arity {
			return fmt.Errorf("engine: predicate %s used with arities %d and %d", name, info.Arity, arity)
		}
		return nil
	}

	for i, r := range p.Rules {
		label := r.Label
		if label == "" {
			label = fmt.Sprintf("r%d", i+1)
		}
		cr, err := compileRule(r, label)
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", label, err)
		}
		prog.Rules = append(prog.Rules, cr)
		if err := notePred(cr.HeadPred, headArity(r)); err != nil {
			return nil, err
		}
		for pos, a := range cr.atoms {
			if err := notePred(a.pred, a.arity); err != nil {
				return nil, err
			}
			prog.byBodyPred[a.pred] = append(prog.byBodyPred[a.pred], occurrence{rule: cr, pos: pos})
		}
	}
	for _, f := range p.Facts {
		if err := notePred(f.Pred, len(f.Args)); err != nil {
			return nil, err
		}
	}

	// Number every join step and record scratch sizes for plan-bind time.
	for _, info := range prog.preds {
		if info.Event {
			info.tableID = -1
			continue
		}
		info.tableID = prog.numTables
		prog.numTables++
	}
	for name, info := range prog.preds {
		info.occs = prog.byBodyPred[name]
	}
	for ri, cr := range prog.Rules {
		cr.idx = ri
		cr.condBase = prog.numConds
		prog.numConds += cr.numTerms
		if cr.planable() {
			prog.planable = true
		}
		if cr.numVars > prog.maxVars {
			prog.maxVars = cr.numVars
		}
		if len(cr.atoms) > prog.maxAtoms {
			prog.maxAtoms = len(cr.atoms)
		}
		if cr.agg != nil && len(cr.agg.groupCode) > prog.maxGroup {
			prog.maxGroup = len(cr.agg.groupCode)
		}
		for _, pl := range cr.plans {
			for i := range pl.steps {
				if pl.steps[i].kind == stepJoin {
					pl.steps[i].joinID = prog.numJoins
					prog.numJoins++
				}
			}
		}
	}
	prog.markRecursive()
	return prog, nil
}

// headArity accounts for MIN/MAX aggregates with carried attributes, which
// expand in place: min<C,P> contributes two head attributes.
func headArity(r *ndlog.Rule) int {
	n := 0
	for _, a := range r.Head.Args {
		if agg, ok := a.(*ndlog.Agg); ok && (agg.Fn == "MIN" || agg.Fn == "MAX") {
			n += len(agg.Vars)
			continue
		}
		n++
	}
	return n
}

// Pred returns predicate metadata (nil when the program never mentions it).
func (p *Program) Pred(name string) *PredInfo { return p.preds[name] }

// Preds returns all predicates sorted by name.
func (p *Program) Preds() []*PredInfo {
	out := make([]*PredInfo, 0, len(p.preds))
	for _, info := range p.preds {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Occurrences returns the (rule, body position) pairs triggered by deltas
// of the given predicate.
func (p *Program) Occurrences(pred string) []occurrence { return p.byBodyPred[pred] }

func compileRule(r *ndlog.Rule, label string) (*CompiledRule, error) {
	atoms := r.BodyAtoms()
	seen := map[string]int{}
	for _, a := range atoms {
		seen[a.Pred]++
		if seen[a.Pred] > 1 {
			return nil, fmt.Errorf("predicate %s appears twice in the body (self-joins are unsupported)", a.Pred)
		}
	}

	// Assign variable slots: body atom variables first (in occurrence
	// order), then assignment targets.
	slots := map[string]int{}
	alloc := func(name string) int {
		if s, ok := slots[name]; ok {
			return s
		}
		s := len(slots)
		slots[name] = s
		return s
	}
	for _, a := range atoms {
		for _, arg := range a.Args {
			for _, v := range ndlog.Vars(arg) {
				alloc(v)
			}
		}
	}
	for _, t := range r.Body {
		if v, ok := t.(*ndlog.Assign); ok {
			alloc(v.Lhs)
		}
	}

	cr := &CompiledRule{
		Label:       label,
		HeadPred:    r.Head.Pred,
		HeadLocPos:  r.Head.LocPos,
		HeadIsEvent: ndlog.IsEventPred(r.Head.Pred),
		numVars:     len(slots),
		source:      r,
		slots:       slots,
	}
	for _, a := range atoms {
		cr.atoms = append(cr.atoms, &atomSpec{
			pred:  a.Pred,
			arity: len(a.Args),
			event: a.IsEvent(),
			args:  a.Args,
		})
	}
	// numTerms mirrors buildPlan's non-atom term enumeration (assignments
	// and conditions in source order): term i there is condition slot
	// condBase+i in the program-wide statistics space.
	for _, t := range r.Body {
		switch t.(type) {
		case *ndlog.Assign, *ndlog.Cond:
			cr.numTerms++
		}
	}

	// Aggregate rules: this engine evaluates aggregates over a single
	// body atom (MIN/MAX provenance traces to one winning input tuple);
	// join-then-aggregate rules must be split through an intermediate
	// predicate.
	if agg, aggPos := r.AggSpec(); agg != nil {
		if len(atoms) != 1 {
			return nil, fmt.Errorf("aggregate rules must have a single body atom")
		}
		spec := &AggSpec{Fn: agg.Fn, AggPos: aggPos}
		for i, harg := range r.Head.Args {
			if i == aggPos {
				continue
			}
			code, err := compileExpr(harg, slots)
			if err != nil {
				return nil, err
			}
			spec.groupCode = append(spec.groupCode, code)
		}
		switch agg.Fn {
		case "MIN", "MAX":
			if len(agg.Vars) == 0 {
				return nil, fmt.Errorf("%s aggregate needs a variable", agg.Fn)
			}
			s, ok := slots[agg.Vars[0]]
			if !ok {
				return nil, fmt.Errorf("aggregate variable %s unbound", agg.Vars[0])
			}
			spec.sortSlot = s
			for _, v := range agg.Vars[1:] {
				cs, ok := slots[v]
				if !ok {
					return nil, fmt.Errorf("carried variable %s unbound", v)
				}
				spec.carried = append(spec.carried, cs)
			}
		case "COUNT":
			// COUNT<*> has no variable.
		case "AGGLIST":
			for _, v := range agg.Vars {
				s, ok := slots[v]
				if !ok {
					return nil, fmt.Errorf("list variable %s unbound", v)
				}
				spec.listSlots = append(spec.listSlots, s)
			}
		default:
			return nil, fmt.Errorf("unsupported aggregate %s", agg.Fn)
		}
		cr.agg = spec
		// The aggregate body may still have assignments/conditions; they
		// run inside the single plan.
	} else {
		for _, harg := range r.Head.Args {
			code, err := compileExpr(harg, slots)
			if err != nil {
				return nil, err
			}
			cr.headCode = append(cr.headCode, code)
		}
	}

	// Build one plan per delta position (compile-time default order; the
	// planner may later rebuild these per node from measured statistics).
	for k := range atoms {
		pl, err := buildPlan(cr, atoms, slots, k, nil, nil)
		if err != nil {
			return nil, err
		}
		cr.plans = append(cr.plans, pl)
	}
	return cr, nil
}

// planable reports whether the planner can usefully reorder this rule:
// non-aggregate and at least three body atoms (with two, the delta position
// fixes the only remaining probe, so every legal plan is the default one).
func (cr *CompiledRule) planable() bool {
	return cr.agg == nil && len(cr.atoms) >= 3
}
