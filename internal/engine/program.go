package engine

import (
	"fmt"
	"sort"

	"repro/internal/ndlog"
	"repro/internal/types"
)

// Program is a compiled NDlog program shared (immutably) by every node.
type Program struct {
	Rules      []*CompiledRule
	byBodyPred map[string][]occurrence
	preds      map[string]*PredInfo

	// Hot-path sizing, computed once at compile time so nodes can bind
	// index handles and allocate scratch arenas before evaluation starts.
	numJoins  int // total stepJoin steps across all plans; joinIDs are [0,numJoins)
	numTables int // stored (non-event) predicates; tableIDs are [0,numTables)
	maxVars   int // widest rule environment
	maxAtoms  int // widest rule body
	maxGroup  int // widest aggregate group-by list
}

type occurrence struct {
	rule *CompiledRule
	pos  int // body atom position triggered by the delta
}

// PredInfo describes one predicate of the program.
type PredInfo struct {
	Name  string
	Arity int
	Event bool
	Base  bool // EDB: never derived by a rule

	// tableID is a dense index over the program's stored (non-event)
	// predicates, assigned at compile time so nodes can keep relations in
	// a slice instead of resolving a string map per delta. -1 for events.
	tableID int
	// occs caches Occurrences(Name) so one predicate lookup serves the
	// whole delta-processing path.
	occs []occurrence
}

// CompiledRule is the executable form of one NDlog rule.
type CompiledRule struct {
	Label       string
	HeadPred    string
	HeadLocPos  int
	HeadIsEvent bool
	headCode    []exprCode
	numVars     int
	atoms       []*atomSpec
	plans       []*plan  // one per body atom position
	agg         *AggSpec // non-nil for aggregate rules
	idx         int      // position in Program.Rules; keys per-rule node state
	source      *ndlog.Rule
}

// AggSpec describes an aggregate rule head.
type AggSpec struct {
	Fn        string // MIN, MAX, COUNT, AGGLIST
	AggPos    int    // head argument position holding the aggregate
	groupCode []exprCode
	sortSlot  int   // MIN/MAX: slot of the aggregated variable
	carried   []int // MIN/MAX: slots of carried variables
	listSlots []int // AGGLIST: slots of the listed variables
}

type atomSpec struct {
	pred  string
	arity int
	event bool
	args  []ndlog.Expr
}

// bindKind describes how one atom argument is treated during matching.
type bindKind uint8

const (
	bindNew   bindKind = iota // first occurrence: bind the slot
	bindCheck                 // already bound: compare
	bindConst                 // constant: compare
)

type bindSpec struct {
	kind bindKind
	slot int
	val  types.Value
}

type stepKind uint8

const (
	stepJoin stepKind = iota
	stepAssign
	stepCond
)

// keyPart contributes one value to a join-lookup key: either a constant or
// a bound slot.
type keyPart struct {
	isConst bool
	val     types.Value
	slot    int
}

type planStep struct {
	kind stepKind

	// stepJoin
	atom     int
	indexPos []int
	keyParts []keyPart
	binds    []bindSpec
	joinID   int // program-wide join-step id; nodes bind it to an index handle

	// stepAssign / stepCond
	assignSlot int
	expr       exprCode
}

// plan is a delta-evaluation strategy for one body atom position: bind the
// delta tuple, join the remaining atoms in a greedy bound-first order, and
// interleave assignments and conditions as soon as their inputs are bound.
type plan struct {
	deltaBinds []bindSpec
	steps      []planStep
}

// Compile validates and compiles an NDlog program.
func Compile(p *ndlog.Program) (*Program, error) {
	if err := ndlog.Validate(p); err != nil {
		return nil, err
	}
	prog := &Program{
		byBodyPred: make(map[string][]occurrence),
		preds:      make(map[string]*PredInfo),
	}
	heads := ndlog.HeadPreds(p)
	notePred := func(name string, arity int) error {
		info, ok := prog.preds[name]
		if !ok {
			prog.preds[name] = &PredInfo{
				Name:  name,
				Arity: arity,
				Event: ndlog.IsEventPred(name),
				Base:  !heads[name],
			}
			return nil
		}
		if info.Arity != arity {
			return fmt.Errorf("engine: predicate %s used with arities %d and %d", name, info.Arity, arity)
		}
		return nil
	}

	for i, r := range p.Rules {
		label := r.Label
		if label == "" {
			label = fmt.Sprintf("r%d", i+1)
		}
		cr, err := compileRule(r, label)
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", label, err)
		}
		prog.Rules = append(prog.Rules, cr)
		if err := notePred(cr.HeadPred, headArity(r)); err != nil {
			return nil, err
		}
		for pos, a := range cr.atoms {
			if err := notePred(a.pred, a.arity); err != nil {
				return nil, err
			}
			prog.byBodyPred[a.pred] = append(prog.byBodyPred[a.pred], occurrence{rule: cr, pos: pos})
		}
	}
	for _, f := range p.Facts {
		if err := notePred(f.Pred, len(f.Args)); err != nil {
			return nil, err
		}
	}

	// Number every join step and record scratch sizes for plan-bind time.
	for _, info := range prog.preds {
		if info.Event {
			info.tableID = -1
			continue
		}
		info.tableID = prog.numTables
		prog.numTables++
	}
	for name, info := range prog.preds {
		info.occs = prog.byBodyPred[name]
	}
	for ri, cr := range prog.Rules {
		cr.idx = ri
		if cr.numVars > prog.maxVars {
			prog.maxVars = cr.numVars
		}
		if len(cr.atoms) > prog.maxAtoms {
			prog.maxAtoms = len(cr.atoms)
		}
		if cr.agg != nil && len(cr.agg.groupCode) > prog.maxGroup {
			prog.maxGroup = len(cr.agg.groupCode)
		}
		for _, pl := range cr.plans {
			for i := range pl.steps {
				if pl.steps[i].kind == stepJoin {
					pl.steps[i].joinID = prog.numJoins
					prog.numJoins++
				}
			}
		}
	}
	return prog, nil
}

// headArity accounts for MIN/MAX aggregates with carried attributes, which
// expand in place: min<C,P> contributes two head attributes.
func headArity(r *ndlog.Rule) int {
	n := 0
	for _, a := range r.Head.Args {
		if agg, ok := a.(*ndlog.Agg); ok && (agg.Fn == "MIN" || agg.Fn == "MAX") {
			n += len(agg.Vars)
			continue
		}
		n++
	}
	return n
}

// Pred returns predicate metadata (nil when the program never mentions it).
func (p *Program) Pred(name string) *PredInfo { return p.preds[name] }

// Preds returns all predicates sorted by name.
func (p *Program) Preds() []*PredInfo {
	out := make([]*PredInfo, 0, len(p.preds))
	for _, info := range p.preds {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Occurrences returns the (rule, body position) pairs triggered by deltas
// of the given predicate.
func (p *Program) Occurrences(pred string) []occurrence { return p.byBodyPred[pred] }

func compileRule(r *ndlog.Rule, label string) (*CompiledRule, error) {
	atoms := r.BodyAtoms()
	seen := map[string]int{}
	for _, a := range atoms {
		seen[a.Pred]++
		if seen[a.Pred] > 1 {
			return nil, fmt.Errorf("predicate %s appears twice in the body (self-joins are unsupported)", a.Pred)
		}
	}

	// Assign variable slots: body atom variables first (in occurrence
	// order), then assignment targets.
	slots := map[string]int{}
	alloc := func(name string) int {
		if s, ok := slots[name]; ok {
			return s
		}
		s := len(slots)
		slots[name] = s
		return s
	}
	for _, a := range atoms {
		for _, arg := range a.Args {
			for _, v := range ndlog.Vars(arg) {
				alloc(v)
			}
		}
	}
	for _, t := range r.Body {
		if v, ok := t.(*ndlog.Assign); ok {
			alloc(v.Lhs)
		}
	}

	cr := &CompiledRule{
		Label:       label,
		HeadPred:    r.Head.Pred,
		HeadLocPos:  r.Head.LocPos,
		HeadIsEvent: ndlog.IsEventPred(r.Head.Pred),
		numVars:     len(slots),
		source:      r,
	}
	for _, a := range atoms {
		cr.atoms = append(cr.atoms, &atomSpec{
			pred:  a.Pred,
			arity: len(a.Args),
			event: a.IsEvent(),
			args:  a.Args,
		})
	}

	// Aggregate rules: this engine evaluates aggregates over a single
	// body atom (MIN/MAX provenance traces to one winning input tuple);
	// join-then-aggregate rules must be split through an intermediate
	// predicate.
	if agg, aggPos := r.AggSpec(); agg != nil {
		if len(atoms) != 1 {
			return nil, fmt.Errorf("aggregate rules must have a single body atom")
		}
		spec := &AggSpec{Fn: agg.Fn, AggPos: aggPos}
		for i, harg := range r.Head.Args {
			if i == aggPos {
				continue
			}
			code, err := compileExpr(harg, slots)
			if err != nil {
				return nil, err
			}
			spec.groupCode = append(spec.groupCode, code)
		}
		switch agg.Fn {
		case "MIN", "MAX":
			if len(agg.Vars) == 0 {
				return nil, fmt.Errorf("%s aggregate needs a variable", agg.Fn)
			}
			s, ok := slots[agg.Vars[0]]
			if !ok {
				return nil, fmt.Errorf("aggregate variable %s unbound", agg.Vars[0])
			}
			spec.sortSlot = s
			for _, v := range agg.Vars[1:] {
				cs, ok := slots[v]
				if !ok {
					return nil, fmt.Errorf("carried variable %s unbound", v)
				}
				spec.carried = append(spec.carried, cs)
			}
		case "COUNT":
			// COUNT<*> has no variable.
		case "AGGLIST":
			for _, v := range agg.Vars {
				s, ok := slots[v]
				if !ok {
					return nil, fmt.Errorf("list variable %s unbound", v)
				}
				spec.listSlots = append(spec.listSlots, s)
			}
		default:
			return nil, fmt.Errorf("unsupported aggregate %s", agg.Fn)
		}
		cr.agg = spec
		// The aggregate body may still have assignments/conditions; they
		// run inside the single plan.
	} else {
		for _, harg := range r.Head.Args {
			code, err := compileExpr(harg, slots)
			if err != nil {
				return nil, err
			}
			cr.headCode = append(cr.headCode, code)
		}
	}

	// Build one plan per delta position.
	for k := range atoms {
		pl, err := buildPlan(cr, atoms, slots, k)
		if err != nil {
			return nil, err
		}
		cr.plans = append(cr.plans, pl)
	}
	return cr, nil
}

// buildPlan constructs the delta plan for position k.
func buildPlan(cr *CompiledRule, atoms []*ndlog.Atom, slots map[string]int, k int) (*plan, error) {

	bound := map[int]bool{}
	pl := &plan{}

	// computeBinds derives bind specs for an atom given current bound set,
	// updating bound.
	computeBinds := func(a *ndlog.Atom) ([]bindSpec, error) {
		var binds []bindSpec
		for _, arg := range a.Args {
			switch v := arg.(type) {
			case *ndlog.Var:
				slot := slots[v.Name]
				if bound[slot] {
					binds = append(binds, bindSpec{kind: bindCheck, slot: slot})
				} else {
					binds = append(binds, bindSpec{kind: bindNew, slot: slot})
					bound[slot] = true
				}
			case *ndlog.Const:
				binds = append(binds, bindSpec{kind: bindConst, val: v.Val})
			default:
				return nil, fmt.Errorf("body atom %s: argument must be a variable or constant", a.Pred)
			}
		}
		return binds, nil
	}

	// Non-atom terms in source order: guards written before an assignment
	// must execute before it (e.g. f_size(L) > k guarding f_nth(L, k)).
	type nonAtom struct {
		assign *ndlog.Assign
		cond   *ndlog.Cond
	}
	var terms []nonAtom
	for _, t := range cr.source.Body {
		switch v := t.(type) {
		case *ndlog.Assign:
			terms = append(terms, nonAtom{assign: v})
		case *ndlog.Cond:
			terms = append(terms, nonAtom{cond: v})
		}
	}
	termDone := make([]bool, len(terms))
	// flush appends the pending assignments and conditions whose
	// dependencies are bound, preserving source order; it retries until a
	// fixed point so chains (R=..., RID=f(R)) resolve.
	flush := func() error {
		for {
			progress := false
			for i, tm := range terms {
				if termDone[i] {
					continue
				}
				var deps []string
				if tm.assign != nil {
					deps = ndlog.Vars(tm.assign.Rhs)
				} else {
					deps = ndlog.Vars(tm.cond.Expr)
				}
				ready := true
				for _, dep := range deps {
					if !bound[slots[dep]] {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				if tm.assign != nil {
					code, err := compileExpr(tm.assign.Rhs, slots)
					if err != nil {
						return err
					}
					pl.steps = append(pl.steps, planStep{kind: stepAssign, assignSlot: slots[tm.assign.Lhs], expr: code})
					bound[slots[tm.assign.Lhs]] = true
				} else {
					code, err := compileExpr(tm.cond.Expr, slots)
					if err != nil {
						return err
					}
					pl.steps = append(pl.steps, planStep{kind: stepCond, expr: code})
				}
				termDone[i] = true
				progress = true
			}
			if !progress {
				return nil
			}
		}
	}

	var err error
	pl.deltaBinds, err = computeBinds(atoms[k])
	if err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}

	remaining := map[int]bool{}
	for i := range atoms {
		if i != k {
			remaining[i] = true
		}
	}
	for len(remaining) > 0 {
		// Greedy: pick the remaining atom with the most bound/const
		// argument positions (ties broken by position for determinism).
		best, bestScore := -1, -1
		for i := 0; i < len(atoms); i++ {
			if !remaining[i] {
				continue
			}
			score := 0
			for _, arg := range atoms[i].Args {
				switch v := arg.(type) {
				case *ndlog.Var:
					if bound[slots[v.Name]] {
						score++
					}
				case *ndlog.Const:
					score++
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		a := atoms[best]
		delete(remaining, best)

		// Index on the bound/const positions; bind the rest.
		var indexPos []int
		var keyParts []keyPart
		for pos, arg := range a.Args {
			switch v := arg.(type) {
			case *ndlog.Var:
				if bound[slots[v.Name]] {
					indexPos = append(indexPos, pos)
					keyParts = append(keyParts, keyPart{slot: slots[v.Name]})
				}
			case *ndlog.Const:
				indexPos = append(indexPos, pos)
				keyParts = append(keyParts, keyPart{isConst: true, val: v.Val})
			}
		}
		binds, err := computeBinds(a)
		if err != nil {
			return nil, err
		}
		pl.steps = append(pl.steps, planStep{
			kind: stepJoin, atom: best, indexPos: indexPos, keyParts: keyParts, binds: binds,
		})
		if err := flush(); err != nil {
			return nil, err
		}
	}

	for i, done := range termDone {
		if !done {
			if terms[i].assign != nil {
				return nil, fmt.Errorf("assignment %s never becomes evaluable", terms[i].assign.Lhs)
			}
			return nil, fmt.Errorf("condition %s never becomes evaluable", ndlog.ExprString(terms[i].cond.Expr))
		}
	}
	return pl, nil
}

// bindTuple matches a tuple against bind specs, writing new bindings into
// env; it reports whether the match succeeds.
func bindTuple(binds []bindSpec, t types.Tuple, env []types.Value) bool {
	if len(binds) != len(t.Args) {
		return false
	}
	for i, b := range binds {
		switch b.kind {
		case bindNew:
			env[b.slot] = t.Args[i]
		case bindCheck:
			if !env[b.slot].Equal(t.Args[i]) {
				return false
			}
		case bindConst:
			if !b.val.Equal(t.Args[i]) {
				return false
			}
		}
	}
	return true
}

// appendLookupKey builds the join-probe key for the step into b: the
// fixed-width handle key of each key part (matching appendIndexKey on the
// index side). Probes pass a per-node scratch buffer so the innermost join
// loop allocates nothing, and interned handles mean no string or digest
// bytes are copied per probe.
func (s *planStep) appendLookupKey(b []byte, env []types.Value) []byte {
	for _, p := range s.keyParts {
		if p.isConst {
			b = p.val.AppendKey(b)
		} else {
			b = env[p.slot].AppendKey(b)
		}
	}
	return b
}
