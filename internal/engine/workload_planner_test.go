package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/topology"
	"repro/internal/types"
)

// Planner fences on a real protocol workload (ISSUE 8, S1): the CHORD
// program's candidate and lookup rules have >= 3-atom bodies, so the cost
// planner runs on genuine joins — not the synthetic reach/ok program of
// planner_test.go. A stat perturbation forces join orders that differ from
// syntax order, and the fixpoint must stay bit-identical to the NoReplan
// baseline across modes, shard counts and lookup/liveness churn.

var chordPreds = []string{"ident", "peer", "alive", "cand", "bestSucc", "succ",
	"notify", "candPred", "pred", "finger", "lookup", "lookupRes"}

// runChordSched drives the chord workload script on a scheduler: boot the
// EDB, issue lookups, churn a liveness pair out and back in, with a forced
// re-plan at every quiescence point when a hook is set. Returns whether any
// re-plan changed a plan.
func runChordSched(t *testing.T, mode ProvMode, shards int, hook func(string, string, float64) float64) (*Scheduler, bool) {
	t.Helper()
	prog, err := Compile(apps.Chord())
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Ring(8, rand.New(rand.NewSource(5)))
	s := NewScheduler(prog, mode, topo.N, shards, 0)
	for i := 0; i < s.NumNodes(); i++ {
		if hook == nil {
			s.Node(i).NoReplan = true
		} else {
			s.Node(i).statHook = hook
		}
	}
	changed := false
	step := func() {
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if hook != nil {
			for i := 0; i < s.NumNodes(); i++ {
				if s.Node(i).ForceReplan() {
					changed = true
				}
			}
		}
	}
	base := apps.ChordBase(topo)
	for i := 0; i < topo.N; i++ {
		for _, tup := range base[types.NodeID(i)] {
			s.InsertBase(types.NodeID(i), tup)
		}
	}
	step()
	for _, lk := range apps.ChordLookups(topo, 6, 3) {
		s.InsertBase(lk.Loc(), lk)
	}
	step()
	l := topo.Links[0]
	s.DeleteBase(l.U, apps.AliveTuple(l.U, l.V))
	s.DeleteBase(l.V, apps.AliveTuple(l.V, l.U))
	step()
	s.InsertBase(l.U, apps.AliveTuple(l.U, l.V))
	s.InsertBase(l.V, apps.AliveTuple(l.V, l.U))
	step()
	return s, changed
}

// TestChordPlannerEquivalence: perturbed plans on the chord workload reach
// the same fixpoint as the syntax-order baseline — all four provenance
// modes, shards 1 and 4, three perturbation seeds.
func TestChordPlannerEquivalence(t *testing.T) {
	modes := []ProvMode{ProvNone, ProvReference, ProvValue, ProvCentralized}
	anyChanged := false
	for _, mode := range modes {
		base, _ := runChordSched(t, mode, 1, nil)
		for _, seed := range []int64{1, 2, 3} {
			hook := perturbHook(seed)
			for _, shards := range []int{1, 4} {
				s, ch := runChordSched(t, mode, shards, hook)
				anyChanged = anyChanged || ch
				diffStates(t, fmt.Sprintf("chord %s shards=%d seed=%d", mode, shards, seed),
					base.NumNodes(), chordPreds,
					func(i int) *Node { return base.Node(i) },
					func(i int) *Node { return s.Node(i) })
			}
		}
	}
	if !anyChanged {
		t.Fatal("no perturbation changed a chord plan; the fence is vacuous")
	}
}

// TestChordPlannerPicksNonSyntaxOrder pins the S1 claim directly: with the
// alive relation's statistics inflated, the planner must move the ident
// probe ahead of alive in rule c1's peer-delta pipeline — a join order the
// syntax-order default would never produce — and the -explain rendering
// (the same ExplainPlans output `exspan -explain` prints) must show it.
func TestChordPlannerPicksNonSyntaxOrder(t *testing.T) {
	hook := func(pred, idx string, est float64) float64 {
		if pred == "alive" {
			return est * 1000
		}
		return est
	}
	s, changed := runChordSched(t, ProvReference, 1, hook)
	if !changed {
		t.Fatal("inflating alive statistics changed no plan")
	}
	var sb strings.Builder
	s.Node(0).ExplainPlans(&sb)
	out := sb.String()
	i := strings.Index(out, "rule c1")
	if i < 0 {
		t.Fatalf("rule c1 missing from explain output:\n%s", out)
	}
	seg := out[i:]
	if j := strings.Index(seg[1:], "rule "); j >= 0 {
		seg = seg[:j+1]
	}
	d := strings.Index(seg, "delta peer")
	if d < 0 {
		t.Fatalf("rule c1 has no peer-delta pipeline:\n%s", seg)
	}
	pipe := seg[d:]
	if j := strings.Index(pipe[1:], "delta "); j >= 0 {
		pipe = pipe[:j+1]
	}
	if !strings.Contains(pipe, "[planned]") {
		t.Fatalf("peer-delta pipeline not planned:\n%s", pipe)
	}
	ji, ja := strings.Index(pipe, "join ident"), strings.Index(pipe, "join alive")
	if ji < 0 || ja < 0 {
		t.Fatalf("peer-delta pipeline missing joins:\n%s", pipe)
	}
	if ji > ja {
		t.Fatalf("planner kept syntax order (alive before ident) despite 1000x skew:\n%s", pipe)
	}

	// Equivalence against the fixed-plan baseline still holds for this
	// targeted skew, not just the hash perturbations.
	base, _ := runChordSched(t, ProvReference, 1, nil)
	diffStates(t, "chord targeted-skew", base.NumNodes(), chordPreds,
		func(i int) *Node { return base.Node(i) },
		func(i int) *Node { return s.Node(i) })
}
