package engine

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/bdd"
	"repro/internal/provenance"
	"repro/internal/types"
)

// ProvMode selects how provenance is maintained and distributed (§3).
type ProvMode uint8

// Provenance distribution modes.
const (
	// ProvNone disables provenance maintenance (the evaluation's
	// "No Prov." baseline).
	ProvNone ProvMode = iota
	// ProvReference maintains reference-based distributed provenance:
	// ruleExec rows at the deriving node, prov rows at the tuple's node,
	// and only the (RID, RLoc) pointer shipped with each tuple.
	ProvReference
	// ProvValue ships the full provenance of every tuple, encoded as a
	// BDD, with the tuple itself (the "Value-based Prov. (BDD)" line).
	ProvValue
	// ProvCentralized relays every prov and ruleExec row to a central
	// server node as additional messages.
	ProvCentralized
)

func (m ProvMode) String() string {
	switch m {
	case ProvNone:
		return "none"
	case ProvReference:
		return "reference"
	case ProvValue:
		return "value"
	case ProvCentralized:
		return "centralized"
	}
	return "?"
}

// localDelta is one unit of PSN work in a node's FIFO queue.
type localDelta struct {
	tuple   types.Tuple
	sign    int8
	rid     types.ID
	rloc    types.NodeID
	isBase  bool
	payload bdd.Ref // value mode: decoded provenance of this derivation
}

// Node is one ExSPAN engine instance: the PSN evaluator plus provenance
// bookkeeping for a single network node.
type Node struct {
	ID        types.NodeID
	Prog      *Program
	Mode      ProvMode
	Transport Transport
	Central   types.NodeID // ProvCentralized: the server node

	// Store holds this node's partition of the provenance graph
	// (reference and centralized modes).
	Store *provenance.Store

	// Mgr/Alloc support value-based provenance payloads. Alloc must be
	// shared across the cluster so BDD variable numbering is globally
	// consistent.
	Mgr   *bdd.Manager
	Alloc *algebra.VarAlloc

	tables   map[string]*Relation
	aggState map[string]map[string]*aggGroup
	queue    []localDelta
	draining bool

	// Err records the first internal evaluation error (malformed program
	// data); the node stops deriving after an error.
	Err error

	// Counters.
	DeltasProcessed int64
	RulesFired      int64
}

// NewNode creates an engine node for the given compiled program.
func NewNode(id types.NodeID, prog *Program, mode ProvMode, tr Transport, alloc *algebra.VarAlloc) *Node {
	n := &Node{
		ID:        id,
		Prog:      prog,
		Mode:      mode,
		Transport: tr,
		Store:     provenance.NewStore(id),
		tables:    make(map[string]*Relation),
		aggState:  make(map[string]map[string]*aggGroup),
		Alloc:     alloc,
	}
	if mode == ProvValue {
		n.Mgr = bdd.New()
		if n.Alloc == nil {
			n.Alloc = algebra.NewVarAlloc()
		}
	}
	// Pre-create relations and the indexes every join plan needs.
	for _, info := range prog.Preds() {
		if !info.Event {
			n.tables[info.Name] = NewRelation(info.Name)
		}
	}
	for _, r := range prog.Rules {
		for _, pl := range r.plans {
			for _, st := range pl.steps {
				if st.kind != stepJoin {
					continue
				}
				a := r.atoms[st.atom]
				if !a.event {
					n.table(a.pred).EnsureIndex(st.indexPos)
				}
			}
		}
	}
	return n
}

func (n *Node) table(pred string) *Relation {
	t := n.tables[pred]
	if t == nil {
		t = NewRelation(pred)
		n.tables[pred] = t
	}
	return t
}

// Table exposes a relation for inspection (nil when absent).
func (n *Node) Table(pred string) *Relation { return n.tables[pred] }

// PayloadOf returns the value-mode provenance payload of a visible tuple —
// the "immediately available" provenance that lets a node accept or reject
// state without a distributed query. It reports false when the node is not
// in ProvValue mode or the tuple is not visible; interpret the Ref against
// n.Mgr and the cluster's shared VarAlloc.
func (n *Node) PayloadOf(t types.Tuple) (bdd.Ref, bool) {
	if n.Mode != ProvValue {
		return bdd.False, false
	}
	rel := n.tables[t.Pred]
	if rel == nil {
		return bdd.False, false
	}
	e := rel.get(t)
	if e == nil || !e.visible {
		return bdd.False, false
	}
	return e.payload, true
}

// InsertBase injects a base (EDB) tuple at this node and runs to local
// quiescence.
func (n *Node) InsertBase(t types.Tuple) {
	n.enqueue(localDelta{tuple: t, sign: Insert, rloc: n.ID, isBase: true})
	n.drain()
}

// DeleteBase retracts a base tuple.
func (n *Node) DeleteBase(t types.Tuple) {
	n.enqueue(localDelta{tuple: t, sign: Delete, rloc: n.ID, isBase: true})
	n.drain()
}

// InjectEvent fires an event tuple at this node (e.g. a PACKETFORWARD
// ePacket).
func (n *Node) InjectEvent(t types.Tuple) {
	d := localDelta{tuple: t, sign: Insert, rloc: n.ID, isBase: true}
	if n.Mode == ProvValue {
		d.payload = bdd.True
	}
	n.enqueue(d)
	n.drain()
}

// HandleMessage applies a tuple delta received from another node.
func (n *Node) HandleMessage(from types.NodeID, m *Message) {
	d := localDelta{tuple: m.Tuple, sign: m.Delta}
	if m.HasRef {
		d.rid, d.rloc = m.RID, m.RLoc
	}
	if n.Mode == ProvValue {
		if m.Payload != nil {
			ref, _, err := n.Mgr.Decode(m.Payload)
			if err != nil {
				n.fail(fmt.Errorf("node %s: bad payload from %s: %w", n.ID, from, err))
				return
			}
			d.payload = ref
		} else {
			d.payload = bdd.True
		}
	}
	n.enqueue(d)
	n.drain()
}

func (n *Node) fail(err error) {
	if n.Err == nil {
		n.Err = err
	}
}

func (n *Node) enqueue(d localDelta) { n.queue = append(n.queue, d) }

// drain processes queued deltas FIFO until quiescent (the PSN pipeline).
func (n *Node) drain() {
	if n.draining {
		return
	}
	n.draining = true
	defer func() { n.draining = false }()
	for len(n.queue) > 0 && n.Err == nil {
		d := n.queue[0]
		n.queue = n.queue[1:]
		n.process(d)
	}
}

func (n *Node) process(d localDelta) {
	n.DeltasProcessed++
	info := n.Prog.Pred(d.tuple.Pred)
	isEvent := info != nil && info.Event || info == nil && ndlogIsEvent(d.tuple.Pred)
	if isEvent {
		// Events are transient: fire rules, never materialize. Both
		// insertion and deletion deltas flow through events — the
		// rewritten provenance-maintenance programs rely on deletion
		// deltas cascading through their eHTemp/eH events ("rule r20
		// compiles into a series of insertion and deletion delta rules").
		// Event provenance rows are recorded symmetrically so data-plane
		// activity (e.g. packet forwarding) can be traced.
		if d.sign == Update {
			return
		}
		if n.Mode == ProvReference {
			vid := d.tuple.VID()
			if d.sign == Insert {
				n.Store.RegisterTuple(d.tuple)
				n.Store.AddProv(vid, d.rid, d.rloc)
			} else {
				n.Store.DelProv(vid, d.rid, d.rloc)
			}
		}
		// Centralized: base events are reported by their injector; derived
		// events were already reported by the deriving node.
		if n.Mode == ProvCentralized && d.isBase {
			n.sendProvRow(n.ID, d.tuple.VID(), types.ZeroID, n.ID, d.sign)
		}
		n.fireAll(d.tuple, d.sign, nil, d.payload)
		return
	}

	// The provenance meta-relations themselves (rows relayed to a
	// centralized server, or produced by a rewrite-generated program) are
	// stored without further provenance bookkeeping.
	meta := d.tuple.Pred == "prov" || d.tuple.Pred == "ruleExec"

	rel := n.table(d.tuple.Pred)
	switch d.sign {
	case Insert:
		e := rel.getOrCreate(d.tuple)
		dv := e.derivs[d.rid]
		if dv == nil {
			dv = &deriv{rid: d.rid, rloc: d.rloc, payload: bdd.False}
			e.derivs[d.rid] = dv
		}
		dv.count++
		if n.Mode == ProvReference && !meta {
			vid := n.Store.RegisterTuple(d.tuple)
			n.Store.AddProv(vid, d.rid, d.rloc)
		}
		// Centralized: the deriving node reports derived rows; the owner
		// reports base rows.
		if n.Mode == ProvCentralized && !meta && d.isBase {
			n.sendProvRow(n.ID, d.tuple.VID(), types.ZeroID, n.ID, Insert)
		}
		payloadChanged := false
		if n.Mode == ProvValue {
			if d.isBase {
				dv.payload = n.Mgr.Var(n.Alloc.VarOf(algebra.Base{
					VID: d.tuple.VID(), Label: d.tuple.String(), Node: n.ID,
				}))
			} else {
				dv.payload = d.payload
			}
			payloadChanged = n.recomputePayload(e)
		}
		if !e.visible {
			rel.setVisible(e, true)
			n.fireAll(d.tuple, Insert, e, e.payload)
		} else if payloadChanged {
			n.fireAll(d.tuple, Update, e, e.payload)
		}

	case Delete:
		e := rel.get(d.tuple)
		if e == nil {
			return
		}
		dv := e.derivs[d.rid]
		if dv == nil {
			return
		}
		dv.count--
		if dv.count <= 0 {
			delete(e.derivs, d.rid)
		}
		if n.Mode == ProvReference && !meta {
			n.Store.DelProv(d.tuple.VID(), d.rid, d.rloc)
		}
		if n.Mode == ProvCentralized && !meta && d.isBase {
			n.sendProvRow(n.ID, d.tuple.VID(), types.ZeroID, n.ID, Delete)
		}
		if len(e.derivs) == 0 {
			rel.setVisible(e, false)
			n.fireAll(d.tuple, Delete, e, e.payload)
		} else if n.Mode == ProvValue && n.recomputePayload(e) {
			n.fireAll(d.tuple, Update, e, e.payload)
		}

	case Update:
		if n.Mode != ProvValue {
			return
		}
		e := rel.get(d.tuple)
		if e == nil || !e.visible {
			return
		}
		dv := e.derivs[d.rid]
		if dv == nil {
			return
		}
		dv.payload = d.payload
		if n.recomputePayload(e) {
			n.fireAll(d.tuple, Update, e, e.payload)
		}
	}
}

func ndlogIsEvent(pred string) bool {
	return len(pred) >= 2 && pred[0] == 'e' && pred[1] >= 'A' && pred[1] <= 'Z'
}

// recomputePayload refreshes the entry's combined (OR) payload; it reports
// whether the payload changed.
func (n *Node) recomputePayload(e *entry) bool {
	comb := bdd.False
	for _, dv := range e.derivs {
		comb = n.Mgr.Or(comb, dv.payload)
	}
	if comb == e.payload {
		return false
	}
	e.payload = comb
	return true
}

// fireAll runs every rule occurrence triggered by a delta of this
// predicate. deltaEntry may be nil (events); payload is the tuple's current
// provenance payload in value mode.
func (n *Node) fireAll(t types.Tuple, sign int8, deltaEntry *entry, payload bdd.Ref) {
	for _, occ := range n.Prog.Occurrences(t.Pred) {
		if occ.rule.agg != nil {
			n.fireAgg(occ.rule, t, sign, payload)
		} else {
			n.firePlan(occ.rule, occ.pos, t, sign, deltaEntry, payload)
		}
	}
}

// firePlan evaluates the delta plan of (rule, pos) for tuple t and emits
// head derivations.
func (n *Node) firePlan(rule *CompiledRule, pos int, t types.Tuple, sign int8,
	deltaEntry *entry, deltaPayload bdd.Ref) {

	pl := rule.plans[pos]
	env := make([]types.Value, rule.numVars)
	if !bindTuple(pl.deltaBinds, t, env) {
		return
	}
	matched := make([]types.Tuple, len(rule.atoms))
	payloads := make([]bdd.Ref, len(rule.atoms))
	matched[pos] = t
	payloads[pos] = deltaPayload

	var exec func(step int)
	exec = func(step int) {
		if n.Err != nil {
			return
		}
		if step == len(pl.steps) {
			n.emitDerivation(rule, env, matched, payloads, sign)
			return
		}
		st := &pl.steps[step]
		switch st.kind {
		case stepAssign:
			v, err := st.expr(env)
			if err != nil {
				n.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
				return
			}
			env[st.assignSlot] = v
			exec(step + 1)
		case stepCond:
			v, err := st.expr(env)
			if err != nil {
				n.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
				return
			}
			if v.Truthy() {
				exec(step + 1)
			}
		case stepJoin:
			rel := n.table(rule.atoms[st.atom].pred)
			for _, cand := range rel.Lookup(st.indexPos, st.lookupKey(env)) {
				if !bindTuple(st.binds, cand.tuple, env) {
					continue
				}
				matched[st.atom] = cand.tuple
				payloads[st.atom] = cand.payload
				exec(step + 1)
			}
		}
	}
	exec(0)
}

// emitDerivation computes the head tuple for one complete join result and
// routes the delta (locally or over the transport), maintaining provenance
// per the configured mode.
func (n *Node) emitDerivation(rule *CompiledRule, env []types.Value,
	matched []types.Tuple, payloads []bdd.Ref, sign int8) {

	n.RulesFired++
	args := make([]types.Value, len(rule.headCode))
	for i, code := range rule.headCode {
		v, err := code(env)
		if err != nil {
			n.fail(fmt.Errorf("rule %s head: %w", rule.Label, err))
			return
		}
		args[i] = v
	}
	head := types.Tuple{Pred: rule.HeadPred, Args: args}
	dst := args[rule.HeadLocPos].AsNode()
	if dst < 0 {
		n.fail(fmt.Errorf("rule %s: head location is not a node", rule.Label))
		return
	}

	inputVIDs := make([]types.ID, len(matched))
	for i, in := range matched {
		inputVIDs[i] = in.VID()
	}
	rid := types.RuleExecID(rule.Label, n.ID, inputVIDs)

	if sign != Update {
		headVID := head.VID()
		switch n.Mode {
		case ProvReference:
			if sign == Insert {
				n.Store.AddRuleExec(rid, rule.Label, inputVIDs)
				for _, in := range inputVIDs {
					n.Store.AddParent(in, rid, headVID, dst)
				}
			} else {
				n.Store.DelRuleExec(rid)
				for _, in := range inputVIDs {
					n.Store.DelParent(in, rid, headVID, dst)
				}
			}
		case ProvCentralized:
			// The deriving node knows the whole derivation: it relays both
			// the ruleExec row and the head's prov row to the server.
			n.sendRuleExecRow(rid, rule.Label, inputVIDs, sign)
			n.sendProvRow(dst, headVID, rid, n.ID, sign)
		}
	}

	var payload bdd.Ref
	if n.Mode == ProvValue {
		payload = bdd.True
		for _, p := range payloads {
			payload = n.Mgr.And(payload, p)
		}
	}
	n.route(head, dst, sign, rid, payload)
}

// route delivers a derived delta to its destination node.
func (n *Node) route(head types.Tuple, dst types.NodeID, sign int8, rid types.ID, payload bdd.Ref) {
	if dst == n.ID {
		n.enqueue(localDelta{tuple: head, sign: sign, rid: rid, rloc: n.ID, payload: payload})
		return
	}
	m := &Message{Tuple: head, Delta: sign}
	switch n.Mode {
	case ProvReference:
		m.HasRef, m.RID, m.RLoc = true, rid, n.ID
	case ProvValue:
		// The derivation key still travels so the receiver can maintain
		// its per-derivation payloads; the dominant cost is the payload.
		m.HasRef, m.RID, m.RLoc = true, rid, n.ID
		m.Payload = n.Mgr.Encode(payload, nil)
	}
	n.Transport.Send(n.ID, dst, m)
}

// fireAgg routes a delta of an aggregate rule's body predicate through the
// group state.
func (n *Node) fireAgg(rule *CompiledRule, t types.Tuple, sign int8, payload bdd.Ref) {
	pl := rule.plans[0]
	env := make([]types.Value, rule.numVars)
	if !bindTuple(pl.deltaBinds, t, env) {
		return
	}
	// Aggregate bodies may carry assignments/conditions.
	for i := range pl.steps {
		st := &pl.steps[i]
		switch st.kind {
		case stepAssign:
			v, err := st.expr(env)
			if err != nil {
				n.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
				return
			}
			env[st.assignSlot] = v
		case stepCond:
			v, err := st.expr(env)
			if err != nil {
				n.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
				return
			}
			if !v.Truthy() {
				return
			}
		}
	}
	spec := rule.agg
	groupVals := make([]types.Value, len(spec.groupCode))
	for i, code := range spec.groupCode {
		v, err := code(env)
		if err != nil {
			n.fail(fmt.Errorf("rule %s group: %w", rule.Label, err))
			return
		}
		groupVals[i] = v
	}
	groups := n.aggState[rule.Label]
	if groups == nil {
		groups = map[string]*aggGroup{}
		n.aggState[rule.Label] = groups
	}
	gk := aggEntryKey(types.List(groupVals...), nil)
	g := groups[gk]
	if g == nil {
		g = newAggGroup()
		groups[gk] = g
	}

	if sign == Update {
		// Value-mode payload update: if the updated input is the current
		// winner, the head's payload follows it.
		if n.Mode == ProvValue && g.curWinner != nil && g.curWinner.input.Equal(t) && g.curOut != nil {
			out := *g.curOut
			out.Pred = rule.HeadPred
			rid := types.RuleExecID(rule.Label, n.ID, []types.ID{t.VID()})
			n.route(out, n.ID, Update, rid, payload)
		}
		return
	}

	var sortVal types.Value
	var carried []types.Value
	switch spec.Fn {
	case "MIN", "MAX":
		sortVal = env[spec.sortSlot]
		for _, s := range spec.carried {
			carried = append(carried, env[s])
		}
	case "COUNT":
		sortVal = types.Int(0)
	case "AGGLIST":
		vals := make([]types.Value, 0, len(spec.listSlots))
		for _, s := range spec.listSlots {
			vals = append(vals, env[s])
		}
		if len(vals) > 0 {
			sortVal = vals[0]
			carried = vals[1:]
		} else {
			sortVal = types.Int(0)
		}
	}

	for _, em := range g.update(spec, groupVals, sortVal, carried, t, sign) {
		out := em.tuple
		out.Pred = rule.HeadPred
		n.emitAggChange(rule, out, em, t)
	}
}

// emitAggChange applies provenance bookkeeping for an aggregate output
// change and routes it. Aggregate heads are local by validation.
func (n *Node) emitAggChange(rule *CompiledRule, out types.Tuple, em aggEmit, cause types.Tuple) {
	n.RulesFired++
	var rid types.ID
	var payload bdd.Ref
	if em.hasWin {
		winVID := em.winner.VID()
		rid = types.RuleExecID(rule.Label, n.ID, []types.ID{winVID})
		headVID := out.VID()
		switch n.Mode {
		case ProvReference:
			if em.sign == Insert {
				n.Store.AddRuleExec(rid, rule.Label, []types.ID{winVID})
				n.Store.AddParent(winVID, rid, headVID, n.ID)
			} else {
				n.Store.DelRuleExec(rid)
				n.Store.DelParent(winVID, rid, headVID, n.ID)
			}
		case ProvCentralized:
			n.sendRuleExecRow(rid, rule.Label, []types.ID{winVID}, em.sign)
			n.sendProvRow(n.ID, headVID, rid, n.ID, em.sign)
		}
		if n.Mode == ProvValue {
			payload = bdd.True
			if e := n.table(em.winner.Pred).get(em.winner); e != nil {
				payload = e.payload
			}
		}
	}
	// COUNT/AGGLIST outputs carry no MIN/MAX-style provenance child (the
	// paper restricts aggregate provenance to MIN and MAX); they enter the
	// graph as base-like vertices via the null RID.
	n.route(out, n.ID, em.sign, rid, payload)
}

// Centralized-mode helpers: provenance rows travel to the server as plain
// prov/ruleExec tuples, whose byte sizes are charged like any message.

func (n *Node) sendProvRow(loc types.NodeID, vid, rid types.ID, rloc types.NodeID, sign int8) {
	row := types.NewTuple("prov", types.Node(loc), types.IDVal(vid), types.IDVal(rid), types.Node(rloc))
	if n.Central == n.ID {
		n.enqueue(localDelta{tuple: row, sign: sign, rloc: n.ID})
		return
	}
	n.Transport.Send(n.ID, n.Central, &Message{Tuple: row, Delta: sign})
}

func (n *Node) sendRuleExecRow(rid types.ID, rule string, inputs []types.ID, sign int8) {
	vids := make([]types.Value, len(inputs))
	for i, id := range inputs {
		vids[i] = types.IDVal(id)
	}
	row := types.NewTuple("ruleExec", types.Node(n.ID), types.IDVal(rid), types.Str(rule), types.List(vids...))
	if n.Central == n.ID {
		n.enqueue(localDelta{tuple: row, sign: sign, rloc: n.ID})
		return
	}
	n.Transport.Send(n.ID, n.Central, &Message{Tuple: row, Delta: sign})
}
