package engine

import (
	"fmt"
	"runtime"

	"repro/internal/algebra"
	"repro/internal/bdd"
	"repro/internal/provenance"
	"repro/internal/types"
)

// ProvMode selects how provenance is maintained and distributed (§3).
type ProvMode uint8

// Provenance distribution modes.
const (
	// ProvNone disables provenance maintenance (the evaluation's
	// "No Prov." baseline).
	ProvNone ProvMode = iota
	// ProvReference maintains reference-based distributed provenance:
	// ruleExec rows at the deriving node, prov rows at the tuple's node,
	// and only the (RID, RLoc) pointer shipped with each tuple.
	ProvReference
	// ProvValue ships the full provenance of every tuple, encoded as a
	// BDD, with the tuple itself (the "Value-based Prov. (BDD)" line).
	ProvValue
	// ProvCentralized relays every prov and ruleExec row to a central
	// server node as additional messages.
	ProvCentralized
)

func (m ProvMode) String() string {
	switch m {
	case ProvNone:
		return "none"
	case ProvReference:
		return "reference"
	case ProvValue:
		return "value"
	case ProvCentralized:
		return "centralized"
	}
	return "?"
}

// Node is one ExSPAN engine instance: the PSN evaluator plus provenance
// bookkeeping for a single network node. Evaluation state lives in one or
// more worker shards (shard.go); with a single shard the node runs the
// classic inline PSN drain, with several it runs batched parallel rounds
// (rounds.go) whose fixpoint state matches the single-shard run exactly.
type Node struct {
	ID        types.NodeID
	Prog      *Program
	Mode      ProvMode
	Transport Transport
	Central   types.NodeID // ProvCentralized: the server node

	// Msgs, when set, is the free list outgoing messages are drawn from;
	// the transport releases them after delivery (see Transport). Nil keeps
	// plain allocation (tests with transports that retain messages). The
	// pool is single-threaded, so sharded fire phases bypass it.
	Msgs *MessagePool

	// Store holds this node's partitions of the provenance graph
	// (reference and centralized modes) behind the single-writer facade.
	Store *provenance.Store

	// Mgr/Alloc support value-based provenance payloads. Alloc must be
	// shared across the cluster so BDD variable numbering is globally
	// consistent.
	Mgr   *bdd.Manager
	Alloc *algebra.VarAlloc

	// Err records the first internal evaluation error (malformed program
	// data); the node stops deriving after an error.
	Err error

	// NoReplan pins the node to the compile-time default plans — the
	// baseline side of planner-equivalence tests and benchmarks.
	NoReplan bool

	// PerSuspectRelease degrades ReleaseStaged to one staged item per wave
	// — the maximally incremental baseline that BenchmarkDRedChurn measures
	// the batched stratum waves against. Correctness is unaffected (release
	// order is confluent); only the number of release/flush round trips
	// changes.
	PerSuspectRelease bool

	// plans is the node's ACTIVE plan set, indexed [rule.idx][bodyPos].
	// It starts as the program's compile-time default and is the only
	// thing Replan swaps; the executor (exec.go) reads plans exclusively
	// through it. Swaps happen only at driver quiescence points, when no
	// fire phase is running.
	plans [][]*plan
	// joinKeys maps each joinID to the (predicate, index) it currently
	// probes, for folding shard fan-out tallies into plan-independent
	// accumulators. Rebuilt on every plan swap. Nil when !Prog.planable.
	joinKeys []statKey
	// fanAcc accumulates measured join fan-out across plan generations.
	fanAcc map[statKey]joinStat
	// condAcc accumulates measured condition pass/fail tallies, indexed by
	// program-wide condition slot (stats.go condStat).
	condAcc []condStat
	// lastReplanDeltas gates re-planning on drift: a re-plan is attempted
	// only after replanMinDeltas further deltas since the previous one.
	lastReplanDeltas int64
	// statHook, when set (tests), perturbs the cost model's fan-out
	// estimates — the lever planner-equivalence fences use to force
	// alternative join orders.
	statHook func(pred, idx string, est float64) float64

	shards   []*shard
	draining bool
	// releasing is true while ReleaseStaged re-emits deferred work; on a
	// sharded node it switches route() from round buffering (no round is
	// active between driver-visible quiescence points) to direct owner-
	// shard enqueueing.
	releasing bool

	// Round-runtime state (rounds.go). curRound is the node's monotone
	// round counter; inRounds is true while a batched round executes
	// (either self-driven or under a Scheduler).
	curRound uint32
	inRounds bool
}

// NewNode creates a single-shard engine node for the given compiled program
// — the classic serial PSN evaluator.
func NewNode(id types.NodeID, prog *Program, mode ProvMode, tr Transport, alloc *algebra.VarAlloc) *Node {
	return NewNodeSharded(id, prog, mode, tr, alloc, 1)
}

// AutoShards is a sentinel shard count meaning "size for this host":
// NewNodeSharded (and the drivers that forward a Shards config to it)
// resolve it through EffectiveShards at construction time.
const AutoShards = -1

// EffectiveShards resolves a requested worker-shard count to the count
// adaptive selection runs: capped at GOMAXPROCS — partitions beyond the
// host's parallelism only pay merge-barrier tax — with AutoShards (or any
// non-positive request) meaning "as many as the host runs in parallel".
// NewNodeSharded applies this only to the AutoShards sentinel: explicit
// counts are honored as configured, so equivalence fences can pin shards=4
// regardless of host.
func EffectiveShards(requested int) int {
	max := runtime.GOMAXPROCS(0)
	if requested <= 0 || requested > max {
		requested = max
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// NewNodeSharded creates an engine node whose state is hash-partitioned
// across the given number of worker shards. Value-based and centralized
// provenance share mutable cluster-wide structures (the BDD manager, the
// relayed meta-rows), so those modes clamp to one shard.
func NewNodeSharded(id types.NodeID, prog *Program, mode ProvMode, tr Transport, alloc *algebra.VarAlloc, shards int) *Node {
	if shards == AutoShards {
		shards = EffectiveShards(shards)
	}
	if shards < 1 || mode == ProvValue || mode == ProvCentralized {
		shards = 1
	}
	n := &Node{
		ID:        id,
		Prog:      prog,
		Mode:      mode,
		Transport: tr,
		Store:     provenance.NewStoreSharded(id, shards),
		Alloc:     alloc,
	}
	if mode == ProvValue {
		n.Mgr = bdd.New()
		if n.Alloc == nil {
			n.Alloc = algebra.NewVarAlloc()
		}
	}
	// The active plan set starts as the compile-time default; shards bind
	// their index handles against it (bindPlans), so it must exist first.
	n.plans = make([][]*plan, len(prog.Rules))
	for i, cr := range prog.Rules {
		n.plans[i] = append([]*plan(nil), cr.plans...)
	}
	if prog.planable {
		n.fanAcc = make(map[statKey]joinStat)
		n.rebuildJoinKeys()
	}
	n.condAcc = make([]condStat, prog.numConds)
	n.shards = make([]*shard, shards)
	for i := range n.shards {
		n.shards[i] = newShard(n, i, n.Store.Part(i))
	}
	if shards > 1 {
		n.initRounds()
	}
	return n
}

// NumShards reports the node's worker shard count.
func (n *Node) NumShards() int { return len(n.shards) }

// rounds reports whether the node evaluates in batched round mode.
func (n *Node) rounds() bool { return len(n.shards) > 1 }

// ownerShard returns the worker shard owning a tuple: a content-derived
// hash, so the assignment is reproducible across processes.
func (n *Node) ownerShard(t types.Tuple) *shard {
	return n.shards[n.ownerIdx(t)]
}

// ownerIdx returns the owning shard's index; the round runtime buckets
// cross-shard deltas by it at emit time so the merge barrier can commit
// per-destination in parallel.
func (n *Node) ownerIdx(t types.Tuple) int {
	if len(n.shards) == 1 {
		return 0
	}
	return int(t.ContentHash() % uint64(len(n.shards)))
}

// Table exposes a single-shard node's relation for inspection (nil when
// absent). Sharded nodes partition each relation across shards — use Tuples
// and TupleCount, which merge across partitions.
func (n *Node) Table(pred string) *Relation {
	if len(n.shards) > 1 {
		return nil
	}
	return n.shards[0].tables[pred]
}

// Tuples returns the visible tuples of a predicate across all shards,
// sorted canonically.
func (n *Node) Tuples(pred string) []types.Tuple {
	if len(n.shards) == 1 {
		if rel := n.shards[0].tables[pred]; rel != nil {
			return rel.Tuples()
		}
		return nil
	}
	var out []types.Tuple
	for _, sh := range n.shards {
		if rel := sh.tables[pred]; rel != nil {
			out = append(out, rel.Tuples()...)
		}
	}
	types.SortTuples(out)
	return out
}

// TupleCount reports the number of visible tuples of a predicate across all
// shards in O(shards).
func (n *Node) TupleCount(pred string) int {
	c := 0
	for _, sh := range n.shards {
		if rel := sh.tables[pred]; rel != nil {
			c += rel.Len()
		}
	}
	return c
}

// DeltasProcessed reports the number of deltas the node has applied.
//
//exspan:merge-phase
func (n *Node) DeltasProcessed() int64 {
	var c int64
	for _, sh := range n.shards {
		c += sh.deltasProcessed
	}
	return c
}

// AggGroupCount reports the number of aggregate groups still holding state
// (a non-empty input multiset, an emitted output, or a live COUNT total)
// across all shards — the aggregate-side leak check of full-retraction
// tests: after every base tuple is retracted, it must be zero.
func (n *Node) AggGroupCount() int {
	c := 0
	for _, sh := range n.shards {
		for _, groups := range sh.aggByRule {
			for _, g := range groups {
				if len(g.entries) > 0 || g.hasOut || g.total != 0 {
					c++
				}
			}
		}
	}
	return c
}

// RulesFired reports the number of rule firings the node has executed.
//
//exspan:merge-phase
func (n *Node) RulesFired() int64 {
	var c int64
	for _, sh := range n.shards {
		c += sh.rulesFired
	}
	return c
}

// PayloadOf returns the value-mode provenance payload of a visible tuple —
// the "immediately available" provenance that lets a node accept or reject
// state without a distributed query. It reports false when the node is not
// in ProvValue mode or the tuple is not visible; interpret the Ref against
// n.Mgr and the cluster's shared VarAlloc.
func (n *Node) PayloadOf(t types.Tuple) (bdd.Ref, bool) {
	if n.Mode != ProvValue {
		return bdd.False, false
	}
	rel := n.shards[0].tables[t.Pred] // ProvValue nodes are single-shard
	if rel == nil {
		return bdd.False, false
	}
	e := rel.get(t)
	if e == nil || !e.visible {
		return bdd.False, false
	}
	return e.payload, true
}

// InsertBase injects a base (EDB) tuple at this node and runs to local
// quiescence.
func (n *Node) InsertBase(t types.Tuple) {
	n.ingest(localDelta{tuple: t, sign: Insert, rloc: n.ID, isBase: true})
}

// DeleteBase retracts a base tuple.
func (n *Node) DeleteBase(t types.Tuple) {
	n.ingest(localDelta{tuple: t, sign: Delete, rloc: n.ID, isBase: true})
}

// InjectEvent fires an event tuple at this node (e.g. a PACKETFORWARD
// ePacket).
func (n *Node) InjectEvent(t types.Tuple) {
	d := localDelta{tuple: t, sign: Insert, rloc: n.ID, isBase: true}
	if n.Mode == ProvValue {
		d.payload = bdd.True
	}
	n.ingest(d)
}

// HandleMessage applies a tuple delta received from another node.
func (n *Node) HandleMessage(from types.NodeID, m *Message) {
	d, ok := n.messageDelta(from, m)
	if !ok {
		return
	}
	n.ingest(d)
}

// depositMessage routes a received delta to its owner shard without
// draining — the Scheduler drives evaluation itself.
func (n *Node) depositMessage(from types.NodeID, m *Message) {
	d, ok := n.messageDelta(from, m)
	if !ok {
		return
	}
	n.deposit(d)
}

func (n *Node) messageDelta(from types.NodeID, m *Message) (localDelta, bool) {
	d := localDelta{tuple: m.Tuple, sign: m.Delta}
	if m.HasRef {
		d.rid, d.rloc = m.RID, m.RLoc
	}
	if n.Mode == ProvValue {
		if m.Payload != nil {
			ref, _, err := n.Mgr.Decode(m.Payload)
			if err != nil {
				n.fail(fmt.Errorf("node %s: bad payload from %s: %w", n.ID, from, err))
				return localDelta{}, false
			}
			d.payload = ref
		} else {
			d.payload = bdd.True
		}
	}
	return d, true
}

// ingest deposits one delta and runs the node to local quiescence.
func (n *Node) ingest(d localDelta) {
	if len(n.shards) == 1 {
		n.shards[0].enqueue(d)
		n.drain()
		return
	}
	n.ownerShard(d.tuple).enqueue(d)
	n.runRounds()
}

// deposit routes a delta to its owner shard without draining — the
// Scheduler drives sharded execution itself.
func (n *Node) deposit(d localDelta) { n.ownerShard(d.tuple).enqueue(d) }

func (n *Node) fail(err error) {
	if n.Err == nil {
		n.Err = err
	}
}

// syncErr propagates the first shard error (in shard order) to Err.
//
//exspan:merge-phase
func (n *Node) syncErr() {
	if n.Err != nil {
		return
	}
	for _, sh := range n.shards {
		if sh.err != nil {
			n.Err = sh.err
			return
		}
	}
}

// ReleaseStaged begins the retraction protocol's re-derivation phase on
// this node: suspects over-deleted with surviving alternate derivations are
// enqueued for re-insertion and staged aggregate groups emit their deferred
// winner. It reports whether any work was produced; the caller then runs
// the node (Flush) — and the whole cluster — to quiescence again, repeating
// until no node stages further work.
//
// Release proceeds in stratified waves: each call releases the lowest
// occupied SCC stratum (PredInfo.Stratum) across all shards as one batch of
// rederive deltas, so a suspect's supports re-derive before the suspects
// that consume them validate, and the driver pays one release/flush round
// trip per stratum instead of one per suspect. Strata that release only
// stale stagings (no-ops under release-time validation) are consumed within
// the same call, so a true return always carries actionable work and a
// false return means nothing is staged. The wave order is purely a
// round-trip optimization — release order cannot affect the fixpoint
// (engine/dred_test.go proves order independence) — and PerSuspectRelease
// degrades the wave to single items for baseline measurement.
//
// Correctness requires the cluster-wide deletion wave to have quiesced
// first: releasing while delete messages are still in flight re-creates the
// race between deletion and re-derivation that diverges on cyclic
// derivations (count-to-infinity). Every driver therefore calls this only
// at a global quiescence point — the simulator's empty event queue, the
// scheduler's drained rounds, the deployment's retired work accounting, or
// Settle under a synchronous transport.
func (n *Node) ReleaseStaged() bool {
	n.releasing = true
	defer func() { n.releasing = false }()
	for {
		stratum := -1
		for _, sh := range n.shards {
			if s := sh.minStagedStratum(); s >= 0 && (stratum < 0 || s < stratum) {
				stratum = s
			}
		}
		if stratum < 0 {
			return false
		}
		var limit *int
		if n.PerSuspectRelease {
			one := 1
			limit = &one
		}
		any := false
		for _, sh := range n.shards {
			if sh.releaseStratum(stratum, limit) {
				any = true
			}
			if limit != nil && *limit == 0 {
				break
			}
		}
		if any {
			return true
		}
	}
}

// Flush runs any pending deposited work to local quiescence under the
// node's execution strategy (serial drain or sharded rounds).
func (n *Node) Flush() { n.localFixpoint() }

// ReleaseAndFlush performs one node's release pass: staged phase-2 work is
// released and, when any was produced, run to local quiescence. It reports
// whether work was released. This is the shared unit of every
// flush-style driver's release loop (Settle, the simulator's OnIdle hook,
// deploy.WaitFixpoint); the Scheduler, whose round loop runs released work
// itself, calls ReleaseStaged alone.
func (n *Node) ReleaseAndFlush() bool {
	if n.Err != nil || !n.ReleaseStaged() {
		return false
	}
	n.Flush()
	return true
}

// Settle drives the retraction protocol's release loop across a set of
// nodes connected by a synchronous transport (one whose Send delivers — and
// cascades — before returning, like the test harnesses): at entry the
// deletion wave has globally quiesced, so staged work is released and run,
// repeatedly, until no node stages anything further.
func Settle(nodes ...*Node) {
	for {
		progress := false
		for _, n := range nodes {
			if n.ReleaseAndFlush() {
				progress = true
			}
		}
		if !progress {
			// Global quiescence: the only point where plan swaps are legal.
			for _, n := range nodes {
				n.Replan()
			}
			return
		}
	}
}

// drain processes queued deltas FIFO until quiescent — the serial PSN
// pipeline of a single-shard node.
//
//exspan:merge-phase
func (n *Node) drain() {
	if n.draining {
		return
	}
	n.draining = true
	defer func() { n.draining = false }()
	sh := n.shards[0]
	for sh.qhead < len(sh.queue) && sh.err == nil && n.Err == nil {
		sh.process(sh.popDelta(), false)
	}
	if sh.qhead == len(sh.queue) {
		sh.queue = sh.queue[:0]
		sh.qhead = 0
	}
	n.syncErr()
}

// newMessage draws an outgoing message from the pool when the evaluation is
// single-threaded (nil pool: plain allocation). Sharded fire phases run in
// parallel, so they bypass the pool.
func (n *Node) newMessage() *Message {
	if n.rounds() {
		return new(Message)
	}
	return n.Msgs.Get()
}

// Centralized-mode helpers: provenance rows travel to the server as plain
// prov/ruleExec tuples, whose byte sizes are charged like any message.
// Centralized nodes are single-shard, so enqueueing on shard 0 is the
// serial-mode local delivery.

func (n *Node) sendProvRow(loc types.NodeID, vid, rid types.ID, rloc types.NodeID, sign int8) {
	row := types.NewTuple("prov", types.Node(loc), types.IDVal(vid), types.IDVal(rid), types.Node(rloc))
	if n.Central == n.ID {
		n.shards[0].enqueue(localDelta{tuple: row, sign: sign, rloc: n.ID})
		return
	}
	m := n.newMessage()
	m.Tuple, m.Delta = row, sign
	n.Transport.Send(n.ID, n.Central, m)
}

func (n *Node) sendRuleExecRow(rid types.ID, rule string, inputs []types.ID, sign int8) {
	vids := make([]types.Value, len(inputs))
	for i, id := range inputs {
		vids[i] = types.IDVal(id)
	}
	row := types.NewTuple("ruleExec", types.Node(n.ID), types.IDVal(rid), types.Str(rule), types.List(vids...))
	if n.Central == n.ID {
		n.shards[0].enqueue(localDelta{tuple: row, sign: sign, rloc: n.ID})
		return
	}
	m := n.newMessage()
	m.Tuple, m.Delta = row, sign
	n.Transport.Send(n.ID, n.Central, m)
}
