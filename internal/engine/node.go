package engine

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/bdd"
	"repro/internal/provenance"
	"repro/internal/types"
)

// ProvMode selects how provenance is maintained and distributed (§3).
type ProvMode uint8

// Provenance distribution modes.
const (
	// ProvNone disables provenance maintenance (the evaluation's
	// "No Prov." baseline).
	ProvNone ProvMode = iota
	// ProvReference maintains reference-based distributed provenance:
	// ruleExec rows at the deriving node, prov rows at the tuple's node,
	// and only the (RID, RLoc) pointer shipped with each tuple.
	ProvReference
	// ProvValue ships the full provenance of every tuple, encoded as a
	// BDD, with the tuple itself (the "Value-based Prov. (BDD)" line).
	ProvValue
	// ProvCentralized relays every prov and ruleExec row to a central
	// server node as additional messages.
	ProvCentralized
)

func (m ProvMode) String() string {
	switch m {
	case ProvNone:
		return "none"
	case ProvReference:
		return "reference"
	case ProvValue:
		return "value"
	case ProvCentralized:
		return "centralized"
	}
	return "?"
}

// localDelta is one unit of PSN work in a node's FIFO queue.
type localDelta struct {
	tuple   types.Tuple
	sign    int8
	rid     types.ID
	rloc    types.NodeID
	isBase  bool
	payload bdd.Ref // value mode: decoded provenance of this derivation
}

// Node is one ExSPAN engine instance: the PSN evaluator plus provenance
// bookkeeping for a single network node.
type Node struct {
	ID        types.NodeID
	Prog      *Program
	Mode      ProvMode
	Transport Transport
	Central   types.NodeID // ProvCentralized: the server node

	// Msgs, when set, is the free list outgoing messages are drawn from;
	// the transport releases them after delivery (see Transport). Nil keeps
	// plain allocation (tests with transports that retain messages).
	Msgs *MessagePool

	// Store holds this node's partition of the provenance graph
	// (reference and centralized modes).
	Store *provenance.Store

	// Mgr/Alloc support value-based provenance payloads. Alloc must be
	// shared across the cluster so BDD variable numbering is globally
	// consistent.
	Mgr   *bdd.Manager
	Alloc *algebra.VarAlloc

	tables   map[string]*Relation
	queue    []localDelta
	qhead    int // drain ring head: queue[qhead:] is pending work
	draining bool

	// Compiled access paths: each stepJoin's index handle, resolved once
	// at plan-bind time (NewNode) and indexed by joinID, so a join probe
	// never re-derives the index from its position list.
	joinIdx []*index
	// tablesByID mirrors tables for the program's stored predicates,
	// indexed by PredInfo.tableID (one map lookup per delta instead of
	// three). aggByRule and aggBodyRel key aggregate state and the
	// aggregate body relation by CompiledRule.idx.
	tablesByID []*Relation
	aggByRule  []map[string]*aggGroup
	aggBodyRel []*Relation

	// Per-node scratch arenas, sized at program-compile time and reused
	// across rule firings. Safe because firing never re-enters the
	// evaluator: derived deltas are enqueued and processed by drain.
	envBuf     []types.Value
	matchedBuf []types.Tuple
	entBuf     []*entry
	payloadBuf []bdd.Ref
	vidBuf     []types.ID
	groupBuf   []types.Value
	carryBuf   []types.Value
	keyBuf     []byte
	ridBuf     []byte
	hashBuf    []byte
	argArena   []types.Value // chunked backing store for emitted head args

	// ridCache memoizes rule-execution identifiers. An RID is the SHA-1 of
	// (rule, this node, exact input VIDs), so it is fully determined by the
	// rule index and the inputs' interned VID handles — a 4+4k-byte key.
	// Under churn the same derivations fire repeatedly (insert, delete,
	// re-insert), and the memo turns every repeat into a map hit instead of
	// a SHA-1. Only derivations whose inputs are all stored tuples are
	// cached: event tuples are transient and usually unique, so caching
	// them would grow the memo (and the intern table) without ever hitting.
	// The memo is monotone per node, bounded by the distinct derivations
	// the workload produces — the same order as the ruleExec partition.
	ridCache map[string]ridCacheVal
	ridKey   []byte

	// Chunked arenas for aggregate state: group and entry structs plus the
	// entry-key scratch. Aggregates allocate one group per (rule, group-by)
	// combination and one entry per distinct input row; boxing each struct
	// individually was a leading allocation class in fixpoint profiles.
	aggKeyBuf     []byte
	aggEntryArena []aggEntry
	aggGroupArena []aggGroup

	// Err records the first internal evaluation error (malformed program
	// data); the node stops deriving after an error.
	Err error

	// Counters.
	DeltasProcessed int64
	RulesFired      int64
}

// NewNode creates an engine node for the given compiled program.
func NewNode(id types.NodeID, prog *Program, mode ProvMode, tr Transport, alloc *algebra.VarAlloc) *Node {
	n := &Node{
		ID:        id,
		Prog:      prog,
		Mode:      mode,
		Transport: tr,
		Store:     provenance.NewStore(id),
		tables:    make(map[string]*Relation),
		Alloc:     alloc,
	}
	if mode == ProvValue {
		n.Mgr = bdd.New()
		if n.Alloc == nil {
			n.Alloc = algebra.NewVarAlloc()
		}
	}
	// Pre-create relations, the indexes every join plan needs, and the
	// per-join compiled handles. Joins against event atoms keep a nil
	// handle: events never materialize, so such probes match nothing.
	n.tablesByID = make([]*Relation, prog.numTables)
	for _, info := range prog.Preds() {
		if !info.Event {
			rel := NewRelation(info.Name)
			n.tables[info.Name] = rel
			n.tablesByID[info.tableID] = rel
		}
	}
	n.joinIdx = make([]*index, prog.numJoins)
	n.aggByRule = make([]map[string]*aggGroup, len(prog.Rules))
	n.aggBodyRel = make([]*Relation, len(prog.Rules))
	for _, r := range prog.Rules {
		for _, pl := range r.plans {
			for i := range pl.steps {
				st := &pl.steps[i]
				if st.kind != stepJoin {
					continue
				}
				a := r.atoms[st.atom]
				if !a.event {
					n.joinIdx[st.joinID] = n.table(a.pred).EnsureIndex(st.indexPos)
				}
			}
		}
		if r.agg != nil && !r.atoms[0].event {
			n.aggBodyRel[r.idx] = n.table(r.atoms[0].pred)
		}
	}
	n.ridCache = make(map[string]ridCacheVal)
	n.envBuf = make([]types.Value, prog.maxVars)
	n.matchedBuf = make([]types.Tuple, prog.maxAtoms)
	n.entBuf = make([]*entry, prog.maxAtoms)
	n.payloadBuf = make([]bdd.Ref, prog.maxAtoms)
	n.vidBuf = make([]types.ID, prog.maxAtoms)
	n.groupBuf = make([]types.Value, prog.maxGroup)
	n.carryBuf = make([]types.Value, 0, prog.maxVars)
	return n
}

func (n *Node) table(pred string) *Relation {
	t := n.tables[pred]
	if t == nil {
		t = NewRelation(pred)
		n.tables[pred] = t
	}
	return t
}

// Table exposes a relation for inspection (nil when absent).
func (n *Node) Table(pred string) *Relation { return n.tables[pred] }

// PayloadOf returns the value-mode provenance payload of a visible tuple —
// the "immediately available" provenance that lets a node accept or reject
// state without a distributed query. It reports false when the node is not
// in ProvValue mode or the tuple is not visible; interpret the Ref against
// n.Mgr and the cluster's shared VarAlloc.
func (n *Node) PayloadOf(t types.Tuple) (bdd.Ref, bool) {
	if n.Mode != ProvValue {
		return bdd.False, false
	}
	rel := n.tables[t.Pred]
	if rel == nil {
		return bdd.False, false
	}
	e := rel.get(t)
	if e == nil || !e.visible {
		return bdd.False, false
	}
	return e.payload, true
}

// InsertBase injects a base (EDB) tuple at this node and runs to local
// quiescence.
func (n *Node) InsertBase(t types.Tuple) {
	n.enqueue(localDelta{tuple: t, sign: Insert, rloc: n.ID, isBase: true})
	n.drain()
}

// DeleteBase retracts a base tuple.
func (n *Node) DeleteBase(t types.Tuple) {
	n.enqueue(localDelta{tuple: t, sign: Delete, rloc: n.ID, isBase: true})
	n.drain()
}

// InjectEvent fires an event tuple at this node (e.g. a PACKETFORWARD
// ePacket).
func (n *Node) InjectEvent(t types.Tuple) {
	d := localDelta{tuple: t, sign: Insert, rloc: n.ID, isBase: true}
	if n.Mode == ProvValue {
		d.payload = bdd.True
	}
	n.enqueue(d)
	n.drain()
}

// HandleMessage applies a tuple delta received from another node.
func (n *Node) HandleMessage(from types.NodeID, m *Message) {
	d := localDelta{tuple: m.Tuple, sign: m.Delta}
	if m.HasRef {
		d.rid, d.rloc = m.RID, m.RLoc
	}
	if n.Mode == ProvValue {
		if m.Payload != nil {
			ref, _, err := n.Mgr.Decode(m.Payload)
			if err != nil {
				n.fail(fmt.Errorf("node %s: bad payload from %s: %w", n.ID, from, err))
				return
			}
			d.payload = ref
		} else {
			d.payload = bdd.True
		}
	}
	n.enqueue(d)
	n.drain()
}

func (n *Node) fail(err error) {
	if n.Err == nil {
		n.Err = err
	}
}

func (n *Node) enqueue(d localDelta) { n.queue = append(n.queue, d) }

// drain processes queued deltas FIFO until quiescent (the PSN pipeline).
// The queue is a head-index ring over one slice: popping advances qhead
// instead of re-slicing, and the slice capacity is reused across bursts
// rather than re-allocated per enqueue wave.
func (n *Node) drain() {
	if n.draining {
		return
	}
	n.draining = true
	defer func() { n.draining = false }()
	for n.qhead < len(n.queue) && n.Err == nil {
		// Compact once the consumed prefix dominates so a long-lived burst
		// cannot grow the slice without bound.
		if n.qhead >= 1024 && 2*n.qhead >= len(n.queue) {
			m := copy(n.queue, n.queue[n.qhead:])
			tail := n.queue[m:]
			for i := range tail {
				tail[i] = localDelta{}
			}
			n.queue = n.queue[:m]
			n.qhead = 0
		}
		d := n.queue[n.qhead]
		n.queue[n.qhead] = localDelta{} // release tuple/payload references
		n.qhead++
		if n.qhead == len(n.queue) {
			n.queue = n.queue[:0]
			n.qhead = 0
		}
		n.process(d)
	}
	if n.qhead == len(n.queue) {
		n.queue = n.queue[:0]
		n.qhead = 0
	}
}

func (n *Node) process(d localDelta) {
	n.DeltasProcessed++
	info := n.Prog.Pred(d.tuple.Pred)
	// One predicate lookup serves event-ness, triggered occurrences and the
	// relation: the PredInfo carries them all from compile time.
	var occs []occurrence
	if info != nil {
		occs = info.occs
	}
	isEvent := info != nil && info.Event || info == nil && ndlogIsEvent(d.tuple.Pred)
	if isEvent {
		// Events are transient: fire rules, never materialize. Both
		// insertion and deletion deltas flow through events — the
		// rewritten provenance-maintenance programs rely on deletion
		// deltas cascading through their eHTemp/eH events ("rule r20
		// compiles into a series of insertion and deletion delta rules").
		// Event provenance rows are recorded symmetrically so data-plane
		// activity (e.g. packet forwarding) can be traced.
		if d.sign == Update {
			return
		}
		if n.Mode == ProvReference {
			// Events have no entry to cache on; hash once per delta.
			var vid types.ID
			vid, n.hashBuf = d.tuple.VIDBuf(n.hashBuf)
			if d.sign == Insert {
				n.Store.RegisterTupleVID(vid, d.tuple)
				n.Store.AddProv(vid, d.rid, d.rloc)
			} else {
				n.Store.DelProv(vid, d.rid, d.rloc)
			}
		}
		// Centralized: base events are reported by their injector; derived
		// events were already reported by the deriving node.
		if n.Mode == ProvCentralized && d.isBase {
			var vid types.ID
			vid, n.hashBuf = d.tuple.VIDBuf(n.hashBuf)
			n.sendProvRow(n.ID, vid, types.ZeroID, n.ID, d.sign)
		}
		n.fireAll(occs, d.tuple, d.sign, nil, d.payload)
		return
	}

	// The provenance meta-relations themselves (rows relayed to a
	// centralized server, or produced by a rewrite-generated program) are
	// stored without further provenance bookkeeping.
	meta := d.tuple.Pred == "prov" || d.tuple.Pred == "ruleExec"

	var rel *Relation
	if info != nil && info.tableID >= 0 {
		rel = n.tablesByID[info.tableID]
	} else {
		rel = n.table(d.tuple.Pred)
	}
	switch d.sign {
	case Insert:
		e := rel.getOrCreate(d.tuple)
		dv := e.findDeriv(d.rid)
		if dv == nil {
			dv = e.addDeriv(d.rid, d.rloc)
		}
		dv.count++
		// The entry caches the canonical VID and its interned handle, so
		// each stored tuple is hashed at most once per lifetime regardless
		// of how many deltas and provenance branches touch it, and store
		// partitions are addressed by the 4-byte handle.
		if n.Mode == ProvReference && !meta {
			_, n.hashBuf = e.VIDBuf(n.hashBuf)
			if !e.stored {
				// The store drops the VID→tuple row when the last prov
				// entry goes (at which point this entry is deleted too),
				// so one registration per entry lifetime suffices.
				n.Store.RegisterTupleVIDH(e.vidHandle(), d.tuple)
				e.stored = true
			}
			n.Store.AddProvH(e.vidHandle(), d.rid, d.rloc)
		}
		// Centralized: the deriving node reports derived rows; the owner
		// reports base rows.
		if n.Mode == ProvCentralized && !meta && d.isBase {
			var vid types.ID
			vid, n.hashBuf = e.VIDBuf(n.hashBuf)
			n.sendProvRow(n.ID, vid, types.ZeroID, n.ID, Insert)
		}
		payloadChanged := false
		if n.Mode == ProvValue {
			if d.isBase {
				var vid types.ID
				vid, n.hashBuf = e.VIDBuf(n.hashBuf)
				dv.payload = n.Mgr.Var(n.Alloc.VarOf(algebra.Base{
					VID: vid, Label: d.tuple.String(), Node: n.ID,
				}))
			} else {
				dv.payload = d.payload
			}
			payloadChanged = n.recomputePayload(e)
		}
		if !e.visible {
			rel.setVisible(e, true)
			n.fireAll(occs, d.tuple, Insert, e, e.payload)
		} else if payloadChanged {
			n.fireAll(occs, d.tuple, Update, e, e.payload)
		}

	case Delete:
		e := rel.get(d.tuple)
		if e == nil {
			return
		}
		dv := e.findDeriv(d.rid)
		if dv == nil {
			return
		}
		dv.count--
		if dv.count <= 0 {
			e.delDeriv(d.rid)
		}
		if n.Mode == ProvReference && !meta {
			_, n.hashBuf = e.VIDBuf(n.hashBuf)
			n.Store.DelProvH(e.vidHandle(), d.rid, d.rloc)
		}
		if n.Mode == ProvCentralized && !meta && d.isBase {
			var vid types.ID
			vid, n.hashBuf = e.VIDBuf(n.hashBuf)
			n.sendProvRow(n.ID, vid, types.ZeroID, n.ID, Delete)
		}
		if len(e.derivs) == 0 {
			rel.setVisible(e, false)
			n.fireAll(occs, d.tuple, Delete, e, e.payload)
		} else if n.Mode == ProvValue && n.recomputePayload(e) {
			n.fireAll(occs, d.tuple, Update, e, e.payload)
		}

	case Update:
		if n.Mode != ProvValue {
			return
		}
		e := rel.get(d.tuple)
		if e == nil || !e.visible {
			return
		}
		dv := e.findDeriv(d.rid)
		if dv == nil {
			return
		}
		dv.payload = d.payload
		if n.recomputePayload(e) {
			n.fireAll(occs, d.tuple, Update, e, e.payload)
		}
	}
}

func ndlogIsEvent(pred string) bool {
	return len(pred) >= 2 && pred[0] == 'e' && pred[1] >= 'A' && pred[1] <= 'Z'
}

// recomputePayload refreshes the entry's combined (OR) payload; it reports
// whether the payload changed.
func (n *Node) recomputePayload(e *entry) bool {
	comb := bdd.False
	for i := range e.derivs {
		comb = n.Mgr.Or(comb, e.derivs[i].payload)
	}
	if comb == e.payload {
		return false
	}
	e.payload = comb
	return true
}

// fireAll runs every rule occurrence triggered by a delta of this
// predicate. deltaEntry may be nil (events); payload is the tuple's current
// provenance payload in value mode.
func (n *Node) fireAll(occs []occurrence, t types.Tuple, sign int8, deltaEntry *entry, payload bdd.Ref) {
	for _, occ := range occs {
		if occ.rule.agg != nil {
			n.fireAgg(occ.rule, t, sign, payload)
		} else {
			n.firePlan(occ.rule, occ.pos, t, sign, deltaEntry, payload)
		}
	}
}

// firePlan evaluates the delta plan of (rule, pos) for tuple t and emits
// head derivations. All intermediate state (environment, matched tuples,
// payloads) lives in per-node scratch arenas: one rule firing performs no
// slice allocation of its own.
func (n *Node) firePlan(rule *CompiledRule, pos int, t types.Tuple, sign int8,
	deltaEntry *entry, deltaPayload bdd.Ref) {

	pl := rule.plans[pos]
	env := n.envBuf[:rule.numVars]
	if !bindTuple(pl.deltaBinds, t, env) {
		return
	}
	matched := n.matchedBuf[:len(rule.atoms)]
	ments := n.entBuf[:len(rule.atoms)]
	payloads := n.payloadBuf[:len(rule.atoms)]
	for i := range ments {
		ments[i] = nil
	}
	matched[pos] = t
	ments[pos] = deltaEntry
	payloads[pos] = deltaPayload
	n.execPlan(rule, pl, 0, sign, env, matched, ments, payloads)
}

// execPlan runs plan steps from step onward. It is a plain recursive method
// rather than a closure so the recursion allocates nothing.
func (n *Node) execPlan(rule *CompiledRule, pl *plan, step int, sign int8,
	env []types.Value, matched []types.Tuple, ments []*entry, payloads []bdd.Ref) {

	if n.Err != nil {
		return
	}
	if step == len(pl.steps) {
		n.emitDerivation(rule, env, matched, ments, payloads, sign)
		return
	}
	st := &pl.steps[step]
	switch st.kind {
	case stepAssign:
		v, err := st.expr(env)
		if err != nil {
			n.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
			return
		}
		env[st.assignSlot] = v
		n.execPlan(rule, pl, step+1, sign, env, matched, ments, payloads)
	case stepCond:
		v, err := st.expr(env)
		if err != nil {
			n.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
			return
		}
		if v.Truthy() {
			n.execPlan(rule, pl, step+1, sign, env, matched, ments, payloads)
		}
	case stepJoin:
		// Probe the index handle bound at plan-bind time: no index-ID
		// formatting, and the lookup key is built in a reusable buffer
		// (the map access on []byte bytes is allocation-free). A nil
		// handle means the joined atom is an event, which never
		// materializes.
		idx := n.joinIdx[st.joinID]
		if idx == nil {
			return
		}
		n.keyBuf = st.appendLookupKey(n.keyBuf[:0], env)
		for _, cand := range idx.lookup(n.keyBuf) {
			if !bindTuple(st.binds, cand.tuple, env) {
				continue
			}
			matched[st.atom] = cand.tuple
			ments[st.atom] = cand
			payloads[st.atom] = cand.payload
			n.execPlan(rule, pl, step+1, sign, env, matched, ments, payloads)
		}
	}
}

// argArenaChunk sizes the chunked backing store for emitted head arguments.
// Emitted tuples escape into relations and messages, so their args cannot
// live in reusable scratch; carving them from a chunk amortizes the per-
// emission allocation to ~1/chunk.
const argArenaChunk = 512

func (n *Node) allocArgs(k int) []types.Value {
	if k == 0 {
		return nil
	}
	if len(n.argArena)+k > cap(n.argArena) {
		size := argArenaChunk
		if k > size {
			size = k
		}
		n.argArena = make([]types.Value, 0, size)
	}
	off := len(n.argArena)
	n.argArena = n.argArena[:off+k]
	return n.argArena[off : off+k : off+k]
}

// aggArenaChunk sizes the chunked arenas for aggregate group and entry
// structs.
const aggArenaChunk = 128

// allocAggEntry carves a zeroed aggregate entry from the chunked arena.
func (n *Node) allocAggEntry() *aggEntry {
	if len(n.aggEntryArena) == cap(n.aggEntryArena) {
		n.aggEntryArena = make([]aggEntry, 0, aggArenaChunk)
	}
	n.aggEntryArena = n.aggEntryArena[:len(n.aggEntryArena)+1]
	return &n.aggEntryArena[len(n.aggEntryArena)-1]
}

// allocAggGroup carves a fresh aggregate group (with its entry map ready)
// from the chunked arena.
func (n *Node) allocAggGroup() *aggGroup {
	if len(n.aggGroupArena) == cap(n.aggGroupArena) {
		n.aggGroupArena = make([]aggGroup, 0, aggArenaChunk)
	}
	n.aggGroupArena = n.aggGroupArena[:len(n.aggGroupArena)+1]
	g := &n.aggGroupArena[len(n.aggGroupArena)-1]
	g.entries = make(map[string]*aggEntry)
	return g
}

// emitDerivation computes the head tuple for one complete join result and
// routes the delta (locally or over the transport), maintaining provenance
// per the configured mode. Input VIDs come from the matched entries' caches;
// only tuples never stored on this node (event inputs) are hashed here.
func (n *Node) emitDerivation(rule *CompiledRule, env []types.Value,
	matched []types.Tuple, ments []*entry, payloads []bdd.Ref, sign int8) {

	n.RulesFired++
	args := n.allocArgs(len(rule.headCode))
	for i, code := range rule.headCode {
		v, err := code(env)
		if err != nil {
			n.fail(fmt.Errorf("rule %s head: %w", rule.Label, err))
			return
		}
		args[i] = v
	}
	head := types.Tuple{Pred: rule.HeadPred, Args: args}
	dst := args[rule.HeadLocPos].AsNode()
	if dst < 0 {
		n.fail(fmt.Errorf("rule %s: head location is not a node", rule.Label))
		return
	}

	inputVIDs := n.vidBuf[:len(matched)]
	cacheable := true
	for i := range matched {
		if ments[i] != nil {
			inputVIDs[i], n.hashBuf = ments[i].VIDBuf(n.hashBuf)
		} else {
			// Event input: transient, no entry to cache on, and usually a
			// one-off — keep it out of the RID memo and intern table.
			cacheable = false
			inputVIDs[i], n.hashBuf = matched[i].VIDBuf(n.hashBuf)
		}
	}
	var rid types.ID
	var ridh types.IDHandle
	if cacheable {
		rid, ridh = n.ruleExecID(rule, ments, inputVIDs)
	} else {
		rid, n.ridBuf = types.RuleExecIDBuf(rule.Label, n.ID, inputVIDs, n.ridBuf)
	}

	if sign != Update {
		switch n.Mode {
		case ProvReference:
			// Reverse (parent) edges are installed by the query processor
			// when it caches a traversal (§6.1), so a derivation records
			// only its ruleExec row — no head hashing, no per-input edge
			// maintenance on this path.
			switch {
			case sign == Insert && ridh != 0:
				n.Store.AddRuleExecH(ridh, rid, rule.Label, inputVIDs)
			case sign == Insert:
				n.Store.AddRuleExec(rid, rule.Label, inputVIDs)
			case ridh != 0:
				n.Store.DelRuleExecH(ridh)
			default:
				n.Store.DelRuleExec(rid)
			}
		case ProvCentralized:
			// The deriving node knows the whole derivation: it relays both
			// the ruleExec row and the head's prov row to the server.
			var headVID types.ID
			headVID, n.hashBuf = head.VIDBuf(n.hashBuf)
			n.sendRuleExecRow(rid, rule.Label, inputVIDs, sign)
			n.sendProvRow(dst, headVID, rid, n.ID, sign)
		}
	}

	var payload bdd.Ref
	if n.Mode == ProvValue {
		payload = bdd.True
		for _, p := range payloads {
			payload = n.Mgr.And(payload, p)
		}
	}
	n.route(head, dst, sign, rid, payload)
}

// ridCacheVal is one memoized rule-execution identifier: the digest plus
// its interned handle (which keys the ruleExec store partition).
type ridCacheVal struct {
	id types.ID
	h  types.IDHandle
}

// ruleExecID returns the RID for a derivation whose inputs are all stored
// entries, computing the SHA-1 once per distinct (rule, inputs) combination
// and replaying it from the memo afterwards. The memo key is the rule index
// followed by the inputs' interned VID handles — equal handles mean equal
// VIDs, and the node's own ID (part of the hash) is constant per node.
func (n *Node) ruleExecID(rule *CompiledRule, ments []*entry, inputVIDs []types.ID) (types.ID, types.IDHandle) {
	k := n.ridKey[:0]
	k = append(k, byte(rule.idx), byte(rule.idx>>8), byte(rule.idx>>16), byte(rule.idx>>24))
	for _, e := range ments {
		h := e.vidHandle()
		k = append(k, byte(h), byte(h>>8), byte(h>>16), byte(h>>24))
	}
	n.ridKey = k
	if c, ok := n.ridCache[string(k)]; ok {
		return c.id, c.h
	}
	var rid types.ID
	rid, n.ridBuf = types.RuleExecIDBuf(rule.Label, n.ID, inputVIDs, n.ridBuf)
	c := ridCacheVal{id: rid, h: types.InternID(rid)}
	n.ridCache[string(k)] = c
	return c.id, c.h
}

// route delivers a derived delta to its destination node.
func (n *Node) route(head types.Tuple, dst types.NodeID, sign int8, rid types.ID, payload bdd.Ref) {
	if dst == n.ID {
		n.enqueue(localDelta{tuple: head, sign: sign, rid: rid, rloc: n.ID, payload: payload})
		return
	}
	m := n.newMessage()
	m.Tuple, m.Delta = head, sign
	switch n.Mode {
	case ProvReference:
		m.HasRef, m.RID, m.RLoc = true, rid, n.ID
	case ProvValue:
		// The derivation key still travels so the receiver can maintain
		// its per-derivation payloads; the dominant cost is the payload.
		m.HasRef, m.RID, m.RLoc = true, rid, n.ID
		m.Payload = n.Mgr.Encode(payload, nil)
	}
	n.Transport.Send(n.ID, dst, m)
}

// newMessage draws an outgoing message from the pool (nil pool: plain
// allocation).
func (n *Node) newMessage() *Message { return n.Msgs.Get() }

// fireAgg routes a delta of an aggregate rule's body predicate through the
// group state.
func (n *Node) fireAgg(rule *CompiledRule, t types.Tuple, sign int8, payload bdd.Ref) {
	pl := rule.plans[0]
	env := n.envBuf[:rule.numVars]
	if !bindTuple(pl.deltaBinds, t, env) {
		return
	}
	// Aggregate bodies may carry assignments/conditions.
	for i := range pl.steps {
		st := &pl.steps[i]
		switch st.kind {
		case stepAssign:
			v, err := st.expr(env)
			if err != nil {
				n.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
				return
			}
			env[st.assignSlot] = v
		case stepCond:
			v, err := st.expr(env)
			if err != nil {
				n.fail(fmt.Errorf("rule %s: %w", rule.Label, err))
				return
			}
			if !v.Truthy() {
				return
			}
		}
	}
	spec := rule.agg
	groupVals := n.groupBuf[:len(spec.groupCode)]
	for i, code := range spec.groupCode {
		v, err := code(env)
		if err != nil {
			n.fail(fmt.Errorf("rule %s group: %w", rule.Label, err))
			return
		}
		groupVals[i] = v
	}
	groups := n.aggByRule[rule.idx]
	if groups == nil {
		groups = map[string]*aggGroup{}
		n.aggByRule[rule.idx] = groups
	}
	n.keyBuf = appendValuesKey(n.keyBuf[:0], groupVals)
	g := groups[string(n.keyBuf)]
	if g == nil {
		g = n.allocAggGroup()
		groups[string(n.keyBuf)] = g
	}

	if sign == Update {
		// Value-mode payload update: if the updated input is the current
		// winner, the head's payload follows it.
		if n.Mode == ProvValue && g.curWinner != nil && g.curWinner.input.Equal(t) && g.hasOut {
			out := g.curOut
			out.Pred = rule.HeadPred
			n.vidBuf[0], n.hashBuf = t.VIDBuf(n.hashBuf)
			var rid types.ID
			rid, n.ridBuf = types.RuleExecIDBuf(rule.Label, n.ID, n.vidBuf[:1], n.ridBuf)
			n.route(out, n.ID, Update, rid, payload)
		}
		return
	}

	// vals is per-node scratch; update copies it if it must retain it.
	var sortVal types.Value
	vals := n.carryBuf[:0]
	switch spec.Fn {
	case "MIN", "MAX":
		sortVal = env[spec.sortSlot]
		for _, s := range spec.carried {
			vals = append(vals, env[s])
		}
	case "COUNT":
		sortVal = types.Int(0)
	case "AGGLIST":
		for _, s := range spec.listSlots {
			vals = append(vals, env[s])
		}
	}
	n.carryBuf = vals[:0]
	carried := vals
	if spec.Fn == "AGGLIST" {
		if len(vals) > 0 {
			sortVal = vals[0]
			carried = vals[1:]
		} else {
			sortVal = types.Int(0)
			carried = nil
		}
	}

	for _, em := range g.update(n, spec, groupVals, sortVal, carried, t, sign) {
		out := em.tuple
		out.Pred = rule.HeadPred
		n.emitAggChange(rule, out, em, t)
	}
}

// emitAggChange applies provenance bookkeeping for an aggregate output
// change and routes it. Aggregate heads are local by validation.
func (n *Node) emitAggChange(rule *CompiledRule, out types.Tuple, em aggEmit, cause types.Tuple) {
	n.RulesFired++
	var rid types.ID
	var payload bdd.Ref
	if em.hasWin {
		// The winning input is stored in the body relation; reuse its
		// cached VID instead of re-hashing the tuple.
		var winEnt *entry
		if rel := n.aggBodyRel[rule.idx]; rel != nil {
			winEnt = rel.get(em.winner)
		}
		var winVID types.ID
		var ridh types.IDHandle
		if winEnt != nil {
			winVID, n.hashBuf = winEnt.VIDBuf(n.hashBuf)
			n.vidBuf[0] = winVID
			// Aggregate RIDs hash a single stored input; memoize them like
			// join RIDs (entBuf is idle here — fireAgg never runs inside
			// execPlan, so borrowing slot 0 cannot clobber a live plan).
			n.entBuf[0] = winEnt
			rid, ridh = n.ruleExecID(rule, n.entBuf[:1], n.vidBuf[:1])
		} else {
			winVID, n.hashBuf = em.winner.VIDBuf(n.hashBuf)
			n.vidBuf[0] = winVID
			rid, n.ridBuf = types.RuleExecIDBuf(rule.Label, n.ID, n.vidBuf[:1], n.ridBuf)
		}
		switch n.Mode {
		case ProvReference:
			switch {
			case em.sign == Insert && ridh != 0:
				n.Store.AddRuleExecH(ridh, rid, rule.Label, n.vidBuf[:1])
			case em.sign == Insert:
				n.Store.AddRuleExec(rid, rule.Label, n.vidBuf[:1])
			case ridh != 0:
				n.Store.DelRuleExecH(ridh)
			default:
				n.Store.DelRuleExec(rid)
			}
		case ProvCentralized:
			var headVID types.ID
			headVID, n.hashBuf = out.VIDBuf(n.hashBuf)
			n.sendRuleExecRow(rid, rule.Label, n.vidBuf[:1], em.sign)
			n.sendProvRow(n.ID, headVID, rid, n.ID, em.sign)
		case ProvValue:
			payload = bdd.True
			if winEnt != nil {
				payload = winEnt.payload
			}
		}
	}
	// COUNT/AGGLIST outputs carry no MIN/MAX-style provenance child (the
	// paper restricts aggregate provenance to MIN and MAX); they enter the
	// graph as base-like vertices via the null RID.
	n.route(out, n.ID, em.sign, rid, payload)
}

// Centralized-mode helpers: provenance rows travel to the server as plain
// prov/ruleExec tuples, whose byte sizes are charged like any message.

func (n *Node) sendProvRow(loc types.NodeID, vid, rid types.ID, rloc types.NodeID, sign int8) {
	row := types.NewTuple("prov", types.Node(loc), types.IDVal(vid), types.IDVal(rid), types.Node(rloc))
	if n.Central == n.ID {
		n.enqueue(localDelta{tuple: row, sign: sign, rloc: n.ID})
		return
	}
	m := n.newMessage()
	m.Tuple, m.Delta = row, sign
	n.Transport.Send(n.ID, n.Central, m)
}

func (n *Node) sendRuleExecRow(rid types.ID, rule string, inputs []types.ID, sign int8) {
	vids := make([]types.Value, len(inputs))
	for i, id := range inputs {
		vids[i] = types.IDVal(id)
	}
	row := types.NewTuple("ruleExec", types.Node(n.ID), types.IDVal(rid), types.Str(rule), types.List(vids...))
	if n.Central == n.ID {
		n.enqueue(localDelta{tuple: row, sign: sign, rloc: n.ID})
		return
	}
	m := n.newMessage()
	m.Tuple, m.Delta = row, sign
	n.Transport.Send(n.ID, n.Central, m)
}
