package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/ndlog"
	"repro/internal/topology"
	"repro/internal/types"
)

// These tests pin the sharded runtime's equivalence contract: for any shard
// count, the fixpoint state — visible tuples per node and predicate, prov
// and ruleExec row sets — matches the serial single-shard engine exactly,
// from-scratch and under delete/re-insert churn. They run the same random
// topologies through the serial engine (the pre-sharding code path), a
// one-shard scheduler and a multi-shard scheduler, and diff the outcomes.

// randomLinks generates a connected random graph: a spanning tree plus a few
// extra edges, deduplicated (parallel links with distinct costs drive the
// MIN-aggregate cascade into pathological transient churn on dense graphs —
// a property of the workload, not of the runtime under test).
func randomLinks(n int, extra int, rng *rand.Rand) [][2]int {
	seen := map[[2]int]bool{}
	var edges [][2]int
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || seen[[2]int{u, v}] {
			return
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	for i := 1; i < n; i++ {
		add(rng.Intn(i), i)
	}
	for k := 0; k < extra; k++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	return edges
}

// edgeCost derives a stable cost from the endpoints, so insert and churn
// scripts always agree on each link's tuple. An explicit cost table (from a
// topology) overrides it.
func edgeCost(e [2]int, costs map[[2]int]int64) int64 {
	if c, ok := costs[e]; ok {
		return c
	}
	return int64(1 + (7*e[0]+3*e[1])%5)
}

func linkTup(u, v int, cost int64) types.Tuple {
	return types.NewTuple("link", types.Node(types.NodeID(u)), types.Node(types.NodeID(v)), types.Int(cost))
}

// stateFingerprint renders one node's observable fixpoint state.
func nodeState(n *Node, preds []string) string {
	out := ""
	for _, pred := range preds {
		for _, tu := range n.Tuples(pred) {
			out += pred + ":" + tu.String() + "\n"
		}
	}
	for _, row := range n.Store.ProvRows() {
		out += "prov|" + row + "\n"
	}
	for _, row := range n.Store.RuleExecRows() {
		out += "re|" + row + "\n"
	}
	return out
}

// runSched drives one scheduler cluster through the insert/churn script.
func runSched(t *testing.T, prog *Program, mode ProvMode, nNodes, shards, workers int,
	edges [][2]int, churn [][2]int, costs map[[2]int]int64) *Scheduler {
	t.Helper()
	s := NewScheduler(prog, mode, nNodes, shards, workers)
	for _, e := range edges {
		cost := edgeCost(e, costs)
		s.InsertBase(types.NodeID(e[0]), linkTup(e[0], e[1], cost))
		s.InsertBase(types.NodeID(e[1]), linkTup(e[1], e[0], cost))
	}
	if err := s.Run(); err != nil {
		t.Fatalf("insert fixpoint: %v", err)
	}
	// Churn: retract a subset, re-run, re-insert half of it, re-run.
	for i, e := range churn {
		cost := edgeCost(e, costs)
		s.DeleteBase(types.NodeID(e[0]), linkTup(e[0], e[1], cost))
		s.DeleteBase(types.NodeID(e[1]), linkTup(e[1], e[0], cost))
		if i%2 == 0 {
			s.InsertBase(types.NodeID(e[0]), linkTup(e[0], e[1], cost))
			s.InsertBase(types.NodeID(e[1]), linkTup(e[1], e[0], cost))
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("churn fixpoint: %v", err)
	}
	return s
}

// runSerialRef computes the same script on the pre-sharding serial engine
// (plain NewNode + synchronous FIFO transport). The transport cascades to
// global quiescence inside every InsertBase/DeleteBase, so each op is
// followed by a Settle releasing the retraction protocol's staged
// re-derivations — the serial analogue of the drivers' idle-point release.
func runSerialRef(t *testing.T, prog *Program, mode ProvMode, nNodes int,
	edges [][2]int, churn [][2]int, costs map[[2]int]int64) []*Node {
	t.Helper()
	tr := &refTransport{}
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		nodes[i] = NewNode(types.NodeID(i), prog, mode, tr, nil)
	}
	tr.nodes = nodes
	for _, e := range edges {
		cost := edgeCost(e, costs)
		nodes[e[0]].InsertBase(linkTup(e[0], e[1], cost))
		nodes[e[1]].InsertBase(linkTup(e[1], e[0], cost))
	}
	Settle(nodes...)
	for i, e := range churn {
		cost := edgeCost(e, costs)
		nodes[e[0]].DeleteBase(linkTup(e[0], e[1], cost))
		nodes[e[1]].DeleteBase(linkTup(e[1], e[0], cost))
		Settle(nodes...)
		if i%2 == 0 {
			nodes[e[0]].InsertBase(linkTup(e[0], e[1], cost))
			nodes[e[1]].InsertBase(linkTup(e[1], e[0], cost))
			Settle(nodes...)
		}
	}
	for _, n := range nodes {
		if n.Err != nil {
			t.Fatalf("serial reference: %v", n.Err)
		}
	}
	return nodes
}

// refTransport delivers messages synchronously in FIFO order.
type refTransport struct {
	nodes []*Node
	queue []struct {
		from, to types.NodeID
		m        *Message
	}
	busy bool
}

func (tr *refTransport) Send(from, to types.NodeID, m *Message) {
	tr.queue = append(tr.queue, struct {
		from, to types.NodeID
		m        *Message
	}{from, to, m})
	if tr.busy {
		return
	}
	tr.busy = true
	defer func() { tr.busy = false }()
	for len(tr.queue) > 0 {
		q := tr.queue[0]
		tr.queue = tr.queue[1:]
		tr.nodes[q.to].HandleMessage(q.from, q.m)
	}
}

func diffStates(t *testing.T, label string, nNodes int, preds []string,
	ref func(i int) *Node, got func(i int) *Node) {
	t.Helper()
	for i := 0; i < nNodes; i++ {
		want, have := nodeState(ref(i), preds), nodeState(got(i), preds)
		if want != have {
			t.Errorf("%s: node %d state mismatch\n--- serial ---\n%s--- sharded ---\n%s", label, i, want, have)
			return
		}
	}
}

// shardedEquivalence checks serial/sharded agreement on one random graph.
// extra > 0 adds cycle-closing edges; withChurn retracts (and re-inserts
// half of) a random subset of ALL edges — spanning-tree and cycle-closing
// alike. Disconnecting deletions and deletions that kill the cheapest route
// on a cycle are exactly the retractions the two-phase over-delete/
// re-derive discipline exists for (see ARCHITECTURE.md "Deletion
// semantics"); before it, unbounded-cost programs diverged here by
// count-to-infinity and churn had to be pinned to stub edges.
func shardedEquivalence(t *testing.T, prog *Program, mode ProvMode, preds []string, seed int64, extra int, withChurn bool) {
	t.Helper()
	const nNodes = 12
	rng := rand.New(rand.NewSource(seed))
	edges := randomLinks(nNodes, extra, rng)
	var churn [][2]int
	if withChurn {
		for _, e := range edges {
			if rng.Intn(3) == 0 {
				churn = append(churn, e)
			}
		}
	}
	equivalenceOn(t, prog, mode, preds, nNodes, edges, churn, nil)
}

// equivalenceOn runs one explicit insert/churn script through the serial
// reference and several scheduler configurations and diffs the outcomes.
// costs overrides edgeCost per (u,v) pair when non-nil.
func equivalenceOn(t *testing.T, prog *Program, mode ProvMode, preds []string,
	nNodes int, edges, churn [][2]int, costs map[[2]int]int64) {
	t.Helper()
	serial := runSerialRef(t, prog, mode, nNodes, edges, churn, costs)
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			s := runSched(t, prog, mode, nNodes, shards, workers, edges, churn, costs)
			label := fmt.Sprintf("shards=%d workers=%d", shards, workers)
			diffStates(t, label, nNodes, preds,
				func(i int) *Node { return serial[i] },
				func(i int) *Node { return s.Node(i) })
		}
	}

	// Determinism across repeated sharded runs: byte accounting and round
	// counts must reproduce exactly.
	a := runSched(t, prog, mode, nNodes, 4, 4, edges, churn, costs)
	b := runSched(t, prog, mode, nNodes, 4, 4, edges, churn, costs)
	if a.TotalBytes != b.TotalBytes || a.Rounds != b.Rounds {
		t.Errorf("sharded runs diverge: bytes %d vs %d, rounds %d vs %d",
			a.TotalBytes, b.TotalBytes, a.Rounds, b.Rounds)
	}
	for i := range a.SentBytes {
		if a.SentBytes[i] != b.SentBytes[i] || a.SentMsgs[i] != b.SentMsgs[i] {
			t.Fatalf("node %d counters diverge across identical sharded runs", i)
		}
	}
}

// topoScript converts a topology's links into the insert script, with churn
// picking arbitrary links — transit and spanning-tree tiers included, not
// just the stub-stub edges whose removal provably keeps MINCOST convergent.
// The two-phase retraction discipline makes arbitrary deletions terminate,
// so churn no longer needs to dodge disconnecting or cycle-breaking links.
func topoScript(topo *topology.Topology, churnN int) (edges, churn [][2]int, costs map[[2]int]int64) {
	costs = map[[2]int]int64{}
	for _, l := range topo.Links {
		e := [2]int{int(l.U), int(l.V)}
		edges = append(edges, e)
		costs[e] = l.Cost
	}
	for i := 0; i < len(topo.Links) && i < churnN; i++ {
		// Stride across the link list so the churn sample spans tiers.
		l := topo.Links[(i*7)%len(topo.Links)]
		churn = append(churn, [2]int{int(l.U), int(l.V)})
	}
	return edges, churn, costs
}

func TestShardedMinCostMatchesSerial(t *testing.T) {
	prog, err := Compile(apps.MinCost())
	if err != nil {
		t.Fatal(err)
	}
	// The unbounded-cost MINCOST program runs over both ring and meshy
	// random topologies, with churn hitting arbitrary links (ring edges
	// whose removal disconnects the logical cycle into a line, and
	// cycle-closing mesh edges whose removal kills cheapest routes). The
	// two-phase retraction discipline makes every combination terminate;
	// TestSchedulerMatchesSimnet (internal/core) covers the full
	// transit-stub benchmark topology against the simulator.
	preds := []string{"link", "pathCost", "bestPathCost"}
	for seed := int64(1); seed <= 2; seed++ {
		ring := topology.Ring(12, rand.New(rand.NewSource(seed)))
		edges, churn, costs := topoScript(ring, 3)
		equivalenceOn(t, prog, ProvReference, preds, ring.N, edges, churn, costs)
		equivalenceOn(t, prog, ProvNone, preds, ring.N, edges, churn, costs)
	}
	shardedEquivalence(t, prog, ProvReference, preds, 5, 4, true)
	shardedEquivalence(t, prog, ProvNone, preds, 6, 4, true)
}

func TestShardedPathVectorMatchesSerial(t *testing.T) {
	prog, err := Compile(apps.PathVector())
	if err != nil {
		t.Fatal(err)
	}
	preds := []string{"link", "path", "bestPath"}
	shardedEquivalence(t, prog, ProvReference, preds, 7, 3, true)
}

// TestShardedReachChurnMatchesSerial exercises delete/re-derive churn over a
// CYCLIC recursive program (derivations support each other around cycles —
// the hardest case for exact counting retraction) in both provenance modes.
func TestShardedReachChurnMatchesSerial(t *testing.T) {
	prog, err := Compile(ndlog.MustParse(`
r1 reach(@Y,X) :- link(@X,Y,C).
r2 reach(@Z,X) :- link(@Y,Z,C), reach(@Y,X).
`))
	if err != nil {
		t.Fatal(err)
	}
	preds := []string{"link", "reach"}
	for seed := int64(1); seed <= 3; seed++ {
		shardedEquivalence(t, prog, ProvReference, preds, seed, 6, true)
		shardedEquivalence(t, prog, ProvNone, preds, seed, 6, true)
	}
}

// TestShardedNodeUnderSyncTransport drives sharded nodes through the
// HandleMessage path (self-driven node-local rounds, as simnet and deploy
// do) rather than the scheduler, and checks the same fixpoint.
func TestShardedNodeUnderSyncTransport(t *testing.T) {
	prog, err := Compile(apps.MinCost())
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Ring(8, rand.New(rand.NewSource(11)))
	nNodes := topo.N
	edges, _, costs := topoScript(topo, 0)

	serial := runSerialRef(t, prog, ProvReference, nNodes, edges, nil, costs)

	tr := &refTransport{}
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		nodes[i] = NewNodeSharded(types.NodeID(i), prog, ProvReference, tr, nil, 3)
	}
	tr.nodes = nodes
	for _, e := range edges {
		cost := edgeCost(e, costs)
		nodes[e[0]].InsertBase(linkTup(e[0], e[1], cost))
		nodes[e[1]].InsertBase(linkTup(e[1], e[0], cost))
	}
	Settle(nodes...) // release retraction staging from improvement-driven evictions
	for _, n := range nodes {
		if n.Err != nil {
			t.Fatal(n.Err)
		}
	}
	preds := []string{"link", "pathCost", "bestPathCost"}
	diffStates(t, "sync transport shards=3", nNodes, preds,
		func(i int) *Node { return serial[i] },
		func(i int) *Node { return nodes[i] })
}
