package engine

import (
	"fmt"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/types"
)

// These tests lock in the hot-path guarantees of the PSN evaluator: O(1)
// relation cardinality, allocation-free join probes, cached tuple keys and
// VIDs, and a steady-state delta pipeline that reuses its buffers. They are
// regression fences for the numbers recorded in PERFORMANCE.md — if one of
// them starts failing, a change has reintroduced per-delta allocation or
// re-hashing on the inner loop.

func TestRelationLenTracksVisibility(t *testing.T) {
	rel := NewRelation("p")
	rel.EnsureIndex([]int{0})
	var entries []*entry
	for i := 0; i < 5; i++ {
		e := rel.getOrCreate(types.NewTuple("p", types.Node(types.NodeID(i)), types.Int(int64(i))))
		e.addDeriv(types.ID{byte(i)}, 0).count++
		rel.setVisible(e, true)
		entries = append(entries, e)
	}
	if rel.Len() != 5 {
		t.Fatalf("Len = %d, want 5", rel.Len())
	}
	// Redundant toggles must not skew the counter.
	rel.setVisible(entries[0], true)
	rel.setVisible(entries[1], false)
	rel.setVisible(entries[1], false)
	if rel.Len() != 4 {
		t.Fatalf("Len after hide = %d, want 4", rel.Len())
	}
	if got := len(rel.Tuples()); got != rel.Len() {
		t.Fatalf("Len = %d but Tuples() returned %d", rel.Len(), got)
	}
	for _, e := range entries[1:] {
		rel.setVisible(e, false)
	}
	if rel.Len() != 1 {
		t.Fatalf("Len after hiding rest = %d, want 1", rel.Len())
	}
}

// TestJoinProbeAllocFree exercises the primitive the innermost join loop is
// built from — build the fixed-width handle key into a reusable buffer, look
// up the pre-resolved index handle — and requires it to allocate nothing on
// an index hit.
func TestJoinProbeAllocFree(t *testing.T) {
	rel := NewRelation("link")
	idx := rel.EnsureIndex([]int{1})
	for i := 0; i < 100; i++ {
		e := rel.getOrCreate(types.NewTuple("link",
			types.Node(types.NodeID(i/10)), types.Node(types.NodeID(i%10)), types.Int(int64(i))))
		e.addDeriv(types.ID{byte(i)}, 0).count++
		rel.setVisible(e, true)
	}
	if got := rel.Index([]int{1}); got != idx {
		t.Fatal("Index did not return the EnsureIndex handle")
	}
	probe := types.Node(3)
	var key []byte
	hits := 0
	key = probe.AppendKey(key[:0]) // warm the buffer
	allocs := testing.AllocsPerRun(200, func() {
		key = probe.AppendKey(key[:0])
		hits += len(idx.lookup(key))
	})
	if hits == 0 {
		t.Fatal("probe never hit the index")
	}
	if allocs != 0 {
		t.Errorf("join probe allocated %.2f objects per run, want 0", allocs)
	}
}

// TestValueConstructionOnFiringPathAllocFree pins the interning layer's
// contribution to the firing path: re-constructing values that already exist
// in the intern tables — the steady state for strings, IDs and path lists
// under churn — allocates nothing, and neither does rebuilding an entry key
// from them in a warm buffer.
func TestValueConstructionOnFiringPathAllocFree(t *testing.T) {
	id := types.HashString("firing-path")
	elems := []types.Value{types.Node(1), types.Node(2), types.Node(3)}
	warmTuple := types.NewTuple("p", types.Node(1), types.Str("firing-path"),
		types.IDVal(id), types.List(elems...))
	var key []byte
	key = warmTuple.AppendArgsKey(key[:0])
	allocs := testing.AllocsPerRun(300, func() {
		tu := types.NewTuple("p", types.Node(1), types.Str("firing-path"),
			types.IDVal(id), types.List(elems...))
		key = tu.AppendArgsKey(key[:0])
	})
	// One allocation is the NewTuple args slice itself (variadic call);
	// value construction and keying must add nothing on top.
	if allocs > 1 {
		t.Errorf("warm value construction allocated %.2f objects per run, want ≤ 1", allocs)
	}
}

// TestTupleKeyAndVIDCached verifies that an entry encodes and hashes its
// tuple at most once: repeated canonical-key lookups and VID reads are
// allocation-free after the first.
func TestTupleKeyAndVIDCached(t *testing.T) {
	rel := NewRelation("p")
	tu := types.NewTuple("p", types.Node(1), types.Str("payload"), types.Int(7))
	e := rel.getOrCreate(tu)

	var buf []byte
	first, _ := e.VIDBuf(nil)
	if first != tu.VID() {
		t.Fatal("cached VID disagrees with Tuple.VID")
	}
	allocs := testing.AllocsPerRun(100, func() {
		var vid types.ID
		vid, buf = e.VIDBuf(buf)
		if vid != first {
			t.Fatal("cached VID changed")
		}
	})
	if allocs != 0 {
		t.Errorf("cached VID read allocated %.2f objects per run, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(100, func() {
		if rel.get(tu) != e {
			t.Fatal("get lost the entry")
		}
	})
	if allocs != 0 {
		t.Errorf("relation get allocated %.2f objects per run, want 0", allocs)
	}
}

// TestSteadyStateFiringAllocs drives the full pipeline — event delta, join
// probe against a stored relation, head emission, local routing, drain —
// and requires the steady state to stay under one allocation per firing
// (the arena amortizes head-argument storage across firings).
func TestSteadyStateFiringAllocs(t *testing.T) {
	tn := newTestNet(t, `r1 eOut(@X,C) :- eIn(@X,Y), link(@X,Y,C).`, 1, ProvNone)
	n := tn.nodes[0]
	for i := 0; i < 8; i++ {
		n.InsertBase(types.NewTuple("link", types.Node(0), types.Int(int64(i)), types.Int(int64(10+i))))
	}
	ev := types.NewTuple("eIn", types.Node(0), types.Int(3))
	for i := 0; i < 16; i++ { // warm queue, arena and key buffers
		n.InjectEvent(ev)
	}
	fired := n.RulesFired()
	allocs := testing.AllocsPerRun(300, func() {
		n.InjectEvent(ev)
	})
	tn.checkErr(t)
	if n.RulesFired() == fired {
		t.Fatal("rule did not fire")
	}
	if allocs > 1 {
		t.Errorf("steady-state firing allocated %.2f objects per run, want ≤ 1", allocs)
	}
}

// TestSchedulerDeliveryAllocFree pins the zero-alloc send→deliver contract
// on the cluster Scheduler path: a steady-state event that fires a rule,
// ships the head cross-node and deposits it at the receiver must stay at or
// under one allocation end-to-end. Messages are drawn from the sender's
// pool and released by deliver once deposited; the run loop reuses its
// active-node scratch. This is the fence for the former "unpooled messages
// under the scheduler" hot spot.
func TestSchedulerDeliveryAllocFree(t *testing.T) {
	prog, err := Compile(ndlog.MustParse(`r1 at(@Y,X) :- eOut(@X,Y), peer(@X,Y).`))
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(prog, ProvNone, 2, 1, 1)
	s.InsertBase(0, types.NewTuple("peer", types.Node(0), types.Node(1)))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	ev := types.NewTuple("eOut", types.Node(0), types.Node(1))
	for i := 0; i < 16; i++ { // warm queues, pools, arenas
		s.InjectEvent(0, ev)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	sent := s.SentMsgs[0]
	allocs := testing.AllocsPerRun(300, func() {
		s.InjectEvent(0, ev)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if s.SentMsgs[0] == sent {
		t.Fatal("no message crossed the scheduler transport")
	}
	if allocs > 1 {
		t.Errorf("scheduler send→deliver allocated %.2f objects per run, want ≤ 1", allocs)
	}
}

// TestIndexChurnAllocFree is the fence for the PR 3 leftover this PR fixes:
// indexing an entry under a string-valued key used to copy the key bytes on
// every first sight. With hashed buckets the index stores only a 64-bit hash
// and recycles bucket boxes through a free list, so steady-state visibility
// churn — unindex on hide, reindex on show, string keys included — must not
// allocate at all.
func TestIndexChurnAllocFree(t *testing.T) {
	rel := NewRelation("p")
	rel.EnsureIndex([]int{1})
	rel.EnsureIndex([]int{1, 2})
	var entries []*entry
	for i := 0; i < 64; i++ {
		e := rel.getOrCreate(types.NewTuple("p", types.Node(types.NodeID(i)),
			types.Str(fmt.Sprintf("key-%d", i%8)), types.Int(int64(i%4))))
		e.addDeriv(types.ID{byte(i)}, 0).count++
		rel.setVisible(e, true)
		entries = append(entries, e)
	}
	// Warm one full churn cycle so bucket boxes land on the free list.
	for _, e := range entries {
		rel.setVisible(e, false)
	}
	for _, e := range entries {
		rel.setVisible(e, true)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, e := range entries {
			rel.setVisible(e, false)
		}
		for _, e := range entries {
			rel.setVisible(e, true)
		}
	})
	if rel.Len() != len(entries) {
		t.Fatalf("Len = %d after churn, want %d", rel.Len(), len(entries))
	}
	if allocs != 0 {
		t.Errorf("index churn allocated %.2f objects per cycle, want 0", allocs)
	}
}

// TestSweepSparesRetractingEntry: when the tombstone sweep fires inside
// setVisible(e, false), the entry whose retraction triggered it must keep
// its fields — the caller is still mid-cascade and reads its payload and
// cached VID afterwards. All other tombstones are cleared and recycled.
func TestSweepSparesRetractingEntry(t *testing.T) {
	rel := NewRelation("p")
	var entries []*entry
	const n = 300
	for i := 0; i < n; i++ {
		e := rel.getOrCreate(types.NewTuple("p", types.Node(0), types.Int(int64(i))))
		e.addDeriv(types.ID{byte(i), byte(i >> 8)}, 0).count++
		rel.setVisible(e, true)
		entries = append(entries, e)
	}
	// Retract everything; the sweep threshold (dead > 128 && dead >
	// 2*visible) trips mid-loop while later entries are still visible.
	swept := false
	for _, e := range entries {
		e.delDeriv(e.derivs[0].rid)
		rel.setVisible(e, false)
		if e.tuple.Pred == "" {
			t.Fatal("sweep cleared the entry whose retraction triggered it")
		}
		if !swept && len(rel.freeEntries) > 0 {
			swept = true
		}
	}
	if !swept {
		t.Fatal("sweep never triggered; threshold assumptions stale")
	}
	if rel.Len() != 0 {
		t.Fatalf("Len = %d after full retraction, want 0", rel.Len())
	}
}

// TestProcessHashesDeltaTupleOnce asserts the satellite requirement that
// Node.process computes a delta tuple's VID exactly once: the insert hashes
// it, and every later use — provenance rows, rule firing, parent edges, the
// eventual delete — reuses the entry's cached value.
func TestProcessHashesDeltaTupleOnce(t *testing.T) {
	counts := map[string]int{}
	types.SetVIDHook(func(tu types.Tuple) { counts[tu.Pred]++ })
	defer types.SetVIDHook(nil)

	tn := newTestNet(t, `r1 at(@Y,X) :- edge(@X,Y).`, 2, ProvReference)
	edge := types.NewTuple("edge", types.Node(0), types.Node(1))
	tn.nodes[0].InsertBase(edge)
	tn.checkErr(t)
	if counts["edge"] != 1 {
		t.Fatalf("edge hashed %d times during insert, want exactly 1", counts["edge"])
	}
	tn.nodes[0].DeleteBase(edge)
	tn.checkErr(t)
	if counts["edge"] != 1 {
		t.Fatalf("edge hashed %d times after insert+delete, want exactly 1 (cached)", counts["edge"])
	}
	// The derived head is hashed at the deriving node (emission) and once at
	// the receiving node's entry; the delete reuses the receiver's cache.
	if counts["at"] > 3 {
		t.Fatalf("derived head hashed %d times, want ≤ 3", counts["at"])
	}
}
