package engine

import (
	"fmt"

	"repro/internal/ndlog"
	"repro/internal/types"
)

// This file is the engine's PLAN layer: the compiled, immutable description
// of how one rule is evaluated incrementally. Compile (program.go) produces
// one delta plan per body-atom position of every rule; the worker layer
// (shard.go / exec.go) executes plans against partitioned relation state.
//
// The contract between the layers:
//
//   - A plan is immutable after Compile and shared by every node and shard.
//     All mutable evaluation state (environments, scratch keys, matched
//     tuples) lives in the executing shard.
//   - deltaBinds matches the triggering delta tuple into the environment;
//     steps then run in order. stepJoin probes the index identified by
//     joinID (bound to concrete per-shard index handles at node-construction
//     time), stepAssign/stepCond evaluate compiled expressions.
//   - Join lookup keys are built by appendLookupKey into caller scratch:
//     the fixed-width handle key of each key part, matching appendIndexKey
//     on the relation side, so the innermost probe loop allocates nothing.

// bindKind describes how one atom argument is treated during matching.
type bindKind uint8

const (
	bindNew   bindKind = iota // first occurrence: bind the slot
	bindCheck                 // already bound: compare
	bindConst                 // constant: compare
)

type bindSpec struct {
	kind bindKind
	slot int
	val  types.Value
}

type stepKind uint8

const (
	stepJoin stepKind = iota
	stepAssign
	stepCond
)

// keyPart contributes one value to a join-lookup key: either a constant or
// a bound slot.
type keyPart struct {
	isConst bool
	val     types.Value
	slot    int
}

type planStep struct {
	kind stepKind

	// stepJoin
	atom     int
	indexPos []int
	keyParts []keyPart
	binds    []bindSpec
	joinID   int // program-wide join-step id; nodes bind it to an index handle

	// stepAssign / stepCond
	assignSlot int
	expr       exprCode
	srcTxt     string // source text of the term (explain output only)
	// condID is the term's rule-local index (its position among the rule's
	// non-atom body terms in source order); stepCond executions tally
	// pass/fail into shard.condStats[rule.condBase+condID]. Stable across
	// re-plans: rebuilt plans re-derive the same term numbering from the
	// rule source.
	condID int
}

// plan is a delta-evaluation strategy for one body atom position: bind the
// delta tuple, join the remaining atoms in a greedy bound-first order, and
// interleave assignments and conditions as soon as their inputs are bound.
type plan struct {
	deltaBinds []bindSpec
	steps      []planStep
}

// atomCostFn estimates the fan-out of probing atom a with the given
// bound/const positions — the planner's cost model (planner.go). A nil
// function selects the compile-time default order (most bound positions
// first, ties by body position).
type atomCostFn func(a *ndlog.Atom, boundPos []int) float64

// condSelectivity is the default credit the greedy pick grants per pending
// condition an atom's bindings would make evaluable: each unlocked
// condition is assumed to filter half the rows it sees. Once a condition
// has been executed condMinEvals times, the planner substitutes its
// measured pass rate (Node.condSelFor, planner.go) through the condSel
// lookup buildPlan threads into the search.
const condSelectivity = 0.5

// nonAtom is one non-atom body term (assignment or condition) awaiting
// placement; buildPlan flushes them as soon as their inputs are bound.
type nonAtom struct {
	assign *ndlog.Assign
	cond   *ndlog.Cond
}

// buildPlan constructs the delta plan for position k, ordering the joined
// atoms by cost (or the syntax-derived default when cost is nil). condSel,
// when non-nil, maps a rule-local term index to that condition's measured
// selectivity for the pushdown credit; nil applies the flat
// condSelectivity default.
func buildPlan(cr *CompiledRule, atoms []*ndlog.Atom, slots map[string]int, k int,
	cost atomCostFn, condSel func(int) float64) (*plan, error) {

	bound := map[int]bool{}
	pl := &plan{}

	// computeBinds derives bind specs for an atom given current bound set,
	// updating bound.
	computeBinds := func(a *ndlog.Atom) ([]bindSpec, error) {
		var binds []bindSpec
		for _, arg := range a.Args {
			switch v := arg.(type) {
			case *ndlog.Var:
				slot := slots[v.Name]
				if bound[slot] {
					binds = append(binds, bindSpec{kind: bindCheck, slot: slot})
				} else {
					binds = append(binds, bindSpec{kind: bindNew, slot: slot})
					bound[slot] = true
				}
			case *ndlog.Const:
				binds = append(binds, bindSpec{kind: bindConst, val: v.Val})
			default:
				return nil, fmt.Errorf("body atom %s: argument must be a variable or constant", a.Pred)
			}
		}
		return binds, nil
	}

	// Non-atom terms in source order: guards written before an assignment
	// must execute before it (e.g. f_size(L) > k guarding f_nth(L, k)).
	var terms []nonAtom
	for _, t := range cr.source.Body {
		switch v := t.(type) {
		case *ndlog.Assign:
			terms = append(terms, nonAtom{assign: v})
		case *ndlog.Cond:
			terms = append(terms, nonAtom{cond: v})
		}
	}
	termDone := make([]bool, len(terms))
	// flush appends the pending assignments and conditions whose
	// dependencies are bound, preserving source order; it retries until a
	// fixed point so chains (R=..., RID=f(R)) resolve.
	flush := func() error {
		for {
			progress := false
			for i, tm := range terms {
				if termDone[i] {
					continue
				}
				var deps []string
				if tm.assign != nil {
					deps = ndlog.Vars(tm.assign.Rhs)
				} else {
					deps = ndlog.Vars(tm.cond.Expr)
				}
				ready := true
				for _, dep := range deps {
					if !bound[slots[dep]] {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				if tm.assign != nil {
					code, err := compileExpr(tm.assign.Rhs, slots)
					if err != nil {
						return err
					}
					pl.steps = append(pl.steps, planStep{
						kind: stepAssign, assignSlot: slots[tm.assign.Lhs], expr: code,
						srcTxt: tm.assign.Lhs + " = " + ndlog.ExprString(tm.assign.Rhs),
					})
					bound[slots[tm.assign.Lhs]] = true
				} else {
					code, err := compileExpr(tm.cond.Expr, slots)
					if err != nil {
						return err
					}
					pl.steps = append(pl.steps, planStep{
						kind: stepCond, expr: code, srcTxt: ndlog.ExprString(tm.cond.Expr),
						condID: i,
					})
				}
				termDone[i] = true
				progress = true
			}
			if !progress {
				return nil
			}
		}
	}

	var err error
	pl.deltaBinds, err = computeBinds(atoms[k])
	if err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}

	remaining := map[int]bool{}
	for i := range atoms {
		if i != k {
			remaining[i] = true
		}
	}
	for len(remaining) > 0 {
		best := pickNextAtom(atoms, slots, remaining, bound, cost, condSel, terms, termDone)
		a := atoms[best]
		delete(remaining, best)

		// Index on the bound/const positions; bind the rest.
		var indexPos []int
		var keyParts []keyPart
		for pos, arg := range a.Args {
			switch v := arg.(type) {
			case *ndlog.Var:
				if bound[slots[v.Name]] {
					indexPos = append(indexPos, pos)
					keyParts = append(keyParts, keyPart{slot: slots[v.Name]})
				}
			case *ndlog.Const:
				indexPos = append(indexPos, pos)
				keyParts = append(keyParts, keyPart{isConst: true, val: v.Val})
			}
		}
		binds, err := computeBinds(a)
		if err != nil {
			return nil, err
		}
		pl.steps = append(pl.steps, planStep{
			kind: stepJoin, atom: best, indexPos: indexPos, keyParts: keyParts, binds: binds,
		})
		if err := flush(); err != nil {
			return nil, err
		}
	}

	for i, done := range termDone {
		if !done {
			if terms[i].assign != nil {
				return nil, fmt.Errorf("assignment %s never becomes evaluable", terms[i].assign.Lhs)
			}
			return nil, fmt.Errorf("condition %s never becomes evaluable", ndlog.ExprString(terms[i].cond.Expr))
		}
	}
	return pl, nil
}

// pickNextAtom chooses the next body atom to join. With no cost model the
// compile-time default applies: most bound/const positions first, ties by
// body position (the pre-planner behaviour, kept as the deterministic
// fallback). With a cost model, the estimated fan-out of probing the atom
// is discounted by each pending condition the atom's bindings would unlock
// — its measured selectivity through condSel when available, the flat
// condSelectivity otherwise — and the lowest cost wins; ties break toward
// more bound positions, then lower body position. The ascending iteration
// plus strict-improvement replacement makes the choice deterministic for
// any cost function.
func pickNextAtom(atoms []*ndlog.Atom, slots map[string]int, remaining map[int]bool,
	bound map[int]bool, cost atomCostFn, condSel func(int) float64,
	terms []nonAtom, termDone []bool) int {

	best := -1
	bestCost := 0.0
	bestBound := -1
	for i := range atoms {
		if !remaining[i] {
			continue
		}
		a := atoms[i]
		var boundPos []int
		for pos, arg := range a.Args {
			switch v := arg.(type) {
			case *ndlog.Var:
				if bound[slots[v.Name]] {
					boundPos = append(boundPos, pos)
				}
			case *ndlog.Const:
				boundPos = append(boundPos, pos)
			}
		}
		if cost == nil {
			if len(boundPos) > bestBound {
				best, bestBound = i, len(boundPos)
			}
			continue
		}
		c := cost(a, boundPos)
		for _, ci := range readyConds(a, slots, bound, terms, termDone) {
			if condSel != nil {
				c *= condSel(ci)
			} else {
				c *= condSelectivity
			}
		}
		if best == -1 || c < bestCost ||
			(c == bestCost && len(boundPos) > bestBound) {
			best, bestCost, bestBound = i, c, len(boundPos)
		}
	}
	return best
}

// readyConds returns the indexes of pending conditions that would become
// evaluable if atom a's variables were additionally bound — the pushdown
// credit for picking a early.
func readyConds(a *ndlog.Atom, slots map[string]int, bound map[int]bool,
	terms []nonAtom, termDone []bool) []int {

	var wouldBind map[int]bool
	var ready []int
	for i, tm := range terms {
		if termDone[i] || tm.cond == nil {
			continue
		}
		if wouldBind == nil {
			wouldBind = make(map[int]bool, len(a.Args))
			for _, arg := range a.Args {
				if v, ok := arg.(*ndlog.Var); ok {
					wouldBind[slots[v.Name]] = true
				}
			}
		}
		ok := true
		gains := false
		for _, dep := range ndlog.Vars(tm.cond.Expr) {
			s := slots[dep]
			if bound[s] {
				continue
			}
			if wouldBind[s] {
				gains = true
				continue
			}
			ok = false
			break
		}
		if ok && gains {
			ready = append(ready, i)
		}
	}
	return ready
}

// bindTuple matches a tuple against bind specs, writing new bindings into
// env; it reports whether the match succeeds.
func bindTuple(binds []bindSpec, t types.Tuple, env []types.Value) bool {
	if len(binds) != len(t.Args) {
		return false
	}
	for i, b := range binds {
		switch b.kind {
		case bindNew:
			env[b.slot] = t.Args[i]
		case bindCheck:
			if !env[b.slot].Equal(t.Args[i]) {
				return false
			}
		case bindConst:
			if !b.val.Equal(t.Args[i]) {
				return false
			}
		}
	}
	return true
}

// appendLookupKey builds the join-probe key for the step into b: the
// fixed-width handle key of each key part (matching appendIndexKey on the
// index side). Probes pass a per-shard scratch buffer so the innermost join
// loop allocates nothing, and interned handles mean no string or digest
// bytes are copied per probe.
func (s *planStep) appendLookupKey(b []byte, env []types.Value) []byte {
	for _, p := range s.keyParts {
		if p.isConst {
			b = p.val.AppendKey(b)
		} else {
			b = env[p.slot].AppendKey(b)
		}
	}
	return b
}
