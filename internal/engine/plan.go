package engine

import (
	"fmt"

	"repro/internal/ndlog"
	"repro/internal/types"
)

// This file is the engine's PLAN layer: the compiled, immutable description
// of how one rule is evaluated incrementally. Compile (program.go) produces
// one delta plan per body-atom position of every rule; the worker layer
// (shard.go / exec.go) executes plans against partitioned relation state.
//
// The contract between the layers:
//
//   - A plan is immutable after Compile and shared by every node and shard.
//     All mutable evaluation state (environments, scratch keys, matched
//     tuples) lives in the executing shard.
//   - deltaBinds matches the triggering delta tuple into the environment;
//     steps then run in order. stepJoin probes the index identified by
//     joinID (bound to concrete per-shard index handles at node-construction
//     time), stepAssign/stepCond evaluate compiled expressions.
//   - Join lookup keys are built by appendLookupKey into caller scratch:
//     the fixed-width handle key of each key part, matching appendIndexKey
//     on the relation side, so the innermost probe loop allocates nothing.

// bindKind describes how one atom argument is treated during matching.
type bindKind uint8

const (
	bindNew   bindKind = iota // first occurrence: bind the slot
	bindCheck                 // already bound: compare
	bindConst                 // constant: compare
)

type bindSpec struct {
	kind bindKind
	slot int
	val  types.Value
}

type stepKind uint8

const (
	stepJoin stepKind = iota
	stepAssign
	stepCond
)

// keyPart contributes one value to a join-lookup key: either a constant or
// a bound slot.
type keyPart struct {
	isConst bool
	val     types.Value
	slot    int
}

type planStep struct {
	kind stepKind

	// stepJoin
	atom     int
	indexPos []int
	keyParts []keyPart
	binds    []bindSpec
	joinID   int // program-wide join-step id; nodes bind it to an index handle

	// stepAssign / stepCond
	assignSlot int
	expr       exprCode
}

// plan is a delta-evaluation strategy for one body atom position: bind the
// delta tuple, join the remaining atoms in a greedy bound-first order, and
// interleave assignments and conditions as soon as their inputs are bound.
type plan struct {
	deltaBinds []bindSpec
	steps      []planStep
}

// buildPlan constructs the delta plan for position k.
func buildPlan(cr *CompiledRule, atoms []*ndlog.Atom, slots map[string]int, k int) (*plan, error) {

	bound := map[int]bool{}
	pl := &plan{}

	// computeBinds derives bind specs for an atom given current bound set,
	// updating bound.
	computeBinds := func(a *ndlog.Atom) ([]bindSpec, error) {
		var binds []bindSpec
		for _, arg := range a.Args {
			switch v := arg.(type) {
			case *ndlog.Var:
				slot := slots[v.Name]
				if bound[slot] {
					binds = append(binds, bindSpec{kind: bindCheck, slot: slot})
				} else {
					binds = append(binds, bindSpec{kind: bindNew, slot: slot})
					bound[slot] = true
				}
			case *ndlog.Const:
				binds = append(binds, bindSpec{kind: bindConst, val: v.Val})
			default:
				return nil, fmt.Errorf("body atom %s: argument must be a variable or constant", a.Pred)
			}
		}
		return binds, nil
	}

	// Non-atom terms in source order: guards written before an assignment
	// must execute before it (e.g. f_size(L) > k guarding f_nth(L, k)).
	type nonAtom struct {
		assign *ndlog.Assign
		cond   *ndlog.Cond
	}
	var terms []nonAtom
	for _, t := range cr.source.Body {
		switch v := t.(type) {
		case *ndlog.Assign:
			terms = append(terms, nonAtom{assign: v})
		case *ndlog.Cond:
			terms = append(terms, nonAtom{cond: v})
		}
	}
	termDone := make([]bool, len(terms))
	// flush appends the pending assignments and conditions whose
	// dependencies are bound, preserving source order; it retries until a
	// fixed point so chains (R=..., RID=f(R)) resolve.
	flush := func() error {
		for {
			progress := false
			for i, tm := range terms {
				if termDone[i] {
					continue
				}
				var deps []string
				if tm.assign != nil {
					deps = ndlog.Vars(tm.assign.Rhs)
				} else {
					deps = ndlog.Vars(tm.cond.Expr)
				}
				ready := true
				for _, dep := range deps {
					if !bound[slots[dep]] {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				if tm.assign != nil {
					code, err := compileExpr(tm.assign.Rhs, slots)
					if err != nil {
						return err
					}
					pl.steps = append(pl.steps, planStep{kind: stepAssign, assignSlot: slots[tm.assign.Lhs], expr: code})
					bound[slots[tm.assign.Lhs]] = true
				} else {
					code, err := compileExpr(tm.cond.Expr, slots)
					if err != nil {
						return err
					}
					pl.steps = append(pl.steps, planStep{kind: stepCond, expr: code})
				}
				termDone[i] = true
				progress = true
			}
			if !progress {
				return nil
			}
		}
	}

	var err error
	pl.deltaBinds, err = computeBinds(atoms[k])
	if err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}

	remaining := map[int]bool{}
	for i := range atoms {
		if i != k {
			remaining[i] = true
		}
	}
	for len(remaining) > 0 {
		// Greedy: pick the remaining atom with the most bound/const
		// argument positions (ties broken by position for determinism).
		best, bestScore := -1, -1
		for i := 0; i < len(atoms); i++ {
			if !remaining[i] {
				continue
			}
			score := 0
			for _, arg := range atoms[i].Args {
				switch v := arg.(type) {
				case *ndlog.Var:
					if bound[slots[v.Name]] {
						score++
					}
				case *ndlog.Const:
					score++
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		a := atoms[best]
		delete(remaining, best)

		// Index on the bound/const positions; bind the rest.
		var indexPos []int
		var keyParts []keyPart
		for pos, arg := range a.Args {
			switch v := arg.(type) {
			case *ndlog.Var:
				if bound[slots[v.Name]] {
					indexPos = append(indexPos, pos)
					keyParts = append(keyParts, keyPart{slot: slots[v.Name]})
				}
			case *ndlog.Const:
				indexPos = append(indexPos, pos)
				keyParts = append(keyParts, keyPart{isConst: true, val: v.Val})
			}
		}
		binds, err := computeBinds(a)
		if err != nil {
			return nil, err
		}
		pl.steps = append(pl.steps, planStep{
			kind: stepJoin, atom: best, indexPos: indexPos, keyParts: keyParts, binds: binds,
		})
		if err := flush(); err != nil {
			return nil, err
		}
	}

	for i, done := range termDone {
		if !done {
			if terms[i].assign != nil {
				return nil, fmt.Errorf("assignment %s never becomes evaluable", terms[i].assign.Lhs)
			}
			return nil, fmt.Errorf("condition %s never becomes evaluable", ndlog.ExprString(terms[i].cond.Expr))
		}
	}
	return pl, nil
}

// bindTuple matches a tuple against bind specs, writing new bindings into
// env; it reports whether the match succeeds.
func bindTuple(binds []bindSpec, t types.Tuple, env []types.Value) bool {
	if len(binds) != len(t.Args) {
		return false
	}
	for i, b := range binds {
		switch b.kind {
		case bindNew:
			env[b.slot] = t.Args[i]
		case bindCheck:
			if !env[b.slot].Equal(t.Args[i]) {
				return false
			}
		case bindConst:
			if !b.val.Equal(t.Args[i]) {
				return false
			}
		}
	}
	return true
}

// appendLookupKey builds the join-probe key for the step into b: the
// fixed-width handle key of each key part (matching appendIndexKey on the
// index side). Probes pass a per-shard scratch buffer so the innermost join
// loop allocates nothing, and interned handles mean no string or digest
// bytes are copied per probe.
func (s *planStep) appendLookupKey(b []byte, env []types.Value) []byte {
	for _, p := range s.keyParts {
		if p.isConst {
			b = p.val.AppendKey(b)
		} else {
			b = env[p.slot].AppendKey(b)
		}
	}
	return b
}
