// Package engine implements ExSPAN's distributed query processor: a
// per-node pipelined semi-naïve (PSN) evaluator for localized NDlog
// programs with incremental insert/delete maintenance, MIN/MAX/COUNT
// aggregates, event predicates, and pluggable provenance modes
// (none, reference-based, value-based, centralized — §3 "Distribution").
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/types"
)

// Delta signs.
const (
	Insert int8 = 1
	Delete int8 = -1
	// Update signals a value-based provenance payload change for a tuple
	// that remains visible; it carries the tuple's new payload. Reference
	// mode never sends updates ("rather than shipping the whole tuple, the
	// cache invalidation procedure requires only that an invalidation flag
	// be sent" — updates are the value-based analogue).
	Update int8 = 0
)

// rederive is the node-local delta sign of the retraction protocol's second
// phase: re-show an over-deleted tuple whose alternate derivations survived
// the deletion wave (see "Deletion semantics" in ARCHITECTURE.md). It never
// travels in a Message — releases are staged per node and the resulting
// firings ship as ordinary Insert deltas — so the wire format is untouched.
const rederive int8 = 2

// Message is one tuple shipped between nodes during protocol execution.
// The serialized layout is specified in docs/wire-format.md; WireSize and
// Encode must stay in lockstep so simulated byte counts match deployment.
// The provenance mode determines which optional fields travel:
//
//   - reference-based: HasRef with the (RID, RLoc) pair — the paper's "only
//     additional attributes shipped with each message" (20 B + 4 B);
//   - value-based: Payload, the full provenance of the tuple encoded as a
//     BDD (the evaluation's "Value-based Prov. (BDD)" configuration);
//   - none/centralized: neither.
type Message struct {
	Tuple   types.Tuple
	Delta   int8
	HasRef  bool
	RID     types.ID
	RLoc    types.NodeID
	Payload []byte
}

// message flag bits.
const (
	flagRef     = 1 << 0
	flagPayload = 1 << 1
)

// WireSize reports the serialized size in bytes (identical to
// len(m.Encode(nil))).
func (m *Message) WireSize() int {
	n := 2 + m.Tuple.WireSize() // flags + delta + tuple
	if m.HasRef {
		n += types.IDLen + 4
	}
	if m.Payload != nil {
		n += uvarintLen(uint64(len(m.Payload))) + len(m.Payload)
	}
	return n
}

// Encode appends the serialized message to dst. A nil dst is sized exactly
// via WireSize so per-send encoding performs a single allocation with no
// growth copies.
func (m *Message) Encode(dst []byte) []byte {
	if dst == nil {
		dst = make([]byte, 0, m.WireSize())
	}
	var flags byte
	if m.HasRef {
		flags |= flagRef
	}
	if m.Payload != nil {
		flags |= flagPayload
	}
	dst = append(dst, flags, byte(m.Delta))
	dst = m.Tuple.Encode(dst)
	if m.HasRef {
		dst = append(dst, m.RID[:]...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(m.RLoc)))
	}
	if m.Payload != nil {
		dst = binary.AppendUvarint(dst, uint64(len(m.Payload)))
		dst = append(dst, m.Payload...)
	}
	return dst
}

var errBadMessage = errors.New("engine: malformed message")

// DecodeMessage parses a serialized message. The delta byte must be one of
// the three wire signs (insert/delete/update, docs/wire-format.md) — in
// particular the engine-internal rederive sign is rejected, so a corrupt or
// hostile datagram cannot trigger the retraction protocol's phase-2
// re-show while a deletion wave is in flight.
func DecodeMessage(b []byte) (*Message, error) {
	if len(b) < 2 {
		return nil, errBadMessage
	}
	flags := b[0]
	delta := int8(b[1])
	if delta != Insert && delta != Delete && delta != Update {
		return nil, errBadMessage
	}
	m := &Message{Delta: delta}
	used := 2
	t, n, err := types.DecodeTuple(b[used:])
	if err != nil {
		return nil, err
	}
	m.Tuple = t
	used += n
	if flags&flagRef != 0 {
		if len(b) < used+types.IDLen+4 {
			return nil, errBadMessage
		}
		copy(m.RID[:], b[used:used+types.IDLen])
		used += types.IDLen
		m.RLoc = types.NodeID(int32(binary.BigEndian.Uint32(b[used:])))
		used += 4
		m.HasRef = true
	}
	if flags&flagPayload != 0 {
		plen, sz := binary.Uvarint(b[used:])
		if sz <= 0 || len(b) < used+sz+int(plen) {
			return nil, errBadMessage
		}
		used += sz
		m.Payload = make([]byte, plen)
		copy(m.Payload, b[used:used+int(plen)])
	}
	return m, nil
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// String renders the message for logs.
func (m *Message) String() string {
	sign := "+"
	switch m.Delta {
	case Delete:
		sign = "-"
	case Update:
		sign = "~"
	}
	return fmt.Sprintf("%s%s", sign, m.Tuple)
}

// Transport ships messages between engine nodes. Implementations exist for
// the discrete-event simulator and for real UDP sockets; the engine is
// oblivious to which one carries its traffic (the paper's "identical
// codebase for both simulation and deployment modes").
//
// Ownership: a Message passed to Send belongs to the transport from that
// point on. When the sending Node has a MessagePool attached, the transport
// must release the message back to it once the message is fully consumed
// (after the receiving handler returns in simulation, after serialization
// in deployment).
type Transport interface {
	Send(from, to types.NodeID, m *Message)
}

// MessagePool is an explicit free list of Message values (see types.Pool
// for the sharing and zero-on-Put contract). Recycling the structs removes
// the per-message allocation class from the simulation entirely.
type MessagePool = types.Pool[Message]

// NewMessagePool creates an empty pool.
func NewMessagePool() *MessagePool { return &MessagePool{} }
