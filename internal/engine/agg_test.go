package engine

import (
	"testing"

	"repro/internal/ndlog"
	"repro/internal/types"
)

// These tests pin the MIN/MAX aggregate incremental fast path under
// delete/re-derive churn. The fast path skips the full group rescan when an
// input delta provably cannot move the output (a non-winning insert, a
// non-winning delete, or removing one copy of a duplicated winner); winner
// eviction must still force the rescan and re-emit the correct next-best
// row, including the carried-value tie-break.

func bestOf(t *testing.T, n *Node) []string {
	t.Helper()
	return tuples(n, "best")
}

func wantBest(t *testing.T, n *Node, want ...string) {
	t.Helper()
	got := bestOf(t, n)
	if len(got) != len(want) {
		t.Fatalf("best = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("best = %v, want %v", got, want)
		}
	}
}

func item(y string, c int64) types.Tuple {
	return types.NewTuple("item", types.Node(0), types.Str(y), types.Int(c))
}

func TestMinAggregateWinnerEvictionRescan(t *testing.T) {
	tn := newTestNet(t, `b1 best(@X,min<C,Y>) :- item(@X,Y,C).`, 1, ProvReference)
	n := tn.nodes[0]

	// Build a group with a clear winner and several losers.
	n.InsertBase(item("w", 2))
	n.InsertBase(item("a", 5))
	n.InsertBase(item("b", 7))
	wantBest(t, n, "best(@a,2,w)")

	// Non-winning churn must not move the output (fast path: no rescan,
	// no spurious retract/re-emit pair).
	fired := n.RulesFired()
	n.InsertBase(item("c", 9))
	n.DeleteBase(item("c", 9))
	n.DeleteBase(item("b", 7))
	if n.RulesFired() != fired {
		t.Fatalf("non-winning churn fired %d aggregate emissions, want 0", n.RulesFired()-fired)
	}
	wantBest(t, n, "best(@a,2,w)")

	// Duplicate the winner: deleting one copy keeps the output (the
	// surviving derivation still wins); deleting the last copy evicts the
	// winner and must rescan to the next-best remaining row.
	n.InsertBase(item("w", 2))
	n.DeleteBase(item("w", 2))
	wantBest(t, n, "best(@a,2,w)")
	n.DeleteBase(item("w", 2))
	wantBest(t, n, "best(@a,5,a)")

	// Re-derive the evicted winner: it must dethrone the rescanned best.
	n.InsertBase(item("w", 2))
	wantBest(t, n, "best(@a,2,w)")

	// Retract everything; the output disappears.
	n.DeleteBase(item("w", 2))
	n.DeleteBase(item("a", 5))
	wantBest(t, n)
	tn.checkErr(t)

	// Provenance bookkeeping survived the churn: each emitted best row
	// recorded (and each retraction removed) its ruleExec row.
	if got := n.Store.NumRuleExec(); got != 0 {
		t.Fatalf("ruleExec rows after full retraction = %d, want 0", got)
	}
}

func TestMinAggregateEvictionTieBreak(t *testing.T) {
	tn := newTestNet(t, `b1 best(@X,min<C,Y>) :- item(@X,Y,C).`, 1, ProvNone)
	n := tn.nodes[0]

	// Two rows tie on the sort value; the carried value breaks the tie
	// deterministically (lexicographically smallest wins for MIN).
	n.InsertBase(item("z", 4))
	n.InsertBase(item("m", 4))
	n.InsertBase(item("q", 1))
	wantBest(t, n, "best(@a,1,q)")

	// Evicting the winner must rescan to the tie and resolve it by the
	// carried comparison, not map iteration order.
	n.DeleteBase(item("q", 1))
	wantBest(t, n, "best(@a,4,m)")
	n.DeleteBase(item("m", 4))
	wantBest(t, n, "best(@a,4,z)")
	tn.checkErr(t)
}

func TestMaxAggregateChurn(t *testing.T) {
	tn := newTestNet(t, `b1 best(@X,max<C,Y>) :- item(@X,Y,C).`, 1, ProvReference)
	n := tn.nodes[0]

	n.InsertBase(item("lo", 1))
	n.InsertBase(item("hi", 9))
	wantBest(t, n, "best(@a,9,hi)")

	// Deleting and re-deriving the winner across interleaved churn.
	n.DeleteBase(item("hi", 9))
	wantBest(t, n, "best(@a,1,lo)")
	n.InsertBase(item("mid", 5))
	wantBest(t, n, "best(@a,5,mid)")
	n.InsertBase(item("hi", 9))
	wantBest(t, n, "best(@a,9,hi)")
	n.DeleteBase(item("mid", 5))
	wantBest(t, n, "best(@a,9,hi)")
	tn.checkErr(t)
}

// TestMinAggregateChurnSharded drives the same winner-eviction script
// through a sharded scheduler cluster (groups and inputs hash-partitioned
// across shards) and checks each intermediate fixpoint.
func TestMinAggregateChurnSharded(t *testing.T) {
	prog, err := Compile(ndlog.MustParse(`b1 best(@X,min<C,Y>) :- item(@X,Y,C).`))
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(prog, ProvReference, 1, 4, 0)
	step := func(want ...string) {
		t.Helper()
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, tu := range s.Node(0).Tuples("best") {
			got = append(got, tu.String())
		}
		if len(got) != len(want) {
			t.Fatalf("best = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("best = %v, want %v", got, want)
			}
		}
	}
	s.InsertBase(0, item("w", 2))
	s.InsertBase(0, item("a", 5))
	step("best(@a,2,w)")
	s.InsertBase(0, item("w", 2)) // duplicate derivation
	s.DeleteBase(0, item("w", 2))
	step("best(@a,2,w)")
	s.DeleteBase(0, item("w", 2)) // evict winner: rescan to next best
	step("best(@a,5,a)")
	s.InsertBase(0, item("w", 2)) // re-derive: dethrones the rescan result
	step("best(@a,2,w)")
	s.DeleteBase(0, item("w", 2))
	s.DeleteBase(0, item("a", 5))
	step()
	if got := s.Node(0).Store.NumRuleExec(); got != 0 {
		t.Fatalf("ruleExec rows after full retraction = %d, want 0", got)
	}
}
