package engine

import (
	"fmt"

	"repro/internal/ndlog"
	"repro/internal/types"
)

// exprCode is a compiled expression: it evaluates against the rule's
// variable environment.
type exprCode func(env []types.Value) (types.Value, error)

// compileExpr compiles an NDlog expression given the rule's variable slot
// assignment.
func compileExpr(e ndlog.Expr, slots map[string]int) (exprCode, error) {
	switch v := e.(type) {
	case *ndlog.Const:
		val := v.Val
		return func([]types.Value) (types.Value, error) { return val, nil }, nil
	case *ndlog.Var:
		slot, ok := slots[v.Name]
		if !ok {
			return nil, fmt.Errorf("engine: unbound variable %s", v.Name)
		}
		return func(env []types.Value) (types.Value, error) { return env[slot], nil }, nil
	case *ndlog.BinOp:
		l, err := compileExpr(v.L, slots)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(v.R, slots)
		if err != nil {
			return nil, err
		}
		op := v.Op
		return func(env []types.Value) (types.Value, error) {
			lv, err := l(env)
			if err != nil {
				return types.Nil(), err
			}
			rv, err := r(env)
			if err != nil {
				return types.Nil(), err
			}
			return applyBinOp(op, lv, rv)
		}, nil
	case *ndlog.Call:
		fn, ok := builtins[v.Fn]
		if !ok {
			return nil, fmt.Errorf("engine: unknown function %s", v.Fn)
		}
		args := make([]exprCode, len(v.Args))
		for i, a := range v.Args {
			code, err := compileExpr(a, slots)
			if err != nil {
				return nil, err
			}
			args[i] = code
		}
		name := v.Fn
		return func(env []types.Value) (types.Value, error) {
			vals := make([]types.Value, len(args))
			for i, code := range args {
				val, err := code(env)
				if err != nil {
					return types.Nil(), err
				}
				vals[i] = val
			}
			out, err := fn(vals)
			if err != nil {
				return types.Nil(), fmt.Errorf("%s: %w", name, err)
			}
			return out, nil
		}, nil
	case *ndlog.Agg:
		return nil, fmt.Errorf("engine: aggregate in expression position")
	}
	return nil, fmt.Errorf("engine: unsupported expression %T", e)
}

func applyBinOp(op string, l, r types.Value) (types.Value, error) {
	switch op {
	case "+":
		if l.Kind() == types.KindInt && r.Kind() == types.KindInt {
			return types.Int(l.AsInt() + r.AsInt()), nil
		}
		if l.Kind() == types.KindStr || r.Kind() == types.KindStr {
			return types.Str(l.String() + r.String()), nil
		}
		if l.Kind() == types.KindList && r.Kind() == types.KindList {
			out := append(append([]types.Value{}, l.AsList()...), r.AsList()...)
			return types.List(out...), nil
		}
	case "-", "*", "/":
		if l.Kind() == types.KindInt && r.Kind() == types.KindInt {
			switch op {
			case "-":
				return types.Int(l.AsInt() - r.AsInt()), nil
			case "*":
				return types.Int(l.AsInt() * r.AsInt()), nil
			case "/":
				if r.AsInt() == 0 {
					return types.Nil(), fmt.Errorf("division by zero")
				}
				return types.Int(l.AsInt() / r.AsInt()), nil
			}
		}
	case "==":
		return types.Bool(l.Equal(r)), nil
	case "!=":
		return types.Bool(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		if l.Kind() != r.Kind() {
			return types.Nil(), fmt.Errorf("comparing %s with %s", l.Kind(), r.Kind())
		}
		c := l.Compare(r)
		switch op {
		case "<":
			return types.Bool(c < 0), nil
		case "<=":
			return types.Bool(c <= 0), nil
		case ">":
			return types.Bool(c > 0), nil
		case ">=":
			return types.Bool(c >= 0), nil
		}
	case "&&":
		return types.Bool(l.Truthy() && r.Truthy()), nil
	case "||":
		return types.Bool(l.Truthy() || r.Truthy()), nil
	}
	return types.Nil(), fmt.Errorf("bad operands for %s: %s, %s", op, l.Kind(), r.Kind())
}

// builtins is the NDlog function library. The provenance rewrite relies on
// f_vid, f_rid, f_nullid and f_append; the application programs use the
// list helpers.
var builtins = map[string]func(args []types.Value) (types.Value, error){
	// f_vid(name, args...) computes the provenance vertex identifier of
	// the tuple name(args...) — SHA-1 over the canonical tuple encoding
	// (the injective analogue of the paper's f_sha1("name"+a1+...+an)).
	"f_vid": func(args []types.Value) (types.Value, error) {
		if len(args) < 1 || args[0].Kind() != types.KindStr {
			return types.Nil(), fmt.Errorf("want (name, args...)")
		}
		t := types.Tuple{Pred: args[0].AsStr(), Args: args[1:]}
		return types.IDVal(t.VID()), nil
	},
	// f_rid(rule, loc, vidList) computes a rule-execution identifier —
	// the paper's RID = f_sha1(R + RLoc + List).
	"f_rid": func(args []types.Value) (types.Value, error) {
		if len(args) != 3 || args[0].Kind() != types.KindStr ||
			args[1].Kind() != types.KindNode || args[2].Kind() != types.KindList {
			return types.Nil(), fmt.Errorf("want (rule, loc, vidList)")
		}
		list := args[2].AsList()
		ids := make([]types.ID, len(list))
		for i, v := range list {
			if v.Kind() != types.KindID {
				return types.Nil(), fmt.Errorf("vidList element %d is %s, want id", i, v.Kind())
			}
			ids[i] = v.AsID()
		}
		return types.IDVal(types.RuleExecID(args[0].AsStr(), args[1].AsNode(), ids)), nil
	},
	// f_nullid returns the null RID that marks base tuples in prov.
	"f_nullid": func(args []types.Value) (types.Value, error) {
		if len(args) != 0 {
			return types.Nil(), fmt.Errorf("want no arguments")
		}
		return types.IDVal(types.ZeroID), nil
	},
	// f_sha1 hashes any single value.
	"f_sha1": func(args []types.Value) (types.Value, error) {
		if len(args) != 1 {
			return types.Nil(), fmt.Errorf("want one argument")
		}
		return types.IDVal(types.HashBytes(args[0].Encode(nil))), nil
	},
	// f_append builds a list from its arguments (the paper's
	// List = f_append(PID1,...,PIDn)).
	"f_append": func(args []types.Value) (types.Value, error) {
		return types.List(append([]types.Value{}, args...)...), nil
	},
	// f_concat joins lists and scalars into one list: scalars are treated
	// as singleton lists (PATHVECTOR's P = f_concat(S, P2)).
	"f_concat": func(args []types.Value) (types.Value, error) {
		var out []types.Value
		for _, a := range args {
			if a.Kind() == types.KindList {
				out = append(out, a.AsList()...)
			} else {
				out = append(out, a)
			}
		}
		return types.List(out...), nil
	},
	// f_init(a, b) builds the two-element list [a, b].
	"f_init": func(args []types.Value) (types.Value, error) {
		if len(args) != 2 {
			return types.Nil(), fmt.Errorf("want two arguments")
		}
		return types.List(args[0], args[1]), nil
	},
	// f_size reports the length of a list.
	"f_size": func(args []types.Value) (types.Value, error) {
		if len(args) != 1 || args[0].Kind() != types.KindList {
			return types.Nil(), fmt.Errorf("want one list")
		}
		return types.Int(int64(len(args[0].AsList()))), nil
	},
	// f_member(list, x) reports 1 when x is an element of list, else 0.
	"f_member": func(args []types.Value) (types.Value, error) {
		if len(args) != 2 || args[0].Kind() != types.KindList {
			return types.Nil(), fmt.Errorf("want (list, value)")
		}
		for _, e := range args[0].AsList() {
			if e.Equal(args[1]) {
				return types.Int(1), nil
			}
		}
		return types.Int(0), nil
	},
	// f_nth(list, i) returns the i-th element (0-based).
	"f_nth": func(args []types.Value) (types.Value, error) {
		if len(args) != 2 || args[0].Kind() != types.KindList || args[1].Kind() != types.KindInt {
			return types.Nil(), fmt.Errorf("want (list, index)")
		}
		list := args[0].AsList()
		i := args[1].AsInt()
		if i < 0 || i >= int64(len(list)) {
			return types.Nil(), fmt.Errorf("index %d out of range (len %d)", i, len(list))
		}
		return list[i], nil
	},
	// f_last returns the final element of a list.
	"f_last": func(args []types.Value) (types.Value, error) {
		if len(args) != 1 || args[0].Kind() != types.KindList || len(args[0].AsList()) == 0 {
			return types.Nil(), fmt.Errorf("want one non-empty list")
		}
		list := args[0].AsList()
		return list[len(list)-1], nil
	},
	// f_empty returns the empty list.
	"f_empty": func(args []types.Value) (types.Value, error) {
		if len(args) != 0 {
			return types.Nil(), fmt.Errorf("want no arguments")
		}
		return types.List(), nil
	},
	// f_cntEDB / f_cntIDB / f_cntRULE are the #DERIVATIONS customization
	// of the paper's f_pEDB/f_pIDB/f_pRULE triple (§5.2.2, Table 3),
	// provided as built-ins so the §5.1 query program can execute through
	// the engine itself: base tuples count 1, alternative derivations
	// sum, rule inputs multiply.
	"f_cntEDB": func(args []types.Value) (types.Value, error) {
		if len(args) != 1 {
			return types.Nil(), fmt.Errorf("want one argument")
		}
		return types.Int(1), nil
	},
	"f_cntIDB": func(args []types.Value) (types.Value, error) {
		if len(args) < 1 || args[0].Kind() != types.KindList {
			return types.Nil(), fmt.Errorf("want a buffer list")
		}
		var sum int64
		for _, v := range args[0].AsList() {
			sum += v.AsInt()
		}
		return types.Int(sum), nil
	},
	"f_cntRULE": func(args []types.Value) (types.Value, error) {
		if len(args) < 1 || args[0].Kind() != types.KindList {
			return types.Nil(), fmt.Errorf("want a buffer list")
		}
		prod := int64(1)
		for _, v := range args[0].AsList() {
			prod *= v.AsInt()
		}
		return types.Int(prod), nil
	},
	// f_ringdist(a, b, space) is the clockwise distance from identifier a
	// to identifier b on a ring of the given size. A zero distance (a == b)
	// is reported as the full ring size so that, under a MIN aggregate, a
	// node's own identifier always loses to any real peer — the CHORD
	// successor election relies on this.
	"f_ringdist": func(args []types.Value) (types.Value, error) {
		if len(args) != 3 || args[0].Kind() != types.KindInt ||
			args[1].Kind() != types.KindInt || args[2].Kind() != types.KindInt {
			return types.Nil(), fmt.Errorf("want (from, to, space)")
		}
		space := args[2].AsInt()
		if space <= 0 {
			return types.Nil(), fmt.Errorf("bad ring size %d", space)
		}
		d := (args[1].AsInt() - args[0].AsInt()) % space
		if d < 0 {
			d += space
		}
		if d == 0 {
			d = space
		}
		return types.Int(d), nil
	},
	// f_between(k, a, b) reports 1 when identifier k lies in the clockwise
	// half-open ring interval (a, b], else 0. a == b denotes the full ring
	// (a lone node owns every key). This is CHORD's ownership test.
	"f_between": func(args []types.Value) (types.Value, error) {
		if len(args) != 3 || args[0].Kind() != types.KindInt ||
			args[1].Kind() != types.KindInt || args[2].Kind() != types.KindInt {
			return types.Nil(), fmt.Errorf("want (key, lo, hi)")
		}
		k, a, b := args[0].AsInt(), args[1].AsInt(), args[2].AsInt()
		var in bool
		switch {
		case a == b:
			in = true
		case a < b:
			in = a < k && k <= b
		default: // interval wraps past zero
			in = k > a || k <= b
		}
		if in {
			return types.Int(1), nil
		}
		return types.Int(0), nil
	},
	// f_pad(n) returns a synthetic payload string of n bytes; the
	// PACKETFORWARD workload uses it for its 1024-byte packets.
	"f_pad": func(args []types.Value) (types.Value, error) {
		if len(args) != 1 || args[0].Kind() != types.KindInt {
			return types.Nil(), fmt.Errorf("want one int")
		}
		n := args[0].AsInt()
		if n < 0 || n > 1<<20 {
			return types.Nil(), fmt.Errorf("bad pad size %d", n)
		}
		b := make([]byte, n)
		for i := range b {
			b[i] = 'x'
		}
		return types.Str(string(b)), nil
	},
}

// RegisterBuiltin installs an additional NDlog function; it is intended for
// tests and example programs. Registering an existing name panics.
func RegisterBuiltin(name string, fn func(args []types.Value) (types.Value, error)) {
	if _, ok := builtins[name]; ok {
		panic("engine: builtin already registered: " + name)
	}
	builtins[name] = fn
}
