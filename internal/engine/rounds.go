package engine

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bdd"
	"repro/internal/types"
)

// This file is the engine's RUNTIME layer for sharded nodes: a batched
// round executor that replaces the serial inline drain when a node has more
// than one worker shard. Each round has three phases:
//
//  1. APPLY (parallel over shards). Every shard drains its own ring of
//     deltas, mutating only state it owns: relation entries, index
//     postings, prov rows in its store partition, aggregate groups routed
//     to it. Firing is deferred — the shard records the round's net
//     visibility transitions (markTouched) and incoming event deltas.
//  2. FIRE (parallel over shards). State is frozen; shards evaluate rule
//     plans for their net transitions, probing every shard's indexes
//     read-only under the batched semi-naïve old/new discipline (exec.go).
//     Derivations are buffered: local head deltas, aggregate updates for
//     other shards' groups, outbound messages, deferred ruleExec rows.
//  3. MERGE (parallel over destinations). Fire-phase buffers are bucketed
//     by destination shard at emit time, so the barrier commits
//     per-destination: one worker per shard d runs d's deferred index
//     removals and tombstone sweeps, replays every source's ruleExec ops
//     homed in partition d, and drains every source's d-destined deltas
//     and aggregate updates into d's next-round rings — always visiting
//     sources in shard-index order, so each destination sees exactly the
//     sequence the old serial barrier produced. Destinations own disjoint
//     state (their relations, store partition, rings), so the workers
//     cannot race; the transport flush and deferred provenance-change
//     notifications stay serial, in shard order, after the workers join.
//
// Rounds repeat until no shard has pending work. For a fixed shard count
// the execution is fully deterministic; across shard counts the fixpoint
// state (relations, provenance rows, counters of net derivations) is
// identical, while transient aggregate outputs may be elided by batching
// (see ARCHITECTURE.md "Sharded runtime").
//
// All three phases run inline, in shard order, when the host has no
// parallelism (GOMAXPROCS=1) or the round's occupancy is below
// minFanOutWork — the adaptive gate: parallel and inline execution are
// bit-identical by construction, so thin rounds skip the goroutine handoff
// and small nodes collapse to the serial path regardless of the configured
// shard count.

// fireItem is one deferred firing: either an event delta (fires with its
// own sign) or a stored entry touched this round (fires with its net
// visibility transition, or not at all when the batch nets to zero).
type fireItem struct {
	tuple   types.Tuple
	occs    []occurrence
	ent     *entry    // nil for events
	rel     *Relation // owning relation, for deferred index maintenance
	sign    int8      // events only; stored entries resolve at fire time
	isEvent bool
}

// aggItem is one aggregate-group update shipped to the group's owner shard.
type aggItem struct {
	rule      *CompiledRule
	groupVals []types.Value
	sortVal   types.Value
	carried   []types.Value
	input     types.Tuple
	sign      int8
}

// outMsg is one buffered cross-node message.
type outMsg struct {
	to types.NodeID
	m  *Message
}

// reOp is one deferred ruleExec-row change. Inserts and deletes of the same
// RID can fire on different shards (whichever owned the triggering delta),
// so the ops replay at the merge barrier into the RID's home partition —
// keeping every add/del pair in one map. vid offsets slice the shard's
// reVIDs arena.
type reOp struct {
	ridh   types.IDHandle
	rid    types.ID
	label  string
	sign   int8
	vidOff int
	vidLen int
}

// roundShard is the per-shard slice of round-runtime state. outLocal,
// outAgg and reOps are bucketed by destination shard (respectively the head
// tuple's owner, the aggregate group's owner, and the RID's home partition)
// at emit time, so the merge barrier can commit each destination's stream
// on its own worker without re-routing.
type roundShard struct {
	fires    []fireItem
	outLocal [][]localDelta
	outAgg   [][]aggItem
	outMsgs  []outMsg
	aggIn    []aggItem
	reOps    [][]reOp
	reVIDs   []types.ID
	keyBufs  [][]byte // per-plan-step probe keys (exec.go round probing)
}

// initRounds sizes the per-shard round state once the shard set is final.
//
//exspan:merge-phase
func (n *Node) initRounds() {
	maxSteps := 0
	for _, cr := range n.Prog.Rules {
		for _, pl := range cr.plans {
			if len(pl.steps) > maxSteps {
				maxSteps = len(pl.steps)
			}
		}
	}
	for _, sh := range n.shards {
		sh.rs.keyBufs = make([][]byte, maxSteps)
		sh.rs.outLocal = make([][]localDelta, len(n.shards))
		sh.rs.outAgg = make([][]aggItem, len(n.shards))
		sh.rs.reOps = make([][]reOp, len(n.shards))
	}
}

// markTouched records a stored entry's first touch of the round: its
// start-of-round visibility (against which the net transition and the
// old-state probe admissions are decided) and a fire-list slot.
//
//exspan:hotpath
func (sh *shard) markTouched(rel *Relation, e *entry, occs []occurrence) {
	if e.touchRound == sh.n.curRound {
		return
	}
	e.touchRound = sh.n.curRound
	e.startVis = e.visible
	sh.rs.fires = append(sh.rs.fires, fireItem{tuple: e.tuple, occs: occs, ent: e, rel: rel})
}

// applyPhase drains the shard's delta ring and applies aggregate updates
// routed to this shard's groups. Only owner-local state is mutated.
//
//exspan:hotpath
func (sh *shard) applyPhase() {
	for sh.qhead < len(sh.queue) && sh.err == nil {
		sh.process(sh.popDelta(), true)
	}
	if sh.qhead == len(sh.queue) {
		sh.queue = sh.queue[:0]
		sh.qhead = 0
	}
	for i := range sh.rs.aggIn {
		if sh.err != nil {
			break
		}
		sh.applyAggItem(&sh.rs.aggIn[i])
	}
	clearAggItems(sh.rs.aggIn)
	sh.rs.aggIn = sh.rs.aggIn[:0]
}

// firePhase evaluates the deferred firings against the frozen post-apply
// state. Stored entries whose batch netted to zero are skipped; the rest
// fire once with their net sign.
//
//exspan:hotpath
func (sh *shard) firePhase() {
	for i := range sh.rs.fires {
		if sh.err != nil {
			return
		}
		it := &sh.rs.fires[i]
		sign := it.sign
		var ent *entry
		if !it.isEvent {
			e := it.ent
			if e.startVis == e.visible {
				continue // net zero: transient within the round
			}
			if e.visible {
				sign = Insert
			} else {
				sign = Delete
			}
			ent = e
		}
		for _, occ := range it.occs {
			if occ.rule.agg != nil {
				sh.fireAggRound(occ.rule, it.tuple, sign)
			} else {
				payload := bdd.False
				if ent != nil {
					payload = ent.payload
				}
				sh.firePlan(occ.rule, occ.pos, it.tuple, sign, ent, payload)
			}
		}
	}
}

// fireAggRound evaluates an aggregate rule's body for a net delta and ships
// the group update to the group's owner shard (applied in its next apply
// phase). Group values and carried values are copied out of scratch into
// the shard's chunked value arena.
//
//exspan:hotpath
func (sh *shard) fireAggRound(rule *CompiledRule, t types.Tuple, sign int8) {
	env, ok := sh.evalAggBody(rule, t)
	if !ok {
		return
	}
	spec := rule.agg
	groupVals := sh.groupBuf[:len(spec.groupCode)]
	for i, code := range spec.groupCode {
		v, err := code(env)
		if err != nil {
			//exspanlint:alloc-ok error path: evaluation aborts on the first failure
			sh.fail(fmt.Errorf("rule %s group: %w", rule.Label, err))
			return
		}
		groupVals[i] = v
	}
	sortVal, carried := sh.evalAggVals(rule, env)
	gv := sh.allocArgs(len(groupVals))
	copy(gv, groupVals)
	cv := sh.allocArgs(len(carried))
	copy(cv, carried)
	dst := int(types.HashValues(gv) % uint64(len(sh.n.shards)))
	sh.rs.outAgg[dst] = append(sh.rs.outAgg[dst], aggItem{
		rule: rule, groupVals: gv, sortVal: sortVal, carried: cv, input: t, sign: sign,
	})
}

// applyAggItem applies one routed aggregate update to this shard's group
// state, emitting any net output change as local head deltas for the next
// round.
func (sh *shard) applyAggItem(it *aggItem) {
	rule := it.rule
	groups := sh.aggByRule[rule.idx]
	if groups == nil {
		groups = map[string]*aggGroup{}
		sh.aggByRule[rule.idx] = groups
	}
	sh.keyBuf = appendValuesKey(sh.keyBuf[:0], it.groupVals)
	g := groups[string(sh.keyBuf)]
	if g == nil {
		g = sh.allocAggGroup()
		groups[string(sh.keyBuf)] = g
	}
	for _, em := range g.update(sh, rule, it.groupVals, it.sortVal, it.carried, it.input, it.sign) {
		out := em.tuple
		out.Pred = rule.HeadPred
		sh.emitAggChange(rule, out, em, it.input)
	}
}

// deferRuleExecRow buffers a ruleExec-row change for the merge barrier,
// bucketed by the RID's home partition.
func (sh *shard) deferRuleExecRow(ridh types.IDHandle, rid types.ID, label string, inputVIDs []types.ID, sign int8) {
	off := len(sh.rs.reVIDs)
	if sign == Insert { // deletes never materialize a new row; skip the copy
		sh.rs.reVIDs = append(sh.rs.reVIDs, inputVIDs...)
	}
	dst := sh.n.ridHomeIdx(rid)
	sh.rs.reOps[dst] = append(sh.rs.reOps[dst], reOp{
		ridh: ridh, rid: rid, label: label, sign: sign, vidOff: off, vidLen: len(inputVIDs),
	})
}

// ridHomeIdx maps an RID to the partition index its ruleExec row lives in:
// a content-derived hash so add/del pairs always meet, whatever shards they
// fired on.
func (n *Node) ridHomeIdx(rid types.ID) int {
	return int(binary.BigEndian.Uint64(rid[:8]) % uint64(len(n.shards)))
}

// replayRuleExecOpsTo applies this shard's deferred ruleExec ops homed in
// partition d (merge barrier; called only by destination d's merge worker).
// The shared reVIDs arena is read-only here and truncated by the serial
// merge epilogue once every destination has replayed.
func (sh *shard) replayRuleExecOpsTo(d int) {
	part := sh.n.Store.Part(d)
	ops := sh.rs.reOps[d]
	for i := range ops {
		op := &ops[i]
		switch {
		case op.sign == Insert && op.ridh != 0:
			part.AddRuleExecH(op.ridh, op.rid, op.label, sh.rs.reVIDs[op.vidOff:op.vidOff+op.vidLen])
		case op.sign == Insert:
			part.AddRuleExec(op.rid, op.label, sh.rs.reVIDs[op.vidOff:op.vidOff+op.vidLen])
		case op.ridh != 0:
			part.DelRuleExecH(op.ridh)
		default:
			part.DelRuleExec(op.rid)
		}
		ops[i] = reOp{}
	}
	sh.rs.reOps[d] = ops[:0]
}

// mergeShard commits destination d's slice of the merge barrier: shard d's
// deferred index removals and tombstone sweeps, the replay of every source
// shard's ruleExec ops homed in partition d, and the drain of every
// source's d-destined local deltas and aggregate updates into d's
// next-round rings. Sources are visited in shard-index order, so the
// per-destination sequence is exactly the subsequence the old serial
// barrier fed this destination — bit-identity across worker schedules is
// by construction. Every structure touched is owned by destination d
// (its relations and entries, its store partition, its rings) or is a
// d-indexed bucket of a source's emit buffers, so concurrent mergeShard
// calls for different destinations never share mutable state.
//
//exspan:merge-phase
func (n *Node) mergeShard(d int) {
	sh := n.shards[d]
	// Deferred index maintenance: entries whose net transition was to
	// invisible leave the indexes now that no probe can be in flight.
	for i := range sh.rs.fires {
		it := &sh.rs.fires[i]
		if it.ent != nil && !it.ent.visible && it.ent.indexed {
			it.rel.unindex(it.ent)
		}
		sh.rs.fires[i] = fireItem{}
	}
	sh.rs.fires = sh.rs.fires[:0]
	for _, rel := range sh.tablesByID {
		rel.maybeSweepRound()
	}
	for _, rel := range sh.extraTables {
		rel.maybeSweepRound()
	}
	for _, src := range n.shards {
		src.replayRuleExecOpsTo(d)
	}
	for _, src := range n.shards {
		bucket := src.rs.outLocal[d]
		for i := range bucket {
			sh.enqueue(bucket[i])
			bucket[i] = localDelta{}
		}
		src.rs.outLocal[d] = bucket[:0]
		ab := src.rs.outAgg[d]
		sh.rs.aggIn = append(sh.rs.aggIn, ab...)
		clearAggItems(ab)
		src.rs.outAgg[d] = ab[:0]
	}
}

// mergeRound is the barrier closing one round. Destination commits fan out
// across workers (or run inline in shard order — identical results either
// way); the transport flush stays serial in shard-index order, so the wire
// sees one deterministic sequence regardless of goroutine scheduling.
//
//exspan:merge-phase
func (n *Node) mergeRound(fanOut bool) {
	if fanOut {
		var wg sync.WaitGroup
		wg.Add(len(n.shards))
		for d := range n.shards {
			go func(d int) {
				defer wg.Done()
				n.mergeShard(d)
			}(d)
		}
		wg.Wait()
	} else {
		for d := range n.shards {
			n.mergeShard(d)
		}
	}
	for _, sh := range n.shards {
		for i := range sh.rs.outMsgs {
			om := sh.rs.outMsgs[i]
			sh.rs.outMsgs[i] = outMsg{}
			n.Transport.Send(n.ID, om.to, om.m)
		}
		sh.rs.outMsgs = sh.rs.outMsgs[:0]
		sh.rs.reVIDs = sh.rs.reVIDs[:0]
	}
	n.syncErr()
}

func clearAggItems(items []aggItem) {
	for i := range items {
		items[i] = aggItem{}
	}
}

// anyPending reports whether any shard has queued deltas or aggregate
// updates.
func (n *Node) anyPending() bool {
	for _, sh := range n.shards {
		if sh.pending() {
			return true
		}
	}
	return false
}

// minFanOutWork is the adaptive gate's occupancy threshold: rounds opening
// with fewer pending deltas and aggregate updates than this run all three
// phases inline — the goroutine handoff would cost more than the round's
// work. Safe at any value because inline and fanned-out execution are
// bit-identical by construction.
const minFanOutWork = 64

// roundWork counts the deltas and aggregate updates pending at a round
// boundary — the occupancy the adaptive gate compares against
// minFanOutWork.
//
//exspan:merge-phase
func (n *Node) roundWork() int {
	w := 0
	for _, sh := range n.shards {
		w += len(sh.queue) - sh.qhead + len(sh.rs.aggIn)
	}
	return w
}

// runRounds executes batched rounds until the node is locally quiescent.
// Apply and fire phases fan out across shard goroutines; merge runs on the
// calling goroutine. Re-entrant calls (a synchronous transport delivering a
// message back to this node mid-merge) just deposit and return — the outer
// loop picks the work up next round.
//
//exspan:merge-phase
func (n *Node) runRounds() {
	if n.inRounds {
		return
	}
	n.inRounds = true
	defer func() { n.inRounds = false }()
	// Phase results are goroutine-schedule-independent by construction, so
	// on a single-CPU host the fan-out is pure overhead and the phases run
	// inline in shard order instead; parallel hosts make the same inline
	// collapse per round when occupancy is below minFanOutWork.
	parallel := runtime.GOMAXPROCS(0) > 1
	var wg sync.WaitGroup
	for n.Err == nil && n.anyPending() {
		fanOut := parallel && n.roundWork() >= minFanOutWork
		n.curRound++
		n.Store.DeferChanges()
		for _, sh := range n.shards {
			if !sh.pending() {
				continue
			}
			if !fanOut {
				sh.applyPhase()
				continue
			}
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				sh.applyPhase()
			}(sh)
		}
		wg.Wait()
		for _, sh := range n.shards {
			if len(sh.rs.fires) == 0 {
				continue
			}
			if !fanOut {
				sh.firePhase()
				continue
			}
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				sh.firePhase()
			}(sh)
		}
		wg.Wait()
		n.mergeRound(fanOut)
		n.Store.FlushDeferred()
	}
}
