package engine

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/bdd"
	"repro/internal/types"
)

// deriv is one derivation of a tuple under incremental maintenance. The
// derivation is keyed by its rule-execution identifier (base insertions use
// the null RID). In value-based provenance mode each derivation carries the
// BDD of its provenance.
type deriv struct {
	rid     types.ID
	rloc    types.NodeID
	count   int
	payload bdd.Ref // value mode only
}

// entry is one tuple of a relation together with its derivation multiset.
// The tuple is visible while at least one derivation is present. The
// provenance VID (with its interned handle) is cached here so each tuple
// is SHA-1-hashed at most once per lifetime on a node; the relation map
// key (the tuple's args handle key) lives only in the entries map itself.
//
// Derivations are held by value in a small slice: most tuples have one or
// two, and the per-entry map plus per-derivation pointer boxes were among
// the largest allocation sources in fixpoint profiles.
// Field order is alignment-packed (exspanlint -fieldalign): the six
// 1-byte flags sit together after the word- and 4-byte-aligned fields,
// saving 8 bytes on every stored tuple (104 vs 112).
type entry struct {
	tuple   types.Tuple
	derivs  []deriv
	payload bdd.Ref // value mode: OR over derivation payloads
	vid     types.ID
	vidh    types.IDHandle // interned vid; keys the provenance store partition

	// touchRound/startVis snapshot the entry's visibility at the start of
	// the round that first touched it (rounds.go; unused in serial mode) —
	// the reference point for net-change firing and old-state probe
	// admission.
	touchRound uint32

	visible bool
	vidOK   bool
	stored  bool // VID→tuple mapping already registered with the prov store

	// staged marks a suspect of the retraction protocol: the entry was
	// over-deleted while alternate derivations survived and sits on its
	// shard's re-derivation list (shard.stagedEnts). Sweep must not reclaim
	// it — the staged list holds a pointer — and release clears the flag.
	staged bool

	startVis bool
	// indexed tracks index membership, which is deferred to the merge
	// barrier on removal so frozen fire-phase probes can still see
	// start-of-round state.
	indexed bool
}

func (e *entry) derivCount() int { return len(e.derivs) }

// findDeriv returns a pointer to the derivation keyed by rid, or nil. The
// pointer aliases the entry's slice: it is invalidated by addDeriv/delDeriv
// and must not be retained across them.
func (e *entry) findDeriv(rid types.ID) *deriv {
	for i := range e.derivs {
		if e.derivs[i].rid == rid {
			return &e.derivs[i]
		}
	}
	return nil
}

func (e *entry) addDeriv(rid types.ID, rloc types.NodeID) *deriv {
	e.derivs = append(e.derivs, deriv{rid: rid, rloc: rloc, payload: bdd.False})
	return &e.derivs[len(e.derivs)-1]
}

func (e *entry) delDeriv(rid types.ID) {
	for i := range e.derivs {
		if e.derivs[i].rid == rid {
			last := len(e.derivs) - 1
			e.derivs[i] = e.derivs[last]
			e.derivs[last] = deriv{}
			e.derivs = e.derivs[:last]
			return
		}
	}
}

// VIDBuf returns the tuple's provenance vertex identifier, computing,
// interning and caching it on first use. buf is scratch for the canonical
// encoding; the (possibly grown) buffer is returned for reuse. Interned
// arguments make the encode a sequence of memoized copies, and the interned
// vidh is what the provenance store partitions key on.
func (e *entry) VIDBuf(buf []byte) (types.ID, []byte) {
	if !e.vidOK {
		e.vid, buf = e.tuple.VIDBuf(buf)
		e.vidh = types.InternID(e.vid)
		e.vidOK = true
	}
	return e.vid, buf
}

// vidHandle returns the interned VID handle; valid only after VIDBuf.
func (e *entry) vidHandle() types.IDHandle { return e.vidh }

// Relation is a materialized table with hash indexes maintained
// incrementally as tuples become visible and invisible.
//
// Fully retracted entries are kept in the map as tombstones instead of
// being deleted: under churn the same tuples are re-derived moments later,
// and a reused tombstone brings back its canonical key string and cached
// SHA-1 VID for free (re-deriving a route after a link flap costs neither
// an allocation nor a hash). The tombstone population is bounded by sweep:
// memory stays within a small factor of the live high-water mark.
type Relation struct {
	name    string
	entries map[string]*entry
	indexes map[string]*index
	visible int    // O(1) Len
	dead    int    // invisible derivation-free entries retained for reuse
	churn   int64  // total visibility transitions (planner drift signal)
	scratch []byte // reusable key-encoding buffer

	// deferMaint switches the relation to sharded-round maintenance:
	// setVisible defers index removals and tombstone sweeps to the merge
	// barrier (Relation.unindex / maybeSweepRound), because sibling shards
	// probe the indexes read-only while the owner applies its batch.
	deferMaint bool

	// freeEntries recycles entry structs reclaimed by sweep; entryArena
	// chunk-allocates fresh ones (boxing each entry individually was a
	// leading allocation class in fixpoint profiles — arena chunks never
	// pin stale tuples because sweep zeroes an entry before listing it);
	// derivArena chunk-allocates initial derivation slices. Most tuples
	// carry exactly one derivation, so the per-entry "first append" used
	// to be another of the largest allocation classes. deriv and
	// types.Value hold no pointers, so those chunks cost the garbage
	// collector nothing to scan.
	freeEntries []*entry
	entryArena  []entry
	derivArena  []deriv
}

const derivArenaChunk = 256

// allocEntry returns a zeroed entry, recycling one swept earlier when
// available and carving from the chunked arena otherwise.
func (r *Relation) allocEntry() *entry {
	if n := len(r.freeEntries); n > 0 {
		e := r.freeEntries[n-1]
		r.freeEntries[n-1] = nil
		r.freeEntries = r.freeEntries[:n-1]
		return e
	}
	if len(r.entryArena) == cap(r.entryArena) {
		r.entryArena = make([]entry, 0, derivArenaChunk)
	}
	r.entryArena = r.entryArena[:len(r.entryArena)+1]
	return &r.entryArena[len(r.entryArena)-1]
}

// allocDerivs carves an empty capacity-1 derivation slice from the chunked
// arena; entries with alternative derivations spill to a regular append.
func (r *Relation) allocDerivs() []deriv {
	if len(r.derivArena) == cap(r.derivArena) {
		r.derivArena = make([]deriv, 0, derivArenaChunk)
	}
	n := len(r.derivArena)
	r.derivArena = r.derivArena[:n+1]
	return r.derivArena[n : n : n+1]
}

// index is a hash index over a fixed set of argument positions. Buckets are
// keyed by a 64-bit FNV-1a hash of the encoded key bytes rather than the
// bytes themselves: inserting a first-sight key then costs no string copy
// (the PR 3 leftover this replaced), integer map operations beat string
// hashing on every probe, and the planner reads len(buckets) as an O(1)
// distinct-key estimate. A hash collision merges two keys into one bucket;
// that is sound because every probe site re-verifies candidates against the
// full bound/const bind specs (bindTuple), so a merged bucket only costs a
// few filtered candidates. Buckets are held by pointer so adding to an
// existing bucket needs no map re-assignment; emptied buckets leave the map
// (bounding distinct-key churn) and recycle their boxes through a free list,
// so steady-state visibility churn allocates nothing.
type index struct {
	positions []int
	buckets   map[uint64]*[]*entry
	free      []*[]*entry
}

// FNV-1a 64-bit, inlined: index bucket keys and the planner's distinct-key
// scans share it. Process-independent, so sharded runs hash identically.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashIndexKey(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// lookup returns the entries whose indexed values hash like key. Callers
// must re-verify candidates (bindTuple does): a bucket can hold hash
// neighbours of the probed key.
func (idx *index) lookup(key []byte) []*entry {
	if p := idx.buckets[hashIndexKey(key)]; p != nil {
		return *p
	}
	return nil
}

func (idx *index) add(key []byte, e *entry) {
	h := hashIndexKey(key)
	if p := idx.buckets[h]; p != nil {
		*p = append(*p, e)
		return
	}
	var p *[]*entry
	if n := len(idx.free); n > 0 {
		p = idx.free[n-1]
		idx.free[n-1] = nil
		idx.free = idx.free[:n-1]
	} else {
		b := make([]*entry, 0, 4)
		p = &b
	}
	*p = append(*p, e)
	idx.buckets[h] = p
}

func (idx *index) remove(key []byte, e *entry) {
	h := hashIndexKey(key)
	p := idx.buckets[h]
	if p == nil {
		return
	}
	*p = removeEntry(*p, e)
	if len(*p) == 0 {
		delete(idx.buckets, h)
		idx.free = append(idx.free, p)
	}
}

// NewRelation creates an empty relation.
func NewRelation(name string) *Relation {
	return &Relation{
		name:    name,
		entries: make(map[string]*entry),
		indexes: make(map[string]*index),
	}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Len reports the number of visible tuples in O(1).
func (r *Relation) Len() int { return r.visible }

// Get returns the entry for a tuple, or nil. Entries are keyed by the
// fixed-width args handle key (types.Tuple.AppendArgsKey): building it
// copies no string or digest bytes, and key equality coincides with tuple
// equality because interned handles are canonical.
func (r *Relation) get(t types.Tuple) *entry {
	r.scratch = t.AppendArgsKey(r.scratch[:0])
	return r.entries[string(r.scratch)]
}

// getOrCreate returns the entry for a tuple, creating an invisible one if
// needed. A matching tombstone is revived: its cached VID and handle carry
// over (equal handle keys imply equal tuples and equal VIDs).
func (r *Relation) getOrCreate(t types.Tuple) *entry {
	r.scratch = t.AppendArgsKey(r.scratch[:0])
	if e := r.entries[string(r.scratch)]; e != nil {
		if !e.visible && len(e.derivs) == 0 {
			// Revival: the provenance store dropped this VID's rows when
			// the last derivation went, so the VID→tuple mapping must be
			// re-registered, and value-mode payloads restart from scratch.
			// The cached VID and handle stay valid (equal handle keys
			// imply equal tuples).
			r.dead--
			e.stored = false
			e.payload = bdd.False
		}
		return e
	}
	k := string(r.scratch)
	e := r.allocEntry()
	e.tuple, e.payload = t, bdd.False
	e.derivs = r.allocDerivs()
	r.entries[k] = e
	return e
}

// setVisible inserts or removes the entry from all indexes. Under deferred
// maintenance (sharded rounds) removals and sweeps wait for the merge
// barrier: the entry stays indexed (filtered by probe admission) until
// unindex, and tombstones are only reclaimed by maybeSweepRound.
func (r *Relation) setVisible(e *entry, visible bool) {
	if e.visible == visible {
		return
	}
	e.visible = visible
	r.churn++
	if visible {
		r.visible++
	} else {
		r.visible--
	}
	if r.deferMaint {
		if visible && !e.indexed {
			r.indexAdd(e)
		}
		if !visible && len(e.derivs) == 0 {
			r.dead++
		}
		return
	}
	for _, idx := range r.indexes {
		r.scratch = appendIndexKey(r.scratch[:0], e.tuple, idx.positions)
		if visible {
			idx.add(r.scratch, e)
		} else {
			idx.remove(r.scratch, e)
		}
	}
	if !visible && len(e.derivs) == 0 {
		// Tombstone the entry for reuse rather than deleting it. Its fields
		// are left untouched — the caller is still mid-retraction and fires
		// the delete cascade with e.payload; getOrCreate resets state on
		// revival.
		r.dead++
		if r.sweepDue() {
			r.sweep(e)
		}
	}
}

// sweepDue reports whether tombstones dominate the live population — the
// single threshold every sweep trigger (inline, noteDead, merge barrier)
// shares.
func (r *Relation) sweepDue() bool { return r.dead > 128 && r.dead > 2*r.visible }

// noteDead counts an entry that became derivation-free while already
// invisible — the over-delete path hides a suspect before its last
// derivation is consumed, so setVisible's tombstone accounting never sees
// the transition. Sweeping is deferred to the usual thresholds.
func (r *Relation) noteDead(e *entry) {
	r.dead++
	if !r.deferMaint && r.sweepDue() {
		r.sweep(e)
	}
}

// indexAdd inserts the entry into every index of the relation.
func (r *Relation) indexAdd(e *entry) {
	for _, idx := range r.indexes {
		r.scratch = appendIndexKey(r.scratch[:0], e.tuple, idx.positions)
		idx.add(r.scratch, e)
	}
	e.indexed = true
}

// unindex removes the entry from every index (deferred maintenance; called
// at the merge barrier for entries whose round netted to invisible).
func (r *Relation) unindex(e *entry) {
	for _, idx := range r.indexes {
		r.scratch = appendIndexKey(r.scratch[:0], e.tuple, idx.positions)
		idx.remove(r.scratch, e)
	}
	e.indexed = false
}

// maybeSweepRound reclaims tombstones at the merge barrier once they
// dominate the live population — the deferred-maintenance counterpart of
// the sweep setVisible triggers inline.
func (r *Relation) maybeSweepRound() {
	if r.sweepDue() {
		r.sweep(nil)
	}
}

// sweep deletes all tombstones except spare, bounding retained memory to a
// small factor of the live entry count. Swept entries are cleared
// (releasing their tuples) and recycled through the free list.
// spare is the entry whose retraction triggered the sweep: its caller is
// still mid-cascade and reads its payload and cached VID after this
// returns, so it must survive untouched.
func (r *Relation) sweep(spare *entry) {
	for k, e := range r.entries {
		if e != spare && !e.visible && len(e.derivs) == 0 && !e.staged {
			delete(r.entries, k)
			*e = entry{}
			//exspanlint:nondeterministic-ok free-list order only decides which cleared box getOrCreate reuses; entry pointer identity never reaches state, ordering or the wire
			r.freeEntries = append(r.freeEntries, e)
		}
	}
	r.dead = 0
	if spare != nil {
		r.dead = 1 // the spared tombstone remains
	}
}

func removeEntry(list []*entry, e *entry) []*entry {
	for i, x := range list {
		if x == e {
			list[i] = list[len(list)-1]
			list[len(list)-1] = nil
			return list[:len(list)-1]
		}
	}
	return list
}

func appendIndexKey(b []byte, t types.Tuple, positions []int) []byte {
	for _, p := range positions {
		b = t.Args[p].AppendKey(b)
	}
	return b
}

// indexID renders the position list as a canonical map key without any
// fmt-based formatting. It runs only at index-creation and handle-resolution
// time, never per probe.
func indexID(positions []int) string {
	b := make([]byte, 0, 2*len(positions))
	for i, p := range positions {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(p), 10)
	}
	return string(b)
}

// EnsureIndex creates (and backfills) a hash index over the given argument
// positions, returning a direct handle usable for probe-time lookups.
// Backfill inserts visible entries in canonical tuple order: bucket order
// feeds candidate-enumeration order, which the determinism fences observe
// through emission order, so index creation over a non-empty relation (the
// planner does this at re-plan time) must not leak the entries map's
// iteration order.
func (r *Relation) EnsureIndex(positions []int) *index {
	id := indexID(positions)
	if idx, ok := r.indexes[id]; ok {
		return idx
	}
	idx := &index{positions: append([]int{}, positions...), buckets: make(map[uint64]*[]*entry)}
	if r.visible > 0 {
		type sortable struct {
			e   *entry
			enc string
		}
		es := make([]sortable, 0, r.visible)
		var buf []byte
		for _, e := range r.entries {
			if e.visible {
				buf = e.tuple.Encode(buf[:0])
				es = append(es, sortable{e: e, enc: string(buf)})
			}
		}
		sort.Slice(es, func(i, j int) bool {
			return strings.Compare(es[i].enc, es[j].enc) < 0
		})
		for _, s := range es {
			r.scratch = appendIndexKey(r.scratch[:0], s.e.tuple, idx.positions)
			idx.add(r.scratch, s.e)
			s.e.indexed = true
		}
	}
	r.indexes[id] = idx
	return idx
}

// dropIndexesExcept deletes every index whose ID is not in keep — the
// planner's index-lifecycle half: when a re-plan stops probing an index, the
// relation stops paying its per-visibility-change maintenance. Callers must
// hold quiescence (no probe can be in flight).
func (r *Relation) dropIndexesExcept(keep map[string]bool) {
	for id := range r.indexes {
		if !keep[id] {
			delete(r.indexes, id)
		}
	}
}

// Index returns the handle of an existing index over positions, or nil. The
// engine resolves every join step to such a handle once at plan-bind time so
// probes skip index-ID formatting entirely.
func (r *Relation) Index(positions []int) *index { return r.indexes[indexID(positions)] }

// Scan invokes fn for every visible tuple.
func (r *Relation) Scan(fn func(t types.Tuple)) {
	for _, e := range r.entries {
		if e.visible {
			fn(e.tuple)
		}
	}
}

// Tuples returns the visible tuples sorted canonically (for deterministic
// output in tests and examples). Entry map keys are process-local handle
// keys, so this cold path re-derives the canonical encoding to sort by —
// the order must not depend on interning history.
func (r *Relation) Tuples() []types.Tuple {
	type sortable struct {
		e   *entry
		enc string
	}
	es := make([]sortable, 0, r.visible)
	var buf []byte
	for _, e := range r.entries {
		if e.visible {
			buf = e.tuple.Encode(buf[:0])
			es = append(es, sortable{e: e, enc: string(buf)})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		return strings.Compare(es[i].enc, es[j].enc) < 0
	})
	out := make([]types.Tuple, len(es))
	for i, s := range es {
		out[i] = s.e.tuple
	}
	return out
}
