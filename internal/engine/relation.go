package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/types"
)

// deriv is one derivation of a tuple under incremental maintenance. The
// derivation is keyed by its rule-execution identifier (base insertions use
// the null RID). In value-based provenance mode each derivation carries the
// BDD of its provenance.
type deriv struct {
	rid     types.ID
	rloc    types.NodeID
	count   int
	payload bdd.Ref // value mode only
}

// entry is one tuple of a relation together with its derivation multiset.
// The tuple is visible while at least one derivation is present.
type entry struct {
	tuple   types.Tuple
	derivs  map[types.ID]*deriv
	visible bool
	payload bdd.Ref // value mode: OR over derivation payloads
}

func (e *entry) derivCount() int { return len(e.derivs) }

// Relation is a materialized table with hash indexes maintained
// incrementally as tuples become visible and invisible.
type Relation struct {
	name    string
	entries map[string]*entry
	indexes map[string]*index
}

type index struct {
	positions []int
	buckets   map[string][]*entry
}

// NewRelation creates an empty relation.
func NewRelation(name string) *Relation {
	return &Relation{
		name:    name,
		entries: make(map[string]*entry),
		indexes: make(map[string]*index),
	}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Len reports the number of visible tuples.
func (r *Relation) Len() int {
	n := 0
	for _, e := range r.entries {
		if e.visible {
			n++
		}
	}
	return n
}

// Get returns the entry for a tuple, or nil.
func (r *Relation) get(t types.Tuple) *entry { return r.entries[t.Key()] }

// getOrCreate returns the entry for a tuple, creating an invisible one if
// needed.
func (r *Relation) getOrCreate(t types.Tuple) *entry {
	k := t.Key()
	e := r.entries[k]
	if e == nil {
		e = &entry{tuple: t, derivs: make(map[types.ID]*deriv), payload: bdd.False}
		r.entries[k] = e
	}
	return e
}

// setVisible inserts or removes the entry from all indexes.
func (r *Relation) setVisible(e *entry, visible bool) {
	if e.visible == visible {
		return
	}
	e.visible = visible
	for _, idx := range r.indexes {
		key := indexKey(e.tuple, idx.positions)
		if visible {
			idx.buckets[key] = append(idx.buckets[key], e)
		} else {
			idx.buckets[key] = removeEntry(idx.buckets[key], e)
			if len(idx.buckets[key]) == 0 {
				delete(idx.buckets, key)
			}
		}
	}
	if !visible && len(e.derivs) == 0 {
		delete(r.entries, e.tuple.Key())
	}
}

func removeEntry(list []*entry, e *entry) []*entry {
	for i, x := range list {
		if x == e {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

func indexKey(t types.Tuple, positions []int) string {
	var b []byte
	for _, p := range positions {
		b = t.Args[p].Encode(b)
	}
	return string(b)
}

func indexID(positions []int) string {
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = fmt.Sprint(p)
	}
	return strings.Join(parts, ",")
}

// EnsureIndex creates (and backfills) a hash index over the given argument
// positions.
func (r *Relation) EnsureIndex(positions []int) {
	id := indexID(positions)
	if _, ok := r.indexes[id]; ok {
		return
	}
	idx := &index{positions: append([]int{}, positions...), buckets: make(map[string][]*entry)}
	for _, e := range r.entries {
		if e.visible {
			key := indexKey(e.tuple, idx.positions)
			idx.buckets[key] = append(idx.buckets[key], e)
		}
	}
	r.indexes[id] = idx
}

// Lookup returns the visible entries whose values at the index positions
// encode to key. The index must exist.
func (r *Relation) Lookup(positions []int, key string) []*entry {
	idx := r.indexes[indexID(positions)]
	if idx == nil {
		return nil
	}
	return idx.buckets[key]
}

// Scan invokes fn for every visible tuple.
func (r *Relation) Scan(fn func(t types.Tuple)) {
	for _, e := range r.entries {
		if e.visible {
			fn(e.tuple)
		}
	}
}

// Tuples returns the visible tuples sorted canonically (for deterministic
// output in tests and examples).
func (r *Relation) Tuples() []types.Tuple {
	var out []types.Tuple
	r.Scan(func(t types.Tuple) { out = append(out, t) })
	sort.Slice(out, func(i, j int) bool {
		return strings.Compare(out[i].Key(), out[j].Key()) < 0
	})
	return out
}
