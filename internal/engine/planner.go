package engine

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/ndlog"
)

// This file is the decision half of the engine's PLANNER layer (stats.go is
// the measurement half): a cost model over live statistics and the re-plan
// pass that swaps a node's active plan set at driver quiescence points.
//
// The planning contract, inherited from the PR 4/5 fences:
//
//   - Plan choice may change WORK ORDER, never FIXPOINT STATE. A join order
//     permutes how each delta's matching derivations are enumerated, but
//     the set of derivations — and therefore relations, provenance rows
//     and DRed staging decisions — is order-independent. The
//     planner-equivalence fences (planner_test.go) pin this bit-exactly.
//   - Swaps happen only between evaluation waves: Settle's release loop,
//     the Scheduler's drained-round check, the simulator's OnIdle hook and
//     deploy.WaitFixpoint all call Replan exactly when no delta is queued
//     and no fire phase is running. Never mid-wave — a mid-wave swap would
//     make emission order depend on when stats crossed a threshold.
//   - Rebuilt plans reuse the compile-time joinIDs of their (rule, pos) in
//     step order. Every legal plan of a position has exactly the same
//     number of join steps, so the program-wide joinID space — which sizes
//     shard.joinIdx and shard.joinStats — never changes.
//
// The cost model is deliberately simple: the estimated fan-out of probing
// an atom on its bound positions, preferring measured hits/probes once a
// join step has seen enough probes and falling back to card/distinct-keys
// before that, with a per-condition credit for each condition the pick
// would unlock (plan.go pickNextAtom) — the condition's measured pass rate
// once it has executed condMinEvals times, the flat condSelectivity before
// that. Greedy min-fan-out with deterministic tie-breaks keeps planning
// O(atoms²) per rule and reproducible.

// replanMinDeltas gates re-planning on drift: a node re-plans only after
// this many further deltas since its last attempt, so quiescence points in
// a steady state don't pay repeated planning passes.
const replanMinDeltas = 1024

// fanoutMinProbes is the confidence threshold for preferring a join step's
// measured fan-out over the cardinality estimate.
const fanoutMinProbes = 16

// condMinEvals is the confidence threshold for preferring a condition's
// measured pass rate over the flat condSelectivity credit.
const condMinEvals = 16

// Replan re-evaluates the node's plan choices against current statistics,
// swapping the active plan set when the cost model prefers a different join
// order. It must be called only at quiescence (no queued deltas, no fire
// phase in flight) — every driver's release loop does so. No-op unless the
// program has a rule worth planning (≥ 3 body atoms) and enough deltas have
// flowed since the last attempt.
func (n *Node) Replan() { n.replan(false) }

// ForceReplan re-plans immediately, bypassing the drift gate. Callers owe the
// same quiescence guarantee as Replan (no queued deltas, no fire phase in
// flight). It reports whether any plan changed — equivalence fences use it to
// assert a perturbation actually flipped a join order.
func (n *Node) ForceReplan() bool { return n.replan(true) }

// replan is Replan with a force override (tests and the explain path re-plan
// regardless of drift). It reports whether any plan changed.
func (n *Node) replan(force bool) bool {
	if n.Err != nil || n.NoReplan || !n.Prog.planable {
		return false
	}
	d := n.DeltasProcessed()
	if !force && d-n.lastReplanDeltas < replanMinDeltas {
		return false
	}
	n.lastReplanDeltas = d
	snap := n.snapshotStats()
	cost := n.costPicker(snap)
	changed := false
	for _, cr := range n.Prog.Rules {
		if !cr.planable() {
			continue
		}
		atoms := cr.source.BodyAtoms()
		condSel := n.condSelFor(cr)
		for k := range atoms {
			pl, err := buildPlan(cr, atoms, cr.slots, k, cost, condSel)
			if err != nil {
				// The default plan compiled, so a rebuild cannot fail; treat
				// a failure defensively by keeping the current plan.
				continue
			}
			reuseJoinIDs(cr.plans[k], pl)
			if !samePlanShape(n.plans[cr.idx][k], pl) {
				n.plans[cr.idx][k] = pl
				changed = true
			}
		}
	}
	if changed {
		n.rebindAfterSwap()
	}
	return changed
}

// costPicker builds the atom-cost function for one planning pass: estimated
// probe fan-out under the snapshot, filtered through the test perturbation
// hook when set.
func (n *Node) costPicker(snap *statsSnapshot) atomCostFn {
	return func(a *ndlog.Atom, boundPos []int) float64 {
		est := n.estFanout(snap, a.Pred, boundPos)
		if n.statHook != nil {
			est = n.statHook(a.Pred, indexID(boundPos), est)
		}
		return est
	}
}

// condSelFor returns the measured-selectivity lookup for one rule: term
// index -> the condition's accumulated pass rate once condMinEvals
// evaluations have been tallied, the flat condSelectivity before that.
// Rates clamp to [0.01, 1] so a never-passing condition cannot zero a
// plan's cost and erase every other factor from the comparison.
func (n *Node) condSelFor(cr *CompiledRule) func(int) float64 {
	return func(term int) float64 {
		cs := n.condAcc[cr.condBase+term]
		if cs.evals < condMinEvals {
			return condSelectivity
		}
		sel := float64(cs.passes) / float64(cs.evals)
		if sel < 0.01 {
			sel = 0.01
		}
		if sel > 1 {
			sel = 1
		}
		return sel
	}
}

// estFanout estimates how many candidates one probe of pred on the given
// bound positions returns: the measured hits/probes of a join step with the
// same probe target once confident, card/distinct-keys otherwise.
func (n *Node) estFanout(snap *statsSnapshot, pred string, boundPos []int) float64 {
	if info := n.Prog.Pred(pred); info != nil && info.Event {
		return 0 // events never materialize: the probe matches nothing
	}
	key := statKey{pred: pred, idx: indexID(boundPos)}
	if js, ok := snap.fanout[key]; ok && js.probes >= fanoutMinProbes {
		return float64(js.hits) / float64(js.probes)
	}
	card := float64(snap.card[pred])
	if len(boundPos) == 0 {
		return card
	}
	if dk := n.distinctKeys(pred, boundPos); dk > 0 {
		return card / float64(dk)
	}
	return card
}

// reuseJoinIDs copies the compile-time plan's joinIDs onto the rebuilt
// plan's join steps in step order, keeping the program-wide joinID space —
// and everything sized by it — stable across swaps.
func reuseJoinIDs(def, pl *plan) {
	ids := make([]int, 0, len(def.steps))
	for i := range def.steps {
		if def.steps[i].kind == stepJoin {
			ids = append(ids, def.steps[i].joinID)
		}
	}
	j := 0
	for i := range pl.steps {
		if pl.steps[i].kind == stepJoin {
			pl.steps[i].joinID = ids[j]
			j++
		}
	}
}

// samePlanShape reports whether two plans of the same (rule, pos) make the
// same choices: join order, probe positions and pushdown placement.
func samePlanShape(a, b *plan) bool {
	if len(a.steps) != len(b.steps) {
		return false
	}
	for i := range a.steps {
		x, y := &a.steps[i], &b.steps[i]
		if x.kind != y.kind {
			return false
		}
		if x.kind == stepJoin {
			if x.atom != y.atom || indexID(x.indexPos) != indexID(y.indexPos) {
				return false
			}
		} else if x.srcTxt != y.srcTxt {
			return false
		}
	}
	return true
}

// rebindAfterSwap re-resolves every shard's join handles against the new
// active plan set: stale indexes (probed by no plan any more) are dropped so
// relations stop paying their maintenance, needed ones are created with the
// deterministic backfill, and the joinID→statKey mapping is rebuilt so
// future tallies fold under the new probe targets. Runs only at quiescence.
func (n *Node) rebindAfterSwap() {
	keep := make(map[string]map[string]bool)
	for _, cr := range n.Prog.Rules {
		for _, pl := range n.plans[cr.idx] {
			for i := range pl.steps {
				st := &pl.steps[i]
				if st.kind != stepJoin {
					continue
				}
				a := cr.atoms[st.atom]
				if a.event {
					continue
				}
				m := keep[a.pred]
				if m == nil {
					m = make(map[string]bool)
					keep[a.pred] = m
				}
				m[indexID(st.indexPos)] = true
			}
		}
	}
	for _, sh := range n.shards {
		for pred, m := range keep {
			if rel := sh.tables[pred]; rel != nil {
				rel.dropIndexesExcept(m)
			}
		}
		sh.bindPlans()
	}
	n.rebuildJoinKeys()
}

// rebuildJoinKeys refreshes the joinID → (predicate, index) mapping from the
// active plan set.
func (n *Node) rebuildJoinKeys() {
	if n.joinKeys == nil {
		n.joinKeys = make([]statKey, n.Prog.numJoins)
	}
	for i := range n.joinKeys {
		n.joinKeys[i] = statKey{}
	}
	for _, cr := range n.Prog.Rules {
		for _, pl := range n.plans[cr.idx] {
			for i := range pl.steps {
				st := &pl.steps[i]
				if st.kind != stepJoin {
					continue
				}
				a := cr.atoms[st.atom]
				if a.event {
					continue
				}
				n.joinKeys[st.joinID] = statKey{pred: a.pred, idx: indexID(st.indexPos)}
			}
		}
	}
}

// ExplainPlans writes the node's active plan for every rule position — join
// order, probe indexes, pushed assignments/conditions — followed by the
// statistics snapshot that justifies the current choices. Output is fully
// deterministic: rules in program order, steps in execution order, snapshot
// maps in sorted key order.
func (n *Node) ExplainPlans(w io.Writer) {
	snap := n.snapshotStats()
	for _, cr := range n.Prog.Rules {
		fmt.Fprintf(w, "rule %s: %s\n", cr.Label, cr.source.String())
		if cr.agg != nil {
			fmt.Fprintf(w, "  aggregate over %s (single-atom; not planned)\n", cr.atoms[0].pred)
			continue
		}
		for pos, pl := range n.plans[cr.idx] {
			fmt.Fprintf(w, "  delta %s (pos %d):", cr.atoms[pos].pred, pos)
			if cr.planable() {
				fmt.Fprint(w, " [planned]")
			} else {
				fmt.Fprint(w, " [default]")
			}
			fmt.Fprintln(w)
			for _, st := range pl.steps {
				switch st.kind {
				case stepJoin:
					a := cr.atoms[st.atom]
					fmt.Fprintf(w, "    join %s idx[%s] est=%.3g\n",
						a.pred, indexID(st.indexPos), n.estFanout(snap, a.pred, st.indexPos))
				case stepCond:
					fmt.Fprintf(w, "    cond %s sel=%.3g\n", st.srcTxt, n.condSelFor(cr)(st.condID))
				case stepAssign:
					fmt.Fprintf(w, "    assign %s\n", st.srcTxt)
				}
			}
		}
	}
	fmt.Fprintln(w, "stats:")
	preds := make([]string, 0, len(snap.card))
	for p := range snap.card {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, p := range preds {
		fmt.Fprintf(w, "  %s: card=%d churn=%d\n", p, snap.card[p], snap.churn[p])
	}
	keys := make([]statKey, 0, len(snap.fanout))
	for k := range snap.fanout {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pred != keys[j].pred {
			return keys[i].pred < keys[j].pred
		}
		return keys[i].idx < keys[j].idx
	})
	for _, k := range keys {
		js := snap.fanout[k]
		fmt.Fprintf(w, "  probe %s idx[%s]: probes=%d hits=%d fanout=%.3g\n",
			k.pred, k.idx, js.probes, js.hits, float64(js.hits)/float64(js.probes))
	}
}
