package engine

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
)

// TestValueModePayloadGrowsWithDerivations exercises value-based
// provenance update propagation on one node: when a tuple gains a second
// derivation, its payload (OR of derivations) must widen, and downstream
// tuples derived from it must receive the update.
func TestValueModePayloadGrowsWithDerivations(t *testing.T) {
	tn := newTestNet(t, `
r1 mid(@X) :- p(@X,Y).
r2 top(@X) :- mid(@X), q(@X).
`, 1, ProvValue)
	n := tn.nodes[0]

	q := types.NewTuple("q", types.Node(0))
	p1 := types.NewTuple("p", types.Node(0), types.Int(1))
	p2 := types.NewTuple("p", types.Node(0), types.Int(2))
	n.InsertBase(q)
	n.InsertBase(p1)
	tn.checkErr(t)

	top := types.NewTuple("top", types.Node(0))
	ref1, ok := n.PayloadOf(top)
	if !ok {
		t.Fatal("top has no payload")
	}
	// With only p1: top requires p1 AND q.
	vp1 := n.Alloc.VarOf(algebra.Base{VID: p1.VID()})
	vq := n.Alloc.VarOf(algebra.Base{VID: q.VID()})
	if !n.Mgr.Eval(ref1, map[int]bool{vp1: true, vq: true}) {
		t.Error("top underivable from {p1,q}")
	}
	if n.Mgr.Eval(ref1, map[int]bool{vq: true}) {
		t.Error("top derivable from q alone")
	}

	// Second derivation of mid: the update must propagate into top's
	// payload without any visibility change.
	n.InsertBase(p2)
	tn.checkErr(t)
	ref2, _ := n.PayloadOf(top)
	if ref2 == ref1 {
		t.Fatal("top payload did not change after new derivation")
	}
	vp2 := n.Alloc.VarOf(algebra.Base{VID: p2.VID()})
	if !n.Mgr.Eval(ref2, map[int]bool{vp2: true, vq: true}) {
		t.Error("top underivable from {p2,q}")
	}
	if !n.Mgr.Eval(ref2, map[int]bool{vp1: true, vq: true}) {
		t.Error("top lost its {p1,q} derivation")
	}

	// Deleting p1 shrinks the payload back.
	n.DeleteBase(p1)
	tn.checkErr(t)
	ref3, ok := n.PayloadOf(top)
	if !ok {
		t.Fatal("top vanished while p2 remains")
	}
	if n.Mgr.Eval(ref3, map[int]bool{vp1: true, vq: true}) {
		t.Error("top still derivable via retracted p1")
	}
	if !n.Mgr.Eval(ref3, map[int]bool{vp2: true, vq: true}) {
		t.Error("top lost its surviving derivation")
	}

	// PayloadOf contract: wrong mode and invisible tuples report false.
	if _, ok := n.PayloadOf(types.NewTuple("top", types.Node(1))); ok {
		t.Error("payload reported for invisible tuple")
	}
	refNode := NewNode(1, n.Prog, ProvReference, tn, nil)
	if _, ok := refNode.PayloadOf(top); ok {
		t.Error("payload reported outside value mode")
	}
}
