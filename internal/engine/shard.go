package engine

import (
	"repro/internal/algebra"
	"repro/internal/bdd"
	"repro/internal/provenance"
	"repro/internal/types"
)

// This file is the engine's WORKER (shard) layer. A shard owns one
// hash-partition of a node's evaluation state — relations, join indexes,
// aggregate groups, a provenance-store partition — plus its own drain ring,
// scratch arenas and RID memo. A single-shard node (the default) runs the
// exact pre-sharding pipeline: process() applies a delta and fires rules
// inline, FIFO, to local quiescence. With several shards, the runtime layer
// (rounds.go) drives shards through batched apply/fire phases instead; the
// round-only code paths are all guarded by node.rounds().
//
// Ownership: a tuple belongs to the shard selected by its content hash
// (types.Tuple.ContentHash — stable across processes). The owner is the only
// writer of the tuple's relation entry, index postings and prov rows; any
// shard may read them during the frozen fire phase.

// localDelta is one unit of PSN work in a shard's FIFO queue. Field order
// is alignment-packed (exspanlint -fieldalign): the 1-byte sign/isBase pair
// trails the word- and 4-byte-aligned fields, saving 8 bytes per queued
// delta (72 vs 80).
type localDelta struct {
	tuple   types.Tuple
	rid     types.ID
	rloc    types.NodeID
	payload bdd.Ref // value mode: decoded provenance of this derivation
	sign    int8
	isBase  bool
}

// shard is one worker partition of a Node.
type shard struct {
	n   *Node
	idx int

	// store is this shard's provenance-store partition (reference and
	// centralized modes).
	store *provenance.Partition

	tables map[string]*Relation

	// owned by: the owner shard's apply phase (merge deposits at the barrier)
	queue []localDelta
	qhead int // drain ring head: queue[qhead:] is pending work

	// Compiled access paths: each stepJoin's index handle, resolved once
	// at plan-bind time (newShard) and indexed by joinID, so a join probe
	// never re-derives the index from its position list.
	//
	// owned by: any
	joinIdx []*index
	// tablesByID mirrors tables for the program's stored predicates,
	// indexed by PredInfo.tableID (one map lookup per delta instead of
	// three). aggByRule and aggBodyRel key aggregate state and the
	// aggregate body relation by CompiledRule.idx.
	tablesByID []*Relation
	aggByRule  []map[string]*aggGroup
	aggBodyRel []*Relation
	// extraTables lists relations created outside the compiled program
	// (unknown predicates, e.g. relayed meta rows), so round maintenance
	// can walk every relation deterministically without a map iteration.
	extraTables []*Relation

	// Per-shard scratch arenas, sized at program-compile time and reused
	// across rule firings. Safe because firing never re-enters the
	// evaluator: derived deltas are enqueued and processed by drain (or
	// buffered for the next round).
	//
	// owned by: the owner shard's rule firing
	envBuf     []types.Value
	matchedBuf []types.Tuple
	entBuf     []*entry
	payloadBuf []bdd.Ref
	vidBuf     []types.ID
	groupBuf   []types.Value
	carryBuf   []types.Value
	keyBuf     []byte
	ridBuf     []byte
	hashBuf    []byte
	argArena   []types.Value // chunked backing store for emitted head args

	// ridCache memoizes rule-execution identifiers. An RID is the SHA-1 of
	// (rule, this node, exact input VIDs), so it is fully determined by the
	// rule index and the inputs' interned VID handles — a 4+4k-byte key.
	// Under churn the same derivations fire repeatedly (insert, delete,
	// re-insert), and the memo turns every repeat into a map hit instead of
	// a SHA-1. Only derivations whose inputs are all stored tuples are
	// cached: event tuples are transient and usually unique, so caching
	// them would grow the memo (and the intern table) without ever hitting.
	// The memo is monotone per shard, bounded by the distinct derivations
	// the workload produces — the same order as the ruleExec partition.
	ridCache map[string]ridCacheVal
	ridKey   []byte

	// Chunked arenas for aggregate state: group and entry structs plus the
	// entry-key scratch. Aggregates allocate one group per (rule, group-by)
	// combination and one entry per distinct input row; boxing each struct
	// individually was a leading allocation class in fixpoint profiles.
	aggKeyBuf     []byte
	aggEntryArena []aggEntry
	aggGroupArena []aggGroup

	// Retraction-protocol staging (see ARCHITECTURE.md "Deletion
	// semantics"): suspects over-deleted with surviving alternate
	// derivations, and aggregate groups whose winner promotion was
	// deferred. Both lists are drained by releaseStaged once the driver
	// detects that the cluster-wide deletion wave has quiesced.
	//
	// owned by: the owner shard; released between waves at quiescence
	stagedEnts   []*entry
	stagedGroups []stagedGroup

	// err records the first evaluation error raised on this shard; the
	// merge barrier (or serial drain) propagates it to Node.Err.
	//
	// owned by: the owner shard; folded into Node.Err at the barrier
	err error

	// Counters.
	//
	// owned by: the owner shard; folded into node accumulators at quiescence
	deltasProcessed int64
	rulesFired      int64
	// joinStats tallies probes/hits per joinID for the planner's cost
	// model (stats.go). Owned by this shard's fire phases; folded into the
	// node accumulator only at quiescence. condStats does the same for
	// condition pass/fail tallies, keyed by program-wide condition slot
	// (CompiledRule.condBase + planStep.condID).
	joinStats []joinStat
	condStats []condStat

	// fireAtomPos/fireIsEvent describe the delta currently being fired
	// (set by firePlan); round-mode join probes use them to pick the
	// old/new admission side.
	//
	// owned by: the owner shard's fire phase
	fireAtomPos int
	fireIsEvent bool

	// Round-mode state; see rounds.go.
	//
	// owned by: the owner shard's phases and the merge workers
	rs roundShard
}

// newShard creates one worker partition, binding the program's join steps to
// this shard's index handles.
//
//exspan:merge-phase
func newShard(n *Node, idx int, store *provenance.Partition) *shard {
	prog := n.Prog
	sh := &shard{
		n:      n,
		idx:    idx,
		store:  store,
		tables: make(map[string]*Relation),
	}
	// Pre-create relations, the indexes every join plan needs, and the
	// per-join compiled handles. Joins against event atoms keep a nil
	// handle: events never materialize, so such probes match nothing.
	sharded := n.NumShards() > 1 // NumShards is fixed before newShard runs
	sh.tablesByID = make([]*Relation, prog.numTables)
	for _, info := range prog.Preds() {
		if !info.Event {
			rel := NewRelation(info.Name)
			rel.deferMaint = sharded
			sh.tables[info.Name] = rel
			sh.tablesByID[info.tableID] = rel
		}
	}
	sh.joinIdx = make([]*index, prog.numJoins)
	sh.joinStats = make([]joinStat, prog.numJoins)
	sh.condStats = make([]condStat, prog.numConds)
	sh.aggByRule = make([]map[string]*aggGroup, len(prog.Rules))
	sh.aggBodyRel = make([]*Relation, len(prog.Rules))
	sh.bindPlans()
	for _, r := range prog.Rules {
		if r.agg != nil && !r.atoms[0].event {
			sh.aggBodyRel[r.idx] = sh.table(r.atoms[0].pred)
		}
	}
	sh.ridCache = make(map[string]ridCacheVal)
	sh.envBuf = make([]types.Value, prog.maxVars)
	sh.matchedBuf = make([]types.Tuple, prog.maxAtoms)
	sh.entBuf = make([]*entry, prog.maxAtoms)
	sh.payloadBuf = make([]bdd.Ref, prog.maxAtoms)
	sh.vidBuf = make([]types.ID, prog.maxAtoms)
	sh.groupBuf = make([]types.Value, prog.maxGroup)
	sh.carryBuf = make([]types.Value, 0, prog.maxVars)
	return sh
}

// bindPlans resolves every join step of the node's ACTIVE plan set to this
// shard's index handles, creating any index a plan needs (EnsureIndex
// backfills deterministically over live state). Runs at shard construction
// and again after every plan swap (Node.replan) — always between rounds,
// never while a fire phase could probe a handle.
func (sh *shard) bindPlans() {
	for _, r := range sh.n.Prog.Rules {
		for _, pl := range sh.n.plans[r.idx] {
			for i := range pl.steps {
				st := &pl.steps[i]
				if st.kind != stepJoin {
					continue
				}
				a := r.atoms[st.atom]
				if !a.event {
					sh.joinIdx[st.joinID] = sh.table(a.pred).EnsureIndex(st.indexPos)
				}
			}
		}
	}
}

func (sh *shard) table(pred string) *Relation {
	t := sh.tables[pred]
	if t == nil {
		t = NewRelation(pred)
		t.deferMaint = sh.n.NumShards() > 1
		sh.tables[pred] = t
		sh.extraTables = append(sh.extraTables, t)
	}
	return t
}

func (sh *shard) fail(err error) {
	if sh.err == nil {
		sh.err = err
	}
}

//exspan:hotpath
func (sh *shard) enqueue(d localDelta) { sh.queue = append(sh.queue, d) }

// popDelta removes and returns the next pending delta of the drain ring.
// The queue is a head-index ring over one slice: popping advances qhead
// instead of re-slicing, and the slice capacity is reused across bursts
// rather than re-allocated per enqueue wave.
//
//exspan:hotpath
func (sh *shard) popDelta() localDelta {
	// Compact once the consumed prefix dominates so a long-lived burst
	// cannot grow the slice without bound.
	if sh.qhead >= 1024 && 2*sh.qhead >= len(sh.queue) {
		m := copy(sh.queue, sh.queue[sh.qhead:])
		tail := sh.queue[m:]
		for i := range tail {
			tail[i] = localDelta{}
		}
		sh.queue = sh.queue[:m]
		sh.qhead = 0
	}
	d := sh.queue[sh.qhead]
	sh.queue[sh.qhead] = localDelta{} // release tuple/payload references
	sh.qhead++
	if sh.qhead == len(sh.queue) {
		sh.queue = sh.queue[:0]
		sh.qhead = 0
	}
	return d
}

func (sh *shard) pending() bool { return sh.qhead < len(sh.queue) || len(sh.rs.aggIn) > 0 }

// process applies one delta to this shard's state and — in serial mode —
// fires the triggered rules inline. In round mode (rm true) firing is
// deferred: the delta's net visibility effect is recorded via markTouched
// and evaluated by the fire phase (rounds.go).
//
//exspan:hotpath
func (sh *shard) process(d localDelta, rm bool) {
	n := sh.n
	sh.deltasProcessed++
	info := n.Prog.Pred(d.tuple.Pred)
	// One predicate lookup serves event-ness, triggered occurrences and the
	// relation: the PredInfo carries them all from compile time.
	var occs []occurrence
	if info != nil {
		occs = info.occs
	}
	isEvent := info != nil && info.Event || info == nil && ndlogIsEvent(d.tuple.Pred)
	if isEvent {
		// Events are transient: fire rules, never materialize. Both
		// insertion and deletion deltas flow through events — the
		// rewritten provenance-maintenance programs rely on deletion
		// deltas cascading through their eHTemp/eH events ("rule r20
		// compiles into a series of insertion and deletion delta rules").
		// Event provenance rows are recorded symmetrically so data-plane
		// activity (e.g. packet forwarding) can be traced.
		if d.sign != Insert && d.sign != Delete {
			return // neither Update nor rederive applies to transient events
		}
		if n.Mode == ProvReference {
			// Events have no entry to cache on; hash once per delta.
			var vid types.ID
			vid, sh.hashBuf = d.tuple.VIDBuf(sh.hashBuf)
			if d.sign == Insert {
				sh.store.RegisterTupleVID(vid, d.tuple)
				sh.store.AddProv(vid, d.rid, d.rloc)
			} else {
				sh.store.DelProv(vid, d.rid, d.rloc)
			}
		}
		// Centralized: base events are reported by their injector; derived
		// events were already reported by the deriving node.
		if n.Mode == ProvCentralized && d.isBase {
			var vid types.ID
			vid, sh.hashBuf = d.tuple.VIDBuf(sh.hashBuf)
			n.sendProvRow(n.ID, vid, types.ZeroID, n.ID, d.sign)
		}
		if rm {
			sh.rs.fires = append(sh.rs.fires, fireItem{tuple: d.tuple, occs: occs, sign: d.sign, isEvent: true})
		} else {
			sh.fireAll(occs, d.tuple, d.sign, nil, d.payload)
		}
		return
	}

	// The provenance meta-relations themselves (rows relayed to a
	// centralized server, or produced by a rewrite-generated program) are
	// stored without further provenance bookkeeping.
	meta := d.tuple.Pred == "prov" || d.tuple.Pred == "ruleExec"

	var rel *Relation
	if info != nil && info.tableID >= 0 {
		rel = sh.tablesByID[info.tableID]
	} else {
		rel = sh.table(d.tuple.Pred)
	}
	switch d.sign {
	case Insert:
		e := rel.getOrCreate(d.tuple)
		if rm {
			sh.markTouched(rel, e, occs)
		}
		dv := e.findDeriv(d.rid)
		if dv == nil {
			dv = e.addDeriv(d.rid, d.rloc)
		}
		dv.count++
		// The entry caches the canonical VID and its interned handle, so
		// each stored tuple is hashed at most once per lifetime regardless
		// of how many deltas and provenance branches touch it, and store
		// partitions are addressed by the 4-byte handle.
		if rm {
			// Sibling shards read the VID during the frozen fire phase;
			// computing it here keeps that phase free of entry mutation.
			_, sh.hashBuf = e.VIDBuf(sh.hashBuf)
		}
		if n.Mode == ProvReference && !meta {
			_, sh.hashBuf = e.VIDBuf(sh.hashBuf)
			if !e.stored {
				// The store drops the VID→tuple row when the last prov
				// entry goes (at which point this entry is deleted too),
				// so one registration per entry lifetime suffices.
				sh.store.RegisterTupleVIDH(e.vidHandle(), d.tuple)
				e.stored = true
			}
			sh.store.AddProvH(e.vidHandle(), d.rid, d.rloc)
		}
		// Centralized: the deriving node reports derived rows; the owner
		// reports base rows.
		if n.Mode == ProvCentralized && !meta && d.isBase {
			var vid types.ID
			vid, sh.hashBuf = e.VIDBuf(sh.hashBuf)
			n.sendProvRow(n.ID, vid, types.ZeroID, n.ID, Insert)
		}
		payloadChanged := false
		if n.Mode == ProvValue {
			if d.isBase {
				var vid types.ID
				vid, sh.hashBuf = e.VIDBuf(sh.hashBuf)
				dv.payload = n.Mgr.Var(n.Alloc.VarOf(algebra.Base{
					VID: vid, Label: d.tuple.String(), Node: n.ID,
				}))
			} else {
				dv.payload = d.payload
			}
			payloadChanged = sh.recomputePayload(e)
		}
		if !e.visible {
			if e.staged {
				// Retraction phase 1: a suspect absorbs new support
				// silently. Re-showing it here would let the insert wave
				// race the still-running deletion wave around derivation
				// cycles (a hide/show flap that never quiesces); the
				// release re-shows it — with this derivation counted —
				// once the deletion wave is done.
				return
			}
			rel.setVisible(e, true)
			if !rm {
				sh.fireAll(occs, d.tuple, Insert, e, e.payload)
			}
		} else if payloadChanged {
			sh.fireAll(occs, d.tuple, Update, e, e.payload)
		}

	case Delete:
		e := rel.get(d.tuple)
		if e == nil {
			return
		}
		dv := e.findDeriv(d.rid)
		if dv == nil {
			return
		}
		if rm {
			sh.markTouched(rel, e, occs)
		}
		dv.count--
		removed := dv.count <= 0
		if removed {
			e.delDeriv(d.rid)
		}
		if n.Mode == ProvReference && !meta {
			_, sh.hashBuf = e.VIDBuf(sh.hashBuf)
			sh.store.DelProvH(e.vidHandle(), d.rid, d.rloc)
		}
		if n.Mode == ProvCentralized && !meta && d.isBase {
			var vid types.ID
			vid, sh.hashBuf = e.VIDBuf(sh.hashBuf)
			n.sendProvRow(n.ID, vid, types.ZeroID, n.ID, Delete)
		}
		switch {
		case len(e.derivs) == 0:
			if e.visible {
				rel.setVisible(e, false)
				if !rm {
					sh.fireAll(occs, d.tuple, Delete, e, e.payload)
				}
			} else {
				// A suspect lost its last alternate while hidden; record the
				// tombstone transition setVisible never observed.
				rel.noteDead(e)
			}
		case removed && e.visible && info != nil && info.Recursive && !meta:
			// Over-deletion (retraction phase 1): a recursive tuple that
			// lost a derivation is hidden even though alternates remain —
			// the alternates may be phantom cyclic support — and staged for
			// the re-derivation phase, which re-shows it only if support
			// survives the completed deletion wave (see ARCHITECTURE.md
			// "Deletion semantics").
			rel.setVisible(e, false)
			sh.stageEntry(e)
			if !rm {
				sh.fireAll(occs, d.tuple, Delete, e, e.payload)
			}
		case n.Mode == ProvValue && sh.recomputePayload(e):
			if e.visible {
				sh.fireAll(occs, d.tuple, Update, e, e.payload)
			}
		}

	case rederive:
		// Retraction phase 2: re-show an over-deleted tuple whose alternate
		// derivations survived the deletion wave, firing the ordinary
		// insert cascade so consumers re-derive from it.
		e := rel.get(d.tuple)
		if e == nil || e.visible || len(e.derivs) == 0 {
			return
		}
		if rm {
			sh.markTouched(rel, e, occs)
		}
		if n.Mode == ProvValue {
			sh.recomputePayload(e)
		}
		rel.setVisible(e, true)
		if !rm {
			sh.fireAll(occs, d.tuple, Insert, e, e.payload)
		}

	case Update:
		if n.Mode != ProvValue {
			return
		}
		e := rel.get(d.tuple)
		if e == nil {
			return
		}
		dv := e.findDeriv(d.rid)
		if dv == nil {
			return
		}
		dv.payload = d.payload
		// Suspects absorb payload updates silently; a visibility-preserving
		// change only propagates for visible tuples.
		if sh.recomputePayload(e) && e.visible {
			sh.fireAll(occs, d.tuple, Update, e, e.payload)
		}
	}
}

// stageEntry registers an over-deleted entry with surviving alternate
// derivations for the re-derivation phase.
func (sh *shard) stageEntry(e *entry) {
	if e.staged {
		return
	}
	e.staged = true
	sh.stagedEnts = append(sh.stagedEnts, e)
}

// stratumOf returns the release stratum of a predicate (0 for predicates
// the program never mentions; those can only be staged via relayed meta
// rows, which are never recursive in practice).
func (sh *shard) stratumOf(pred string) int {
	if info := sh.n.Prog.Pred(pred); info != nil {
		return info.Stratum
	}
	return 0
}

// minStagedStratum returns the lowest occupied release stratum on this
// shard, or -1 when nothing is staged.
func (sh *shard) minStagedStratum() int {
	min := -1
	for _, e := range sh.stagedEnts {
		if s := sh.stratumOf(e.tuple.Pred); min < 0 || s < min {
			min = s
		}
	}
	for i := range sh.stagedGroups {
		if s := sh.stagedGroups[i].rule.headStratum; min < 0 || s < min {
			min = s
		}
	}
	return min
}

// releaseStratum moves the given stratum's staged re-derivations into
// actionable work: suspects whose alternate derivations survived the
// deletion wave are enqueued as rederive deltas, and staged aggregate
// groups re-refresh, emitting their deferred winner. Items in other strata
// stay staged. It reports whether any work was produced (the driver then
// runs the node to quiescence again). Staging is validated here, not at
// staging time — a suspect re-shown by a genuine insert, or a group whose
// output was already rebuilt, releases as a no-op — so release order across
// shards and nodes cannot affect the fixpoint (the stratified wave order in
// Node.ReleaseStaged is a round-trip optimization, not a correctness
// requirement; engine/dred_test.go proves order independence).
//
// limit, when non-nil, caps how many staged items this call may release
// (shared across shards by Node.ReleaseStaged's per-suspect baseline mode);
// nil releases the whole stratum as one batch.
func (sh *shard) releaseStratum(stratum int, limit *int) bool {
	any := false
	ents := sh.stagedEnts
	kept := ents[:0]
	for _, e := range ents {
		if limit != nil && *limit == 0 || sh.stratumOf(e.tuple.Pred) != stratum {
			kept = append(kept, e)
			continue
		}
		if limit != nil {
			*limit--
		}
		e.staged = false
		if !e.visible && len(e.derivs) > 0 {
			sh.enqueue(localDelta{tuple: e.tuple, sign: rederive})
			any = true
		}
	}
	for i := len(kept); i < len(ents); i++ {
		ents[i] = nil
	}
	sh.stagedEnts = kept

	groups := sh.stagedGroups
	keptG := groups[:0]
	for i := range groups {
		sg := groups[i]
		if limit != nil && *limit == 0 || sg.rule.headStratum != stratum {
			keptG = append(keptG, sg)
			continue
		}
		if limit != nil {
			*limit--
		}
		sg.g.staged = false
		for _, em := range sg.g.refresh(sh, sg.rule, sg.groupVals, false) {
			out := em.tuple
			out.Pred = sg.rule.HeadPred
			sh.emitAggChange(sg.rule, out, em, types.Tuple{})
			any = true
		}
	}
	for i := len(keptG); i < len(groups); i++ {
		groups[i] = stagedGroup{}
	}
	sh.stagedGroups = keptG
	return any
}

func ndlogIsEvent(pred string) bool {
	return len(pred) >= 2 && pred[0] == 'e' && pred[1] >= 'A' && pred[1] <= 'Z'
}

// recomputePayload refreshes the entry's combined (OR) payload; it reports
// whether the payload changed.
func (sh *shard) recomputePayload(e *entry) bool {
	comb := bdd.False
	for i := range e.derivs {
		comb = sh.n.Mgr.Or(comb, e.derivs[i].payload)
	}
	if comb == e.payload {
		return false
	}
	e.payload = comb
	return true
}

// fireAll runs every rule occurrence triggered by a delta of this
// predicate. deltaEntry may be nil (events); payload is the tuple's current
// provenance payload in value mode.
//
//exspan:hotpath
func (sh *shard) fireAll(occs []occurrence, t types.Tuple, sign int8, deltaEntry *entry, payload bdd.Ref) {
	for _, occ := range occs {
		if occ.rule.agg != nil {
			sh.fireAgg(occ.rule, t, sign, payload)
		} else {
			sh.firePlan(occ.rule, occ.pos, t, sign, deltaEntry, payload)
		}
	}
}

// argArenaChunk sizes the chunked backing store for emitted head arguments.
// Emitted tuples escape into relations and messages, so their args cannot
// live in reusable scratch; carving them from a chunk amortizes the per-
// emission allocation to ~1/chunk.
const argArenaChunk = 512

func (sh *shard) allocArgs(k int) []types.Value {
	if k == 0 {
		return nil
	}
	if len(sh.argArena)+k > cap(sh.argArena) {
		size := argArenaChunk
		if k > size {
			size = k
		}
		sh.argArena = make([]types.Value, 0, size)
	}
	off := len(sh.argArena)
	sh.argArena = sh.argArena[:off+k]
	return sh.argArena[off : off+k : off+k]
}

// aggArenaChunk sizes the chunked arenas for aggregate group and entry
// structs.
const aggArenaChunk = 128

// allocAggEntry carves a zeroed aggregate entry from the chunked arena.
func (sh *shard) allocAggEntry() *aggEntry {
	if len(sh.aggEntryArena) == cap(sh.aggEntryArena) {
		sh.aggEntryArena = make([]aggEntry, 0, aggArenaChunk)
	}
	sh.aggEntryArena = sh.aggEntryArena[:len(sh.aggEntryArena)+1]
	return &sh.aggEntryArena[len(sh.aggEntryArena)-1]
}

// allocAggGroup carves a fresh aggregate group (with its entry map ready)
// from the chunked arena.
func (sh *shard) allocAggGroup() *aggGroup {
	if len(sh.aggGroupArena) == cap(sh.aggGroupArena) {
		sh.aggGroupArena = make([]aggGroup, 0, aggArenaChunk)
	}
	sh.aggGroupArena = sh.aggGroupArena[:len(sh.aggGroupArena)+1]
	g := &sh.aggGroupArena[len(sh.aggGroupArena)-1]
	g.entries = make(map[string]*aggEntry)
	return g
}
