package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/types"
)

// Planner-equivalence fences (ISSUE 7): plan choice may change work order,
// never fixpoint state. These tests perturb the cost model's statistics
// through the statHook lever so the greedy planner picks join orders the
// default (syntax-order) plan would not, then require the fixpoint state —
// visible tuples, prov rows, ruleExec rows — to stay bit-identical to the
// NoReplan baseline, on serial nodes and sharded schedulers, in all four
// provenance modes, from-scratch and under delete/re-insert churn. A fence
// run is vacuous if no perturbation actually flips a plan, so the matrix
// asserts at least one seed changed a plan shape.

// plannerProg is the smallest program the planner acts on: p2 has three body
// atoms (all localized at @Y), is recursive through reach (DRed churn chases
// re-derivations around cycles), and joins a side relation ok whose
// cardinality differs from link's — so cost perturbations can flip which of
// reach/ok is probed first.
func plannerProg(t testing.TB) *Program {
	t.Helper()
	prog, err := Compile(ndlog.MustParse(`
p1 reach(@Y,X) :- link(@X,Y,C), ok(@X,C).
p2 reach(@Z,X) :- link(@Y,Z,C), reach(@Y,X), ok(@Y,C).
`))
	if err != nil {
		t.Fatal(err)
	}
	if !prog.planable {
		t.Fatal("planner program classified non-planable")
	}
	return prog
}

func okTup(u int, c int64) types.Tuple {
	return types.NewTuple("ok", types.Node(types.NodeID(u)), types.Int(c))
}

// perturbHook builds a deterministic stat perturbation: a pure multiplier
// plus tie-breaking epsilon derived from (pred, index, seed). Different seeds
// skew the cost model differently, forcing alternative join orders without
// touching evaluation itself.
func perturbHook(seed int64) func(pred, idx string, est float64) float64 {
	return func(pred, idx string, est float64) float64 {
		h := uint64(seed)*0x9E3779B97F4A7C15 + 0xcbf29ce484222325
		for _, b := range []byte(pred + "/" + idx) {
			h ^= uint64(b)
			h *= 1099511628211
		}
		return est*(float64(1+h%16)/4.0) + float64(h%7)*0.01
	}
}

// plannerOp is one base-fact mutation at a node; plannerStep groups the
// mutations between two quiescence points (where hooked runs force a
// re-plan).
type plannerOp struct {
	node int
	tup  types.Tuple
}

type plannerStep struct {
	del []plannerOp
	ins []plannerOp
}

// plannerScript builds the shared insert/churn script: links both directions
// plus an ok(cost) table per node, then per churn edge a deletion step that
// re-inserts even-indexed edges (the dred harness convention) and cycles ok
// facts through delete/re-insert so retraction cascades cross the planned
// third atom too.
func plannerScript(nNodes int, edges, churn [][2]int) []plannerStep {
	var boot plannerStep
	for _, e := range edges {
		cost := edgeCost(e, nil)
		boot.ins = append(boot.ins,
			plannerOp{e[0], linkTup(e[0], e[1], cost)},
			plannerOp{e[1], linkTup(e[1], e[0], cost)})
	}
	for u := 0; u < nNodes; u++ {
		for c := int64(1); c <= 5; c++ {
			boot.ins = append(boot.ins, plannerOp{u, okTup(u, c)})
		}
	}
	script := []plannerStep{boot}
	for i, e := range churn {
		cost := edgeCost(e, nil)
		var st plannerStep
		st.del = append(st.del,
			plannerOp{e[0], linkTup(e[0], e[1], cost)},
			plannerOp{e[1], linkTup(e[1], e[0], cost)})
		if i%2 == 0 {
			st.ins = append(st.ins,
				plannerOp{e[0], linkTup(e[0], e[1], cost)},
				plannerOp{e[1], linkTup(e[1], e[0], cost)})
		}
		if i%3 == 0 {
			st.del = append(st.del, plannerOp{e[0], okTup(e[0], cost)})
			st.ins = append(st.ins, plannerOp{e[0], okTup(e[0], cost)})
		}
		script = append(script, st)
	}
	return script
}

// runPlannerSerial drives the script on serial nodes under the synchronous
// reference transport. hook == nil pins the compile-time plans (NoReplan
// baseline); otherwise the hook perturbs the cost model and every step
// boundary forces a re-plan. Reports whether any re-plan changed a plan.
func runPlannerSerial(t *testing.T, prog *Program, mode ProvMode, nNodes int,
	script []plannerStep, hook func(string, string, float64) float64) ([]*Node, bool) {
	t.Helper()
	tr := &refTransport{}
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		nodes[i] = NewNode(types.NodeID(i), prog, mode, tr, nil)
		if hook == nil {
			nodes[i].NoReplan = true
		} else {
			nodes[i].statHook = hook
		}
	}
	tr.nodes = nodes
	changed := false
	for _, st := range script {
		for _, op := range st.del {
			nodes[op.node].DeleteBase(op.tup)
		}
		Settle(nodes...)
		for _, op := range st.ins {
			nodes[op.node].InsertBase(op.tup)
		}
		Settle(nodes...)
		if hook != nil {
			for _, n := range nodes {
				if n.ForceReplan() {
					changed = true
				}
			}
		}
	}
	for _, n := range nodes {
		if n.Err != nil {
			t.Fatalf("serial planner run: %v", n.Err)
		}
	}
	return nodes, changed
}

// runPlannerSched drives the same script through a sharded scheduler, one Run
// per step (deletions and re-insertions batched, as runSched does).
func runPlannerSched(t *testing.T, prog *Program, mode ProvMode, nNodes, shards int,
	script []plannerStep, hook func(string, string, float64) float64) (*Scheduler, bool) {
	t.Helper()
	s := NewScheduler(prog, mode, nNodes, shards, 0)
	for i := 0; i < s.NumNodes(); i++ {
		if hook == nil {
			s.Node(i).NoReplan = true
		} else {
			s.Node(i).statHook = hook
		}
	}
	changed := false
	for _, st := range script {
		for _, op := range st.del {
			s.DeleteBase(types.NodeID(op.node), op.tup)
		}
		for _, op := range st.ins {
			s.InsertBase(types.NodeID(op.node), op.tup)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("scheduler planner run: %v", err)
		}
		if hook != nil {
			for i := 0; i < s.NumNodes(); i++ {
				if s.Node(i).ForceReplan() {
					changed = true
				}
			}
		}
	}
	return s, changed
}

// TestPlannerEquivalence is the tentpole fence: randomized stat perturbations
// force different join orders, and the fixpoint state stays bit-identical to
// the syntax-order (NoReplan) serial baseline — serial and sharded, all four
// provenance modes, with churn.
func TestPlannerEquivalence(t *testing.T) {
	prog := plannerProg(t)
	preds := []string{"link", "ok", "reach"}
	const nNodes = 10
	edges := randomLinks(nNodes, 5, rand.New(rand.NewSource(7)))
	var churn [][2]int
	for i, e := range edges {
		if i%3 == 0 {
			churn = append(churn, e)
		}
	}
	script := plannerScript(nNodes, edges, churn)

	modes := []ProvMode{ProvNone, ProvReference, ProvValue, ProvCentralized}
	seeds := []int64{1, 2, 3}
	anyChanged := false
	for _, mode := range modes {
		base, _ := runPlannerSerial(t, prog, mode, nNodes, script, nil)
		for _, seed := range seeds {
			hook := perturbHook(seed)
			got, ch := runPlannerSerial(t, prog, mode, nNodes, script, hook)
			anyChanged = anyChanged || ch
			diffStates(t, fmt.Sprintf("%s serial seed=%d", mode, seed), nNodes, preds,
				func(i int) *Node { return base[i] },
				func(i int) *Node { return got[i] })
			for _, shards := range []int{1, 4} {
				s, ch := runPlannerSched(t, prog, mode, nNodes, shards, script, hook)
				anyChanged = anyChanged || ch
				diffStates(t, fmt.Sprintf("%s shards=%d seed=%d", mode, shards, seed), nNodes, preds,
					func(i int) *Node { return base[i] },
					func(i int) *Node { return s.Node(i) })
			}
		}
	}
	if !anyChanged {
		t.Fatal("no perturbation seed changed any plan; the equivalence fence is vacuous")
	}
}

// TestPlannerReplanUnderDeletionChurn retracts every base fact of the cyclic
// planner program one step at a time with a forced (perturbed) re-plan at
// every quiescence point — plan swaps interleaved with DRed's two-phase
// delete-and-rederive — and requires the engine to end completely empty, in
// every provenance mode, serial and sharded.
func TestPlannerReplanUnderDeletionChurn(t *testing.T) {
	prog := plannerProg(t)
	preds := []string{"link", "ok", "reach"}
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}}
	const nNodes = 4

	// Boot script, then one deletion step per link, then the ok table.
	script := plannerScript(nNodes, edges, nil)
	for _, e := range edges {
		cost := edgeCost(e, nil)
		script = append(script, plannerStep{del: []plannerOp{
			{e[0], linkTup(e[0], e[1], cost)},
			{e[1], linkTup(e[1], e[0], cost)},
		}})
	}
	for u := 0; u < nNodes; u++ {
		var st plannerStep
		for c := int64(1); c <= 5; c++ {
			st.del = append(st.del, plannerOp{u, okTup(u, c)})
		}
		script = append(script, st)
	}

	checkEmpty := func(t *testing.T, label string, nodes []*Node) {
		t.Helper()
		for i, n := range nodes {
			for _, pred := range preds {
				if c := n.TupleCount(pred); c != 0 {
					t.Errorf("%s: node %d: %d %s tuples survive full retraction", label, i, c, pred)
				}
			}
			if c := n.Store.NumProv(); c != 0 {
				t.Errorf("%s: node %d: %d prov rows leak", label, i, c)
			}
			if c := n.Store.NumRuleExec(); c != 0 {
				t.Errorf("%s: node %d: %d ruleExec rows leak", label, i, c)
			}
			if c := n.Store.NumParents(); c != 0 {
				t.Errorf("%s: node %d: %d reverse edges leak", label, i, c)
			}
		}
	}

	for _, mode := range []ProvMode{ProvNone, ProvReference, ProvValue, ProvCentralized} {
		hook := perturbHook(11)
		nodes, _ := runPlannerSerial(t, prog, mode, nNodes, script, hook)
		checkEmpty(t, "serial "+mode.String(), nodes)
		for _, shards := range []int{1, 4} {
			s, _ := runPlannerSched(t, prog, mode, nNodes, shards, script, hook)
			sn := make([]*Node, s.NumNodes())
			for i := range sn {
				sn[i] = s.Node(i)
			}
			checkEmpty(t, fmt.Sprintf("sched %s shards=%d", mode, shards), sn)
		}
	}
}

// TestPlannerCostChoiceAndPushdown pins the two plan-time decisions directly:
// the compile-time default pushes a condition to the earliest step its
// variables are bound (not the plan tail), and the cost model flips an
// adversarial syntax order — a 100×-skewed pair of relations where the
// selective one is written last — on real statistics, no perturbation hook.
func TestPlannerCostChoiceAndPushdown(t *testing.T) {
	prog, err := Compile(ndlog.MustParse(`r1 out(@X,P) :- eGo(@X), big(@X,P), sel(@X,P), P != 0.`))
	if err != nil {
		t.Fatal(err)
	}
	if !prog.planable {
		t.Fatal("3-atom rule classified non-planable")
	}

	// Predicate pushdown: for the eGo delta, P is bound after the first join
	// (big, in syntax order), so the condition must sit at step 1 — between
	// the joins, not after both.
	pl := prog.Rules[0].plans[0]
	if len(pl.steps) != 3 || pl.steps[0].kind != stepJoin ||
		pl.steps[1].kind != stepCond || pl.steps[2].kind != stepJoin {
		t.Fatalf("default eGo plan shape = %v, want [join cond join] (pushdown)", kinds(pl))
	}

	tr := &refTransport{}
	n := NewNode(0, prog, ProvNone, tr, nil)
	tr.nodes = []*Node{n}
	for i := 0; i < 200; i++ {
		n.InsertBase(types.NewTuple("big", types.Node(0), types.Int(int64(i))))
	}
	for i := 0; i < 2; i++ {
		n.InsertBase(types.NewTuple("sel", types.Node(0), types.Int(int64(i))))
	}
	Settle(n)
	if !n.ForceReplan() {
		t.Fatal("cost model kept the adversarial syntax order despite 100× skew")
	}
	if n.ForceReplan() {
		t.Fatal("second re-plan on unchanged statistics flipped plans again")
	}
	// The planned order probes sel before big.
	got := n.plans[0][0]
	if a := prog.Rules[0].atoms[got.steps[0].atom]; a.pred != "sel" {
		t.Fatalf("planned eGo plan probes %s first, want sel", a.pred)
	}
	n.InjectEvent(types.NewTuple("eGo", types.Node(0)))
	Settle(n)
	if n.Err != nil {
		t.Fatal(n.Err)
	}
	if c := n.TupleCount("out"); c != 1 {
		t.Fatalf("out count = %d, want 1 (P=1 passes, P=0 filtered)", c)
	}
}

func kinds(pl *plan) []stepKind {
	out := make([]stepKind, len(pl.steps))
	for i := range pl.steps {
		out[i] = pl.steps[i].kind
	}
	return out
}

// TestExplainPlansDeterministic locks the -explain contract: two snapshots of
// the same node render byte-identically.
func TestExplainPlansDeterministic(t *testing.T) {
	prog := plannerProg(t)
	tr := &refTransport{}
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = NewNode(types.NodeID(i), prog, ProvReference, tr, nil)
	}
	tr.nodes = nodes
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		cost := edgeCost(e, nil)
		nodes[e[0]].InsertBase(linkTup(e[0], e[1], cost))
		nodes[e[1]].InsertBase(linkTup(e[1], e[0], cost))
		nodes[e[0]].InsertBase(okTup(e[0], cost))
		nodes[e[1]].InsertBase(okTup(e[1], cost))
	}
	Settle(nodes...)
	nodes[0].ForceReplan()
	var a, b sbuf
	nodes[0].ExplainPlans(&a)
	nodes[0].ExplainPlans(&b)
	if a.s != b.s {
		t.Fatalf("ExplainPlans not deterministic:\n%s\n-- vs --\n%s", a.s, b.s)
	}
	if a.s == "" {
		t.Fatal("ExplainPlans wrote nothing")
	}
}

type sbuf struct{ s string }

func (b *sbuf) Write(p []byte) (int, error) {
	b.s += string(p)
	return len(p), nil
}
