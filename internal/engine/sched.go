package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/bdd"
	"repro/internal/types"
)

// Scheduler is the cluster-scale half of the engine's RUNTIME layer: it owns
// every node's worker shards and drives the whole distributed fixpoint as
// bulk-synchronous rounds over a bounded worker pool, instead of threading
// each message through the discrete-event simulator one delivery at a time.
//
// One scheduler round runs every node with pending input to local
// quiescence (in parallel — nodes share no mutable state, and a sharded
// node fans its own apply/fire phases out further), then delivers the
// buffered cross-node messages in (source node, emission order) — a fixed
// merge order, so a run is deterministic for a given node and shard count
// regardless of how the goroutines interleave. Byte accounting charges the
// same per-message wire size + datagram overhead as the simulator and the
// UDP deployment, so totals are comparable.
//
// The scheduler computes fixpoints and their provenance; it does not model
// latency or bandwidth (no virtual clock) and does not serve distributed
// provenance queries — use the simnet or deploy drivers for those. Final
// relation and provenance-store state matches a simulator run of the same
// program modulo message-arrival order, and matches it exactly for
// monotone (insert-only) workloads.
type Scheduler struct {
	Prog *Program
	Mode ProvMode

	// MsgOverhead is the fixed per-message header cost (28 = IPv4 + UDP),
	// matching simnet.DefaultMsgOverhead and the deployment transport.
	MsgOverhead int

	// Accounting, indexed by node.
	TotalBytes int64
	SentBytes  []int64
	RecvBytes  []int64
	SentMsgs   []int64
	// Rounds counts executed scheduler rounds.
	Rounds int64

	nodes   []*Node
	workers int
	staged  [][]outMsg // per source node; written only by that node's task
	scratch []*Node    // reusable active-node list (Run)
}

// NewScheduler builds a cluster of nNodes engine nodes with the given
// worker-shard count each, driven by a pool of `workers` goroutines
// (0 = GOMAXPROCS).
func NewScheduler(prog *Program, mode ProvMode, nNodes, shardsPerNode, workers int) *Scheduler {
	s := &Scheduler{
		Prog:        prog,
		Mode:        mode,
		MsgOverhead: 28,
		workers:     workers,
		SentBytes:   make([]int64, nNodes),
		RecvBytes:   make([]int64, nNodes),
		SentMsgs:    make([]int64, nNodes),
		staged:      make([][]outMsg, nNodes),
	}
	var alloc *algebra.VarAlloc
	if mode == ProvValue {
		alloc = algebra.NewVarAlloc()
		// Value mode shares one BDD variable allocator across the cluster;
		// variable numbering (and with it encoded payload bytes) must not
		// depend on which node's goroutine interns a base tuple first, so
		// value-mode clusters execute their node tasks serially.
		s.workers = 1
	}
	s.nodes = make([]*Node, nNodes)
	for i := range s.nodes {
		n := NewNodeSharded(types.NodeID(i), prog, mode, schedTransport{s}, alloc, shardsPerNode)
		// Single-shard nodes run their whole local fixpoint on one
		// goroutine, so each gets a private message free list; deliver
		// (serial, between rounds) releases messages back to the sender's
		// pool once deposited. Sharded nodes fire in parallel and bypass
		// pooling (Node.newMessage), so they keep a nil pool — Put degrades
		// to a no-op.
		if n.NumShards() == 1 {
			n.Msgs = NewMessagePool()
		}
		s.nodes[i] = n
	}
	return s
}

// schedTransport buffers outbound messages per source node. Each node's
// local run is the only writer of its staged slice, so concurrent node
// tasks never contend.
type schedTransport struct{ s *Scheduler }

//exspan:hotpath
func (t schedTransport) Send(from, to types.NodeID, m *Message) {
	t.s.staged[from] = append(t.s.staged[from], outMsg{to: to, m: m})
}

// Node returns engine node i.
func (s *Scheduler) Node(i int) *Node { return s.nodes[i] }

// NumNodes reports the cluster size.
func (s *Scheduler) NumNodes() int { return len(s.nodes) }

// InsertBase deposits a base-tuple insertion at a node (evaluated by Run).
func (s *Scheduler) InsertBase(node types.NodeID, t types.Tuple) {
	s.nodes[node].deposit(localDelta{tuple: t, sign: Insert, rloc: node, isBase: true})
}

// DeleteBase deposits a base-tuple retraction at a node.
func (s *Scheduler) DeleteBase(node types.NodeID, t types.Tuple) {
	s.nodes[node].deposit(localDelta{tuple: t, sign: Delete, rloc: node, isBase: true})
}

// InjectEvent deposits an event tuple at a node.
func (s *Scheduler) InjectEvent(node types.NodeID, t types.Tuple) {
	d := localDelta{tuple: t, sign: Insert, rloc: node, isBase: true}
	if s.Mode == ProvValue {
		d.payload = bdd.True
	}
	s.nodes[node].deposit(d)
}

// Err reports the first engine error across nodes.
func (s *Scheduler) Err() error {
	for _, n := range s.nodes {
		n.syncErr()
		if n.Err != nil {
			return n.Err
		}
	}
	return nil
}

// Run executes scheduler rounds until the cluster is quiescent: no node has
// pending deltas, no messages are in flight, and no node stages retraction
// re-derivations. Quiescence of the delta rounds is the scheduler's global
// quiescence point — every deletion message has been delivered — so staged
// phase-2 work (suspects with surviving alternate derivations, deferred
// aggregate winner promotions) is released there, in node order, and the
// rounds resume until nothing further is staged. It returns the first
// engine error, if any.
func (s *Scheduler) Run() error {
	if s.scratch == nil {
		s.scratch = make([]*Node, 0, len(s.nodes))
	}
	for {
		active := s.scratch[:0]
		for _, n := range s.nodes {
			if n.Err == nil && n.anyPending() {
				active = append(active, n)
			}
		}
		if len(active) == 0 {
			released := false
			for _, n := range s.nodes {
				if n.Err == nil && n.ReleaseStaged() {
					released = true
				}
			}
			if !released {
				// Global quiescence with nothing staged: the only point a
				// scheduler-driven node may swap plans.
				for _, n := range s.nodes {
					n.Replan()
				}
				break
			}
			continue
		}
		s.Rounds++
		s.runLocal(active)
		if err := s.Err(); err != nil {
			return err
		}
		s.deliver()
	}
	return s.Err()
}

// runLocal runs each active node to local quiescence on the worker pool.
func (s *Scheduler) runLocal(active []*Node) {
	w := s.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(active) {
		w = len(active)
	}
	if w <= 1 {
		for _, n := range active {
			n.localFixpoint()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(active) {
					return
				}
				active[i].localFixpoint()
			}
		}()
	}
	wg.Wait()
}

// localFixpoint drains the node to local quiescence under its own execution
// strategy (serial inline drain or sharded rounds), with outbound messages
// buffered by the scheduler transport.
func (n *Node) localFixpoint() {
	if n.Err != nil {
		return
	}
	if n.rounds() {
		n.runRounds()
		return
	}
	n.drain()
}

// deliver moves staged messages into destination shard rings in (source
// node, emission order) and charges byte accounting. Once deposited, the
// message struct is released back to its sender's pool (a no-op for sharded
// senders, which allocate plainly): deliver runs serially between rounds,
// so the unsynchronized pools see one goroutine.
//
//exspan:hotpath
func (s *Scheduler) deliver() {
	for src := range s.staged {
		msgs := s.staged[src]
		for i := range msgs {
			om := msgs[i]
			msgs[i] = outMsg{}
			size := int64(om.m.WireSize() + s.MsgOverhead)
			s.TotalBytes += size
			s.SentBytes[src] += size
			s.SentMsgs[src]++
			s.RecvBytes[om.to] += size
			s.nodes[om.to].depositMessage(types.NodeID(src), om.m)
			s.nodes[src].Msgs.Put(om.m)
		}
		s.staged[src] = msgs[:0]
	}
}

// AvgSentMB reports the per-node average of bytes sent, in megabytes.
func (s *Scheduler) AvgSentMB() float64 {
	return float64(s.TotalBytes) / float64(len(s.nodes)) / 1e6
}
