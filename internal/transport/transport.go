// Package transport is the reliable-delivery layer shared by the simulated
// and deployed transports: per-peer sequence numbers, cumulative acks
// piggybacked on data frames, retransmission timers with exponential
// backoff, and an in-order dedup window, so that delivery into the engine
// is exactly-once even when the substrate drops, duplicates or reorders
// datagrams.
//
// The package is a pure protocol state machine. It owns no socket and no
// clock: the caller supplies hooks for putting a frame on the (unreliable)
// wire, delivering a payload up the stack, and scheduling a callback after
// a delay. The simulator wires these to virtual-time events, the UDP
// deployment to its per-node worker goroutine — the same state machine
// runs under both, which is what makes the chaos equivalence fences
// meaningful (see ARCHITECTURE.md "Transport & fault model").
//
// An Endpoint is deliberately NOT safe for concurrent use. Every driver
// already confines a node's engine state to one goroutine (the simulator's
// event loop, a deployed node's worker); the endpoint lives on that same
// goroutine, including its timer callbacks.
package transport

import (
	"fmt"

	"repro/internal/types"
)

// Frame is one unit put on the unreliable wire. Seq 0 is a pure ack (no
// data); data frames carry Seq >= 1, assigned per (sender, peer) in send
// order. Ack is cumulative: the sender of the frame has delivered every
// data frame with sequence number < Ack from that peer up its own stack.
//
// Payload is opaque to the protocol: the simulator ships in-memory message
// structs, the deployment ships serialized bytes. Size is the payload's
// modelled wire size, excluding the HeaderBytes frame header.
type Frame struct {
	Seq     uint32
	Ack     uint32
	Payload any
	Size    int
}

// Config tunes one endpoint. The zero value selects the defaults.
type Config struct {
	// InitialRTO is the first retransmission timeout in nanoseconds
	// (default 50ms). Each unproductive retransmission doubles it up to
	// MaxRTO (default 800ms); any ack progress resets it.
	InitialRTO int64
	MaxRTO     int64

	// MaxRetries is the number of consecutive unacknowledged
	// retransmissions of the same frame after which the peer is declared
	// dead: its buffered frames are released, an error is surfaced, and
	// further sends to it are dropped — graceful degradation instead of an
	// unbounded stall. 0 means retry forever (the right setting when a
	// partition is known to heal).
	MaxRetries int

	// Window bounds the per-peer in-flight population: at most Window
	// unacked data frames are on the wire at once (further sends queue
	// locally in seq order), and the receive side buffers at most Window
	// out-of-order frames (beyond that they are dropped and recovered by
	// retransmission).
	Window int
}

// Defaults for Config's zero values.
const (
	DefaultInitialRTO = int64(50_000_000)  // 50 ms
	DefaultMaxRTO     = int64(800_000_000) // 800 ms
	DefaultWindow     = 64
)

func (c Config) withDefaults() Config {
	if c.InitialRTO <= 0 {
		c.InitialRTO = DefaultInitialRTO
	}
	if c.MaxRTO < c.InitialRTO {
		c.MaxRTO = DefaultMaxRTO
		if c.MaxRTO < c.InitialRTO {
			c.MaxRTO = c.InitialRTO
		}
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	return c
}

// Hooks connect an endpoint to its substrate. Send and Deliver are
// required; Release and PeerDead are optional.
type Hooks struct {
	// Send puts a frame on the unreliable wire toward a peer. The frame
	// struct is freshly allocated per transmission and never mutated after
	// the call, so the substrate may retain it (the simulator holds it in
	// its event queue).
	Send func(to types.NodeID, f *Frame)

	// Deliver hands an in-order, exactly-once payload up the stack. It may
	// reentrantly call Endpoint.Send (an engine cascade); such sends
	// piggyback the already-advanced cumulative ack.
	Deliver func(from types.NodeID, payload any, size int)

	// Schedule arranges for fn to run after delayNs nanoseconds, on the
	// same goroutine that drives the endpoint.
	Schedule func(delayNs int64, fn func())

	// Release, when set, is called exactly once per sent payload when the
	// endpoint is done with it — acked by the peer, or abandoned because
	// the peer was declared dead. Transports use it to recycle message
	// structs and to retire work accounting.
	Release func(payload any)

	// PeerDead, when set, is called when a peer exhausts MaxRetries. The
	// same error is also retained and returned by Err.
	PeerDead func(err error)
}

// Stats counts protocol events since the endpoint was created.
type Stats struct {
	DataSent    int64 // first transmissions of data frames
	Retransmits int64 // timer-driven retransmissions
	AcksSent    int64 // pure-ack frames (piggybacked acks are free)
	Delivered   int64 // payloads handed up exactly-once
	DupsDropped int64 // duplicate data frames discarded by the dedup window
	OooBuffered int64 // out-of-order frames parked until the gap fills
	OooDropped  int64 // out-of-order frames beyond the bounded buffer
	DeadDropped int64 // sends and pending frames abandoned on a dead peer
}

// PeerDeadError reports a peer that stopped acknowledging traffic.
type PeerDeadError struct {
	Self, Peer types.NodeID
	Retries    int
}

func (e *PeerDeadError) Error() string {
	return fmt.Sprintf("transport: node %s: peer %s dead after %d unacknowledged retransmissions",
		e.Self, e.Peer, e.Retries)
}

// Endpoint is one node's reliable-transport half: per-peer send and
// receive state over an unreliable datagram substrate.
type Endpoint struct {
	Stats Stats

	self     types.NodeID
	cfg      Config
	hooks    Hooks
	peers    map[types.NodeID]*peerState
	inflight int
	err      error
}

type pending struct {
	seq     uint32
	payload any
	size    int
}

type bufFrame struct {
	payload any
	size    int
}

type peerState struct {
	id      types.NodeID
	nextSeq uint32 // next sequence number to assign (first is 1)
	sendQ   []pending
	flightN int // leading sendQ entries transmitted at least once

	recvNext    uint32 // next expected data seq; all < recvNext delivered
	recvBuf     map[uint32]bufFrame
	lastAckSent uint32

	rto      int64
	retries  int
	timerGen uint64 // bumped to invalidate outstanding timer callbacks
	dead     bool
}

// New creates an endpoint for node self.
func New(self types.NodeID, cfg Config, hooks Hooks) *Endpoint {
	if hooks.Send == nil || hooks.Deliver == nil || hooks.Schedule == nil {
		panic("transport: Send, Deliver and Schedule hooks are required")
	}
	return &Endpoint{
		self:  self,
		cfg:   cfg.withDefaults(),
		hooks: hooks,
		peers: make(map[types.NodeID]*peerState),
	}
}

func (e *Endpoint) peer(id types.NodeID) *peerState {
	p := e.peers[id]
	if p == nil {
		p = &peerState{id: id, nextSeq: 1, recvNext: 1, rto: e.cfg.InitialRTO}
		e.peers[id] = p
	}
	return p
}

// Send queues one payload for reliable, in-order delivery at the peer. The
// payload belongs to the endpoint until its Release hook fires.
func (e *Endpoint) Send(to types.NodeID, payload any, size int) {
	p := e.peer(to)
	if p.dead {
		e.Stats.DeadDropped++
		e.release(payload)
		return
	}
	pd := pending{seq: p.nextSeq, payload: payload, size: size}
	p.nextSeq++
	p.sendQ = append(p.sendQ, pd)
	e.inflight++
	if p.flightN < e.cfg.Window {
		e.Stats.DataSent++
		e.transmit(p, pd)
		p.flightN++
	}
	if len(p.sendQ) == 1 {
		// Empty -> non-empty transition: start the retransmit timer. While
		// the queue stays non-empty exactly one live timer generation
		// exists (restarted on ack progress, re-armed after each fire).
		e.armTimer(p)
	}
}

// transmit puts one data frame on the wire, piggybacking the current
// cumulative ack for the peer.
func (e *Endpoint) transmit(p *peerState, pd pending) {
	p.lastAckSent = p.recvNext
	e.hooks.Send(p.id, &Frame{Seq: pd.seq, Ack: p.recvNext, Payload: pd.payload, Size: pd.size})
}

// OnFrame processes one frame received from the wire. Duplicates and
// stale retransmissions are absorbed here; the Deliver hook sees each
// payload exactly once, in send order per peer.
func (e *Endpoint) OnFrame(from types.NodeID, f *Frame) {
	p := e.peer(from)
	if p.dead {
		return
	}

	// Cumulative ack: retire every frame the peer has now delivered. A
	// forged or corrupt ack beyond what we ever sent is clamped.
	ack := f.Ack
	if ack > p.nextSeq {
		ack = p.nextSeq
	}
	advanced := false
	for len(p.sendQ) > 0 && p.sendQ[0].seq < ack {
		pd := p.sendQ[0]
		p.sendQ[0] = pending{}
		p.sendQ = p.sendQ[1:]
		if p.flightN > 0 {
			p.flightN--
		}
		e.inflight--
		e.release(pd.payload)
		advanced = true
	}
	if advanced {
		// Progress: reset the backoff and admit queued frames into the
		// freed window, then re-arm (or cancel) the retransmit timer.
		p.retries = 0
		p.rto = e.cfg.InitialRTO
		for p.flightN < e.cfg.Window && p.flightN < len(p.sendQ) {
			e.Stats.DataSent++
			e.transmit(p, p.sendQ[p.flightN])
			p.flightN++
		}
		e.armTimer(p)
	}

	if f.Seq == 0 {
		return // pure ack
	}
	switch {
	case f.Seq < p.recvNext:
		// Already delivered: our ack was lost or the frame was duplicated
		// in flight. Re-ack unconditionally so the sender stops resending.
		e.Stats.DupsDropped++
		e.sendAck(p, true)
	case f.Seq == p.recvNext:
		// In order: deliver, then drain any parked successors. recvNext
		// advances before each Deliver so reentrant sends piggyback the
		// up-to-date ack.
		p.recvNext++
		e.Stats.Delivered++
		e.hooks.Deliver(from, f.Payload, f.Size)
		for {
			nf, ok := p.recvBuf[p.recvNext]
			if !ok {
				break
			}
			delete(p.recvBuf, p.recvNext)
			p.recvNext++
			e.Stats.Delivered++
			e.hooks.Deliver(from, nf.payload, nf.size)
		}
		e.sendAck(p, false)
	default:
		// A gap: park the frame (bounded) and re-ack the hole so the
		// sender retransmits what is missing.
		if _, dup := p.recvBuf[f.Seq]; dup {
			e.Stats.DupsDropped++
		} else if len(p.recvBuf) >= e.cfg.Window {
			e.Stats.OooDropped++
		} else {
			if p.recvBuf == nil {
				p.recvBuf = make(map[uint32]bufFrame)
			}
			p.recvBuf[f.Seq] = bufFrame{payload: f.Payload, size: f.Size}
			e.Stats.OooBuffered++
		}
		e.sendAck(p, true)
	}
}

// sendAck emits a pure-ack frame unless the current cumulative ack already
// went out piggybacked on a data frame (force overrides the suppression —
// a duplicate or a gap means the peer may have missed an earlier ack).
func (e *Endpoint) sendAck(p *peerState, force bool) {
	if !force && p.lastAckSent == p.recvNext {
		return
	}
	p.lastAckSent = p.recvNext
	e.Stats.AcksSent++
	e.hooks.Send(p.id, &Frame{Seq: 0, Ack: p.recvNext})
}

// armTimer (re)schedules the retransmission timer. Bumping the generation
// invalidates any outstanding callback, so at most one timer is live per
// peer; stale callbacks return without effect. With an empty queue this is
// a pure cancel.
func (e *Endpoint) armTimer(p *peerState) {
	p.timerGen++
	if len(p.sendQ) == 0 || p.dead {
		return
	}
	gen := p.timerGen
	e.hooks.Schedule(p.rto, func() { e.onTimer(p, gen) })
}

func (e *Endpoint) onTimer(p *peerState, gen uint64) {
	if gen != p.timerGen || p.dead || len(p.sendQ) == 0 || p.flightN == 0 {
		return
	}
	p.retries++
	if e.cfg.MaxRetries > 0 && p.retries > e.cfg.MaxRetries {
		e.killPeer(p)
		return
	}
	e.Stats.Retransmits++
	e.transmit(p, p.sendQ[0])
	p.rto *= 2
	if p.rto > e.cfg.MaxRTO {
		p.rto = e.cfg.MaxRTO
	}
	e.armTimer(p)
}

// killPeer abandons a peer: buffered frames are released (so quiescence
// accounting can retire them), an error is recorded, and future sends are
// dropped. The engine state already derived from this peer is untouched —
// cleaning it up is the durability story of ROADMAP item 4.
func (e *Endpoint) killPeer(p *peerState) {
	p.dead = true
	p.timerGen++
	for i := range p.sendQ {
		e.Stats.DeadDropped++
		e.inflight--
		e.release(p.sendQ[i].payload)
		p.sendQ[i] = pending{}
	}
	p.sendQ = nil
	p.flightN = 0
	err := &PeerDeadError{Self: e.self, Peer: p.id, Retries: p.retries - 1}
	if e.err == nil {
		e.err = err
	}
	if e.hooks.PeerDead != nil {
		e.hooks.PeerDead(err)
	}
}

func (e *Endpoint) release(payload any) {
	if e.hooks.Release != nil {
		e.hooks.Release(payload)
	}
}

// InFlight reports the number of sent-but-unacked (or still queued)
// payloads across all peers. Drivers gate their global-quiescence points on
// this: a dropped deletion delta that will be retransmitted is still "in
// flight" for the retraction protocol even when no datagram is on the wire.
func (e *Endpoint) InFlight() int { return e.inflight }

// Err returns the first peer-death error, if any.
func (e *Endpoint) Err() error { return e.err }
