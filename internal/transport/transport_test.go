package transport

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/types"
)

// testNet is a two-endpoint scripted harness: a virtual clock, an event
// queue, and a fault hook deciding the fate of each transmission. It is
// the minimal stand-in for simnet that lets the protocol state machine be
// exercised against exact loss/duplication/reorder scripts.
type testNet struct {
	now    int64
	seq    int64
	events []testEv
	eps    map[types.NodeID]*Endpoint

	latency int64
	// fault, when set, returns (drop, duplicate, extraDelay) for one
	// transmission attempt.
	fault func(from, to types.NodeID, f *Frame) (bool, bool, int64)
}

type testEv struct {
	at  int64
	seq int64
	fn  func()
}

func newTestNet() *testNet {
	return &testNet{eps: map[types.NodeID]*Endpoint{}, latency: 1_000_000} // 1 ms
}

func (n *testNet) push(at int64, fn func()) {
	n.seq++
	n.events = append(n.events, testEv{at: at, seq: n.seq, fn: fn})
}

func (n *testNet) run() {
	for len(n.events) > 0 {
		best := 0
		for i := 1; i < len(n.events); i++ {
			e, b := n.events[i], n.events[best]
			if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
				best = i
			}
		}
		ev := n.events[best]
		n.events = append(n.events[:best], n.events[best+1:]...)
		if ev.at > n.now {
			n.now = ev.at
		}
		ev.fn()
	}
}

// endpoint creates an endpoint at id whose deliveries append to got.
func (n *testNet) endpoint(id types.NodeID, cfg Config, got *[]any, released *int) *Endpoint {
	hooks := Hooks{
		Send: func(to types.NodeID, f *Frame) {
			from := id
			drop, dup, extra := false, false, int64(0)
			if n.fault != nil {
				drop, dup, extra = n.fault(from, to, f)
			}
			deliver := func() {
				if ep := n.eps[to]; ep != nil {
					ep.OnFrame(from, f)
				}
			}
			if !drop {
				n.push(n.now+n.latency+extra, deliver)
			}
			if dup {
				n.push(n.now+n.latency+extra+10, deliver)
			}
		},
		Deliver: func(from types.NodeID, payload any, size int) {
			if got != nil {
				*got = append(*got, payload)
			}
		},
		Schedule: func(d int64, fn func()) { n.push(n.now+d, fn) },
	}
	if released != nil {
		hooks.Release = func(any) { *released++ }
	}
	ep := New(id, cfg, hooks)
	n.eps[id] = ep
	return ep
}

func TestInOrderExactlyOnceLossless(t *testing.T) {
	n := newTestNet()
	var got []any
	released := 0
	a := n.endpoint(0, Config{}, nil, &released)
	n.endpoint(1, Config{}, &got, nil)
	const N = 100
	for i := 0; i < N; i++ {
		a.Send(1, i, 10)
	}
	n.run()
	if len(got) != N {
		t.Fatalf("delivered %d payloads, want %d", len(got), N)
	}
	for i, p := range got {
		if p.(int) != i {
			t.Fatalf("payload %d = %v, out of order", i, p)
		}
	}
	if a.InFlight() != 0 {
		t.Errorf("inflight = %d after full ack, want 0", a.InFlight())
	}
	if released != N {
		t.Errorf("released %d payloads, want %d", released, N)
	}
	if a.Stats.Retransmits != 0 {
		t.Errorf("lossless run retransmitted %d frames", a.Stats.Retransmits)
	}
}

func TestLossRecoveredByBackoff(t *testing.T) {
	n := newTestNet()
	var got []any
	drops := 0
	// Drop the first three transmissions of data seq 1.
	n.fault = func(from, to types.NodeID, f *Frame) (bool, bool, int64) {
		if f.Seq == 1 && drops < 3 {
			drops++
			return true, false, 0
		}
		return false, false, 0
	}
	cfg := Config{InitialRTO: 10_000_000, MaxRTO: 40_000_000}
	a := n.endpoint(0, cfg, nil, nil)
	n.endpoint(1, cfg, &got, nil)
	a.Send(1, "x", 5)
	n.run()
	if len(got) != 1 || got[0] != "x" {
		t.Fatalf("got %v, want exactly one delivery", got)
	}
	if a.Stats.Retransmits != 3 {
		t.Errorf("retransmits = %d, want 3", a.Stats.Retransmits)
	}
	// Backoff: attempts at 0, 10, 30 (10+20), 70 (…+40 capped) ms.
	if wantMin := int64(70_000_000); n.now < wantMin {
		t.Errorf("converged at t=%d, before the backoff schedule could fire (want >= %d)", n.now, wantMin)
	}
	if a.InFlight() != 0 {
		t.Errorf("inflight = %d, want 0", a.InFlight())
	}
}

// TestChaosTransportExactlyOnce drives seeded random loss, duplication and
// reorder (latency jitter) and checks the receiver still sees every
// payload exactly once, in order — the unit-level version of the drivers'
// chaos equivalence fences.
func TestChaosTransportExactlyOnce(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		rng := rand.New(rand.NewSource(seed))
		n := newTestNet()
		n.fault = func(from, to types.NodeID, f *Frame) (bool, bool, int64) {
			return rng.Float64() < 0.2, rng.Float64() < 0.15, int64(rng.Intn(5_000_000))
		}
		var got []any
		cfg := Config{InitialRTO: 5_000_000, MaxRTO: 20_000_000, Window: 8}
		a := n.endpoint(0, cfg, nil, nil)
		b := n.endpoint(1, cfg, &got, nil)
		const N = 200
		for i := 0; i < N; i++ {
			a.Send(1, i, 4)
		}
		n.run()
		if len(got) != N {
			t.Fatalf("seed %d: delivered %d payloads, want %d", seed, len(got), N)
		}
		for i, p := range got {
			if p.(int) != i {
				t.Fatalf("seed %d: delivery %d = %v, out of order", seed, i, p)
			}
		}
		if a.InFlight() != 0 || a.Err() != nil {
			t.Fatalf("seed %d: inflight=%d err=%v", seed, a.InFlight(), a.Err())
		}
		if b.Stats.DupsDropped == 0 && b.Stats.OooBuffered == 0 {
			t.Errorf("seed %d: chaos run exercised no dedup or reorder path", seed)
		}
	}
}

func TestWindowBoundsInFlightFrames(t *testing.T) {
	n := newTestNet()
	var got []any
	cfg := Config{Window: 4}
	a := n.endpoint(0, cfg, nil, nil)
	n.endpoint(1, cfg, &got, nil)
	for i := 0; i < 20; i++ {
		a.Send(1, i, 1)
	}
	// All 20 sends happen at t=0 with no acks yet: only Window frames may
	// have been transmitted; the rest queue locally in seq order.
	if a.Stats.DataSent != 4 {
		t.Fatalf("transmitted %d frames before any ack, want window=4", a.Stats.DataSent)
	}
	if a.InFlight() != 20 {
		t.Fatalf("inflight = %d (queued sends count until acked), want 20", a.InFlight())
	}
	n.run()
	if len(got) != 20 {
		t.Fatalf("delivered %d, want 20", len(got))
	}
	for i := range got {
		if got[i].(int) != i {
			t.Fatalf("delivery %d = %v, out of order", i, got[i])
		}
	}
	if a.InFlight() != 0 {
		t.Errorf("inflight = %d after drain, want 0", a.InFlight())
	}
}

func TestPeerDeadSurfacesErrorAndReleases(t *testing.T) {
	n := newTestNet()
	n.fault = func(types.NodeID, types.NodeID, *Frame) (bool, bool, int64) { return true, false, 0 }
	released := 0
	var deadErr error
	cfg := Config{InitialRTO: 1_000_000, MaxRTO: 2_000_000, MaxRetries: 3}
	a := n.endpoint(0, cfg, nil, &released)
	a.hooks.PeerDead = func(err error) { deadErr = err }
	n.endpoint(1, cfg, nil, nil)
	a.Send(1, "doomed", 6)
	a.Send(1, "also doomed", 11)
	n.run()
	var pde *PeerDeadError
	if !errors.As(a.Err(), &pde) {
		t.Fatalf("Err() = %v, want *PeerDeadError", a.Err())
	}
	if deadErr == nil {
		t.Error("PeerDead hook not invoked")
	}
	if pde.Peer != 1 || pde.Retries != 3 {
		t.Errorf("error = %+v, want peer 1 after 3 retries", pde)
	}
	if released != 2 {
		t.Errorf("released %d payloads on death, want 2", released)
	}
	if a.InFlight() != 0 {
		t.Errorf("inflight = %d after peer death, want 0", a.InFlight())
	}
	// Further sends to the dead peer are dropped, not queued.
	a.Send(1, "late", 4)
	if a.InFlight() != 0 || released != 3 {
		t.Errorf("send to dead peer queued (inflight=%d released=%d)", a.InFlight(), released)
	}
}

// TestLostAcksRecovered drops every pure-ack frame the receiver sends
// back; the sender keeps retransmitting, the receiver keeps deduping, and
// retirement eventually rides the piggybacked ack on reverse traffic.
// (Only the b->a direction is lossy: a conversation whose every pure ack
// dies in both directions has no quiescent state to converge to.)
func TestLostAcksRecovered(t *testing.T) {
	n := newTestNet()
	n.fault = func(from, to types.NodeID, f *Frame) (bool, bool, int64) {
		return f.Seq == 0 && from == 1, false, 0 // kill b's pure acks only
	}
	var gotA, gotB []any
	cfg := Config{InitialRTO: 2_000_000, MaxRTO: 8_000_000}
	a := n.endpoint(0, cfg, &gotA, nil)
	b := n.endpoint(1, cfg, &gotB, nil)
	a.Send(1, "ping", 4)
	// Reverse traffic gives the piggybacked ack a ride.
	n.push(5_000_000, func() { b.Send(0, "pong", 4) })
	n.run()
	if len(gotB) != 1 || len(gotA) != 1 {
		t.Fatalf("gotA=%v gotB=%v, want one delivery each", gotA, gotB)
	}
	if a.InFlight() != 0 || b.InFlight() != 0 {
		t.Errorf("inflight a=%d b=%d, want 0/0", a.InFlight(), b.InFlight())
	}
	if b.Stats.DupsDropped == 0 {
		t.Error("receiver never saw the retransmitted duplicate")
	}
}

func TestOutOfOrderBufferBounded(t *testing.T) {
	n := newTestNet()
	// Drop seq 1 once so everything behind it goes out of order.
	dropped := false
	n.fault = func(from, to types.NodeID, f *Frame) (bool, bool, int64) {
		if f.Seq == 1 && !dropped {
			dropped = true
			return true, false, 0
		}
		return false, false, 0
	}
	var got []any
	cfg := Config{InitialRTO: 50_000_000, Window: 4}
	a := n.endpoint(0, cfg, nil, nil)
	n.endpoint(1, cfg, &got, nil)
	for i := 0; i < 12; i++ {
		a.Send(1, i, 1)
	}
	n.run()
	if len(got) != 12 {
		t.Fatalf("delivered %d, want 12", len(got))
	}
	for i := range got {
		if got[i].(int) != i {
			t.Fatalf("delivery %d = %v, out of order", i, got[i])
		}
	}
	b := n.eps[1]
	if b.Stats.OooBuffered == 0 {
		t.Error("no out-of-order frame was buffered")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	for _, c := range []struct{ seq, ack uint32 }{{0, 0}, {0, 77}, {1, 0}, {12345, 67890}, {^uint32(0), ^uint32(0)}} {
		h := EncodeHeader(nil, c.seq, c.ack)
		if len(h) != HeaderBytes {
			t.Fatalf("header length %d, want %d", len(h), HeaderBytes)
		}
		seq, ack, err := DecodeHeader(h)
		if err != nil || seq != c.seq || ack != c.ack {
			t.Fatalf("round trip (%d,%d) -> (%d,%d,%v)", c.seq, c.ack, seq, ack, err)
		}
	}
}

func TestHeaderRejectsInconsistentFlags(t *testing.T) {
	// Data flag set with seq 0.
	h := EncodeHeader(nil, 0, 9)
	h[0] = flagData
	if _, _, err := DecodeHeader(h); err == nil {
		t.Error("data flag with seq 0 accepted")
	}
	// Data flag clear with seq != 0.
	h = EncodeHeader(nil, 5, 9)
	h[0] = 0
	if _, _, err := DecodeHeader(h); err == nil {
		t.Error("clear flag with non-zero seq accepted")
	}
	// Unknown flag bits.
	h = EncodeHeader(nil, 5, 9)
	h[0] |= 0x80
	if _, _, err := DecodeHeader(h); err == nil {
		t.Error("unknown flag bit accepted")
	}
	if _, _, err := DecodeHeader([]byte{1, 2, 3}); err == nil {
		t.Error("short header accepted")
	}
}

// FuzzDecodeFrameHeader pins decode strictness: any accepted header must
// re-encode to the same bytes (the frame header is part of the normative
// wire format, docs/wire-format.md).
func FuzzDecodeFrameHeader(f *testing.F) {
	f.Add(EncodeHeader(nil, 0, 0))
	f.Add(EncodeHeader(nil, 1, 0))
	f.Add(EncodeHeader(nil, 7, 1234))
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		seq, ack, err := DecodeHeader(b)
		if err != nil {
			return
		}
		re := EncodeHeader(nil, seq, ack)
		if !bytes.Equal(re, b[:HeaderBytes]) {
			t.Fatalf("decode(%x) -> (%d,%d) re-encodes to %x", b[:HeaderBytes], seq, ack, re)
		}
	})
}
