package transport

import (
	"encoding/binary"
	"errors"
)

// The serialized frame header prepended to every reliable datagram (and
// charged, unserialized, to every simulated frame) — normative layout in
// docs/wire-format.md "Reliable frame header":
//
//	byte  0      flags (bit 0: data frame; all other bits must be zero)
//	bytes 1..4   seq, big-endian uint32 (0 for pure acks)
//	bytes 5..8   ack, big-endian uint32 (cumulative: all seqs < ack received)

// HeaderBytes is the serialized frame-header size.
const HeaderBytes = 9

const flagData = 1 << 0

var errBadHeader = errors.New("transport: malformed frame header")

// EncodeHeader appends the 9-byte frame header for (seq, ack) to dst.
func EncodeHeader(dst []byte, seq, ack uint32) []byte {
	var flags byte
	if seq != 0 {
		flags = flagData
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, ack)
	return dst
}

// DecodeHeader parses a frame header. The flags byte must be consistent
// with the sequence number (data flag set iff seq != 0) and carry no
// unknown bits, so a corrupt or hostile datagram cannot smuggle state into
// the ack/retransmit machine.
func DecodeHeader(b []byte) (seq, ack uint32, err error) {
	if len(b) < HeaderBytes {
		return 0, 0, errBadHeader
	}
	flags := b[0]
	if flags&^byte(flagData) != 0 {
		return 0, 0, errBadHeader
	}
	seq = binary.BigEndian.Uint32(b[1:5])
	ack = binary.BigEndian.Uint32(b[5:9])
	if (flags&flagData != 0) != (seq != 0) {
		return 0, 0, errBadHeader
	}
	return seq, ack, nil
}
