// This file implements one partition of a node's provenance store: the row
// maps, their arenas, and every read/write method. The Store facade
// (store.go) owns one Partition per engine worker shard so concurrent shards
// mutate disjoint map sets; with a single partition the layout and behavior
// are exactly those of the pre-sharding store.
//
// Rows are stored by value inside their per-VID slices: the store sits on
// the engine's delta hot path, and per-row pointer boxes more than doubled
// the evaluator's allocation count in fixpoint profiles.
//
// Maps are keyed by interned ID handles (types.IDHandle), not by the
// 20-byte digests themselves: map operations hash and compare 4 bytes, and
// the (vid, rid) reverse-edge index keys 8 bytes instead of 40. The engine
// caches handles on its relation entries and calls the *H methods directly;
// the ID-based methods intern (write paths) or look up without interning
// (read paths, so probing an unknown VID cannot grow the intern table) and
// delegate. Row values keep full IDs — handles are process-local and never
// travel in query replies or on the wire.
package provenance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// ProvEntry is one row of the prov relation: a direct derivation of the
// tuple identified by VID via the rule execution RID at RLoc. Base tuples
// carry the null RID. Count tracks duplicate derivations under incremental
// maintenance; an entry is visible while Count > 0.
type ProvEntry struct {
	VID   types.ID
	RID   types.ID
	RLoc  types.NodeID
	Count int
}

// RuleExecEntry is one row of the ruleExec relation: the metadata of a rule
// execution instance.
type RuleExecEntry struct {
	RID     types.ID
	Rule    string
	VIDList []types.ID
	Count   int
}

// Parent is a reverse dataflow edge: the local tuple was consumed by rule
// execution RID (local, since rule bodies are localized), deriving the head
// tuple HeadVID stored at HeadLoc.
type Parent struct {
	RID     types.ID
	HeadVID types.ID
	HeadLoc types.NodeID
	Count   int
}

// parentKey identifies one reverse dataflow edge for O(1) add/remove. The
// RID alone determines the derived head (an RID hashes the rule, its
// location and its exact inputs), so (vid, rid) is unique per edge. Hub
// tuples (e.g. a link consumed by every route derivation) accumulate long
// parent lists, and the linear scans previously done by AddParent dominated
// fixpoint profiles. Interned handles shrink the key from 40 bytes to 8.
type parentKey struct {
	vidh types.IDHandle
	ridh types.IDHandle
}

// Partition is one horizontal slice of a node's provenance store. Under the
// sharded engine runtime each worker shard owns one partition and is the only
// writer to it during parallel phases; the Store facade fans reads out across
// partitions. A single-partition store is exactly the pre-sharding layout.
//
// Reverse dataflow edges (parents) are installed lazily by the query
// processor when it caches a traversal level — §6.1 invalidation is their
// only consumer, so their maintenance cost is paid per cached query, never
// per derivation on the engine's hot path.
type Partition struct {
	Node  types.NodeID
	owner *Store // change notifications route through the facade

	prov      map[types.IDHandle][]ProvEntry
	ruleExec  map[types.IDHandle]RuleExecEntry
	tuples    map[types.IDHandle]types.Tuple
	parents   map[types.IDHandle][]Parent
	parentIdx map[parentKey]int // position inside parents[vidh]

	// Chunked arenas for the first element of per-VID row slices and for
	// ruleExec input lists. Most VIDs have exactly one prov row and one
	// parent edge, so the per-VID "first append" allocations dominated the
	// store's profile; carving capacity-1 slices from a chunk amortizes
	// them to ~1/chunk. Longer lists spill to regular append growth.
	provArena   []ProvEntry
	parentArena []Parent
	vidArena    []types.ID

	// pending buffers change notifications while the owning Store defers
	// them (parallel engine phases); FlushDeferred replays and clears it.
	pending []types.ID
}

func newPartition(owner *Store) *Partition {
	return &Partition{
		Node:      owner.Node,
		owner:     owner,
		prov:      make(map[types.IDHandle][]ProvEntry),
		ruleExec:  make(map[types.IDHandle]RuleExecEntry),
		tuples:    make(map[types.IDHandle]types.Tuple),
		parents:   make(map[types.IDHandle][]Parent),
		parentIdx: make(map[parentKey]int),
	}
}

const storeArenaChunk = 256

func (s *Partition) allocProv1() []ProvEntry {
	if len(s.provArena) == cap(s.provArena) {
		s.provArena = make([]ProvEntry, 0, storeArenaChunk)
	}
	n := len(s.provArena)
	s.provArena = s.provArena[:n+1]
	return s.provArena[n : n : n+1]
}

func (s *Partition) allocParent1() []Parent {
	if len(s.parentArena) == cap(s.parentArena) {
		s.parentArena = make([]Parent, 0, storeArenaChunk)
	}
	n := len(s.parentArena)
	s.parentArena = s.parentArena[:n+1]
	return s.parentArena[n : n : n+1]
}

// allocVIDs carves a copy of vidList from the chunked ID arena.
func (s *Partition) allocVIDs(vidList []types.ID) []types.ID {
	k := len(vidList)
	if k == 0 {
		return nil
	}
	if len(s.vidArena)+k > cap(s.vidArena) {
		size := storeArenaChunk
		if k > size {
			size = k
		}
		s.vidArena = make([]types.ID, 0, size)
	}
	n := len(s.vidArena)
	s.vidArena = s.vidArena[:n+k]
	cp := s.vidArena[n : n+k : n+k]
	copy(cp, vidList)
	return cp
}

// RegisterTuple records the VID→tuple mapping for a local tuple.
func (s *Partition) RegisterTuple(t types.Tuple) types.ID {
	vid := t.VID()
	s.RegisterTupleVIDH(types.InternID(vid), t)
	return vid
}

// RegisterTupleVID records the VID→tuple mapping for a tuple whose VID the
// caller has already computed.
func (s *Partition) RegisterTupleVID(vid types.ID, t types.Tuple) {
	s.RegisterTupleVIDH(types.InternID(vid), t)
}

// RegisterTupleVIDH is RegisterTupleVID for a caller that holds the interned
// handle (the engine caches one per relation entry), avoiding the 20-byte
// dedup-map lookup on the hot path.
func (s *Partition) RegisterTupleVIDH(vidh types.IDHandle, t types.Tuple) {
	if _, ok := s.tuples[vidh]; !ok {
		s.tuples[vidh] = t
	}
}

// resolveTuple resolves a VID to its tuple through the owning store (which
// searches every partition), falling back to this partition alone.
func (s *Partition) resolveTuple(vid types.ID) (types.Tuple, bool) {
	if s.owner != nil {
		return s.owner.TupleOf(vid)
	}
	return s.TupleOf(vid)
}

// TupleOf resolves a local VID to its tuple.
func (s *Partition) TupleOf(vid types.ID) (types.Tuple, bool) {
	h, ok := types.LookupID(vid)
	if !ok {
		return types.Tuple{}, false
	}
	t, ok := s.tuples[h]
	return t, ok
}

// AddProv inserts (or increments) a prov entry.
func (s *Partition) AddProv(vid, rid types.ID, rloc types.NodeID) {
	s.AddProvH(types.InternID(vid), rid, rloc)
}

// AddProvH is AddProv keyed by the caller's interned VID handle.
func (s *Partition) AddProvH(vidh types.IDHandle, rid types.ID, rloc types.NodeID) {
	entries := s.prov[vidh]
	for i := range entries {
		if entries[i].RID == rid && entries[i].RLoc == rloc {
			entries[i].Count++
			s.changed(entries[i].VID)
			return
		}
	}
	if entries == nil {
		entries = s.allocProv1()
	}
	vid := vidh.ID()
	s.prov[vidh] = append(entries, ProvEntry{VID: vid, RID: rid, RLoc: rloc, Count: 1})
	s.changed(vid)
}

// DelProv decrements (and possibly removes) a prov entry; it reports
// whether the entry existed.
func (s *Partition) DelProv(vid, rid types.ID, rloc types.NodeID) bool {
	h, ok := types.LookupID(vid)
	if !ok {
		return false
	}
	return s.DelProvH(h, rid, rloc)
}

// DelProvH is DelProv keyed by the caller's interned VID handle.
func (s *Partition) DelProvH(vidh types.IDHandle, rid types.ID, rloc types.NodeID) bool {
	entries := s.prov[vidh]
	for i := range entries {
		if entries[i].RID == rid && entries[i].RLoc == rloc {
			vid := entries[i].VID
			entries[i].Count--
			if entries[i].Count <= 0 {
				s.prov[vidh] = append(entries[:i], entries[i+1:]...)
				if len(s.prov[vidh]) == 0 {
					delete(s.prov, vidh)
					delete(s.tuples, vidh)
				}
			}
			s.changed(vid)
			return true
		}
	}
	return false
}

// changed routes a derivation-set change notification through the owning
// facade. While the facade is deferring (a parallel engine phase is running),
// the VID is buffered locally — each partition has exactly one writer, so the
// buffers need no locks — and replayed in partition order by FlushDeferred.
func (s *Partition) changed(vid types.ID) {
	st := s.owner
	if st == nil || st.OnProvChange == nil {
		return
	}
	if st.deferring {
		s.pending = append(s.pending, vid)
		return
	}
	st.OnProvChange(vid)
}

// Derivations returns the visible prov entries for a VID. Callers must not
// mutate the returned slice.
func (s *Partition) Derivations(vid types.ID) []ProvEntry {
	h, ok := types.LookupID(vid)
	if !ok {
		return nil
	}
	return s.prov[h]
}

// AddRuleExec inserts (or increments) a ruleExec entry. vidList may be
// caller scratch; it is copied when a new entry is created.
func (s *Partition) AddRuleExec(rid types.ID, rule string, vidList []types.ID) {
	s.AddRuleExecH(types.InternID(rid), rid, rule, vidList)
}

// AddRuleExecH is AddRuleExec keyed by the caller's interned RID handle (the
// engine's RID cache hands them out).
func (s *Partition) AddRuleExecH(ridh types.IDHandle, rid types.ID, rule string, vidList []types.ID) {
	if e, ok := s.ruleExec[ridh]; ok {
		e.Count++
		s.ruleExec[ridh] = e
		return
	}
	s.ruleExec[ridh] = RuleExecEntry{RID: rid, Rule: rule, VIDList: s.allocVIDs(vidList), Count: 1}
}

// DelRuleExec decrements (and possibly removes) a ruleExec entry.
func (s *Partition) DelRuleExec(rid types.ID) bool {
	h, ok := types.LookupID(rid)
	if !ok {
		return false
	}
	return s.DelRuleExecH(h)
}

// DelRuleExecH is DelRuleExec keyed by the caller's interned RID handle.
func (s *Partition) DelRuleExecH(ridh types.IDHandle) bool {
	e, ok := s.ruleExec[ridh]
	if !ok {
		return false
	}
	e.Count--
	if e.Count <= 0 {
		delete(s.ruleExec, ridh)
	} else {
		s.ruleExec[ridh] = e
	}
	return true
}

// RuleExecOf resolves a local RID.
func (s *Partition) RuleExecOf(rid types.ID) (RuleExecEntry, bool) {
	h, ok := types.LookupID(rid)
	if !ok {
		return RuleExecEntry{}, false
	}
	e, ok := s.ruleExec[h]
	return e, ok
}

// ForEachRuleExec invokes fn for every visible ruleExec entry (iteration
// order is unspecified).
func (s *Partition) ForEachRuleExec(fn func(RuleExecEntry)) {
	for _, e := range s.ruleExec {
		fn(e)
	}
}

// AddParent records that local tuple vid was consumed by rule execution rid
// deriving headVID at headLoc. This is a write path driven by the query
// processor's cache installation, so both IDs are interned.
func (s *Partition) AddParent(vid, rid, headVID types.ID, headLoc types.NodeID) {
	vidh := types.InternID(vid)
	k := parentKey{vidh: vidh, ridh: types.InternID(rid)}
	list := s.parents[vidh]
	if pos, ok := s.parentIdx[k]; ok {
		list[pos].Count++
		return
	}
	s.parentIdx[k] = len(list)
	if list == nil {
		list = s.allocParent1()
	}
	s.parents[vidh] = append(list, Parent{RID: rid, HeadVID: headVID, HeadLoc: headLoc, Count: 1})
}

// DelParent removes one reverse edge occurrence.
func (s *Partition) DelParent(vid, rid, headVID types.ID, headLoc types.NodeID) {
	vidh, ok := types.LookupID(vid)
	if !ok {
		return
	}
	ridh, ok := types.LookupID(rid)
	if !ok {
		return
	}
	k := parentKey{vidh: vidh, ridh: ridh}
	pos, ok := s.parentIdx[k]
	if !ok {
		return
	}
	list := s.parents[vidh]
	list[pos].Count--
	if list[pos].Count > 0 {
		return
	}
	delete(s.parentIdx, k)
	last := len(list) - 1
	if pos != last {
		list[pos] = list[last]
		movedRidh, _ := types.LookupID(list[pos].RID)
		s.parentIdx[parentKey{vidh: vidh, ridh: movedRidh}] = pos
	}
	list[last] = Parent{}
	list = list[:last]
	if len(list) == 0 {
		delete(s.parents, vidh)
	} else {
		s.parents[vidh] = list
	}
}

// Parents returns the reverse dataflow edges of a local VID. Callers must
// not mutate the returned slice.
func (s *Partition) Parents(vid types.ID) []Parent {
	h, ok := types.LookupID(vid)
	if !ok {
		return nil
	}
	return s.parents[h]
}

// DropParents removes every reverse edge of a VID (an invalidation wave
// consumed them). A slice previously returned by Parents stays readable.
func (s *Partition) DropParents(vid types.ID) {
	vidh, ok := types.LookupID(vid)
	if !ok {
		return
	}
	list, ok := s.parents[vidh]
	if !ok {
		return
	}
	for i := range list {
		if ridh, ok := types.LookupID(list[i].RID); ok {
			delete(s.parentIdx, parentKey{vidh: vidh, ridh: ridh})
		}
	}
	delete(s.parents, vidh)
}

// NumProv reports the number of visible prov entries in the partition.
func (s *Partition) NumProv() int {
	n := 0
	for _, list := range s.prov {
		n += len(list)
	}
	return n
}

// NumRuleExec reports the number of visible ruleExec entries.
func (s *Partition) NumRuleExec() int { return len(s.ruleExec) }

// NumParents reports the number of reverse dataflow edges.
func (s *Partition) NumParents() int { return len(s.parentIdx) }

// ProvRows renders the partition's prov relation as sorted printable rows
// (Loc, tuple, RID short, RLoc) — the format of the paper's Table 1.
func (s *Partition) ProvRows() []string {
	var rows []string
	for vidh, list := range s.prov {
		label := ""
		if t, ok := s.tuples[vidh]; ok {
			label = t.String()
		}
		for i := range list {
			if label == "" {
				label = list[i].VID.Short()
			}
			rid := "null"
			rloc := list[i].RLoc.String()
			if !list[i].RID.IsZero() {
				rid = list[i].RID.Short()
			}
			rows = append(rows, fmt.Sprintf("%s | %s | %s | %s", s.Node, label, rid, rloc))
		}
	}
	sort.Strings(rows)
	return rows
}

// RuleExecRows renders the partition's ruleExec relation as sorted rows
// (RLoc, RID short, rule, VIDList shorts) — the format of Table 2.
func (s *Partition) RuleExecRows() []string {
	var rows []string
	for _, e := range s.ruleExec {
		vids := make([]string, len(e.VIDList))
		for i, v := range e.VIDList {
			vids[i] = v.Short()
			// Input tuples may live in sibling partitions (a sharded rule
			// firing stores its row at the RID's home partition); resolve
			// through the owning facade.
			if t, ok := s.resolveTuple(v); ok {
				vids[i] = t.String()
			}
		}
		rows = append(rows, fmt.Sprintf("%s | %s | %s | (%s)", s.Node, e.RID.Short(), e.Rule, strings.Join(vids, ",")))
	}
	sort.Strings(rows)
	return rows
}
