package provenance

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func tid(s string) types.ID { return types.HashString(s) }

func TestProvEntryLifecycle(t *testing.T) {
	s := NewStore(0)
	tu := types.NewTuple("p", types.Node(0), types.Int(1))
	vid := s.RegisterTuple(tu)
	if vid != tu.VID() {
		t.Fatal("RegisterTuple returns wrong VID")
	}
	s.AddProv(vid, tid("r1"), 2)
	s.AddProv(vid, tid("r2"), 3)
	if len(s.Derivations(vid)) != 2 {
		t.Fatalf("derivations = %d", len(s.Derivations(vid)))
	}
	// Duplicate insert increments the count, not the row set.
	s.AddProv(vid, tid("r1"), 2)
	if len(s.Derivations(vid)) != 2 {
		t.Fatal("duplicate created new row")
	}
	if !s.DelProv(vid, tid("r1"), 2) {
		t.Fatal("DelProv failed")
	}
	if len(s.Derivations(vid)) != 2 {
		t.Fatal("row removed while count > 0")
	}
	s.DelProv(vid, tid("r1"), 2)
	if len(s.Derivations(vid)) != 1 {
		t.Fatal("row not removed at count 0")
	}
	s.DelProv(vid, tid("r2"), 3)
	if len(s.Derivations(vid)) != 0 {
		t.Fatal("store not empty")
	}
	if _, ok := s.TupleOf(vid); ok {
		t.Fatal("tuple mapping survived last derivation")
	}
	if s.DelProv(vid, tid("r2"), 3) {
		t.Fatal("deleting a missing entry reported success")
	}
}

func TestOnProvChangeFires(t *testing.T) {
	s := NewStore(0)
	var events []types.ID
	s.OnProvChange = func(vid types.ID) { events = append(events, vid) }
	vid := tid("v")
	s.AddProv(vid, types.ZeroID, 0)
	s.DelProv(vid, types.ZeroID, 0)
	if len(events) != 2 || events[0] != vid || events[1] != vid {
		t.Fatalf("events = %v", events)
	}
}

func TestRuleExecLifecycle(t *testing.T) {
	s := NewStore(1)
	rid := tid("exec")
	inputs := []types.ID{tid("a"), tid("b")}
	s.AddRuleExec(rid, "sp2", inputs)
	re, ok := s.RuleExecOf(rid)
	if !ok || re.Rule != "sp2" || len(re.VIDList) != 2 {
		t.Fatalf("entry = %+v", re)
	}
	// The stored list is a copy: mutating the caller's slice is safe.
	inputs[0] = tid("mutated")
	re, _ = s.RuleExecOf(rid)
	if re.VIDList[0] != tid("a") {
		t.Fatal("VIDList aliased caller slice")
	}
	s.AddRuleExec(rid, "sp2", re.VIDList)
	s.DelRuleExec(rid)
	if _, ok := s.RuleExecOf(rid); !ok {
		t.Fatal("entry removed while count > 0")
	}
	s.DelRuleExec(rid)
	if _, ok := s.RuleExecOf(rid); ok {
		t.Fatal("entry survived count 0")
	}
	if s.DelRuleExec(rid) {
		t.Fatal("deleting missing entry succeeded")
	}
}

func TestParentEdges(t *testing.T) {
	s := NewStore(2)
	in, rid, head := tid("in"), tid("rid"), tid("head")
	s.AddParent(in, rid, head, 5)
	s.AddParent(in, rid, head, 5) // duplicate: count only
	if len(s.Parents(in)) != 1 {
		t.Fatal("duplicate parent row")
	}
	s.DelParent(in, rid, head, 5)
	if len(s.Parents(in)) != 1 {
		t.Fatal("parent removed while count > 0")
	}
	s.DelParent(in, rid, head, 5)
	if len(s.Parents(in)) != 0 {
		t.Fatal("parent survived")
	}
}

func TestRowRendering(t *testing.T) {
	s := NewStore(0)
	tu := types.NewTuple("link", types.Node(0), types.Node(2), types.Int(5))
	vid := s.RegisterTuple(tu)
	s.AddProv(vid, types.ZeroID, 0)
	rows := s.ProvRows()
	if len(rows) != 1 || !strings.Contains(rows[0], "link(@a,c,5)") || !strings.Contains(rows[0], "null") {
		t.Fatalf("prov rows = %v", rows)
	}
	rid := tid("exec")
	s.AddRuleExec(rid, "sp1", []types.ID{vid})
	rer := s.RuleExecRows()
	if len(rer) != 1 || !strings.Contains(rer[0], "sp1") || !strings.Contains(rer[0], "link(@a,c,5)") {
		t.Fatalf("ruleExec rows = %v", rer)
	}
	if s.NumProv() != 1 || s.NumRuleExec() != 1 {
		t.Fatal("counters wrong")
	}
}
