package provenance

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func tid(s string) types.ID { return types.HashString(s) }

func TestProvEntryLifecycle(t *testing.T) {
	s := NewStore(0)
	tu := types.NewTuple("p", types.Node(0), types.Int(1))
	vid := s.RegisterTuple(tu)
	if vid != tu.VID() {
		t.Fatal("RegisterTuple returns wrong VID")
	}
	s.AddProv(vid, tid("r1"), 2)
	s.AddProv(vid, tid("r2"), 3)
	if len(s.Derivations(vid)) != 2 {
		t.Fatalf("derivations = %d", len(s.Derivations(vid)))
	}
	// Duplicate insert increments the count, not the row set.
	s.AddProv(vid, tid("r1"), 2)
	if len(s.Derivations(vid)) != 2 {
		t.Fatal("duplicate created new row")
	}
	if !s.DelProv(vid, tid("r1"), 2) {
		t.Fatal("DelProv failed")
	}
	if len(s.Derivations(vid)) != 2 {
		t.Fatal("row removed while count > 0")
	}
	s.DelProv(vid, tid("r1"), 2)
	if len(s.Derivations(vid)) != 1 {
		t.Fatal("row not removed at count 0")
	}
	s.DelProv(vid, tid("r2"), 3)
	if len(s.Derivations(vid)) != 0 {
		t.Fatal("store not empty")
	}
	if _, ok := s.TupleOf(vid); ok {
		t.Fatal("tuple mapping survived last derivation")
	}
	if s.DelProv(vid, tid("r2"), 3) {
		t.Fatal("deleting a missing entry reported success")
	}
}

func TestOnProvChangeFires(t *testing.T) {
	s := NewStore(0)
	var events []types.ID
	s.OnProvChange = func(vid types.ID) { events = append(events, vid) }
	vid := tid("v")
	s.AddProv(vid, types.ZeroID, 0)
	s.DelProv(vid, types.ZeroID, 0)
	if len(events) != 2 || events[0] != vid || events[1] != vid {
		t.Fatalf("events = %v", events)
	}
}

func TestRuleExecLifecycle(t *testing.T) {
	s := NewStore(1)
	rid := tid("exec")
	inputs := []types.ID{tid("a"), tid("b")}
	s.AddRuleExec(rid, "sp2", inputs)
	re, ok := s.RuleExecOf(rid)
	if !ok || re.Rule != "sp2" || len(re.VIDList) != 2 {
		t.Fatalf("entry = %+v", re)
	}
	// The stored list is a copy: mutating the caller's slice is safe.
	inputs[0] = tid("mutated")
	re, _ = s.RuleExecOf(rid)
	if re.VIDList[0] != tid("a") {
		t.Fatal("VIDList aliased caller slice")
	}
	s.AddRuleExec(rid, "sp2", re.VIDList)
	s.DelRuleExec(rid)
	if _, ok := s.RuleExecOf(rid); !ok {
		t.Fatal("entry removed while count > 0")
	}
	s.DelRuleExec(rid)
	if _, ok := s.RuleExecOf(rid); ok {
		t.Fatal("entry survived count 0")
	}
	if s.DelRuleExec(rid) {
		t.Fatal("deleting missing entry succeeded")
	}
}

func TestParentEdges(t *testing.T) {
	s := NewStore(2)
	in, rid, head := tid("in"), tid("rid"), tid("head")
	s.AddParent(in, rid, head, 5)
	s.AddParent(in, rid, head, 5) // duplicate: count only
	if len(s.Parents(in)) != 1 {
		t.Fatal("duplicate parent row")
	}
	s.DelParent(in, rid, head, 5)
	if len(s.Parents(in)) != 1 {
		t.Fatal("parent removed while count > 0")
	}
	s.DelParent(in, rid, head, 5)
	if len(s.Parents(in)) != 0 {
		t.Fatal("parent survived")
	}
}

func TestRowRendering(t *testing.T) {
	s := NewStore(0)
	tu := types.NewTuple("link", types.Node(0), types.Node(2), types.Int(5))
	vid := s.RegisterTuple(tu)
	s.AddProv(vid, types.ZeroID, 0)
	rows := s.ProvRows()
	if len(rows) != 1 || !strings.Contains(rows[0], "link(@a,c,5)") || !strings.Contains(rows[0], "null") {
		t.Fatalf("prov rows = %v", rows)
	}
	rid := tid("exec")
	s.AddRuleExec(rid, "sp1", []types.ID{vid})
	rer := s.RuleExecRows()
	if len(rer) != 1 || !strings.Contains(rer[0], "sp1") || !strings.Contains(rer[0], "link(@a,c,5)") {
		t.Fatalf("ruleExec rows = %v", rer)
	}
	if s.NumProv() != 1 || s.NumRuleExec() != 1 {
		t.Fatal("counters wrong")
	}
}

// TestHandleKeyedPartitions pins the PR 3 rekeying of the store: the
// handle-based hot-path API must be observationally identical to the
// ID-based one, and read paths must tolerate IDs that were never interned
// anywhere in the process (returning empty results without growing the
// intern table).
func TestHandleKeyedPartitions(t *testing.T) {
	s := NewStore(1)
	tu := types.NewTuple("q", types.Node(1), types.Int(7))
	vid := tu.VID()
	vidh := types.InternID(vid)

	s.RegisterTupleVIDH(vidh, tu)
	if got, ok := s.TupleOf(vid); !ok || !got.Equal(tu) {
		t.Fatal("H-registered tuple not visible through the ID API")
	}
	s.AddProvH(vidh, tid("r1"), 2)
	if len(s.Derivations(vid)) != 1 {
		t.Fatal("H-added prov row not visible through the ID API")
	}
	if !s.DelProvH(vidh, tid("r1"), 2) {
		t.Fatal("DelProvH missed the row AddProvH created")
	}
	if len(s.Derivations(vid)) != 0 {
		t.Fatal("row survived DelProvH")
	}

	rid := tid("exec")
	ridh := types.InternID(rid)
	s.AddRuleExecH(ridh, rid, "sp2", []types.ID{vid})
	if e, ok := s.RuleExecOf(rid); !ok || e.Rule != "sp2" || e.Count != 1 {
		t.Fatal("H-added ruleExec row not visible through the ID API")
	}
	if !s.DelRuleExecH(ridh) {
		t.Fatal("DelRuleExecH missed the row")
	}

	// Read paths on a digest no code ever interned: empty results, no
	// intern-table growth (LookupID, not InternID, under the hood).
	var alien types.ID
	copy(alien[:], "completely-unseen-digest!!")
	_, _, idsBefore, _ := types.InternStats()
	if s.Derivations(alien) != nil || s.Parents(alien) != nil {
		t.Fatal("unknown ID produced rows")
	}
	if _, ok := s.TupleOf(alien); ok {
		t.Fatal("unknown ID resolved to a tuple")
	}
	if _, ok := s.RuleExecOf(alien); ok {
		t.Fatal("unknown ID resolved to a ruleExec row")
	}
	if s.DelProv(alien, rid, 0) || s.DelRuleExec(alien) {
		t.Fatal("deleting under an unknown ID claimed success")
	}
	s.DelParent(alien, rid, vid, 0)
	s.DropParents(alien)
	if _, _, idsAfter, _ := types.InternStats(); idsAfter != idsBefore {
		t.Fatalf("read-path probes grew the ID intern table: %d -> %d", idsBefore, idsAfter)
	}
}
