// Package provenance implements the paper's distributed provenance data
// model (§4.1): an acyclic graph of tuple vertices and rule-execution
// vertices stored in two horizontally partitioned relations,
//
//	prov(@Loc, VID, RID, RLoc)      — tuple VID at Loc is derivable from
//	                                  rule execution RID residing at RLoc
//	ruleExec(@RLoc, RID, R, VIDList) — rule R executed at RLoc over the
//	                                  input tuples in VIDList
//
// Each node holds the partition of prov for its local tuples and the
// partition of ruleExec for rules executed locally. The store additionally
// keeps the VID→tuple mapping (the paper's "systems table that maps VIDs to
// tuples") and reverse dataflow edges used by cache invalidation (§6.1).
package provenance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// ProvEntry is one row of the prov relation: a direct derivation of the
// tuple identified by VID via the rule execution RID at RLoc. Base tuples
// carry the null RID. Count tracks duplicate derivations under incremental
// maintenance; an entry is visible while Count > 0.
type ProvEntry struct {
	VID   types.ID
	RID   types.ID
	RLoc  types.NodeID
	Count int
}

// RuleExecEntry is one row of the ruleExec relation: the metadata of a rule
// execution instance.
type RuleExecEntry struct {
	RID     types.ID
	Rule    string
	VIDList []types.ID
	Count   int
}

// Parent is a reverse dataflow edge: the local tuple was consumed by rule
// execution RID (local, since rule bodies are localized), deriving the head
// tuple HeadVID stored at HeadLoc.
type Parent struct {
	RID     types.ID
	HeadVID types.ID
	HeadLoc types.NodeID
	Count   int
}

// Store is one node's partition of the provenance graph.
type Store struct {
	Node types.NodeID

	prov     map[types.ID][]*ProvEntry
	ruleExec map[types.ID]*RuleExecEntry
	tuples   map[types.ID]types.Tuple
	parents  map[types.ID][]*Parent

	// OnProvChange, when set, fires after the derivation set of a local
	// VID changes (entry added or removed). The query cache uses it for
	// invalidation.
	OnProvChange func(vid types.ID)
}

// NewStore creates an empty partition for a node.
func NewStore(node types.NodeID) *Store {
	return &Store{
		Node:     node,
		prov:     make(map[types.ID][]*ProvEntry),
		ruleExec: make(map[types.ID]*RuleExecEntry),
		tuples:   make(map[types.ID]types.Tuple),
		parents:  make(map[types.ID][]*Parent),
	}
}

// RegisterTuple records the VID→tuple mapping for a local tuple.
func (s *Store) RegisterTuple(t types.Tuple) types.ID {
	vid := t.VID()
	s.tuples[vid] = t
	return vid
}

// TupleOf resolves a local VID to its tuple.
func (s *Store) TupleOf(vid types.ID) (types.Tuple, bool) {
	t, ok := s.tuples[vid]
	return t, ok
}

// AddProv inserts (or increments) a prov entry.
func (s *Store) AddProv(vid, rid types.ID, rloc types.NodeID) {
	for _, e := range s.prov[vid] {
		if e.RID == rid && e.RLoc == rloc {
			e.Count++
			s.changed(vid)
			return
		}
	}
	s.prov[vid] = append(s.prov[vid], &ProvEntry{VID: vid, RID: rid, RLoc: rloc, Count: 1})
	s.changed(vid)
}

// DelProv decrements (and possibly removes) a prov entry; it reports
// whether the entry existed.
func (s *Store) DelProv(vid, rid types.ID, rloc types.NodeID) bool {
	entries := s.prov[vid]
	for i, e := range entries {
		if e.RID == rid && e.RLoc == rloc {
			e.Count--
			if e.Count <= 0 {
				s.prov[vid] = append(entries[:i], entries[i+1:]...)
				if len(s.prov[vid]) == 0 {
					delete(s.prov, vid)
					delete(s.tuples, vid)
				}
			}
			s.changed(vid)
			return true
		}
	}
	return false
}

func (s *Store) changed(vid types.ID) {
	if s.OnProvChange != nil {
		s.OnProvChange(vid)
	}
}

// Derivations returns the visible prov entries for a VID. Callers must not
// mutate the returned slice.
func (s *Store) Derivations(vid types.ID) []*ProvEntry { return s.prov[vid] }

// AddRuleExec inserts (or increments) a ruleExec entry.
func (s *Store) AddRuleExec(rid types.ID, rule string, vidList []types.ID) {
	if e, ok := s.ruleExec[rid]; ok {
		e.Count++
		return
	}
	cp := make([]types.ID, len(vidList))
	copy(cp, vidList)
	s.ruleExec[rid] = &RuleExecEntry{RID: rid, Rule: rule, VIDList: cp, Count: 1}
}

// DelRuleExec decrements (and possibly removes) a ruleExec entry.
func (s *Store) DelRuleExec(rid types.ID) bool {
	e, ok := s.ruleExec[rid]
	if !ok {
		return false
	}
	e.Count--
	if e.Count <= 0 {
		delete(s.ruleExec, rid)
	}
	return true
}

// RuleExecOf resolves a local RID.
func (s *Store) RuleExecOf(rid types.ID) (*RuleExecEntry, bool) {
	e, ok := s.ruleExec[rid]
	return e, ok
}

// AddParent records that local tuple vid was consumed by rule execution rid
// deriving headVID at headLoc.
func (s *Store) AddParent(vid, rid, headVID types.ID, headLoc types.NodeID) {
	for _, p := range s.parents[vid] {
		if p.RID == rid && p.HeadVID == headVID && p.HeadLoc == headLoc {
			p.Count++
			return
		}
	}
	s.parents[vid] = append(s.parents[vid], &Parent{RID: rid, HeadVID: headVID, HeadLoc: headLoc, Count: 1})
}

// DelParent removes one reverse edge occurrence.
func (s *Store) DelParent(vid, rid, headVID types.ID, headLoc types.NodeID) {
	list := s.parents[vid]
	for i, p := range list {
		if p.RID == rid && p.HeadVID == headVID && p.HeadLoc == headLoc {
			p.Count--
			if p.Count <= 0 {
				s.parents[vid] = append(list[:i], list[i+1:]...)
				if len(s.parents[vid]) == 0 {
					delete(s.parents, vid)
				}
			}
			return
		}
	}
}

// Parents returns the reverse dataflow edges of a local VID.
func (s *Store) Parents(vid types.ID) []*Parent { return s.parents[vid] }

// NumProv reports the number of visible prov entries in the partition.
func (s *Store) NumProv() int {
	n := 0
	for _, list := range s.prov {
		n += len(list)
	}
	return n
}

// NumRuleExec reports the number of visible ruleExec entries.
func (s *Store) NumRuleExec() int { return len(s.ruleExec) }

// ProvRows renders the partition's prov relation as sorted printable rows
// (Loc, tuple, RID short, RLoc) — the format of the paper's Table 1.
func (s *Store) ProvRows() []string {
	var rows []string
	for vid, list := range s.prov {
		label := vid.Short()
		if t, ok := s.tuples[vid]; ok {
			label = t.String()
		}
		for _, e := range list {
			rid := "null"
			rloc := e.RLoc.String()
			if !e.RID.IsZero() {
				rid = e.RID.Short()
			}
			rows = append(rows, fmt.Sprintf("%s | %s | %s | %s", s.Node, label, rid, rloc))
		}
	}
	sort.Strings(rows)
	return rows
}

// RuleExecRows renders the partition's ruleExec relation as sorted rows
// (RLoc, RID short, rule, VIDList shorts) — the format of Table 2.
func (s *Store) RuleExecRows() []string {
	var rows []string
	for _, e := range s.ruleExec {
		vids := make([]string, len(e.VIDList))
		for i, v := range e.VIDList {
			vids[i] = v.Short()
			if t, ok := s.tuples[v]; ok {
				vids[i] = t.String()
			}
		}
		rows = append(rows, fmt.Sprintf("%s | %s | %s | (%s)", s.Node, e.RID.Short(), e.Rule, strings.Join(vids, ",")))
	}
	sort.Strings(rows)
	return rows
}
