// Package provenance implements the paper's distributed provenance data
// model (§4.1): an acyclic graph of tuple vertices and rule-execution
// vertices stored in two horizontally partitioned relations,
//
//	prov(@Loc, VID, RID, RLoc)      — tuple VID at Loc is derivable from
//	                                  rule execution RID residing at RLoc
//	ruleExec(@RLoc, RID, R, VIDList) — rule R executed at RLoc over the
//	                                  input tuples in VIDList
//
// Each node holds the partition of prov for its local tuples and the
// partition of ruleExec for rules executed locally. The store additionally
// keeps the VID→tuple mapping (the paper's "systems table that maps VIDs to
// tuples") and reverse dataflow edges used by cache invalidation (§6.1).
//
// A node's Store is itself split into one Partition per engine worker shard
// (see partition.go): during the sharded runtime's parallel phases each
// shard writes only its own partition, so the store needs no locks. The
// Store type here is the single-writer facade the query processor and tools
// use — its methods behave exactly like the pre-sharding store, fanning out
// across partitions where a row could live in any of them. With one
// partition (the default) every method is a direct delegation.
package provenance

import (
	"sort"

	"repro/internal/types"
)

// Store is one node's view of its provenance graph: a facade over one or
// more single-writer partitions.
type Store struct {
	Node types.NodeID

	// OnProvChange, when set, fires after the derivation set of a local
	// VID changes (entry added or removed). The query cache uses it for
	// invalidation. While DeferChanges is in effect, notifications are
	// buffered per partition and replayed by FlushDeferred.
	OnProvChange func(vid types.ID)

	parts     []*Partition
	deferring bool
}

// NewStore creates a store with a single partition — the layout every
// single-threaded node uses.
func NewStore(node types.NodeID) *Store { return NewStoreSharded(node, 1) }

// NewStoreSharded creates a store with n partitions, one per engine worker
// shard.
func NewStoreSharded(node types.NodeID, n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{Node: node}
	s.parts = make([]*Partition, n)
	for i := range s.parts {
		s.parts[i] = newPartition(s)
	}
	return s
}

// NumPartitions reports the number of partitions.
func (s *Store) NumPartitions() int { return len(s.parts) }

// Part returns partition i. The engine worker shards write through these
// directly; everything else goes through the facade methods.
func (s *Store) Part(i int) *Partition { return s.parts[i] }

// DeferChanges buffers OnProvChange notifications until FlushDeferred. The
// engine brackets its parallel phases with this pair so the (single-threaded)
// query-cache hook never runs concurrently.
func (s *Store) DeferChanges() { s.deferring = true }

// FlushDeferred replays buffered change notifications in partition order and
// resumes synchronous delivery.
func (s *Store) FlushDeferred() {
	s.deferring = false
	if s.OnProvChange == nil {
		for _, p := range s.parts {
			p.pending = p.pending[:0]
		}
		return
	}
	for _, p := range s.parts {
		for _, vid := range p.pending {
			s.OnProvChange(vid)
		}
		p.pending = p.pending[:0]
	}
}

// partForVID returns the partition holding rows of vid (its prov rows or its
// VID→tuple mapping), or nil. Reads and parent-edge writes route through it.
func (s *Store) partForVID(vidh types.IDHandle) *Partition {
	for _, p := range s.parts {
		if _, ok := p.prov[vidh]; ok {
			return p
		}
		if _, ok := p.tuples[vidh]; ok {
			return p
		}
		if _, ok := p.parents[vidh]; ok {
			return p
		}
	}
	return nil
}

// RegisterTuple records the VID→tuple mapping for a local tuple.
func (s *Store) RegisterTuple(t types.Tuple) types.ID {
	return s.parts[0].RegisterTuple(t)
}

// RegisterTupleVID records the VID→tuple mapping for a tuple whose VID the
// caller has already computed.
func (s *Store) RegisterTupleVID(vid types.ID, t types.Tuple) {
	s.parts[0].RegisterTupleVID(vid, t)
}

// RegisterTupleVIDH is RegisterTupleVID for a caller that holds the interned
// handle.
func (s *Store) RegisterTupleVIDH(vidh types.IDHandle, t types.Tuple) {
	s.parts[0].RegisterTupleVIDH(vidh, t)
}

// TupleOf resolves a local VID to its tuple.
func (s *Store) TupleOf(vid types.ID) (types.Tuple, bool) {
	for _, p := range s.parts {
		if t, ok := p.TupleOf(vid); ok {
			return t, true
		}
	}
	return types.Tuple{}, false
}

// AddProv inserts (or increments) a prov entry.
func (s *Store) AddProv(vid, rid types.ID, rloc types.NodeID) {
	s.AddProvH(types.InternID(vid), rid, rloc)
}

// AddProvH is AddProv keyed by the caller's interned VID handle. Facade
// writes land in the partition already holding the VID's rows (partition 0
// for first sight); sharded engine writers bypass the facade via Part.
func (s *Store) AddProvH(vidh types.IDHandle, rid types.ID, rloc types.NodeID) {
	p := s.partForVID(vidh)
	if p == nil {
		p = s.parts[0]
	}
	p.AddProvH(vidh, rid, rloc)
}

// DelProv decrements (and possibly removes) a prov entry; it reports
// whether the entry existed.
func (s *Store) DelProv(vid, rid types.ID, rloc types.NodeID) bool {
	h, ok := types.LookupID(vid)
	if !ok {
		return false
	}
	return s.DelProvH(h, rid, rloc)
}

// DelProvH is DelProv keyed by the caller's interned VID handle.
func (s *Store) DelProvH(vidh types.IDHandle, rid types.ID, rloc types.NodeID) bool {
	for _, p := range s.parts {
		if p.DelProvH(vidh, rid, rloc) {
			return true
		}
	}
	return false
}

// Derivations returns the visible prov entries for a VID. Callers must not
// mutate the returned slice.
func (s *Store) Derivations(vid types.ID) []ProvEntry {
	for _, p := range s.parts {
		if d := p.Derivations(vid); d != nil {
			return d
		}
	}
	return nil
}

// AddRuleExec inserts (or increments) a ruleExec entry. vidList may be
// caller scratch; it is copied when a new entry is created.
func (s *Store) AddRuleExec(rid types.ID, rule string, vidList []types.ID) {
	s.AddRuleExecH(types.InternID(rid), rid, rule, vidList)
}

// AddRuleExecH is AddRuleExec keyed by the caller's interned RID handle.
func (s *Store) AddRuleExecH(ridh types.IDHandle, rid types.ID, rule string, vidList []types.ID) {
	for _, p := range s.parts {
		if _, ok := p.ruleExec[ridh]; ok {
			p.AddRuleExecH(ridh, rid, rule, vidList)
			return
		}
	}
	s.parts[0].AddRuleExecH(ridh, rid, rule, vidList)
}

// DelRuleExec decrements (and possibly removes) a ruleExec entry.
func (s *Store) DelRuleExec(rid types.ID) bool {
	h, ok := types.LookupID(rid)
	if !ok {
		return false
	}
	return s.DelRuleExecH(h)
}

// DelRuleExecH is DelRuleExec keyed by the caller's interned RID handle.
func (s *Store) DelRuleExecH(ridh types.IDHandle) bool {
	for _, p := range s.parts {
		if p.DelRuleExecH(ridh) {
			return true
		}
	}
	return false
}

// RuleExecOf resolves a local RID.
func (s *Store) RuleExecOf(rid types.ID) (RuleExecEntry, bool) {
	for _, p := range s.parts {
		if e, ok := p.RuleExecOf(rid); ok {
			return e, true
		}
	}
	return RuleExecEntry{}, false
}

// ForEachRuleExec invokes fn for every visible ruleExec entry (iteration
// order is unspecified).
func (s *Store) ForEachRuleExec(fn func(RuleExecEntry)) {
	for _, p := range s.parts {
		p.ForEachRuleExec(fn)
	}
}

// AddParent records that local tuple vid was consumed by rule execution rid
// deriving headVID at headLoc. The edge lands in the partition holding the
// VID's rows, so invalidation finds it alongside them.
func (s *Store) AddParent(vid, rid, headVID types.ID, headLoc types.NodeID) {
	p := s.partForVID(types.InternID(vid))
	if p == nil {
		p = s.parts[0]
	}
	p.AddParent(vid, rid, headVID, headLoc)
}

// DelParent removes one reverse edge occurrence.
func (s *Store) DelParent(vid, rid, headVID types.ID, headLoc types.NodeID) {
	for _, p := range s.parts {
		p.DelParent(vid, rid, headVID, headLoc)
	}
}

// Parents returns the reverse dataflow edges of a local VID. Callers must
// not mutate the returned slice.
func (s *Store) Parents(vid types.ID) []Parent {
	for _, p := range s.parts {
		if list := p.Parents(vid); list != nil {
			return list
		}
	}
	return nil
}

// DropParents removes every reverse edge of a VID (an invalidation wave
// consumed them).
func (s *Store) DropParents(vid types.ID) {
	for _, p := range s.parts {
		p.DropParents(vid)
	}
}

// NumProv reports the number of visible prov entries across partitions.
func (s *Store) NumProv() int {
	n := 0
	for _, p := range s.parts {
		n += p.NumProv()
	}
	return n
}

// NumRuleExec reports the number of visible ruleExec entries.
func (s *Store) NumRuleExec() int {
	n := 0
	for _, p := range s.parts {
		n += p.NumRuleExec()
	}
	return n
}

// NumParents reports the number of reverse dataflow edges.
func (s *Store) NumParents() int {
	n := 0
	for _, p := range s.parts {
		n += p.NumParents()
	}
	return n
}

// ProvRows renders the store's prov relation as sorted printable rows.
func (s *Store) ProvRows() []string {
	var rows []string
	for _, p := range s.parts {
		rows = append(rows, p.ProvRows()...)
	}
	if len(s.parts) > 1 {
		sort.Strings(rows)
	}
	return rows
}

// RuleExecRows renders the store's ruleExec relation as sorted rows.
func (s *Store) RuleExecRows() []string {
	var rows []string
	for _, p := range s.parts {
		rows = append(rows, p.RuleExecRows()...)
	}
	if len(s.parts) > 1 {
		sort.Strings(rows)
	}
	return rows
}
