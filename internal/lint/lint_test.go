package lint

// Golden-fixture tests: each analyzer runs over its package under
// testdata/src/ and must produce exactly the diagnostics pinned by
// `// want "re"` comments — no more, no fewer. The fixtures double as the
// suite's negative fence: TestFixtures fails if an analyzer goes silent on
// a seeded violation, the same way doccheck is negative-tested. testdata
// directories are invisible to ./... patterns, so `make lint`, builds and
// vet never see the deliberate violations; the loader reaches them by
// explicit path.

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one testdata package through the production loader.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkgs, err := Load(".", false, "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

// wantRe extracts the quoted regexes of one `// want "re" "re"` comment.
var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants scans a fixture package's comments for want expectations.
func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, qm := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(qm[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, qm[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer *Analyzer
	}{
		{"determinism", DeterminismAnalyzer},
		{"hotpath", HotpathAnalyzer},
		{"interning", InterningAnalyzer},
		{"phaseown", PhaseOwnAnalyzer},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			pkg := loadFixture(t, tc.fixture)
			wants := collectWants(t, pkg)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", tc.fixture)
			}
			diags := RunAnalyzer(tc.analyzer, pkg)
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestSuppressionHandling pins the escape-hatch contract on the suppress
// fixture: a justified suppression silences its finding, an empty-reason
// suppression is converted into a finding, and a suppression that silences
// nothing is a finding.
func TestSuppressionHandling(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags := RunAnalyzer(DeterminismAnalyzer, pkg)
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d: %s", d.Pos.Line, d.Message))
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (empty reason + unused):\n%s",
			len(diags), strings.Join(got, "\n"))
	}
	if !strings.Contains(diags[0].Message, "needs a reason") {
		t.Errorf("first diagnostic = %q, want the empty-reason finding", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "unused suppression") {
		t.Errorf("second diagnostic = %q, want the unused-suppression finding", diags[1].Message)
	}
	// The justified suppression must not surface at all.
	for _, d := range diags {
		if strings.Contains(d.Message, "wall-clock") {
			t.Errorf("justified suppression leaked a finding: %s", d)
		}
	}
}

// TestSuiteFindsSeededViolations is the cmd/exspanlint-level negative fence:
// every analyzer in the shipped suite must fire on its fixture when run the
// way the driver runs it (whole suite over the package), proving the gate
// cannot silently pass a tree that contains these violation classes.
func TestSuiteFindsSeededViolations(t *testing.T) {
	for _, a := range Analyzers() {
		pkg := loadFixture(t, a.Name)
		diags := Run([]*Package{pkg}, Analyzers())
		count := 0
		for _, d := range diags {
			if d.Analyzer == a.Name {
				count++
			}
		}
		if count == 0 {
			t.Errorf("suite produced no %s findings on its fixture — the gate would pass a violating tree", a.Name)
		}
	}
}
