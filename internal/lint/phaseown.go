package lint

// The phaseown analyzer machine-checks the shard-state ownership contract
// that today only the (timing-dependent) race detector can see violated.
// A struct opts in by carrying `// owned by: <phase>` comments inside its
// field list: each comment starts a group of protected fields (`// owned
// by: any` ends protection). A protected field may then only be touched
//
//   - from a method whose receiver is that struct type (shards touch their
//     own — and, read-only during the frozen fire phase, their siblings' —
//     state from shard methods), or
//   - from a function annotated //exspan:merge-phase: a barrier-time
//     function that runs when no apply or fire phase is in flight
//     (constructors, the merge workers, quiescence-time release and
//     stats folds), or
//   - through a parameter of the protected struct type: a helper handed
//     the owner explicitly (aggGroup.update(sh, ...)) acts on the
//     caller's behalf, and the caller is where the contract is checked.
//
// Any other access is the cross-shard-write race class PR 9's merge
// pipeline was built to exclude. Escape hatch: //exspanlint:phase-ok
// <reason>.

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

var PhaseOwnAnalyzer = &Analyzer{
	Name:     "phaseown",
	Doc:      "flags access to `// owned by:` struct fields from outside owner methods and //exspan:merge-phase functions",
	Suppress: "phase-ok",
	Run:      runPhaseOwn,
}

const mergePhaseMarker = "//exspan:merge-phase"

var ownedByRe = regexp.MustCompile(`^//\s*owned by:\s*(.+?)\s*$`)

// ownedFields maps a protected struct's named type to field name -> owning
// phase label.
type ownedFields map[*types.Named]map[string]string

func runPhaseOwn(p *Pass) {
	info := p.Pkg.Info
	owned := collectOwnedFields(p.Pkg)
	if len(owned) == 0 {
		return
	}

	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		if funcAnnotated(fd, mergePhaseMarker) {
			return
		}
		// Tests are exempt: they inspect shard internals at quiescence from
		// one goroutine by construction — the contract protects the
		// concurrent apply/fire/merge machinery.
		if strings.HasSuffix(p.Pkg.Fset.Position(fd.Pos()).Filename, "_test.go") {
			return
		}
		recv := receiverNamed(fd, info)
		params := paramObjs(fd, info)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			named := namedOf(s.Recv())
			if named == nil {
				return true
			}
			fields := owned[named]
			if fields == nil {
				return true
			}
			owner, protected := fields[sel.Sel.Name]
			if !protected || named == recv {
				return true
			}
			// Access through an explicitly-passed owner parameter: the
			// caller delegated its phase, and is itself checked.
			if root := rootIdent(sel.X); root != nil {
				obj := info.Uses[root]
				if obj == nil {
					obj = info.Defs[root]
				}
				if v, ok := obj.(*types.Var); ok && params[v] && namedOf(v.Type()) == named {
					return true
				}
			}
			p.Reportf(sel.Sel.Pos(), "field %s.%s is owned by %q: touch it only from %s methods or //exspan:merge-phase functions",
				named.Obj().Name(), sel.Sel.Name, owner, named.Obj().Name())
			return true
		})
	})
}

// collectOwnedFields scans the package's struct declarations for
// `// owned by:` field groups.
func collectOwnedFields(pkg *Package) ownedFields {
	owned := ownedFields{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj := pkg.Info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				fields := structOwnedFields(st)
				if len(fields) > 0 {
					owned[named] = fields
				}
			}
		}
	}
	return owned
}

// structOwnedFields walks a struct's field list in order, assigning fields
// to the current `// owned by:` group. A field's doc comment can change
// the group; "any" ends protection.
func structOwnedFields(st *ast.StructType) map[string]string {
	fields := map[string]string{}
	current := ""
	for _, field := range st.Fields.List {
		if field.Doc != nil {
			for _, c := range field.Doc.List {
				if m := ownedByRe.FindStringSubmatch(c.Text); m != nil {
					current = m[1]
					if current == "any" {
						current = ""
					}
				}
			}
		}
		if current == "" {
			continue
		}
		for _, name := range field.Names {
			fields[name.Name] = current
		}
	}
	return fields
}

// paramObjs collects the parameter variables of a function declaration.
func paramObjs(fd *ast.FuncDecl, info *types.Info) map[*types.Var]bool {
	params := map[*types.Var]bool{}
	if fd.Type.Params == nil {
		return params
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				params[v] = true
			}
		}
	}
	return params
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
