// Package lint is exspanlint: a static-analysis suite that machine-checks
// the engine's four load-bearing invariants — bit-exact determinism,
// zero-allocation hot paths, interned-value identity discipline, and
// phase-ownership of shard state. Each invariant has one analyzer
// (determinism.go, hotpath.go, interning.go, phaseown.go); cmd/exspanlint
// drives all four over the tree as the blocking `make lint` CI gate.
//
// The analyzers mirror the golang.org/x/tools/go/analysis shape
// (Analyzer/Pass/Diagnostic) but are built on the standard library alone:
// the module deliberately pins no third-party dependencies, so load.go
// implements package loading via `go list -export` and the gc export-data
// importer instead of go/packages.
//
// Annotation grammar (documented in ARCHITECTURE.md "Static analysis"):
//
//	//exspan:hotpath            marks a function allocation-fenced; the
//	                            hotpath analyzer checks its body
//	//exspan:merge-phase        marks a function as running at a round
//	                            barrier, allowed to touch owned shard state
//	// owned by: <phase>        inside a struct declaration, starts a group
//	                            of fields the phaseown analyzer protects
//	//exspanlint:<key>-ok <reason>
//	                            suppresses one finding on this or the next
//	                            line; the reason is mandatory and unused
//	                            suppressions are themselves findings
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string // short name, printed in diagnostics and used in -only
	Doc  string // one-line description
	// Suppress is the suppression key honored by this analyzer: a comment
	// `//exspanlint:<Suppress> <reason>` on the flagged line (or the line
	// above) silences the finding.
	Suppress string
	Run      func(*Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags       []Diagnostic
	suppression map[string]map[int]*suppression // file -> line -> comment
}

type suppression struct {
	key    string
	reason string
	pos    token.Position
	used   bool
}

var suppressRe = regexp.MustCompile(`^//exspanlint:([a-z-]+)(?:\s+(.*))?$`)

// newPass indexes the package's suppression comments and returns a ready
// pass.
func newPass(a *Analyzer, pkg *Package) *Pass {
	p := &Pass{Analyzer: a, Pkg: pkg, suppression: map[string]map[int]*suppression{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := p.suppression[pos.Filename]
				if byLine == nil {
					byLine = map[int]*suppression{}
					p.suppression[pos.Filename] = byLine
				}
				byLine[pos.Line] = &suppression{key: m[1], reason: strings.TrimSpace(m[2]), pos: pos}
			}
		}
	}
	return p
}

// Reportf records a finding unless a matching suppression comment covers
// the position. A suppression with an empty reason is converted into a
// finding of its own (the escape hatch requires a rationale).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if s := p.suppressionAt(position); s != nil && s.key == p.Analyzer.Suppress {
		s.used = true
		if s.reason == "" {
			p.diags = append(p.diags, Diagnostic{
				Pos:      s.pos,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("suppression //exspanlint:%s needs a reason", s.key),
			})
		}
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressionAt finds a suppression comment on the given line or the line
// directly above it.
func (p *Pass) suppressionAt(pos token.Position) *suppression {
	byLine := p.suppression[pos.Filename]
	if byLine == nil {
		return nil
	}
	if s := byLine[pos.Line]; s != nil {
		return s
	}
	return byLine[pos.Line-1]
}

// finish reports stale suppressions: a comment carrying this analyzer's key
// that silenced nothing is dead weight that would mask a future regression
// silently, so it must be removed (or was a typo for another key).
func (p *Pass) finish() []Diagnostic {
	for _, byLine := range p.suppression {
		for _, s := range byLine {
			if s.key == p.Analyzer.Suppress && !s.used {
				p.diags = append(p.diags, Diagnostic{
					Pos:      s.pos,
					Analyzer: p.Analyzer.Name,
					Message:  fmt.Sprintf("unused suppression //exspanlint:%s (nothing to silence here)", s.key),
				})
			}
		}
	}
	sort.Slice(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return p.diags[i].Message < p.diags[j].Message
	})
	return p.diags
}

// Analyzers returns the full suite in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DeterminismAnalyzer, HotpathAnalyzer, InterningAnalyzer, PhaseOwnAnalyzer}
}

// RunAnalyzer applies one analyzer to one loaded package.
func RunAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	p := newPass(a, pkg)
	a.Run(p)
	return p.finish()
}

// Run applies the whole suite to every package, returning position-sorted
// findings.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			all = append(all, RunAnalyzer(a, pkg)...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if all[i].Analyzer != all[j].Analyzer {
			return all[i].Analyzer < all[j].Analyzer
		}
		return all[i].Message < all[j].Message
	})
	return all
}

// --- shared AST/type helpers ---

// funcAnnotated reports whether a function declaration's doc comment block
// carries the given machine annotation (e.g. "//exspan:hotpath").
func funcAnnotated(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// enclosingFuncs maps every node inside a function body to its declaration
// by walking declarations in file order.
func forEachFunc(pkg *Package, fn func(*ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// calleePkgFunc resolves a call to a package-level function and returns its
// package path and name, or "", "". Methods resolve to "", "": a call like
// rng.Intn on a seeded *rand.Rand must not be mistaken for the process-
// global rand.Intn.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	}
	if f, ok := obj.(*types.Func); ok && f.Pkg() != nil {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() == nil {
			return f.Pkg().Path(), f.Name()
		}
	}
	return "", ""
}

// receiverNamed returns the named type of a method's receiver (through one
// pointer), or nil for plain functions.
func receiverNamed(fd *ast.FuncDecl, info *types.Info) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	obj := info.Defs[fd.Name]
	f, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// rootIdent walks a selector/index/star chain to its base identifier:
// sh.rs.outAgg[d] -> sh. Returns nil for anything not rooted at a plain
// identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// namedTypePath returns "pkgpath.Name" for a (possibly pointer-wrapped)
// named type, or "".
func namedTypePath(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
