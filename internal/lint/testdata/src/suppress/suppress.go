// Package suppress is the fixture for suppression-comment handling, checked
// directly by TestSuppressionHandling (not via want comments): a justified
// suppression silences its finding, an empty-reason suppression is itself a
// finding, and an unused suppression is a finding.
package suppress

import "time"

func justified() time.Time {
	//exspanlint:nondeterministic-ok replay tooling: wall time feeds a log line only
	return time.Now()
}

func emptyReason() time.Time {
	//exspanlint:nondeterministic-ok
	return time.Now()
}

func unused() int {
	//exspanlint:nondeterministic-ok nothing on the next line needs this
	return 42
}
