// Package interning is the golden fixture for the interning analyzer. The
// violations mirror the real regression class PR 7 removed: building string
// identities (Sprintf, .String(), canonical encodings) for values that are
// already canonical handles.
package interning

import (
	"fmt"
	"reflect"

	"repro/internal/types"
)

func use(...any) {}

// stringKeys builds map keys by rendering interned values.
func stringKeys(m map[string]int, v types.Value, t types.Tuple) {
	k := v.String()
	m[k]++                      // want "keyed by types.Value.String"
	m[fmt.Sprintf("%v", v)] = 1 // want "keyed by fmt.Sprintf\(types.Value\)"

	// The pre-PR 7 class exactly: a map keyed by the canonical encoding.
	ek := string(t.Encode(nil))
	m[ek] = 2 // want "keyed by types.Tuple.Encode"
}

// renderedCompare compares derived strings instead of the values.
func renderedCompare(a, b types.Value) bool {
	return a.String() == b.String() // want "comparing types.Value.String"
}

func deepEqual(a, b []types.Value) bool {
	return reflect.DeepEqual(a, b) // want "reflect.DeepEqual over \[\]types.Value"
}

// directOK shows the sanctioned idioms: values as map keys, == equality,
// and the AppendKey fixed-width handle-key family.
func directOK(a, b types.Value, t types.Tuple) {
	m := map[types.Value]int{}
	m[a]++
	if a == b {
		m[b]++
	}
	var buf []byte
	buf = a.AppendKey(buf)
	buf = t.AppendArgsKey(buf)
	idx := map[string][]int{}
	idx[string(buf)] = append(idx[string(buf)], 1)
	use(m, idx)
}

// suppressedOK: rendering with a recorded justification stays legal.
func suppressedOK(m map[string]int, v types.Value) {
	k := v.String()
	//exspanlint:intern-ok fixture: demonstrates a justified suppression
	m[k] = 1
}
