// Package determinism is the golden fixture for the determinism analyzer.
// Every want comment pins a diagnostic on its line; a violation class with
// no want comment must stay silent. lint_test.go loads this
// package (explicitly — testdata is invisible to ./... patterns) and
// compares.
package determinism

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// --- source class: wall clock, environment, global rand ---

func sources() int64 {
	t := time.Now()             // want "wall-clock read time.Now"
	_ = time.Since(t)           // want "wall-clock read time.Since"
	_ = os.Getenv("HOME")       // want "environment read os.Getenv"
	return int64(rand.Intn(10)) // want "process-global rand.Intn"
}

// seededOK: a seeded source is the sanctioned way to randomize.
func seededOK() int {
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(10)
}

// suppressedOK: the escape hatch with a reason silences the finding.
func suppressedOK() time.Time {
	//exspanlint:nondeterministic-ok fixture: demonstrates a justified suppression
	return time.Now()
}

// --- map-range classes ---

func rangeSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send inside a map range"
	}
}

func rangeGo(m map[string]int) {
	for _, v := range m {
		go func(int) {}(v) // want "goroutine launched inside a map range"
	}
}

// appendNoSort mirrors the PR 2 regression class: rewrite-time rule
// generation ranged an atoms-by-predicate map and appended rules in
// iteration order, so the rewritten program's rule order varied run to run.
func appendNoSort(byPred map[string]int) []int {
	var out []int
	for _, v := range byPred {
		out = append(out, v) // want "append to out inside a map range without sorting"
	}
	return out
}

// appendThenSort is the canonical fix: collect, then order.
func appendThenSort(byPred map[string]int) []int {
	var out []int
	for _, v := range byPred {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// appendSortedOuterBlock: the sort may legally sit after an enclosing
// block, not just immediately after the range.
func appendSortedOuterBlock(ms []map[string]int) []int {
	var out []int
	for _, m := range ms {
		for _, v := range m {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func stringConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "string built up across a map range"
	}
	return s
}

func printInRange(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "Println inside a map range"
	}
}

// mapWriteOK: keyed writes and commutative numeric updates are order-free.
func mapWriteOK(m map[string]int) (map[string]int, int) {
	out := map[string]int{}
	sum := 0
	for k, v := range m {
		out[k] = v
		sum += v
	}
	return out, sum
}
