// Package hotpath is the golden fixture for the hotpath analyzer: the
// //exspan:hotpath-annotated function seeds one violation per construct
// class, and coldFunc repeats them unannotated to pin that the analyzer
// only checks marked functions.
package hotpath

import "fmt"

var global []byte

type ring struct{ buf []byte }

func sink(any)            {}
func sinkPtr(*ring)       {}
func use(...any)          {}
func key(b []byte) string { return string(b) }

//exspan:hotpath
func hot(r *ring, b []byte, m map[string]int, s string) {
	ml := map[string]int{} // want "map literal allocates"
	sl := []int{1}         // want "slice literal allocates"
	mk := make([]byte, 8)  // want "make\(\) allocates"

	k := string(b)  // want "string\(\[\]byte\) conversion copies"
	bb := []byte(s) // want "\[\]byte\(string\) conversion copies"

	_ = m[string(b)]    // free form: map lookup
	if string(b) == s { // free form: comparison
		return
	}

	fn := func() int { return len(b) } // want "closure captures b"
	_ = fmt.Sprint(s)                  // want "fmt.Sprint allocates"

	global = append(global, b...) // want "append to package-level global"
	_ = append(r.buf, b...)       // want "append result discarded"
	r.buf = append(r.buf, b...)   // receiver-rooted: the arena idiom
	b = append(b, 0)              // parameter-rooted: fine

	sink(len(b)) // want "int argument boxes into interface"
	sinkPtr(r)   // pointer-shaped: no boxing

	//exspanlint:alloc-ok fixture: demonstrates a justified suppression
	suppressed := make([]byte, 1)

	_, _, _, _, _, _, _ = ml, sl, mk, k, bb, fn, suppressed
}

// coldFunc is identical but unannotated: nothing here may be flagged.
func coldFunc(r *ring, b []byte, s string) {
	ml := map[string]int{}
	mk := make([]byte, 8)
	k := string(b)
	global = append(global, b...)
	use(ml, mk, k, fmt.Sprint(s))
}
