// Package phaseown is the golden fixture for the phase-ownership analyzer:
// a worker struct opts in with `// owned by:` field groups, and the
// functions below cover every access class — owner methods, merge-phase
// barrier functions, explicit owner parameters, and the violation.
package phaseown

type worker struct {
	id int

	// owned by: the apply phase
	queue []int
	qhead int

	// owned by: any
	name string

	// owned by: the fire phase
	scratch []byte
}

type pool struct{ workers []*worker }

// methods of the owning struct touch protected state freely.
func (w *worker) drain() int {
	w.qhead++
	return w.queue[w.qhead-1]
}

// mergeAll runs at the round barrier: annotated, so allowed.
//
//exspan:merge-phase
func (p *pool) mergeAll() {
	for _, w := range p.workers {
		w.queue = w.queue[:0]
		w.qhead = 0
	}
}

// helper is handed the owner explicitly: delegation from a checked caller.
func helper(w *worker, d int) {
	w.queue = append(w.queue, d)
}

// steal is the violation class: a foreign struct reaching into protected
// fields outside any barrier.
func (p *pool) steal(i int) []byte {
	w := p.workers[i]
	_ = w.name       // unprotected group: fine
	_ = w.id         // fine: declared before any owned group
	return w.scratch // want "field worker.scratch is owned by"
}

// suppressedOK: a justified suppression keeps the access legal.
func (p *pool) depth(i int) int {
	//exspanlint:phase-ok fixture: demonstrates a justified suppression
	return len(p.workers[i].queue)
}
