package lint

// The hotpath analyzer checks functions annotated //exspan:hotpath — the
// alloc-fenced paths: shard fire/merge, simnet dispatch, scheduler
// delivery, intern lookups and the AppendKey family — for allocation-
// introducing constructs. The runtime fences (engine/hotpath_test.go,
// simnet/hotpath_test.go, types/intern_test.go) measure actual allocations;
// this analyzer catches the construct classes at review time, before a
// change ever runs:
//
//   - map/slice composite literals and make() calls
//   - string([]byte) / []byte(string) / []rune conversions, except the
//     compiler-optimized map-lookup and comparison forms
//   - closures capturing variables
//   - interface boxing at call sites (concrete argument, interface param)
//   - fmt.* calls
//   - append rooted at package-level state (receiver-, parameter- and
//     local-rooted appends are the amortized arena idiom and stay legal),
//     and appends whose result is discarded
//
// Escape hatch: //exspanlint:alloc-ok <reason> (e.g. error paths).

import (
	"go/ast"
	"go/types"
)

var HotpathAnalyzer = &Analyzer{
	Name:     "hotpath",
	Doc:      "flags allocation-introducing constructs inside //exspan:hotpath functions",
	Suppress: "alloc-ok",
	Run:      runHotpath,
}

const hotpathMarker = "//exspan:hotpath"

func runHotpath(p *Pass) {
	info := p.Pkg.Info
	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		if !funcAnnotated(fd, hotpathMarker) {
			return
		}
		w := &hotpathWalker{p: p, info: info, fd: fd}
		var stack []ast.Node
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			w.visit(n, stack)
			stack = append(stack, n)
			return true
		})
	})
}

// hotpathWalker walks a hot function's body keeping the parent chain, which
// the conversion check needs to recognize the compiler-optimized
// m[string(b)] lookup and string(b) == s comparison forms.
type hotpathWalker struct {
	p    *Pass
	info *types.Info
	fd   *ast.FuncDecl
}

func (w *hotpathWalker) visit(n ast.Node, parents []ast.Node) {
	switch x := n.(type) {
	case *ast.CompositeLit:
		t := w.info.Types[x].Type
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				w.p.Reportf(x.Pos(), "map literal allocates in a hot path")
			case *types.Slice:
				w.p.Reportf(x.Pos(), "slice literal allocates in a hot path")
			}
		}
	case *ast.FuncLit:
		if name, ok := w.capturedVar(x); ok {
			w.p.Reportf(x.Pos(), "closure captures %s: the capture allocates in a hot path", name)
		}
		// The literal body runs on the hot path too; Inspect walks it.
	case *ast.CallExpr:
		w.checkCall(x, parents)
	}
}

func (w *hotpathWalker) checkCall(call *ast.CallExpr, parents []ast.Node) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := w.info.Types[fun]; ok && tv.IsType() {
		w.checkConversion(call, tv.Type, parents)
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.p.Reportf(call.Pos(), "make() allocates in a hot path")
			case "append":
				w.checkAppend(call, parents)
			}
			return
		}
	}
	if pkgPath, name := calleePkgFunc(w.info, call); pkgPath == "fmt" {
		w.p.Reportf(call.Pos(), "fmt.%s allocates (formatting + boxing) in a hot path", name)
		return // boxing into ...any args is implied; one finding is enough
	}
	w.checkBoxing(call)
}

// checkConversion flags string<->[]byte/[]rune conversions, excepting the
// two forms the compiler compiles allocation-free: a map lookup keyed by
// string(b) (rvalue position only) and a comparison against string(b).
func (w *hotpathWalker) checkConversion(call *ast.CallExpr, to types.Type, parents []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	from := w.info.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	toStr, fromStr := isString(to), isString(from)
	toBytes, fromBytes := isByteOrRuneSlice(to), isByteOrRuneSlice(from)
	switch {
	case toStr && fromBytes:
		if w.freeStringConversion(parents) {
			return
		}
		w.p.Reportf(call.Pos(), "string(%s) conversion copies in a hot path (map-lookup and comparison forms are exempt)", typeShort(from))
	case toBytes && fromStr:
		w.p.Reportf(call.Pos(), "%s(string) conversion copies in a hot path", typeShort(to))
	}
}

// freeStringConversion reports whether the conversion's parent is a form
// the compiler optimizes to zero allocations: m[string(b)] as an rvalue,
// or string(b) ==/!=/</> s.
func (w *hotpathWalker) freeStringConversion(parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	parent := parents[len(parents)-1]
	switch par := parent.(type) {
	case *ast.BinaryExpr:
		return true // string comparisons against a converted []byte are free
	case *ast.IndexExpr:
		if !isMapType(w.info.Types[par.X].Type) {
			return false
		}
		// An index on the left of an assignment is a map write: the key
		// string must persist, so the conversion allocates.
		if len(parents) >= 2 {
			if as, ok := parents[len(parents)-2].(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if ast.Unparen(lhs) == par {
						return false
					}
				}
			}
		}
		return true
	}
	return false
}

// checkAppend enforces slice ownership: growing receiver-, parameter- or
// local-rooted slices is the arena idiom the fences measure (amortized);
// growing package-level state from a hot path is not, and an append whose
// result is dropped is always a bug.
func (w *hotpathWalker) checkAppend(call *ast.CallExpr, parents []ast.Node) {
	if len(parents) > 0 {
		// `_ = append(...)` (a bare append statement does not compile):
		// the grown slice is dropped, so the growth was pure waste.
		if as, ok := parents[len(parents)-1].(*ast.AssignStmt); ok {
			discarded := len(as.Lhs) > 0
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name != "_" {
					discarded = false
				}
			}
			if discarded {
				w.p.Reportf(call.Pos(), "append result discarded")
				return
			}
		}
	}
	if len(call.Args) == 0 {
		return
	}
	root := rootIdent(call.Args[0])
	if root == nil {
		w.p.Reportf(call.Pos(), "append to a slice not rooted at an identifier: ownership unclear in a hot path")
		return
	}
	obj := w.info.Uses[root]
	if obj == nil {
		obj = w.info.Defs[root]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if v.Parent() == v.Pkg().Scope() {
		w.p.Reportf(call.Pos(), "append to package-level %s in a hot path: not receiver-owned", root.Name)
	}
}

// checkBoxing flags concrete arguments passed to interface parameters: the
// conversion boxes (allocates) unless the value is pointer-shaped.
func (w *hotpathWalker) checkBoxing(call *ast.CallExpr) {
	tv, ok := w.info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1 && call.Ellipsis == 0:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := w.info.Types[arg].Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointer-shaped: interface conversion copies the word
		}
		w.p.Reportf(arg.Pos(), "%s argument boxes into interface %s in a hot path", typeShort(at), typeShort(pt))
	}
}

// capturedVar reports the first variable a function literal captures from
// an enclosing scope.
func (w *hotpathWalker) capturedVar(lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil {
			return true
		}
		if v.Parent() == types.Universe || v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = id.Name
		}
		return name == ""
	})
	return name, name != ""
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
