package lint

// Field-alignment report (report-only, `exspanlint -fieldalign`): for every
// struct in the analyzed packages, compare its size under the gc layout
// against the best size achievable by reordering fields. The tree pins no
// third-party modules, so this replaces the x/tools fieldalignment vettool
// with the same size math via go/types.Sizes. It is informational by
// design: several engine structs trade a few padding bytes for field
// grouping that mirrors phase ownership, and `unsafe.Sizeof` fences pin the
// ones where layout is load-bearing.

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// AlignReport is one struct whose fields could be packed tighter.
type AlignReport struct {
	Pos     string
	Struct  string
	Size    int64 // current size in bytes
	Optimal int64 // best size under field reordering
}

// FieldAlign computes the report for every named struct type in pkgs,
// sorted by wasted bytes (descending), then name.
func FieldAlign(pkgs []*Package, sizes types.Sizes) []AlignReport {
	var out []AlignReport
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if _, ok := ts.Type.(*ast.StructType); !ok {
						continue
					}
					obj := pkg.Info.Defs[ts.Name]
					if obj == nil {
						continue
					}
					// Generic structs have no concrete layout to size
					// (go/types.Sizes panics on type parameters).
					if named, ok := obj.Type().(*types.Named); ok && named.TypeParams().Len() > 0 {
						continue
					}
					st, ok := obj.Type().Underlying().(*types.Struct)
					if !ok || st.NumFields() == 0 {
						continue
					}
					cur := sizes.Sizeof(st)
					opt := optimalStructSize(st, sizes)
					if opt < cur {
						out = append(out, AlignReport{
							Pos:     pkg.Fset.Position(ts.Pos()).String(),
							Struct:  pkg.Types.Name() + "." + ts.Name.Name,
							Size:    cur,
							Optimal: opt,
						})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		wi, wj := out[i].Size-out[i].Optimal, out[j].Size-out[j].Optimal
		if wi != wj {
			return wi > wj
		}
		return out[i].Struct < out[j].Struct
	})
	return out
}

func (r AlignReport) String() string {
	return fmt.Sprintf("%s: struct %s is %d bytes; optimal field order is %d (-%d)",
		r.Pos, r.Struct, r.Size, r.Optimal, r.Size-r.Optimal)
}

// optimalStructSize computes the struct's size with fields sorted by
// decreasing alignment then decreasing size — the classic packing that is
// optimal for the gc layout's padding rules.
func optimalStructSize(st *types.Struct, sizes types.Sizes) int64 {
	type fs struct{ size, align int64 }
	fields := make([]fs, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		t := st.Field(i).Type()
		fields = append(fields, fs{size: sizes.Sizeof(t), align: sizes.Alignof(t)})
	}
	sort.SliceStable(fields, func(i, j int) bool {
		if fields[i].align != fields[j].align {
			return fields[i].align > fields[j].align
		}
		return fields[i].size > fields[j].size
	})
	var off, maxAlign int64 = 0, 1
	for _, f := range fields {
		if f.align > maxAlign {
			maxAlign = f.align
		}
		if f.align > 0 && off%f.align != 0 {
			off += f.align - off%f.align
		}
		off += f.size
	}
	if off%maxAlign != 0 {
		off += maxAlign - off%maxAlign
	}
	return off
}
