package lint

// The determinism analyzer guards the repo's strongest invariant: fixpoints,
// wire traffic and dumps are bit-identical across shard counts, drivers and
// runs. Two violation classes have already cost PRs here — map-iteration
// order leaking into output (fixed in PR 2) and environment-dependent
// behavior (the GOMAXPROCS test-cache miss in PR 9) — so both are machine-
// checked:
//
//  1. A `range` over a map whose body has an ordered effect (sends on a
//     channel, launches goroutines, appends to state declared outside the
//     loop, writes/encodes/prints, concatenates strings) is flagged unless
//     the appended-to slice is visibly sorted in the statements following
//     the loop.
//  2. Inside the deterministic core (internal/engine, internal/simnet,
//     internal/types, internal/apps) wall-clock reads (time.Now/Since/
//     Until), environment reads (os.Getenv & friends) and the process-
//     global math/rand source are flagged; a seeded rand.New(rand.
//     NewSource(...)) stays legal.
//
// Escape hatch: //exspanlint:nondeterministic-ok <reason>.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

var DeterminismAnalyzer = &Analyzer{
	Name:     "determinism",
	Doc:      "flags map-iteration order leaking into ordered effects, and wall-clock/env/global-rand reads in the deterministic core",
	Suppress: "nondeterministic-ok",
	Run:      runDeterminism,
}

// deterministicCore lists the packages that must be reproducible bit for
// bit: the engine, both network substrates' shared value model, and the
// workload programs. Test variants of these packages are held to the same
// bar — the determinism fences themselves live there.
var deterministicCore = map[string]bool{
	"repro/internal/engine": true,
	"repro/internal/simnet": true,
	"repro/internal/types":  true,
	"repro/internal/apps":   true,
	// Golden-fixture packages (lint_test.go); not reachable from ./... .
	"repro/internal/lint/testdata/src/determinism": true,
	"repro/internal/lint/testdata/src/suppress":    true,
}

// globalRandOK lists math/rand (and v2) constructors that do not touch the
// process-global source; everything else package-level there does.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// orderedSinkRe matches callee names whose invocation inside a map range is
// an ordered effect: emitting, encoding or enqueueing in iteration order.
var orderedSinkRe = regexp.MustCompile(`(?i)^(encode|marshal|write|print|fprint|send|emit|enqueue|deliver|publish)`)

func runDeterminism(p *Pass) {
	info := p.Pkg.Info
	inCore := deterministicCore[strings.Fields(p.Pkg.Path)[0]]

	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		// Pass 2 sources: wall clock, environment, global rand.
		if inCore {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkgPath, name := calleePkgFunc(info, call)
				switch pkgPath {
				case "time":
					if name == "Now" || name == "Since" || name == "Until" {
						p.Reportf(call.Pos(), "wall-clock read time.%s in the deterministic core; use the substrate's virtual clock", name)
					}
				case "os":
					if name == "Getenv" || name == "LookupEnv" || name == "Environ" {
						p.Reportf(call.Pos(), "environment read os.%s in the deterministic core; plumb configuration explicitly", name)
					}
				case "math/rand", "math/rand/v2":
					if !globalRandOK[name] {
						p.Reportf(call.Pos(), "process-global rand.%s in the deterministic core; use a seeded *rand.Rand", name)
					}
				}
				return true
			})
		}

		// Pass 1: range over maps with ordered effects.
		walkWithBlocks(fd.Body, func(rs *ast.RangeStmt, after []ast.Stmt) {
			t := info.Types[rs.X].Type
			if !isMapType(t) {
				return
			}
			checkMapRangeBody(p, info, rs, after)
		})
	})
}

// walkWithBlocks visits every range statement, handing the visitor the
// statements that follow it in its enclosing blocks, innermost first — a
// sort can legally sit after the loop itself or after an enclosing loop or
// if (for the sorted-after-the-loop exemption).
func walkWithBlocks(body *ast.BlockStmt, visit func(*ast.RangeStmt, []ast.Stmt)) {
	// suffix[stmt] = the statements following stmt in its own block.
	suffix := map[ast.Stmt][]ast.Stmt{}
	record := func(list []ast.Stmt) {
		for i, st := range list {
			suffix[st] = list[i+1:]
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			record(b.List)
		case *ast.CaseClause:
			record(b.Body)
		case *ast.CommClause:
			record(b.Body)
		}
		return true
	})
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			var after []ast.Stmt
			after = append(after, suffix[rs]...)
			for i := len(stack) - 1; i >= 0; i-- {
				if st, ok := stack[i].(ast.Stmt); ok {
					after = append(after, suffix[st]...)
				}
			}
			visit(rs, after)
		}
		stack = append(stack, n)
		return true
	})
}

// checkMapRangeBody flags ordered effects inside one map-range body.
func checkMapRangeBody(p *Pass, info *types.Info, rs *ast.RangeStmt, after []ast.Stmt) {
	// Objects declared inside the loop (incl. the iteration vars): effects
	// confined to them are invisible outside an iteration.
	inner := map[types.Object]bool{}
	ast.Inspect(rs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				inner[obj] = true
			}
		}
		return true
	})
	outerRoot := func(e ast.Expr) types.Object {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil || inner[obj] {
			return nil
		}
		if _, ok := obj.(*types.Var); !ok {
			return nil
		}
		return obj
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			if st != rs && isMapType(info.Types[st.X].Type) {
				return false // nested map range reports on its own
			}
		case *ast.SendStmt:
			p.Reportf(st.Pos(), "channel send inside a map range: iteration order reaches the receiver")
		case *ast.GoStmt:
			p.Reportf(st.Pos(), "goroutine launched inside a map range: spawn order is nondeterministic")
		case *ast.AssignStmt:
			checkMapRangeAssign(p, info, st, outerRoot, after)
		case *ast.CallExpr:
			checkMapRangeSink(p, info, st, outerRoot)
		}
		return true
	})
}

// checkMapRangeSink flags sink-named calls that carry iteration order out
// of the loop: a method whose receiver lives outside the loop (an
// accumulator, writer, queue or transport), or a direct print. A sink
// method on a loop-local receiver — e.g. encoding each entry into scratch
// that is collected and sorted afterwards — is the canonical *fix* for map
// nondeterminism and stays legal.
func checkMapRangeSink(p *Pass, info *types.Info, call *ast.CallExpr, outerRoot func(ast.Expr) types.Object) {
	name := calleeName(call)
	if name == "" || !orderedSinkRe.MatchString(name) {
		return
	}
	if pkgPath, fname := calleePkgFunc(info, call); pkgPath != "" {
		// Package-level sink: printing goes straight to an ordered stream;
		// anything else is ordered only if it writes into outer state.
		if strings.HasPrefix(strings.ToLower(fname), "print") || strings.HasPrefix(strings.ToLower(fname), "fprint") {
			p.Reportf(call.Pos(), "%s inside a map range: output is emitted in iteration order", fname)
			return
		}
		for _, arg := range call.Args {
			if obj := outerRoot(arg); obj != nil {
				p.Reportf(call.Pos(), "call to %s writes into %s inside a map range: iteration order reaches an ordered sink", name, obj.Name())
				return
			}
		}
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := outerRoot(sel.X); obj != nil {
			p.Reportf(call.Pos(), "call to %s.%s inside a map range: iteration order reaches an ordered sink", obj.Name(), name)
		}
	}
}

// checkMapRangeAssign flags assignments inside a map range that leak
// iteration order: appends to outer slices (unless sorted right after the
// loop) and string concatenation into outer variables. Map writes and
// commutative numeric updates stay legal.
func checkMapRangeAssign(p *Pass, info *types.Info, st *ast.AssignStmt, outerRoot func(ast.Expr) types.Object, after []ast.Stmt) {
	for i, lhs := range st.Lhs {
		obj := outerRoot(lhs)
		if obj == nil {
			continue
		}
		if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex && isMapType(typeOfIndexBase(info, lhs)) {
			continue // keyed map writes are iteration-order independent
		}
		lhsType := info.Types[lhs].Type
		if st.Tok == token.ADD_ASSIGN && lhsType != nil && isString(lhsType) {
			p.Reportf(st.Pos(), "string built up across a map range: %s concatenates in iteration order", obj.Name())
			continue
		}
		if i < len(st.Rhs) || len(st.Rhs) == 1 {
			rhs := st.Rhs[min(i, len(st.Rhs)-1)]
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
				if sortedAfter(info, obj, after) {
					continue
				}
				p.Reportf(st.Pos(), "append to %s inside a map range without sorting afterwards: element order is map-iteration order", obj.Name())
			}
		}
	}
}

func typeOfIndexBase(info *types.Info, e ast.Expr) types.Type {
	if ix, ok := ast.Unparen(e).(*ast.IndexExpr); ok {
		return info.Types[ix.X].Type
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// calleeName returns the bare name of a call's callee (method or function),
// or "" when the callee is not a simple selector/identifier.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// sortedAfter reports whether one of the statements following the loop
// (in its own or an enclosing block) visibly sorts obj: a call into
// package sort/slices, or one whose callee name mentions "sort"
// (types.SortValues, sortKeys, ...), with obj among its argument subtrees.
func sortedAfter(info *types.Info, obj types.Object, after []ast.Stmt) bool {
	for _, st := range after {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			name := calleeName(call)
			pkgPath, _ := calleePkgFunc(info, call)
			if pkgPath != "sort" && pkgPath != "slices" &&
				!strings.Contains(strings.ToLower(name), "sort") {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
