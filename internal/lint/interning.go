package lint

// The interning analyzer enforces the identity discipline types.Value
// bought in PR 3: heavy payloads are interned to canonical handles, so
// equality is ==, Value/IDHandle are map keys directly, and rendering or
// re-encoding a value to build a string identity is always wasted work —
// and was an actual regression class (the first-sight string-key copies
// removed in PR 7). Flagged:
//
//   - fmt.Sprintf/Sprint-style key building: a formatted string with a
//     Value/IDHandle/Tuple/ID argument used as a map key or compared
//   - .String()/.Encode()/.Key() derived strings compared against each
//     other (compare the values with == / Compare instead)
//   - indexing a map[string] with a canonical encoding of a Value or Tuple
//     (AppendKey/AppendArgsKey fixed-width handle keys are the sanctioned
//     idiom and do not trip this)
//   - reflect.DeepEqual over interned types (== is exact and cheap)
//
// Escape hatch: //exspanlint:intern-ok <reason>.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var InterningAnalyzer = &Analyzer{
	Name:     "interning",
	Doc:      "flags string-identity building (Sprintf/String/Encode keys) for interned Value/IDHandle types",
	Suppress: "intern-ok",
	Run:      runInterning,
}

// internedTypes are the types whose identity is handle-based.
var internedTypes = map[string]bool{
	"repro/internal/types.Value":    true,
	"repro/internal/types.IDHandle": true,
	"repro/internal/types.Tuple":    true,
	"repro/internal/types.ID":       true,
}

func runInterning(p *Pass) {
	info := p.Pkg.Info
	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		// Tests are exempt: Tuple is not Go-comparable (its Args field is a
		// slice), so content-keyed snapshot maps in tests legitimately key
		// by the canonical encoding, and readable string keys are what make
		// failure diffs debuggable. The discipline protects production
		// identity paths.
		if strings.HasSuffix(p.Pkg.Fset.Position(fd.Pos()).Filename, "_test.go") {
			return
		}
		// keyVars: locals whose value is a canonical string derived from an
		// interned type, by the defining statement ("k := v.String()",
		// "k := fmt.Sprintf(..., v)", "k := string(t.Encode(nil))").
		keyVars := map[types.Object]string{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				desc := canonicalStringDeriv(info, rhs)
				if desc == "" {
					continue
				}
				if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						keyVars[obj] = desc
					} else if obj := info.Uses[id]; obj != nil {
						keyVars[obj] = desc
					}
				}
			}
			return true
		})

		deriv := func(e ast.Expr) string {
			if d := canonicalStringDeriv(info, e); d != "" {
				return d
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				obj := info.Uses[id]
				if d, ok := keyVars[obj]; ok {
					return d
				}
			}
			return ""
		}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.IndexExpr:
				mt, ok := info.Types[x.X].Type.Underlying().(*types.Map)
				if !ok || !isString(mt.Key()) {
					return true
				}
				if d := deriv(x.Index); d != "" {
					p.Reportf(x.Index.Pos(), "map[string] keyed by %s: interned values are map keys directly (or use the AppendKey handle-key idiom)", d)
				}
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				ld, rd := deriv(x.X), deriv(x.Y)
				if ld != "" && rd != "" {
					p.Reportf(x.Pos(), "comparing %s against %s: interned values compare with == (or Compare)", ld, rd)
				}
			case *ast.CallExpr:
				if pkgPath, name := calleePkgFunc(info, x); pkgPath == "reflect" && name == "DeepEqual" {
					for _, arg := range x.Args {
						if t := info.Types[arg].Type; t != nil && mentionsInternedType(t, 0) {
							p.Reportf(x.Pos(), "reflect.DeepEqual over %s: interned types compare exactly with ==", typeShort(t))
							break
						}
					}
				}
			}
			return true
		})
	})
}

// canonicalStringDeriv reports how e builds a string identity from an
// interned type, or "".
func canonicalStringDeriv(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	// string(x.Encode(...)) — unwrap the conversion.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && isString(tv.Type) && len(call.Args) == 1 {
		if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
			call = inner
		} else {
			return ""
		}
	}
	if pkgPath, name := calleePkgFunc(info, call); pkgPath == "fmt" && (name == "Sprintf" || name == "Sprint" || name == "Sprintln") {
		for _, arg := range call.Args {
			if t := info.Types[arg].Type; t != nil && internedTypes[namedTypePath(t)] {
				return "fmt." + name + "(" + typeShort(t) + ")"
			}
		}
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := namedTypePath(info.Types[sel.X].Type)
	if !internedTypes[recv] {
		return ""
	}
	switch sel.Sel.Name {
	case "String", "Encode", "Key", "Short":
		return typeShort(info.Types[sel.X].Type) + "." + sel.Sel.Name + "()"
	}
	return ""
}

// mentionsInternedType reports whether t contains an interned type within
// two levels of composition (slice/array/map/pointer).
func mentionsInternedType(t types.Type, depth int) bool {
	if depth > 3 || t == nil {
		return false
	}
	if internedTypes[namedTypePath(t)] {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return mentionsInternedType(u.Elem(), depth+1)
	case *types.Array:
		return mentionsInternedType(u.Elem(), depth+1)
	case *types.Pointer:
		return mentionsInternedType(u.Elem(), depth+1)
	case *types.Map:
		return mentionsInternedType(u.Key(), depth+1) || mentionsInternedType(u.Elem(), depth+1)
	}
	return false
}
