package lint

// Package loading for the analyzers. The tree pins no third-party modules
// (go.mod is dependency-free by policy), so instead of
// golang.org/x/tools/go/packages this loader shells out to `go list -export`
// for package metadata plus compiled export data, parses the target
// packages' sources itself, and type-checks them with the standard
// library's gc-export-data importer. The result carries everything an
// analyzer needs: syntax with comments, *types.Package, and a fully
// populated types.Info.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path (test variants keep go list's bracketed form)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Name       string
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matched by patterns,
// rooted at dir (the module root). With includeTests, each matched
// package's test variant (package sources plus in-package _test.go files)
// replaces the plain package, and external _test packages are loaded too.
func Load(dir string, includeTests bool, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Export,Name,ForTest,GoFiles,CgoFiles,ImportMap,DepOnly,Error"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		q := p
		targets = append(targets, &q)
	}

	if includeTests {
		// The test variant "pkg [pkg.test]" contains the plain package's
		// files plus its in-package tests; analyzing both would double
		// every plain-package diagnostic.
		variants := map[string]bool{}
		for _, t := range targets {
			if t.ForTest != "" && strings.HasPrefix(t.ImportPath, t.ForTest+" ") {
				variants[t.ForTest] = true
			}
		}
		kept := targets[:0]
		for _, t := range targets {
			if !variants[t.ImportPath] {
				kept = append(kept, t)
			}
		}
		targets = kept
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	var pkgs []*Package
	for _, t := range targets {
		lookup := func(path string) (io.ReadCloser, error) {
			if m, ok := t.ImportMap[path]; ok {
				path = m
			}
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}
		var files []*ast.File
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: importer.ForCompiler(fset, "gc", lookup),
			Sizes:    sizes,
		}
		// go list's bracketed test-variant paths are not valid import
		// paths for the checker; check under the plain path.
		checkPath := strings.Fields(t.ImportPath)[0]
		tp, err := conf.Check(checkPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tp,
			Info:  info,
		})
	}
	return pkgs, nil
}
