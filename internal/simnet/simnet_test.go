package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 4) }) // same time: FIFO by seq
	end := s.Run()
	if end != 30 {
		t.Errorf("final time = %d, want 30", end)
	}
	want := []int{1, 4, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventOrderingProperty(t *testing.T) {
	f := func(times []uint32) bool {
		s := NewSim()
		var fired []Time
		for _, tm := range times {
			at := Time(tm % 1_000_000)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduledInPastClampsToNow(t *testing.T) {
	s := NewSim()
	var at Time = -1
	s.At(100, func() {
		s.At(50, func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != 100 {
		t.Errorf("past event ran at %d, want clamped to 100", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	fired := 0
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.At(30, func() { fired++ })
	s.RunUntil(20)
	if fired != 2 || s.Now() != 20 {
		t.Errorf("fired=%d now=%d, want 2 events and time 20", fired, s.Now())
	}
	if !s.Pending() {
		t.Error("expected pending events")
	}
	s.Run()
	if fired != 3 {
		t.Errorf("fired=%d after Run, want 3", fired)
	}
}

func TestLatencyAndBandwidthDelay(t *testing.T) {
	s := NewSim()
	nw := NewNetwork(s, 2)
	nw.MsgOverhead = 0
	nw.AddLink(0, 1, Link{Latency: 10 * Millisecond, Bps: 8000}) // 1000 B/s
	var arrival Time
	nw.Register(1, HandlerFunc(func(from types.NodeID, payload any, size int) {
		arrival = s.Now()
		if size != 500 {
			t.Errorf("size = %d, want 500", size)
		}
	}))
	nw.Send(0, 1, "x", 500)
	s.Run()
	// 10 ms latency + 500 B at 1000 B/s = 0.5 s.
	want := 10*Millisecond + 500*Millisecond
	if arrival != want {
		t.Errorf("arrival = %v, want %v", arrival, want)
	}
}

func TestMultiHopUsesMinLatencyPath(t *testing.T) {
	s := NewSim()
	nw := NewNetwork(s, 3)
	nw.MsgOverhead = 0
	// 0-1-2 with 1 ms links; direct 0-2 with 100 ms.
	nw.AddLink(0, 1, Link{Latency: Millisecond, Bps: 1e12})
	nw.AddLink(1, 2, Link{Latency: Millisecond, Bps: 1e12})
	nw.AddLink(0, 2, Link{Latency: 100 * Millisecond, Bps: 1e12})
	var arrival Time
	nw.Register(2, HandlerFunc(func(types.NodeID, any, int) { arrival = s.Now() }))
	nw.Send(0, 2, "x", 1)
	s.Run()
	if arrival >= 100*Millisecond || arrival < 2*Millisecond {
		t.Errorf("arrival = %v, want ~2 ms via relay", arrival)
	}
}

func TestUnreachableDrops(t *testing.T) {
	s := NewSim()
	nw := NewNetwork(s, 3)
	nw.AddLink(0, 1, Link{Latency: Millisecond, Bps: 1e9})
	delivered := false
	nw.Register(2, HandlerFunc(func(types.NodeID, any, int) { delivered = true }))
	nw.Send(0, 2, "x", 10)
	s.Run()
	if delivered {
		t.Error("message delivered to unreachable node")
	}
}

func TestChurnInvalidatesRoutes(t *testing.T) {
	s := NewSim()
	nw := NewNetwork(s, 3)
	nw.MsgOverhead = 0
	nw.AddLink(0, 1, Link{Latency: Millisecond, Bps: 1e12})
	nw.AddLink(1, 2, Link{Latency: Millisecond, Bps: 1e12})
	got := 0
	nw.Register(2, HandlerFunc(func(types.NodeID, any, int) { got++ }))
	nw.Send(0, 2, "x", 1)
	s.Run()
	if got != 1 {
		t.Fatalf("first send not delivered")
	}
	if !nw.RemoveLink(1, 2) {
		t.Fatal("RemoveLink failed")
	}
	nw.Send(0, 2, "x", 1)
	s.Run()
	if got != 1 {
		t.Error("message delivered after partition")
	}
	nw.AddLink(0, 2, Link{Latency: Millisecond, Bps: 1e12})
	nw.Send(0, 2, "x", 1)
	s.Run()
	if got != 2 {
		t.Error("message not delivered after healing")
	}
}

func TestByteAccounting(t *testing.T) {
	s := NewSim()
	nw := NewNetwork(s, 2)
	nw.AddLink(0, 1, Link{Latency: Millisecond, Bps: 1e9})
	nw.Register(1, HandlerFunc(func(types.NodeID, any, int) {}))
	nw.Register(0, HandlerFunc(func(types.NodeID, any, int) {}))
	nw.Send(0, 1, "x", 100)
	if nw.SentBytes[0] != 100+DefaultMsgOverhead {
		t.Errorf("sent bytes = %d, want %d", nw.SentBytes[0], 100+DefaultMsgOverhead)
	}
	// Self-sends are free.
	nw.Send(0, 0, "x", 100)
	if nw.SentBytes[0] != 100+DefaultMsgOverhead {
		t.Errorf("self-send charged: %d", nw.SentBytes[0])
	}
	nw.ResetAccounting()
	if nw.TotalBytes != 0 || nw.SentMsgs[0] != 0 {
		t.Error("reset incomplete")
	}
}

func TestSelfSendDelivered(t *testing.T) {
	s := NewSim()
	nw := NewNetwork(s, 1)
	got := false
	nw.Register(0, HandlerFunc(func(types.NodeID, any, int) { got = true }))
	nw.Send(0, 0, "x", 10)
	s.Run()
	if !got {
		t.Error("self-send not delivered")
	}
}

func TestDijkstraRandomGraphSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		s := NewSim()
		nw := NewNetwork(s, n)
		for i := 1; i < n; i++ {
			nw.AddLink(types.NodeID(i), types.NodeID(rng.Intn(i)),
				Link{Latency: Time(1+rng.Intn(50)) * Millisecond, Bps: 1e9})
		}
		u := types.NodeID(rng.Intn(n))
		v := types.NodeID(rng.Intn(n))
		lu, _ := nw.pathCost(u, v)
		lv, _ := nw.pathCost(v, u)
		if lu != lv {
			t.Fatalf("asymmetric latencies %v vs %v", lu, lv)
		}
	}
}
