package simnet

import (
	"fmt"
	"math/rand"

	"repro/internal/types"
)

// FaultPlan is a seeded, deterministic fault schedule applied to a
// Network: probabilistic per-delivery drop and duplication, uniform
// latency jitter (which reorders traffic relative to the deterministic
// path delay), time-windowed partitions with healing, and per-node crash
// windows (fail-pause: the node's state survives, everything to or from it
// is lost while it is down).
//
// The plan draws from one seeded RNG in event order, so a given (topology,
// workload, plan) triple replays bit-identically — the property the chaos
// equivalence fences and the `exspan -fault-seed` flag rely on. A plan is
// attached with Network.InstallFaults; a nil plan (the default) leaves the
// fault-free hot path untouched.
//
// Lost and duplicated deltas would permanently corrupt the count-based
// provenance state, so every workload run under a FaultPlan must route its
// traffic through the reliable transport endpoints (internal/transport);
// the core driver wires this automatically (core.Config.Faults).
type FaultPlan struct {
	// Seed feeds the plan's private RNG.
	Seed int64

	// Drop and Dup are per-delivery probabilities in [0, 1).
	Drop, Dup float64

	// Jitter is the maximum extra one-way latency, drawn uniformly per
	// transmission (and per duplicate). Non-zero jitter reorders messages
	// of equal path delay.
	Jitter Time

	// Partitions are scheduled cuts; each drops every delivery crossing
	// its side boundary during [Start, End).
	Partitions []Partition

	// Crashes are per-node fail-pause windows.
	Crashes []Crash

	// Counters (in addition to the Network's total DroppedMsgs).
	Dropped    int64 // probabilistic drops
	Duplicated int64
	Cut        int64 // partition and crash drops

	rng *rand.Rand
}

// Partition is one scheduled network cut: during [Start, End) every
// message with exactly one endpoint in Side is dropped. Healing is
// implicit — past End the cut no longer matches, and the reliable
// transport's retransmissions re-deliver what was lost.
type Partition struct {
	Start, End Time
	Side       []types.NodeID

	side map[types.NodeID]bool
}

// Crash is one fail-pause window for a node: while [Start, End) covers the
// current time, every message to or from the node is dropped. The node's
// engine and transport state survive (the durable-state story is ROADMAP
// item 4); on "restart" the reliable transport's retransmit timers resume
// the conversation, which stands in for base-tuple re-announcement.
type Crash struct {
	Node       types.NodeID
	Start, End Time
}

func (p *FaultPlan) init() {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed))
	}
	for i := range p.Partitions {
		pt := &p.Partitions[i]
		if pt.side == nil {
			pt.side = make(map[types.NodeID]bool, len(pt.Side))
			for _, n := range pt.Side {
				pt.side[n] = true
			}
		}
	}
}

// AddPartition schedules a cut at run time (tests build churn-phase
// partitions relative to the current virtual time).
func (p *FaultPlan) AddPartition(start, end Time, side ...types.NodeID) {
	p.Partitions = append(p.Partitions, Partition{Start: start, End: end, Side: side})
	p.init()
}

// AddCrash schedules a fail-pause window at run time.
func (p *FaultPlan) AddCrash(node types.NodeID, start, end Time) {
	p.Crashes = append(p.Crashes, Crash{Node: node, Start: start, End: end})
}

// Down reports whether a node is inside a crash window at time now.
func (p *FaultPlan) Down(node types.NodeID, now Time) bool {
	for i := range p.Crashes {
		c := &p.Crashes[i]
		if c.Node == node && now >= c.Start && now < c.End {
			return true
		}
	}
	return false
}

// cut reports whether a delivery from->to is severed at time now by a
// partition or by the receiver being crashed.
func (p *FaultPlan) cutNow(from, to types.NodeID, now Time) bool {
	for i := range p.Partitions {
		pt := &p.Partitions[i]
		if now >= pt.Start && now < pt.End && pt.side[from] != pt.side[to] {
			return true
		}
	}
	return p.Down(to, now)
}

func (p *FaultPlan) dropNow() bool { return p.Drop > 0 && p.rng.Float64() < p.Drop }
func (p *FaultPlan) dupNow() bool  { return p.Dup > 0 && p.rng.Float64() < p.Dup }

func (p *FaultPlan) jitter() Time {
	if p.Jitter <= 0 {
		return 0
	}
	return Time(p.rng.Int63n(int64(p.Jitter)))
}

// String summarizes the schedule for experiment output.
func (p *FaultPlan) String() string {
	return fmt.Sprintf("faults(seed=%d drop=%.3f dup=%.3f jitter=%.1fms partitions=%d crashes=%d)",
		p.Seed, p.Drop, p.Dup, float64(p.Jitter)/float64(Millisecond), len(p.Partitions), len(p.Crashes))
}
