package simnet

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/types"
)

// These tests are the simulator counterparts of the engine's hot-path
// fences: the steady-state send→deliver path must not allocate. The typed
// event union (no per-message closures), the 4-ary heap over a reusable
// backing array (no container/heap interface boxing), the flat handler
// slice and the lazy per-source route cache together make a delivered
// message cost zero heap objects once buffers are warm.

// warmPayload stands in for *engine.Message / *provquery.Msg: a pointer, so
// storing it in the event's `any` field never boxes.
type warmPayload struct{ n int }

func buildLine(n int) (*Sim, *Network) {
	s := NewSim()
	nw := NewNetwork(s, n)
	for i := 1; i < n; i++ {
		nw.AddLink(types.NodeID(i-1), types.NodeID(i), Link{Latency: Millisecond, Bps: 1e9})
	}
	return s, nw
}

func TestSendDeliverAllocFree(t *testing.T) {
	s, nw := buildLine(8)
	delivered := 0
	for i := 0; i < 8; i++ {
		nw.Register(types.NodeID(i), HandlerFunc(func(types.NodeID, any, int) { delivered++ }))
	}
	p := &warmPayload{}
	// Warm the event heap, route rows and scratch arrays.
	for i := 0; i < 64; i++ {
		nw.Send(0, 7, p, 100)
		nw.Send(3, 1, p, 50)
	}
	s.Run()
	allocs := testing.AllocsPerRun(200, func() {
		nw.Send(0, 7, p, 100)
		nw.Send(3, 1, p, 50)
		nw.Send(5, 5, p, 10) // self-delivery
		s.Run()
	})
	if delivered == 0 {
		t.Fatal("no messages delivered")
	}
	if allocs != 0 {
		t.Errorf("steady-state send→deliver allocated %.2f objects per run, want 0", allocs)
	}
}

// TestTimerEscapeHatchStillWorks pins the tagged union's second variant:
// func() events coexist with inline message events in one queue and honor
// the same (time, seq) order.
func TestTimerEscapeHatchStillWorks(t *testing.T) {
	s, nw := buildLine(2)
	var order []string
	nw.Register(1, HandlerFunc(func(types.NodeID, any, int) { order = append(order, "msg") }))
	nw.Send(0, 1, &warmPayload{}, 1) // arrives at ~1 ms
	s.At(2*Millisecond, func() { order = append(order, "timer") })
	s.Run()
	if len(order) != 2 || order[0] != "msg" || order[1] != "timer" {
		t.Fatalf("order = %v, want [msg timer]", order)
	}
}

// TestLazyRoutesRecomputePerSource verifies that churn only marks routes
// stale (a generation bump) and that each sender recomputes its own row on
// demand, keeping rows of silent nodes untouched.
func TestLazyRoutesRecomputePerSource(t *testing.T) {
	s, nw := buildLine(4)
	got := 0
	nw.Register(3, HandlerFunc(func(types.NodeID, any, int) { got++ }))
	nw.Send(0, 3, &warmPayload{}, 1)
	s.Run()
	if got != 1 {
		t.Fatal("first send not delivered")
	}
	gen := nw.topoGen
	if nw.routeGen[0] != gen {
		t.Fatalf("sender row at gen %d, topo at %d", nw.routeGen[0], gen)
	}
	if nw.routeLat[2] != nil {
		t.Error("silent node 2 has a computed route row")
	}
	// Churn: only the generation moves; no row is recomputed eagerly.
	nw.RemoveLink(1, 2)
	if nw.topoGen == gen {
		t.Fatal("RemoveLink did not bump the topology generation")
	}
	if nw.routeGen[0] == nw.topoGen {
		t.Error("churn eagerly refreshed a route row")
	}
	nw.Send(0, 3, &warmPayload{}, 1) // unreachable: dropped
	nw.AddLink(1, 2, Link{Latency: Millisecond, Bps: 1e9})
	nw.Send(0, 3, &warmPayload{}, 1)
	s.Run()
	if got != 2 {
		t.Fatalf("delivered %d messages, want 2 (one dropped during partition)", got)
	}
}

// TestUnreachableSendNotCharged is the regression fence for the accounting
// bug where a message dropped for unreachability was still charged to
// SentBytes/SentMsgs/TotalBytes and the bandwidth recorder.
func TestUnreachableSendNotCharged(t *testing.T) {
	s := NewSim()
	nw := NewNetwork(s, 3)
	nw.Recorder = stats.NewBandwidth(int64(Millisecond))
	nw.AddLink(0, 1, Link{Latency: Millisecond, Bps: 1e9})
	nw.Register(2, HandlerFunc(func(types.NodeID, any, int) { t.Error("unreachable message delivered") }))
	nw.Send(0, 2, "x", 100)
	s.Run()
	if nw.SentBytes[0] != 0 || nw.SentMsgs[0] != 0 || nw.TotalBytes != 0 {
		t.Errorf("dropped message charged: sentBytes=%d sentMsgs=%d total=%d, want all 0",
			nw.SentBytes[0], nw.SentMsgs[0], nw.TotalBytes)
	}
	if rec := nw.Recorder.TotalBytes(); rec != 0 {
		t.Errorf("dropped message recorded %d bytes of bandwidth, want 0", rec)
	}
	// A reachable send is still charged in full.
	nw.Send(0, 1, "x", 100)
	want := int64(100 + DefaultMsgOverhead)
	if nw.SentBytes[0] != want || nw.TotalBytes != want || nw.SentMsgs[0] != 1 {
		t.Errorf("reachable send charged %d/%d bytes %d msgs, want %d/%d/1",
			nw.SentBytes[0], nw.TotalBytes, nw.SentMsgs[0], want, want)
	}
	if rec := nw.Recorder.TotalBytes(); rec != want {
		t.Errorf("recorder has %d bytes, want %d", rec, want)
	}
}

// BenchmarkSimnetHeap exercises the scheduler alone: interleaved push/pop
// of message events through the 4-ary heap.
func BenchmarkSimnetHeap(b *testing.B) {
	s, nw := buildLine(16)
	for i := 0; i < 16; i++ {
		nw.Register(types.NodeID(i), HandlerFunc(func(types.NodeID, any, int) {}))
	}
	p := &warmPayload{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Send(types.NodeID(i%16), types.NodeID((i*7)%16), p, 64)
		if i%32 == 31 {
			s.Run()
		}
	}
	s.Run()
}
