package simnet

import (
	"sort"
	"testing"

	"repro/internal/types"
)

func twoNodeNet(t *testing.T) (*Sim, *Network) {
	t.Helper()
	s := NewSim()
	nw := NewNetwork(s, 2)
	nw.MsgOverhead = 0
	nw.AddLink(0, 1, Link{Latency: Millisecond, Bps: 1e12})
	return s, nw
}

// Satellite: the unreachable-destination drop used to be silent; now it is
// counted, and still charges nothing (pairs with TestUnreachableSendNotCharged).
func TestUnreachableSendCountsDrop(t *testing.T) {
	s := NewSim()
	nw := NewNetwork(s, 3)
	nw.AddLink(0, 1, Link{Latency: Millisecond, Bps: 1e9})
	nw.Send(0, 2, "x", 10)
	nw.Send(0, 2, "y", 10)
	s.Run()
	if nw.DroppedMsgs != 2 {
		t.Errorf("DroppedMsgs = %d, want 2", nw.DroppedMsgs)
	}
	if nw.SentBytes[0] != 0 || nw.SentMsgs[0] != 0 {
		t.Errorf("unreachable drop charged bandwidth: %d bytes, %d msgs", nw.SentBytes[0], nw.SentMsgs[0])
	}
}

func TestFaultDropChargesButNeverDelivers(t *testing.T) {
	s, nw := twoNodeNet(t)
	plan := &FaultPlan{Seed: 1, Drop: 1}
	nw.InstallFaults(plan)
	delivered := 0
	nw.Register(1, HandlerFunc(func(types.NodeID, any, int) { delivered++ }))
	for i := 0; i < 5; i++ {
		nw.Send(0, 1, "x", 100)
	}
	s.Run()
	if delivered != 0 {
		t.Errorf("delivered %d messages under Drop=1", delivered)
	}
	if nw.DroppedMsgs != 5 || plan.Dropped != 5 {
		t.Errorf("drop counters = (%d, %d), want (5, 5)", nw.DroppedMsgs, plan.Dropped)
	}
	// The datagrams left the sender before being lost: bandwidth is spent.
	if nw.SentBytes[0] != 500 {
		t.Errorf("sent bytes = %d, want 500 (drops happen on the wire, after charging)", nw.SentBytes[0])
	}
}

func TestFaultDuplicateDeliversExtraCopies(t *testing.T) {
	s, nw := twoNodeNet(t)
	plan := &FaultPlan{Seed: 2, Dup: 0.4}
	nw.InstallFaults(plan)
	delivered := 0
	nw.Register(1, HandlerFunc(func(types.NodeID, any, int) { delivered++ }))
	const N = 50
	for i := 0; i < N; i++ {
		nw.Send(0, 1, "x", 10)
	}
	s.Run()
	if plan.Duplicated == 0 {
		t.Fatal("Dup=0.4 over 50 sends duplicated nothing")
	}
	if int64(delivered) != N+plan.Duplicated {
		t.Errorf("delivered = %d, want %d originals + %d duplicates", delivered, N, plan.Duplicated)
	}
}

// TestFaultDeterministicReplay is the property the chaos equivalence fences
// stand on: the same (topology, workload, plan seed) triple produces the
// identical fault schedule, delivery order included.
func TestFaultDeterministicReplay(t *testing.T) {
	run := func() (int64, int64, []int) {
		s := NewSim()
		nw := NewNetwork(s, 2)
		nw.MsgOverhead = 0
		nw.AddLink(0, 1, Link{Latency: Millisecond, Bps: 1e12})
		plan := &FaultPlan{Seed: 7, Drop: 0.3, Dup: 0.2, Jitter: 2 * Millisecond}
		nw.InstallFaults(plan)
		var order []int
		nw.Register(1, HandlerFunc(func(_ types.NodeID, payload any, _ int) {
			order = append(order, payload.(int))
		}))
		for i := 0; i < 100; i++ {
			nw.Send(0, 1, i, 10)
		}
		s.Run()
		return plan.Dropped, plan.Duplicated, order
	}
	d1, u1, o1 := run()
	d2, u2, o2 := run()
	if d1 != d2 || u1 != u2 {
		t.Fatalf("fault counters differ across replays: (%d,%d) vs (%d,%d)", d1, u1, d2, u2)
	}
	if len(o1) != len(o2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("delivery order diverges at %d: %d vs %d", i, o1[i], o2[i])
		}
	}
}

func TestJitterReordersEqualPathMessages(t *testing.T) {
	s, nw := twoNodeNet(t)
	nw.InstallFaults(&FaultPlan{Seed: 3, Jitter: 5 * Millisecond})
	var order []int
	nw.Register(1, HandlerFunc(func(_ types.NodeID, payload any, _ int) {
		order = append(order, payload.(int))
	}))
	const N = 20
	for i := 0; i < N; i++ {
		nw.Send(0, 1, i, 10)
	}
	s.Run()
	if len(order) != N {
		t.Fatalf("delivered %d, want %d (jitter must not lose messages)", len(order), N)
	}
	if sort.IntsAreSorted(order) {
		t.Error("jittered deliveries arrived in send order; no reorder was exercised")
	}
	perm := append([]int(nil), order...)
	sort.Ints(perm)
	for i, v := range perm {
		if v != i {
			t.Fatalf("deliveries are not a permutation of sends: %v", order)
		}
	}
}

func TestPartitionCutsThenHeals(t *testing.T) {
	s, nw := twoNodeNet(t)
	plan := &FaultPlan{Seed: 4}
	plan.AddPartition(10*Millisecond, 20*Millisecond, 0)
	nw.InstallFaults(plan)
	delivered := 0
	nw.Register(1, HandlerFunc(func(types.NodeID, any, int) { delivered++ }))
	s.At(15*Millisecond, func() { nw.Send(0, 1, "cut", 10) })
	s.At(25*Millisecond, func() { nw.Send(0, 1, "healed", 10) })
	s.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d, want only the post-heal message", delivered)
	}
	if plan.Cut != 1 || nw.DroppedMsgs != 1 {
		t.Errorf("cut counters = (%d, %d), want (1, 1)", plan.Cut, nw.DroppedMsgs)
	}
}

func TestCrashWindowSilencesNodeBothWays(t *testing.T) {
	s, nw := twoNodeNet(t)
	plan := &FaultPlan{Seed: 5}
	plan.AddCrash(1, 10*Millisecond, 20*Millisecond)
	nw.InstallFaults(plan)
	got0, got1 := 0, 0
	nw.Register(0, HandlerFunc(func(types.NodeID, any, int) { got0++ }))
	nw.Register(1, HandlerFunc(func(types.NodeID, any, int) { got1++ }))
	s.At(12*Millisecond, func() {
		nw.Send(0, 1, "to crashed", 10)   // lost at delivery: receiver is down
		nw.Send(1, 0, "from crashed", 10) // lost at send: a dead node emits nothing
	})
	s.At(25*Millisecond, func() {
		nw.Send(0, 1, "to restarted", 10)
		nw.Send(1, 0, "from restarted", 10)
	})
	s.Run()
	if got1 != 1 || got0 != 1 {
		t.Errorf("deliveries = (%d to 1, %d to 0), want (1, 1)", got1, got0)
	}
	if plan.Cut != 2 || nw.DroppedMsgs != 2 {
		t.Errorf("cut counters = (%d, %d), want (2, 2)", plan.Cut, nw.DroppedMsgs)
	}
	// The inbound loss was charged (it reached the wire); the outbound
	// send from the crashed node never was.
	if nw.SentBytes[1] != 10 {
		t.Errorf("sent bytes from crashed node = %d, want 10 (post-restart only)", nw.SentBytes[1])
	}
}

// TestOnIdleInterleavesWithPendingTimers pins the quiescence contract the
// reliable transport's retransmit timers rely on: OnIdle fires whenever no
// message events are queued, even while future timers (retransmissions,
// scripted churn) remain pending, and traffic produced by a timer defers
// the next OnIdle until it drains.
func TestOnIdleInterleavesWithPendingTimers(t *testing.T) {
	s, nw := twoNodeNet(t)
	delivered := 0
	nw.Register(1, HandlerFunc(func(types.NodeID, any, int) { delivered++ }))
	s.At(10*Millisecond, func() { nw.Send(0, 1, "a", 1) })
	s.At(30*Millisecond, func() { nw.Send(0, 1, "b", 1) })
	var idleAt []Time
	s.OnIdle = func() bool { idleAt = append(idleAt, s.Now()); return false }
	s.Run()
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2", delivered)
	}
	// Idle points: before the first timer (t=0), after "a" drains but with
	// the t=30ms timer still queued (t=11ms), and at the end (t=31ms).
	want := []Time{0, 11 * Millisecond, 31 * Millisecond}
	if len(idleAt) != len(want) {
		t.Fatalf("OnIdle fired at %v, want %v", idleAt, want)
	}
	for i := range want {
		if idleAt[i] != want[i] {
			t.Fatalf("OnIdle fired at %v, want %v", idleAt, want)
		}
	}
}

// TestOnIdleReleasedWorkRunsBeforePendingTimer: work released at an idle
// point (staged re-derivations in the engine) is processed to completion
// before the clock advances to the next pending timer.
func TestOnIdleReleasedWorkRunsBeforePendingTimer(t *testing.T) {
	s, nw := twoNodeNet(t)
	var order []string
	nw.Register(1, HandlerFunc(func(_ types.NodeID, payload any, _ int) {
		order = append(order, payload.(string))
	}))
	s.At(50*Millisecond, func() { order = append(order, "timer") })
	released := false
	s.OnIdle = func() bool {
		if released {
			return false
		}
		released = true
		nw.Send(0, 1, "released", 1)
		return true
	}
	s.Run()
	if len(order) != 2 || order[0] != "released" || order[1] != "timer" {
		t.Fatalf("order = %v, want released work delivered before the pending timer", order)
	}
}
