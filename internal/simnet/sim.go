// Package simnet is a discrete-event network simulator: the substrate that
// stands in for ns-3 in the original ExSPAN prototype. It provides a
// virtual clock, an event queue, link latency/bandwidth modelling and
// per-node byte accounting, which together reproduce the quantities the
// paper's evaluation measures (communication cost to fixpoint, bandwidth
// over time, query completion latency).
package simnet

import (
	"repro/internal/types"
)

// Time is virtual time in nanoseconds.
type Time int64

// Convenient durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds renders t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a typed tagged union. Message deliveries — the overwhelming
// majority of scheduled work in a fixpoint run — carry their fields inline
// so the send→deliver path never allocates a closure; timers keep the
// func() escape hatch for experiment scripts and topology injection.
type event struct {
	at      Time
	seq     int64
	payload any
	fn      func()
	nw      *Network
	from    types.NodeID
	to      types.NodeID
	size    int32
	// kind discriminates the union: evTimer runs fn, evMessage delivers
	// (from, to, payload, size) through nw. Field order keeps the struct at
	// 64 bytes — it is copied on every heap sift and cleared on every pop.
	kind uint8
}

const (
	evTimer uint8 = iota
	evMessage
)

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Sim is the discrete-event scheduler. It is single-threaded: handlers run
// one at a time in virtual-time order (FIFO for equal timestamps).
//
// The queue is a 4-ary implicit heap over one reusable backing array:
// shallower than a binary heap (fewer cache lines touched per sift) and,
// unlike container/heap, free of the per-push interface boxing that used to
// charge one allocation to every scheduled message.
type Sim struct {
	now    Time
	seq    int64
	events []event
	steps  int64

	// msgCount tracks queued message-delivery events. Zero means no
	// protocol traffic is in flight — the cluster-quiescence signal OnIdle
	// keys on — even while future timer events (experiment scripts, churn
	// batches) remain queued.
	msgCount int

	// OnIdle, when set, is invoked at every protocol-quiescence point: when
	// no message events remain queued (future timers may still be pending —
	// they carry scripted work, not in-flight traffic) and before the clock
	// advances to the next timer or the run returns. It must return true
	// only when it produced new work (scheduled events or made progress
	// that can lead to them); Run and RunUntil then resume the event loop.
	// The engine drivers use it to release staged re-derivations of the
	// retraction protocol, which are only sound to apply once no deletion
	// messages remain in flight anywhere (see ARCHITECTURE.md "Deletion
	// semantics").
	OnIdle func() bool
}

// NewSim creates an empty simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Steps reports the number of events executed so far.
func (s *Sim) Steps() int64 { return s.steps }

// push inserts e into the 4-ary heap, sifting up.
//
//exspan:hotpath
func (s *Sim) push(e event) {
	s.events = append(s.events, e)
	i := len(s.events) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(&s.events[i], &s.events[parent]) {
			break
		}
		s.events[i], s.events[parent] = s.events[parent], s.events[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the backing array never pins payloads or closures.
//
//exspan:hotpath
func (s *Sim) pop() event {
	ev := s.events
	top := ev[0]
	n := len(ev) - 1
	ev[0] = ev[n]
	ev[n] = event{}
	ev = ev[:n]
	s.events = ev
	// Sift down: move the smallest of up to four children up.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&ev[c], &ev[min]) {
				min = c
			}
		}
		if !eventLess(&ev[min], &ev[i]) {
			break
		}
		ev[i], ev[min] = ev[min], ev[i]
		i = min
	}
	return top
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, kind: evTimer, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// scheduleMessage enqueues a message-delivery event with its fields inline:
// no closure, no boxing (payload is a pointer in every production caller).
//
//exspan:hotpath
func (s *Sim) scheduleMessage(t Time, nw *Network, from, to types.NodeID, payload any, size int) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.msgCount++
	s.push(event{at: t, seq: s.seq, kind: evMessage, from: from, to: to, size: int32(size), payload: payload, nw: nw})
}

// dispatch executes one popped event.
//
//exspan:hotpath
func (s *Sim) dispatch(e *event) {
	if e.kind == evMessage {
		e.nw.deliver(e.from, e.to, e.payload, int(e.size))
	} else {
		e.fn()
	}
}

// Run executes events until the queue is empty (a distributed fixpoint for
// protocols without timers) and returns the final virtual time. When an
// OnIdle hook is installed it runs at every protocol-quiescence point: no
// message events queued, before the next timer dispatches and before the
// run returns; the loop resumes while the hook keeps producing work.
func (s *Sim) Run() Time {
	for {
		for len(s.events) > 0 {
			if s.msgCount == 0 && s.OnIdle != nil && s.OnIdle() {
				continue // released work may have scheduled messages at now
			}
			e := s.pop()
			if e.kind == evMessage {
				s.msgCount--
			}
			s.now = e.at
			s.steps++
			s.dispatch(&e)
		}
		if s.OnIdle == nil || !s.OnIdle() {
			return s.now
		}
	}
}

// RunUntil executes events with timestamps <= deadline and then sets the
// clock to the deadline. Remaining events stay queued. The OnIdle hook runs
// at interior protocol-quiescence points (no messages in flight, even with
// future timers queued), so time-bounded experiment runs observe the same
// release discipline as Run.
func (s *Sim) RunUntil(deadline Time) {
	for {
		for len(s.events) > 0 && s.events[0].at <= deadline {
			if s.msgCount == 0 && s.OnIdle != nil && s.OnIdle() {
				continue
			}
			e := s.pop()
			if e.kind == evMessage {
				s.msgCount--
			}
			s.now = e.at
			s.steps++
			s.dispatch(&e)
		}
		// Remaining message events are all beyond the deadline (traffic
		// still in flight): not quiescent, stop. Only-timer remainders are
		// quiescent — offer the hook before snapshotting at the deadline.
		if s.msgCount > 0 || s.OnIdle == nil || !s.OnIdle() {
			break
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports whether undelivered events remain.
func (s *Sim) Pending() bool { return len(s.events) > 0 }

// Handler consumes messages delivered by the network.
type Handler interface {
	// HandleMessage is invoked when a message from another node arrives.
	// payload is the in-memory form; size is its modelled wire size in
	// bytes (identical to the UDP datagram size in deployment mode).
	// The payload is only valid for the duration of the call: the
	// transport that owns the message may recycle it once the handler
	// returns (see the Message/Msg pools in engine and provquery).
	HandleMessage(from types.NodeID, payload any, size int)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from types.NodeID, payload any, size int)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from types.NodeID, payload any, size int) { f(from, payload, size) }
