// Package simnet is a discrete-event network simulator: the substrate that
// stands in for ns-3 in the original ExSPAN prototype. It provides a
// virtual clock, an event queue, link latency/bandwidth modelling and
// per-node byte accounting, which together reproduce the quantities the
// paper's evaluation measures (communication cost to fixpoint, bandwidth
// over time, query completion latency).
package simnet

import (
	"container/heap"

	"repro/internal/types"
)

// Time is virtual time in nanoseconds.
type Time int64

// Convenient durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds renders t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Sim is the discrete-event scheduler. It is single-threaded: handlers run
// one at a time in virtual-time order (FIFO for equal timestamps).
type Sim struct {
	now    Time
	seq    int64
	events eventHeap
	steps  int64
}

// NewSim creates an empty simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Steps reports the number of events executed so far.
func (s *Sim) Steps() int64 { return s.steps }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the queue is empty (a distributed fixpoint for
// protocols without timers) and returns the final virtual time.
func (s *Sim) Run() Time {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.steps++
		e.fn()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline and then sets the
// clock to the deadline. Remaining events stay queued.
func (s *Sim) RunUntil(deadline Time) {
	for len(s.events) > 0 && s.events[0].at <= deadline {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.steps++
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports whether undelivered events remain.
func (s *Sim) Pending() bool { return len(s.events) > 0 }

// Handler consumes messages delivered by the network.
type Handler interface {
	// HandleMessage is invoked when a message from another node arrives.
	// payload is the in-memory form; size is its modelled wire size in
	// bytes (identical to the UDP datagram size in deployment mode).
	HandleMessage(from types.NodeID, payload any, size int)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from types.NodeID, payload any, size int)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from types.NodeID, payload any, size int) { f(from, payload, size) }
