package simnet

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/types"
)

// Link describes one bidirectional physical link.
type Link struct {
	Latency Time  // one-way propagation delay
	Bps     int64 // bandwidth in bits per second
}

type edge struct{ u, v types.NodeID }

func mkEdge(u, v types.NodeID) edge {
	if u > v {
		u, v = v, u
	}
	return edge{u, v}
}

// neighbor is one adjacency entry with the link parameters inlined, so
// Dijkstra's inner loop walks a flat slice instead of hitting the links map
// once per edge.
type neighbor struct {
	to  types.NodeID
	lat Time
	bps int64
}

// Network models the physical substrate: nodes joined by links with latency
// and bandwidth. Messages between non-adjacent nodes (provenance queries
// are node-to-node at the IP layer) follow the minimum-latency path; the
// transmission delay uses the bottleneck bandwidth along that path.
type Network struct {
	sim      *Sim
	n        int
	links    map[edge]Link
	adj      [][]neighbor // indexed by NodeID
	handlers []Handler    // indexed by NodeID

	// Route caches are per-source and lazy: a topology change only bumps
	// topoGen, and a source's row is recomputed by Dijkstra on its next
	// send. Under churn this replaces the old eager all-pairs recompute
	// with one single-source run per node that actually transmits.
	routeLat [][]Time  // per source; nil until first used
	routeBps [][]int64 // per source; nil until first used
	routeGen []uint64  // topoGen the source's row was computed at (0 = never)
	topoGen  uint64

	// Dijkstra scratch, reused across recomputes.
	djDone []bool
	djHeap []dijkstraItem

	// Accounting.
	SentBytes   []int64 // per sending node
	RecvBytes   []int64 // per receiving node
	SentMsgs    []int64
	TotalBytes  int64
	Recorder    *stats.Bandwidth // optional time-bucketed recorder
	MsgOverhead int              // fixed per-message header bytes (UDP-era 28B IP+UDP)

	// DroppedMsgs counts every message the network discarded instead of
	// delivering: sends to unreachable destinations (churned-away routes),
	// and — under an installed FaultPlan — injected drops, partition cuts
	// and crash windows. It was previously a silent code path; experiment
	// output surfaces it so loss is never invisible in byte accounting.
	DroppedMsgs int64

	faults *FaultPlan
}

// DefaultMsgOverhead is the per-datagram header cost charged to every
// message: a 20-byte IPv4 header plus an 8-byte UDP header, matching the
// deployment transport.
const DefaultMsgOverhead = 28

// NewNetwork creates a network of n nodes with no links.
func NewNetwork(sim *Sim, n int) *Network {
	return &Network{
		sim:         sim,
		n:           n,
		links:       make(map[edge]Link),
		adj:         make([][]neighbor, n),
		handlers:    make([]Handler, n),
		routeLat:    make([][]Time, n),
		routeBps:    make([][]int64, n),
		routeGen:    make([]uint64, n),
		topoGen:     1,
		SentBytes:   make([]int64, n),
		RecvBytes:   make([]int64, n),
		SentMsgs:    make([]int64, n),
		MsgOverhead: DefaultMsgOverhead,
	}
}

// Sim returns the simulator driving this network.
func (nw *Network) Sim() *Sim { return nw.sim }

// InstallFaults attaches a fault schedule to the network (nil removes it).
// Faults apply only to inter-node traffic; self-deliveries are local
// events and never touch the wire.
func (nw *Network) InstallFaults(p *FaultPlan) {
	if p != nil {
		p.init()
	}
	nw.faults = p
}

// Faults returns the installed fault schedule, if any.
func (nw *Network) Faults() *FaultPlan { return nw.faults }

// NumNodes reports the number of nodes.
func (nw *Network) NumNodes() int { return nw.n }

// Register installs the message handler for a node.
func (nw *Network) Register(node types.NodeID, h Handler) { nw.handlers[node] = h }

// AddLink installs (or replaces) the bidirectional link u-v.
func (nw *Network) AddLink(u, v types.NodeID, l Link) {
	e := mkEdge(u, v)
	if _, exists := nw.links[e]; exists {
		nw.setNeighbor(u, v, l)
		nw.setNeighbor(v, u, l)
	} else {
		nw.adj[u] = append(nw.adj[u], neighbor{to: v, lat: l.Latency, bps: l.Bps})
		nw.adj[v] = append(nw.adj[v], neighbor{to: u, lat: l.Latency, bps: l.Bps})
	}
	nw.links[e] = l
	nw.topoGen++
}

func (nw *Network) setNeighbor(u, v types.NodeID, l Link) {
	list := nw.adj[u]
	for i := range list {
		if list[i].to == v {
			list[i].lat, list[i].bps = l.Latency, l.Bps
			return
		}
	}
}

// RemoveLink removes the bidirectional link u-v; it reports whether the
// link existed.
func (nw *Network) RemoveLink(u, v types.NodeID) bool {
	e := mkEdge(u, v)
	if _, ok := nw.links[e]; !ok {
		return false
	}
	delete(nw.links, e)
	nw.adj[u] = removeNeighbor(nw.adj[u], v)
	nw.adj[v] = removeNeighbor(nw.adj[v], u)
	nw.topoGen++
	return true
}

// removeNeighbor swap-deletes the entry for x. Adjacency order is not part
// of the simulator's contract (routing orders by latency, FIFO ties by
// scheduling sequence), so the O(1) delete is safe.
func removeNeighbor(list []neighbor, x types.NodeID) []neighbor {
	for i := range list {
		if list[i].to == x {
			last := len(list) - 1
			list[i] = list[last]
			list[last] = neighbor{}
			return list[:last]
		}
	}
	return list
}

// HasLink reports whether a direct link u-v exists.
func (nw *Network) HasLink(u, v types.NodeID) bool {
	_, ok := nw.links[mkEdge(u, v)]
	return ok
}

// Neighbors appends the direct neighbors of u to dst and returns it.
func (nw *Network) Neighbors(u types.NodeID, dst []types.NodeID) []types.NodeID {
	for _, nb := range nw.adj[u] {
		dst = append(dst, nb.to)
	}
	return dst
}

// NumLinks reports the number of installed links.
func (nw *Network) NumLinks() int { return len(nw.links) }

// Send transmits payload (with modelled size bytes) from one node to
// another, delivering it after the path's propagation and transmission
// delay. Messages to self are delivered after a fixed small local delay.
//
//exspan:hotpath
func (nw *Network) Send(from, to types.NodeID, payload any, size int) {
	total := size + nw.MsgOverhead
	var delay Time
	if from == to {
		// Self-deliveries are local events: they never reach the wire and
		// cost no bandwidth, mirroring RapidNet local event dispatch.
		delay = 10 * Microsecond
	} else {
		lat, bps := nw.pathCost(from, to)
		if bps <= 0 {
			// Unreachable right now (e.g. under churn): drop, as UDP would.
			// Nothing was put on the wire, so nothing is charged.
			nw.DroppedMsgs++
			return
		}
		if f := nw.faults; f != nil {
			if f.Down(from, nw.sim.now) {
				// A crashed sender emits nothing: the send never happened.
				nw.DroppedMsgs++
				f.Cut++
				return
			}
			delay = f.jitter()
		}
		nw.SentBytes[from] += int64(total)
		nw.SentMsgs[from]++
		nw.TotalBytes += int64(total)
		if nw.Recorder != nil {
			nw.Recorder.Record(int64(nw.sim.Now()), int64(total))
		}
		delay += lat + Time(int64(total)*8*int64(Second)/bps)
	}
	nw.sim.scheduleMessage(nw.sim.now+delay, nw, from, to, payload, total)
}

// deliver hands a scheduled message to its destination handler. Under an
// installed FaultPlan this is the loss point: the message consumed
// bandwidth (charged at send time, as on a real wire), and is now dropped,
// duplicated or delivered according to the schedule.
//
//exspan:hotpath
func (nw *Network) deliver(from, to types.NodeID, payload any, size int) {
	if f := nw.faults; f != nil && from != to {
		if f.cutNow(from, to, nw.sim.now) {
			nw.DroppedMsgs++
			f.Cut++
			return
		}
		if f.dropNow() {
			nw.DroppedMsgs++
			f.Dropped++
			return
		}
		if f.dupNow() {
			// The copy re-enters deliver at its own arrival time, where the
			// schedule rolls for it again (it may be cut, re-duplicated...).
			f.Duplicated++
			nw.sim.scheduleMessage(nw.sim.now+Microsecond+f.jitter(), nw, from, to, payload, size)
		}
	}
	h := nw.handlers[to]
	if h == nil {
		return
	}
	if from != to {
		nw.RecvBytes[to] += int64(size)
	}
	h.HandleMessage(from, payload, size)
}

// pathCost returns (latency, bottleneck bandwidth) of the minimum-latency
// path between two nodes, or (0, 0) when unreachable. The source's route
// row is recomputed on demand when stale.
func (nw *Network) pathCost(u, v types.NodeID) (Time, int64) {
	if nw.routeGen[u] != nw.topoGen {
		nw.dijkstraFrom(u)
		nw.routeGen[u] = nw.topoGen
	}
	return nw.routeLat[u][v], nw.routeBps[u][v]
}

type dijkstraItem struct {
	node types.NodeID
	dist Time
}

// djPush/djPop implement a concrete-typed binary heap on the reusable
// scratch slice (container/heap would box every item through `any`).
func djPush(h []dijkstraItem, it dijkstraItem) []dijkstraItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].dist <= h[i].dist {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func djPop(h []dijkstraItem) (dijkstraItem, []dijkstraItem) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && h[r].dist < h[l].dist {
			min = r
		}
		if h[i].dist <= h[min].dist {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top, h
}

// dijkstraFrom recomputes the minimum-latency routes of a single source
// into its (reused) route row, using per-Network scratch arrays. Churn thus
// costs one single-source run per sender instead of an eager all-pairs
// recompute per topology change.
func (nw *Network) dijkstraFrom(src types.NodeID) {
	const inf = Time(1) << 62
	lat, bps := nw.routeLat[src], nw.routeBps[src]
	if lat == nil {
		lat = make([]Time, nw.n)
		bps = make([]int64, nw.n)
		nw.routeLat[src], nw.routeBps[src] = lat, bps
	}
	if nw.djDone == nil {
		nw.djDone = make([]bool, nw.n)
	}
	done := nw.djDone
	for i := range lat {
		lat[i] = inf
		bps[i] = 0
		done[i] = false
	}
	lat[src] = 0
	bps[src] = 1 << 62
	h := append(nw.djHeap[:0], dijkstraItem{src, 0})
	for len(h) > 0 {
		var it dijkstraItem
		it, h = djPop(h)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, nb := range nw.adj[u] {
			nd := lat[u] + nb.lat
			if nd < lat[nb.to] {
				lat[nb.to] = nd
				bps[nb.to] = minBps(bps[u], nb.bps)
				h = djPush(h, dijkstraItem{nb.to, nd})
			}
		}
	}
	nw.djHeap = h[:0]
	for i := range lat {
		if lat[i] == inf {
			lat[i] = 0
			bps[i] = 0
		}
	}
}

func minBps(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// AvgSentMB reports the per-node average of bytes sent, in megabytes.
func (nw *Network) AvgSentMB() float64 {
	return float64(nw.TotalBytes) / float64(nw.n) / 1e6
}

// ResetAccounting zeroes all byte counters (used between the fixpoint phase
// and the query phase of an experiment).
func (nw *Network) ResetAccounting() {
	for i := range nw.SentBytes {
		nw.SentBytes[i] = 0
		nw.RecvBytes[i] = 0
		nw.SentMsgs[i] = 0
	}
	nw.TotalBytes = 0
}

// String summarizes the network.
func (nw *Network) String() string {
	return fmt.Sprintf("simnet(%d nodes, %d links)", nw.n, len(nw.links))
}
