package simnet

import (
	"container/heap"
	"fmt"

	"repro/internal/stats"
	"repro/internal/types"
)

// Link describes one bidirectional physical link.
type Link struct {
	Latency Time  // one-way propagation delay
	Bps     int64 // bandwidth in bits per second
}

type edge struct{ u, v types.NodeID }

func mkEdge(u, v types.NodeID) edge {
	if u > v {
		u, v = v, u
	}
	return edge{u, v}
}

// Network models the physical substrate: nodes joined by links with latency
// and bandwidth. Messages between non-adjacent nodes (provenance queries
// are node-to-node at the IP layer) follow the minimum-latency path; the
// transmission delay uses the bottleneck bandwidth along that path.
type Network struct {
	sim      *Sim
	n        int
	links    map[edge]Link
	adj      map[types.NodeID][]types.NodeID
	handlers map[types.NodeID]Handler

	// routes caches minimum-latency path data; invalidated on topology
	// changes (churn).
	routeLat   [][]Time
	routeBps   [][]int64
	routeDirty bool

	// Accounting.
	SentBytes   []int64 // per sending node
	RecvBytes   []int64 // per receiving node
	SentMsgs    []int64
	TotalBytes  int64
	Recorder    *stats.Bandwidth // optional time-bucketed recorder
	MsgOverhead int              // fixed per-message header bytes (UDP-era 28B IP+UDP)
}

// DefaultMsgOverhead is the per-datagram header cost charged to every
// message: a 20-byte IPv4 header plus an 8-byte UDP header, matching the
// deployment transport.
const DefaultMsgOverhead = 28

// NewNetwork creates a network of n nodes with no links.
func NewNetwork(sim *Sim, n int) *Network {
	return &Network{
		sim:         sim,
		n:           n,
		links:       make(map[edge]Link),
		adj:         make(map[types.NodeID][]types.NodeID),
		handlers:    make(map[types.NodeID]Handler),
		SentBytes:   make([]int64, n),
		RecvBytes:   make([]int64, n),
		SentMsgs:    make([]int64, n),
		routeDirty:  true,
		MsgOverhead: DefaultMsgOverhead,
	}
}

// Sim returns the simulator driving this network.
func (nw *Network) Sim() *Sim { return nw.sim }

// NumNodes reports the number of nodes.
func (nw *Network) NumNodes() int { return nw.n }

// Register installs the message handler for a node.
func (nw *Network) Register(node types.NodeID, h Handler) { nw.handlers[node] = h }

// AddLink installs (or replaces) the bidirectional link u-v.
func (nw *Network) AddLink(u, v types.NodeID, l Link) {
	e := mkEdge(u, v)
	if _, exists := nw.links[e]; !exists {
		nw.adj[u] = append(nw.adj[u], v)
		nw.adj[v] = append(nw.adj[v], u)
	}
	nw.links[e] = l
	nw.routeDirty = true
}

// RemoveLink removes the bidirectional link u-v; it reports whether the
// link existed.
func (nw *Network) RemoveLink(u, v types.NodeID) bool {
	e := mkEdge(u, v)
	if _, ok := nw.links[e]; !ok {
		return false
	}
	delete(nw.links, e)
	nw.adj[u] = removeNode(nw.adj[u], v)
	nw.adj[v] = removeNode(nw.adj[v], u)
	nw.routeDirty = true
	return true
}

func removeNode(list []types.NodeID, x types.NodeID) []types.NodeID {
	for i, n := range list {
		if n == x {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// HasLink reports whether a direct link u-v exists.
func (nw *Network) HasLink(u, v types.NodeID) bool {
	_, ok := nw.links[mkEdge(u, v)]
	return ok
}

// Neighbors returns the direct neighbors of u. Callers must not mutate the
// returned slice.
func (nw *Network) Neighbors(u types.NodeID) []types.NodeID { return nw.adj[u] }

// NumLinks reports the number of installed links.
func (nw *Network) NumLinks() int { return len(nw.links) }

// Send transmits payload (with modelled size bytes) from one node to
// another, delivering it after the path's propagation and transmission
// delay. Messages to self are delivered after a fixed small local delay.
func (nw *Network) Send(from, to types.NodeID, payload any, size int) {
	total := size + nw.MsgOverhead
	if from != to {
		// Self-deliveries are local events: they never reach the wire and
		// cost no bandwidth, mirroring RapidNet local event dispatch.
		nw.SentBytes[from] += int64(total)
		nw.SentMsgs[from]++
		nw.TotalBytes += int64(total)
		if nw.Recorder != nil {
			nw.Recorder.Record(int64(nw.sim.Now()), int64(total))
		}
	}
	var delay Time
	if from == to {
		delay = 10 * Microsecond
	} else {
		lat, bps := nw.pathCost(from, to)
		if bps <= 0 {
			// Unreachable right now (e.g. under churn): drop, as UDP would.
			return
		}
		delay = lat + Time(int64(total)*8*int64(Second)/bps)
	}
	nw.sim.After(delay, func() {
		if h, ok := nw.handlers[to]; ok {
			if from != to {
				nw.RecvBytes[to] += int64(total)
			}
			h.HandleMessage(from, payload, total)
		}
	})
}

// pathCost returns (latency, bottleneck bandwidth) of the minimum-latency
// path between two nodes, or (0, 0) when unreachable.
func (nw *Network) pathCost(u, v types.NodeID) (Time, int64) {
	if nw.routeDirty {
		nw.recomputeRoutes()
	}
	return nw.routeLat[u][v], nw.routeBps[u][v]
}

// recomputeRoutes runs Dijkstra (on latency) from every node. Topologies in
// the paper's experiments are a few hundred nodes with a few hundred links,
// so all-pairs recomputation on churn is affordable.
func (nw *Network) recomputeRoutes() {
	nw.routeLat = make([][]Time, nw.n)
	nw.routeBps = make([][]int64, nw.n)
	for i := 0; i < nw.n; i++ {
		lat, bps := nw.dijkstra(types.NodeID(i))
		nw.routeLat[i] = lat
		nw.routeBps[i] = bps
	}
	nw.routeDirty = false
}

type dijkstraItem struct {
	node types.NodeID
	dist Time
}

type dijkstraHeap []dijkstraItem

func (h dijkstraHeap) Len() int           { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *dijkstraHeap) Push(x any)        { *h = append(*h, x.(dijkstraItem)) }
func (h *dijkstraHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

func (nw *Network) dijkstra(src types.NodeID) ([]Time, []int64) {
	const inf = Time(1) << 62
	lat := make([]Time, nw.n)
	bps := make([]int64, nw.n)
	done := make([]bool, nw.n)
	for i := range lat {
		lat[i] = inf
	}
	lat[src] = 0
	bps[src] = 1 << 62
	h := dijkstraHeap{{src, 0}}
	for len(h) > 0 {
		it := heap.Pop(&h).(dijkstraItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, v := range nw.adj[u] {
			l := nw.links[mkEdge(u, v)]
			nd := lat[u] + l.Latency
			if nd < lat[v] {
				lat[v] = nd
				bps[v] = minBps(bps[u], l.Bps)
				heap.Push(&h, dijkstraItem{v, nd})
			}
		}
	}
	for i := range lat {
		if lat[i] == inf {
			lat[i] = 0
			bps[i] = 0
		}
	}
	return lat, bps
}

func minBps(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// AvgSentMB reports the per-node average of bytes sent, in megabytes.
func (nw *Network) AvgSentMB() float64 {
	return float64(nw.TotalBytes) / float64(nw.n) / 1e6
}

// ResetAccounting zeroes all byte counters (used between the fixpoint phase
// and the query phase of an experiment).
func (nw *Network) ResetAccounting() {
	for i := range nw.SentBytes {
		nw.SentBytes[i] = 0
		nw.RecvBytes[i] = 0
		nw.SentMsgs[i] = 0
	}
	nw.TotalBytes = 0
}

// String summarizes the network.
func (nw *Network) String() string {
	return fmt.Sprintf("simnet(%d nodes, %d links)", nw.n, len(nw.links))
}
