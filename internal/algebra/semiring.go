package algebra

import (
	"sort"
	"sync"

	"repro/internal/bdd"
	"repro/internal/types"
)

// Semiring supplies the operations needed to evaluate a provenance
// polynomial in a particular domain. It mirrors the paper's three
// user-defined functions: FromBase plays f_pEDB, Add plays the "+" of
// f_pIDB, and Mul plays the "·" of f_pRULE.
type Semiring[T any] struct {
	Zero     func() T
	One      func() T
	FromBase func(Base) T
	Add      func(T, T) T
	Mul      func(T, T) T
}

// Eval folds the polynomial in the given semiring.
func Eval[T any](e *Expr, s Semiring[T]) T {
	switch e.Op {
	case OpZero:
		return s.Zero()
	case OpOne:
		return s.One()
	case OpBase:
		return s.FromBase(e.Base)
	case OpSum:
		acc := s.Zero()
		for _, k := range e.Kids {
			acc = s.Add(acc, Eval(k, s))
		}
		return acc
	case OpProd:
		acc := s.One()
		for _, k := range e.Kids {
			acc = s.Mul(acc, Eval(k, s))
		}
		return acc
	}
	return s.Zero()
}

// Counting is the natural-numbers semiring: it computes the number of
// distinct derivations of a tuple (the paper's #Derivations query).
func Counting() Semiring[int64] {
	return Semiring[int64]{
		Zero:     func() int64 { return 0 },
		One:      func() int64 { return 1 },
		FromBase: func(Base) int64 { return 1 },
		Add:      func(a, b int64) int64 { return a + b },
		Mul:      func(a, b int64) int64 { return a * b },
	}
}

// Boolean is the two-element semiring used for derivability tests.
func Boolean() Semiring[bool] {
	return Semiring[bool]{
		Zero:     func() bool { return false },
		One:      func() bool { return true },
		FromBase: func(Base) bool { return true },
		Add:      func(a, b bool) bool { return a || b },
		Mul:      func(a, b bool) bool { return a && b },
	}
}

// DerivableGiven evaluates derivability when only the base tuples for which
// trusted returns true may be used — the paper's trust-policy projection.
func DerivableGiven(e *Expr, trusted func(Base) bool) bool {
	s := Boolean()
	s.FromBase = func(b Base) bool { return trusted(b) }
	return Eval(e, s)
}

// NodeSet is the semiring of node sets under union for both operations; it
// computes the set of nodes participating in any derivation (the paper's
// first customization example).
func NodeSet() Semiring[map[types.NodeID]bool] {
	union := func(a, b map[types.NodeID]bool) map[types.NodeID]bool {
		out := make(map[types.NodeID]bool, len(a)+len(b))
		for n := range a {
			out[n] = true
		}
		for n := range b {
			out[n] = true
		}
		return out
	}
	return Semiring[map[types.NodeID]bool]{
		Zero:     func() map[types.NodeID]bool { return map[types.NodeID]bool{} },
		One:      func() map[types.NodeID]bool { return map[types.NodeID]bool{} },
		FromBase: func(b Base) map[types.NodeID]bool { return map[types.NodeID]bool{b.Node: true} },
		Add:      union,
		Mul:      union,
	}
}

// SortedNodes evaluates the NodeSet semiring and returns the participating
// nodes in ascending order.
func SortedNodes(e *Expr) []types.NodeID {
	set := Eval(e, NodeSet())
	out := make([]types.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MinTrust evaluates the tropical-style trust semiring: every base tuple has
// a trust value in [0,100]; a derivation's trust is the minimum over its
// joined inputs, and a tuple's trust is the maximum over its alternative
// derivations.
func MinTrust(values func(Base) int64) Semiring[int64] {
	return Semiring[int64]{
		Zero:     func() int64 { return 0 },
		One:      func() int64 { return 100 },
		FromBase: values,
		Add: func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		},
		Mul: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
	}
}

// VarAlloc assigns dense BDD variable indices to base-tuple VIDs. The same
// allocator must be shared by every party that combines BDDs, so variable
// numbering is globally consistent; it is safe for concurrent use (the UDP
// deployment runs nodes as goroutines in one process).
type VarAlloc struct {
	mu    sync.Mutex
	byVID map[types.ID]int
	bases []Base
}

// NewVarAlloc creates an empty allocator.
func NewVarAlloc() *VarAlloc { return &VarAlloc{byVID: map[types.ID]int{}} }

// VarOf returns the variable index for a base tuple, allocating on first
// use.
func (a *VarAlloc) VarOf(b Base) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if v, ok := a.byVID[b.VID]; ok {
		return v
	}
	v := len(a.bases)
	a.byVID[b.VID] = v
	a.bases = append(a.bases, b)
	return v
}

// BaseOf returns the base tuple assigned to variable v.
func (a *VarAlloc) BaseOf(v int) (Base, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if v < 0 || v >= len(a.bases) {
		return Base{}, false
	}
	return a.bases[v], true
}

// Len reports the number of allocated variables.
func (a *VarAlloc) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.bases)
}

// ToBDD evaluates the polynomial in the boolean-function semiring, encoding
// each base tuple as a BDD variable. Because ROBDDs are canonical, the
// result is the absorption-condensed provenance of §6.3: a·(a+b) collapses
// to a.
func ToBDD(e *Expr, m *bdd.Manager, alloc *VarAlloc) bdd.Ref {
	s := Semiring[bdd.Ref]{
		Zero:     func() bdd.Ref { return bdd.False },
		One:      func() bdd.Ref { return bdd.True },
		FromBase: func(b Base) bdd.Ref { return m.Var(alloc.VarOf(b)) },
		Add:      m.Or,
		Mul:      m.And,
	}
	return Eval(e, s)
}
