// Package algebra implements provenance polynomials (provenance semirings,
// Green et al. PODS 2007) as used by the paper's POLYNOMIAL query
// customization, together with generic semiring evaluation that powers the
// NodeSet, #Derivations, Derivability and BDD representations of §5.2.
package algebra

import (
	"repro/internal/types"
	"sort"
	"strings"
)

// Op enumerates polynomial node operators.
type Op uint8

// Polynomial operators: a base-tuple literal, an n-ary sum ("+", union of
// alternative derivations) and an n-ary product ("·", join of rule inputs).
const (
	OpBase Op = iota
	OpSum
	OpProd
	OpZero // the empty sum: no derivation
	OpOne  // the empty product: trivially derivable
)

// Base identifies a base-tuple literal in a polynomial: the tuple's VID plus
// a human-readable label (the tuple's rendered form) and the node at which
// it resides (used by node-level granularity and the NodeSet semiring).
type Base struct {
	VID   types.ID
	Label string
	Node  types.NodeID
}

// Expr is an immutable provenance polynomial node.
//
// Ann carries the paper's location/rule annotations: f_pIDB annotates sums
// with "@loc" and f_pRULE annotates products with "rule@loc". Annotations
// are preserved in the string form and the wire encoding but are ignored by
// semiring evaluation.
type Expr struct {
	Op   Op
	Base Base    // valid when Op == OpBase
	Kids []*Expr // valid when Op is OpSum or OpProd
	Ann  string
}

// Zero is the polynomial with no derivations.
func Zero() *Expr { return &Expr{Op: OpZero} }

// One is the neutral element of multiplication.
func One() *Expr { return &Expr{Op: OpOne} }

// NewBase returns a base-tuple literal.
func NewBase(b Base) *Expr { return &Expr{Op: OpBase, Base: b} }

// Sum combines alternative derivations. Zero children vanish; a sum of one
// child collapses to that child (annotation preserved only when present).
func Sum(ann string, kids ...*Expr) *Expr {
	flat := make([]*Expr, 0, len(kids))
	for _, k := range kids {
		if k == nil || k.Op == OpZero {
			continue
		}
		flat = append(flat, k)
	}
	switch len(flat) {
	case 0:
		return Zero()
	case 1:
		if ann == "" {
			return flat[0]
		}
	}
	return &Expr{Op: OpSum, Kids: flat, Ann: ann}
}

// Prod combines rule inputs with a join. One children vanish; a product of
// one child collapses to that child when unannotated; any Zero child makes
// the product Zero.
func Prod(ann string, kids ...*Expr) *Expr {
	flat := make([]*Expr, 0, len(kids))
	for _, k := range kids {
		if k == nil || k.Op == OpOne {
			continue
		}
		if k.Op == OpZero {
			return Zero()
		}
		flat = append(flat, k)
	}
	switch len(flat) {
	case 0:
		return One()
	case 1:
		if ann == "" {
			return flat[0]
		}
	}
	return &Expr{Op: OpProd, Kids: flat, Ann: ann}
}

// String renders the polynomial in the paper's notation, e.g.
// <sp2@b>(β·γ) + α.
func (e *Expr) String() string {
	if e == nil {
		return "0"
	}
	var render func(e *Expr, parent Op) string
	render = func(e *Expr, parent Op) string {
		switch e.Op {
		case OpZero:
			return "0"
		case OpOne:
			return "1"
		case OpBase:
			return e.Base.Label
		case OpSum, OpProd:
			sep := " + "
			if e.Op == OpProd {
				sep = "·"
			}
			parts := make([]string, len(e.Kids))
			for i, k := range e.Kids {
				parts[i] = render(k, e.Op)
			}
			s := strings.Join(parts, sep)
			needParens := e.Ann != "" || (parent == OpProd && e.Op == OpSum)
			if needParens {
				s = "(" + s + ")"
			}
			if e.Ann != "" {
				s = "<" + e.Ann + ">" + s
			}
			return s
		}
		return "?"
	}
	return render(e, OpBase)
}

// BaseSet returns the distinct base literals of the polynomial, ordered by
// VID for determinism.
func (e *Expr) BaseSet() []Base {
	seen := map[types.ID]Base{}
	var rec func(*Expr)
	rec = func(x *Expr) {
		if x == nil {
			return
		}
		if x.Op == OpBase {
			seen[x.Base.VID] = x.Base
			return
		}
		for _, k := range x.Kids {
			rec(k)
		}
	}
	rec(e)
	out := make([]Base, 0, len(seen))
	for _, b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i].VID[:]) < string(out[j].VID[:])
	})
	return out
}

// Depth reports the tree height (base literals have depth 1).
func (e *Expr) Depth() int {
	if e == nil || e.Op == OpZero || e.Op == OpOne || e.Op == OpBase {
		return 1
	}
	max := 0
	for _, k := range e.Kids {
		if d := k.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// NumNodes reports the number of nodes in the expression tree.
func (e *Expr) NumNodes() int {
	if e == nil {
		return 0
	}
	n := 1
	for _, k := range e.Kids {
		n += k.NumNodes()
	}
	return n
}
