package algebra

import (
	"encoding/binary"
	"errors"

	"repro/internal/types"
)

// Wire format for polynomials, used when POLYNOMIAL query results travel
// between nodes (Figs 11, 15):
//
//	zero  -> tag
//	one   -> tag
//	base  -> tag + 20-byte VID + 4-byte node + uvarint len + label
//	sum   -> tag + uvarint len + annotation + uvarint count + kids
//	prod  -> tag + uvarint len + annotation + uvarint count + kids
//
// Expr implements types.Payload so polynomials can be embedded directly in
// tuples and messages.

var errBadExpr = errors.New("algebra: malformed polynomial encoding")

// EncodePayload implements types.Payload.
func (e *Expr) EncodePayload() []byte { return e.encode(nil) }

// WireSize implements types.Payload.
func (e *Expr) WireSize() int { return len(e.encode(nil)) }

func (e *Expr) encode(dst []byte) []byte {
	if e == nil {
		return append(dst, byte(OpZero))
	}
	dst = append(dst, byte(e.Op))
	switch e.Op {
	case OpBase:
		dst = append(dst, e.Base.VID[:]...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(e.Base.Node)))
		dst = binary.AppendUvarint(dst, uint64(len(e.Base.Label)))
		dst = append(dst, e.Base.Label...)
	case OpSum, OpProd:
		dst = binary.AppendUvarint(dst, uint64(len(e.Ann)))
		dst = append(dst, e.Ann...)
		dst = binary.AppendUvarint(dst, uint64(len(e.Kids)))
		for _, k := range e.Kids {
			dst = k.encode(dst)
		}
	}
	return dst
}

// Decode parses one polynomial from b, returning the expression and the
// number of bytes consumed.
func Decode(b []byte) (*Expr, int, error) {
	if len(b) == 0 {
		return nil, 0, errBadExpr
	}
	op := Op(b[0])
	used := 1
	switch op {
	case OpZero:
		return Zero(), used, nil
	case OpOne:
		return One(), used, nil
	case OpBase:
		if len(b) < used+types.IDLen+4 {
			return nil, 0, errBadExpr
		}
		var base Base
		copy(base.VID[:], b[used:used+types.IDLen])
		used += types.IDLen
		base.Node = types.NodeID(int32(binary.BigEndian.Uint32(b[used:])))
		used += 4
		n, sz := binary.Uvarint(b[used:])
		if sz <= 0 || len(b) < used+sz+int(n) {
			return nil, 0, errBadExpr
		}
		used += sz
		base.Label = string(b[used : used+int(n)])
		used += int(n)
		return NewBase(base), used, nil
	case OpSum, OpProd:
		annLen, sz := binary.Uvarint(b[used:])
		if sz <= 0 || len(b) < used+sz+int(annLen) {
			return nil, 0, errBadExpr
		}
		used += sz
		ann := string(b[used : used+int(annLen)])
		used += int(annLen)
		count, sz2 := binary.Uvarint(b[used:])
		if sz2 <= 0 {
			return nil, 0, errBadExpr
		}
		used += sz2
		kids := make([]*Expr, 0, count)
		for i := uint64(0); i < count; i++ {
			k, n, err := Decode(b[used:])
			if err != nil {
				return nil, 0, err
			}
			kids = append(kids, k)
			used += n
		}
		return &Expr{Op: op, Kids: kids, Ann: ann}, used, nil
	}
	return nil, 0, errBadExpr
}
