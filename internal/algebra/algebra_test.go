package algebra

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/types"
)

func baseN(i int) Base {
	var vid types.ID
	vid[0] = byte(i)
	vid[1] = byte(i >> 8)
	return Base{VID: vid, Label: string(rune('α' + i%24)), Node: types.NodeID(i % 8)}
}

// randPoly builds a random polynomial over nVars base tuples.
func randPoly(rng *rand.Rand, depth, nVars int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return NewBase(baseN(rng.Intn(nVars)))
	}
	n := 1 + rng.Intn(3)
	kids := make([]*Expr, n)
	for i := range kids {
		kids[i] = randPoly(rng, depth-1, nVars)
	}
	if rng.Intn(2) == 0 {
		return Sum("", kids...)
	}
	return Prod("", kids...)
}

func TestFigure4Polynomial(t *testing.T) {
	// The paper's example: provenance of bestPathCost(@a,c,5) is α + β·γ.
	alpha := NewBase(Base{VID: types.HashString("a"), Label: "α", Node: 0})
	beta := NewBase(Base{VID: types.HashString("b"), Label: "β", Node: 1})
	gamma := NewBase(Base{VID: types.HashString("c"), Label: "γ", Node: 1})
	e := Sum("", alpha, Prod("", beta, gamma))
	if got := e.String(); got != "α + β·γ" {
		t.Errorf("String = %q, want α + β·γ", got)
	}
	if got := Eval(e, Counting()); got != 2 {
		t.Errorf("derivation count = %d, want 2", got)
	}
	if !Eval(e, Boolean()) {
		t.Error("not derivable")
	}
	nodes := SortedNodes(e)
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Errorf("node set = %v, want [a b]", nodes)
	}
}

func TestSumProdSimplification(t *testing.T) {
	b := NewBase(baseN(1))
	if Sum("") != Zero() && Sum("").Op != OpZero {
		t.Error("empty sum is not zero")
	}
	if Prod("").Op != OpOne {
		t.Error("empty product is not one")
	}
	if Sum("", b) != b {
		t.Error("singleton unannotated sum should collapse")
	}
	if Prod("", b) != b {
		t.Error("singleton unannotated product should collapse")
	}
	if Prod("", b, Zero()).Op != OpZero {
		t.Error("product with zero should vanish")
	}
	if Sum("", Zero(), b) != b {
		t.Error("zero in sum should vanish")
	}
	if Prod("", One(), b) != b {
		t.Error("one in product should vanish")
	}
	// Annotated singletons are preserved (the annotation carries location
	// information in the wire format).
	if s := Sum("@a", b); s.Op != OpSum || s.Ann != "@a" {
		t.Error("annotated sum collapsed")
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		e := randPoly(rng, 4, 12)
		enc := e.EncodePayload()
		if len(enc) != e.WireSize() {
			t.Fatalf("WireSize %d != len %d", e.WireSize(), len(enc))
		}
		dec, n, err := Decode(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("decode: %v (n=%d/%d)", err, n, len(enc))
		}
		// Structural equality via canonical re-encoding.
		if string(dec.EncodePayload()) != string(enc) {
			t.Fatalf("round trip not stable for %s", e)
		}
		// Semantics preserved under every provided semiring.
		if Eval(e, Counting()) != Eval(dec, Counting()) {
			t.Fatalf("counting semantics changed")
		}
		if Eval(e, Boolean()) != Eval(dec, Boolean()) {
			t.Fatalf("boolean semantics changed")
		}
	}
}

// TestBDDAgreesWithBooleanSemiring: for any polynomial, ToBDD evaluated
// with all base variables true equals plain derivability; and restricting
// to a trusted subset matches DerivableGiven.
func TestBDDAgreesWithBooleanSemiring(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		e := randPoly(rng, 4, 10)
		m := bdd.New()
		alloc := NewVarAlloc()
		r := ToBDD(e, m, alloc)

		// Random trust assignment over the bases.
		trusted := map[types.ID]bool{}
		for _, b := range e.BaseSet() {
			trusted[b.VID] = rng.Intn(2) == 0
		}
		want := DerivableGiven(e, func(b Base) bool { return trusted[b.VID] })

		assign := map[int]bool{}
		for vid, ok := range trusted {
			if v, exists := alloc.byVID[vid]; exists {
				assign[v] = ok
			}
		}
		if got := m.Eval(r, assign); got != want {
			t.Fatalf("trial %d: BDD=%v semiring=%v for %s", trial, got, want, e)
		}
	}
}

func TestAbsorptionThroughBDD(t *testing.T) {
	// a·(a+b) condenses to a: the BDD depends only on a.
	a, b := NewBase(baseN(0)), NewBase(baseN(1))
	e := Prod("", a, Sum("", a, b))
	m := bdd.New()
	alloc := NewVarAlloc()
	r := ToBDD(e, m, alloc)
	sup := m.Support(r)
	if len(sup) != 1 {
		t.Fatalf("support = %v, want just a", sup)
	}
	if base, _ := alloc.BaseOf(sup[0]); base.VID != a.Base.VID {
		t.Fatalf("support is not a")
	}
}

func TestCountingSemiringLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := Counting()
	for trial := 0; trial < 200; trial++ {
		x := Eval(randPoly(rng, 3, 6), s)
		y := Eval(randPoly(rng, 3, 6), s)
		z := Eval(randPoly(rng, 3, 6), s)
		if s.Add(x, y) != s.Add(y, x) || s.Mul(x, y) != s.Mul(y, x) {
			t.Fatal("commutativity")
		}
		if s.Add(s.Add(x, y), z) != s.Add(x, s.Add(y, z)) {
			t.Fatal("associativity of +")
		}
		if s.Mul(x, s.Add(y, z)) != s.Add(s.Mul(x, y), s.Mul(x, z)) {
			t.Fatal("distributivity")
		}
		if s.Mul(x, s.One()) != x || s.Add(x, s.Zero()) != x {
			t.Fatal("identities")
		}
	}
}

func TestMinTrust(t *testing.T) {
	a, b, c := baseN(0), baseN(1), baseN(2)
	vals := map[types.ID]int64{a.VID: 90, b.VID: 40, c.VID: 70}
	look := func(x Base) int64 { return vals[x.VID] }
	// a + b·c: max(90, min(40,70)) = 90.
	e := Sum("", NewBase(a), Prod("", NewBase(b), NewBase(c)))
	if got := Eval(e, MinTrust(look)); got != 90 {
		t.Errorf("trust = %d, want 90", got)
	}
	// b·c alone: 40.
	e2 := Prod("", NewBase(b), NewBase(c))
	if got := Eval(e2, MinTrust(look)); got != 40 {
		t.Errorf("trust = %d, want 40", got)
	}
}

func TestBaseSetAndMetrics(t *testing.T) {
	a, b := NewBase(baseN(0)), NewBase(baseN(1))
	e := Sum("@a", Prod("r1@a", a, b), a)
	bs := e.BaseSet()
	if len(bs) != 2 {
		t.Errorf("BaseSet = %d entries, want 2", len(bs))
	}
	if e.Depth() < 2 || e.NumNodes() < 4 {
		t.Errorf("metrics wrong: depth=%d nodes=%d", e.Depth(), e.NumNodes())
	}
	if !strings.Contains(e.String(), "<r1@a>") {
		t.Errorf("annotation lost: %s", e)
	}
}

func TestVarAllocStable(t *testing.T) {
	alloc := NewVarAlloc()
	a, b := baseN(0), baseN(1)
	v1 := alloc.VarOf(a)
	v2 := alloc.VarOf(b)
	if v1 == v2 {
		t.Fatal("distinct bases share a variable")
	}
	if alloc.VarOf(a) != v1 {
		t.Fatal("allocation not stable")
	}
	if alloc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", alloc.Len())
	}
	got, ok := alloc.BaseOf(v2)
	if !ok || got.VID != b.VID {
		t.Fatal("BaseOf lookup failed")
	}
	if _, ok := alloc.BaseOf(99); ok {
		t.Fatal("BaseOf out of range succeeded")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, _, err := Decode([]byte{99}); err == nil {
		t.Error("bad opcode accepted")
	}
	e := Prod("x", NewBase(baseN(0)), NewBase(baseN(1)))
	enc := e.EncodePayload()
	for cut := 1; cut < len(enc); cut++ {
		if _, n, err := Decode(enc[:cut]); err == nil && n == len(enc) {
			t.Errorf("truncated decode at %d/%d succeeded", cut, len(enc))
		}
	}
}
