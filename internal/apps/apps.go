// Package apps contains the NDlog application programs of the paper's
// evaluation (§7): MINCOST (Fig 1), PATHVECTOR, and PACKETFORWARD (Fig 2),
// plus small helpers for injecting their base tuples.
package apps

import (
	"repro/internal/ndlog"
	"repro/internal/topology"
	"repro/internal/types"
)

// MinCostSrc is the paper's Figure 1: the best path cost between every
// pair of nodes.
const MinCostSrc = `
sp1 pathCost(@S,D,C) :- link(@S,D,C).
sp2 pathCost(@S,D,C1+C2) :- link(@Z,S,C1), bestPathCost(@Z,D,C2).
sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
`

// PathVectorSrc extends MINCOST to carry the best path itself as a vector
// of nodes (the control-plane PATHVECTOR application of §7). bestPath uses
// an arg-min aggregate carrying the path; bestHop extracts the next hop for
// the data plane.
const PathVectorSrc = `
pv1 path(@S,D,C,P) :- link(@S,D,C), P = f_init(S,D).
pv2 path(@S,D,C,P) :- link(@Z,S,C1), bestPath(@Z,D,C2,P2), f_member(P2,S) == 0,
                      C = C1 + C2, P = f_concat(S,P2).
pv3 bestPath(@S,D,min<C,P>) :- path(@S,D,C,P).
pv4 bestHop(@S,D,H) :- bestPath(@S,D,C,P), H = f_nth(P,1).
`

// PacketForwardSrc is the paper's Figure 2 data-plane program: packets
// relay hop by hop along previously discovered best paths. It composes
// with PATHVECTOR, which supplies bestHop.
const PacketForwardSrc = PathVectorSrc + `
fw1 ePacket(@H,Src,Dst,Pay) :- ePacket(@N,Src,Dst,Pay), bestHop(@N,Dst,H), N != Dst.
fw2 recvPacket(@N,Src,Dst,Pay) :- ePacket(@N,Src,Dst,Pay), N == Dst.
`

// MinCost parses the MINCOST program.
func MinCost() *ndlog.Program { return ndlog.MustParse(MinCostSrc) }

// PathVector parses the PATHVECTOR program.
func PathVector() *ndlog.Program { return ndlog.MustParse(PathVectorSrc) }

// PacketForward parses the PACKETFORWARD program (including PATHVECTOR).
func PacketForward() *ndlog.Program { return ndlog.MustParse(PacketForwardSrc) }

// LinkTuple builds link(@u, v, cost).
func LinkTuple(u, v types.NodeID, cost int64) types.Tuple {
	return types.NewTuple("link", types.Node(u), types.Node(v), types.Int(cost))
}

// LinkTuples returns the symmetric base link tuples of a topology, grouped
// by the node that owns them ("each node is initialized with a link tuple
// for each of its neighbors").
func LinkTuples(t *topology.Topology) map[types.NodeID][]types.Tuple {
	out := map[types.NodeID][]types.Tuple{}
	for _, l := range t.Links {
		out[l.U] = append(out[l.U], LinkTuple(l.U, l.V, l.Cost))
		out[l.V] = append(out[l.V], LinkTuple(l.V, l.U, l.Cost))
	}
	return out
}

// PacketTuple builds ePacket(@at, src, dst, payload) with a synthetic
// payload of payloadBytes bytes (the experiments use 1024).
func PacketTuple(at, src, dst types.NodeID, payloadBytes int) types.Tuple {
	pay := make([]byte, payloadBytes)
	for i := range pay {
		pay[i] = 'x'
	}
	return types.NewTuple("ePacket", types.Node(at), types.Node(src), types.Node(dst), types.Str(string(pay)))
}

// BestPathCostTuple builds bestPathCost(@s, d, c) for lookups.
func BestPathCostTuple(s, d types.NodeID, c int64) types.Tuple {
	return types.NewTuple("bestPathCost", types.Node(s), types.Node(d), types.Int(c))
}
