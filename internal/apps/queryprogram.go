package apps

// QueryProgramSrc is the paper's §5.1 generic distributed graph-traversal
// program over the prov and ruleExec relations, written out in full: the
// base rule edb1, the child counter c0, the four tuple-vertex rules
// idb1-idb4 from the paper, and the four rule-vertex rules rv1-rv4 that
// the paper omits "due to space constraints", reconstructed symmetrically.
//
// The program is the specification of the querying protocol; the native
// processor in internal/provquery implements exactly this message flow
// (eProvQuery/eRuleQuery with buffered partial results) with the
// f_pEDB/f_pIDB/f_pRULE customization points, and is tested equivalent to
// the paper's examples. Executing the NDlog text directly would require
// non-monotonic buffer updates to pResultTmp, which the paper's prose also
// glosses over; see DESIGN.md.
const QueryProgramSrc = `
// Base case: VID is a base tuple (null RID).
edb1 eProvResults(@Ret,QID,VID,Prov) :- eProvQuery(@X,QID,VID,Ret),
     prov(@X,VID,RID,RLoc), RID == f_nullid(), Prov = f_pEDB(VID).

// Count the number of children (alternative derivations) per VID.
c0 numChild(@X,VID,COUNT<*>) :- prov(@X,VID,RID,RLoc).

// Initialize the per-query result buffer.
idb1 pResultTmp(@X,QID,Ret,VID,Buf) :- eProvQuery(@X,QID,VID,Ret),
     prov(@X,VID,RID,RLoc), RID != f_nullid(), Buf = f_empty().

// Recursive case: expand each derivation's rule-execution vertex.
idb2 eRuleQuery(@RLoc,RQID,RID,X) :- eProvQuery(@X,QID,VID,Ret),
     prov(@X,VID,RID,RLoc), RID != f_nullid(), RQID = f_sha1(QID + RID).

// Buffer returned sub-results.
idb3 pResultTmp(@X,QID,Ret,VID,Buf) :- eRuleResults(@X,RQID,RID,Prov),
     pResultTmp(@X,QID,Ret,VID,Buf1), RQID == f_sha1(QID + RID),
     Buf = f_concat(Buf1,Prov).

// All children returned: combine and reply.
idb4 eProvResults(@Ret,QID,VID,Prov) :- pResultTmp(@X,QID,Ret,VID,Buf),
     numChild(@X,VID,C), C == f_size(Buf), Prov = f_pIDB(Buf,VID,X).

// Rule-execution vertices (rv1-rv4, symmetric to idb1-idb4): expand the
// input tuples listed in ruleExec and combine with f_pRULE.
rv1 rResultTmp(@X,RQID,Ret,RID,Buf) :- eRuleQuery(@X,RQID,RID,Ret),
    ruleExec(@X,RID,R,List), Buf = f_empty().
rv2 eProvQuery(@X,CQID,VID,X) :- eRuleQuery(@X,RQID,RID,Ret),
    ruleExec(@X,RID,R,List), VID = f_item(List), CQID = f_sha1(RQID + VID).
rv3 rResultTmp(@X,RQID,Ret,RID,Buf) :- eProvResults(@X,CQID,VID,Prov),
    rResultTmp(@X,RQID,Ret,RID,Buf1), CQID == f_sha1(RQID + VID),
    Buf = f_concat(Buf1,Prov).
rv4 eRuleResults(@Ret,RQID,RID,Prov) :- rResultTmp(@X,RQID,Ret,RID,Buf),
    ruleExec(@X,RID,R,List), f_size(List) == f_size(Buf),
    Prov = f_pRULE(Buf,R,X).
`

// CountQueryProgramSrc is an *executable* instantiation of the §5.1 query
// program for the #DERIVATIONS representation: the f_p* customization
// points are bound to the counting built-ins (f_cntEDB/f_cntIDB/f_cntRULE)
// and the rule-input lists are iterated through the relational
// ruleExecInput rows maintained by the rewrite's RelationalInputs option
// (NDlog assignments bind one value, so VIDList cannot be enumerated in a
// rule body directly).
//
// Two departures from the paper's sketch, both forced by making it
// actually run: (1) the result buffer pResultTmp grows monotonically — the
// paper's in-place buffer update is non-monotonic and has no NDlog
// semantics; partial buffers coexist and idb4's size guard selects the
// complete one. (2) child-query identifiers are f_sha1(f_append(a,b))
// rather than string concatenation (injective framing, as everywhere else
// in this implementation).
const CountQueryProgramSrc = `
// Base case: a null-RID derivation answers immediately.
edb1 eProvResults(@Ret,QID,VID,Prov) :- eProvQuery(@X,QID,VID,Ret),
     prov(@X,VID,RID,RLoc), RID == f_nullid(), Prov = f_cntEDB(VID).

// Children per tuple vertex and inputs per rule vertex.
c0 numChild(@X,VID,COUNT<*>) :- prov(@X,VID,RID,RLoc).
c1 numInput(@X,RID,COUNT<*>) :- ruleExecInput(@X,RID,VID).

// Tuple vertices: initialize the buffer, expand each derivation.
idb1 pResultTmp(@X,QID,Ret,VID,Buf) :- eProvQuery(@X,QID,VID,Ret),
     prov(@X,VID,RID,RLoc), RID != f_nullid(), Buf = f_empty().
idb2 eRuleQuery(@RLoc,RQID,RID,X) :- eProvQuery(@X,QID,VID,Ret),
     prov(@X,VID,RID,RLoc), RID != f_nullid(),
     RQID = f_sha1(f_append(QID,RID)).
idb3 pResultTmp(@X,QID,Ret,VID,Buf) :- eRuleResults(@X,RQID,RID,Prov),
     pResultTmp(@X,QID,Ret,VID,Buf1), RQID == f_sha1(f_append(QID,RID)),
     Buf = f_concat(Buf1,Prov).
idb4 eProvResults(@Ret,QID,VID,Prov) :- pResultTmp(@X,QID,Ret,VID,Buf),
     numChild(@X,VID,C), C == f_size(Buf), Prov = f_cntIDB(Buf).

// Rule-execution vertices: expand each input tuple (all local, since rule
// bodies are localized), combine with the product.
rv1 rResultTmp(@X,RQID,Ret,RID,Buf) :- eRuleQuery(@X,RQID,RID,Ret),
    ruleExec(@X,RID,R,List), Buf = f_empty().
rv2 eProvQuery(@X,CQID,VID,X) :- eRuleQuery(@X,RQID,RID,Ret),
    ruleExecInput(@X,RID,VID), CQID = f_sha1(f_append(RQID,VID)).
rv3 rResultTmp(@X,RQID,Ret,RID,Buf) :- eProvResults(@X,CQID,VID,Prov),
    rResultTmp(@X,RQID,Ret,RID,Buf1), CQID == f_sha1(f_append(RQID,VID)),
    Buf = f_concat(Buf1,Prov).
rv4 eRuleResults(@Ret,RQID,RID,Prov) :- rResultTmp(@X,RQID,Ret,RID,Buf),
    numInput(@X,RID,C), C == f_size(Buf), Prov = f_cntRULE(Buf).

// Materialize root results so callers can read them.
qr queryResult(@Ret,QID,VID,Prov) :- eProvResults(@Ret,QID,VID,Prov).
`

// DFSQueryProgramSrc contains the paper's §6.2 modifications that turn the
// BFS traversal into a DFS with threshold-based early termination: idb2 is
// replaced by idb2a-idb2c and idb4 gains the threshold disjunct (idb4').
const DFSQueryProgramSrc = `
idb2a pQList(@X,QID,AGGLIST<RID,RLoc>) :- eProvQuery(@X,QID,UID,Ret),
      prov(@X,UID,RID,RLoc), RID != f_nullid().

idb2b eIterate(@X,QID,N) :- pResultTmp(@X,QID,Ret,UID,Buf),
      numChild(@X,UID,C), N = f_size(Buf) + 1, N <= C,
      Threshold = f_threshold(), f_pIDB(Buf,UID,X) <= Threshold.

idb2c eRuleQuery(@RLoc,RQID,RID,X) :- eIterate(@X,QID,N),
      pQList(@X,QID,L), RID = f_item(L), RLoc = f_item(L),
      RQID = f_sha1(QID + RID).

idb4p eProvResults(@Ret,QID,UID,Prov) :- pResultTmp(@X,QID,Ret,UID,Buf),
      numChild(@X,UID,C), Prov = f_pIDB(Buf,UID,X),
      C == f_size(Buf) || f_count(Prov) > f_threshold().
`
