package apps

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/topology"
	"repro/internal/types"
)

// cycle builds a plain n-node cycle (no random chords), so tests can
// compute expected successor graphs by hand.
func cycle(n int) *topology.Topology {
	t := &topology.Topology{N: n}
	for i := 0; i < n; i++ {
		t.Links = append(t.Links, topology.Link{
			U: types.NodeID(i), V: types.NodeID((i + 1) % n),
			Class: topology.ClassStub, Cost: 1,
		})
	}
	return t
}

func runChord(t *testing.T, topo *topology.Topology, lookups []types.Tuple) *engine.Scheduler {
	t.Helper()
	prog, err := engine.Compile(Chord())
	if err != nil {
		t.Fatalf("compile chord: %v", err)
	}
	s := engine.NewScheduler(prog, engine.ProvReference, topo.N, 1, 0)
	for n, tuples := range ChordBase(topo) {
		for _, tup := range tuples {
			s.InsertBase(n, tup)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, lk := range lookups {
		s.InsertBase(lk.Loc(), lk)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// ringDist mirrors the f_ringdist builtin.
func ringDist(a, b int64) int64 {
	d := (b - a) % ChordSpace
	if d < 0 {
		d += ChordSpace
	}
	if d == 0 {
		d = ChordSpace
	}
	return d
}

// between mirrors the f_between builtin.
func between(k, a, b int64) bool {
	switch {
	case a == b:
		return true
	case a < b:
		return a < k && k <= b
	default:
		return k > a || k <= b
	}
}

// succOf computes the expected successor election: the physical neighbor
// closest clockwise on the identifier ring.
func succOf(topo *topology.Topology, n types.NodeID) types.NodeID {
	best, bestD := types.NodeID(-1), int64(-1)
	for _, nb := range topo.Adjacency()[n] {
		d := ringDist(ChordID(n), ChordID(nb.Node))
		if bestD < 0 || d < bestD {
			best, bestD = nb.Node, d
		}
	}
	return best
}

// ownerOf follows the successor chain the way rules l1/l2 do and returns
// the node at which lookupRes materializes.
func ownerOf(topo *topology.Topology, origin types.NodeID, key int64) types.NodeID {
	n := origin
	for {
		s := succOf(topo, n)
		if between(key, ChordID(n), ChordID(s)) {
			return n
		}
		n = s
	}
}

func TestChordSuccessorElection(t *testing.T) {
	topo := cycle(8)
	s := runChord(t, topo, nil)
	for n := 0; n < topo.N; n++ {
		succs := s.Node(n).Tuples("succ")
		if len(succs) != 1 {
			t.Fatalf("node %d: %d succ tuples, want 1", n, len(succs))
		}
		want := succOf(topo, types.NodeID(n))
		if got := succs[0].Args[1].AsNode(); got != want {
			t.Errorf("node %d: succ = %v, want %v", n, got, want)
		}
		if id := succs[0].Args[2].AsInt(); id != ChordID(want) {
			t.Errorf("node %d: succ id = %d, want %d", n, id, ChordID(want))
		}
		// The predecessor election is the same arg-min with the distance
		// reversed; on a cycle both neighbors are candidates.
		if preds := s.Node(n).Tuples("pred"); len(preds) != 1 {
			t.Fatalf("node %d: %d pred tuples, want 1", n, len(preds))
		}
	}
	var fingers int
	for n := 0; n < topo.N; n++ {
		fingers += len(s.Node(n).Tuples("finger"))
	}
	if fingers == 0 {
		t.Fatal("no finger tuples derived")
	}
}

func TestChordLookupResolves(t *testing.T) {
	topo := cycle(8)
	lookups := []types.Tuple{
		LookupTuple(0, 12345, 0),
		LookupTuple(3, ChordID(6), 3), // exact hit on a node identifier
		LookupTuple(5, ChordSpace-1, 5),
	}
	s := runChord(t, topo, lookups)
	for _, lk := range lookups {
		key := lk.Args[1].AsInt()
		owner := ownerOf(topo, lk.Loc(), key)
		found := false
		for _, res := range s.Node(int(owner)).Tuples("lookupRes") {
			if res.Args[1].AsInt() == key && res.Args[2].AsNode() == lk.Args[2].AsNode() {
				found = true
				if got, want := res.Args[3].AsNode(), succOf(topo, owner); got != want {
					t.Errorf("key %d: resolved successor %v, want %v", key, got, want)
				}
			}
		}
		if !found {
			t.Errorf("key %d: no lookupRes at expected owner %v", key, owner)
		}
	}
}

// TestChordLookupRetraction deletes a lookup's base tuple and expects the
// whole forwarding chain and its result to unwind — lookups are base
// state precisely so DRed can retract them.
func TestChordLookupRetraction(t *testing.T) {
	topo := cycle(8)
	lk := LookupTuple(0, 54321, 0)
	s := runChord(t, topo, []types.Tuple{lk})
	total := func(pred string) int {
		c := 0
		for n := 0; n < topo.N; n++ {
			c += len(s.Node(n).Tuples(pred))
		}
		return c
	}
	if total("lookupRes") == 0 {
		t.Fatal("lookup did not resolve")
	}
	s.DeleteBase(lk.Loc(), lk)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n := total("lookup"); n != 0 {
		t.Errorf("%d lookup tuples survive retraction", n)
	}
	if n := total("lookupRes"); n != 0 {
		t.Errorf("%d lookupRes tuples survive retraction", n)
	}
}

func runPolicy(t *testing.T, topo *topology.Topology) *engine.Scheduler {
	t.Helper()
	prog, err := engine.Compile(Policy())
	if err != nil {
		t.Fatalf("compile policy: %v", err)
	}
	s := engine.NewScheduler(prog, engine.ProvReference, topo.N, 1, 0)
	for _, l := range topo.Links {
		s.InsertBase(l.U, LinkTuple(l.U, l.V, l.Cost))
		s.InsertBase(l.V, LinkTuple(l.V, l.U, l.Cost))
	}
	for n, tuples := range PolicyTuples(topo) {
		for _, tup := range tuples {
			s.InsertBase(n, tup)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// chargedCost recomputes a route's cost from its path under the pp1/pp2
// charging scheme: link costs along the path, plus policy penalties
// policy(p1,p0) ... policy(p[m-1],p[m-2]) for the extension steps and
// policy(p[m-1],p[m]) for the pp1 base hop. Reports ok=false when any
// required policy atom or link is missing.
func chargedCost(topo *topology.Topology, path []types.NodeID) (int64, bool) {
	linkCost := map[[2]types.NodeID]int64{}
	for _, l := range topo.Links {
		linkCost[[2]types.NodeID{l.U, l.V}] = l.Cost
		linkCost[[2]types.NodeID{l.V, l.U}] = l.Cost
	}
	var c int64
	for i := 0; i+1 < len(path); i++ {
		lc, ok := linkCost[[2]types.NodeID{path[i], path[i+1]}]
		if !ok {
			return 0, false
		}
		c += lc
	}
	m := len(path) - 1
	for i := 1; i < m; i++ {
		w, ok := ExportPolicy(path[i], path[i-1])
		if !ok {
			return 0, false
		}
		c += w
	}
	w, ok := ExportPolicy(path[m-1], path[m])
	if !ok {
		return 0, false
	}
	return c + w, true
}

func TestPolicyRoutesRespectPolicy(t *testing.T) {
	topo := cycle(10)
	s := runPolicy(t, topo)
	filtered := 0
	for _, l := range topo.Links {
		if _, ok := ExportPolicy(l.U, l.V); !ok {
			filtered++
		}
		if _, ok := ExportPolicy(l.V, l.U); !ok {
			filtered++
		}
	}
	if filtered == 0 {
		t.Fatal("vacuous: no adjacency filtered on this topology")
	}
	routes := 0
	for n := 0; n < topo.N; n++ {
		for _, r := range s.Node(n).Tuples("bestRoute") {
			routes++
			var path []types.NodeID
			seen := map[types.NodeID]bool{}
			for _, v := range r.Args[3].AsList() {
				p := v.AsNode()
				if seen[p] {
					t.Fatalf("route %v has a loop", r)
				}
				seen[p] = true
				path = append(path, p)
			}
			if path[0] != types.NodeID(n) || path[len(path)-1] != r.Args[1].AsNode() {
				t.Fatalf("route %v: path endpoints do not match tuple", r)
			}
			c, ok := chargedCost(topo, path)
			if !ok {
				t.Fatalf("route %v uses a filtered or missing adjacency", r)
			}
			if c != r.Args[2].AsInt() {
				t.Fatalf("route %v: recomputed cost %d", r, c)
			}
		}
		// nextHop agrees with the selected route's second path element.
		hops := map[[2]types.NodeID]types.NodeID{}
		for _, h := range s.Node(n).Tuples("nextHop") {
			hops[[2]types.NodeID{h.Args[0].AsNode(), h.Args[1].AsNode()}] = h.Args[2].AsNode()
		}
		for _, r := range s.Node(n).Tuples("bestRoute") {
			want := r.Args[3].AsList()[1].AsNode()
			if got := hops[[2]types.NodeID{r.Args[0].AsNode(), r.Args[1].AsNode()}]; got != want {
				t.Fatalf("nextHop %v, want %v for %v", got, want, r)
			}
		}
		// routeSet (the Adj-RIB analogue) is never empty where it exists.
		for _, rs := range s.Node(n).Tuples("routeSet") {
			if len(rs.Args[2].AsList()) == 0 {
				t.Fatalf("empty routeSet %v", rs)
			}
		}
	}
	if routes == 0 {
		t.Fatal("no bestRoute derived anywhere")
	}
}

// TestWorkloadProgramsArePlanned pins the acceptance criterion that both
// protocols carry >= 3-atom rules the planner plans: the explain dump must
// show [planned] join pipelines for the Chord candidate and lookup rules
// and the policy extension rule.
func TestWorkloadProgramsArePlanned(t *testing.T) {
	for _, tc := range []struct {
		name  string
		prog  *ndlog.Program
		rules []string
	}{
		{"chord", Chord(), []string{"rule c1", "rule c5", "rule l1", "rule l2"}},
		{"policy", Policy(), []string{"rule pp2"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := engine.Compile(tc.prog)
			if err != nil {
				t.Fatal(err)
			}
			s := engine.NewScheduler(prog, engine.ProvNone, 1, 1, 0)
			var sb strings.Builder
			s.Node(0).ExplainPlans(&sb)
			out := sb.String()
			if !strings.Contains(out, "[planned]") {
				t.Fatalf("no [planned] pipeline in explain output:\n%s", out)
			}
			for _, r := range tc.rules {
				i := strings.Index(out, r)
				if i < 0 {
					t.Fatalf("rule %q missing from explain output", r)
				}
				seg := out[i:]
				if j := strings.Index(seg[1:], "rule "); j >= 0 {
					seg = seg[:j+1]
				}
				if !strings.Contains(seg, "[planned]") {
					t.Errorf("%s: not planned:\n%s", r, seg)
				}
			}
		})
	}
}
