package apps

import (
	"repro/internal/ndlog"
	"repro/internal/topology"
	"repro/internal/types"
)

// PolicySrc is a policy-constrained path-vector program (BGP-like): route
// propagation is gated by per-adjacency policy atoms, so the best route is
// the cheapest *permitted* route, not the cheapest physical path.
//
// policy(@X,Y,W) means node X permits routing through its adjacency to
// neighbor Y, at an additive penalty W (a local-preference knob); a
// missing policy atom forbids the adjacency outright, the way a BGP export
// filter silently drops an announcement. pp1 admits the one-hop route
// where S permits its own link; pp2 extends Z's best route to Z's
// neighbor S only when Z's export policy for S exists, with f_member
// providing path-vector loop avoidance. pp3/pp4 are the MIN and AGGLIST
// aggregations: the selected route plus the full sorted candidate set
// (the "Adj-RIB" the forensics walkthrough interrogates); pp5 extracts
// the forwarding next hop.
//
// pp2's 3-atom body (link ⋈ policy ⋈ bestRoute) is a real planner
// workload: policy is sparse where link is dense, so join order matters.
const PolicySrc = `
pp1 route(@S,D,C,P) :- link(@S,D,C0), policy(@S,D,W), C = C0 + W, P = f_init(S,D).
pp2 route(@S,D,C,P) :- link(@Z,S,C1), policy(@Z,S,W), bestRoute(@Z,D,C2,P2),
                       f_member(P2,S) == 0, C = C1 + W + C2, P = f_concat(S,P2).
pp3 bestRoute(@S,D,min<C,P>) :- route(@S,D,C,P).
pp4 routeSet(@S,D,agglist<C,P>) :- route(@S,D,C,P).
pp5 nextHop(@S,D,H) :- bestRoute(@S,D,C,P), H = f_nth(P,1).
`

// Policy parses the policy path-vector program.
func Policy() *ndlog.Program { return ndlog.MustParse(PolicySrc) }

// PolicyTuple builds policy(@x, y, w).
func PolicyTuple(x, y types.NodeID, w int64) types.Tuple {
	return types.NewTuple("policy", types.Node(x), types.Node(y), types.Int(w))
}

// ExportPolicy is the deterministic policy function of the workload: does
// node x permit its adjacency toward neighbor y, and at what additive
// penalty? Roughly one in seven directed adjacencies is filtered (the
// modulus mixes both endpoints so filtering is asymmetric, like real
// export policies), and permitted ones carry a small penalty derived from
// the pair — enough to make the cheapest permitted route differ from the
// cheapest physical path.
func ExportPolicy(x, y types.NodeID) (w int64, ok bool) {
	h := 3*int64(x) + 5*int64(y)
	if h%7 == 0 {
		return 0, false
	}
	return h % 3, true
}

// PolicyTuples returns the policy atoms of a topology under ExportPolicy,
// grouped by owning node: one atom per permitted directed adjacency.
func PolicyTuples(t *topology.Topology) map[types.NodeID][]types.Tuple {
	out := make(map[types.NodeID][]types.Tuple)
	add := func(x, y types.NodeID) {
		if w, ok := ExportPolicy(x, y); ok {
			out[x] = append(out[x], PolicyTuple(x, y, w))
		}
	}
	for _, l := range t.Links {
		add(l.U, l.V)
		add(l.V, l.U)
	}
	return out
}
