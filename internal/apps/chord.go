package apps

import (
	"math/rand"

	"repro/internal/ndlog"
	"repro/internal/topology"
	"repro/internal/types"
)

// ChordSpace is the identifier-ring size of the CHORD workload (2^20).
const ChordSpace = 1 << 20

// chordMult is an odd multiplier, so n -> n*chordMult mod ChordSpace is a
// bijection on [0, ChordSpace): node identifiers never collide.
const chordMult = 2654435761

// ChordID maps a node to its ring identifier. Deterministic, injective for
// any network smaller than ChordSpace, and scrambled enough that ring
// neighborhoods don't follow node numbering.
func ChordID(n types.NodeID) int64 {
	return (int64(n) * chordMult) % ChordSpace
}

// ChordSrc is a Chord-style DHT routing program from the declarative
// networking lineage the paper builds on (P2's 47-rule Chord is the famous
// ancestor; this is the routing core at NDlog scale).
//
// Base state per node N: ident(@N,IdN) is N's ring identifier, and
// peer/alive name the overlay neighbors N may route through — alive is the
// soft-state liveness tuple (see core.SoftState), so peers come and go by
// timer expiry, not only by explicit retraction.
//
// Derived state: every node elects the alive peer closest clockwise on the
// ring as its successor (c1-c3, arg-min over f_ringdist), notifies that
// successor of itself (c4 — a remote-head rule; its notify head
// deliberately does NOT feed back into the peer table, keeping every
// tuple's derivation graph acyclic so provenance traversals terminate),
// and maintains a predecessor election plus one "finger": its predecessor
// learns N's successor (c5-c7), giving each node a two-hop routing entry
// that is incrementally maintained under churn.
//
// Lookups are base tuples lookup(@N,K,R): "node R asked N to resolve key
// K". Rule l1 forwards a lookup one successor hop at a time while the key
// is outside (IdN, IdSucc]; l2 materializes the answer at the resolving
// node. Every forwarding hop strictly decreases the clockwise distance
// from the current node's identifier to the key, so recursion terminates,
// and the provenance of a lookupRes row is exactly the forwarding path —
// the DHT forensics scenario of examples/.
//
// c1, c5, l1 and l2 have >= 3-atom bodies: these joins are what the
// cost-based planner reorders on real workload statistics.
const ChordSrc = `
c1 cand(@N,M,IdM,D) :- peer(@N,M,IdM), alive(@N,M), ident(@N,IdN), M != N,
                       D = f_ringdist(IdN,IdM,1048576).
c2 bestSucc(@N,min<D,S,IdS>) :- cand(@N,S,IdS,D).
c3 succ(@N,S,IdS) :- bestSucc(@N,D,S,IdS).
c4 notify(@S,N,IdN) :- succ(@N,S,IdS), ident(@N,IdN).
c5 candPred(@N,M,IdM,D) :- peer(@N,M,IdM), alive(@N,M), ident(@N,IdN), M != N,
                           D = f_ringdist(IdM,IdN,1048576).
c6 pred(@N,min<D,P,IdP>) :- candPred(@N,P,IdP,D).
c7 finger(@P,S,IdS) :- succ(@N,S,IdS), pred(@N,D,P,IdP).
l1 lookup(@S,K,R) :- lookup(@N,K,R), ident(@N,IdN), succ(@N,S,IdS),
                     f_between(K,IdN,IdS) == 0.
l2 lookupRes(@N,K,R,S,IdS) :- lookup(@N,K,R), ident(@N,IdN), succ(@N,S,IdS),
                              f_between(K,IdN,IdS) == 1.
`

// Chord parses the CHORD program.
func Chord() *ndlog.Program { return ndlog.MustParse(ChordSrc) }

// IdentTuple builds ident(@n, ChordID(n)).
func IdentTuple(n types.NodeID) types.Tuple {
	return types.NewTuple("ident", types.Node(n), types.Int(ChordID(n)))
}

// PeerTuple builds peer(@n, m, ChordID(m)).
func PeerTuple(n, m types.NodeID) types.Tuple {
	return types.NewTuple("peer", types.Node(n), types.Node(m), types.Int(ChordID(m)))
}

// AliveTuple builds alive(@n, m) — the soft-state liveness atom for peer m
// at node n.
func AliveTuple(n, m types.NodeID) types.Tuple {
	return types.NewTuple("alive", types.Node(n), types.Node(m))
}

// LookupTuple builds lookup(@at, key, requester).
func LookupTuple(at types.NodeID, key int64, requester types.NodeID) types.Tuple {
	return types.NewTuple("lookup", types.Node(at), types.Int(key), types.Node(requester))
}

// ChordBase seeds the CHORD overlay from a physical topology: every node
// gets its identifier plus peer and alive tuples for each physical
// neighbor. The overlay rides the physical graph, so derived heads (succ
// notifications, forwarded lookups) only ever cross real links.
func ChordBase(t *topology.Topology) map[types.NodeID][]types.Tuple {
	out := make(map[types.NodeID][]types.Tuple, t.N)
	for n := 0; n < t.N; n++ {
		id := types.NodeID(n)
		out[id] = append(out[id], IdentTuple(id))
	}
	for _, l := range t.Links {
		out[l.U] = append(out[l.U], PeerTuple(l.U, l.V), AliveTuple(l.U, l.V))
		out[l.V] = append(out[l.V], PeerTuple(l.V, l.U), AliveTuple(l.V, l.U))
	}
	return out
}

// ChordLookups generates a seeded lookup workload: count lookup base
// tuples at random origin nodes for random keys (the requester is the
// origin). Deterministic in (t.N, count, seed).
func ChordLookups(t *topology.Topology, count int, seed int64) []types.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]types.Tuple, 0, count)
	for i := 0; i < count; i++ {
		origin := types.NodeID(rng.Intn(t.N))
		key := rng.Int63n(ChordSpace)
		out = append(out, LookupTuple(origin, key, origin))
	}
	return out
}
