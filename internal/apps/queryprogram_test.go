package apps

import (
	"testing"

	"repro/internal/ndlog"
)

// The §5.1/§6.2 query programs are specifications: they must parse and
// validate as legal NDlog (locations, safety, aggregate restrictions). The
// native processor implements their message flow; equivalence against the
// paper's worked examples is tested in internal/provquery and
// internal/core.
func TestQueryProgramParsesAndValidates(t *testing.T) {
	prog, err := ndlog.Parse(QueryProgramSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Rules) != 10 {
		t.Fatalf("rules = %d, want the paper's 10 (edb1, c0, idb1-4, rv1-4)", len(prog.Rules))
	}
	if err := ndlog.Validate(prog); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Specific structure: c0 is a COUNT aggregate over prov.
	var c0 *ndlog.Rule
	for _, r := range prog.Rules {
		if r.Label == "c0" {
			c0 = r
		}
	}
	if c0 == nil {
		t.Fatal("c0 missing")
	}
	if agg, _ := c0.AggSpec(); agg == nil || agg.Fn != "COUNT" || !agg.Star {
		t.Fatalf("c0 aggregate = %+v", c0.Head)
	}
}

func TestDFSQueryProgramParses(t *testing.T) {
	prog, err := ndlog.Parse(DFSQueryProgramSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Rules) != 4 {
		t.Fatalf("rules = %d, want 4 (idb2a-c, idb4')", len(prog.Rules))
	}
	var agglist bool
	for _, r := range prog.Rules {
		if agg, _ := r.AggSpec(); agg != nil && agg.Fn == "AGGLIST" {
			agglist = true
		}
	}
	if !agglist {
		t.Fatal("AGGLIST aggregate missing from idb2a")
	}
	if err := ndlog.Validate(prog); err != nil {
		t.Fatalf("validate: %v", err)
	}
}
