package apps

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/ndlog"
	"repro/internal/topology"
	"repro/internal/types"
)

func TestProgramsParseValidateCompile(t *testing.T) {
	progs := map[string]*ndlog.Program{
		"mincost":       MinCost(),
		"pathvector":    PathVector(),
		"packetforward": PacketForward(),
		"chord":         Chord(),
		"policy":        Policy(),
	}
	for name, p := range progs {
		if err := ndlog.Validate(p); err != nil {
			t.Errorf("%s: validate: %v", name, err)
		}
		if _, err := engine.Compile(p); err != nil {
			t.Errorf("%s: compile: %v", name, err)
		}
		// Every program must survive the provenance rewrite.
		rw, err := ndlog.ProvenanceRewrite(p)
		if err != nil {
			t.Errorf("%s: rewrite: %v", name, err)
			continue
		}
		if _, err := engine.Compile(rw); err != nil {
			t.Errorf("%s: compile rewritten: %v", name, err)
		}
	}
}

func TestLinkTuples(t *testing.T) {
	topo := topology.Figure3()
	byNode := LinkTuples(topo)
	if len(byNode) != 4 {
		t.Fatalf("nodes = %d", len(byNode))
	}
	// Node b (1) has three neighbors: a, c, d.
	if got := len(byNode[1]); got != 3 {
		t.Errorf("b's link tuples = %d, want 3", got)
	}
	// Symmetry: link(@a,b,3) and link(@b,a,3) both exist.
	found := 0
	for _, tu := range byNode[0] {
		if tu.Equal(LinkTuple(0, 1, 3)) {
			found++
		}
	}
	for _, tu := range byNode[1] {
		if tu.Equal(LinkTuple(1, 0, 3)) {
			found++
		}
	}
	if found != 2 {
		t.Errorf("symmetric pair incomplete (%d)", found)
	}
}

func TestPacketTuple(t *testing.T) {
	p := PacketTuple(1, 1, 3, 1024)
	if p.Pred != "ePacket" || p.Loc() != 1 {
		t.Fatalf("packet = %s", p)
	}
	if got := len(p.Args[3].AsStr()); got != 1024 {
		t.Errorf("payload = %d bytes, want 1024", got)
	}
	if p.WireSize() < 1024 {
		t.Errorf("wire size %d below payload", p.WireSize())
	}
}

func TestBestPathCostTuple(t *testing.T) {
	tu := BestPathCostTuple(0, 2, 5)
	if tu.String() != "bestPathCost(@a,c,5)" {
		t.Errorf("tuple = %s", tu)
	}
	if tu.VID() != types.NewTuple("bestPathCost", types.Node(0), types.Node(2), types.Int(5)).VID() {
		t.Error("VID mismatch")
	}
}
