package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBandwidthBuckets(t *testing.T) {
	b := NewBandwidth(1e9) // 1 s buckets
	b.Record(0, 100)
	b.Record(5e8, 100)
	b.Record(15e8, 300)
	pts := b.Series(2e9, 1)
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	// Bucket 0: 200 B over 1 s = 0.0002 MBps.
	if math.Abs(pts[0].MBps-0.0002) > 1e-9 {
		t.Errorf("bucket 0 = %v", pts[0].MBps)
	}
	if math.Abs(pts[1].MBps-0.0003) > 1e-9 {
		t.Errorf("bucket 1 = %v", pts[1].MBps)
	}
	// Per-node averaging divides the rate.
	pts = b.Series(2e9, 2)
	if math.Abs(pts[0].MBps-0.0001) > 1e-9 {
		t.Errorf("per-node bucket 0 = %v", pts[0].MBps)
	}
	if b.TotalBytes() != 500 {
		t.Errorf("total = %d", b.TotalBytes())
	}
}

func TestBandwidthMerge(t *testing.T) {
	a, b := NewBandwidth(1e9), NewBandwidth(1e9)
	a.Record(0, 100)
	b.Record(0, 50)
	b.Record(2e9, 25)
	a.Merge(b)
	if a.TotalBytes() != 175 {
		t.Errorf("merged total = %d, want 175", a.TotalBytes())
	}
	a.Reset()
	if a.TotalBytes() != 0 {
		t.Error("reset failed")
	}
}

func TestCDFQuantiles(t *testing.T) {
	c := NewCDF()
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	cases := map[float64]float64{0.01: 1, 0.5: 50, 0.8: 80, 1.0: 100}
	for q, want := range cases {
		if got := c.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if got := c.FractionBelow(80); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("FractionBelow(80) = %v", got)
	}
	if got := c.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if got := c.Max(); got != 100 {
		t.Errorf("Max = %v", got)
	}
	if c.N() != 100 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF()
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) || !math.IsNaN(c.Max()) {
		t.Error("empty CDF should return NaN")
	}
	if c.Points(5) != nil {
		t.Error("empty points should be nil")
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(samples []float64) bool {
		if len(samples) == 0 {
			return true
		}
		c := NewCDF()
		for _, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return true
			}
			c.Add(s)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF()
	for i := 1; i <= 10; i++ {
		c.Add(float64(i))
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[4].MBps != 1.0 || pts[4].TimeSec != 10 {
		t.Errorf("last point = %+v", pts[4])
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"A", "BB"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("no separator: %q", lines[1])
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned rows %q vs %q", lines[2], lines[3])
	}
}
