// Package stats provides the measurement utilities behind the evaluation
// harness: time-bucketed bandwidth recording (the "average bandwidth (MBps)
// over time" figures), latency CDFs (the query-completion figures) and
// small summary helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bandwidth accumulates bytes into fixed-width virtual-time buckets.
type Bandwidth struct {
	BucketNs int64 // bucket width in nanoseconds
	buckets  map[int64]int64
}

// NewBandwidth creates a recorder with the given bucket width in
// nanoseconds.
func NewBandwidth(bucketNs int64) *Bandwidth {
	return &Bandwidth{BucketNs: bucketNs, buckets: map[int64]int64{}}
}

// Record adds bytes at virtual time now (nanoseconds).
func (b *Bandwidth) Record(nowNs, bytes int64) {
	b.buckets[int64(nowNs)/b.BucketNs] += bytes
}

// Reset clears all buckets.
func (b *Bandwidth) Reset() { b.buckets = map[int64]int64{} }

// Point is one series sample: time (seconds) and rate (MB per second).
type Point struct {
	TimeSec float64
	MBps    float64
}

// Series returns the recorded bandwidth as a series of per-bucket rates in
// MBps, averaged over perNodes nodes, covering buckets [0, untilNs).
func (b *Bandwidth) Series(untilNs int64, perNodes int) []Point {
	if perNodes <= 0 {
		perNodes = 1
	}
	n := (untilNs + b.BucketNs - 1) / b.BucketNs
	out := make([]Point, 0, n)
	secPerBucket := float64(b.BucketNs) / 1e9
	for i := int64(0); i < n; i++ {
		mb := float64(b.buckets[i]) / 1e6
		out = append(out, Point{
			TimeSec: float64(i) * secPerBucket,
			MBps:    mb / secPerBucket / float64(perNodes),
		})
	}
	return out
}

// Buckets exposes the raw bucket totals (bucket index -> bytes); callers
// must not mutate the map.
func (b *Bandwidth) Buckets() map[int64]int64 { return b.buckets }

// Merge adds another recorder's buckets into this one (bucket widths must
// match).
func (b *Bandwidth) Merge(o *Bandwidth) {
	for k, v := range o.buckets {
		b.buckets[k] += v
	}
}

// TotalBytes reports the sum over all buckets.
func (b *Bandwidth) TotalBytes() int64 {
	var t int64
	for _, v := range b.buckets {
		t += v
	}
	return t
}

// CDF collects scalar samples (e.g. query completion latencies in seconds)
// and answers quantile and distribution queries.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF creates an empty collector.
func NewCDF() *CDF { return &CDF{} }

// Add records one sample.
func (c *CDF) Add(x float64) { c.samples = append(c.samples, x); c.sorted = false }

// N reports the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1), or NaN when empty.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	idx := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.samples) {
		idx = len(c.samples) - 1
	}
	return c.samples[idx]
}

// FractionBelow reports the fraction of samples <= x.
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Mean returns the sample mean, or NaN when empty.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range c.samples {
		s += x
	}
	return s / float64(len(c.samples))
}

// Max returns the largest sample, or NaN when empty.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	return c.samples[len(c.samples)-1]
}

// Points returns up to n evenly spaced (x, fraction<=x) samples of the
// empirical CDF, suitable for printing a figure's series.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.sort()
	out := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		idx := int(math.Ceil(frac*float64(len(c.samples)))) - 1
		out = append(out, Point{TimeSec: c.samples[idx], MBps: frac})
	}
	return out
}

// Table renders rows of label/value pairs with aligned columns; the bench
// harness uses it to print each figure as a text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	dashes := make([]string, len(header))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	writeRow(dashes)
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}
