// Package topology generates the network topologies used by the paper's
// evaluation: GT-ITM-style transit-stub graphs for the simulation
// experiments (§7, Figs 6-15), the ring-plus-random-peer overlay used in
// the testbed deployment (Figs 16-17), and the four-node example of Fig 3.
package topology

import (
	"math/rand"

	"repro/internal/simnet"
	"repro/internal/types"
)

// LinkClass labels the paper's three link tiers.
type LinkClass uint8

// Link tiers with the latency/bandwidth parameters from §7.
const (
	ClassTransit       LinkClass = iota // 50 ms, 1 Gbps
	ClassTransitAccess                  // 10 ms, 100 Mbps
	ClassStub                           // 2 ms, 50 Mbps
)

// Params returns the (latency, bandwidth) pair for a link class.
func (c LinkClass) Params() (simnet.Time, int64) {
	switch c {
	case ClassTransit:
		return 50 * simnet.Millisecond, 1e9
	case ClassTransitAccess:
		return 10 * simnet.Millisecond, 100e6
	default:
		return 2 * simnet.Millisecond, 50e6
	}
}

// Link is one bidirectional edge of a topology, annotated with its tier and
// the protocol-level cost (fixed at 1 in the paper's experiments).
type Link struct {
	U, V  types.NodeID
	Class LinkClass
	Cost  int64
}

// Topology is a generated graph.
type Topology struct {
	N     int
	Links []Link
	// StubStubLinks indexes into Links for the stub-to-stub tier; churn
	// (§7.2) adds and deletes only links of this tier.
	StubStubLinks []int
}

// Install adds every link of the topology to a simulated network.
func (t *Topology) Install(nw *simnet.Network) {
	for _, l := range t.Links {
		lat, bps := l.Class.Params()
		nw.AddLink(l.U, l.V, simnet.Link{Latency: lat, Bps: bps})
	}
}

// Adjacency returns the neighbor lists with costs, as (neighbor, cost)
// pairs per node.
func (t *Topology) Adjacency() map[types.NodeID][]Neighbor {
	adj := make(map[types.NodeID][]Neighbor)
	for _, l := range t.Links {
		adj[l.U] = append(adj[l.U], Neighbor{l.V, l.Cost})
		adj[l.V] = append(adj[l.V], Neighbor{l.U, l.Cost})
	}
	return adj
}

// Neighbor is one adjacency entry.
type Neighbor struct {
	Node types.NodeID
	Cost int64
}

// TransitStubParams mirror §7: "eight nodes per stub, three stubs per
// transit node, and four nodes per transit domain. We increase the number
// of nodes in the network by increasing the number of domains."
type TransitStubParams struct {
	Domains         int
	TransitPerDom   int // 4
	StubsPerTransit int // 3
	NodesPerStub    int // 8
	ExtraStubEdges  int // intra-stub edges beyond the spanning tree
}

// DefaultTransitStub returns the paper's parameters for the given number of
// domains (each domain contributes 100 nodes). ExtraStubEdges is tuned so a
// 200-node network has about 315 stub-to-stub links as reported in §7.2.
func DefaultTransitStub(domains int) TransitStubParams {
	return TransitStubParams{
		Domains:         domains,
		TransitPerDom:   4,
		StubsPerTransit: 3,
		NodesPerStub:    8,
		ExtraStubEdges:  6,
	}
}

// TransitStub generates a deterministic transit-stub topology from the
// given parameters and random source.
func TransitStub(p TransitStubParams, rng *rand.Rand) *Topology {
	t := &Topology{}
	next := types.NodeID(0)
	alloc := func() types.NodeID { id := next; next++; return id }

	seen := make(linkSet)
	addLink := func(u, v types.NodeID, class LinkClass) {
		if u == v {
			return
		}
		t.Links = append(t.Links, Link{U: u, V: v, Class: class, Cost: 1})
		seen.add(u, v)
		if class == ClassStub {
			t.StubStubLinks = append(t.StubStubLinks, len(t.Links)-1)
		}
	}

	var prevDomain []types.NodeID
	var firstDomain []types.NodeID
	for d := 0; d < p.Domains; d++ {
		// Transit nodes of this domain form a ring with one chord,
		// approximating GT-ITM's random transit graphs.
		transit := make([]types.NodeID, p.TransitPerDom)
		for i := range transit {
			transit[i] = alloc()
		}
		for i := range transit {
			addLink(transit[i], transit[(i+1)%len(transit)], ClassTransit)
		}
		if len(transit) >= 4 {
			addLink(transit[0], transit[2], ClassTransit)
		}
		// Inter-domain: connect each domain to the previous one (and close
		// the ring of domains at the end).
		if prevDomain != nil {
			addLink(prevDomain[rng.Intn(len(prevDomain))], transit[rng.Intn(len(transit))], ClassTransit)
		} else {
			firstDomain = transit
		}
		if d == p.Domains-1 && p.Domains > 2 {
			addLink(transit[rng.Intn(len(transit))], firstDomain[rng.Intn(len(firstDomain))], ClassTransit)
		}
		prevDomain = transit

		// Stubs: each transit node serves StubsPerTransit stubs of
		// NodesPerStub nodes. Stub-internal structure is a random spanning
		// tree plus ExtraStubEdges random extra edges; the stub's first
		// node is the gateway to its transit node.
		for _, tr := range transit {
			for s := 0; s < p.StubsPerTransit; s++ {
				stub := make([]types.NodeID, p.NodesPerStub)
				for i := range stub {
					stub[i] = alloc()
				}
				addLink(tr, stub[0], ClassTransitAccess)
				for i := 1; i < len(stub); i++ {
					addLink(stub[i], stub[rng.Intn(i)], ClassStub)
				}
				for e := 0; e < p.ExtraStubEdges; e++ {
					for attempt := 0; attempt < 10; attempt++ {
						u := stub[rng.Intn(len(stub))]
						v := stub[rng.Intn(len(stub))]
						if u != v && !seen.has(u, v) {
							addLink(u, v, ClassStub)
							break
						}
					}
				}
			}
		}
	}
	t.N = int(next)
	return t
}

// linkSet is an O(1) membership index over normalized node pairs, so the
// generators stay linear at 10k-node scale (the previous linear scan over
// t.Links made extra-edge placement quadratic).
type linkSet map[[2]types.NodeID]struct{}

func normPair(u, v types.NodeID) [2]types.NodeID {
	if u > v {
		u, v = v, u
	}
	return [2]types.NodeID{u, v}
}

func (s linkSet) add(u, v types.NodeID) { s[normPair(u, v)] = struct{}{} }

func (s linkSet) has(u, v types.NodeID) bool {
	_, ok := s[normPair(u, v)]
	return ok
}

// Ring generates the testbed overlay of §7.4: nodes arranged in a ring,
// with each node additionally linked to one random peer subject to a
// maximum degree of three.
func Ring(n int, rng *rand.Rand) *Topology {
	t := &Topology{N: n}
	deg := make([]int, n)
	seen := make(linkSet)
	add := func(u, v types.NodeID) {
		t.Links = append(t.Links, Link{U: u, V: v, Class: ClassStub, Cost: 1})
		seen.add(u, v)
		deg[u]++
		deg[v]++
	}
	for i := 0; i < n; i++ {
		add(types.NodeID(i), types.NodeID((i+1)%n))
	}
	order := rng.Perm(n)
	for _, i := range order {
		if deg[i] >= 3 {
			continue
		}
		// Pick a random peer with available degree that is not already a
		// neighbor.
		for attempt := 0; attempt < 4*n; attempt++ {
			j := rng.Intn(n)
			if j == i || deg[j] >= 3 {
				continue
			}
			if j == (i+1)%n || j == (i-1+n)%n || seen.has(types.NodeID(i), types.NodeID(j)) {
				continue
			}
			add(types.NodeID(i), types.NodeID(j))
			break
		}
	}
	return t
}

// Figure3 returns the four-node example network of the paper's Fig 3
// (nodes a..d with the listed symmetric link costs).
func Figure3() *Topology {
	a, b, c, d := types.NodeID(0), types.NodeID(1), types.NodeID(2), types.NodeID(3)
	return &Topology{
		N: 4,
		Links: []Link{
			{U: a, V: b, Class: ClassStub, Cost: 3},
			{U: a, V: c, Class: ClassStub, Cost: 5},
			{U: b, V: c, Class: ClassStub, Cost: 2},
			{U: b, V: d, Class: ClassStub, Cost: 5},
			{U: c, V: d, Class: ClassStub, Cost: 3},
		},
	}
}
