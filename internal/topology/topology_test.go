package topology

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

func connected(t *Topology) bool {
	if t.N == 0 {
		return true
	}
	adj := map[types.NodeID][]types.NodeID{}
	for _, l := range t.Links {
		adj[l.U] = append(adj[l.U], l.V)
		adj[l.V] = append(adj[l.V], l.U)
	}
	seen := map[types.NodeID]bool{0: true}
	stack := []types.NodeID{0}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return len(seen) == t.N
}

func TestTransitStubSizes(t *testing.T) {
	for domains := 1; domains <= 5; domains++ {
		topo := TransitStub(DefaultTransitStub(domains), rand.New(rand.NewSource(1)))
		want := domains * 100 // 4 transit + 4*3*8 stub nodes per domain
		if topo.N != want {
			t.Errorf("domains=%d: N=%d, want %d", domains, topo.N, want)
		}
		if !connected(topo) {
			t.Errorf("domains=%d: disconnected", domains)
		}
	}
}

func TestTransitStubStubLinkCount(t *testing.T) {
	// §7.2: a 200-node network has about 315 stub-to-stub links.
	topo := TransitStub(DefaultTransitStub(2), rand.New(rand.NewSource(1)))
	got := len(topo.StubStubLinks)
	if got < 280 || got > 340 {
		t.Errorf("stub-stub links = %d, want ≈315", got)
	}
	for _, i := range topo.StubStubLinks {
		if topo.Links[i].Class != ClassStub {
			t.Fatalf("index %d is not a stub-stub link", i)
		}
	}
}

func TestTransitStubDeterminism(t *testing.T) {
	a := TransitStub(DefaultTransitStub(2), rand.New(rand.NewSource(7)))
	b := TransitStub(DefaultTransitStub(2), rand.New(rand.NewSource(7)))
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed produced different topologies")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestLinkClassParams(t *testing.T) {
	lat, bps := ClassTransit.Params()
	if lat.Seconds() != 0.05 || bps != 1e9 {
		t.Error("transit params wrong")
	}
	lat, bps = ClassTransitAccess.Params()
	if lat.Seconds() != 0.01 || bps != 100e6 {
		t.Error("transit-stub params wrong")
	}
	lat, bps = ClassStub.Params()
	if lat.Seconds() != 0.002 || bps != 50e6 {
		t.Error("stub params wrong")
	}
}

func TestRingDegreeBound(t *testing.T) {
	for _, n := range []int{5, 8, 20, 40} {
		topo := Ring(n, rand.New(rand.NewSource(int64(n))))
		if topo.N != n || !connected(topo) {
			t.Fatalf("n=%d: bad ring", n)
		}
		deg := map[types.NodeID]int{}
		for _, l := range topo.Links {
			deg[l.U]++
			deg[l.V]++
		}
		for node, d := range deg {
			if d > 3 {
				t.Errorf("n=%d: node %s degree %d > 3", n, node, d)
			}
			if d < 2 {
				t.Errorf("n=%d: node %s degree %d < 2 (ring broken)", n, node, d)
			}
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	topo := Figure3()
	if topo.N != 4 || len(topo.Links) != 5 {
		t.Fatalf("N=%d links=%d, want 4 and 5", topo.N, len(topo.Links))
	}
	costs := map[string]int64{}
	for _, l := range topo.Links {
		costs[l.U.String()+l.V.String()] = l.Cost
	}
	want := map[string]int64{"ab": 3, "ac": 5, "bc": 2, "bd": 5, "cd": 3}
	for k, v := range want {
		if costs[k] != v {
			t.Errorf("link %s cost %d, want %d", k, costs[k], v)
		}
	}
	adj := topo.Adjacency()
	if len(adj[1]) != 3 { // node b has three neighbors
		t.Errorf("b adjacency = %v", adj[1])
	}
}
