package ndlog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// ProvenanceRewrite implements the paper's Algorithm 1: given a localized
// NDlog program, it returns a new program in which every rule is replaced
// by a set of rules that execute the original derivation *and* maintain the
// distributed provenance relations
//
//	prov(@Loc, VID, RID, RLoc)
//	ruleExec(@RLoc, RID, R, VIDList)
//
// shipping only the (RID, RLoc) pair with each derivation — reference-based
// distributed provenance.
//
// Where the paper computes identifiers with string concatenation
// (RID = f_sha1("sp2"+RLoc+List)), this implementation uses the built-ins
// f_vid(name, args...) and f_rid(rule, loc, list), which hash an
// *injective* canonical encoding of the same fields. The paper's
// concatenation is not injective ("ab"+"c" = "a"+"bc"); hashing the framed
// encoding preserves intent while eliminating accidental collisions.
//
// Rules without aggregates expand to the five rules of Algorithm 1
// (r20–r24 in the paper's §4.2.1 example). Aggregate (MIN/MAX) rules keep
// the original rule and add three provenance rules that trace the result to
// the winning input tuple, per the paper's discussion of MIN/MAX
// provenance. For every EDB predicate, a rule is added that registers base
// tuples in prov with a null RID, matching Table 1's base-tuple rows.
func ProvenanceRewrite(p *Program) (*Program, error) {
	return ProvenanceRewriteOpts(p, RewriteOptions{})
}

// RewriteOptions tunes the provenance rewrite.
type RewriteOptions struct {
	// RelationalInputs additionally maintains
	//
	//	ruleExecInput(@RLoc, RID, VID)
	//
	// — one row per rule-execution input, the relational unnesting of
	// ruleExec's VIDList. The §5.1 querying program needs it to iterate a
	// rule's inputs with an ordinary join (NDlog assignments bind a single
	// value, so list elements cannot be enumerated in rule bodies).
	RelationalInputs bool
}

type rewriteCtx struct {
	opts RewriteOptions
	// maxInputs per head predicate, across all rules deriving it (the
	// shared eHTemp consumer rules must cover the widest input list).
	maxInputs  map[string]int
	sharedDone map[string]bool
}

// ProvenanceRewriteOpts is ProvenanceRewrite with options.
func ProvenanceRewriteOpts(p *Program, opts RewriteOptions) (*Program, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	ctx := &rewriteCtx{
		opts:       opts,
		maxInputs:  map[string]int{},
		sharedDone: map[string]bool{},
	}
	for _, r := range p.Rules {
		n := len(r.BodyAtoms())
		if agg, _ := r.AggSpec(); agg != nil {
			n = 1 // MIN/MAX provenance traces to the single winning input
		}
		if n > ctx.maxInputs[r.Head.Pred] {
			ctx.maxInputs[r.Head.Pred] = n
		}
	}
	out := &Program{Facts: p.Facts}
	for i, r := range p.Rules {
		label := r.Label
		if label == "" {
			label = fmt.Sprintf("r%d", i+1)
		}
		if agg, _ := r.AggSpec(); agg != nil {
			rules, err := rewriteAggRule(r, label, ctx)
			if err != nil {
				return nil, err
			}
			out.Rules = append(out.Rules, rules...)
			continue
		}
		rules, err := rewriteRule(r, label, ctx)
		if err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, rules...)
	}
	// Base-tuple provenance: one rule per EDB predicate, in sorted predicate
	// order — rule order is program structure (rule indexes, occurrence
	// order, firing order), so appending in map-iteration order would make
	// the rewritten program differ run to run. Determine arity from the
	// predicate's first occurrence in a body or fact.
	baseAtoms := basePredAtoms(p)
	basePreds := make([]string, 0, len(baseAtoms))
	for pred := range baseAtoms {
		basePreds = append(basePreds, pred)
	}
	sort.Strings(basePreds)
	for _, pred := range basePreds {
		out.Rules = append(out.Rules, baseProvRule(pred, baseAtoms[pred]))
	}
	return out, nil
}

// inputUnnestRules emits, for k = 0..maxInputs-1,
//
//	ruleExecInput(@RLoc, RID, V) :- eHTemp(...), f_size(List) > k,
//	                                V = f_nth(List, k).
func inputUnnestRules(label string, tempAtom func() *Atom, rlocV, ridV, listV string,
	used map[string]bool, maxInputs int) []*Rule {
	var out []*Rule
	vV := fresh(used, "V")
	for k := 0; k < maxInputs; k++ {
		kc := &Const{Val: types.Int(int64(k))}
		out = append(out, &Rule{
			Label: fmt.Sprintf("%s_in%d", label, k),
			Head:  &Atom{Pred: "ruleExecInput", LocPos: 0, Args: varAtoms(rlocV, ridV, vV)},
			Body: []BodyTerm{
				tempAtom(),
				&Cond{Expr: &BinOp{Op: ">", L: &Call{Fn: "f_size", Args: []Expr{&Var{Name: listV}}}, R: kc}},
				&Assign{Lhs: vV, Rhs: &Call{Fn: "f_nth", Args: []Expr{&Var{Name: listV}, kc}}},
			},
		})
	}
	return out
}

// fresh returns name if unused in the rule, otherwise name with "_p"
// suffixes until unique.
func fresh(used map[string]bool, name string) string {
	for used[name] {
		name += "_p"
	}
	used[name] = true
	return name
}

func usedVars(r *Rule) map[string]bool {
	used := map[string]bool{}
	collect := func(e Expr) {
		for _, v := range Vars(e) {
			used[v] = true
		}
	}
	for _, a := range r.Head.Args {
		collect(a)
	}
	for _, t := range r.Body {
		switch v := t.(type) {
		case *Atom:
			for _, a := range v.Args {
				collect(a)
			}
		case *Assign:
			used[v.Lhs] = true
			collect(v.Rhs)
		case *Cond:
			collect(v.Expr)
		}
	}
	return used
}

// headVarsOf normalizes the head arguments to plain variables, introducing
// assignments for expression arguments (the Algorithm assumes variable
// heads).
func headVarsOf(r *Rule, used map[string]bool) (vars []string, extra []BodyTerm) {
	for i, a := range r.Head.Args {
		if v, ok := a.(*Var); ok {
			vars = append(vars, v.Name)
			continue
		}
		hv := fresh(used, fmt.Sprintf("HArg%d", i+1))
		extra = append(extra, &Assign{Lhs: hv, Rhs: a})
		vars = append(vars, hv)
	}
	return vars, extra
}

func varAtoms(names ...string) []Expr {
	out := make([]Expr, len(names))
	for i, n := range names {
		out[i] = &Var{Name: n}
	}
	return out
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// eventNames returns the names of the temp event and the shipped event for
// a head predicate, avoiding collision when the head is itself an event.
func eventNames(head string) (temp, send string) {
	base := title(head)
	if IsEventPred(head) {
		// ePacket -> ePacketProvTemp / ePacketProvMsg
		return head + "ProvTemp", head + "ProvMsg"
	}
	return "e" + base + "Temp", "e" + base
}

func rewriteRule(r *Rule, label string, ctx *rewriteCtx) ([]*Rule, error) {
	used := usedVars(r)
	locVar, err := BodyLocation(r)
	if err != nil {
		return nil, err
	}
	headVars, extraAssigns := headVarsOf(r, used)

	rlocV := fresh(used, "RLoc")
	rV := fresh(used, "R")
	ridV := fresh(used, "RID")
	listV := fresh(used, "List")
	vidV := fresh(used, "VID")

	atoms := r.BodyAtoms()
	pidVars := make([]string, len(atoms))
	for i := range atoms {
		pidVars[i] = fresh(used, fmt.Sprintf("PID%d", i+1))
	}

	tempName, sendName := eventNames(r.Head.Pred)

	// Rule 1: eHTemp(@RLoc, H1..Ho, RID, R, List) :- body, bookkeeping.
	var body []BodyTerm
	body = append(body, r.Body...)
	body = append(body, extraAssigns...)
	body = append(body, &Assign{Lhs: rlocV, Rhs: &Var{Name: locVar}})
	body = append(body, &Assign{Lhs: rV, Rhs: &Const{Val: types.Str(label)}})
	for i, a := range atoms {
		args := []Expr{&Const{Val: types.Str(a.Pred)}}
		args = append(args, a.Args...)
		body = append(body, &Assign{Lhs: pidVars[i], Rhs: &Call{Fn: "f_vid", Args: args}})
	}
	body = append(body, &Assign{Lhs: listV, Rhs: &Call{Fn: "f_append", Args: varAtoms(pidVars...)}})
	body = append(body, &Assign{Lhs: ridV, Rhs: &Call{Fn: "f_rid", Args: varAtoms(rV, rlocV, listV)}})

	tempHead := &Atom{Pred: tempName, LocPos: 0,
		Args: varAtoms(append(append([]string{rlocV}, headVars...), ridV, rV, listV)...)}
	rules := []*Rule{{Label: label + "_1", Head: tempHead, Body: body}}

	// Rules 2-5 depend only on the head predicate (they consume the shared
	// eHTemp/eH events); when several rules derive the same head they are
	// emitted once, avoiding duplicate firings.
	if !ctx.sharedDone[r.Head.Pred] {
		ctx.sharedDone[r.Head.Pred] = true
		tempAtom := func() *Atom {
			return &Atom{Pred: tempName, LocPos: 0,
				Args: varAtoms(append(append([]string{rlocV}, headVars...), ridV, rV, listV)...)}
		}
		// Rule 2: ruleExec(@RLoc, RID, R, List) :- eHTemp(...).
		rules = append(rules, &Rule{
			Label: label + "_2",
			Head:  &Atom{Pred: "ruleExec", LocPos: 0, Args: varAtoms(rlocV, ridV, rV, listV)},
			Body:  []BodyTerm{tempAtom()},
		})
		// Rule 3: eH(@H1..Ho, RID, RLoc) :- eHTemp(...).
		sendHead := &Atom{Pred: sendName, LocPos: 0,
			Args: varAtoms(append(append([]string{}, headVars...), ridV, rlocV)...)}
		rules = append(rules, &Rule{Label: label + "_3", Head: sendHead, Body: []BodyTerm{tempAtom()}})

		if ctx.opts.RelationalInputs {
			rules = append(rules, inputUnnestRules(label, tempAtom, rlocV, ridV, listV,
				used, ctx.maxInputs[r.Head.Pred])...)
		}

		sendAtom := func() *Atom {
			return &Atom{Pred: sendName, LocPos: 0,
				Args: varAtoms(append(append([]string{}, headVars...), ridV, rlocV)...)}
		}
		// Rule 4: h(@H1..Ho) :- eH(...).
		rules = append(rules, &Rule{
			Label: label + "_4",
			Head:  &Atom{Pred: r.Head.Pred, LocPos: r.Head.LocPos, Args: varAtoms(headVars...)},
			Body:  []BodyTerm{sendAtom()},
		})
		// Rule 5: prov(@H1, VID, RID, RLoc) :- eH(...), VID = f_vid(h, H1..Ho).
		vidArgs := []Expr{&Const{Val: types.Str(r.Head.Pred)}}
		vidArgs = append(vidArgs, varAtoms(headVars...)...)
		rules = append(rules, &Rule{
			Label: label + "_5",
			Head: &Atom{Pred: "prov", LocPos: 0,
				Args: varAtoms(headVars[r.Head.LocPos], vidV, ridV, rlocV)},
			Body: []BodyTerm{
				sendAtom(),
				&Assign{Lhs: vidV, Rhs: &Call{Fn: "f_vid", Args: vidArgs}},
			},
		})
	}
	return rules, nil
}

// rewriteAggRule keeps the aggregate rule unchanged and adds rules that
// trace each aggregate result to the winning input tuple: when
// h(@S,...,C) exists and the body tuple p(@S,...,C) matches it, that tuple
// is the provenance child.
func rewriteAggRule(r *Rule, label string, ctx *rewriteCtx) ([]*Rule, error) {
	used := usedVars(r)
	agg, aggPos := r.AggSpec()
	atom := r.BodyAtoms()[0]
	if agg.Fn != "MIN" && agg.Fn != "MAX" {
		// COUNT/AGGLIST provenance would require all inputs as children
		// (see §4.2.2); the paper explicitly restricts Algorithm 1 to
		// MIN/MAX, so other aggregates keep the derivation but no
		// provenance.
		return []*Rule{{Label: label, Head: r.Head, Body: r.Body}}, nil
	}

	// Flattened head: replace min<C,...> with its variables in place, so
	// bestPath(@S,D,min<C,P>) flattens to bestPath(@S,D,C,P) — the shape
	// of the materialized aggregate result.
	var headVars []string
	flatLocPos := -1
	for i, a := range r.Head.Args {
		if i == r.Head.LocPos {
			flatLocPos = len(headVars)
		}
		switch v := a.(type) {
		case *Var:
			headVars = append(headVars, v.Name)
		case *Agg:
			headVars = append(headVars, v.Vars...)
		default:
			return nil, fmt.Errorf("aggregate rule %s: head argument %d must be a variable", label, i)
		}
	}
	_ = aggPos

	rlocV := fresh(used, "RLoc")
	rV := fresh(used, "R")
	ridV := fresh(used, "RID")
	listV := fresh(used, "List")
	vidV := fresh(used, "VID")
	pidV := fresh(used, "PID1")
	locVar, _ := BodyLocation(r)

	tempName, _ := eventNames(r.Head.Pred)

	rules := []*Rule{{Label: label, Head: r.Head, Body: r.Body}}

	// h(@S,..,C) joined with the body atom identifies the winning tuple.
	flatHead := &Atom{Pred: r.Head.Pred, LocPos: r.Head.LocPos, Args: varAtoms(headVars...)}
	pidArgs := []Expr{&Const{Val: types.Str(atom.Pred)}}
	pidArgs = append(pidArgs, atom.Args...)
	body := []BodyTerm{
		flatHead,
		atom,
		&Assign{Lhs: rlocV, Rhs: &Var{Name: locVar}},
		&Assign{Lhs: rV, Rhs: &Const{Val: types.Str(label)}},
		&Assign{Lhs: pidV, Rhs: &Call{Fn: "f_vid", Args: pidArgs}},
		&Assign{Lhs: listV, Rhs: &Call{Fn: "f_append", Args: varAtoms(pidV)}},
		&Assign{Lhs: ridV, Rhs: &Call{Fn: "f_rid", Args: varAtoms(rV, rlocV, listV)}},
	}
	tempHead := &Atom{Pred: tempName, LocPos: 0,
		Args: varAtoms(append(append([]string{rlocV}, headVars...), ridV, rV, listV)...)}
	rules = append(rules, &Rule{Label: label + "_1", Head: tempHead, Body: body})

	tempAtomFn := func() *Atom {
		return &Atom{Pred: tempName, LocPos: 0,
			Args: varAtoms(append(append([]string{rlocV}, headVars...), ridV, rV, listV)...)}
	}
	tempAtom := tempAtomFn()
	rules = append(rules, &Rule{
		Label: label + "_2",
		Head:  &Atom{Pred: "ruleExec", LocPos: 0, Args: varAtoms(rlocV, ridV, rV, listV)},
		Body:  []BodyTerm{tempAtomFn()},
	})
	if ctx.opts.RelationalInputs && !ctx.sharedDone["in:"+r.Head.Pred] {
		ctx.sharedDone["in:"+r.Head.Pred] = true
		rules = append(rules, inputUnnestRules(label, tempAtomFn, rlocV, ridV, listV,
			used, ctx.maxInputs[r.Head.Pred])...)
	}

	vidArgs := []Expr{&Const{Val: types.Str(r.Head.Pred)}}
	vidArgs = append(vidArgs, varAtoms(headVars...)...)
	rules = append(rules, &Rule{
		Label: label + "_3",
		Head: &Atom{Pred: "prov", LocPos: 0,
			Args: varAtoms(headVars[flatLocPos], vidV, ridV, rlocV)},
		Body: []BodyTerm{
			tempAtom,
			&Assign{Lhs: vidV, Rhs: &Call{Fn: "f_vid", Args: vidArgs}},
		},
	})
	return rules, nil
}

func basePredAtoms(p *Program) map[string]*Atom {
	base := BasePreds(p)
	out := map[string]*Atom{}
	for _, r := range p.Rules {
		for _, a := range r.BodyAtoms() {
			if base[a.Pred] && out[a.Pred] == nil {
				out[a.Pred] = a
			}
		}
	}
	for _, f := range p.Facts {
		if base[f.Pred] && out[f.Pred] == nil {
			out[f.Pred] = f
		}
	}
	return out
}

// baseProvRule produces, for an EDB predicate b of arity k at @X:
//
//	provb prov(@X, VID, RIDn, X) :- b(@X, A2..Ak), VID = f_vid("b", X, A2..Ak),
//	                                RIDn = f_nullid().
func baseProvRule(pred string, shape *Atom) *Rule {
	arity := len(shape.Args)
	locPos := shape.LocPos
	if locPos < 0 {
		locPos = 0
	}
	used := map[string]bool{}
	argVars := make([]string, arity)
	for i := range argVars {
		argVars[i] = fresh(used, fmt.Sprintf("A%d", i+1))
	}
	vidV := fresh(used, "VID")
	ridV := fresh(used, "RIDn")
	vidArgs := []Expr{&Const{Val: types.Str(pred)}}
	vidArgs = append(vidArgs, varAtoms(argVars...)...)
	return &Rule{
		Label: "prov_" + pred,
		Head: &Atom{Pred: "prov", LocPos: 0,
			Args: varAtoms(argVars[locPos], vidV, ridV, argVars[locPos])},
		Body: []BodyTerm{
			&Atom{Pred: pred, LocPos: locPos, Args: varAtoms(argVars...)},
			&Assign{Lhs: vidV, Rhs: &Call{Fn: "f_vid", Args: vidArgs}},
			&Assign{Lhs: ridV, Rhs: &Call{Fn: "f_nullid"}},
		},
	}
}
