package ndlog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Parse parses an NDlog program from source text.
func Parse(src string) (*Program, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		if err := p.parseStatement(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for the built-in
// application programs whose sources are compile-time constants.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) take() token { t := p.cur(); p.pos++; return t }

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, p.errorf("expected %q, found %s", text, p.cur())
	}
	return p.take(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("ndlog: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement(prog *Program) error {
	label := ""
	// "sp1 pathCost(@S,D,C) :- ...": a lowercase identifier immediately
	// followed by another identifier is a rule label.
	if p.cur().kind == tokIdent && p.peek().kind == tokIdent {
		label = p.take().text
	}
	head, err := p.parseAtom()
	if err != nil {
		return err
	}
	if p.at(tokPunct, ".") {
		p.take()
		if label != "" {
			return p.errorf("fact %s must not carry a label", head.Pred)
		}
		prog.Facts = append(prog.Facts, head)
		return nil
	}
	if _, err := p.expect(tokPunct, ":-"); err != nil {
		return err
	}
	rule := &Rule{Label: label, Head: head}
	for {
		term, err := p.parseBodyTerm()
		if err != nil {
			return err
		}
		rule.Body = append(rule.Body, term)
		if p.at(tokPunct, ",") {
			p.take()
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, "."); err != nil {
		return err
	}
	prog.Rules = append(prog.Rules, rule)
	return nil
}

func (p *parser) parseBodyTerm() (BodyTerm, error) {
	// A predicate atom: identifier followed by '('.
	if p.cur().kind == tokIdent && p.peek().kind == tokPunct && p.peek().text == "(" && !isBuiltinFn(p.cur().text) {
		return p.parseAtom()
	}
	// An assignment: Var = expr (single '=').
	if p.cur().kind == tokVar && p.peek().kind == tokPunct && p.peek().text == "=" {
		lhs := p.take().text
		p.take() // '='
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{Lhs: lhs, Rhs: rhs}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{Expr: e}, nil
}

func isBuiltinFn(name string) bool { return strings.HasPrefix(name, "f_") }

func (p *parser) parseAtom() (*Atom, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	atom := &Atom{Pred: name.text, LocPos: -1}
	for {
		loc := false
		if p.at(tokPunct, "@") {
			p.take()
			loc = true
		}
		arg, err := p.parseAtomArg()
		if err != nil {
			return nil, err
		}
		if loc {
			if atom.LocPos >= 0 {
				return nil, p.errorf("predicate %s has multiple location specifiers", atom.Pred)
			}
			atom.LocPos = len(atom.Args)
		}
		atom.Args = append(atom.Args, arg)
		if p.at(tokPunct, ",") {
			p.take()
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return atom, nil
}

var aggNames = map[string]string{
	"min": "MIN", "MIN": "MIN",
	"max": "MAX", "MAX": "MAX",
	"count": "COUNT", "COUNT": "COUNT",
	"sum": "SUM", "SUM": "SUM",
	"agglist": "AGGLIST", "AGGLIST": "AGGLIST",
}

func (p *parser) parseAtomArg() (Expr, error) {
	// Aggregate: min<C>, COUNT<*>, AGGLIST<RID,RLoc>, ...
	if fn, ok := aggNames[p.cur().text]; ok &&
		(p.cur().kind == tokIdent || p.cur().kind == tokVar) &&
		p.peek().kind == tokPunct && p.peek().text == "<" {
		p.take() // name
		p.take() // '<'
		agg := &Agg{Fn: fn}
		if p.at(tokPunct, "*") {
			p.take()
			agg.Star = true
		} else {
			for {
				v, err := p.expect(tokVar, "")
				if err != nil {
					return nil, err
				}
				agg.Vars = append(agg.Vars, v.text)
				if p.at(tokPunct, ",") {
					p.take()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokPunct, ">"); err != nil {
			return nil, err
		}
		return agg, nil
	}
	return p.parseExpr()
}

// Expression parsing by precedence climbing.

var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.take().text
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinOp{Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.take()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Const{Val: types.Int(n)}, nil
	case t.kind == tokString:
		p.take()
		return &Const{Val: types.Str(t.text)}, nil
	case t.kind == tokVar:
		p.take()
		return &Var{Name: t.text}, nil
	case t.kind == tokIdent:
		// Function call f_xxx(...) or a bare lowercase constant (the
		// paper writes node constants like a, b, c).
		if p.peek().kind == tokPunct && p.peek().text == "(" {
			p.take()
			p.take() // '('
			call := &Call{Fn: t.text}
			if !p.at(tokPunct, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.at(tokPunct, ",") {
						p.take()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		p.take()
		// Single lowercase letters denote node constants (a..z), matching
		// the paper's examples; anything else is a string constant.
		if len(t.text) == 1 && t.text[0] >= 'a' && t.text[0] <= 'z' {
			return &Const{Val: types.Node(types.NodeID(t.text[0] - 'a'))}, nil
		}
		return &Const{Val: types.Str(t.text)}, nil
	case t.kind == tokPunct && t.text == "(":
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokPunct && t.text == "-":
		p.take()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "-", L: &Const{Val: types.Int(0)}, R: e}, nil
	}
	return nil, p.errorf("unexpected token %s in expression", t)
}
