package ndlog

import (
	"strings"
	"testing"
)

func TestLocalizePassThrough(t *testing.T) {
	prog := MustParse(`sp1 pathCost(@S,D,C) :- link(@S,D,C).`)
	out, err := Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 1 || out.Rules[0] != prog.Rules[0] {
		t.Fatalf("localized already-local rule changed: %s", out)
	}
}

func TestLocalizeTwoLocationRule(t *testing.T) {
	// The classic non-localized shortest-path rule: body spans @S and @Z.
	prog := MustParse(`
sp2 pathCost(@S,D,C) :- link(@S,Z,C1), pathCost(@Z,D,C2), C = C1 + C2.
`)
	out, err := Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 2 {
		t.Fatalf("rules = %d, want 2:\n%s", len(out.Rules), out)
	}
	if err := Validate(out); err != nil {
		t.Fatalf("localized program invalid: %v\n%s", err, out)
	}
	a, b := out.Rules[0], out.Rules[1]
	// Rule a ships X-side bindings to @Z; rule b joins at @Z.
	if !strings.HasPrefix(a.Head.Pred, "e") {
		t.Errorf("first rule head %s is not an event", a.Head.Pred)
	}
	if lv, _ := BodyLocation(a); lv != "S" {
		t.Errorf("rule a localized at @%s, want @S", lv)
	}
	if lv, _ := BodyLocation(b); lv != "Z" {
		t.Errorf("rule b localized at @%s, want @Z", lv)
	}
	if b.Head.Pred != "pathCost" {
		t.Errorf("rule b head = %s", b.Head.Pred)
	}
	// The assignment C = C1 + C2 must land where its inputs are bound: C1
	// binds at S, C2 at Z, so it runs on the Y side.
	if !strings.Contains(b.String(), "C = C1 + C2") {
		t.Errorf("assignment not on the Y side:\na: %s\nb: %s", a, b)
	}
}

func TestLocalizeXSideCondition(t *testing.T) {
	prog := MustParse(`
r out(@Y,C1,C2) :- src(@X,C1), link(@X,Y), sink(@Y,C2), C1 > 3.
`)
	out, err := Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 2 {
		t.Fatalf("rules = %d", len(out.Rules))
	}
	// The condition's inputs bind at X: it must run before shipping.
	if !strings.Contains(out.Rules[0].String(), "C1 > 3") {
		t.Errorf("condition not pushed to the X side: %s", out.Rules[0])
	}
	if err := Validate(out); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestLocalizeRejectsThreeLocations(t *testing.T) {
	prog := MustParse(`r out(@X,V) :- a(@X,Y), b(@Y,Z), c(@Z,V).`)
	if _, err := Localize(prog); err == nil {
		t.Fatal("three-location body accepted")
	}
}

func TestLocalizeRejectsUnbridged(t *testing.T) {
	prog := MustParse(`r out(@X,V) :- a(@X,V), b(@Y,V).`)
	if _, err := Localize(prog); err == nil {
		t.Fatal("unbridged two-location body accepted")
	}
}

// TestLocalizedRuleSemantics: the localized form of the non-local
// shortest-path program computes the same result as the localized-by-hand
// MINCOST (checked end to end in core tests; here we check structure
// composes with the provenance rewrite).
func TestLocalizeThenProvenanceRewrite(t *testing.T) {
	prog := MustParse(`
sp1 pathCost(@S,D,C) :- link(@S,D,C).
sp2 pathCost(@S,D,C) :- link(@S,Z,C1), bestPathCost(@Z,D,C2), C = C1 + C2.
sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
`)
	loc, err := Localize(prog)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := ProvenanceRewrite(loc)
	if err != nil {
		t.Fatalf("rewrite after localization: %v", err)
	}
	if len(rw.Rules) < 10 {
		t.Fatalf("composed pipeline too small: %d rules", len(rw.Rules))
	}
}
